package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleProfile = `mode: set
github.com/flipper-mining/flipper/internal/sketch/sketch.go:10.2,12.3 3 1
github.com/flipper-mining/flipper/internal/sketch/sketch.go:14.2,20.3 5 1
github.com/flipper-mining/flipper/internal/sketch/sketch.go:22.2,30.3 2 0
github.com/flipper-mining/flipper/internal/core/engine.go:5.2,9.3 4 1
github.com/flipper-mining/flipper/internal/core/engine.go:11.2,15.3 4 0
`

func writeProfile(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "cover.out")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCoverAggregation(t *testing.T) {
	pkgs, err := parseCoverProfile(writeProfile(t, sampleProfile))
	if err != nil {
		t.Fatal(err)
	}
	sk, ok := pkgs["github.com/flipper-mining/flipper/internal/sketch"]
	if !ok {
		t.Fatalf("sketch package missing: %v", pkgs)
	}
	if sk.total != 10 || sk.covered != 8 {
		t.Errorf("sketch = %d/%d statements, want 8/10", sk.covered, sk.total)
	}
	core, ok := pkgs["github.com/flipper-mining/flipper/internal/core"]
	if !ok || core.total != 8 || core.covered != 4 {
		t.Errorf("core = %+v, want 4/8", core)
	}
}

// Repeated blocks (multi-package profiles re-list shared files per test
// binary) must merge, not double-count.
func TestCoverMergesDuplicateBlocks(t *testing.T) {
	dup := sampleProfile +
		"github.com/flipper-mining/flipper/internal/sketch/sketch.go:22.2,30.3 2 1\n"
	pkgs, err := parseCoverProfile(writeProfile(t, dup))
	if err != nil {
		t.Fatal(err)
	}
	sk := pkgs["github.com/flipper-mining/flipper/internal/sketch"]
	if sk.total != 10 || sk.covered != 10 {
		t.Errorf("sketch = %d/%d statements, want 10/10 after merging the re-run block", sk.covered, sk.total)
	}
}

func TestCoverFloorEnforced(t *testing.T) {
	profile := writeProfile(t, sampleProfile)
	summary := filepath.Join(t.TempDir(), "summary.md")
	var sb strings.Builder

	// sketch sits at 80%: an 85% floor must fail, a 75% floor must pass.
	if err := runCover(profile, "internal/sketch=85", summary, &sb); err == nil {
		t.Error("85% floor on an 80% package passed")
	} else if !strings.Contains(err.Error(), "internal/sketch") {
		t.Errorf("failure does not name the package: %v", err)
	}
	if err := runCover(profile, "internal/sketch=75,internal/core=50", "", &sb); err != nil {
		t.Errorf("passing floors failed: %v", err)
	}
	// A required package absent from the profile is a hard failure.
	if err := runCover(profile, "internal/missing=10", "", &sb); err == nil {
		t.Error("floor on an unprofiled package passed")
	}

	raw, err := os.ReadFile(summary)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "internal/sketch") || !strings.Contains(string(raw), "80.0%") {
		t.Errorf("summary markdown missing coverage row:\n%s", raw)
	}
}

func TestCoverBadInputs(t *testing.T) {
	if _, err := parseCoverProfile(writeProfile(t, "mode: set\n")); err == nil {
		t.Error("empty profile accepted")
	}
	if _, err := parseCoverProfile(writeProfile(t, "not a profile line\n")); err == nil {
		t.Error("malformed profile accepted")
	}
	if _, err := parseRequire("internal/sketch"); err == nil {
		t.Error("floor without = accepted")
	}
	if _, err := parseRequire("internal/sketch=abc"); err == nil {
		t.Error("non-numeric floor accepted")
	}
}
