package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baselineJSON = `{
  "tag": "PR7",
  "maxprocs": 1,
  "benchmarks": [
    {"name": "CountingDense/bitmap", "ns_per_op": 20000000, "allocs_per_op": 20000, "bytes_per_op": 8000000},
    {"name": "CountingDense/bitmap/warm", "ns_per_op": 5000000, "allocs_per_op": 4200, "bytes_per_op": 500000}
  ]
}`

func TestDiffPassesWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", baselineJSON)
	cur := writeFile(t, dir, "cur.json", `{
  "tag": "ci",
  "benchmarks": [
    {"name": "CountingDense/bitmap", "ns_per_op": 24000000, "allocs_per_op": 21000},
    {"name": "CountingDense/bitmap/warm", "ns_per_op": 4000000, "allocs_per_op": 4100},
    {"name": "CountingDense/extra", "ns_per_op": 1, "allocs_per_op": 1}
  ]
}`)
	summary := filepath.Join(dir, "summary.md")
	var out strings.Builder
	if err := runDiff(base, cur, 0.25, summary, &out); err != nil {
		t.Fatalf("gate failed on a +20%% run: %v\n%s", err, out.String())
	}
	md, err := os.ReadFile(summary)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Perf gate", "CountingDense/bitmap", "🆕 new", "within threshold"} {
		if !strings.Contains(string(md), want) {
			t.Errorf("summary missing %q:\n%s", want, md)
		}
	}
}

func TestDiffFailsOnNsRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", baselineJSON)
	cur := writeFile(t, dir, "cur.json", `{
  "tag": "ci",
  "benchmarks": [
    {"name": "CountingDense/bitmap", "ns_per_op": 26000000, "allocs_per_op": 20000},
    {"name": "CountingDense/bitmap/warm", "ns_per_op": 5000000, "allocs_per_op": 4200}
  ]
}`)
	summary := filepath.Join(dir, "summary.md")
	var out strings.Builder
	err := runDiff(base, cur, 0.25, summary, &out)
	if err == nil {
		t.Fatalf("gate passed a +30%% ns/op regression:\n%s", out.String())
	}
	md, _ := os.ReadFile(summary)
	if !strings.Contains(string(md), "regression detected") {
		t.Errorf("summary does not flag the regression:\n%s", md)
	}
}

func TestDiffFailsOnAllocsRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", baselineJSON)
	cur := writeFile(t, dir, "cur.json", `{
  "tag": "ci",
  "benchmarks": [
    {"name": "CountingDense/bitmap", "ns_per_op": 20000000, "allocs_per_op": 20000},
    {"name": "CountingDense/bitmap/warm", "ns_per_op": 5000000, "allocs_per_op": 9000}
  ]
}`)
	var out strings.Builder
	if err := runDiff(base, cur, 0.25, "", &out); err == nil {
		t.Fatalf("gate passed a 2x allocs/op regression:\n%s", out.String())
	}
}

func TestDiffFailsOnMissingBenchmark(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", baselineJSON)
	cur := writeFile(t, dir, "cur.json", `{
  "tag": "ci",
  "benchmarks": [
    {"name": "CountingDense/bitmap", "ns_per_op": 20000000, "allocs_per_op": 20000}
  ]
}`)
	var out strings.Builder
	err := runDiff(base, cur, 0.25, "", &out)
	if err == nil {
		t.Fatalf("gate passed with a baseline benchmark missing from the run:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "MISSING") {
		t.Errorf("diff output does not call out the missing benchmark:\n%s", out.String())
	}
}

const benchOutput = `goos: linux
goarch: amd64
BenchmarkCountingDense/scan-8   	       1	  47003334 ns/op	 7242440 B/op	   20423 allocs/op
BenchmarkCountingDense/bitmap-8 	       1	  19580593 ns/op	 7991840 B/op	   20647 allocs/op
BenchmarkCountingDenseWarm/bitmap-8 	   1	   5314555 ns/op	 1898928 B/op	    4178 allocs/op
PASS
`

func TestBudgetPasses(t *testing.T) {
	dir := t.TempDir()
	budget := writeFile(t, dir, "budget.txt", `# comment
BenchmarkCountingDense/scan 30000
BenchmarkCountingDense/bitmap 30000
BenchmarkCountingDenseWarm/bitmap 8000
`)
	bench := writeFile(t, dir, "bench.txt", benchOutput)
	var out strings.Builder
	if err := runBudget(budget, bench, &out); err != nil {
		t.Fatalf("budget check failed on in-budget run: %v\n%s", err, out.String())
	}
}

func TestBudgetFailsOverBudget(t *testing.T) {
	dir := t.TempDir()
	budget := writeFile(t, dir, "budget.txt", "BenchmarkCountingDense/scan 20000\n")
	bench := writeFile(t, dir, "bench.txt", benchOutput)
	var out strings.Builder
	if err := runBudget(budget, bench, &out); err == nil {
		t.Fatalf("budget check passed 20423 allocs against a 20000 budget:\n%s", out.String())
	}
}

func TestBudgetFailsOnUnmatchedEntry(t *testing.T) {
	dir := t.TempDir()
	budget := writeFile(t, dir, "budget.txt", `BenchmarkCountingDense/scan 30000
BenchmarkCountingDense/renamed_away 30000
`)
	bench := writeFile(t, dir, "bench.txt", benchOutput)
	var out strings.Builder
	err := runBudget(budget, bench, &out)
	if err == nil {
		t.Fatalf("budget check passed with an entry that never ran:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "NEVER RAN") {
		t.Errorf("output does not call out the dead budget entry:\n%s", out.String())
	}
}

func TestBudgetRejectsMalformedFile(t *testing.T) {
	dir := t.TempDir()
	bench := writeFile(t, dir, "bench.txt", benchOutput)
	for name, content := range map[string]string{
		"three-fields": "BenchmarkX 100 extra\n",
		"non-numeric":  "BenchmarkX lots\n",
		"duplicate":    "BenchmarkX 1\nBenchmarkX 2\n",
		"empty":        "# only comments\n",
	} {
		budget := writeFile(t, dir, name+".txt", content)
		var out strings.Builder
		if err := runBudget(budget, bench, &out); err == nil {
			t.Errorf("%s: malformed budget file accepted", name)
		}
	}
}
