// Command bench_gate is the CI perf wall. It has three modes:
//
// Regression diff (the perf gate proper):
//
//	go run ./ci -baseline BENCH_PR7.json -current BENCH_ci.json \
//	    [-max-regress 0.25] [-summary "$GITHUB_STEP_SUMMARY"]
//
// compares the freshly measured BENCH_ci.json against the committed
// baseline, benchmark by benchmark. A benchmark whose ns/op or allocs/op
// exceeds the baseline by more than the threshold fails the gate, as does
// a baseline benchmark missing from the current run (a silently dropped
// benchmark is a regression in coverage, not a pass). Benchmarks new in
// the current run are reported but never fail. The full diff is written as
// a markdown table to the -summary file (the GitHub job summary) and as
// text to stdout, so a red gate is diagnosable from the CI page alone.
//
// Alloc budgets (replacing the old awk guard in bench-smoke):
//
//	go run ./ci -budget ci/alloc_budget.txt -bench alloc.txt
//
// parses `go test -bench -benchmem` output and enforces the per-benchmark
// allocs/op ceilings of the budget file. A budget line naming a benchmark
// that never ran is a hard failure — a renamed or deleted benchmark must
// be renamed or deleted in the budget too, otherwise the guard it carried
// silently evaporates.
//
// Coverage floors (see cover.go):
//
//	go run ./ci -cover cover.out -require internal/sketch=85 \
//	    [-summary "$GITHUB_STEP_SUMMARY"]
//
// aggregates a `go test -coverprofile` file per package, writes the table
// to the job summary, and fails when a required package misses its floor
// or is absent from the profile.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// BenchRecord mirrors the per-benchmark entry of flipbench's BENCH_<tag>.json.
type BenchRecord struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// BenchFile mirrors flipbench's envelope; fields the gate ignores are
// dropped by the decoder.
type BenchFile struct {
	Tag        string        `json:"tag"`
	MaxProcs   int           `json:"maxprocs"`
	Benchmarks []BenchRecord `json:"benchmarks"`
}

func main() {
	var (
		baseline   = flag.String("baseline", "", "committed BENCH_<tag>.json to diff against")
		current    = flag.String("current", "", "freshly measured BENCH JSON")
		maxRegress = flag.Float64("max-regress", 0.25, "allowed fractional ns/op or allocs/op growth over baseline")
		summary    = flag.String("summary", os.Getenv("GITHUB_STEP_SUMMARY"), "markdown summary file to append the diff table to (default $GITHUB_STEP_SUMMARY)")
		budget     = flag.String("budget", "", "alloc budget file (budget mode)")
		bench      = flag.String("bench", "", "`go test -bench -benchmem` output to check against -budget")
		cover      = flag.String("cover", "", "`go test -coverprofile` file to aggregate per package (coverage mode)")
		require    = flag.String("require", "", "comma-separated pkg=pct coverage floors enforced in coverage mode")
	)
	flag.Parse()
	var err error
	switch {
	case *cover != "":
		err = runCover(*cover, *require, *summary, os.Stdout)
	case *budget != "":
		err = runBudget(*budget, *bench, os.Stdout)
	case *baseline != "":
		err = runDiff(*baseline, *current, *maxRegress, *summary, os.Stdout)
	default:
		err = fmt.Errorf("need -baseline/-current (diff mode), -budget/-bench (budget mode) or -cover (coverage mode)")
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench_gate: %v\n", err)
		os.Exit(1)
	}
}

// diffRow is one benchmark's comparison in the diff table.
type diffRow struct {
	name               string
	baseNs, curNs      float64
	baseAllocs         int64
	curAllocs          int64
	nsDelta, allocsDel float64 // fractional change vs baseline
	status             string  // "ok" | "REGRESSED" | "MISSING" | "new"
	failed             bool
}

func loadBench(path string) (*BenchFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f BenchFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks recorded", path)
	}
	return &f, nil
}

// runDiff executes the regression-diff mode.
func runDiff(basePath, curPath string, maxRegress float64, summaryPath string, out io.Writer) error {
	if curPath == "" {
		return fmt.Errorf("diff mode needs -current")
	}
	base, err := loadBench(basePath)
	if err != nil {
		return err
	}
	cur, err := loadBench(curPath)
	if err != nil {
		return err
	}
	curByName := make(map[string]BenchRecord, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		curByName[b.Name] = b
	}
	frac := func(baseV, curV float64) float64 {
		if baseV <= 0 {
			return 0
		}
		return curV/baseV - 1
	}
	var rows []diffRow
	failed := false
	for _, b := range base.Benchmarks {
		c, ok := curByName[b.Name]
		if !ok {
			rows = append(rows, diffRow{name: b.Name, baseNs: b.NsPerOp, baseAllocs: b.AllocsPerOp, status: "MISSING", failed: true})
			failed = true
			continue
		}
		delete(curByName, b.Name)
		r := diffRow{
			name:   b.Name,
			baseNs: b.NsPerOp, curNs: c.NsPerOp,
			baseAllocs: b.AllocsPerOp, curAllocs: c.AllocsPerOp,
			nsDelta:   frac(b.NsPerOp, c.NsPerOp),
			allocsDel: frac(float64(b.AllocsPerOp), float64(c.AllocsPerOp)),
			status:    "ok",
		}
		if r.nsDelta > maxRegress || r.allocsDel > maxRegress {
			r.status, r.failed = "REGRESSED", true
			failed = true
		}
		rows = append(rows, r)
	}
	extra := make([]string, 0, len(curByName))
	for name := range curByName {
		extra = append(extra, name)
	}
	sort.Strings(extra)
	for _, name := range extra {
		c := curByName[name]
		rows = append(rows, diffRow{name: name, curNs: c.NsPerOp, curAllocs: c.AllocsPerOp, status: "new"})
	}

	renderText(out, base.Tag, cur.Tag, maxRegress, rows)
	if summaryPath != "" {
		f, err := os.OpenFile(summaryPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("summary: %w", err)
		}
		renderMarkdown(f, base.Tag, cur.Tag, maxRegress, rows, failed)
		if err := f.Close(); err != nil {
			return fmt.Errorf("summary: %w", err)
		}
	}
	if failed {
		return fmt.Errorf("perf gate failed: regression or missing benchmark vs %s (threshold %+.0f%%)", basePath, maxRegress*100)
	}
	fmt.Fprintf(out, "perf gate passed: %d benchmarks within %+.0f%% of %s\n", len(base.Benchmarks), maxRegress*100, basePath)
	return nil
}

func renderText(w io.Writer, baseTag, curTag string, maxRegress float64, rows []diffRow) {
	fmt.Fprintf(w, "perf diff: %s (current) vs %s (baseline), fail above %+.0f%%\n", curTag, baseTag, maxRegress*100)
	for _, r := range rows {
		switch r.status {
		case "MISSING":
			fmt.Fprintf(w, "%-44s MISSING from current run (baseline %12.0f ns/op)\n", r.name, r.baseNs)
		case "new":
			fmt.Fprintf(w, "%-44s new: %12.0f ns/op %8d allocs/op\n", r.name, r.curNs, r.curAllocs)
		default:
			fmt.Fprintf(w, "%-44s %12.0f -> %12.0f ns/op (%+6.1f%%)  %7d -> %7d allocs/op (%+6.1f%%)  %s\n",
				r.name, r.baseNs, r.curNs, r.nsDelta*100, r.baseAllocs, r.curAllocs, r.allocsDel*100, r.status)
		}
	}
}

func renderMarkdown(w io.Writer, baseTag, curTag string, maxRegress float64, rows []diffRow, failed bool) {
	verdict := "✅ within threshold"
	if failed {
		verdict = "❌ regression detected"
	}
	fmt.Fprintf(w, "### Perf gate: `%s` vs baseline `%s` — %s\n\n", curTag, baseTag, verdict)
	fmt.Fprintf(w, "Fails above %+.0f%% ns/op or allocs/op growth.\n\n", maxRegress*100)
	fmt.Fprintln(w, "| benchmark | base ns/op | cur ns/op | Δns | base allocs | cur allocs | Δallocs | status |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---:|---:|---:|---|")
	for _, r := range rows {
		switch r.status {
		case "MISSING":
			fmt.Fprintf(w, "| `%s` | %.0f | — | — | %d | — | — | ❌ missing |\n", r.name, r.baseNs, r.baseAllocs)
		case "new":
			fmt.Fprintf(w, "| `%s` | — | %.0f | — | — | %d | — | 🆕 new |\n", r.name, r.curNs, r.curAllocs)
		default:
			mark := "✅"
			if r.failed {
				mark = "❌"
			}
			fmt.Fprintf(w, "| `%s` | %.0f | %.0f | %+.1f%% | %d | %d | %+.1f%% | %s |\n",
				r.name, r.baseNs, r.curNs, r.nsDelta*100, r.baseAllocs, r.curAllocs, r.allocsDel*100, mark)
		}
	}
	fmt.Fprintln(w)
}

// runBudget executes the alloc-budget mode.
func runBudget(budgetPath, benchPath string, out io.Writer) error {
	if benchPath == "" {
		return fmt.Errorf("budget mode needs -bench")
	}
	budgets, order, err := loadBudgets(budgetPath)
	if err != nil {
		return err
	}
	allocs, err := parseBenchOutput(benchPath)
	if err != nil {
		return err
	}
	failed := false
	for _, name := range order {
		got, ran := allocs[name]
		if !ran {
			fmt.Fprintf(out, "%-44s NEVER RAN (budget %d)\n", name, budgets[name])
			failed = true
			continue
		}
		status := "ok"
		if got > budgets[name] {
			status = "OVER BUDGET"
			failed = true
		}
		fmt.Fprintf(out, "%-44s %7d allocs/op (budget %7d) %s\n", name, got, budgets[name], status)
	}
	if failed {
		return fmt.Errorf("alloc budget check failed (see above; budgets in %s)", budgetPath)
	}
	return nil
}

// loadBudgets reads "name max-allocs" lines, ignoring blanks and #-comments.
func loadBudgets(path string) (map[string]int64, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	budgets := make(map[string]int64)
	var order []string
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, nil, fmt.Errorf("%s:%d: want \"name max-allocs\", got %q", path, line, text)
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("%s:%d: bad budget %q: %v", path, line, fields[1], err)
		}
		if _, dup := budgets[fields[0]]; dup {
			return nil, nil, fmt.Errorf("%s:%d: duplicate budget for %s", path, line, fields[0])
		}
		budgets[fields[0]] = n
		order = append(order, fields[0])
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if len(budgets) == 0 {
		return nil, nil, fmt.Errorf("%s: no budgets", path)
	}
	return budgets, order, nil
}

// parseBenchOutput extracts "<name> -> allocs/op" from `go test -bench
// -benchmem` output, stripping the -<GOMAXPROCS> suffix go appends to
// benchmark names.
func parseBenchOutput(path string) (map[string]int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	allocs := make(map[string]int64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		for i := 2; i < len(fields); i++ {
			if fields[i] == "allocs/op" {
				n, err := strconv.ParseInt(fields[i-1], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("%s: bad allocs/op on line %q", path, sc.Text())
				}
				allocs[name] = n
			}
		}
	}
	return allocs, sc.Err()
}
