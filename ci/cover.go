package main

// Coverage mode of the CI gate:
//
//	go test ./... -coverprofile=cover.out
//	go run ./ci -cover cover.out [-summary "$GITHUB_STEP_SUMMARY"] \
//	    [-require internal/sketch=85,internal/core=0]
//
// aggregates the profile per package (covered statements over total
// statements, the same arithmetic as `go tool cover -func` totals), prints
// the table, appends it as markdown to the job summary, and fails when a
// -require'd package is below its floor or absent from the profile — a
// package that silently stopped being tested must fail the gate, not
// report 0% into the void.

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

// pkgCover accumulates one package's statement counts.
type pkgCover struct {
	pkg            string
	total, covered int64
}

func (p pkgCover) percent() float64 {
	if p.total == 0 {
		return 0
	}
	return 100 * float64(p.covered) / float64(p.total)
}

// runCover executes the coverage mode.
func runCover(profilePath, requireSpec, summaryPath string, out io.Writer) error {
	pkgs, err := parseCoverProfile(profilePath)
	if err != nil {
		return err
	}
	floors, err := parseRequire(requireSpec)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(pkgs))
	for name := range pkgs {
		names = append(names, name)
	}
	sort.Strings(names)

	var failures []string
	fmt.Fprintf(out, "coverage per package (%s):\n", profilePath)
	for _, name := range names {
		p := pkgs[name]
		floorNote := ""
		if floor, required := matchFloor(floors, name); required {
			floorNote = fmt.Sprintf("  (floor %.0f%%)", floor)
			if p.percent() < floor {
				floorNote += "  BELOW FLOOR"
				failures = append(failures, fmt.Sprintf("%s at %.1f%% < %.0f%%", name, p.percent(), floor))
			}
		}
		fmt.Fprintf(out, "%-60s %6.1f%% (%d/%d statements)%s\n", name, p.percent(), p.covered, p.total, floorNote)
	}
	for suffix := range floors {
		if _, seen := matchPkg(pkgs, suffix); !seen {
			failures = append(failures, fmt.Sprintf("required package %s absent from the profile", suffix))
		}
	}

	if summaryPath != "" {
		f, err := os.OpenFile(summaryPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("summary: %w", err)
		}
		verdict := "✅ all floors met"
		if len(failures) > 0 {
			verdict = "❌ " + strings.Join(failures, "; ")
		}
		fmt.Fprintf(f, "### Coverage — %s\n\n", verdict)
		fmt.Fprintln(f, "| package | coverage | statements |")
		fmt.Fprintln(f, "|---|---:|---:|")
		for _, name := range names {
			p := pkgs[name]
			fmt.Fprintf(f, "| `%s` | %.1f%% | %d/%d |\n", name, p.percent(), p.covered, p.total)
		}
		fmt.Fprintln(f)
		if err := f.Close(); err != nil {
			return fmt.Errorf("summary: %w", err)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("coverage gate failed: %s", strings.Join(failures, "; "))
	}
	return nil
}

// parseCoverProfile aggregates a `go test -coverprofile` file per package.
// Each block line reads "file.go:s.c,e.c numStmts hitCount"; a statement is
// covered when any block containing it ran at least once. Blocks for the
// same region repeat across test binaries in a multi-package profile, so
// counts are merged by block key before totalling.
func parseCoverProfile(profilePath string) (map[string]pkgCover, error) {
	f, err := os.Open(profilePath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	type block struct {
		stmts int64
		hit   bool
	}
	blocks := make(map[string]*block)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "mode:") {
			continue
		}
		// "<file>:<pos> <numStmts> <count>"
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s:%d: malformed profile line %q", profilePath, line, text)
		}
		stmts, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad statement count %q", profilePath, line, fields[1])
		}
		count, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad hit count %q", profilePath, line, fields[2])
		}
		key := fields[0]
		b, ok := blocks[key]
		if !ok {
			b = &block{stmts: stmts}
			blocks[key] = b
		}
		if count > 0 {
			b.hit = true
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(blocks) == 0 {
		return nil, fmt.Errorf("%s: empty coverage profile", profilePath)
	}
	pkgs := make(map[string]pkgCover)
	for key, b := range blocks {
		file := key
		if i := strings.Index(file, ":"); i >= 0 {
			file = file[:i]
		}
		pkg := path.Dir(file)
		p := pkgs[pkg]
		p.pkg = pkg
		p.total += b.stmts
		if b.hit {
			p.covered += b.stmts
		}
		pkgs[pkg] = p
	}
	return pkgs, nil
}

// parseRequire parses "pkg=pct,pkg=pct" floors. Package names match as
// import-path suffixes, so "internal/sketch" matches the module-qualified
// profile paths.
func parseRequire(spec string) (map[string]float64, error) {
	floors := make(map[string]float64)
	if spec == "" {
		return floors, nil
	}
	for _, part := range strings.Split(spec, ",") {
		pkg, pct, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || pkg == "" {
			return nil, fmt.Errorf("bad -require entry %q (want pkg=pct)", part)
		}
		v, err := strconv.ParseFloat(pct, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -require floor %q: %v", pct, err)
		}
		floors[pkg] = v
	}
	return floors, nil
}

// matchFloor finds the floor whose package suffix matches name, if any.
func matchFloor(floors map[string]float64, name string) (float64, bool) {
	for suffix, floor := range floors {
		if name == suffix || strings.HasSuffix(name, "/"+suffix) {
			return floor, true
		}
	}
	return 0, false
}

// matchPkg finds a profiled package matching the required suffix.
func matchPkg(pkgs map[string]pkgCover, suffix string) (string, bool) {
	for name := range pkgs {
		if name == suffix || strings.HasSuffix(name, "/"+suffix) {
			return name, true
		}
	}
	return "", false
}
