package simdata

import (
	"github.com/flipper-mining/flipper/internal/datasets"
	"github.com/flipper-mining/flipper/internal/gen"
)

// Dataset bundles a simulated database, its taxonomy, the paper's
// thresholds for it, and the planted ground truth.
type Dataset = datasets.Dataset

// ExpectedFlip records one planted flipping pattern.
type ExpectedFlip = gen.ExpectedFlip

// PaperToy returns the ten-transaction worked example of the paper's
// Figure 4; its only flipping pattern is {a11, b11}.
func PaperToy() *Dataset { return datasets.PaperToy() }

// Groceries simulates the GROCERIES dataset (9,800 × scale transactions,
// 3-level store taxonomy, the patterns of Figure 10 planted).
func Groceries(scale float64, seed int64) (*Dataset, error) {
	return datasets.Groceries(scale, seed)
}

// Census simulates the CENSUS dataset (32,000 × scale records, 2-level
// attribute hierarchies, the patterns of Figure 11 planted).
func Census(scale float64, seed int64) (*Dataset, error) {
	return datasets.Census(scale, seed)
}

// Medline simulates the MEDLINE dataset (640,000 × scale citations, 3-level
// MeSH-like topic tree, the patterns of Figure 12 planted).
func Medline(scale float64, seed int64) (*Dataset, error) {
	return datasets.Medline(scale, seed)
}

// Movies simulates the paper's motivating MovieLens example (Example 1,
// Figure 2a): 6,000 × scale users' favorite movies over a genre taxonomy,
// with the Big Country × High Noon flip planted.
func Movies(scale float64, seed int64) (*Dataset, error) {
	return datasets.Movies(scale, seed)
}

// ByName builds a simulator by its paper name (case-insensitive).
func ByName(name string, scale float64, seed int64) (*Dataset, error) {
	return datasets.ByName(name, scale, seed)
}

// Names lists the three reality-check simulators in the paper's order.
func Names() []string { return datasets.Names() }
