/*
Package simdata exposes the repository's dataset simulators through the
public API: the ten-transaction worked example of the paper's Figure 4
(PaperToy), the motivating MovieLens example (Movies), and the three
reality-check simulators — Groceries, Census and Medline — with the
paper's published flipping patterns planted in them.

The original datasets are not redistributable, so the simulators stand in
for them in tests, benchmarks and demos. Each preserves the properties the
paper's evaluation depends on: transaction counts and widths, taxonomy
shape (including the unbalanced branches that exercise the Figure 3
extension), the background co-occurrence structure, and — most importantly
— the published flipping patterns, which are planted explicitly and
returned as ground truth in Dataset.Expected. The construction of each
simulator is documented in its generator under internal/datasets.

All simulators are deterministic given a seed, and accept a scale factor
so the same shape can run as a quick test (scale < 1) or a full-size
benchmark workload. The flipgen command writes any of them to disk in the
taxonomy.tsv + baskets.txt layout the flipper CLI and the flipperd service
consume. See docs/ARCHITECTURE.md for the package map.
*/
package simdata
