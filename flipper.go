// Package flipper mines flipping correlation patterns from transactional
// databases with taxonomies, implementing Barsky, Kim, Weninger & Han,
// "Mining Flipping Correlations from Large Datasets with Taxonomies",
// PVLDB 5(4), 2011.
//
// A flipping pattern is an itemset whose correlation alternates between
// positive and negative as its items are generalized level by level up a
// taxonomy — e.g. eggs and fish are rarely bought together (negative) even
// though their categories, fresh produce and meat&fish, are strongly
// positively correlated. The Flipper algorithm finds all such patterns
// directly, without enumerating all frequent itemsets, using
// correlation-based pruning that works for measures that are not
// anti-monotonic.
//
// # Quickstart
//
//	tree, err := flipper.ParseTaxonomy(strings.NewReader(taxonomyEdges), nil)
//	db, err := flipper.ReadBaskets(strings.NewReader(baskets), tree.Dict())
//	cfg := flipper.DefaultConfig(tree.Height())
//	cfg.Gamma, cfg.Epsilon = 0.6, 0.35
//	res, err := flipper.Mine(db, tree, cfg)
//	for _, p := range res.Patterns {
//	    fmt.Print(p.Format(tree))
//	}
//
// The package is a thin facade over the internal engine; all types are
// aliases, so values flow freely between this package and the returned
// results.
package flipper

import (
	"context"
	"io"

	"github.com/flipper-mining/flipper/internal/core"
	"github.com/flipper-mining/flipper/internal/dict"
	"github.com/flipper-mining/flipper/internal/itemset"
	"github.com/flipper-mining/flipper/internal/measure"
	"github.com/flipper-mining/flipper/internal/taxonomy"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// Core aliases: the search configuration, results and patterns.
type (
	// Config parameterizes a mining run; start from DefaultConfig.
	Config = core.Config
	// Result carries patterns and run statistics.
	Result = core.Result
	// Pattern is one flipping correlation pattern with its full chain.
	Pattern = core.Pattern
	// LevelInfo describes one level of a pattern's generalization chain.
	LevelInfo = core.LevelInfo
	// Label classifies an itemset's correlation sign.
	Label = core.Label
	// Stats aggregates cost counters of a run.
	Stats = core.Stats
	// CellStat is the per-cell breakdown (Config.KeepCellStats).
	CellStat = core.CellStat
	// PruningLevel selects the pruning machinery (Basic … Full).
	PruningLevel = core.PruningLevel
	// CountStrategy selects the support-counting implementation.
	CountStrategy = core.CountStrategy
)

// Substrate aliases: taxonomy, transactions, measures, itemsets.
type (
	// Taxonomy is the is-a hierarchy over items.
	Taxonomy = taxonomy.Tree
	// TaxonomyBuilder accumulates parent→child edges.
	TaxonomyBuilder = taxonomy.Builder
	// DB is an in-memory transaction database.
	DB = txdb.DB
	// Source is a replayable stream of transactions (DB, FileSource or
	// ShardedSource).
	Source = txdb.Source
	// FileSource streams a basket file from disk on every pass.
	FileSource = txdb.FileSource
	// ShardedSource composes per-shard Sources for shard-parallel counting
	// (Config.Shards), including out-of-core mining over per-shard files.
	ShardedSource = txdb.ShardedSource
	// Dictionary maps item names to dense int32 IDs.
	Dictionary = dict.Dictionary
	// Measure selects a null-invariant correlation measure.
	Measure = measure.Measure
	// Itemset is a canonical (sorted, duplicate-free) set of item IDs.
	Itemset = itemset.Set
	// ItemID identifies one item or taxonomy node.
	ItemID = itemset.ID
)

// Pruning levels, mirroring the four variants of the paper's evaluation.
const (
	// Basic is the support-only Apriori baseline with post-filtering.
	Basic = core.Basic
	// Flipping gates vertical growth on alive flipping chains.
	Flipping = core.Flipping
	// FlippingTPG adds termination of pattern growth (Theorem 3).
	FlippingTPG = core.FlippingTPG
	// Full adds single-item based pruning (Theorem 2 / Corollary 2).
	Full = core.Full
)

// Counting strategies.
const (
	// CountScan probes candidates with transaction subsets (paper-faithful).
	CountScan = core.CountScan
	// CountTIDList intersects per-item transaction-ID lists.
	CountTIDList = core.CountTIDList
	// CountAuto picks scan, tidlist or bitmap per cell with a cost model.
	CountAuto = core.CountAuto
	// CountBitmap ANDs per-item bit vectors and pop-counts the result.
	CountBitmap = core.CountBitmap
)

// Anchored-search modes (Config.AnchorMode).
const (
	// AnchorGuaranteed returns exactly what filtering and ranking the full
	// exact mine would (the default).
	AnchorGuaranteed = core.AnchorGuaranteed
	// AnchorBestEffort additionally prunes on sketch estimates and reports
	// a per-pattern Confidence.
	AnchorBestEffort = core.AnchorBestEffort
)

// ErrUnknownAnchor reports an anchored run whose Config.Anchor names no
// item in the taxonomy.
var ErrUnknownAnchor = core.ErrUnknownAnchor

// Correlation labels.
const (
	// LabelNone marks correlations strictly between ε and γ.
	LabelNone = core.LabelNone
	// LabelPositive marks Corr ≥ γ.
	LabelPositive = core.LabelPositive
	// LabelNegative marks Corr ≤ ε.
	LabelNegative = core.LabelNegative
)

// The five null-invariant measures of the paper's Table 2.
const (
	// Kulczynski is the arithmetic mean of conditional probabilities (the
	// paper's default).
	Kulczynski = measure.Kulczynski
	// Cosine is the geometric mean.
	Cosine = measure.Cosine
	// AllConfidence is the minimum (anti-monotonic).
	AllConfidence = measure.AllConfidence
	// Coherence is the harmonic mean (the paper's re-definition; see
	// Measure.AntiMonotonic for a subtlety the reproduction uncovered).
	Coherence = measure.Coherence
	// MaxConfidence is the maximum.
	MaxConfidence = measure.MaxConfidence
)

// Mine runs the Flipper algorithm (or the BASIC baseline, per cfg.Pruning)
// over src with the given taxonomy and returns all flipping patterns.
//
// Each call prepares the data from scratch. To mine the same dataset more
// than once — threshold sweeps, parameter exploration, serving repeated
// queries — use NewEngine and Engine.Mine, which cache level views,
// counting indexes and scratch memory across runs.
func Mine(src Source, tree *Taxonomy, cfg Config) (*Result, error) {
	return core.Mine(src, tree, cfg)
}

// MineContext is Mine under a context: the run polls ctx at cheap
// checkpoints (between candidate blocks, transaction blocks and table
// cells) and aborts with an error wrapping ctx.Err() — typically within
// well under 100ms of cancellation even on dense workloads. A cancelled
// run returns no partial results.
func MineContext(ctx context.Context, src Source, tree *Taxonomy, cfg Config) (*Result, error) {
	return core.MineContext(ctx, src, tree, cfg)
}

// Engine is a reusable miner bound to one dataset. Materialized level
// views, bitmap and tid-list indexes, and counting scratch built for one
// Mine call are reused by subsequent calls with compatible configurations,
// so repeat runs skip data preparation entirely. Results are byte-identical
// to the one-shot Mine. An Engine is safe for concurrent use.
type Engine = core.Engine

// NewEngine returns a reusable mining engine over one source and taxonomy.
func NewEngine(src Source, tree *Taxonomy) *Engine { return core.NewEngine(src, tree) }

// DefaultConfig returns the paper's default settings for a taxonomy of the
// given height: Kulczynski, γ=0.3, ε=0.1, full pruning, and per-level
// supports decreasing from 1% to 0.01%.
func DefaultConfig(height int) Config { return core.DefaultConfig(height) }

// NewTaxonomyBuilder starts a taxonomy; pass nil for a fresh dictionary.
func NewTaxonomyBuilder(d *Dictionary) *TaxonomyBuilder { return taxonomy.NewBuilder(d) }

// ParseTaxonomy reads the "child<TAB>parent" edge-list format.
func ParseTaxonomy(r io.Reader, d *Dictionary) (*Taxonomy, error) { return taxonomy.Parse(r, d) }

// NewDB returns an empty transaction database; pass nil for a fresh
// dictionary, or tree.Dict() to share the taxonomy's.
func NewDB(d *Dictionary) *DB { return txdb.New(d) }

// ReadBaskets parses the one-transaction-per-line basket format (item names
// separated by commas).
func ReadBaskets(r io.Reader, d *Dictionary) (*DB, error) { return txdb.ReadBaskets(r, d) }

// OpenBasketFile opens a basket file as a streaming Source for disk-resident
// mining (set Config.Materialize = false to keep passes on disk).
func OpenBasketFile(path string, d *Dictionary) (*FileSource, error) {
	return txdb.OpenFile(path, d)
}

// OpenBasketSource opens one basket file as a Source: a FileSource re-read
// from disk on every pass when stream is set, otherwise an in-memory DB
// read once.
func OpenBasketSource(path string, d *Dictionary, stream bool) (Source, error) {
	return txdb.OpenBasketSource(path, d, stream)
}

// PartitionDB splits an in-memory database into an n-shard source whose
// shards alias the database's storage; mining it makes every counting
// backend shard-parallel with output byte-identical to the unsharded run.
// Equivalent to setting Config.Shards when mining the DB directly.
func PartitionDB(db *DB, n int) *ShardedSource { return txdb.PartitionSource(db, n) }

// OpenShardDir opens a directory of shard*.txt basket files (the flipgen
// -shards layout) as a ShardedSource, in shard order. With stream set
// each shard becomes a FileSource re-read from disk on every pass — the
// out-of-core mode; otherwise each shard is read into memory once.
func OpenShardDir(dir string, d *Dictionary, stream bool) (*ShardedSource, error) {
	return txdb.OpenShardDir(dir, d, stream)
}

// NewShardedSource composes per-shard Sources (e.g. one FileSource per
// basket shard file) into one mineable source. All shards must share a
// dictionary. With Config.Materialize = false this is the out-of-core mode:
// counting streams the shard files in parallel, so datasets larger than RAM
// mine with only per-worker scan buffers resident.
func NewShardedSource(shards ...Source) (*ShardedSource, error) {
	return txdb.NewSharded(shards...)
}

// EpsilonPoint is one step of an ε sweep (see EpsilonSweep).
type EpsilonPoint = core.EpsilonPoint

// EpsilonSweep mines with each ε (all below cfg.Gamma) and reports pattern
// counts in descending-ε order — the paper's threshold-setting workflow.
func EpsilonSweep(src Source, tree *Taxonomy, cfg Config, epsilons []float64) ([]EpsilonPoint, error) {
	return core.EpsilonSweep(src, tree, cfg, epsilons)
}

// EpsilonSweepContext is EpsilonSweep under a context; the sweep aborts
// between and within steps when ctx is done.
func EpsilonSweepContext(ctx context.Context, src Source, tree *Taxonomy, cfg Config, epsilons []float64) ([]EpsilonPoint, error) {
	return core.EpsilonSweepContext(ctx, src, tree, cfg, epsilons)
}

// SuggestEpsilon bisects for the most selective ε that still yields at
// least target flipping patterns; found is false when even ε just below γ
// cannot reach the target.
func SuggestEpsilon(src Source, tree *Taxonomy, cfg Config, target int) (eps float64, res *Result, found bool, err error) {
	return core.SuggestEpsilon(src, tree, cfg, target)
}

// SuggestEpsilonContext is SuggestEpsilon under a context; the bisection
// aborts between and within probe runs when ctx is done.
func SuggestEpsilonContext(ctx context.Context, src Source, tree *Taxonomy, cfg Config, target int) (eps float64, res *Result, found bool, err error) {
	return core.SuggestEpsilonContext(ctx, src, tree, cfg, target)
}

// ParseMeasure resolves a measure name ("kulczynski", "cosine",
// "all_confidence", "coherence", "max_confidence").
func ParseMeasure(name string) (Measure, error) { return measure.Parse(name) }

// ParsePruningLevel resolves a pruning level name ("basic", "flipping",
// "flipping+tpg", "full").
func ParsePruningLevel(name string) (PruningLevel, error) { return core.ParsePruningLevel(name) }

// ParseCountStrategy resolves a counting strategy name ("scan", "tidlist",
// "bitmap", "auto").
func ParseCountStrategy(name string) (CountStrategy, error) { return core.ParseCountStrategy(name) }
