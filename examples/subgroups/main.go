// Subgroups: the paper's first future-work item — discriminative
// correlations that are specific to a given sub-group. Where a flipping
// pattern contrasts correlations across taxonomy levels, a discriminative
// correlation contrasts them across populations: here, two product features
// that co-occur strongly across all sessions flip to repelling within the
// sessions of one customer segment.
//
//	go run ./examples/subgroups
package main

import (
	"fmt"
	"log"
	"math/rand"

	flipper "github.com/flipper-mining/flipper"
	"github.com/flipper-mining/flipper/subgroup"
)

func main() {
	// A small session log: features used per session, plus a segment marker
	// item for sessions of "mobile" users.
	b := flipper.NewTaxonomyBuilder(nil)
	for _, p := range [][]string{
		{"features", "search"}, {"features", "filters"}, {"features", "export"},
		{"features", "bulk edit"}, {"segments", "mobile"},
	} {
		if err := b.AddPath(p...); err != nil {
			log.Fatal(err)
		}
	}
	tree, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	db := flipper.NewDB(tree.Dict())
	rng := rand.New(rand.NewSource(3))
	emit := func(n int, names ...string) {
		for i := 0; i < n; i++ {
			tx := names
			if rng.Float64() < 0.3 {
				tx = append(append([]string{}, names...), "bulk edit")
			}
			db.AddNames(tx...)
		}
	}
	// Desktop sessions: search and filters go hand in hand.
	emit(60, "search", "filters")
	emit(10, "search", "export")
	// Mobile sessions: search is common but filters are painful — the pair
	// flips to negative within the segment.
	emit(3, "mobile", "search", "filters")
	emit(25, "mobile", "search")
	emit(25, "mobile", "filters", "export")

	ctxID, ok := tree.Dict().Lookup("mobile")
	if !ok {
		log.Fatal("segment item missing")
	}
	findings, err := subgroup.Discriminative(db, tree, flipper.Itemset{ctxID}, subgroup.Config{
		Measure: flipper.Kulczynski,
		Gamma:   0.5,
		Epsilon: 0.25,
		MinSup:  2,
		Level:   2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d discriminative correlation(s) for segment \"mobile\":\n\n", len(findings))
	for _, f := range findings {
		fmt.Println(f.Format(tree))
	}
	fmt.Println("\nreading: the pair correlates positively across all sessions but")
	fmt.Println("negatively within the segment — a segment-specific usability gap.")
}
