// Medline: the paper's literature-analysis scenario (Section 5.2,
// Figure 12). Citations are transactions, MeSH-like topics are items, and
// flipping patterns surface under- and over-represented research topic
// combinations: withdrawal syndrome × temperance is underrepresented
// relative to its parent disciplines, while biofeedback × behavior therapy
// is an established link between otherwise-disjoint disciplines.
//
//	go run ./examples/medline [-scale 0.05]
package main

import (
	"flag"
	"fmt"
	"log"

	flipper "github.com/flipper-mining/flipper"
	"github.com/flipper-mining/flipper/simdata"
)

func main() {
	scale := flag.Float64("scale", 0.05, "fraction of the original 640,000 citations")
	flag.Parse()

	ds, err := simdata.Medline(*scale, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %s, %d citations (scale %g of the 2010 working set)\n",
		ds.Name, ds.DB.Len(), *scale)
	fmt.Println(ds.Tree.Describe())
	fmt.Printf("thresholds: γ=%.2f ε=%.2f minsup=%v\n\n", ds.Gamma, ds.Epsilon, ds.MinSup)

	res, err := flipper.Mine(ds.DB, ds.Tree, ds.Config())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d flipping pattern(s):\n\n", len(res.Patterns))
	for _, p := range res.Patterns {
		fmt.Print(p.Format(ds.Tree))
		leaf := p.Chain[len(p.Chain)-1]
		if leaf.Label == flipper.LabelNegative {
			fmt.Println("  → underrepresented topic combination: a candidate research gap.")
		} else {
			fmt.Println("  → established specific link between otherwise-disjoint disciplines.")
		}
		fmt.Println()
	}
	fmt.Printf("run stats: %s\n", res.Stats.String())
}
