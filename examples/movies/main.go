// Movies: the paper's motivating example (Example 1, Figure 2a). Users'
// favorite movies form transactions; genres form the taxonomy. Romance and
// western are negatively correlated genres, yet "The Big Country (1958)"
// and "High Noon (1952)" are favored together — the correlation flips from
// negative to positive at the movie level, raising exactly the questions
// the paper opens with: exceptional movies, a mislabeled genre, or a real
// bridge between genres?
//
//	go run ./examples/movies
package main

import (
	"fmt"
	"log"

	flipper "github.com/flipper-mining/flipper"
	"github.com/flipper-mining/flipper/simdata"
)

func main() {
	ds, err := simdata.Movies(1.0, 19)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %s, %d users\n", ds.Name, ds.DB.Len())
	fmt.Println(ds.Tree.Describe())
	fmt.Printf("thresholds: γ=%.2f ε=%.2f minsup=%v\n\n", ds.Gamma, ds.Epsilon, ds.MinSup)

	res, err := flipper.Mine(ds.DB, ds.Tree, ds.Config())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d flipping pattern(s):\n\n", len(res.Patterns))
	for _, p := range res.Patterns {
		fmt.Print(p.Format(ds.Tree))
		fmt.Println()
	}
	fmt.Println("The paper's three candidate explanations for such a flip:")
	fmt.Println(" (1) exceptional movies that cross audience boundaries,")
	fmt.Println(" (2) a movie assigned to the wrong genre, or")
	fmt.Println(" (3) a genuine hidden link between the two genres.")
}
