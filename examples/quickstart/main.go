// Quickstart: mine the worked example of the paper's Figure 4 through the
// public API, from raw text formats to formatted patterns.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	flipper "github.com/flipper-mining/flipper"
)

// The taxonomy of Figure 4: categories a and b, three levels.
const taxonomyEdges = `a1	a
a11	a1
a12	a1
a2	a
a21	a2
a22	a2
b1	b
b11	b1
b12	b1
b2	b
b21	b2
b22	b2
`

// The ten transactions D1..D10 of Figure 4.
const baskets = `a11, a22, b11, b22
a11, a21, b11
a12, a21
a12, a22, b21
a12, a22, b21
a12, a21, b22
a21, b12
b12, b21, b22
b12, b21
a22, b12, b22
`

func main() {
	// 1. Load the taxonomy; the dictionary it creates is shared with the
	// transaction database so item names resolve to the same IDs.
	tree, err := flipper.ParseTaxonomy(strings.NewReader(taxonomyEdges), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tree.Describe())

	// 2. Load the market baskets.
	db, err := flipper.ReadBaskets(strings.NewReader(baskets), tree.Dict())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d transactions\n\n", db.Len())

	// 3. Configure the miner with the paper's thresholds for this example:
	// γ=0.6, ε=0.35, minimum support 1 transaction at every level.
	cfg := flipper.DefaultConfig(tree.Height())
	cfg.Gamma = 0.6
	cfg.Epsilon = 0.35
	cfg.MinSup = nil
	cfg.MinSupAbs = []int64{1, 1, 1}

	// 4. Mine. The result is the single flipping pattern of Figure 5:
	// {a,b} positive → {a1,b1} negative → {a11,b11} positive.
	res, err := flipper.Mine(db, tree, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d flipping pattern(s):\n\n", len(res.Patterns))
	for _, p := range res.Patterns {
		fmt.Print(p.Format(tree))
	}
	fmt.Printf("\nrun stats: %s\n", res.Stats.String())
}
