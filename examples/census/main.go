// Census: the paper's demographic scenario (Section 5.2, Figure 11).
// Treats person records as transactions and compares sub-populations with
// their parent populations: craft-repair workers correlate negatively with
// high income, but craft-repair workers holding a bachelor's degree flip to
// positive; likewise age 60–65 versus 60–65 executives.
//
// The income bins have no sub-divisions, so the attribute hierarchy is
// unbalanced; the simulator leaf-copy extends it (the paper's Figure 3
// variant B), which this example prints along the way.
//
//	go run ./examples/census
package main

import (
	"fmt"
	"log"

	flipper "github.com/flipper-mining/flipper"
	"github.com/flipper-mining/flipper/simdata"
)

func main() {
	ds, err := simdata.Census(1.0, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %s, %d person records\n", ds.Name, ds.DB.Len())
	fmt.Println(ds.Tree.Describe())
	fmt.Printf("thresholds: γ=%.2f ε=%.2f minsup=%v\n\n", ds.Gamma, ds.Epsilon, ds.MinSup)

	res, err := flipper.Mine(ds.DB, ds.Tree, ds.Config())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d flipping pattern(s) found; the planted ones:\n\n", len(res.Patterns))

	// Print the two patterns the paper reports, with their chains.
	for _, exp := range ds.Expected {
		for _, p := range res.Patterns {
			if !matches(p, ds, exp) {
				continue
			}
			fmt.Print(p.Format(ds.Tree))
			top := p.Chain[0]
			leaf := p.Chain[len(p.Chain)-1]
			fmt.Printf("  → %s is %s-correlated with high income overall, but the subgroup %s flips to %s.\n\n",
				ds.Tree.FormatSet(top.Items), word(top.Label),
				ds.Tree.FormatSet(leaf.Items), word(leaf.Label))
		}
	}
}

func matches(p flipper.Pattern, ds *simdata.Dataset, exp simdata.ExpectedFlip) bool {
	if len(p.Leaf) != 2 {
		return false
	}
	a, b := ds.Tree.Name(p.Leaf[0]), ds.Tree.Name(p.Leaf[1])
	return (a == exp.LeafA && b == exp.LeafB) || (a == exp.LeafB && b == exp.LeafA)
}

func word(l flipper.Label) string {
	if l == flipper.LabelPositive {
		return "positively"
	}
	return "negatively"
}
