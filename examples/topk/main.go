// TopK: the extension sketched in the paper's future-work section — when a
// data expert cannot say which correlation value counts as positive or
// negative, rank patterns by how sharply they flip (the smallest
// correlation jump along the chain) and keep the K sharpest, under
// deliberately loose thresholds.
//
// The example also shows the paper's recommended threshold workflow: fix γ,
// start ε just below it, and relax ε until the pattern count is
// satisfactory.
//
//	go run ./examples/topk
package main

import (
	"fmt"
	"log"

	flipper "github.com/flipper-mining/flipper"
	"github.com/flipper-mining/flipper/simdata"
)

func main() {
	ds, err := simdata.Groceries(1.0, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Part 1: the ε-relaxation sweep of Section 5.1's guidance.
	fmt.Println("ε sweep at fixed γ (the paper's threshold-setting workflow):")
	cfg := ds.Config()
	for _, eps := range []float64{0.02, 0.05, 0.10, 0.14} {
		cfg.Epsilon = eps
		res, err := flipper.Mine(ds.DB, ds.Tree, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  γ=%.2f ε=%.2f → %d flipping pattern(s)\n", cfg.Gamma, eps, len(res.Patterns))
	}

	// Part 2: top-K "most flipping" under loose thresholds. The gap metric
	// is the smallest |Corr(h) − Corr(h+1)| along the chain — the weakest
	// flip — so ranking by descending gap surfaces the sharpest contrasts
	// without hand-tuning γ and ε.
	fmt.Println("\ntop-3 most flipping patterns under loose thresholds:")
	cfg = ds.Config()
	cfg.Gamma = 0.12
	cfg.Epsilon = 0.11
	cfg.TopK = 3
	res, err := flipper.Mine(ds.DB, ds.Tree, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range res.Patterns {
		fmt.Printf("\n#%d (gap %.3f)\n%s", i+1, p.Gap, p.Format(ds.Tree))
	}
}
