// Groceries: the paper's market-basket scenario (Section 5.2, Figure 10).
// Mines a simulated month of point-of-sale data with the store taxonomy and
// prints the actionable flipping patterns: specifics that sell together
// although their categories repel, and vice versa.
//
//	go run ./examples/groceries
package main

import (
	"fmt"
	"log"

	flipper "github.com/flipper-mining/flipper"
	"github.com/flipper-mining/flipper/simdata"
)

func main() {
	// 9,800 transactions, 3-level taxonomy, deterministic seed.
	ds, err := simdata.Groceries(1.0, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %s, %d transactions\n", ds.Name, ds.DB.Len())
	fmt.Println(ds.Tree.Describe())
	fmt.Printf("thresholds: γ=%.2f ε=%.2f minsup=%v\n\n", ds.Gamma, ds.Epsilon, ds.MinSup)

	res, err := flipper.Mine(ds.DB, ds.Tree, ds.Config())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d flipping pattern(s):\n\n", len(res.Patterns))
	for _, p := range res.Patterns {
		fmt.Print(p.Format(ds.Tree))
		fmt.Println(interpret(p, ds))
	}
}

// interpret renders the store-layout reading the paper gives for these
// patterns: a positive leaf under negative categories suggests co-locating
// the items; a negative leaf under positive categories flags specifics
// that defy their categories' affinity.
func interpret(p flipper.Pattern, ds *simdata.Dataset) string {
	last := p.Chain[len(p.Chain)-1]
	a := ds.Tree.Name(p.Leaf[0])
	b := ds.Tree.Name(p.Leaf[1])
	if last.Label == flipper.LabelPositive {
		return fmt.Sprintf("  → customers buy %q with %q although the categories repel; consider shelving them closer.\n", a, b)
	}
	return fmt.Sprintf("  → %q and %q repel although their categories sell together; the pairing is over-assumed.\n", a, b)
}
