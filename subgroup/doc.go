/*
Package subgroup exposes the discriminative-correlation extension through
the public API — the first extension sketched in the paper's future-work
section ("correlations that are different in some sub-group of the data").

A discriminative correlation is a pair of taxonomy nodes whose correlation
label inside a sub-group — the transactions containing a chosen context
itemset — contrasts with its label in the whole database: positively
correlated among buyers of diapers, say, yet negatively correlated (or
uncorrelated) overall. Where the core Flipper algorithm varies the
abstraction level and holds the population fixed, this extension holds the
level fixed and varies the population; the two slice the same
sign-structure of correlations along orthogonal axes.

Discriminative evaluates every pair at a fixed taxonomy level twice — once
over the sub-group, once over the whole database — using the same
null-invariant measures and γ/ε labeling as the core engine, and returns
the pairs whose labels contrast, ordered by descending correlation gap.

The examples/subgroups program is a runnable walkthrough. The underlying
engine lives in internal/contrast; this package is a thin facade in the
style of the root flipper package. See docs/ARCHITECTURE.md for where it
sits in the package map.
*/
package subgroup
