package subgroup

import (
	"github.com/flipper-mining/flipper/internal/contrast"
	"github.com/flipper-mining/flipper/internal/itemset"
	"github.com/flipper-mining/flipper/internal/taxonomy"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// Config parameterizes a discriminative-correlation search.
type Config = contrast.Config

// Finding is one discriminative correlation, with both populations' values.
type Finding = contrast.Finding

// Discriminative finds all pairs at Config.Level whose correlation label in
// the sub-group selected by the context itemset contrasts with their label
// in the whole database. Findings are ordered by descending correlation gap.
func Discriminative(src txdb.Source, tree *taxonomy.Tree, context itemset.Set, cfg Config) ([]Finding, error) {
	return contrast.Discriminative(src, tree, context, cfg)
}
