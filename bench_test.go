// Benchmarks regenerating every table and figure of the paper's evaluation
// at bench scale. Each sub-benchmark is one cell (or series point) of the
// corresponding artifact; `go run ./cmd/flipbench -exp all` produces the
// full tables, and EXPERIMENTS.md records paper-vs-measured shapes.
//
// Workloads are deliberately small (a few thousand transactions) so the
// whole suite finishes in minutes even though the BASIC baseline is orders
// of magnitude slower than Flipper in the low-support regime — reproducing
// that gap is the point of Figures 8 and 9.
package flipper_test

import (
	"fmt"
	"testing"

	flipper "github.com/flipper-mining/flipper"
	"github.com/flipper-mining/flipper/internal/experiments"
	"github.com/flipper-mining/flipper/internal/gen"
	"github.com/flipper-mining/flipper/internal/taxonomy"
	"github.com/flipper-mining/flipper/internal/txdb"
	"github.com/flipper-mining/flipper/simdata"
)

const benchN = 4000 // synthetic transactions per bench workload

// benchVariants are the four curves of Figure 8.
var benchVariants = []struct {
	name    string
	pruning flipper.PruningLevel
}{
	{"basic", flipper.Basic},
	{"flipping", flipper.Flipping},
	{"flipping_tpg", flipper.FlippingTPG},
	{"full", flipper.Full},
}

// benchSynthetic builds the paper's default synthetic workload (H=4,
// 10 categories, fanout 5, |I|≈1000) once per (n, width).
func benchSynthetic(b *testing.B, n int, width float64) (*txdb.DB, *taxonomy.Tree) {
	b.Helper()
	tree, err := gen.BuildTaxonomy(gen.DefaultTaxonomyParams())
	if err != nil {
		b.Fatal(err)
	}
	p := gen.DefaultParams()
	p.N = n
	p.AvgWidth = width
	db, err := gen.Generate(tree, p)
	if err != nil {
		b.Fatal(err)
	}
	return db, tree
}

func benchConfig(pruning flipper.PruningLevel, minsup []float64, gamma, epsilon float64) flipper.Config {
	return flipper.Config{
		Measure:     flipper.Kulczynski,
		Gamma:       gamma,
		Epsilon:     epsilon,
		MinSup:      minsup,
		Pruning:     pruning,
		Strategy:    flipper.CountScan,
		Materialize: true,
	}
}

var benchDefaultMinsup = []float64{0.01, 0.001, 0.0005, 0.0001}

func mineOnce(b *testing.B, db txdb.Source, tree *taxonomy.Tree, cfg flipper.Config) {
	b.Helper()
	b.ReportAllocs()
	var patterns int
	for i := 0; i < b.N; i++ {
		res, err := flipper.Mine(db, tree, cfg)
		if err != nil {
			b.Fatal(err)
		}
		patterns = len(res.Patterns)
	}
	b.ReportMetric(float64(patterns), "patterns")
}

// BenchmarkFig8aMinsupProfiles regenerates Figure 8(a): runtime per minimum
// support profile (Table 3) per pruning variant. The bench keeps three
// representative profiles; flipbench runs all ten.
func BenchmarkFig8aMinsupProfiles(b *testing.B) {
	db, tree := benchSynthetic(b, benchN, 5)
	profiles := []struct {
		name   string
		minsup []float64
	}{
		{"thr1_high", []float64{0.05, 0.05, 0.05, 0.05}},
		{"thr5_mid", []float64{0.01, 0.0005, 0.0001, 0.0001}},
		{"thr10_low", []float64{0.001, 0.0001, 0.00006, 0.00003}},
	}
	for _, p := range profiles {
		for _, v := range benchVariants {
			b.Run(fmt.Sprintf("%s/%s", p.name, v.name), func(b *testing.B) {
				mineOnce(b, db, tree, benchConfig(v.pruning, p.minsup, 0.3, 0.1))
			})
		}
	}
}

// BenchmarkFig8bTransactions regenerates Figure 8(b): runtime vs N; the
// paper reports linear growth for every variant.
func BenchmarkFig8bTransactions(b *testing.B) {
	for _, n := range []int{1000, 2000, 4000} {
		db, tree := benchSynthetic(b, n, 5)
		for _, v := range benchVariants {
			b.Run(fmt.Sprintf("n%d/%s", n, v.name), func(b *testing.B) {
				mineOnce(b, db, tree, benchConfig(v.pruning, benchDefaultMinsup, 0.3, 0.1))
			})
		}
	}
}

// BenchmarkFig8cWidth regenerates Figure 8(c): runtime vs average
// transaction width; the baseline deteriorates dramatically with density
// while the full Flipper degrades gracefully.
func BenchmarkFig8cWidth(b *testing.B) {
	for _, w := range []int{5, 7} {
		db, tree := benchSynthetic(b, benchN, float64(w))
		for _, v := range benchVariants {
			b.Run(fmt.Sprintf("w%d/%s", w, v.name), func(b *testing.B) {
				mineOnce(b, db, tree, benchConfig(v.pruning, benchDefaultMinsup, 0.3, 0.1))
			})
		}
	}
}

// BenchmarkFig8dCorrelationThresholds regenerates Figure 8(d): runtime vs
// the (γ, ε) profiles. Correlation pruning strengthens with γ; the BASIC
// baseline ignores the thresholds entirely (flat row).
func BenchmarkFig8dCorrelationThresholds(b *testing.B) {
	db, tree := benchSynthetic(b, benchN, 5)
	profiles := [][2]float64{{0.2, 0.1}, {0.4, 0.1}, {0.6, 0.1}, {0.6, 0.5}}
	for _, p := range profiles {
		for _, v := range benchVariants {
			if v.pruning == flipper.Basic && p != profiles[0] {
				continue // BASIC does not depend on (γ, ε); bench it once
			}
			b.Run(fmt.Sprintf("g%.1f_e%.1f/%s", p[0], p[1], v.name), func(b *testing.B) {
				mineOnce(b, db, tree, benchConfig(v.pruning, benchDefaultMinsup, p[0], p[1]))
			})
		}
	}
}

// benchDatasets builds the three reality-check simulators at bench scale.
func benchDatasets(b *testing.B) []*struct {
	name string
	ds   benchDS
} {
	b.Helper()
	g, err := flipperSim("groceries", 0.5)
	if err != nil {
		b.Fatal(err)
	}
	c, err := flipperSim("census", 0.25)
	if err != nil {
		b.Fatal(err)
	}
	m, err := flipperSim("medline", 0.02)
	if err != nil {
		b.Fatal(err)
	}
	return []*struct {
		name string
		ds   benchDS
	}{
		{"groceries", g}, {"census", c}, {"medline", m},
	}
}

// benchDS is the minimal dataset view the benches need (avoids importing
// the simdata facade into the bench file twice).
type benchDS struct {
	db   *txdb.DB
	tree *taxonomy.Tree
	cfg  flipper.Config
}

func flipperSim(name string, scale float64) (benchDS, error) {
	ds, err := simdata.ByName(name, scale, 1)
	if err != nil {
		return benchDS{}, err
	}
	return benchDS{db: ds.DB, tree: ds.Tree, cfg: ds.Config()}, nil
}

// BenchmarkFig9aRealRuntime regenerates Figure 9(a): naive flipping-based
// pruning vs the full Flipper on the three dataset simulators. (The paper
// excludes BASIC here: it exceeded 10 hours on the smallest dataset.)
func BenchmarkFig9aRealRuntime(b *testing.B) {
	for _, e := range benchDatasets(b) {
		for _, v := range []struct {
			name    string
			pruning flipper.PruningLevel
		}{{"naive", flipper.Flipping}, {"full", flipper.Full}} {
			b.Run(fmt.Sprintf("%s/%s", e.name, v.name), func(b *testing.B) {
				cfg := e.ds.cfg
				cfg.Pruning = v.pruning
				mineOnce(b, e.ds.db, e.ds.tree, cfg)
			})
		}
	}
}

// BenchmarkFig9bRealMemory regenerates Figure 9(b): peak resident candidate
// itemsets (and estimated bytes) as custom metrics, naive vs full.
func BenchmarkFig9bRealMemory(b *testing.B) {
	for _, e := range benchDatasets(b) {
		for _, v := range []struct {
			name    string
			pruning flipper.PruningLevel
		}{{"naive", flipper.Flipping}, {"full", flipper.Full}} {
			b.Run(fmt.Sprintf("%s/%s", e.name, v.name), func(b *testing.B) {
				b.ReportAllocs()
				cfg := e.ds.cfg
				cfg.Pruning = v.pruning
				var peak, bytes int64
				for i := 0; i < b.N; i++ {
					res, err := flipper.Mine(e.ds.db, e.ds.tree, cfg)
					if err != nil {
						b.Fatal(err)
					}
					peak = res.Stats.PeakCandidates
					bytes = res.Stats.PeakBytes
				}
				b.ReportMetric(float64(peak), "peak-itemsets")
				b.ReportMetric(float64(bytes)/(1<<20), "peak-MB")
			})
		}
	}
}

// BenchmarkTable4PatternCounts regenerates Table 4: the complete positive /
// negative / flipping counts per dataset (BASIC enumeration), reported as
// custom metrics.
func BenchmarkTable4PatternCounts(b *testing.B) {
	for _, e := range benchDatasets(b) {
		b.Run(e.name, func(b *testing.B) {
			b.ReportAllocs()
			cfg := e.ds.cfg
			cfg.Pruning = flipper.Basic
			var pos, neg, flips int64
			for i := 0; i < b.N; i++ {
				res, err := flipper.Mine(e.ds.db, e.ds.tree, cfg)
				if err != nil {
					b.Fatal(err)
				}
				pos = res.Stats.PositiveItemsets
				neg = res.Stats.NegativeItemsets
				flips = int64(len(res.Patterns))
			}
			b.ReportMetric(float64(pos), "pos")
			b.ReportMetric(float64(neg), "neg")
			b.ReportMetric(float64(flips), "flips")
		})
	}
}

// BenchmarkAblationCountingStrategy compares the paper-faithful scan
// counter against the Eclat-style tid-list counter, the vertical bitmap
// counter, and the per-cell auto cost model (design alternatives the paper
// leaves to future work).
func BenchmarkAblationCountingStrategy(b *testing.B) {
	db, tree := benchSynthetic(b, benchN, 5)
	for _, s := range []struct {
		name     string
		strategy flipper.CountStrategy
	}{
		{"scan", flipper.CountScan},
		{"tidlist", flipper.CountTIDList},
		{"bitmap", flipper.CountBitmap},
		{"auto", flipper.CountAuto},
	} {
		b.Run(s.name, func(b *testing.B) {
			cfg := benchConfig(flipper.Full, benchDefaultMinsup, 0.3, 0.1)
			cfg.Strategy = s.strategy
			mineOnce(b, db, tree, cfg)
		})
	}
}

// denseWorkload builds the vertical backends' home turf: a flat, wide
// taxonomy (64 categories × 2 leaves, height 2) and wide (16-item)
// transactions, so permissive thresholds put every one of the C(128,2) +
// C(64,2) ≈ 10K pair candidates against a dense level view that barely
// dedups. Per cell the scan counter walks each of the 8000 transactions
// down the candidate trie (every pair exists here, so nothing prunes —
// the store's worst case), while the bitmap counter pays 2 vector words
// per 64 distinct transactions per candidate — plain ANDs over cached,
// cache-friendly []uint64. The workload is shared with the flipbench
// -json micro suite (experiments.DenseWorkload) so committed BENCH_*.json
// baselines track this exact benchmark.
func denseWorkload(b *testing.B) (*txdb.DB, *taxonomy.Tree) {
	b.Helper()
	db, tree, err := experiments.DenseWorkload(8000, 64, 2, 16, 3)
	if err != nil {
		b.Fatal(err)
	}
	return db, tree
}

// BenchmarkCountingDense is the committed evidence for the bitmap backend:
// on a dense high-candidate workload, bitmap counting beats scan counting
// (see docs/ARCHITECTURE.md for recorded numbers).
func BenchmarkCountingDense(b *testing.B) {
	db, tree := denseWorkload(b)
	for _, s := range denseStrategies {
		b.Run(s.name, func(b *testing.B) {
			mineOnce(b, db, tree, denseConfig(s.strategy))
		})
	}
}

// denseConfig is the BenchmarkCountingDense configuration for one strategy.
func denseConfig(strategy flipper.CountStrategy) flipper.Config {
	return flipper.Config{
		Measure:     flipper.Kulczynski,
		Gamma:       0.3,
		Epsilon:     0.1,
		MinSupAbs:   []int64{5, 5},
		Pruning:     flipper.Basic,
		Strategy:    strategy,
		MaxK:        2,
		Materialize: true,
	}
}

var denseStrategies = []struct {
	name     string
	strategy flipper.CountStrategy
}{
	{"scan", flipper.CountScan},
	{"tidlist", flipper.CountTIDList},
	{"bitmap", flipper.CountBitmap},
	{"auto", flipper.CountAuto},
}

// BenchmarkCountingDenseWarm is the steady-state counterpart of
// BenchmarkCountingDense: one engine per strategy, prewarmed with a single
// run, so the loop measures what a resident flipperd pays per job — level
// views, counting indexes and scratch arenas all come from the engine's
// caches. The gap to the cold benchmark is the price of data preparation;
// the committed BENCH_*.json baselines track both.
func BenchmarkCountingDenseWarm(b *testing.B) {
	db, tree := denseWorkload(b)
	for _, s := range denseStrategies {
		b.Run(s.name, func(b *testing.B) {
			cfg := denseConfig(s.strategy)
			eng := flipper.NewEngine(db, tree)
			if _, err := eng.Mine(cfg); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var patterns int
			for i := 0; i < b.N; i++ {
				res, err := eng.Mine(cfg)
				if err != nil {
					b.Fatal(err)
				}
				patterns = len(res.Patterns)
			}
			b.ReportMetric(float64(patterns), "patterns")
		})
	}
}

// BenchmarkCountingDenseSharded covers the shard-parallel backends on the
// dense workload (shards=4), cold and warm — the variants the CI alloc
// budgets pin alongside the unsharded ones.
func BenchmarkCountingDenseSharded(b *testing.B) {
	db, tree := denseWorkload(b)
	for _, s := range denseStrategies {
		if s.strategy != flipper.CountScan && s.strategy != flipper.CountBitmap {
			continue
		}
		cfg := denseConfig(s.strategy)
		cfg.Shards = 4
		b.Run(s.name, func(b *testing.B) {
			mineOnce(b, db, tree, cfg)
		})
		b.Run(s.name+"_warm", func(b *testing.B) {
			eng := flipper.NewEngine(db, tree)
			if _, err := eng.Mine(cfg); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Mine(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationParallelism measures counting-worker scaling.
func BenchmarkAblationParallelism(b *testing.B) {
	db, tree := benchSynthetic(b, benchN, 5)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			cfg := benchConfig(flipper.Full, benchDefaultMinsup, 0.3, 0.1)
			cfg.Parallelism = workers
			mineOnce(b, db, tree, cfg)
		})
	}
}

// BenchmarkAblationMaterialize compares materialized level views against
// the disk-resident streaming mode (the paper's sequential-scan setting).
func BenchmarkAblationMaterialize(b *testing.B) {
	db, tree := benchSynthetic(b, benchN, 5)
	for _, m := range []struct {
		name        string
		materialize bool
	}{{"materialized", true}, {"streaming", false}} {
		b.Run(m.name, func(b *testing.B) {
			cfg := benchConfig(flipper.Full, benchDefaultMinsup, 0.3, 0.1)
			cfg.Materialize = m.materialize
			mineOnce(b, db, tree, cfg)
		})
	}
}

// BenchmarkMeasures compares the five null-invariant measures end to end;
// the engine's pruning is measure-agnostic (Theorems 1–2 hold for all).
func BenchmarkMeasures(b *testing.B) {
	db, tree := benchSynthetic(b, benchN, 5)
	for _, m := range []flipper.Measure{
		flipper.AllConfidence, flipper.Coherence, flipper.Cosine,
		flipper.Kulczynski, flipper.MaxConfidence,
	} {
		b.Run(m.String(), func(b *testing.B) {
			cfg := benchConfig(flipper.Full, benchDefaultMinsup, 0.3, 0.1)
			cfg.Measure = m
			mineOnce(b, db, tree, cfg)
		})
	}
}
