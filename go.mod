module github.com/flipper-mining/flipper

go 1.24
