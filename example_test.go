package flipper_test

import (
	"fmt"
	"log"
	"strings"

	flipper "github.com/flipper-mining/flipper"
)

// Example mines the paper's Figure 4 worked example end to end and prints
// the single flipping pattern of Figure 5.
func Example() {
	taxonomy := `a1	a
a11	a1
a12	a1
a2	a
a21	a2
a22	a2
b1	b
b11	b1
b12	b1
b2	b
b21	b2
b22	b2
`
	baskets := `a11, a22, b11, b22
a11, a21, b11
a12, a21
a12, a22, b21
a12, a22, b21
a12, a21, b22
a21, b12
b12, b21, b22
b12, b21
a22, b12, b22
`
	tree, err := flipper.ParseTaxonomy(strings.NewReader(taxonomy), nil)
	if err != nil {
		log.Fatal(err)
	}
	db, err := flipper.ReadBaskets(strings.NewReader(baskets), tree.Dict())
	if err != nil {
		log.Fatal(err)
	}
	cfg := flipper.DefaultConfig(tree.Height())
	cfg.Gamma, cfg.Epsilon = 0.6, 0.35
	cfg.MinSup = nil
	cfg.MinSupAbs = []int64{1, 1, 1}

	res, err := flipper.Mine(db, tree, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range res.Patterns {
		fmt.Printf("%s:", tree.FormatSet(p.Leaf))
		for _, li := range p.Chain {
			fmt.Printf(" L%d=%s", li.Level, li.Label)
		}
		fmt.Println()
	}
	// Output:
	// {a11, b11}: L1=+ L2=- L3=+
}

// ExampleMine_topK shows the future-work top-K ranking: keep the K patterns
// with the sharpest correlation flips instead of tuning ε by hand.
func ExampleMine_topK() {
	tree, _ := flipper.ParseTaxonomy(strings.NewReader("x1\tx\ny1\ty\n"), nil)
	db := flipper.NewDB(tree.Dict())
	for i := 0; i < 30; i++ {
		db.AddNames("x1", "y1")
	}
	cfg := flipper.DefaultConfig(tree.Height())
	cfg.MinSup = nil
	cfg.MinSupAbs = []int64{1, 1}
	cfg.TopK = 5
	res, _ := flipper.Mine(db, tree, cfg)
	fmt.Println(len(res.Patterns), "patterns") // a constant pair never flips
	// Output:
	// 0 patterns
}
