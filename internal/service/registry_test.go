package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/flipper-mining/flipper/internal/datasets"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// writeDataDir lays the paper-toy dataset out on disk the way flipgen does:
// dir/toy/{taxonomy.tsv, baskets.txt}, plus distractors LoadDir must skip.
func writeDataDir(t *testing.T) string {
	t.Helper()
	toy := datasets.PaperToy()
	dir := t.TempDir()
	sub := filepath.Join(dir, "toy")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	tf, err := os.Create(filepath.Join(sub, taxonomyFile))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := toy.Tree.WriteTo(tf); err != nil {
		t.Fatal(err)
	}
	tf.Close()
	bf, err := os.Create(filepath.Join(sub, basketsFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := toy.DB.WriteBaskets(bf); err != nil {
		t.Fatal(err)
	}
	bf.Close()
	// Distractors: a plain file and a dataset-less subdirectory.
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("notes"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "scratch"), 0o755); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestLoadDir(t *testing.T) {
	dir := writeDataDir(t)
	for _, stream := range []bool{false, true} {
		reg := NewRegistry()
		names, err := reg.LoadDir(dir, stream)
		if err != nil {
			t.Fatalf("stream=%v: %v", stream, err)
		}
		if len(names) != 1 || names[0] != "toy" {
			t.Fatalf("stream=%v: names = %v", stream, names)
		}
		d, ok := reg.Get("toy")
		if !ok || d.Src.Len() != 10 || d.Tree.Height() != 3 {
			t.Fatalf("stream=%v: dataset = %+v", stream, d)
		}
		if _, isFile := d.Src.(*txdb.FileSource); isFile != stream {
			t.Errorf("stream=%v: source type %T", stream, d.Src)
		}
		if cfg := d.DefaultConfig(); cfg.Materialize == stream {
			t.Errorf("stream=%v: default Materialize = %v, want the opposite", stream, cfg.Materialize)
		}
	}
}

// TestLoadDirMinesEquivalently pins that both load modes feed the engine the
// same data: the toy flip is found either way.
func TestLoadDirMinesEquivalently(t *testing.T) {
	dir := writeDataDir(t)
	toy := datasets.PaperToy()
	// Stats legitimately differ between the modes (scan counts, timings), so
	// compare the pattern payloads only.
	var patterns []string
	for _, stream := range []bool{false, true} {
		reg := NewRegistry()
		if _, err := reg.LoadDir(dir, stream); err != nil {
			t.Fatal(err)
		}
		d, _ := reg.Get("toy")
		cfg := d.DefaultConfig()
		cfg.Gamma, cfg.Epsilon, cfg.MinSup = toy.Gamma, toy.Epsilon, toy.MinSup
		q := NewQueue(1, 4, 100, NewCache(4))
		j, err := q.Submit(d, JobMine, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		q.Close() // drains the worker
		v, _ := q.Get(j.ID)
		if v.Status != StatusDone {
			t.Fatalf("stream=%v: job = %+v", stream, v)
		}
		var res struct {
			Patterns json.RawMessage `json:"patterns"`
		}
		if err := json.Unmarshal(v.Result, &res); err != nil {
			t.Fatal(err)
		}
		patterns = append(patterns, string(res.Patterns))
	}
	if patterns[0] != patterns[1] || !strings.Contains(patterns[0], "a11") {
		t.Errorf("materialized and streaming runs disagree:\n%s\nvs\n%s", patterns[0], patterns[1])
	}
}

// writeShardedDataDir lays the paper-toy dataset out in the sharded layout:
// dir/toy/{taxonomy.tsv, shards/shardNNN.txt}.
func writeShardedDataDir(t *testing.T, shards int) string {
	t.Helper()
	toy := datasets.PaperToy()
	dir := t.TempDir()
	sub := filepath.Join(dir, "toy")
	if err := os.MkdirAll(filepath.Join(sub, shardsDir), 0o755); err != nil {
		t.Fatal(err)
	}
	tf, err := os.Create(filepath.Join(sub, taxonomyFile))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := toy.Tree.WriteTo(tf); err != nil {
		t.Fatal(err)
	}
	tf.Close()
	for i, part := range txdb.Partition(toy.DB, shards) {
		bf, err := os.Create(filepath.Join(sub, shardsDir, fmt.Sprintf("shard%03d.txt", i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := part.WriteBaskets(bf); err != nil {
			t.Fatal(err)
		}
		bf.Close()
	}
	return dir
}

// TestLoadDirShardedLayout registers a shards/ dataset in both storage
// modes and pins that it mines the same patterns as the single-file layout.
func TestLoadDirShardedLayout(t *testing.T) {
	flat := writeDataDir(t)
	sharded := writeShardedDataDir(t, 3)
	toy := datasets.PaperToy()
	var patterns []string
	for _, dir := range []string{flat, sharded} {
		for _, stream := range []bool{false, true} {
			reg := NewRegistry()
			names, err := reg.LoadDir(dir, stream)
			if err != nil {
				t.Fatalf("dir=%s stream=%v: %v", dir, stream, err)
			}
			if len(names) != 1 || names[0] != "toy" {
				t.Fatalf("dir=%s stream=%v: names = %v", dir, stream, names)
			}
			d, _ := reg.Get("toy")
			if d.Src.Len() != 10 {
				t.Fatalf("dir=%s stream=%v: %d transactions, want 10", dir, stream, d.Src.Len())
			}
			wantShards := 1
			if dir == sharded {
				wantShards = 3
				if _, ok := d.Src.(*txdb.ShardedSource); !ok {
					t.Fatalf("sharded layout loaded as %T", d.Src)
				}
			}
			if d.Shards() != wantShards {
				t.Fatalf("dir=%s stream=%v: Shards() = %d, want %d", dir, stream, d.Shards(), wantShards)
			}
			if info := reg.List()[0]; info.Shards != wantShards {
				t.Fatalf("dir=%s stream=%v: Info.Shards = %d, want %d", dir, stream, info.Shards, wantShards)
			}
			cfg := d.DefaultConfig()
			cfg.Gamma, cfg.Epsilon, cfg.MinSup = toy.Gamma, toy.Epsilon, toy.MinSup
			q := NewQueue(1, 4, 100, NewCache(4))
			j, err := q.Submit(d, JobMine, cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			q.Close()
			v, _ := q.Get(j.ID)
			if v.Status != StatusDone {
				t.Fatalf("dir=%s stream=%v: job = %+v", dir, stream, v)
			}
			var res struct {
				Patterns json.RawMessage `json:"patterns"`
			}
			if err := json.Unmarshal(v.Result, &res); err != nil {
				t.Fatal(err)
			}
			patterns = append(patterns, string(res.Patterns))
		}
	}
	for i := 1; i < len(patterns); i++ {
		if patterns[i] != patterns[0] {
			t.Fatalf("sharded/streaming layout %d mined different patterns:\n%s\nvs\n%s", i, patterns[0], patterns[i])
		}
	}
}

// TestLoadDirBasketsWinOverShards pins the precedence rule: when both
// layouts exist, baskets.txt is authoritative.
func TestLoadDirBasketsWinOverShards(t *testing.T) {
	dir := writeDataDir(t)
	sub := filepath.Join(dir, "toy", shardsDir)
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	// A stray shard that would change the dataset if it were loaded.
	if err := os.WriteFile(filepath.Join(sub, "shard000.txt"), []byte("milk\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if _, err := reg.LoadDir(dir, false); err != nil {
		t.Fatal(err)
	}
	d, _ := reg.Get("toy")
	if d.Src.Len() != 10 || d.Shards() != 1 {
		t.Fatalf("baskets.txt did not win: %d tx, %d shards", d.Src.Len(), d.Shards())
	}
}

func TestRegistryErrors(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Add(&Dataset{Name: ""}); err == nil {
		t.Error("empty name accepted")
	}
	toy := datasets.PaperToy()
	if err := reg.AddMemory("toy", toy.DB, toy.Tree); err != nil {
		t.Fatal(err)
	}
	if err := reg.AddMemory("toy", toy.DB, toy.Tree); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := reg.LoadDir("/nonexistent-dir", false); err == nil {
		t.Error("missing dir accepted")
	}
}
