package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"github.com/flipper-mining/flipper/internal/core"
	"github.com/flipper-mining/flipper/internal/measure"
)

// Options tune a server; the zero value selects the defaults.
type Options struct {
	// Workers is the mining worker-pool size (default 2).
	Workers int
	// QueueDepth bounds the number of queued-not-yet-running jobs
	// (default 64); submissions beyond it get HTTP 503.
	QueueDepth int
	// CacheSize is the LRU result-cache capacity in entries (default 128);
	// 0 disables caching, negative values are treated as 0.
	CacheSize int
	// JobHistory caps how many completed jobs stay pollable (default 1000);
	// the oldest completed jobs and their payloads are pruned beyond it.
	JobHistory int
	// JobTimeout is the deadline applied to jobs whose submission carries
	// no timeout_ms (default 0: no deadline). The clock starts when the
	// job begins running.
	JobTimeout time.Duration
	// MaxJobTimeout caps every effective job deadline, including explicit
	// timeout_ms requests (default 15m); ≤ 0 keeps the default. Deadlines
	// above the cap are clamped, not rejected.
	MaxJobTimeout time.Duration
	// Coordinator, when set, routes mine jobs over a worker cluster
	// whenever it has live workers for the dataset (see
	// Queue.DistributedMiner), and surfaces reachable-worker counts in
	// /v1/readyz. Nil runs every job locally.
	Coordinator DistributedMiner
}

func (o Options) withDefaults() Options {
	if o.Workers == 0 {
		o.Workers = 2
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 64
	}
	if o.CacheSize == 0 {
		o.CacheSize = 128
	}
	if o.CacheSize < 0 {
		o.CacheSize = 0
	}
	if o.JobHistory == 0 {
		o.JobHistory = 1000
	}
	if o.MaxJobTimeout <= 0 {
		o.MaxJobTimeout = 15 * time.Minute
	}
	return o
}

// Server is the flipperd HTTP service: a dataset registry, a result cache
// and an async job queue behind a JSON API under /v1/.
type Server struct {
	reg   *Registry
	cache *Cache
	queue *Queue
	mux   *http.ServeMux
	opts  Options
	start time.Time

	// draining flips once at shutdown (BeginDrain): /v1/readyz turns 503 so
	// load balancers stop routing new work here while in-flight jobs finish
	// under the queue's graceful Close.
	draining atomic.Bool
}

// NewServer assembles a server over reg.
func NewServer(reg *Registry, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		reg:   reg,
		cache: NewCache(opts.CacheSize),
		opts:  opts,
		start: time.Now(),
	}
	s.queue = NewQueue(opts.Workers, opts.QueueDepth, opts.JobHistory, s.cache)
	s.queue.coord = opts.Coordinator
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	s.mux.HandleFunc("GET /v1/topk", s.handleTopK)
	s.mux.HandleFunc("POST /v1/topk", s.handleTopK)
	s.mux.HandleFunc("GET /v1/datasets", s.handleDatasets)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s
}

// BeginDrain marks the server not-ready: /v1/readyz starts answering 503 so
// load balancers drain traffic away, while /v1/healthz stays 200 (the
// process is alive and finishing its queue) and every other endpoint keeps
// serving. Call it at SIGTERM, before the HTTP listener shuts down.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the worker pool.
func (s *Server) Close() { s.queue.Close() }

// Queue exposes the job queue (used by tests and embedders to wait on jobs).
func (s *Server) Queue() *Queue { return s.queue }

// Cache exposes the result cache.
func (s *Server) Cache() *Cache { return s.cache }

// ConfigPatch is the submit-time configuration overlay: every field is
// optional and falls back to the dataset's default configuration, so a
// client can send {"epsilon": 0.2} and inherit the rest. JSON field order
// is irrelevant — the patch is applied onto a struct and the result keyed
// by core.Config.CanonicalKey, so permuted but equal requests are cache
// hits.
type ConfigPatch struct {
	Measure       *measure.Measure    `json:"measure"`
	Gamma         *float64            `json:"gamma"`
	Epsilon       *float64            `json:"epsilon"`
	MinSup        []float64           `json:"min_sup"`
	MinSupAbs     []int64             `json:"min_sup_abs"`
	Pruning       *core.PruningLevel  `json:"pruning"`
	Strategy      *core.CountStrategy `json:"strategy"`
	MaxK          *int                `json:"max_k"`
	Parallelism   *int                `json:"parallelism"`
	Materialize   *bool               `json:"materialize"`
	KeepCellStats *bool               `json:"keep_cell_stats"`
	TopK          *int                `json:"top_k"`
	Anchor        *string             `json:"anchor"`
	AnchorTopK    *int                `json:"anchor_top_k"`
	AnchorMode    *string             `json:"anchor_mode"`
	SketchK       *int                `json:"sketch_k"`
}

// Apply overlays the patch on cfg.
func (p *ConfigPatch) Apply(cfg core.Config) core.Config {
	if p == nil {
		return cfg
	}
	if p.Measure != nil {
		cfg.Measure = *p.Measure
	}
	if p.Gamma != nil {
		cfg.Gamma = *p.Gamma
	}
	if p.Epsilon != nil {
		cfg.Epsilon = *p.Epsilon
	}
	if p.MinSup != nil {
		cfg.MinSup = p.MinSup
		cfg.MinSupAbs = nil
	}
	if p.MinSupAbs != nil {
		cfg.MinSupAbs = p.MinSupAbs
	}
	if p.Pruning != nil {
		cfg.Pruning = *p.Pruning
	}
	if p.Strategy != nil {
		cfg.Strategy = *p.Strategy
	}
	if p.MaxK != nil {
		cfg.MaxK = *p.MaxK
	}
	if p.Parallelism != nil {
		cfg.Parallelism = *p.Parallelism
	}
	if p.Materialize != nil {
		cfg.Materialize = *p.Materialize
	}
	if p.KeepCellStats != nil {
		cfg.KeepCellStats = *p.KeepCellStats
	}
	if p.TopK != nil {
		cfg.TopK = *p.TopK
	}
	if p.Anchor != nil {
		cfg.Anchor = *p.Anchor
	}
	if p.AnchorTopK != nil {
		cfg.AnchorTopK = *p.AnchorTopK
	}
	if p.AnchorMode != nil {
		cfg.AnchorMode = *p.AnchorMode
	}
	if p.SketchK != nil {
		cfg.SketchK = *p.SketchK
	}
	return cfg
}

// SubmitRequest is the POST /v1/jobs body.
type SubmitRequest struct {
	// Dataset names a registered dataset (required).
	Dataset string `json:"dataset"`
	// Kind is "mine" (default) or "sweep".
	Kind JobKind `json:"kind"`
	// Config overlays the dataset's default configuration.
	Config *ConfigPatch `json:"config"`
	// Epsilons is the ε list for sweep jobs.
	Epsilons []float64 `json:"epsilons"`
	// TimeoutMS bounds the job's running time in milliseconds. Omitted or
	// 0 inherits the server's default deadline; either way the effective
	// deadline is clamped to the server's maximum.
	TimeoutMS *int64 `json:"timeout_ms,omitempty"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// handleSubmit accepts a mine or sweep job. Responses: 200 with a done job
// on a cache hit, 202 with a queued/coalesced job otherwise, 400 on invalid
// requests, 404 for unknown datasets, 503 when the queue is full.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Kind == "" {
		req.Kind = JobMine
	}
	if req.Kind != JobMine && req.Kind != JobSweep {
		writeError(w, http.StatusBadRequest, "unknown job kind %q", req.Kind)
		return
	}
	d, ok := s.reg.Get(req.Dataset)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q", req.Dataset)
		return
	}
	cfg := req.Config.Apply(d.DefaultConfig())
	if err := cfg.Validate(d.Tree.Height(), d.Src.Len()); err != nil {
		writeError(w, http.StatusBadRequest, "invalid config: %v", err)
		return
	}
	switch req.Kind {
	case JobSweep:
		if len(req.Epsilons) == 0 {
			writeError(w, http.StatusBadRequest, "sweep jobs need a non-empty epsilons list")
			return
		}
		for _, e := range req.Epsilons {
			if e < 0 || e >= cfg.Gamma {
				writeError(w, http.StatusBadRequest, "sweep epsilon %v out of [0, gamma)", e)
				return
			}
		}
	case JobMine:
		// An epsilons list on a mine is almost certainly a forgotten
		// "kind": "sweep"; dropping it silently would mine the wrong thing.
		if len(req.Epsilons) > 0 {
			writeError(w, http.StatusBadRequest, "mine jobs take no epsilons list; did you mean \"kind\": \"sweep\"?")
			return
		}
	}
	timeout := s.opts.JobTimeout
	if req.TimeoutMS != nil {
		if *req.TimeoutMS < 0 {
			writeError(w, http.StatusBadRequest, "timeout_ms must be ≥ 0")
			return
		}
		if *req.TimeoutMS > 0 {
			timeout = time.Duration(*req.TimeoutMS) * time.Millisecond
		}
	}
	if timeout <= 0 || timeout > s.opts.MaxJobTimeout {
		timeout = s.opts.MaxJobTimeout
	}
	j, err := s.queue.SubmitTimeout(d, req.Kind, cfg, req.Epsilons, timeout)
	if errors.Is(err, ErrQueueFull) {
		// The queue is load-shedding; tell well-behaved clients when to
		// come back instead of letting them hot-loop on 503s. The hint
		// scales with the observed median job latency — a server grinding
		// minute-long mines frees slots far slower than a toy one.
		w.Header().Set("Retry-After", s.queue.RetryAfterHint())
		writeError(w, http.StatusServiceUnavailable, "%v: retry after a short backoff, or raise -queue-depth", err)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	v, _ := s.queue.Get(j.ID)
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	if v.Status == StatusDone {
		writeJSON(w, http.StatusOK, v)
		return
	}
	writeJSON(w, http.StatusAccepted, v)
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	v, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// handleCancelJob cancels a queued or running job. Responses: 200 with a
// small acknowledgement envelope, 404 for unknown jobs, 409 when the job
// already reached a terminal status. Cancelling a queued job finalizes it
// immediately; a running job stops at the miner's next checkpoint.
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, err := s.queue.Cancel(id)
	switch {
	case errors.Is(err, ErrUnknownJob):
		writeError(w, http.StatusNotFound, "unknown job %q", id)
	case errors.Is(err, ErrJobFinished):
		writeError(w, http.StatusConflict, "job %s already finished (status %s)", id, v.Status)
	default:
		writeJSON(w, http.StatusOK, map[string]any{
			"id":               v.ID,
			"status":           v.Status,
			"cancel_requested": true,
		})
	}
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.queue.List()})
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"datasets": s.reg.List()})
}

// handleHealthz is pure liveness: 200 whenever the process can serve HTTP,
// including while draining. Restart-deciders probe this; traffic-deciders
// probe /v1/readyz. The envelope is pinned by the golden conformance
// fixtures — readiness data lives in readyz, not here.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"uptime":  time.Since(s.start).Round(time.Millisecond).String(),
		"version": "v1",
	})
}

// readyBody is the GET /v1/readyz payload.
type readyBody struct {
	// Status is "ready", "draining" (shutdown in progress) or "saturated"
	// (the bounded queue has no room — submissions would 503).
	Status string `json:"status"`
	Queue  struct {
		Depth     int  `json:"depth"`
		Capacity  int  `json:"capacity"`
		Saturated bool `json:"saturated"`
	} `json:"queue"`
	// Cluster appears only when flipperd runs with a coordinator: the
	// number of non-dead workers currently schedulable. Zero reachable
	// workers does not fail readiness — the coordinator mines locally in
	// degraded mode — but operators alert on it.
	Cluster *readyCluster `json:"cluster,omitempty"`
}

type readyCluster struct {
	WorkersReachable int `json:"workers_reachable"`
}

// handleReadyz is the traffic-readiness probe: 200 only when the server is
// neither draining nor saturated. Load balancers and orchestrators route on
// this; a 503 here sheds new work while /v1/healthz keeps the process from
// being restarted mid-drain.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	qs := s.queue.Stats()
	var body readyBody
	body.Queue.Depth = qs.Depth
	body.Queue.Capacity = qs.Capacity
	body.Queue.Saturated = qs.Depth >= qs.Capacity
	if s.opts.Coordinator != nil {
		body.Cluster = &readyCluster{WorkersReachable: s.opts.Coordinator.Reachable()}
	}
	status := http.StatusOK
	switch {
	case s.draining.Load():
		body.Status = "draining"
		status = http.StatusServiceUnavailable
	case body.Queue.Saturated:
		body.Status = "saturated"
		status = http.StatusServiceUnavailable
	default:
		body.Status = "ready"
	}
	writeJSON(w, status, body)
}

// statsBody is the GET /v1/stats payload.
type statsBody struct {
	Uptime   string     `json:"uptime"`
	Datasets int        `json:"datasets"`
	Cache    CacheStats `json:"cache"`
	Queue    QueueStats `json:"queue"`
	Jobs     []JobStat  `json:"jobs"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statsBody{
		Uptime:   time.Since(s.start).Round(time.Millisecond).String(),
		Datasets: s.reg.Len(),
		Cache:    s.cache.Stats(),
		Queue:    s.queue.Stats(),
		Jobs:     s.queue.JobStats(),
	})
}
