/*
Package service is the serving layer behind the flipperd binary: it turns
the in-process mining engine (internal/core) into a long-running HTTP
service with an async job queue and a result cache.

Three pieces compose into a Server:

  - Registry: named taxonomy/basket datasets, loaded once from a data
    directory in the flipgen layout (one subdirectory per dataset holding
    taxonomy.tsv plus either baskets.txt or a shards/ directory of
    per-shard basket files). Datasets are either materialized into memory
    at load time or, in streaming mode, left on disk behind
    txdb.FileSources that re-read the basket files on every counting
    pass. The sharded layout loads as a txdb.ShardedSource, so every mine
    over it counts shard-parallel — streamed sharded datasets are
    scanned in parallel without ever being resident together.
  - Queue: a bounded worker pool running core.Mine / core.EpsilonSweep.
    Submissions are deduplicated two ways: identical work already queued or
    running is coalesced onto the existing job (single-flight, so N
    identical submissions trigger one mine), and identical work finished
    earlier is answered from the cache without queueing at all. Completed
    jobs stay pollable up to a history cap, beyond which the oldest are
    pruned with their payloads, keeping a long-running daemon's memory
    bounded.
  - Cache: an LRU over completed results keyed by (dataset, kind,
    core.Config.CanonicalKey, sweep ε-list). The canonical key covers
    exactly the fields that change the mined output, so permuted JSON,
    differing parallelism, or differing instrumentation flags still hit.
    Cached payloads are the stored result bytes, which makes repeated
    answers byte-identical.

The cache is what makes the paper's own workflow cheap: threshold setting
is an ε-sweep that re-mines the same dataset many times, and consecutive
sweeps share every point that did not change.

The HTTP surface (all JSON, see docs/ARCHITECTURE.md for examples):

	POST /v1/jobs          submit a mine or sweep; 200 done (cache hit) or 202 queued
	GET  /v1/jobs/{id}     job status, and the result envelope once done
	GET  /v1/jobs          all jobs without result payloads
	GET  /v1/datasets      registered datasets with default configurations
	GET  /v1/healthz       liveness
	GET  /v1/stats         cache hit rate, queue depth, per-job core stats
*/
package service
