package service

import (
	"container/list"
	"encoding/json"
	"sync"
)

// CachedResult is one cache slot: the fully rendered result payload of a
// completed job. Storing the encoded bytes (rather than re-marshalling per
// request) makes repeated hits byte-identical, which clients can rely on
// when diffing ε-sweep outputs.
type CachedResult struct {
	// Payload is the job's result JSON exactly as first produced.
	Payload json.RawMessage
	// Patterns is the pattern count (or sweep-point count) for stats.
	Patterns int
}

// Cache is a mutex-guarded LRU over completed job results, keyed by the
// job key (dataset + kind + canonical config + sweep epsilons). A capacity
// of zero disables caching entirely: Get always misses and Put drops.
type Cache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List               // front = most recently used
	items  map[string]*list.Element // key → element whose Value is *cacheEntry
	hits   int64
	misses int64
}

type cacheEntry struct {
	key string
	val CachedResult
}

// NewCache returns an LRU holding at most capacity results.
func NewCache(capacity int) *Cache {
	if capacity < 0 {
		capacity = 0
	}
	return &Cache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached result for key, promoting it to most recently
// used, and records a hit or miss.
func (c *Cache) Get(key string) (CachedResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return CachedResult{}, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores a result under key, evicting the least recently used entry
// when the cache is full. Re-putting an existing key refreshes its value
// and recency.
func (c *Cache) Put(key string, v CachedResult) {
	if c.cap == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: v})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// CacheStats is the wire form of the cache counters.
type CacheStats struct {
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	HitRate  float64 `json:"hit_rate"`
	Size     int     `json:"size"`
	Capacity int     `json:"capacity"`
}

// Stats snapshots the counters. HitRate is 0 before any lookup.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CacheStats{Hits: c.hits, Misses: c.misses, Size: c.ll.Len(), Capacity: c.cap}
	if total := c.hits + c.misses; total > 0 {
		s.HitRate = float64(c.hits) / float64(total)
	}
	return s
}
