package service

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"github.com/flipper-mining/flipper/internal/core"
	"github.com/flipper-mining/flipper/internal/taxonomy"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// Dataset file names inside one registry directory entry — the layout
// flipgen writes.
const (
	taxonomyFile = "taxonomy.tsv"
	basketsFile  = "baskets.txt"
)

// Dataset is one named taxonomy/basket pair the service can mine.
type Dataset struct {
	// Name is the registry key, unique within a Registry.
	Name string
	// Tree is the taxonomy, extended (Figure 3 variant B) when the on-disk
	// hierarchy is unbalanced so mining never rejects it.
	Tree *taxonomy.Tree
	// Src supplies the transactions: an in-memory txdb.DB, or a
	// txdb.FileSource re-reading the basket file on every pass when the
	// registry runs in streaming mode.
	Src txdb.Source
	// Stream records whether Src re-reads disk on every scan.
	Stream bool
}

// DefaultConfig returns the paper-default mining configuration for the
// dataset's taxonomy height; job submissions overlay their overrides on it.
// Streaming datasets default to non-materialized counting so the memory
// promise of txdb.FileSource is kept end to end.
func (d *Dataset) DefaultConfig() core.Config {
	cfg := core.DefaultConfig(d.Tree.Height())
	if d.Stream {
		cfg.Materialize = false
	}
	return cfg
}

// Info is the wire description of one registered dataset.
type Info struct {
	Name          string      `json:"name"`
	Transactions  int         `json:"transactions"`
	Height        int         `json:"height"`
	Nodes         int         `json:"nodes"`
	Leaves        int         `json:"leaves"`
	Stream        bool        `json:"stream"`
	DefaultConfig core.Config `json:"default_config"`
}

// Registry holds the datasets a service instance serves, keyed by name.
// All methods are safe for concurrent use.
type Registry struct {
	mu   sync.RWMutex
	sets map[string]*Dataset
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{sets: make(map[string]*Dataset)}
}

// Add registers a dataset under its name. Names must be unique.
func (r *Registry) Add(d *Dataset) error {
	if d.Name == "" {
		return fmt.Errorf("service: dataset name must not be empty")
	}
	if d.Tree == nil || d.Src == nil {
		return fmt.Errorf("service: dataset %q needs a taxonomy and a source", d.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.sets[d.Name]; dup {
		return fmt.Errorf("service: dataset %q already registered", d.Name)
	}
	r.sets[d.Name] = d
	return nil
}

// AddMemory registers an in-memory database under name — the path tests and
// embedders use (e.g. to serve a simdata simulator directly).
func (r *Registry) AddMemory(name string, db *txdb.DB, tree *taxonomy.Tree) error {
	return r.Add(&Dataset{Name: name, Tree: tree, Src: db})
}

// LoadDir scans dir for subdirectories holding a taxonomy.tsv + baskets.txt
// pair (the flipgen output layout) and registers each under its directory
// name. With stream set, baskets stay on disk behind a txdb.FileSource;
// otherwise they are materialized into memory once at load time.
// Subdirectories without the two files are skipped silently, so a data dir
// can hold READMEs and scratch files. Returns the names registered.
func (r *Registry) LoadDir(dir string, stream bool) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("service: data dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		sub := filepath.Join(dir, e.Name())
		taxPath := filepath.Join(sub, taxonomyFile)
		dbPath := filepath.Join(sub, basketsFile)
		if _, err := os.Stat(taxPath); err != nil {
			continue
		}
		if _, err := os.Stat(dbPath); err != nil {
			continue
		}
		d, err := loadDataset(e.Name(), taxPath, dbPath, stream)
		if err != nil {
			return names, fmt.Errorf("service: dataset %q: %w", e.Name(), err)
		}
		if err := r.Add(d); err != nil {
			return names, err
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// loadDataset reads one taxonomy/basket pair from disk.
func loadDataset(name, taxPath, dbPath string, stream bool) (*Dataset, error) {
	tf, err := os.Open(taxPath)
	if err != nil {
		return nil, err
	}
	tree, err := taxonomy.Parse(tf, nil)
	tf.Close()
	if err != nil {
		return nil, err
	}
	if !tree.IsBalanced() {
		tree = tree.Extend()
	}
	d := &Dataset{Name: name, Tree: tree, Stream: stream}
	if stream {
		fs, err := txdb.OpenFile(dbPath, tree.Dict())
		if err != nil {
			return nil, err
		}
		d.Src = fs
	} else {
		bf, err := os.Open(dbPath)
		if err != nil {
			return nil, err
		}
		db, err := txdb.ReadBaskets(bf, tree.Dict())
		bf.Close()
		if err != nil {
			return nil, err
		}
		d.Src = db
	}
	return d, nil
}

// Get looks a dataset up by name.
func (r *Registry) Get(name string) (*Dataset, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.sets[name]
	return d, ok
}

// Len returns the number of registered datasets.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.sets)
}

// List describes every registered dataset, sorted by name.
func (r *Registry) List() []Info {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Info, 0, len(r.sets))
	for _, d := range r.sets {
		out = append(out, Info{
			Name:          d.Name,
			Transactions:  d.Src.Len(),
			Height:        d.Tree.Height(),
			Nodes:         d.Tree.NodeCount(),
			Leaves:        len(d.Tree.Leaves()),
			Stream:        d.Stream,
			DefaultConfig: d.DefaultConfig(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
