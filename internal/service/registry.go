package service

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"github.com/flipper-mining/flipper/internal/core"
	"github.com/flipper-mining/flipper/internal/taxonomy"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// Dataset file names inside one registry directory entry — the layout
// flipgen writes. A dataset holds its transactions either as one
// baskets.txt or as a shards/ subdirectory of per-shard basket files
// (flipgen -shards); the sharded layout is loaded as a txdb.ShardedSource,
// so counting fans a worker pool out over the shard files — with -stream
// the shards are scanned in parallel straight from disk (out-of-core
// mining).
const (
	taxonomyFile = "taxonomy.tsv"
	basketsFile  = "baskets.txt"
	shardsDir    = "shards"
)

// Dataset is one named taxonomy/basket pair the service can mine.
type Dataset struct {
	// Name is the registry key, unique within a Registry.
	Name string
	// Tree is the taxonomy, extended (Figure 3 variant B) when the on-disk
	// hierarchy is unbalanced so mining never rejects it.
	Tree *taxonomy.Tree
	// Src supplies the transactions: an in-memory txdb.DB, a
	// txdb.FileSource re-reading the basket file on every pass when the
	// registry runs in streaming mode, or a txdb.ShardedSource when the
	// dataset uses the sharded on-disk layout.
	Src txdb.Source
	// Stream records whether Src re-reads disk on every scan.
	Stream bool
	// SketchPath, when non-empty, is where the dataset's anchored-search
	// item sketches persist (next to the dataset files for disk-loaded
	// registries), so a restarted flipperd warm-starts /v1/topk without
	// rebuilding signatures.
	SketchPath string

	engOnce sync.Once
	eng     *core.Engine
}

// Engine returns the dataset's persistent mining engine, created on first
// use. All jobs over the dataset share it, so materialized level views,
// bitmap/tid indexes and counting scratch built for one job are reused by
// the next — repeat mines over a registered dataset pay data preparation
// once, not per request. The engine is safe for concurrent jobs.
func (d *Dataset) Engine() *core.Engine {
	d.engOnce.Do(func() {
		d.eng = core.NewEngine(d.Src, d.Tree)
		if d.SketchPath != "" {
			d.eng.SetSketchPath(d.SketchPath)
		}
	})
	return d.eng
}

// Shards returns how many transaction shards the dataset's source fans
// counting out over (1 for unsharded sources).
func (d *Dataset) Shards() int {
	if ss, ok := d.Src.(*txdb.ShardedSource); ok {
		return ss.NumShards()
	}
	return 1
}

// DefaultConfig returns the paper-default mining configuration for the
// dataset's taxonomy height; job submissions overlay their overrides on it.
// Streaming datasets default to non-materialized counting so the memory
// promise of txdb.FileSource is kept end to end.
func (d *Dataset) DefaultConfig() core.Config {
	cfg := core.DefaultConfig(d.Tree.Height())
	if d.Stream {
		cfg.Materialize = false
	}
	return cfg
}

// Info is the wire description of one registered dataset.
type Info struct {
	Name          string      `json:"name"`
	Transactions  int         `json:"transactions"`
	Height        int         `json:"height"`
	Nodes         int         `json:"nodes"`
	Leaves        int         `json:"leaves"`
	Stream        bool        `json:"stream"`
	Shards        int         `json:"shards"`
	DefaultConfig core.Config `json:"default_config"`
}

// Registry holds the datasets a service instance serves, keyed by name.
// All methods are safe for concurrent use.
type Registry struct {
	mu   sync.RWMutex
	sets map[string]*Dataset
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{sets: make(map[string]*Dataset)}
}

// Add registers a dataset under its name. Names must be unique.
func (r *Registry) Add(d *Dataset) error {
	if d.Name == "" {
		return fmt.Errorf("service: dataset name must not be empty")
	}
	if d.Tree == nil || d.Src == nil {
		return fmt.Errorf("service: dataset %q needs a taxonomy and a source", d.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.sets[d.Name]; dup {
		return fmt.Errorf("service: dataset %q already registered", d.Name)
	}
	r.sets[d.Name] = d
	return nil
}

// AddMemory registers an in-memory database under name — the path tests and
// embedders use (e.g. to serve a simdata simulator directly).
func (r *Registry) AddMemory(name string, db *txdb.DB, tree *taxonomy.Tree) error {
	return r.Add(&Dataset{Name: name, Tree: tree, Src: db})
}

// LoadDir scans dir for subdirectories holding a taxonomy.tsv next to
// either a baskets.txt or a shards/ directory of per-shard basket files
// (the two flipgen output layouts) and registers each under its directory
// name. With stream set, baskets stay on disk behind txdb.FileSources;
// otherwise they are materialized into memory once at load time. Sharded
// datasets load as txdb.ShardedSources, so every mine over them counts
// shard-parallel. Subdirectories without the files are skipped silently, so
// a data dir can hold READMEs and scratch files. Returns the names
// registered.
func (r *Registry) LoadDir(dir string, stream bool) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("service: data dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		sub := filepath.Join(dir, e.Name())
		taxPath := filepath.Join(sub, taxonomyFile)
		if _, err := os.Stat(taxPath); err != nil {
			continue
		}
		// baskets.txt wins over shards/ so a dataset never silently changes
		// content by gaining a shards/ directory; the sharded layout is only
		// consulted when the single-file one is absent.
		dbPath := filepath.Join(sub, basketsFile)
		var shardPaths []string
		if _, err := os.Stat(dbPath); err != nil {
			shardPaths, err = txdb.ShardDirFiles(filepath.Join(sub, shardsDir))
			if err != nil && !os.IsNotExist(err) {
				// A shards/ directory that exists but cannot be read must
				// fail loudly, like a broken baskets.txt — not silently
				// drop the dataset from the registry.
				return names, fmt.Errorf("service: dataset %q: %w", e.Name(), err)
			}
			if len(shardPaths) == 0 {
				continue
			}
			dbPath = ""
		}
		d, err := loadDataset(e.Name(), taxPath, dbPath, shardPaths, stream)
		if err != nil {
			return names, fmt.Errorf("service: dataset %q: %w", e.Name(), err)
		}
		if err := r.Add(d); err != nil {
			return names, err
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// loadDataset reads one taxonomy/basket dataset from disk. Exactly one of
// dbPath (single basket file) or shardPaths (sharded layout; dbPath empty)
// supplies the transactions; LoadDir resolves which layout applies.
func loadDataset(name, taxPath, dbPath string, shardPaths []string, stream bool) (*Dataset, error) {
	tf, err := os.Open(taxPath)
	if err != nil {
		return nil, err
	}
	tree, err := taxonomy.Parse(tf, nil)
	tf.Close()
	if err != nil {
		return nil, err
	}
	if !tree.IsBalanced() {
		tree = tree.Extend()
	}
	d := &Dataset{
		Name:       name,
		Tree:       tree,
		Stream:     stream,
		SketchPath: filepath.Join(filepath.Dir(taxPath), "sketches.bin"),
	}
	switch {
	case len(shardPaths) > 0:
		ss, err := txdb.OpenShards(shardPaths, tree.Dict(), stream)
		if err != nil {
			return nil, err
		}
		d.Src = ss
	default:
		s, err := txdb.OpenBasketSource(dbPath, tree.Dict(), stream)
		if err != nil {
			return nil, err
		}
		d.Src = s
	}
	return d, nil
}

// Get looks a dataset up by name.
func (r *Registry) Get(name string) (*Dataset, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.sets[name]
	return d, ok
}

// Len returns the number of registered datasets.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.sets)
}

// List describes every registered dataset, sorted by name.
func (r *Registry) List() []Info {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Info, 0, len(r.sets))
	for _, d := range r.sets {
		out = append(out, Info{
			Name:          d.Name,
			Transactions:  d.Src.Len(),
			Height:        d.Tree.Height(),
			Nodes:         d.Tree.NodeCount(),
			Leaves:        len(d.Tree.Leaves()),
			Stream:        d.Stream,
			Shards:        d.Shards(),
			DefaultConfig: d.DefaultConfig(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
