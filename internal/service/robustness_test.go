package service

import (
	"strings"
	"testing"
	"time"

	"github.com/flipper-mining/flipper/internal/datasets"
	"github.com/flipper-mining/flipper/internal/dict"
	"github.com/flipper-mining/flipper/internal/itemset"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// panicSource detonates on its first Scan, exercising the worker's panic
// guard through the same path a latent mining bug would take.
type panicSource struct {
	src txdb.Source
}

func (p *panicSource) Scan(fn func(tx itemset.Set) error) error {
	panic("injected mining panic")
}
func (p *panicSource) Len() int               { return p.src.Len() }
func (p *panicSource) Dict() *dict.Dictionary { return p.src.Dict() }

// TestWorkerPanicRecovery pins the containment contract: a panic inside a
// mine fails that job (stack trace in the error) without killing the worker
// — the queue keeps serving subsequent jobs at full capacity.
func TestWorkerPanicRecovery(t *testing.T) {
	toy := datasets.PaperToy()
	bomb := &Dataset{Name: "bomb", Tree: toy.Tree, Src: &panicSource{src: toy.DB}}
	good := &Dataset{Name: "toy", Tree: toy.Tree, Src: toy.DB}

	q := NewQueue(1, 4, 100, NewCache(4))
	defer q.Close()

	j, err := q.Submit(bomb, JobMine, toy.Config(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Wait(j, 10*time.Second) {
		t.Fatal("panicking job never finalized — the worker died with it")
	}
	v, _ := q.Get(j.ID)
	if v.Status != StatusFailed {
		t.Fatalf("status = %s, want failed", v.Status)
	}
	if !strings.Contains(v.Error, "job panicked") || !strings.Contains(v.Error, "injected mining panic") {
		t.Fatalf("error %q does not carry the panic", v.Error)
	}
	if !strings.Contains(v.Error, "goroutine") {
		t.Fatalf("error %q does not carry a stack trace", v.Error)
	}

	// The single worker survived: a clean job still runs to completion.
	j2, err := q.Submit(good, JobMine, toy.Config(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Wait(j2, 10*time.Second) {
		t.Fatal("job after panic never finished — worker pool lost capacity")
	}
	if v2, _ := q.Get(j2.ID); v2.Status != StatusDone {
		t.Fatalf("job after panic = %+v, want done", v2)
	}
}

// TestCloseDrainsInFlight pins the graceful-shutdown contract: Close waits
// for the running job, and its result is recorded and pollable afterwards.
func TestCloseDrainsInFlight(t *testing.T) {
	toy := datasets.PaperToy()
	gated := newGatedSource(toy.DB)
	d := &Dataset{Name: "toy", Tree: toy.Tree, Src: gated}

	q := NewQueue(1, 4, 100, NewCache(4))
	j, err := q.Submit(d, JobMine, toy.Config(), nil)
	if err != nil {
		t.Fatal(err)
	}

	closed := make(chan struct{})
	go func() {
		q.Close()
		close(closed)
	}()

	// Close must block while the job is still mining.
	select {
	case <-closed:
		t.Fatal("Close returned with a job still in flight")
	case <-time.After(50 * time.Millisecond):
	}

	gated.release()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return after the in-flight job finished")
	}
	v, ok := q.Get(j.ID)
	if !ok || v.Status != StatusDone || len(v.Result) == 0 {
		t.Fatalf("drained job = %+v, want done with result", v)
	}
}

// TestCancelQueuedJob pins that cancelling a job still in the queue
// finalizes it immediately — it never starts, never mines, and the worker
// skips it when its turn comes.
func TestCancelQueuedJob(t *testing.T) {
	toy := datasets.PaperToy()
	gated := newGatedSource(toy.DB)
	d := &Dataset{Name: "toy", Tree: toy.Tree, Src: gated}

	q := NewQueue(1, 4, 100, NewCache(4))
	defer q.Close()

	// The single worker blocks on the gated job; the second submission
	// (distinct ε → distinct key) waits in the channel.
	running, err := q.Submit(d, JobMine, toy.Config(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := toy.Config()
	cfg.Epsilon = 0.25
	queued, err := q.Submit(d, JobMine, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	v, err := q.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != StatusCancelled || v.Error != "cancelled" {
		t.Fatalf("cancelled queued job = %+v", v)
	}
	if v.Started != nil || v.ElapsedNS != 0 {
		t.Fatalf("queued job reports a start it never had: %+v", v)
	}
	if !q.Wait(queued, time.Second) {
		t.Fatal("cancelled queued job not finalized immediately")
	}

	gated.release()
	if !q.Wait(running, 10*time.Second) {
		t.Fatal("running job did not finish")
	}
	if got := q.Stats().MinesRun; got != 1 {
		t.Errorf("mines run = %d, want 1 — the cancelled job must never mine", got)
	}
	if got := q.Stats().Cancelled; got != 1 {
		t.Errorf("cancelled counter = %d, want 1", got)
	}
}

// TestCancelRunningJob pins the end-to-end cancellation path: Cancel on a
// running job stops the miner at its next checkpoint, the job lands in
// StatusCancelled, and — because aborted runs are never cached — an
// identical resubmission mines fresh and completes.
func TestCancelRunningJob(t *testing.T) {
	toy := datasets.PaperToy()
	gated := newGatedSource(toy.DB)
	d := &Dataset{Name: "toy", Tree: toy.Tree, Src: gated}

	q := NewQueue(1, 4, 100, NewCache(4))
	defer q.Close()

	j, err := q.Submit(d, JobMine, toy.Config(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to pick it up.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, _ := q.Get(j.ID); v.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := q.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	// A second cancel of a still-running job is an idempotent no-op.
	if _, err := q.Cancel(j.ID); err != nil && err != ErrJobFinished {
		t.Fatalf("second cancel: %v", err)
	}
	gated.release()
	if !q.Wait(j, 10*time.Second) {
		t.Fatal("cancelled job never finalized")
	}
	v, _ := q.Get(j.ID)
	if v.Status != StatusCancelled || v.Error != "cancelled" {
		t.Fatalf("job = %+v, want cancelled", v)
	}
	if len(v.Result) != 0 {
		t.Fatal("cancelled job carries a result payload")
	}

	// Cancelling a finished job is a conflict, with the state returned.
	if _, err := q.Cancel(j.ID); err != ErrJobFinished {
		t.Fatalf("cancel finished job: err = %v, want ErrJobFinished", err)
	}
	if _, err := q.Cancel("job-999999"); err != ErrUnknownJob {
		t.Fatalf("cancel unknown job: err = %v, want ErrUnknownJob", err)
	}

	// The aborted run was not cached: the same work resubmitted mines again.
	j2, err := q.Submit(d, JobMine, toy.Config(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if j2.CacheHit {
		t.Fatal("resubmission after cancel hit the cache — aborted runs must not be cached")
	}
	if !q.Wait(j2, 10*time.Second) {
		t.Fatal("resubmitted job did not finish")
	}
	if v2, _ := q.Get(j2.ID); v2.Status != StatusDone {
		t.Fatalf("resubmitted job = %+v, want done", v2)
	}
}

// TestJobTimeout pins the deadline path: a job whose work outlives its
// timeout finishes in StatusCancelled with the timeout named in the error,
// distinguishable from an explicit cancel.
func TestJobTimeout(t *testing.T) {
	toy := datasets.PaperToy()
	gated := newGatedSource(toy.DB)
	d := &Dataset{Name: "toy", Tree: toy.Tree, Src: gated}

	q := NewQueue(1, 4, 100, NewCache(4))
	defer q.Close()

	j, err := q.SubmitTimeout(d, JobMine, toy.Config(), nil, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if j.Timeout != 30*time.Millisecond {
		t.Fatalf("job timeout = %s", j.Timeout)
	}
	// Hold the gate well past the deadline, then let the miner run into it.
	time.Sleep(80 * time.Millisecond)
	gated.release()
	if !q.Wait(j, 10*time.Second) {
		t.Fatal("timed-out job never finalized")
	}
	v, _ := q.Get(j.ID)
	if v.Status != StatusCancelled {
		t.Fatalf("status = %s, want cancelled", v.Status)
	}
	if !strings.Contains(v.Error, "job timeout") || !strings.Contains(v.Error, "30ms") {
		t.Fatalf("error %q does not name the timeout", v.Error)
	}
	if v.TimeoutMS != 30 {
		t.Fatalf("timeout_ms = %d, want 30", v.TimeoutMS)
	}
}

// TestCoalescedSubmissionKeepsDeadline pins that a duplicate submission
// coalesces onto the inflight job — the deadline is an execution bound, not
// part of the work's identity.
func TestCoalescedSubmissionKeepsDeadline(t *testing.T) {
	toy := datasets.PaperToy()
	gated := newGatedSource(toy.DB)
	d := &Dataset{Name: "toy", Tree: toy.Tree, Src: gated}

	q := NewQueue(1, 4, 100, NewCache(4))
	defer q.Close()
	defer gated.release()

	a, err := q.SubmitTimeout(d, JobMine, toy.Config(), nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	b, err := q.SubmitTimeout(d, JobMine, toy.Config(), nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != b.ID {
		t.Fatalf("identical submissions got distinct jobs %s and %s", a.ID, b.ID)
	}
	if b.Timeout != time.Minute {
		t.Fatalf("coalesced job timeout = %s, want the original minute", b.Timeout)
	}
}
