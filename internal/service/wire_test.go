package service

import (
	"encoding/json"
	"testing"
	"time"
)

// TestVolatileWireKeysExist guards the contract between the service wire
// forms and the golden conformance harness: every key declared volatile must
// appear in at least one of the envelopes the /v1 API emits (a completed
// JobView, the stats body, the health body), so a field rename cannot leave
// a timestamp unscrubbed in committed fixtures.
func TestVolatileWireKeysExist(t *testing.T) {
	now := time.Now()
	jv := JobView{
		ID:        "job-000001",
		Status:    StatusDone,
		Created:   now,
		Started:   &now,
		Finished:  &now,
		ElapsedNS: 42,
	}
	envelopes := []any{
		jv,
		statsBody{Uptime: "1ms"},
		map[string]any{"status": "ok", "uptime": "1ms", "version": "v1"},
	}
	seen := map[string]bool{}
	for _, e := range envelopes {
		raw, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatal(err)
		}
		for k := range m {
			seen[k] = true
		}
	}
	for _, k := range VolatileWireKeys() {
		if !seen[k] {
			t.Errorf("VolatileWireKeys lists %q, but no service envelope has such a wire field", k)
		}
	}
}
