package service

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"github.com/flipper-mining/flipper/internal/datasets"
	"github.com/flipper-mining/flipper/internal/dict"
	"github.com/flipper-mining/flipper/internal/itemset"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// gatedSource wraps a Source and blocks the first Scan until released,
// making "job still in flight" states deterministic in tests.
type gatedSource struct {
	src  txdb.Source
	gate chan struct{}
	once sync.Once
}

func newGatedSource(src txdb.Source) *gatedSource {
	return &gatedSource{src: src, gate: make(chan struct{})}
}

func (g *gatedSource) release() { g.once.Do(func() { close(g.gate) }) }

func (g *gatedSource) Scan(fn func(tx itemset.Set) error) error {
	<-g.gate
	return g.src.Scan(fn)
}
func (g *gatedSource) Len() int               { return g.src.Len() }
func (g *gatedSource) Dict() *dict.Dictionary { return g.src.Dict() }

// TestSingleFlight pins the dedup guarantee: N identical submissions while
// the first is still mining coalesce onto one job and trigger exactly one
// mine.
func TestSingleFlight(t *testing.T) {
	toy := datasets.PaperToy()
	gated := newGatedSource(toy.DB)
	d := &Dataset{Name: "toy", Tree: toy.Tree, Src: gated}
	cfg := toy.Config()

	cache := NewCache(16)
	q := NewQueue(2, 16, 100, cache)
	defer q.Close()

	const n = 12
	jobs := make([]*Job, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, err := q.Submit(d, JobMine, cfg, nil)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			jobs[i] = j
		}(i)
	}
	wg.Wait()

	// All submissions landed on the same in-flight job.
	for i, j := range jobs {
		if j == nil || j.ID != jobs[0].ID {
			t.Fatalf("submission %d got job %+v, want coalesced onto %s", i, j, jobs[0].ID)
		}
	}
	gated.release()
	if !q.Wait(jobs[0], 10*time.Second) {
		t.Fatal("job did not finish")
	}
	if got := q.Stats().MinesRun; got != 1 {
		t.Errorf("mines run = %d, want exactly 1", got)
	}
	v, _ := q.Get(jobs[0].ID)
	if v.Status != StatusDone {
		t.Fatalf("job = %+v", v)
	}

	// Post-completion, the same work is a cache hit with identical bytes.
	j2, err := q.Submit(d, JobMine, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !j2.CacheHit || j2.Status != StatusDone {
		t.Fatalf("post-completion job = %+v, want immediate cache hit", j2)
	}
	if !bytes.Equal(j2.Result, v.Result) {
		t.Error("cache hit bytes differ from the original run")
	}
	if got := q.Stats().MinesRun; got != 1 {
		t.Errorf("mines run after cache hit = %d, want still 1", got)
	}
}

// TestQueueFull pins the bounded-queue contract: with the only worker
// blocked and the channel full, further distinct submissions are rejected
// with ErrQueueFull rather than queued unboundedly.
func TestQueueFull(t *testing.T) {
	toy := datasets.PaperToy()
	gated := newGatedSource(toy.DB)
	d := &Dataset{Name: "toy", Tree: toy.Tree, Src: gated}

	q := NewQueue(1, 1, 100, NewCache(16))
	defer q.Close()
	defer gated.release()

	// Distinct ε values make distinct job keys, defeating single-flight.
	cfg := toy.Config()
	epsilons := []float64{0.30, 0.31, 0.32, 0.33, 0.34}
	var accepted int
	var full bool
	for _, e := range epsilons {
		c := cfg
		c.Epsilon = e
		_, err := q.Submit(d, JobMine, c, nil)
		switch err {
		case nil:
			accepted++
		case ErrQueueFull:
			full = true
		default:
			t.Fatal(err)
		}
	}
	if !full {
		t.Error("queue of depth 1 accepted 5 jobs without ErrQueueFull")
	}
	// The blocked worker holds one job and the channel one more.
	if accepted > 2 {
		t.Errorf("accepted = %d, want ≤ 2", accepted)
	}
}

// TestSweepKeyIgnoresBaseEpsilon pins that identical sweeps whose configs
// differ only in the base ε — which EpsilonSweep overrides at every point —
// share one cache slot.
func TestSweepKeyIgnoresBaseEpsilon(t *testing.T) {
	toy := datasets.PaperToy()
	d := &Dataset{Name: "toy", Tree: toy.Tree, Src: toy.DB}
	q := NewQueue(1, 8, 100, NewCache(8))
	defer q.Close()

	eps := []float64{0.35, 0.2}
	a := toy.Config()
	a.Epsilon = 0.1
	j1, err := q.Submit(d, JobSweep, a, eps)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Wait(j1, 10*time.Second) {
		t.Fatal("sweep did not finish")
	}
	b := toy.Config()
	b.Epsilon = 0.05
	j2, err := q.Submit(d, JobSweep, b, eps)
	if err != nil {
		t.Fatal(err)
	}
	if !j2.CacheHit {
		t.Error("sweep with a different base epsilon missed the cache")
	}
	if got := q.Stats().SweepsRun; got != 1 {
		t.Errorf("sweeps run = %d, want 1", got)
	}
	// A genuinely different ε list must still miss.
	j3, err := q.Submit(d, JobSweep, a, []float64{0.35, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if j3.CacheHit {
		t.Error("different epsilons list unexpectedly hit the cache")
	}
}

// TestJobHistoryPruning pins the retention cap: completed jobs beyond the
// history limit are dropped (payload and all), newest kept.
func TestJobHistoryPruning(t *testing.T) {
	toy := datasets.PaperToy()
	d := &Dataset{Name: "toy", Tree: toy.Tree, Src: toy.DB}
	q := NewQueue(1, 8, 2, NewCache(16))
	defer q.Close()

	var ids []string
	for _, eps := range []float64{0.30, 0.31, 0.32, 0.33} {
		cfg := toy.Config()
		cfg.Epsilon = eps
		j, err := q.Submit(d, JobMine, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !q.Wait(j, 10*time.Second) {
			t.Fatal("job did not finish")
		}
		ids = append(ids, j.ID)
	}
	for _, id := range ids[:2] {
		if _, ok := q.Get(id); ok {
			t.Errorf("job %s survived pruning with history=2", id)
		}
	}
	for _, id := range ids[2:] {
		if v, ok := q.Get(id); !ok || v.Status != StatusDone {
			t.Errorf("job %s pruned too eagerly", id)
		}
	}
	if got := len(q.List()); got != 2 {
		t.Errorf("retained jobs = %d, want 2", got)
	}
	// Pruning drops history, not work already done: results stay cached.
	cfg := toy.Config()
	cfg.Epsilon = 0.30
	j, err := q.Submit(d, JobMine, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !j.CacheHit {
		t.Error("pruned job's result fell out of the cache")
	}
}

func TestQueueClosedRejectsSubmit(t *testing.T) {
	toy := datasets.PaperToy()
	d := &Dataset{Name: "toy", Tree: toy.Tree, Src: toy.DB}
	q := NewQueue(1, 4, 100, NewCache(4))
	q.Close()
	if _, err := q.Submit(d, JobMine, toy.Config(), nil); err == nil {
		t.Error("closed queue accepted a submission")
	}
}
