package service

import (
	"encoding/json"
	"fmt"
	"testing"
)

func payload(i int) CachedResult {
	return CachedResult{Payload: json.RawMessage(fmt.Sprintf(`{"n":%d}`, i)), Patterns: i}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("a", payload(1))
	c.Put("b", payload(2))
	if _, ok := c.Get("a"); !ok { // promotes a
		t.Fatal("a missing")
	}
	c.Put("c", payload(3)) // evicts b, the least recently used
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s evicted, want resident", k)
		}
	}
	s := c.Stats()
	if s.Size != 2 || s.Capacity != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestCacheRePutRefreshes(t *testing.T) {
	c := NewCache(2)
	c.Put("a", payload(1))
	c.Put("b", payload(2))
	c.Put("a", payload(9)) // refresh: a becomes most recent
	c.Put("c", payload(3)) // evicts b
	got, ok := c.Get("a")
	if !ok || got.Patterns != 9 {
		t.Errorf("a = %+v ok=%v, want refreshed value", got, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction after a's refresh")
	}
}

func TestCacheHitRate(t *testing.T) {
	c := NewCache(4)
	if s := c.Stats(); s.HitRate != 0 {
		t.Errorf("empty cache hit rate = %v", s.HitRate)
	}
	c.Put("a", payload(1))
	c.Get("a")
	c.Get("a")
	c.Get("missing")
	c.Get("missing")
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 2 || s.HitRate != 0.5 {
		t.Errorf("stats = %+v, want 2/2 and rate 0.5", s)
	}
}

func TestCacheZeroCapacityDisables(t *testing.T) {
	c := NewCache(0)
	c.Put("a", payload(1))
	if _, ok := c.Get("a"); ok {
		t.Error("zero-capacity cache stored an entry")
	}
	if s := c.Stats(); s.Size != 0 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}
