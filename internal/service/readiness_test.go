package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/flipper-mining/flipper/internal/core"
	"github.com/flipper-mining/flipper/internal/datasets"
	"github.com/flipper-mining/flipper/internal/dict"
	"github.com/flipper-mining/flipper/internal/itemset"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// signalGate is a gatedSource that additionally reports when a scan has
// actually started — the deterministic "worker is now occupied" signal the
// saturation tests need before filling the queue behind it.
type signalGate struct {
	src     txdb.Source
	entered chan struct{}
	gate    chan struct{}
	rel     atomic.Bool
}

func newSignalGate(src txdb.Source) *signalGate {
	return &signalGate{src: src, entered: make(chan struct{}, 1), gate: make(chan struct{})}
}

func (g *signalGate) release() {
	if g.rel.CompareAndSwap(false, true) {
		close(g.gate)
	}
}

func (g *signalGate) waitEntered(t *testing.T) {
	t.Helper()
	select {
	case <-g.entered:
	case <-time.After(30 * time.Second):
		t.Fatal("gated job never started scanning")
	}
}

func (g *signalGate) Scan(fn func(tx itemset.Set) error) error {
	select {
	case g.entered <- struct{}{}:
	default:
	}
	<-g.gate
	return g.src.Scan(fn)
}
func (g *signalGate) Len() int               { return g.src.Len() }
func (g *signalGate) Dict() *dict.Dictionary { return g.src.Dict() }

// newHTTPServer wraps a built Server in an httptest listener.
func newHTTPServer(t *testing.T, srv *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// fakeCoordinator satisfies DistributedMiner without a cluster: it mines
// through the dataset's own engine, so routing through it is observable
// (calls counted) but result-identical.
type fakeCoordinator struct {
	reg       *Registry
	eligible  atomic.Bool
	reachable atomic.Int64
	mines     atomic.Int64
	degrade   atomic.Bool
}

func (f *fakeCoordinator) Eligible(dataset string) bool { return f.eligible.Load() }
func (f *fakeCoordinator) Reachable() int               { return int(f.reachable.Load()) }
func (f *fakeCoordinator) Mine(ctx context.Context, dataset string, cfg core.Config) (*core.Result, error) {
	f.mines.Add(1)
	d, _ := f.reg.Get(dataset)
	res, err := d.Engine().MineContext(ctx, cfg)
	if err == nil && f.degrade.Load() {
		res.Stats.Degraded = true
	}
	return res, err
}

func getReadyz(t *testing.T, url string) (int, readyBody) {
	t.Helper()
	resp, err := http.Get(url + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body readyBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestReadyzLifecycle pins the liveness/readiness split: healthz stays 200
// through a drain while readyz flips to 503, and a fresh server reports
// ready with its queue capacity.
func TestReadyzLifecycle(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 7})
	code, body := getReadyz(t, ts.URL)
	if code != http.StatusOK || body.Status != "ready" {
		t.Fatalf("fresh server readyz: %d %q, want 200 ready", code, body.Status)
	}
	if body.Queue.Capacity != 7 || body.Queue.Saturated {
		t.Fatalf("fresh queue block: %+v", body.Queue)
	}
	if body.Cluster != nil {
		t.Fatalf("cluster block present without a coordinator: %+v", body.Cluster)
	}

	srv.BeginDrain()
	code, body = getReadyz(t, ts.URL)
	if code != http.StatusServiceUnavailable || body.Status != "draining" {
		t.Fatalf("draining readyz: %d %q, want 503 draining", code, body.Status)
	}
	// Liveness is unaffected: the process is healthy, just not taking work.
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain: %d, want 200", resp.StatusCode)
	}
}

// TestReadyzSaturation drives the queue to capacity behind a gated job and
// checks readyz reports saturated 503, recovering once the queue drains.
func TestReadyzSaturation(t *testing.T) {
	toy := datasets.PaperToy()
	reg := NewRegistry()
	gs := newSignalGate(toy.DB)
	if err := reg.Add(&Dataset{Name: "toy", Tree: toy.Tree, Src: gs}); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reg, Options{Workers: 1, QueueDepth: 1})
	defer srv.Close()
	ts := newHTTPServer(t, srv)

	if _, v := submit(t, ts, `{"dataset": "toy", "config": `+toyPatch+`}`); v.ID == "" {
		t.Fatal("gate job not accepted")
	}
	gs.waitEntered(t)
	// Fill the single queue slot with a distinct config.
	if status, _ := submit(t, ts, `{"dataset": "toy", "config": {"gamma": 0.6, "epsilon": 0.3, "min_sup": [0.1, 0.1, 0.1]}}`); status != http.StatusAccepted {
		t.Fatalf("filler job status %d", status)
	}
	code, body := getReadyz(t, ts.URL)
	if code != http.StatusServiceUnavailable || body.Status != "saturated" {
		t.Fatalf("saturated readyz: %d %q, want 503 saturated", code, body.Status)
	}
	if !body.Queue.Saturated || body.Queue.Depth != body.Queue.Capacity {
		t.Fatalf("saturated queue block: %+v", body.Queue)
	}
	gs.release()
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body = getReadyz(t, ts.URL)
		if code == http.StatusOK && body.Status == "ready" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("readyz never recovered: %d %+v", code, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReadyzClusterBlock pins the coordinator-backed readiness field.
func TestReadyzClusterBlock(t *testing.T) {
	toy := datasets.PaperToy()
	reg := NewRegistry()
	if err := reg.AddMemory("toy", toy.DB, toy.Tree); err != nil {
		t.Fatal(err)
	}
	fc := &fakeCoordinator{reg: reg}
	fc.reachable.Store(3)
	srv := NewServer(reg, Options{Workers: 1, Coordinator: fc})
	defer srv.Close()
	ts := newHTTPServer(t, srv)

	code, body := getReadyz(t, ts.URL)
	if code != http.StatusOK {
		t.Fatalf("readyz: %d", code)
	}
	if body.Cluster == nil || body.Cluster.WorkersReachable != 3 {
		t.Fatalf("cluster block %+v, want workers_reachable 3", body.Cluster)
	}
}

// TestDistributedRouting pins the queue's coordinator routing: jobs go
// through the DistributedMiner only when it reports the dataset eligible,
// and degraded results are never cached.
func TestDistributedRouting(t *testing.T) {
	toy := datasets.PaperToy()
	reg := NewRegistry()
	if err := reg.AddMemory("toy", toy.DB, toy.Tree); err != nil {
		t.Fatal(err)
	}
	fc := &fakeCoordinator{reg: reg}
	srv := NewServer(reg, Options{Workers: 1, Coordinator: fc})
	defer srv.Close()
	ts := newHTTPServer(t, srv)

	// Not eligible: the job mines locally.
	_, v := submit(t, ts, `{"dataset": "toy", "config": `+toyPatch+`}`)
	v = pollDone(t, ts, v.ID)
	if v.Status != StatusDone {
		t.Fatalf("local job: %s (%s)", v.Status, v.Error)
	}
	if fc.mines.Load() != 0 {
		t.Fatal("ineligible dataset routed to the coordinator")
	}

	// Eligible: a different config routes through the coordinator.
	fc.eligible.Store(true)
	_, v = submit(t, ts, `{"dataset": "toy", "config": {"gamma": 0.6, "epsilon": 0.3, "min_sup": [0.1, 0.1, 0.1]}}`)
	v = pollDone(t, ts, v.ID)
	if v.Status != StatusDone {
		t.Fatalf("distributed job: %s (%s)", v.Status, v.Error)
	}
	if fc.mines.Load() != 1 {
		t.Fatalf("coordinator mined %d jobs, want 1", fc.mines.Load())
	}

	// Degraded runs complete fine but skip the cache: the resubmission is a
	// fresh mine (mines counter advances), not a cache hit.
	fc.degrade.Store(true)
	_, v = submit(t, ts, `{"dataset": "toy", "config": {"gamma": 0.6, "epsilon": 0.2, "min_sup": [0.1, 0.1, 0.1]}}`)
	v = pollDone(t, ts, v.ID)
	if v.Status != StatusDone {
		t.Fatalf("degraded job: %s (%s)", v.Status, v.Error)
	}
	if !strings.Contains(string(v.Result), `"degraded": true`) {
		t.Fatalf("degraded run's envelope lacks the degraded flag: %s", v.Result)
	}
	_, v2 := submit(t, ts, `{"dataset": "toy", "config": {"gamma": 0.6, "epsilon": 0.2, "min_sup": [0.1, 0.1, 0.1]}}`)
	v2 = pollDone(t, ts, v2.ID)
	if v2.CacheHit {
		t.Fatal("degraded result was served from the cache")
	}
	if fc.mines.Load() != 3 {
		t.Fatalf("coordinator mined %d jobs, want 3 (degraded results must re-mine)", fc.mines.Load())
	}
}

// TestRetryAfterHint pins the adaptive backoff hint math directly.
func TestRetryAfterHint(t *testing.T) {
	q := NewQueue(1, 1, 10, NewCache(4))
	defer q.Close()
	if got := q.RetryAfterHint(); got != "1" {
		t.Fatalf("fresh queue hint %q, want \"1\"", got)
	}
	seed := func(durs ...time.Duration) {
		q.mu.Lock()
		q.latCount = 0
		for _, d := range durs {
			q.latSamples[q.latCount%latWindow] = d
			q.latCount++
		}
		q.mu.Unlock()
	}
	seed(100*time.Millisecond, 200*time.Millisecond, 300*time.Millisecond)
	if got := q.RetryAfterHint(); got != "1" {
		t.Fatalf("sub-second median hint %q, want clamp to \"1\"", got)
	}
	seed(time.Second, 4500*time.Millisecond, 90*time.Second)
	if got := q.RetryAfterHint(); got != "5" {
		t.Fatalf("4.5s median hint %q, want ceil to \"5\"", got)
	}
	seed(time.Minute, 2*time.Minute, 3*time.Minute)
	if got := q.RetryAfterHint(); got != "30" {
		t.Fatalf("multi-minute median hint %q, want clamp to \"30\"", got)
	}
}

// TestRetryAfterHeaderScales pins the wire behavior: a saturated queue's
// 503 carries the median-scaled hint, not a hard-coded constant.
func TestRetryAfterHeaderScales(t *testing.T) {
	toy := datasets.PaperToy()
	reg := NewRegistry()
	gs := newSignalGate(toy.DB)
	if err := reg.Add(&Dataset{Name: "toy", Tree: toy.Tree, Src: gs}); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reg, Options{Workers: 1, QueueDepth: 1})
	defer srv.Close()
	defer gs.release()
	ts := newHTTPServer(t, srv)

	// Seed the latency window as if this server had been mining ~7s jobs.
	srv.queue.mu.Lock()
	for i := 0; i < 9; i++ {
		srv.queue.latSamples[i] = 7 * time.Second
	}
	srv.queue.latCount = 9
	srv.queue.mu.Unlock()

	if _, v := submit(t, ts, `{"dataset": "toy", "config": `+toyPatch+`}`); v.ID == "" {
		t.Fatal("gate job not accepted")
	}
	gs.waitEntered(t)
	if status, _ := submit(t, ts, `{"dataset": "toy", "config": {"gamma": 0.6, "epsilon": 0.3, "min_sup": [0.1, 0.1, 0.1]}}`); status != http.StatusAccepted {
		t.Fatalf("filler job status %d", status)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"dataset": "toy", "config": {"gamma": 0.6, "epsilon": 0.2, "min_sup": [0.1, 0.1, 0.1]}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("expected 503, got %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After %q, want \"7\" (median of seeded 7s jobs)", got)
	}
}
