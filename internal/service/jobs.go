package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/flipper-mining/flipper/internal/core"
)

// JobKind selects what a job computes.
type JobKind string

const (
	// JobMine runs core.Mine once.
	JobMine JobKind = "mine"
	// JobSweep runs core.EpsilonSweep over a list of ε values.
	JobSweep JobKind = "sweep"
)

// JobStatus is a job's lifecycle state.
type JobStatus string

const (
	StatusQueued  JobStatus = "queued"
	StatusRunning JobStatus = "running"
	StatusDone    JobStatus = "done"
	StatusFailed  JobStatus = "failed"
)

// ErrQueueFull is returned by Submit when the bounded queue cannot accept
// another job; HTTP maps it to 503.
var ErrQueueFull = errors.New("service: job queue full")

// Job is one unit of mining work. Fields are written by the queue under its
// lock; read snapshots through Queue.Snapshot or Job view methods.
type Job struct {
	ID       string
	Kind     JobKind
	Dataset  string
	Config   core.Config
	Epsilons []float64 // sweep only

	Status   JobStatus
	CacheHit bool
	Err      string
	Result   json.RawMessage // set when Status is done
	Stats    *core.StatsJSON // mine only, set when Status is done

	Created  time.Time
	Started  time.Time
	Finished time.Time

	key  string
	ds   *Dataset
	done chan struct{}
}

// JobView is the wire form of a job.
type JobView struct {
	ID        string          `json:"id"`
	Kind      JobKind         `json:"kind"`
	Dataset   string          `json:"dataset"`
	Config    core.Config     `json:"config"`
	Epsilons  []float64       `json:"epsilons,omitempty"`
	Status    JobStatus       `json:"status"`
	CacheHit  bool            `json:"cache_hit"`
	Error     string          `json:"error,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
	Created   time.Time       `json:"created"`
	Started   *time.Time      `json:"started,omitempty"`
	Finished  *time.Time      `json:"finished,omitempty"`
	ElapsedNS int64           `json:"elapsed_ns,omitempty"`
}

// VolatileWireKeys lists the service wire fields that legitimately change
// from run to run over identical inputs — generated job identifiers,
// submission/start/finish timestamps, and uptime/elapsed durations. The
// golden conformance harness (internal/golden) scrubs exactly these keys
// (plus core.VolatileStatsKeys) before comparing committed envelopes; a new
// timestamp or counter that varies run-to-run must be added here, or the
// fixtures will flap.
func VolatileWireKeys() []string {
	return []string{"id", "created", "started", "finished", "elapsed_ns", "uptime"}
}

// mineResult is the payload of a completed mine job (core.ResultJSON) and
// sweepResult the payload of a completed sweep job.
type sweepResult struct {
	Points []core.EpsilonPoint `json:"points"`
}

// Queue runs jobs on a bounded worker pool with a single-flight guarantee:
// while a job for some (dataset, kind, config) key is queued or running,
// identical submissions return that same job instead of enqueueing another
// mine. Completed results land in the Cache, so later identical submissions
// come back instantly as already-done jobs flagged CacheHit.
type Queue struct {
	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string        // job IDs in submission order
	inflight map[string]*Job // job key → queued-or-running job
	ch       chan *Job
	cache    *Cache
	wg       sync.WaitGroup
	closed   bool
	nextID   uint64
	workers  int
	history  int // max completed jobs retained; older ones are pruned

	minesRun  atomic.Int64
	sweepsRun atomic.Int64
}

// NewQueue starts workers goroutines consuming a queue of at most depth
// pending jobs, writing results through cache. At most history completed
// (done or failed) jobs are retained for polling; when the limit is
// exceeded the oldest completed jobs — and their result payloads — are
// dropped, keeping a long-running daemon's memory bounded. Queued and
// running jobs are never pruned.
func NewQueue(workers, depth, history int, cache *Cache) *Queue {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 1
	}
	if history < 1 {
		history = 1
	}
	q := &Queue{
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
		ch:       make(chan *Job, depth),
		cache:    cache,
		workers:  workers,
		history:  history,
	}
	for i := 0; i < workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q
}

// Close stops accepting submissions and waits for running jobs to drain.
func (q *Queue) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	close(q.ch)
	q.mu.Unlock()
	q.wg.Wait()
}

// jobKey is the cache/single-flight identity of a piece of work: dataset,
// kind, the canonical configuration key, and (for sweeps) the sorted ε list.
// A sweep overrides cfg.Epsilon at every point, so the base ε is normalized
// out of sweep keys — otherwise identical sweeps differing only in the
// irrelevant base ε would miss the cache.
func jobKey(dataset string, kind JobKind, cfg *core.Config, epsilons []float64) string {
	if kind == JobSweep {
		c := *cfg
		c.Epsilon = 0
		cfg = &c
	}
	var b strings.Builder
	b.WriteString(dataset)
	b.WriteByte('|')
	b.WriteString(string(kind))
	b.WriteByte('|')
	b.WriteString(cfg.CanonicalKey())
	if kind == JobSweep {
		sorted := append([]float64(nil), epsilons...)
		sort.Float64s(sorted)
		b.WriteString("|eps=")
		for i, e := range sorted {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.FormatFloat(e, 'g', -1, 64))
		}
	}
	return b.String()
}

// Submit enqueues work and returns its job. Three outcomes:
//
//   - cache hit: a fresh job already in StatusDone, flagged CacheHit, whose
//     Result bytes are identical to the first computation's;
//   - coalesced: an identical job is queued or running, and that same job
//     is returned (no new mine is triggered);
//   - enqueued: a new queued job, or ErrQueueFull when the bounded queue
//     has no room.
func (q *Queue) Submit(d *Dataset, kind JobKind, cfg core.Config, epsilons []float64) (*Job, error) {
	key := jobKey(d.Name, kind, &cfg, epsilons)
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, errors.New("service: queue closed")
	}
	if j, ok := q.inflight[key]; ok {
		return j, nil
	}
	now := time.Now()
	j := &Job{
		Kind:     kind,
		Dataset:  d.Name,
		Config:   cfg,
		Epsilons: epsilons,
		Created:  now,
		key:      key,
		ds:       d,
		done:     make(chan struct{}),
	}
	if cached, ok := q.cache.Get(key); ok {
		j.Status = StatusDone
		j.CacheHit = true
		j.Result = cached.Payload
		j.Started, j.Finished = now, now
		close(j.done)
		q.register(j)
		return j, nil
	}
	j.Status = StatusQueued
	select {
	case q.ch <- j:
	default:
		return nil, ErrQueueFull
	}
	q.inflight[key] = j
	q.register(j)
	return j, nil
}

// register assigns the next ID and indexes the job. Caller holds q.mu.
func (q *Queue) register(j *Job) {
	q.nextID++
	j.ID = fmt.Sprintf("job-%06d", q.nextID)
	q.jobs[j.ID] = j
	q.order = append(q.order, j.ID)
	q.pruneLocked()
}

// pruneLocked drops the oldest completed jobs while more than history of
// them are retained. Caller holds q.mu.
func (q *Queue) pruneLocked() {
	completed := 0
	for _, id := range q.order {
		if s := q.jobs[id].Status; s == StatusDone || s == StatusFailed {
			completed++
		}
	}
	for i := 0; completed > q.history && i < len(q.order); {
		id := q.order[i]
		if s := q.jobs[id].Status; s == StatusDone || s == StatusFailed {
			delete(q.jobs, id)
			q.order = append(q.order[:i], q.order[i+1:]...)
			completed--
			continue
		}
		i++
	}
}

func (q *Queue) worker() {
	defer q.wg.Done()
	for j := range q.ch {
		q.run(j)
	}
}

// run executes one job and finalizes it.
func (q *Queue) run(j *Job) {
	q.mu.Lock()
	j.Status = StatusRunning
	j.Started = time.Now()
	q.mu.Unlock()

	var (
		payload  []byte
		stats    *core.StatsJSON
		patterns int
		err      error
	)
	switch j.Kind {
	case JobMine:
		q.minesRun.Add(1)
		var res *core.Result
		res, err = j.ds.Engine().Mine(j.Config)
		if err == nil {
			rj := res.JSON(j.ds.Tree)
			stats = &rj.Stats
			patterns = rj.PatternCount
			payload, err = json.Marshal(rj)
		}
	case JobSweep:
		q.sweepsRun.Add(1)
		var points []core.EpsilonPoint
		points, err = j.ds.Engine().EpsilonSweep(j.Config, j.Epsilons)
		if err == nil {
			patterns = len(points)
			payload, err = json.Marshal(sweepResult{Points: points})
		}
	default:
		err = fmt.Errorf("service: unknown job kind %q", j.Kind)
	}

	q.mu.Lock()
	defer q.mu.Unlock()
	j.Finished = time.Now()
	if err != nil {
		j.Status = StatusFailed
		j.Err = err.Error()
	} else {
		j.Status = StatusDone
		j.Result = payload
		j.Stats = stats
		q.cache.Put(j.key, CachedResult{Payload: payload, Patterns: patterns})
	}
	delete(q.inflight, j.key)
	q.pruneLocked()
	close(j.done)
}

// Wait blocks until the job leaves the queue (done or failed), or the
// timeout elapses; it reports whether the job finished.
func (q *Queue) Wait(j *Job, timeout time.Duration) bool {
	select {
	case <-j.done:
		return true
	case <-time.After(timeout):
		return false
	}
}

// Get returns a job's current state as a wire view.
func (q *Queue) Get(id string) (JobView, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return q.viewLocked(j), true
}

// List returns every job in submission order, newest last, without result
// payloads (fetch an individual job for its result).
func (q *Queue) List() []JobView {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]JobView, 0, len(q.order))
	for _, id := range q.order {
		v := q.viewLocked(q.jobs[id])
		v.Result = nil
		out = append(out, v)
	}
	return out
}

// viewLocked snapshots a job. Caller holds q.mu.
func (q *Queue) viewLocked(j *Job) JobView {
	v := JobView{
		ID:       j.ID,
		Kind:     j.Kind,
		Dataset:  j.Dataset,
		Config:   j.Config,
		Epsilons: j.Epsilons,
		Status:   j.Status,
		CacheHit: j.CacheHit,
		Error:    j.Err,
		Result:   j.Result,
		Created:  j.Created,
	}
	if !j.Started.IsZero() {
		t := j.Started
		v.Started = &t
	}
	if !j.Finished.IsZero() {
		t := j.Finished
		v.Finished = &t
		v.ElapsedNS = j.Finished.Sub(j.Started).Nanoseconds()
	}
	return v
}

// QueueStats is the wire form of the queue counters.
type QueueStats struct {
	Workers   int   `json:"workers"`
	Depth     int   `json:"depth"`
	Capacity  int   `json:"capacity"`
	Queued    int   `json:"queued"`
	Running   int   `json:"running"`
	Done      int   `json:"done"`
	Failed    int   `json:"failed"`
	CacheHits int   `json:"cache_hits"`
	MinesRun  int64 `json:"mines_run"`
	SweepsRun int64 `json:"sweeps_run"`
}

// Stats snapshots the queue counters and per-status job tallies.
func (q *Queue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := QueueStats{
		Workers:   q.workers,
		Depth:     len(q.ch),
		Capacity:  cap(q.ch),
		MinesRun:  q.minesRun.Load(),
		SweepsRun: q.sweepsRun.Load(),
	}
	for _, j := range q.jobs {
		switch j.Status {
		case StatusQueued:
			s.Queued++
		case StatusRunning:
			s.Running++
		case StatusDone:
			s.Done++
		case StatusFailed:
			s.Failed++
		}
		if j.CacheHit {
			s.CacheHits++
		}
	}
	return s
}

// JobStat is the per-job line of the /v1/stats payload: identity plus the
// core run counters, without the (possibly large) pattern payload.
type JobStat struct {
	ID       string          `json:"id"`
	Kind     JobKind         `json:"kind"`
	Dataset  string          `json:"dataset"`
	Status   JobStatus       `json:"status"`
	CacheHit bool            `json:"cache_hit"`
	Stats    *core.StatsJSON `json:"stats,omitempty"`
}

// JobStats lists per-job core statistics in submission order.
func (q *Queue) JobStats() []JobStat {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]JobStat, 0, len(q.order))
	for _, id := range q.order {
		j := q.jobs[id]
		out = append(out, JobStat{
			ID:       j.ID,
			Kind:     j.Kind,
			Dataset:  j.Dataset,
			Status:   j.Status,
			CacheHit: j.CacheHit,
			Stats:    j.Stats,
		})
	}
	return out
}
