package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/flipper-mining/flipper/internal/core"
)

// JobKind selects what a job computes.
type JobKind string

const (
	// JobMine runs core.Mine once.
	JobMine JobKind = "mine"
	// JobSweep runs core.EpsilonSweep over a list of ε values.
	JobSweep JobKind = "sweep"
)

// JobStatus is a job's lifecycle state.
type JobStatus string

const (
	StatusQueued    JobStatus = "queued"
	StatusRunning   JobStatus = "running"
	StatusDone      JobStatus = "done"
	StatusFailed    JobStatus = "failed"
	StatusCancelled JobStatus = "cancelled"
)

// finished reports whether the status is terminal.
func (s JobStatus) finished() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// ErrQueueFull is returned by Submit when the bounded queue cannot accept
// another job; HTTP maps it to 503 with a Retry-After hint.
var ErrQueueFull = errors.New("service: job queue full")

// ErrUnknownJob is returned by Cancel for an ID the queue does not know.
var ErrUnknownJob = errors.New("service: unknown job")

// ErrJobFinished is returned by Cancel when the job already reached a
// terminal status; HTTP maps it to 409.
var ErrJobFinished = errors.New("service: job already finished")

// Job is one unit of mining work. Fields are written by the queue under its
// lock; read snapshots through Queue.Snapshot or Job view methods.
type Job struct {
	ID       string
	Kind     JobKind
	Dataset  string
	Config   core.Config
	Epsilons []float64 // sweep only

	Status   JobStatus
	CacheHit bool
	Err      string
	Result   json.RawMessage // set when Status is done
	Stats    *core.StatsJSON // mine only, set when Status is done

	Created  time.Time
	Started  time.Time
	Finished time.Time

	// Timeout bounds the job's running time (0 = unbounded); the clock
	// starts when the job leaves the queue, not at submission.
	Timeout time.Duration

	key             string
	ds              *Dataset
	done            chan struct{}
	cancel          context.CancelFunc // set while running
	cancelRequested bool
}

// JobView is the wire form of a job.
type JobView struct {
	ID        string          `json:"id"`
	Kind      JobKind         `json:"kind"`
	Dataset   string          `json:"dataset"`
	Config    core.Config     `json:"config"`
	Epsilons  []float64       `json:"epsilons,omitempty"`
	Status    JobStatus       `json:"status"`
	CacheHit  bool            `json:"cache_hit"`
	Error     string          `json:"error,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
	Created   time.Time       `json:"created"`
	Started   *time.Time      `json:"started,omitempty"`
	Finished  *time.Time      `json:"finished,omitempty"`
	ElapsedNS int64           `json:"elapsed_ns,omitempty"`
	TimeoutMS int64           `json:"timeout_ms,omitempty"`
}

// VolatileWireKeys lists the service wire fields that legitimately change
// from run to run over identical inputs — generated job identifiers,
// submission/start/finish timestamps, and uptime/elapsed durations. The
// golden conformance harness (internal/golden) scrubs exactly these keys
// (plus core.VolatileStatsKeys) before comparing committed envelopes; a new
// timestamp or counter that varies run-to-run must be added here, or the
// fixtures will flap.
func VolatileWireKeys() []string {
	return []string{"id", "created", "started", "finished", "elapsed_ns", "uptime"}
}

// mineResult is the payload of a completed mine job (core.ResultJSON) and
// sweepResult the payload of a completed sweep job.
type sweepResult struct {
	Points []core.EpsilonPoint `json:"points"`
}

// DistributedMiner is the queue's hook into a mining cluster, satisfied by
// cluster.Coordinator. The service stays decoupled from the cluster wiring:
// flipperd injects a coordinator through Options.Coordinator, and the queue
// routes a mine job through it only when Eligible says workers actually
// serve the dataset — a coordinator with no workers is just a single-node
// flipperd, not a degraded cluster.
type DistributedMiner interface {
	// Eligible reports whether at least one live worker serves the dataset.
	Eligible(dataset string) bool
	// Mine runs one distributed job; the result is byte-identical to a
	// local core.Mine (the cluster contract).
	Mine(ctx context.Context, dataset string, cfg core.Config) (*core.Result, error)
	// Reachable counts non-dead workers (the readiness signal).
	Reachable() int
}

// latWindow is how many recent job wall times feed the queue's adaptive
// Retry-After hint.
const latWindow = 64

// Queue runs jobs on a bounded worker pool with a single-flight guarantee:
// while a job for some (dataset, kind, config) key is queued or running,
// identical submissions return that same job instead of enqueueing another
// mine. Completed results land in the Cache, so later identical submissions
// come back instantly as already-done jobs flagged CacheHit.
type Queue struct {
	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string        // job IDs in submission order
	inflight map[string]*Job // job key → queued-or-running job
	ch       chan *Job
	cache    *Cache
	wg       sync.WaitGroup
	closed   bool
	nextID   uint64
	workers  int
	history  int // max completed jobs retained; older ones are pruned

	// coord, when set, mines eligible jobs over the cluster instead of the
	// local engine (set by NewServer from Options.Coordinator).
	coord DistributedMiner

	// latSamples is a ring of recent job wall times (queued→finished runs
	// that actually executed), the sample RetryAfterHint's median is
	// computed over. Guarded by mu.
	latSamples [latWindow]time.Duration
	latCount   int

	minesRun  atomic.Int64
	sweepsRun atomic.Int64
}

// NewQueue starts workers goroutines consuming a queue of at most depth
// pending jobs, writing results through cache. At most history completed
// (done or failed) jobs are retained for polling; when the limit is
// exceeded the oldest completed jobs — and their result payloads — are
// dropped, keeping a long-running daemon's memory bounded. Queued and
// running jobs are never pruned.
func NewQueue(workers, depth, history int, cache *Cache) *Queue {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 1
	}
	if history < 1 {
		history = 1
	}
	q := &Queue{
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
		ch:       make(chan *Job, depth),
		cache:    cache,
		workers:  workers,
		history:  history,
	}
	for i := 0; i < workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q
}

// Close stops accepting submissions and drains the queue: workers finish
// the jobs already queued or running before Close returns, so a graceful
// shutdown (flipperd under SIGTERM) never drops a result a client could
// still poll for.
func (q *Queue) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	close(q.ch)
	q.mu.Unlock()
	q.wg.Wait()
}

// jobKey is the cache/single-flight identity of a piece of work: dataset,
// kind, the canonical configuration key, and (for sweeps) the sorted ε list.
// A sweep overrides cfg.Epsilon at every point, so the base ε is normalized
// out of sweep keys — otherwise identical sweeps differing only in the
// irrelevant base ε would miss the cache.
func jobKey(dataset string, kind JobKind, cfg *core.Config, epsilons []float64) string {
	if kind == JobSweep {
		c := *cfg
		c.Epsilon = 0
		cfg = &c
	}
	var b strings.Builder
	b.WriteString(dataset)
	b.WriteByte('|')
	b.WriteString(string(kind))
	b.WriteByte('|')
	b.WriteString(cfg.CanonicalKey())
	if kind == JobSweep {
		sorted := append([]float64(nil), epsilons...)
		sort.Float64s(sorted)
		b.WriteString("|eps=")
		for i, e := range sorted {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.FormatFloat(e, 'g', -1, 64))
		}
	}
	return b.String()
}

// Submit enqueues work and returns its job. Three outcomes:
//
//   - cache hit: a fresh job already in StatusDone, flagged CacheHit, whose
//     Result bytes are identical to the first computation's;
//   - coalesced: an identical job is queued or running, and that same job
//     is returned (no new mine is triggered);
//   - enqueued: a new queued job, or ErrQueueFull when the bounded queue
//     has no room.
func (q *Queue) Submit(d *Dataset, kind JobKind, cfg core.Config, epsilons []float64) (*Job, error) {
	return q.SubmitTimeout(d, kind, cfg, epsilons, 0)
}

// SubmitTimeout is Submit with a per-job deadline: once the job starts
// running, its work is cancelled after timeout (0 = unbounded) and the job
// finishes in StatusCancelled. A submission coalesced onto an inflight job
// inherits that job's deadline — the timeout is an execution bound, not
// part of the work's identity, so it does not split single-flight or the
// cache.
func (q *Queue) SubmitTimeout(d *Dataset, kind JobKind, cfg core.Config, epsilons []float64, timeout time.Duration) (*Job, error) {
	key := jobKey(d.Name, kind, &cfg, epsilons)
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, errors.New("service: queue closed")
	}
	if j, ok := q.inflight[key]; ok {
		return j, nil
	}
	now := time.Now()
	j := &Job{
		Kind:     kind,
		Dataset:  d.Name,
		Config:   cfg,
		Epsilons: epsilons,
		Created:  now,
		Timeout:  timeout,
		key:      key,
		ds:       d,
		done:     make(chan struct{}),
	}
	if cached, ok := q.cache.Get(key); ok {
		j.Status = StatusDone
		j.CacheHit = true
		j.Result = cached.Payload
		j.Started, j.Finished = now, now
		close(j.done)
		q.register(j)
		return j, nil
	}
	j.Status = StatusQueued
	select {
	case q.ch <- j:
	default:
		return nil, ErrQueueFull
	}
	q.inflight[key] = j
	q.register(j)
	return j, nil
}

// register assigns the next ID and indexes the job. Caller holds q.mu.
func (q *Queue) register(j *Job) {
	q.nextID++
	j.ID = fmt.Sprintf("job-%06d", q.nextID)
	q.jobs[j.ID] = j
	q.order = append(q.order, j.ID)
	q.pruneLocked()
}

// pruneLocked drops the oldest completed jobs while more than history of
// them are retained. Caller holds q.mu.
func (q *Queue) pruneLocked() {
	completed := 0
	for _, id := range q.order {
		if q.jobs[id].Status.finished() {
			completed++
		}
	}
	for i := 0; completed > q.history && i < len(q.order); {
		id := q.order[i]
		if q.jobs[id].Status.finished() {
			delete(q.jobs, id)
			q.order = append(q.order[:i], q.order[i+1:]...)
			completed--
			continue
		}
		i++
	}
}

func (q *Queue) worker() {
	defer q.wg.Done()
	for j := range q.ch {
		q.run(j)
	}
}

// run executes one job and finalizes it. The job's work runs under a
// context that Cancel and the job's Timeout can end, and under a panic
// guard: a panicking mine fails its own job (stack in Err) instead of
// killing the worker — and with it the daemon's capacity.
func (q *Queue) run(j *Job) {
	q.mu.Lock()
	if j.Status != StatusQueued {
		// Cancelled while queued: Cancel already finalized it.
		q.mu.Unlock()
		return
	}
	var (
		ctx    context.Context
		cancel context.CancelFunc
	)
	if j.Timeout > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), j.Timeout)
	} else {
		ctx, cancel = context.WithCancel(context.Background())
	}
	j.cancel = cancel
	j.Status = StatusRunning
	j.Started = time.Now()
	q.mu.Unlock()
	defer cancel()

	payload, stats, patterns, err := q.execute(ctx, j)

	q.mu.Lock()
	defer q.mu.Unlock()
	j.Finished = time.Now()
	j.cancel = nil
	// Every executed run occupied a worker for its wall time, whatever its
	// outcome — exactly the signal the queue-full Retry-After hint needs.
	q.latSamples[q.latCount%latWindow] = j.Finished.Sub(j.Started)
	q.latCount++
	switch {
	case err == nil:
		j.Status = StatusDone
		j.Result = payload
		j.Stats = stats
		// Only clean completions are cached: a cancelled or failed run has
		// no payload worth replaying to later submissions. Degraded
		// distributed runs are correct but also skip the cache — once the
		// cluster heals, a resubmission should re-mine at full capacity
		// rather than replay the envelope that advertises degradation.
		if stats == nil || !stats.Degraded {
			q.cache.Put(j.key, CachedResult{Payload: payload, Patterns: patterns})
		}
	case errors.Is(err, context.DeadlineExceeded):
		j.Status = StatusCancelled
		j.Err = fmt.Sprintf("job timeout (%s) exceeded", j.Timeout)
	case errors.Is(err, context.Canceled):
		j.Status = StatusCancelled
		j.Err = "cancelled"
	default:
		j.Status = StatusFailed
		j.Err = err.Error()
	}
	delete(q.inflight, j.key)
	q.pruneLocked()
	close(j.done)
}

// execute performs the job's work under ctx, converting a panic anywhere
// in the mining stack into an ordinary error carrying the stack trace.
func (q *Queue) execute(ctx context.Context, j *Job) (payload []byte, stats *core.StatsJSON, patterns int, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("service: job panicked: %v\n%s", r, debug.Stack())
		}
	}()
	switch j.Kind {
	case JobMine:
		q.minesRun.Add(1)
		var res *core.Result
		if q.coord != nil && q.coord.Eligible(j.Dataset) {
			// Workers serve this dataset: scatter the counting over the
			// cluster. The result is byte-identical to a local mine, so
			// caching and golden envelopes are unaffected by the routing.
			res, err = q.coord.Mine(ctx, j.Dataset, j.Config)
		} else {
			res, err = j.ds.Engine().MineContext(ctx, j.Config)
		}
		if err == nil {
			rj := res.JSON(j.ds.Tree)
			stats = &rj.Stats
			patterns = rj.PatternCount
			payload, err = json.Marshal(rj)
		}
	case JobSweep:
		q.sweepsRun.Add(1)
		var points []core.EpsilonPoint
		points, err = j.ds.Engine().EpsilonSweepContext(ctx, j.Config, j.Epsilons)
		if err == nil {
			patterns = len(points)
			payload, err = json.Marshal(sweepResult{Points: points})
		}
	default:
		err = fmt.Errorf("service: unknown job kind %q", j.Kind)
	}
	return payload, stats, patterns, err
}

// Cancel requests cancellation of a job. A queued job is finalized
// immediately (it never runs); a running job has its context cancelled and
// finishes in StatusCancelled as soon as the miner observes it — within
// one checkpoint interval. Terminal jobs return ErrJobFinished, unknown
// IDs ErrUnknownJob. The returned view reflects the job after the call.
func (q *Queue) Cancel(id string) (JobView, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return JobView{}, ErrUnknownJob
	}
	switch j.Status {
	case StatusQueued:
		j.cancelRequested = true
		j.Status = StatusCancelled
		j.Err = "cancelled"
		j.Finished = time.Now()
		delete(q.inflight, j.key)
		q.pruneLocked()
		close(j.done)
	case StatusRunning:
		if !j.cancelRequested {
			j.cancelRequested = true
			j.cancel()
		}
	default:
		return q.viewLocked(j), ErrJobFinished
	}
	return q.viewLocked(j), nil
}

// Wait blocks until the job reaches a terminal status or the timeout
// elapses; it reports whether the job finished. The timer is stopped on
// the fast path, so high-rate synchronous waits don't accumulate pending
// timers the way time.After would.
func (q *Queue) Wait(j *Job, timeout time.Duration) bool {
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-j.done:
		return true
	case <-t.C:
		return false
	}
}

// Get returns a job's current state as a wire view.
func (q *Queue) Get(id string) (JobView, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return q.viewLocked(j), true
}

// List returns every job in submission order, newest last, without result
// payloads (fetch an individual job for its result).
func (q *Queue) List() []JobView {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]JobView, 0, len(q.order))
	for _, id := range q.order {
		v := q.viewLocked(q.jobs[id])
		v.Result = nil
		out = append(out, v)
	}
	return out
}

// viewLocked snapshots a job. Caller holds q.mu.
func (q *Queue) viewLocked(j *Job) JobView {
	v := JobView{
		ID:       j.ID,
		Kind:     j.Kind,
		Dataset:  j.Dataset,
		Config:   j.Config,
		Epsilons: j.Epsilons,
		Status:   j.Status,
		CacheHit: j.CacheHit,
		Error:    j.Err,
		Result:   j.Result,
		Created:  j.Created,
	}
	if j.Timeout > 0 {
		v.TimeoutMS = j.Timeout.Milliseconds()
	}
	if !j.Started.IsZero() {
		t := j.Started
		v.Started = &t
	}
	if !j.Finished.IsZero() {
		t := j.Finished
		v.Finished = &t
		// A job cancelled while still queued finished without ever
		// starting; it has no elapsed time.
		if !j.Started.IsZero() {
			v.ElapsedNS = j.Finished.Sub(j.Started).Nanoseconds()
		}
	}
	return v
}

// RetryAfterHint is the queue-full backoff hint, in whole seconds as a
// Retry-After header value: the median of recent job wall times, rounded
// up and clamped to [1s, 30s]. A server mining minute-long jobs tells
// load-shed clients to come back in 30s, not hot-loop at 1s; a fresh
// server with no history answers the conservative "1".
func (q *Queue) RetryAfterHint() string {
	q.mu.Lock()
	n := q.latCount
	if n > latWindow {
		n = latWindow
	}
	buf := make([]time.Duration, n)
	copy(buf, q.latSamples[:n])
	q.mu.Unlock()
	if n == 0 {
		return "1"
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	med := buf[n/2]
	secs := int64((med + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return strconv.FormatInt(secs, 10)
}

// QueueStats is the wire form of the queue counters.
type QueueStats struct {
	Workers   int   `json:"workers"`
	Depth     int   `json:"depth"`
	Capacity  int   `json:"capacity"`
	Queued    int   `json:"queued"`
	Running   int   `json:"running"`
	Done      int   `json:"done"`
	Failed    int   `json:"failed"`
	Cancelled int   `json:"cancelled"`
	CacheHits int   `json:"cache_hits"`
	MinesRun  int64 `json:"mines_run"`
	SweepsRun int64 `json:"sweeps_run"`
}

// Stats snapshots the queue counters and per-status job tallies.
func (q *Queue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := QueueStats{
		Workers:   q.workers,
		Depth:     len(q.ch),
		Capacity:  cap(q.ch),
		MinesRun:  q.minesRun.Load(),
		SweepsRun: q.sweepsRun.Load(),
	}
	for _, j := range q.jobs {
		switch j.Status {
		case StatusQueued:
			s.Queued++
		case StatusRunning:
			s.Running++
		case StatusDone:
			s.Done++
		case StatusFailed:
			s.Failed++
		case StatusCancelled:
			s.Cancelled++
		}
		if j.CacheHit {
			s.CacheHits++
		}
	}
	return s
}

// JobStat is the per-job line of the /v1/stats payload: identity plus the
// core run counters, without the (possibly large) pattern payload.
type JobStat struct {
	ID       string          `json:"id"`
	Kind     JobKind         `json:"kind"`
	Dataset  string          `json:"dataset"`
	Status   JobStatus       `json:"status"`
	CacheHit bool            `json:"cache_hit"`
	Stats    *core.StatsJSON `json:"stats,omitempty"`
}

// JobStats lists per-job core statistics in submission order.
func (q *Queue) JobStats() []JobStat {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]JobStat, 0, len(q.order))
	for _, id := range q.order {
		j := q.jobs[id]
		out = append(out, JobStat{
			ID:       j.ID,
			Kind:     j.Kind,
			Dataset:  j.Dataset,
			Status:   j.Status,
			CacheHit: j.CacheHit,
			Stats:    j.Stats,
		})
	}
	return out
}
