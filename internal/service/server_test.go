package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/flipper-mining/flipper/internal/datasets"
)

// toyPatch is the paper-toy threshold overlay (Figure 4: γ=0.6, ε=0.35).
const toyPatch = `{"gamma": 0.6, "epsilon": 0.35, "min_sup": [0.1, 0.1, 0.1]}`

// newTestServer serves the paper's Figure-4 toy dataset.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	toy := datasets.PaperToy()
	reg := NewRegistry()
	if err := reg.AddMemory("toy", toy.DB, toy.Tree); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reg, opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func submit(t *testing.T, ts *httptest.Server, body string) (int, JobView) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("decode job: %v", err)
		}
	}
	return resp.StatusCode, v
}

// pollDone polls GET /v1/jobs/{id} over HTTP until the job leaves the queue.
func pollDone(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v JobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode job: %v", err)
		}
		if v.Status == StatusDone || v.Status == StatusFailed {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobView{}
}

func TestSubmitPollResult(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	status, v := submit(t, ts, `{"dataset": "toy", "config": `+toyPatch+`}`)
	if status != http.StatusAccepted && status != http.StatusOK {
		t.Fatalf("submit status = %d", status)
	}
	if v.ID == "" || v.Dataset != "toy" || v.Kind != JobMine {
		t.Fatalf("job view = %+v", v)
	}
	done := pollDone(t, ts, v.ID)
	if done.Status != StatusDone {
		t.Fatalf("job failed: %s", done.Error)
	}
	var res struct {
		PatternCount int `json:"pattern_count"`
		Patterns     []struct {
			Leaf []string `json:"leaf"`
		} `json:"patterns"`
		Stats struct {
			Transactions int   `json:"transactions"`
			DBScans      int64 `json:"db_scans"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatalf("result not JSON: %v", err)
	}
	if res.PatternCount != 1 || len(res.Patterns) != 1 {
		t.Fatalf("pattern_count = %d, want the toy's single flip", res.PatternCount)
	}
	if got := fmt.Sprint(res.Patterns[0].Leaf); got != "[a11 b11]" {
		t.Errorf("leaf = %s, want [a11 b11]", got)
	}
	if res.Stats.Transactions != 10 || res.Stats.DBScans == 0 {
		t.Errorf("stats = %+v", res.Stats)
	}
}

func TestCacheHitIsByteIdentical(t *testing.T) {
	srv, ts := newTestServer(t, Options{})
	body := `{"dataset": "toy", "config": ` + toyPatch + `}`
	_, first := submit(t, ts, body)
	firstDone := pollDone(t, ts, first.ID)

	status, second := submit(t, ts, body)
	if status != http.StatusOK {
		t.Fatalf("second submit status = %d, want 200 (cache hit)", status)
	}
	if !second.CacheHit || second.Status != StatusDone {
		t.Fatalf("second job = %+v, want done cache hit", second)
	}
	if second.ID == first.ID {
		t.Fatalf("cache hit reused job id %s", first.ID)
	}
	if !bytes.Equal(firstDone.Result, second.Result) {
		t.Errorf("cache hit result differs:\n%s\nvs\n%s", firstDone.Result, second.Result)
	}
	cs := srv.Cache().Stats()
	if cs.Hits != 1 || cs.Misses != 1 {
		t.Errorf("cache stats = %+v, want 1 hit / 1 miss", cs)
	}
}

func TestCacheKeyIgnoresFieldOrderAndExecutionKnobs(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	// Same configuration three ways: permuted JSON fields, and changed
	// execution knobs (parallelism, cell stats) that don't affect output.
	bodies := []string{
		`{"dataset": "toy", "config": {"gamma": 0.6, "epsilon": 0.35, "min_sup": [0.1, 0.1, 0.1]}}`,
		`{"dataset": "toy", "config": {"min_sup": [0.1, 0.1, 0.1], "epsilon": 0.35, "gamma": 0.6}}`,
		`{"dataset": "toy", "config": {"epsilon": 0.35, "parallelism": 3, "gamma": 0.6, "min_sup": [0.1, 0.1, 0.1]}}`,
	}
	_, first := submit(t, ts, bodies[0])
	pollDone(t, ts, first.ID)
	for _, body := range bodies[1:] {
		status, v := submit(t, ts, body)
		if status != http.StatusOK || !v.CacheHit {
			t.Errorf("body %s: status %d cacheHit=%v, want a cache hit", body, status, v.CacheHit)
		}
	}
	// A semantically different config must miss.
	status, v := submit(t, ts, `{"dataset": "toy", "config": {"gamma": 0.6, "epsilon": 0.2, "min_sup": [0.1, 0.1, 0.1]}}`)
	if status == http.StatusOK && v.CacheHit {
		t.Error("different epsilon unexpectedly hit the cache")
	}
}

// TestStrategyIsASemanticCacheField exercises the counting strategies over
// the wire: every JSON name is accepted, each strategy keys its own cache
// slot (CanonicalKey covers Strategy), and all strategies mine the toy's
// single flipping pattern.
func TestStrategyIsASemanticCacheField(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, strategy := range []string{"scan", "tidlist", "bitmap", "auto"} {
		body := `{"dataset": "toy", "config": {"gamma": 0.6, "epsilon": 0.35, "min_sup": [0.1, 0.1, 0.1], "strategy": "` + strategy + `"}}`
		status, v := submit(t, ts, body)
		if status == http.StatusOK && v.CacheHit {
			t.Fatalf("strategy %q hit the cache of a different strategy", strategy)
		}
		done := pollDone(t, ts, v.ID)
		var res struct {
			PatternCount int `json:"pattern_count"`
		}
		if err := json.Unmarshal(done.Result, &res); err != nil {
			t.Fatalf("strategy %q: result not JSON: %v", strategy, err)
		}
		if res.PatternCount != 1 {
			t.Fatalf("strategy %q found %d patterns, want 1", strategy, res.PatternCount)
		}
		// Re-submitting the same strategy is a hit.
		status, v = submit(t, ts, body)
		if status != http.StatusOK || !v.CacheHit {
			t.Errorf("strategy %q resubmit: status %d cacheHit=%v, want a cache hit", strategy, status, v.CacheHit)
		}
	}
}

func TestSweepJob(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body := `{"dataset": "toy", "kind": "sweep", "epsilons": [0.1, 0.35, 0.2], "config": ` + toyPatch + `}`
	status, v := submit(t, ts, body)
	if status != http.StatusAccepted {
		t.Fatalf("sweep submit status = %d", status)
	}
	done := pollDone(t, ts, v.ID)
	if done.Status != StatusDone {
		t.Fatalf("sweep failed: %s", done.Error)
	}
	var res struct {
		Points []struct {
			Epsilon  float64 `json:"epsilon"`
			Patterns int     `json:"patterns"`
		} `json:"points"`
	}
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 || res.Points[0].Epsilon != 0.35 {
		t.Fatalf("sweep points = %+v, want 3 points descending from 0.35", res.Points)
	}
	if res.Points[0].Patterns < 1 {
		t.Errorf("loosest ε found no patterns: %+v", res.Points)
	}

	// The same sweep with the ε list permuted is the same work: cache hit.
	status, v = submit(t, ts, `{"dataset": "toy", "kind": "sweep", "epsilons": [0.35, 0.2, 0.1], "config": `+toyPatch+`}`)
	if status != http.StatusOK || !v.CacheHit {
		t.Errorf("permuted sweep: status %d cacheHit=%v, want a cache hit", status, v.CacheHit)
	}
}

func TestSubmitErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		body string
		want int
	}{
		{`{"dataset": "nope"}`, http.StatusNotFound},
		{`{"dataset": "toy", "kind": "bogus"}`, http.StatusBadRequest},
		{`{"dataset": "toy", "config": {"gamma": 0.2, "epsilon": 0.5}}`, http.StatusBadRequest}, // ε ≥ γ
		{`{"dataset": "toy", "config": {"min_sup": [0.1]}}`, http.StatusBadRequest},             // wrong level count
		{`{"dataset": "toy", "kind": "sweep"}`, http.StatusBadRequest},                          // no epsilons
		{`{"dataset": "toy", "kind": "sweep", "epsilons": [0.9]}`, http.StatusBadRequest},       // ε ≥ γ
		{`{"dataset": "toy", "epsilons": [0.1, 0.2]}`, http.StatusBadRequest},                   // epsilons on a mine
		{`{"dataset": "toy", "config": {"measure": "lift"}}`, http.StatusBadRequest},            // unknown measure
		{`{"dataset": "toy", "unknown_field": 1}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		status, _ := submit(t, ts, tc.body)
		if status != tc.want {
			t.Errorf("body %s: status = %d, want %d", tc.body, status, tc.want)
		}
	}
}

func TestDatasetsHealthzStats(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	resp, err := http.Get(ts.URL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	var dl struct {
		Datasets []Info `json:"datasets"`
	}
	err = json.NewDecoder(resp.Body).Decode(&dl)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(dl.Datasets) != 1 || dl.Datasets[0].Name != "toy" ||
		dl.Datasets[0].Transactions != 10 || dl.Datasets[0].Height != 3 {
		t.Fatalf("datasets = %+v", dl.Datasets)
	}

	resp, err = http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz map[string]string
	err = json.NewDecoder(resp.Body).Decode(&hz)
	resp.Body.Close()
	if err != nil || hz["status"] != "ok" {
		t.Fatalf("healthz = %v (err %v)", hz, err)
	}

	// Run one job, then check it shows up in /v1/stats with core counters.
	_, v := submit(t, ts, `{"dataset": "toy", "config": `+toyPatch+`}`)
	pollDone(t, ts, v.ID)
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsBody
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Datasets != 1 || st.Queue.MinesRun != 1 || st.Queue.Done != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if len(st.Jobs) != 1 || st.Jobs[0].Stats == nil || st.Jobs[0].Stats.CandidatesCounted == 0 {
		t.Fatalf("per-job stats missing: %+v", st.Jobs)
	}
	if st.Cache.Misses != 1 {
		t.Errorf("cache stats = %+v, want 1 miss", st.Cache)
	}
}

func TestJobNotFoundAndList(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d", resp.StatusCode)
	}

	_, v := submit(t, ts, `{"dataset": "toy", "config": `+toyPatch+`}`)
	pollDone(t, ts, v.ID)
	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var jl struct {
		Jobs []JobView `json:"jobs"`
	}
	err = json.NewDecoder(resp.Body).Decode(&jl)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(jl.Jobs) != 1 || jl.Jobs[0].ID != v.ID || jl.Jobs[0].Result != nil {
		t.Errorf("job list = %+v, want one payload-free entry", jl.Jobs)
	}
}
