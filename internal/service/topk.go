package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"
)

// GET/POST /v1/topk — the anchored top-K discovery endpoint. A topk query
// is a mine job whose configuration carries an anchor: it rides the same
// queue, so it coalesces with identical in-flight queries (single-flight),
// hits the LRU result cache under core.Config.CanonicalKey, and is
// cluster-eligible like any other mine. The handler waits synchronously up
// to the job's deadline and answers 200 with the finished job; a query
// that outlives its deadline answers 202 with a Location header so the
// client can poll /v1/jobs/{id} like any async submission.

// TopKRequest is the POST /v1/topk body; the GET form carries the same
// fields as query parameters (dataset, anchor, k, mode, sketch_k).
type TopKRequest struct {
	// Dataset names a registered dataset (required).
	Dataset string `json:"dataset"`
	// Anchor names the taxonomy item every returned chain must pass
	// through (required).
	Anchor string `json:"anchor"`
	// K is how many patterns to return, ranked by descending flip gap
	// (required, ≥ 1).
	K int `json:"k"`
	// Mode is "" or "guaranteed" for the exact contract, "best_effort" for
	// sketch-estimated pruning with per-pattern confidence.
	Mode string `json:"mode,omitempty"`
	// SketchK overrides the per-item signature size (0: the default).
	SketchK int `json:"sketch_k,omitempty"`
	// Config overlays the dataset's default configuration, like a job
	// submission (POST form only).
	Config *ConfigPatch `json:"config,omitempty"`
	// TimeoutMS bounds the query like SubmitRequest.TimeoutMS.
	TimeoutMS *int64 `json:"timeout_ms,omitempty"`
}

// parseTopKRequest decodes the GET query form or the POST JSON body.
func parseTopKRequest(r *http.Request) (TopKRequest, error) {
	var req TopKRequest
	if r.Method == http.MethodGet {
		q := r.URL.Query()
		req.Dataset = q.Get("dataset")
		req.Anchor = q.Get("anchor")
		if v := q.Get("k"); v != "" {
			k, err := strconv.Atoi(v)
			if err != nil {
				return req, errors.New("k must be an integer")
			}
			req.K = k
		}
		req.Mode = q.Get("mode")
		if v := q.Get("sketch_k"); v != "" {
			sk, err := strconv.Atoi(v)
			if err != nil {
				return req, errors.New("sketch_k must be an integer")
			}
			req.SketchK = sk
		}
		return req, nil
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, err
	}
	return req, nil
}

// handleTopK serves anchored top-K queries. Responses: 200 with the
// finished job (patterns ranked by gap), 202 when the query is still
// running at its deadline, 400 on invalid parameters, 404 for unknown
// datasets or anchors, 503 when the queue is full.
func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	req, err := parseTopKRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad topk request: %v", err)
		return
	}
	d, ok := s.reg.Get(req.Dataset)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q", req.Dataset)
		return
	}
	if req.Anchor == "" {
		writeError(w, http.StatusBadRequest, "topk queries need an anchor")
		return
	}
	if req.K < 1 {
		writeError(w, http.StatusBadRequest, "topk queries need k ≥ 1, got %d", req.K)
		return
	}
	// Resolve the anchor up front so a typo is a 404 here, not a failed job
	// the client has to dig the error out of.
	if id, known := d.Tree.Dict().Lookup(req.Anchor); !known || !d.Tree.Contains(id) {
		writeError(w, http.StatusNotFound, "unknown anchor %q in dataset %q", req.Anchor, req.Dataset)
		return
	}
	cfg := req.Config.Apply(d.DefaultConfig())
	cfg.TopK = 0 // anchored ranking replaces the global top-K knob
	cfg.Anchor = req.Anchor
	cfg.AnchorTopK = req.K
	cfg.AnchorMode = req.Mode
	cfg.SketchK = req.SketchK
	if err := cfg.Validate(d.Tree.Height(), d.Src.Len()); err != nil {
		writeError(w, http.StatusBadRequest, "invalid config: %v", err)
		return
	}
	timeout := s.opts.JobTimeout
	if req.TimeoutMS != nil {
		if *req.TimeoutMS < 0 {
			writeError(w, http.StatusBadRequest, "timeout_ms must be ≥ 0")
			return
		}
		if *req.TimeoutMS > 0 {
			timeout = time.Duration(*req.TimeoutMS) * time.Millisecond
		}
	}
	if timeout <= 0 || timeout > s.opts.MaxJobTimeout {
		timeout = s.opts.MaxJobTimeout
	}
	j, err := s.queue.SubmitTimeout(d, JobMine, cfg, nil, timeout)
	if errors.Is(err, ErrQueueFull) {
		w.Header().Set("Retry-After", s.queue.RetryAfterHint())
		writeError(w, http.StatusServiceUnavailable, "%v: retry after a short backoff, or raise -queue-depth", err)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.queue.Wait(j, timeout)
	v, _ := s.queue.Get(j.ID)
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	if v.Status != StatusDone && v.Status != StatusFailed {
		writeJSON(w, http.StatusAccepted, v)
		return
	}
	writeJSON(w, http.StatusOK, v)
}
