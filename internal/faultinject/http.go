package faultinject

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// HTTPPlan schedules an HTTPTransport. As with Plan, triggers are
// probabilistic with expected period N, drawn from a rand.Rand seeded with
// Seed; the same seed over the same single-goroutine request sequence
// replays the same fault schedule. Concurrent requests interleave draws and
// trade exact replayability for coverage — which is what the chaos suite
// wants: a different but bounded fault mix per run, byte-identical mining
// output regardless.
type HTTPPlan struct {
	Seed int64
	// DropEveryN drops ~1/N requests: the request never reaches the
	// handler and the client sees a transport error (connection-reset
	// analogue). 0 disables.
	DropEveryN int
	// Error5xxEveryN short-circuits ~1/N requests with a synthetic 503
	// (overload-burst analogue). 0 disables.
	Error5xxEveryN int
	// TruncateEveryN serves ~1/N responses with the body cut off mid-JSON
	// (partial-body analogue); the client sees a decode error. 0 disables.
	TruncateEveryN int
	// StallEveryN delays ~1/N requests by Delay before forwarding
	// (straggler analogue — the trigger the hedging path exists for).
	// 0 disables.
	StallEveryN int
	Delay       time.Duration
	// MaxFaults caps injected drops, 5xxs and truncations combined (stalls
	// are delays, not faults, and don't count); 0 means unlimited. With a
	// finite cap, bounded-retry dispatch is guaranteed to eventually get
	// clean responses — the invariant the equivalence suite leans on.
	MaxFaults int
}

// HTTPTransport is an http.RoundTripper injecting the plan's faults in
// front of a base transport. Fault state is shared across every request
// through the transport, mirroring Injector. Safe for concurrent use.
type HTTPTransport struct {
	Base http.RoundTripper

	mu       sync.Mutex
	plan     HTTPPlan
	rng      *rand.Rand
	requests int
	faults   int
}

// NewHTTPTransport wraps base (nil = http.DefaultTransport) with the
// plan's fault schedule.
func NewHTTPTransport(base http.RoundTripper, plan HTTPPlan) *HTTPTransport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &HTTPTransport{Base: base, plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// Stats reports how many requests the transport has seen and how many
// faults it has injected.
func (t *HTTPTransport) Stats() (requests, faults int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.requests, t.faults
}

// RoundTrip implements http.RoundTripper.
func (t *HTTPTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	t.requests++
	n := t.requests
	plan := t.plan
	budget := plan.MaxFaults == 0 || t.faults < plan.MaxFaults
	drop := budget && plan.DropEveryN > 0 && t.rng.Intn(plan.DropEveryN) == 0
	if drop {
		t.faults++
	}
	var err5xx, truncate bool
	if !drop {
		budget = plan.MaxFaults == 0 || t.faults < plan.MaxFaults
		err5xx = budget && plan.Error5xxEveryN > 0 && t.rng.Intn(plan.Error5xxEveryN) == 0
		if err5xx {
			t.faults++
		}
	}
	if !drop && !err5xx {
		budget = plan.MaxFaults == 0 || t.faults < plan.MaxFaults
		truncate = budget && plan.TruncateEveryN > 0 && t.rng.Intn(plan.TruncateEveryN) == 0
		if truncate {
			t.faults++
		}
	}
	stall := plan.StallEveryN > 0 && t.rng.Intn(plan.StallEveryN) == 0
	t.mu.Unlock()

	if stall && plan.Delay > 0 {
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(plan.Delay):
		}
	}
	if drop {
		// Drop before forwarding: the handler never runs, like a connection
		// that dies in flight on the way in.
		return nil, &TransientError{Read: n}
	}
	if err5xx {
		return &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  http.Header{"Content-Type": []string{"application/json"}},
			Body:    io.NopCloser(bytes.NewReader([]byte(`{"error":"injected 503 burst"}`))),
			Request: req,
		}, nil
	}
	resp, err := t.Base.RoundTrip(req)
	if err != nil || resp == nil {
		return resp, err
	}
	if truncate {
		body, readErr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if readErr != nil {
			return nil, readErr
		}
		cut := len(body) / 2
		resp.Body = io.NopCloser(io.MultiReader(
			bytes.NewReader(body[:cut]),
			&errReader{err: fmt.Errorf("faultinject: injected truncated body on request %d", n)},
		))
		resp.ContentLength = -1
	}
	return resp, err
}

// errReader fails the first Read — the tail of a truncated response body.
type errReader struct{ err error }

func (r *errReader) Read([]byte) (int, error) { return 0, r.err }
