// Package faultinject provides deterministic, seed-scheduled I/O fault
// injection for hardening tests of the mining pipeline. It produces two
// kinds of trouble:
//
//   - Injector wraps raw readers (the txdb.FileSource reader-wrapper hook)
//     with a seeded schedule of transient read errors, short reads and slow
//     reads, placed *underneath* txdb's retry layer — the substrate of the
//     equivalence tests proving that mining over a faulty out-of-core
//     source is byte-identical to the fault-free run.
//
//   - Source wraps any txdb.Source and fails the scan at the Nth
//     transaction with a caller-chosen (by default non-retryable) error —
//     for exercising mine-failure paths end to end through the service.
//
// Injector state is shared across every reader it wraps and persists
// across file reopens, so the fault schedule continues where it left off
// instead of restarting — a retry can therefore hit a second fault, which
// is exactly the case bounded-retry code must survive.
package faultinject

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"github.com/flipper-mining/flipper/internal/dict"
	"github.com/flipper-mining/flipper/internal/itemset"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// TransientError is the injected read failure. It implements
// Transient() bool, which txdb.IsTransient recognizes, so the retry layer
// recovers from it; wrap it in a different type to simulate a hard fault.
type TransientError struct {
	Read int // ordinal of the faulted read, 1-based
}

func (e *TransientError) Error() string {
	return fmt.Sprintf("faultinject: injected transient error on read %d", e.Read)
}

// Transient marks the error retryable for txdb.IsTransient.
func (e *TransientError) Transient() bool { return true }

// Plan schedules an Injector. All triggers are probabilistic with expected
// period N, drawn from a rand.Rand seeded with Seed — the same seed over
// the same single-goroutine read sequence replays the same fault schedule.
type Plan struct {
	Seed       int64
	FailEveryN int           // expected reads per injected transient error; 0 disables
	MaxFaults  int           // cap on injected errors; 0 means unlimited
	ShortReads bool          // truncate ~half the reads to a random prefix
	SlowEveryN int           // expected reads per injected Delay sleep; 0 disables
	Delay      time.Duration // sleep applied on slow reads
}

// Injector carries a Plan's schedule across readers and reopens. Safe for
// concurrent use (a mutex guards the schedule), though concurrent readers
// interleave draws and so trade away exact replayability — use one
// Injector per shard when determinism matters.
type Injector struct {
	mu     sync.Mutex
	plan   Plan
	rng    *rand.Rand
	reads  int
	faults int
}

// New builds an Injector for the plan.
func New(plan Plan) *Injector {
	return &Injector{plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// Reader wraps r with the injector's schedule. Passes the wrapper test for
// txdb.ReaderWrapper, so it plugs straight into FileSource.SetReaderWrapper.
func (in *Injector) Reader(r io.Reader) io.Reader {
	return &faultReader{in: in, r: r}
}

// Stats reports how many reads the injector has seen and how many faults
// it has injected.
func (in *Injector) Stats() (reads, faults int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.reads, in.faults
}

type faultReader struct {
	in *Injector
	r  io.Reader
}

func (fr *faultReader) Read(p []byte) (int, error) {
	in := fr.in
	in.mu.Lock()
	in.reads++
	read := in.reads
	plan := in.plan
	fail := plan.FailEveryN > 0 &&
		(plan.MaxFaults == 0 || in.faults < plan.MaxFaults) &&
		in.rng.Intn(plan.FailEveryN) == 0
	if fail {
		in.faults++
	}
	limit := len(p)
	if plan.ShortReads && len(p) > 1 && in.rng.Intn(2) == 0 {
		limit = 1 + in.rng.Intn(len(p)-1)
	}
	slow := plan.SlowEveryN > 0 && in.rng.Intn(plan.SlowEveryN) == 0
	in.mu.Unlock()

	if slow && plan.Delay > 0 {
		time.Sleep(plan.Delay)
	}
	if fail {
		// Fail before consuming: no byte is lost with the error, so a
		// retry that reopens at the consumer's offset misses nothing.
		return 0, &TransientError{Read: read}
	}
	return fr.r.Read(p[:limit])
}

// Source wraps a txdb.Source and aborts the scan with Err just before
// delivering the FailAt-th transaction (1-based). The error surfaces
// through the miner as a scan failure — it is not seen by the byte-level
// retry layer, so it exercises the pipeline's hard-failure path.
type Source struct {
	Inner  txdb.Source
	FailAt int
	Err    error
}

var _ txdb.Source = (*Source)(nil)

// Scan implements txdb.Source.
func (s *Source) Scan(fn func(tx itemset.Set) error) error {
	seen := 0
	return s.Inner.Scan(func(tx itemset.Set) error {
		seen++
		if s.FailAt > 0 && seen == s.FailAt {
			if s.Err != nil {
				return s.Err
			}
			return fmt.Errorf("faultinject: injected scan failure at transaction %d", seen)
		}
		return fn(tx)
	})
}

// Len implements txdb.Source.
func (s *Source) Len() int { return s.Inner.Len() }

// Dict implements txdb.Source.
func (s *Source) Dict() *dict.Dictionary { return s.Inner.Dict() }
