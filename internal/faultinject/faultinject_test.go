package faultinject

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"github.com/flipper-mining/flipper/internal/core"
	"github.com/flipper-mining/flipper/internal/experiments"
	"github.com/flipper-mining/flipper/internal/measure"
	"github.com/flipper-mining/flipper/internal/taxonomy"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// fingerprint reduces a mining result to its observable output — patterns
// with chains, supports, correlations and labels — for byte comparison.
func fingerprint(t *testing.T, res *core.Result) string {
	t.Helper()
	b, err := json.Marshal(res.Patterns)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// buildWorkload returns a dense dataset plus its partitions written as
// basket shard files — the out-of-core layout the fault tests mine.
func buildWorkload(t *testing.T) (*txdb.DB, *taxonomy.Tree, []string) {
	t.Helper()
	db, tree, err := experiments.DenseWorkload(300, 6, 4, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	parts := txdb.Partition(db, 7)
	paths := make([]string, len(parts))
	for i, part := range parts {
		path := filepath.Join(dir, fmt.Sprintf("shard%03d.txt", i))
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := part.WriteBaskets(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		paths[i] = path
	}
	return db, tree, paths
}

func testConfig(strategy core.CountStrategy) core.Config {
	return core.Config{
		Measure:   measure.Kulczynski,
		Gamma:     0.3,
		Epsilon:   0.1,
		MinSupAbs: []int64{2, 1},
		Pruning:   core.Full,
		Strategy:  strategy,
		// Scan can run fully out of core (every counting pass re-reads
		// disk); the vertical backends need materialized views, so their
		// disk reads — still through the faulty reader — happen during the
		// materialization passes.
		Materialize: strategy != core.CountScan,
	}
}

// openFaultyShards groups the shard files into `shards` sources, each
// file-backed and wrapped with its own deterministic injector (one
// injector per shard keeps the schedule replayable under the parallel
// shard pool).
func openFaultyShards(t *testing.T, paths []string, tree *taxonomy.Tree, shards int, plan Plan) (txdb.Source, []*Injector) {
	t.Helper()
	injectors := make([]*Injector, 0, shards)
	srcs := make([]txdb.Source, 0, shards)
	// Group the 7 files into `shards` sharded sources by striding, so shard
	// counts 1, 2 and 7 all reuse the same files.
	groups := make([][]string, shards)
	for i, p := range paths {
		groups[i%shards] = append(groups[i%shards], p)
	}
	for gi, group := range groups {
		var members []txdb.Source
		for _, p := range group {
			fs, err := txdb.OpenFile(p, tree.Dict())
			if err != nil {
				t.Fatal(err)
			}
			inj := New(Plan{
				Seed:       plan.Seed + int64(gi*31+len(members)),
				FailEveryN: plan.FailEveryN,
				MaxFaults:  plan.MaxFaults,
				ShortReads: plan.ShortReads,
			})
			fs.SetReaderWrapper(inj.Reader)
			fs.SetRetry(txdb.RetryPolicy{Attempts: 8})
			injectors = append(injectors, inj)
			members = append(members, fs)
		}
		if len(members) == 1 {
			srcs = append(srcs, members[0])
			continue
		}
		sub, err := txdb.NewSharded(members...)
		if err != nil {
			t.Fatal(err)
		}
		srcs = append(srcs, sub)
	}
	if len(srcs) == 1 {
		return srcs[0], injectors
	}
	ss, err := txdb.NewSharded(srcs...)
	if err != nil {
		t.Fatal(err)
	}
	return ss, injectors
}

// TestFaultInjectedEquivalence is the acceptance property of the retry
// layer: across every counting strategy and shard counts 1, 2 and 7,
// mining an out-of-core source whose reads fail, truncate and stall on a
// seeded schedule produces output byte-identical to the fault-free
// in-memory run.
func TestFaultInjectedEquivalence(t *testing.T) {
	db, tree, paths := buildWorkload(t)
	strategies := []core.CountStrategy{core.CountScan, core.CountTIDList, core.CountBitmap, core.CountAuto}
	shardCounts := []int{1, 2, 7}
	for _, strategy := range strategies {
		cfg := testConfig(strategy)
		base, err := core.Mine(db, tree, cfg)
		if err != nil {
			t.Fatalf("%v baseline: %v", strategy, err)
		}
		want := fingerprint(t, base)
		for _, shards := range shardCounts {
			src, injectors := openFaultyShards(t, paths, tree, shards, Plan{
				Seed:       42,
				FailEveryN: 4,
				ShortReads: true,
			})
			res, err := core.Mine(src, tree, cfg)
			if err != nil {
				t.Fatalf("%v shards=%d under faults: %v", strategy, shards, err)
			}
			if got := fingerprint(t, res); got != want {
				t.Fatalf("%v shards=%d diverged under faults.\nwant:\n%s\ngot:\n%s",
					strategy, shards, want, got)
			}
			faults := 0
			for _, inj := range injectors {
				_, f := inj.Stats()
				faults += f
			}
			if faults == 0 {
				t.Fatalf("%v shards=%d: no faults injected — the test proved nothing", strategy, shards)
			}
		}
	}
}

// TestHardScanFaultFailsMine pins the other side of the contract: a
// non-transient scan failure must fail the mine, not silently degrade.
func TestHardScanFaultFailsMine(t *testing.T) {
	db, tree, _ := buildWorkload(t)
	hard := errors.New("shard corrupted")
	src := &Source{Inner: db, FailAt: 50, Err: hard}
	if _, err := core.Mine(src, tree, testConfig(core.CountScan)); !errors.Is(err, hard) {
		t.Fatalf("mine over hard-failing source: err = %v, want wrapped %v", err, hard)
	}
}

// TestInjectorDeterminism replays the same seed over the same read
// sequence and checks the fault schedule is identical.
func TestInjectorDeterminism(t *testing.T) {
	run := func() []int {
		inj := New(Plan{Seed: 7, FailEveryN: 3, ShortReads: true})
		r := inj.Reader(bytes.NewReader(bytes.Repeat([]byte("x"), 4096)))
		var faultReads []int
		buf := make([]byte, 64)
		for {
			_, err := r.Read(buf)
			var te *TransientError
			if errors.As(err, &te) {
				faultReads = append(faultReads, te.Read)
				continue
			}
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		return faultReads
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no faults fired")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("schedules diverged: %v vs %v", a, b)
	}
}

// TestMaxFaultsCap pins the fault budget: injection stops at MaxFaults.
func TestMaxFaultsCap(t *testing.T) {
	inj := New(Plan{Seed: 1, FailEveryN: 1, MaxFaults: 3})
	r := inj.Reader(bytes.NewReader(bytes.Repeat([]byte("x"), 1024)))
	buf := make([]byte, 16)
	faults := 0
	for {
		_, err := r.Read(buf)
		var te *TransientError
		if errors.As(err, &te) {
			faults++
			continue
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if faults != 3 {
		t.Fatalf("injected %d faults, want exactly 3", faults)
	}
}
