package faultinject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func doGet(t *testing.T, client *http.Client, url string) (*http.Response, []byte, error) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp, body, err
}

func okServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		rw.Write([]byte(`{"status":"ok","payload":"0123456789abcdef"}`))
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestHTTPTransportDeterministicSchedule pins replayability: the same seed
// over the same sequential request sequence injects the same faults.
func TestHTTPTransportDeterministicSchedule(t *testing.T) {
	srv := okServer(t)
	plan := HTTPPlan{Seed: 42, DropEveryN: 3, Error5xxEveryN: 4}
	run := func() []string {
		tr := NewHTTPTransport(nil, plan)
		client := &http.Client{Transport: tr}
		var out []string
		for i := 0; i < 40; i++ {
			resp, _, err := doGet(t, client, srv.URL)
			switch {
			case err != nil:
				out = append(out, "drop")
			case resp.StatusCode == http.StatusServiceUnavailable:
				out = append(out, "503")
			default:
				out = append(out, "ok")
			}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: schedules diverge (%s vs %s)", i, a[i], b[i])
		}
	}
	seen := map[string]bool{}
	for _, s := range a {
		seen[s] = true
	}
	for _, want := range []string{"drop", "503", "ok"} {
		if !seen[want] {
			t.Fatalf("40 requests at 1/3 drop + 1/4 503 never produced %q: %v", want, a)
		}
	}
}

// TestHTTPTransportDropIsTransient pins the error type dispatch retry logic
// classifies on.
func TestHTTPTransportDropIsTransient(t *testing.T) {
	srv := okServer(t)
	tr := NewHTTPTransport(nil, HTTPPlan{Seed: 1, DropEveryN: 1, MaxFaults: 1})
	client := &http.Client{Transport: tr}
	_, _, err := doGet(t, client, srv.URL)
	if err == nil {
		t.Fatal("guaranteed drop did not error")
	}
	var te *TransientError
	if !errors.As(err, &te) {
		t.Fatalf("drop error %T (%v), want *TransientError", err, err)
	}
}

// TestHTTPTransportTruncate verifies a truncated response fails mid-body:
// the status is fine, the read is not — the shape a JSON decoder turns into
// an unexpected-EOF dispatch failure.
func TestHTTPTransportTruncate(t *testing.T) {
	srv := okServer(t)
	tr := NewHTTPTransport(nil, HTTPPlan{Seed: 1, TruncateEveryN: 1, MaxFaults: 1})
	client := &http.Client{Transport: tr}
	resp, body, err := doGet(t, client, srv.URL)
	if err == nil {
		t.Fatalf("truncated body read succeeded: %q", body)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("truncation changed status to %d", resp.StatusCode)
	}
	if len(body) == 0 {
		t.Fatal("truncation served no prefix at all")
	}
}

// TestHTTPTransportMaxFaults pins the budget invariant bounded-retry
// dispatch leans on: after MaxFaults injected faults, every request is
// served cleanly.
func TestHTTPTransportMaxFaults(t *testing.T) {
	srv := okServer(t)
	tr := NewHTTPTransport(nil, HTTPPlan{Seed: 7, DropEveryN: 1, Error5xxEveryN: 1, MaxFaults: 5})
	client := &http.Client{Transport: tr}
	faulted := 0
	for i := 0; i < 30; i++ {
		resp, _, err := doGet(t, client, srv.URL)
		if err != nil || resp.StatusCode != http.StatusOK {
			faulted++
		}
	}
	if faulted != 5 {
		t.Fatalf("%d faulted responses, want exactly MaxFaults=5", faulted)
	}
	if _, faults := tr.Stats(); faults != 5 {
		t.Fatalf("Stats reports %d faults, want 5", faults)
	}
	if requests, _ := tr.Stats(); requests != 30 {
		t.Fatalf("Stats reports %d requests, want 30", requests)
	}
}

// TestHTTPTransportStall verifies stalls delay but do not fail, and do not
// consume the fault budget.
func TestHTTPTransportStall(t *testing.T) {
	srv := okServer(t)
	delay := 30 * time.Millisecond
	tr := NewHTTPTransport(nil, HTTPPlan{Seed: 3, StallEveryN: 1, Delay: delay, MaxFaults: 1})
	client := &http.Client{Transport: tr}
	start := time.Now()
	resp, _, err := doGet(t, client, srv.URL)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("stalled request failed: %v / %v", err, resp)
	}
	if elapsed := time.Since(start); elapsed < delay {
		t.Fatalf("stall took %v, want ≥ %v", elapsed, delay)
	}
	if _, faults := tr.Stats(); faults != 0 {
		t.Fatalf("stalls consumed %d of the fault budget", faults)
	}
}
