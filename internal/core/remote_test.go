package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"github.com/flipper-mining/flipper/internal/itemset"
	"github.com/flipper-mining/flipper/internal/measure"
)

// loopbackCounter is the simplest possible CellCounter: it answers every
// cell by calling ShardSupports for each shard on a second engine over the
// same dataset and summing the partial vectors — exactly what the cluster
// coordinator does over HTTP, minus the network. MineRemote through it must
// therefore be byte-identical to plain Mine.
type loopbackCounter struct {
	eng    *Engine
	cfg    Config
	shards int
	calls  int
}

func (lc *loopbackCounter) CountCell(ctx context.Context, h, k int, cands []itemset.Set) ([]int64, error) {
	lc.calls++
	total := make([]int64, len(cands))
	for s := 0; s < lc.shards; s++ {
		part, err := lc.eng.ShardSupports(ctx, lc.cfg, h, cands, s)
		if err != nil {
			return nil, err
		}
		for i, v := range part {
			total[i] += v
		}
	}
	return total, nil
}

// TestMineRemoteLoopbackEquivalence is the core guarantee distributed mining
// is built on: a run whose counting is delegated cell-by-cell to
// ShardSupports-and-sum produces exactly the patterns of a single-process
// run, across strategies, shard counts and the streaming mode.
func TestMineRemoteLoopbackEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	trials := 8
	if testing.Short() {
		trials = 3
	}
	cases := []struct {
		name        string
		strategy    CountStrategy
		materialize bool
		shards      int
	}{
		{"scan-mat-1", CountScan, true, 1},
		{"scan-mat-2", CountScan, true, 2},
		{"scan-stream-7", CountScan, false, 7},
		{"tid-mat-2", CountTIDList, true, 2},
		{"bitmap-mat-7", CountBitmap, true, 7},
		{"auto-mat-2", CountAuto, true, 2},
	}
	for trial := 0; trial < trials; trial++ {
		db, tree := randomDataset(rng)
		for _, tc := range cases {
			cfg := Config{
				Measure:     measure.Kulczynski,
				Gamma:       0.3,
				Epsilon:     0.1,
				MinSupAbs:   []int64{2, 1, 1},
				Pruning:     Full,
				Strategy:    tc.strategy,
				Materialize: tc.materialize,
				Shards:      tc.shards,
			}
			local, err := Mine(db, tree, cfg)
			if err != nil {
				t.Fatalf("trial %d %s: local: %v", trial, tc.name, err)
			}
			worker := NewEngine(db, tree)
			lc := &loopbackCounter{eng: worker, cfg: cfg, shards: worker.ResolveShards(cfg)}
			coord := NewEngine(db, tree)
			remote, err := coord.MineRemote(context.Background(), cfg, lc)
			if err != nil {
				t.Fatalf("trial %d %s: remote: %v", trial, tc.name, err)
			}
			if got, want := fingerprint(remote, tree), fingerprint(local, tree); got != want {
				t.Fatalf("trial %d %s: remote diverged from local.\nlocal:\n%s\nremote:\n%s",
					trial, tc.name, want, got)
			}
			if local.Stats.CandidatesCounted > 0 && lc.calls == 0 {
				t.Fatalf("trial %d %s: counter never called", trial, tc.name)
			}
		}
	}
}

// TestShardSupportsPartialsSumToTotals pins the partial-vector contract
// directly: per-shard vectors sum to the unsharded shard-0 totals.
func TestShardSupportsPartialsSumToTotals(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db, tree := randomDataset(rng)
	cands := []itemset.Set{}
	// Build a few canonical 2-itemsets from the dictionary's leaf IDs.
	leaves := tree.Leaves()
	for i := 0; i+1 < len(leaves) && len(cands) < 6; i += 2 {
		a, b := leaves[i], leaves[i+1]
		if a > b {
			a, b = b, a
		}
		if a == b {
			continue
		}
		cands = append(cands, itemset.Set{a, b})
	}
	if len(cands) == 0 {
		t.Skip("no candidate pairs")
	}
	base := Config{
		Measure: measure.Kulczynski, Gamma: 0.3, Epsilon: 0.1,
		MinSupAbs: []int64{1, 1, 1}, Materialize: true,
	}
	ctx := context.Background()
	for h := 1; h <= tree.Height(); h++ {
		// Generalize the candidates to level h; skip collapsed ones.
		var hc []itemset.Set
		for _, c := range cands {
			g, ok := tree.GeneralizeSet(c, h)
			if ok && len(g) == len(c) {
				hc = append(hc, g)
			}
		}
		hc = dedupSets(hc)
		if len(hc) == 0 {
			continue
		}
		whole := NewEngine(db, tree)
		want, err := whole.ShardSupports(ctx, base, h, hc, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{2, 7} {
			cfg := base
			cfg.Shards = shards
			eng := NewEngine(db, tree)
			n := eng.ResolveShards(cfg)
			got := make([]int64, len(hc))
			for s := 0; s < n; s++ {
				part, err := eng.ShardSupports(ctx, cfg, h, hc, s)
				if err != nil {
					t.Fatal(err)
				}
				for i, v := range part {
					got[i] += v
				}
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("h=%d shards=%d cand %v: partials sum to %d, whole-db says %d",
						h, shards, hc[i], got[i], want[i])
				}
			}
		}
	}
}

// dedupSets removes duplicate itemsets, preserving first-seen order — the
// slab-order contract ShardSupports enforces.
func dedupSets(in []itemset.Set) []itemset.Set {
	seen := map[string]bool{}
	var out []itemset.Set
	for _, s := range in {
		k := s.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, s)
		}
	}
	return out
}

// TestShardSupportsValidation pins the request-validation surface workers
// rely on to reject malformed or misaligned coordinator requests.
func TestShardSupportsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db, tree := randomDataset(rng)
	eng := NewEngine(db, tree)
	cfg := Config{
		Measure: measure.Kulczynski, Gamma: 0.3, Epsilon: 0.1,
		MinSupAbs: []int64{1, 1, 1}, Materialize: true,
	}
	ctx := context.Background()
	leaves := tree.Leaves()
	a, b := leaves[0], leaves[1]
	if a > b {
		a, b = b, a
	}
	good := []itemset.Set{{a, b}}
	if _, err := eng.ShardSupports(ctx, cfg, 0, good, 0); err == nil {
		t.Error("level 0 accepted")
	}
	if _, err := eng.ShardSupports(ctx, cfg, tree.Height()+1, good, 0); err == nil {
		t.Error("level beyond height accepted")
	}
	if _, err := eng.ShardSupports(ctx, cfg, tree.Height(), good, 1); err == nil {
		t.Error("out-of-range shard accepted")
	}
	if _, err := eng.ShardSupports(ctx, cfg, tree.Height(), []itemset.Set{{b, a}}, 0); err == nil {
		t.Error("non-canonical candidate accepted")
	}
	if _, err := eng.ShardSupports(ctx, cfg, tree.Height(), []itemset.Set{{a, b}, {a, b}}, 0); err == nil {
		t.Error("duplicate candidate accepted")
	}
	if _, err := eng.ShardSupports(ctx, cfg, tree.Height(), []itemset.Set{{a, b}, {a}}, 0); err == nil {
		t.Error("mixed-size candidates accepted")
	}
	out, err := eng.ShardSupports(ctx, cfg, tree.Height(), nil, 0)
	if err != nil || len(out) != 0 {
		t.Errorf("empty candidate list: got %v, %v", out, err)
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := eng.ShardSupports(cancelled, cfg, tree.Height(), good, 0); err == nil {
		t.Error("cancelled context accepted")
	}
}

// TestMineRemoteCounterError verifies a failing counter fails the mine — no
// partial or silently undercounted result ever escapes.
func TestMineRemoteCounterError(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	db, tree := randomDataset(rng)
	cfg := Config{
		Measure: measure.Kulczynski, Gamma: 0.3, Epsilon: 0.1,
		MinSupAbs: []int64{1, 1, 1}, Materialize: true,
	}
	eng := NewEngine(db, tree)
	_, err := eng.MineRemote(context.Background(), cfg, failingCounter{})
	if err == nil {
		t.Fatal("MineRemote succeeded with a failing counter")
	}
	if _, err := eng.MineRemote(context.Background(), cfg, nil); err == nil {
		t.Fatal("MineRemote accepted a nil counter")
	}
}

type failingCounter struct{}

func (failingCounter) CountCell(context.Context, int, int, []itemset.Set) ([]int64, error) {
	return nil, fmt.Errorf("boom")
}
