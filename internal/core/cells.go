package core

import (
	"sort"

	"github.com/flipper-mining/flipper/internal/itemset"
)

// row1Cell generates the candidates of Q(1,k) by complete level-wise Apriori
// over the frequent level-1 items. Row 1 has no parent row, so cells here
// contain every frequent k-itemset at level 1 — which is what makes the
// zigzag's TPG check meaningful and keeps the miner complete.
func (m *miner) row1Cell(k int) *cell {
	c := m.cell(1, k)
	if k == 2 {
		items := m.frequentItems(1)
		for i := 0; i < len(items); i++ {
			for j := i + 1; j < len(items); j++ {
				m.addCandidate(c, itemset.Set{items[i], items[j]})
			}
		}
		return c
	}
	prev := m.rows[1][k-1]
	if prev == nil || prev.frequent < k {
		return c
	}
	// Apriori join: pairs of frequent (k-1)-itemsets sharing a (k-2)-prefix.
	// The trie walk yields them in lexicographic order, which the join
	// exploits: once the prefix diverges, no later operand can match.
	sets := prev.frequentSets()
	scratch := make(itemset.Set, k-1)
	for i := 0; i < len(sets); i++ {
		if i&cancelCheckMask == 0 && m.cancelled() {
			return c
		}
		for j := i + 1; j < len(sets); j++ {
			joined, ok := itemset.Join(sets[i], sets[j])
			if !ok {
				// Lexicographic order: once the prefix diverges no later j
				// can join with i.
				break
			}
			// Row-1 cells are complete: every (k-1)-subset must be present
			// and frequent.
			if !m.allSubsetsFrequent(prev, joined, scratch) {
				m.stats.SubsetPruned++
				continue
			}
			m.addCandidate(c, joined)
		}
	}
	return c
}

// allSubsetsFrequent checks the standard Apriori condition against a
// complete cell by trie descent — no key bytes, no map probes. The first
// two subsets are the join operands; skip them.
func (m *miner) allSubsetsFrequent(prev *cell, joined itemset.Set, scratch itemset.Set) bool {
	k := len(joined)
	for drop := 0; drop < k-2; drop++ {
		copy(scratch, joined[:drop])
		copy(scratch[drop:], joined[drop+1:])
		e := prev.store.Lookup(scratch)
		if e < 0 || prev.meta[e].infrequent {
			return false
		}
	}
	return true
}

// childCell generates the candidates of Q(h,k), h ≥ 2: the child-item
// combinations of every chain-alive parent itemset in Q(h-1,k), filtered by
// single-item frequency at level h, SIBP exclusions, and known-infrequent
// (k-1)-subsets counted in Q(h,k-1).
//
// Every generalization of a flipping pattern has a chain-alive parent, so
// this expansion is complete for the flipping-pattern search even though the
// cells it produces are subsets of all frequent itemsets (see DESIGN.md).
func (m *miner) childCell(h, k int) *cell {
	c := m.cell(h, k)
	parentCell := m.rows[h-1][k]
	if parentCell == nil || parentCell.alive == 0 {
		return c
	}
	left := m.rows[h][k-1] // counted (h,k-1) itemsets; nil when k == 2
	freq := m.freq1[h]
	excl := m.excluded[h]

	lists := make([][]itemset.ID, k)
	idx := make([]int, k)
	combo := make([]itemset.ID, k)
	cand := m.sc.candFor(k)
	scratch := make(itemset.Set, k-1)
	cancelledRun := false
	parentCell.store.Walk(func(pe int32, pItems itemset.Set) {
		// Per-parent cancellation poll; a cancelled run stops expanding and
		// lets the caller unwind (partial candidates never escape — Mine
		// returns the context error, not a result).
		if cancelledRun {
			return
		}
		if pe&int32(cancelCheckMask) == 0 && m.cancelled() {
			cancelledRun = true
			return
		}
		pm := &parentCell.meta[pe]
		if !pm.alive {
			return
		}
		for i, pid := range pItems {
			lists[i] = lists[i][:0]
			for _, ch := range m.tax.ChildrenAt(pid) {
				if _, f := freq[ch]; !f {
					continue
				}
				if excl[ch] {
					continue
				}
				lists[i] = append(lists[i], ch)
			}
			if len(lists[i]) == 0 {
				return
			}
		}
		// Cartesian product of the child lists. Children of distinct
		// parents are distinct nodes, so each combination is a k-itemset.
		for i := range idx {
			idx[i] = 0
		}
		for {
			for i := range combo {
				combo[i] = lists[i][idx[i]]
			}
			// Children of distinct parents are distinct nodes, so the combo
			// needs only sorting, not dedup; insertion sort in the scratch
			// buffer replaces an itemset.New allocation per candidate (the
			// store copies on Insert).
			copy(cand, combo)
			for i := 1; i < k; i++ {
				for j := i; j > 0 && cand[j] < cand[j-1]; j-- {
					cand[j], cand[j-1] = cand[j-1], cand[j]
				}
			}
			if left != nil && m.hasInfrequentSubset(left, cand, scratch) {
				m.stats.SubsetPruned++
			} else {
				m.addChildCandidate(c, cand, pm.chain, pm.label)
			}
			// Advance the mixed-radix counter.
			i := k - 1
			for i >= 0 {
				idx[i]++
				if idx[i] < len(lists[i]) {
					break
				}
				idx[i] = 0
				i--
			}
			if i < 0 {
				break
			}
		}
	})
	return c
}

// hasInfrequentSubset reports whether any (k-1)-subset of cand was counted
// in the left cell and found infrequent, by trie lookup. Subsets that were
// never generated there (possible under vertical gating) prove nothing and
// are ignored.
func (m *miner) hasInfrequentSubset(left *cell, cand itemset.Set, scratch itemset.Set) bool {
	k := len(cand)
	for drop := 0; drop < k; drop++ {
		copy(scratch, cand[:drop])
		copy(scratch[drop:], cand[drop+1:])
		e := left.store.Lookup(scratch)
		if e >= 0 && left.meta[e].infrequent {
			return true
		}
	}
	return false
}

// addCandidate registers a row-1 or BASIC candidate itemset for counting.
func (m *miner) addCandidate(c *cell, items itemset.Set) {
	m.insertCandidate(c, items, -1, LabelNone)
}

// addChildCandidate registers a child-row candidate, carrying the alive
// parent's chain-arena index and label so labeling never needs the parent
// cell again (its row may be freed before this cell's chains assemble).
func (m *miner) addChildCandidate(c *cell, items itemset.Set, parentChain int32, parentLabel Label) {
	m.insertCandidate(c, items, parentChain, parentLabel)
}

func (m *miner) insertCandidate(c *cell, items itemset.Set, parentChain int32, parentLabel Label) {
	if _, added := c.store.Insert(items); !added {
		return // duplicate registration; generation never produces these
	}
	c.meta = append(c.meta, entryMeta{
		parentChain: parentChain,
		chain:       -1,
		parentLabel: parentLabel,
	})
	c.candidates++
	m.stats.CandidatesCounted++
	m.stats.addResident(1, c.k)
}

// frequentSets returns the cell's frequent itemsets in lexicographic order,
// aliasing the store's arena (valid for the cell's lifetime).
func (c *cell) frequentSets() []itemset.Set {
	out := make([]itemset.Set, 0, c.frequent)
	c.store.Walk(func(e int32, items itemset.Set) {
		if !c.meta[e].infrequent {
			out = append(out, items)
		}
	})
	return out
}

// frequentItems returns the frequent 1-items of a level in ascending ID
// order, minus SIBP-excluded ones.
func (m *miner) frequentItems(h int) []itemset.ID {
	excl := m.excluded[h]
	out := make([]itemset.ID, 0, len(m.freq1[h]))
	for id := range m.freq1[h] {
		if !excl[id] {
			out = append(out, id)
		}
	}
	sortIDs(out)
	return out
}

func sortIDs(ids []itemset.ID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
