package core

import (
	"sort"

	"github.com/flipper-mining/flipper/internal/itemset"
)

// row1Cell generates the candidates of Q(1,k) by complete level-wise Apriori
// over the frequent level-1 items. Row 1 has no parent row, so cells here
// contain every frequent k-itemset at level 1 — which is what makes the
// zigzag's TPG check meaningful and keeps the miner complete.
func (m *miner) row1Cell(k int) *cell {
	c := newCell(1, k)
	if k == 2 {
		items := m.frequentItems(1)
		for i := 0; i < len(items); i++ {
			for j := i + 1; j < len(items); j++ {
				m.addCandidate(c, itemset.Set{items[i], items[j]}, nil)
			}
		}
		return c
	}
	prev := m.rows[1][k-1]
	if prev == nil || prev.frequent < k {
		return c
	}
	// Apriori join: pairs of frequent (k-1)-itemsets sharing a (k-2)-prefix.
	keys := sortedKeys(prev.entries)
	sets := make([]itemset.Set, len(keys))
	for i, key := range keys {
		sets[i] = prev.entries[key].items
	}
	scratch := make(itemset.Set, k-1)
	for i := 0; i < len(sets); i++ {
		for j := i + 1; j < len(sets); j++ {
			joined, ok := itemset.Join(sets[i], sets[j])
			if !ok {
				// Keys sort like itemsets, so once the prefix diverges no
				// later j can join with i.
				break
			}
			// Row-1 cells are complete: every (k-1)-subset must be present
			// and frequent.
			if !m.allSubsetsFrequent(prev, joined, scratch) {
				m.stats.SubsetPruned++
				continue
			}
			m.addCandidate(c, joined, nil)
		}
	}
	return c
}

// allSubsetsFrequent checks the standard Apriori condition against a
// complete cell. The first two subsets are the join operands; skip them.
func (m *miner) allSubsetsFrequent(prev *cell, joined itemset.Set, scratch itemset.Set) bool {
	k := len(joined)
	for drop := 0; drop < k-2; drop++ {
		copy(scratch, joined[:drop])
		copy(scratch[drop:], joined[drop+1:])
		if _, ok := prev.entries[scratch.Key()]; !ok {
			return false
		}
	}
	return true
}

// childCell generates the candidates of Q(h,k), h ≥ 2: the child-item
// combinations of every chain-alive parent itemset in Q(h-1,k), filtered by
// single-item frequency at level h, SIBP exclusions, and known-infrequent
// (k-1)-subsets counted in Q(h,k-1).
//
// Every generalization of a flipping pattern has a chain-alive parent, so
// this expansion is complete for the flipping-pattern search even though the
// cells it produces are subsets of all frequent itemsets (see DESIGN.md).
func (m *miner) childCell(h, k int) *cell {
	c := newCell(h, k)
	parentCell := m.rows[h-1][k]
	if parentCell == nil || parentCell.alive == 0 {
		return c
	}
	left := m.rows[h][k-1] // counted (h,k-1) itemsets; nil when k == 2
	freq := m.freq1[h]
	excl := m.excluded[h]

	lists := make([][]itemset.ID, k)
	idx := make([]int, k)
	combo := make([]itemset.ID, k)
	scratch := make(itemset.Set, k-1)
	for _, key := range sortedKeys(parentCell.entries) {
		p := parentCell.entries[key]
		if !p.alive {
			continue
		}
		ok := true
		for i, pid := range p.items {
			lists[i] = lists[i][:0]
			for _, ch := range m.tax.ChildrenAt(pid) {
				if _, f := freq[ch]; !f {
					continue
				}
				if excl[ch] {
					continue
				}
				lists[i] = append(lists[i], ch)
			}
			if len(lists[i]) == 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		// Cartesian product of the child lists. Children of distinct
		// parents are distinct nodes, so each combination is a k-itemset.
		for i := range idx {
			idx[i] = 0
		}
		for {
			for i := range combo {
				combo[i] = lists[i][idx[i]]
			}
			cand := itemset.New(combo...)
			if left != nil && m.hasInfrequentSubset(left, cand, scratch) {
				m.stats.SubsetPruned++
			} else {
				m.addCandidate(c, cand, p)
			}
			// Advance the mixed-radix counter.
			i := k - 1
			for i >= 0 {
				idx[i]++
				if idx[i] < len(lists[i]) {
					break
				}
				idx[i] = 0
				i--
			}
			if i < 0 {
				break
			}
		}
	}
	return c
}

// hasInfrequentSubset reports whether any (k-1)-subset of cand was counted
// in the left cell and found infrequent. Subsets that were never generated
// there (possible under vertical gating) prove nothing and are ignored.
func (m *miner) hasInfrequentSubset(left *cell, cand itemset.Set, scratch itemset.Set) bool {
	k := len(cand)
	for drop := 0; drop < k; drop++ {
		copy(scratch, cand[:drop])
		copy(scratch[drop:], cand[drop+1:])
		if _, bad := left.infreq[scratch.Key()]; bad {
			return true
		}
	}
	return false
}

// addCandidate registers a candidate itemset for counting.
func (m *miner) addCandidate(c *cell, items itemset.Set, parent *entry) {
	c.entries[items.Key()] = &entry{items: items, parent: parent}
	c.candidates++
	m.stats.CandidatesCounted++
	m.stats.addResident(1, c.k)
}

// frequentItems returns the frequent 1-items of a level in ascending ID
// order, minus SIBP-excluded ones.
func (m *miner) frequentItems(h int) []itemset.ID {
	excl := m.excluded[h]
	out := make([]itemset.ID, 0, len(m.freq1[h]))
	for id := range m.freq1[h] {
		if !excl[id] {
			out = append(out, id)
		}
	}
	sortIDs(out)
	return out
}

func sortIDs(ids []itemset.ID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// sortedKeys returns the map keys in ascending order. Itemset keys sort the
// same way the itemsets do, which the Apriori join exploits, and sorted
// iteration keeps candidate generation fully deterministic.
func sortedKeys(entries map[string]*entry) []string {
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
