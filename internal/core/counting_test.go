package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/flipper-mining/flipper/internal/itemset"
	"github.com/flipper-mining/flipper/internal/measure"
	"github.com/flipper-mining/flipper/internal/taxonomy"
	"github.com/flipper-mining/flipper/internal/txdb"
)

func TestIntersectSupport(t *testing.T) {
	lists := map[itemset.ID][]int32{
		1: {0, 2, 4, 6, 8},
		2: {2, 3, 4, 8, 9},
		3: {4, 8},
		4: {},
	}
	var scratch tidScratch
	cases := []struct {
		items itemset.Set
		want  int64
	}{
		{itemset.New(1), 5},
		{itemset.New(1, 2), 3}, // {2,4,8}
		{itemset.New(1, 2, 3), 2},
		{itemset.New(1, 4), 0},    // empty list
		{itemset.New(1, 2, 9), 0}, // missing item entirely
	}
	for _, c := range cases {
		if got := intersectSupport(c.items, lists, &scratch); got != c.want {
			t.Errorf("intersect(%v) = %d, want %d", c.items, got, c.want)
		}
	}
	// The map-owned lists must be untouched after repeated calls.
	if len(lists[1]) != 5 || lists[1][0] != 0 || lists[2][4] != 9 {
		t.Error("intersectSupport mutated the tid lists")
	}
}

func TestIntersectSupportRandomAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		lists := map[itemset.ID][]int32{}
		k := 2 + rng.Intn(3)
		items := make([]itemset.ID, k)
		want := map[int32]int{}
		for i := 0; i < k; i++ {
			items[i] = itemset.ID(i)
			n := rng.Intn(30)
			seen := map[int32]bool{}
			for j := 0; j < n; j++ {
				tid := int32(rng.Intn(40))
				if !seen[tid] {
					seen[tid] = true
				}
			}
			var l []int32
			for tid := int32(0); tid < 40; tid++ {
				if seen[tid] {
					l = append(l, tid)
					want[tid]++
				}
			}
			lists[items[i]] = l
		}
		expected := int64(0)
		for _, cnt := range want {
			if cnt == k {
				expected++
			}
		}
		var scratch tidScratch
		if got := intersectSupport(itemset.New(items...), lists, &scratch); got != expected {
			t.Fatalf("trial %d: got %d, want %d", trial, got, expected)
		}
	}
}

// TestScanTxsTrieDescent exercises the scan counter's hot loop — filter to
// candidate-relevant items, descend the trie, account pruned probes —
// directly against a hand-built cell.
func TestScanTxsTrieDescent(t *testing.T) {
	c := newCell(1, 2)
	var m miner
	m.addCandidate(c, itemset.New(1, 2))
	m.addCandidate(c, itemset.New(2, 3))
	c.store.Freeze()
	counts := make([]int64, c.store.Len())
	// Transaction {1,2,3,99}: 99 is filtered out by the candidate universe;
	// both pairs match with weight 5. Of the C(3,2)=3 remaining subsets,
	// {1,3} has no candidate and is pruned by the descent.
	data := flatten([]txdb.WeightedTx{{Items: itemset.New(1, 2, 3, 99), Weight: 5}})
	pruned, _ := scanTxs(c, &data, 0, data.n(), counts, nil)
	if pruned != 1 {
		t.Errorf("pruned = %d, want 1", pruned)
	}
	for _, set := range []itemset.Set{itemset.New(1, 2), itemset.New(2, 3)} {
		if got := counts[c.store.Lookup(set)]; got != 5 {
			t.Errorf("count of %v = %d", set, got)
		}
	}
	// Too-narrow transaction contributes nothing.
	before := append([]int64(nil), counts...)
	narrow := flatten([]txdb.WeightedTx{{Items: itemset.New(2), Weight: 1}})
	scanTxs(c, &narrow, 0, narrow.n(), counts, nil)
	for i := range counts {
		if counts[i] != before[i] {
			t.Error("narrow transaction changed counts")
		}
	}
}

func TestChooseStrategy(t *testing.T) {
	db, tree := paperToy(t)
	cfg := toyConfig()
	cfg.Strategy = CountAuto
	res, err := Mine(db, tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 1 {
		t.Fatalf("auto strategy found %d patterns", len(res.Patterns))
	}
}

func TestAutoMatchesScanOnRandomData(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 15; trial++ {
		db, tree := randomDataset(rng)
		cfg := Config{
			Measure: measure.Kulczynski, Gamma: 0.3, Epsilon: 0.1,
			MinSupAbs: []int64{2, 1, 1}, Pruning: Full, Materialize: true,
		}
		cfg.Strategy = CountScan
		a, err := Mine(db, tree, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Strategy = CountAuto
		b, err := Mine(db, tree, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if fingerprint(a, tree) != fingerprint(b, tree) {
			t.Fatalf("trial %d: auto diverged from scan", trial)
		}
	}
}

// taxonomyBuilderForDense builds a flat, wide taxonomy: 40 categories with
// two leaves each, height 2 — so level 1 has 40 items and C(40,2) = 780
// pair candidates when supports are permissive.
func taxonomyBuilderForDense(t *testing.T) *taxonomy.Builder {
	t.Helper()
	b := taxonomy.NewBuilder(nil)
	for r := 0; r < 40; r++ {
		for l := 0; l < 2; l++ {
			if err := b.AddPath(fmt.Sprintf("cat%02d", r), fmt.Sprintf("leaf%02d.%d", r, l)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return b
}

// txdbForDense draws 500 transactions of 8 random leaves each: dense enough
// that level views barely dedupe and candidate counts stay high.
func txdbForDense(rng *rand.Rand, tree *taxonomy.Tree) *txdb.DB {
	db := txdb.New(tree.Dict())
	for i := 0; i < 500; i++ {
		var names []string
		for j := 0; j < 8; j++ {
			names = append(names, fmt.Sprintf("leaf%02d.%d", rng.Intn(40), rng.Intn(2)))
		}
		db.AddNames(names...)
	}
	return db
}

// TestChooseStrategyPicksBitmapOnDenseCells drives CountAuto over a dense,
// high-candidate workload (many frequent items, wide transactions) and
// checks the cost model actually routes some cells to the bitmap backend:
// with hundreds of candidates against ⌈n/64⌉-word vectors, AND+popcount is
// the cheapest regime.
func TestChooseStrategyPicksBitmapOnDenseCells(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	b := taxonomyBuilderForDense(t)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	db := txdbForDense(rng, tree)
	cfg := Config{
		Measure: measure.Kulczynski, Gamma: 0.3, Epsilon: 0.1,
		MinSupAbs: []int64{1, 1}, Pruning: Basic, Materialize: true,
		Strategy: CountAuto,
	}
	res, err := Mine(db, tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BitmapBuilds == 0 {
		t.Fatalf("auto never chose bitmap on a dense workload: %+v", res.Stats)
	}
	// And the auto run must agree with a pure scan run.
	cfg.Strategy = CountScan
	want, err := Mine(db, tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(res, tree) != fingerprint(want, tree) {
		t.Fatal("auto (with bitmap cells) diverged from scan")
	}
}

func TestTidListsBuiltLazilyOnce(t *testing.T) {
	db, tree := paperToy(t)
	cfg := toyConfig()
	minSup, err := cfg.validate(tree.Height(), db.Len())
	if err != nil {
		t.Fatal(err)
	}
	m := &miner{
		cfg: toyConfig(), tax: tree, src: db,
		height: tree.Height(), n: db.Len(), minSup: minSup,
	}
	if err := m.init(); err != nil {
		t.Fatal(err)
	}
	l1 := m.tidLists(1)
	l2 := m.tidLists(1)
	if &l1 == &l2 {
		// maps compare by header; check identity via a sentinel instead
		t.Log("map headers differ; asserting cache below")
	}
	a, _ := tree.Dict().Lookup("a")
	if len(l1[a]) != 8 {
		t.Errorf("tidlist of 'a' at level 1 has %d entries, want 8", len(l1[a]))
	}
	// Mutate the cached map; a second call must return the same cache.
	l1[a] = nil
	if got := m.tidLists(1); got[a] != nil {
		t.Error("tidLists rebuilt instead of cached")
	}
}
