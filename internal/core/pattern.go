package core

import (
	"fmt"
	"sort"
	"strings"

	"github.com/flipper-mining/flipper/internal/itemset"
	"github.com/flipper-mining/flipper/internal/taxonomy"
)

// Label classifies a frequent itemset by its correlation value relative to
// the thresholds γ and ε.
type Label int8

const (
	// LabelNone marks a frequent itemset whose correlation falls strictly
	// between ε and γ; such itemsets break every flipping chain through them.
	LabelNone Label = iota
	// LabelPositive marks Corr ≥ γ.
	LabelPositive
	// LabelNegative marks Corr ≤ ε.
	LabelNegative
)

func (l Label) String() string {
	switch l {
	case LabelPositive:
		return "+"
	case LabelNegative:
		return "-"
	default:
		return "·"
	}
}

// Labeled reports whether the itemset is positive or negative.
func (l Label) Labeled() bool { return l != LabelNone }

// Flips reports whether two consecutive labels alternate sign.
func (l Label) Flips(parent Label) bool {
	return (l == LabelPositive && parent == LabelNegative) ||
		(l == LabelNegative && parent == LabelPositive)
}

// LevelInfo describes one level of a flipping pattern's generalization chain.
type LevelInfo struct {
	// Level is the taxonomy level (1 = most general).
	Level int `json:"level"`
	// Items holds the (h,k)-itemset at this level.
	Items itemset.Set `json:"items"`
	// Support is the itemset's transaction count at this level.
	Support int64 `json:"support"`
	// Corr is the correlation value under the run's measure.
	Corr float64 `json:"corr"`
	// Label is the sign of the correlation at this level.
	Label Label `json:"label"`
}

// Pattern is one flipping correlation pattern: a leaf-level k-itemset whose
// generalization chain alternates between positive and negative correlation
// at every step from level 1 down to the leaves.
type Pattern struct {
	// Leaf is the pattern's itemset at the deepest level.
	Leaf itemset.Set `json:"leaf"`
	// Chain holds one LevelInfo per level, ordered from level 1 to level H.
	Chain []LevelInfo `json:"chain"`
	// Gap is the smallest |Corr(h) − Corr(h+1)| along the chain: the
	// weakest flip. Larger gaps mean "more flipping"; the future-work top-K
	// ranking orders by descending Gap.
	Gap float64 `json:"gap"`
	// Confidence is set only by best-effort anchored search: the sketch-based
	// certainty that no estimate-pruned candidate could have outranked this
	// pattern (1 means provably none could). Zero on exact results.
	Confidence float64 `json:"confidence,omitempty"`
}

// K returns the pattern's itemset size.
func (p *Pattern) K() int { return len(p.Leaf) }

// computeGap fills Gap from the chain.
func (p *Pattern) computeGap() {
	gap := 0.0
	for i := 1; i < len(p.Chain); i++ {
		d := p.Chain[i].Corr - p.Chain[i-1].Corr
		if d < 0 {
			d = -d
		}
		if i == 1 || d < gap {
			gap = d
		}
	}
	p.Gap = gap
}

// Format renders the pattern with item names resolved through the taxonomy:
//
//	{eggs, fish}  gap=0.42
//	  L1 {fresh produce, meat&fish}  sup=3120  kulc=0.61  +
//	  L2 {eggs, fish}                sup=14    kulc=0.08  -
func (p *Pattern) Format(tree *taxonomy.Tree) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  gap=%.3f\n", tree.FormatSet(p.Leaf), p.Gap)
	for _, li := range p.Chain {
		fmt.Fprintf(&b, "  L%d %-40s sup=%-8d corr=%.4f %s\n",
			li.Level, tree.FormatSet(li.Items), li.Support, li.Corr, li.Label)
	}
	return b.String()
}

// sortPatterns orders patterns deterministically: by itemset size, then by
// the leaf itemset key. Used for all result output so runs are comparable.
func sortPatterns(ps []Pattern) {
	sort.Slice(ps, func(i, j int) bool {
		if len(ps[i].Leaf) != len(ps[j].Leaf) {
			return len(ps[i].Leaf) < len(ps[j].Leaf)
		}
		return ps[i].Leaf.Key() < ps[j].Leaf.Key()
	})
}

// sortPatternsByGap orders by descending gap (ties broken deterministically
// by leaf key); used by the top-K extension.
func sortPatternsByGap(ps []Pattern) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Gap != ps[j].Gap {
			return ps[i].Gap > ps[j].Gap
		}
		return ps[i].Leaf.Key() < ps[j].Leaf.Key()
	})
}
