package core

import (
	"testing"
)

func TestEpsilonSweep(t *testing.T) {
	db, tree := paperToy(t)
	cfg := toyConfig()
	points, err := EpsilonSweep(db, tree, cfg, []float64{0.1, 0.34, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// Descending ε order.
	if points[0].Epsilon != 0.34 || points[2].Epsilon != 0.1 {
		t.Errorf("sweep order: %+v", points)
	}
	// Kulc(a1,b1) = 1/3 ≈ 0.333: ε=0.34 keeps the pattern, lower values
	// lose it.
	if points[0].Patterns != 1 {
		t.Errorf("ε=0.34 patterns = %d, want 1", points[0].Patterns)
	}
	if points[1].Patterns != 0 || points[2].Patterns != 0 {
		t.Errorf("tight ε patterns = %d/%d, want 0", points[1].Patterns, points[2].Patterns)
	}
	// Monotonicity along the sweep.
	for i := 1; i < len(points); i++ {
		if points[i].Patterns > points[i-1].Patterns {
			t.Error("pattern count increased as ε decreased")
		}
	}
	if _, err := EpsilonSweep(db, tree, cfg, nil); err == nil {
		t.Error("empty sweep accepted")
	}
}

func TestSuggestEpsilon(t *testing.T) {
	db, tree := paperToy(t)
	cfg := toyConfig()
	eps, res, found, err := SuggestEpsilon(db, tree, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("target 1 not reachable although ε=0.35 finds a pattern")
	}
	if len(res.Patterns) < 1 {
		t.Fatalf("returned result has %d patterns", len(res.Patterns))
	}
	// The bisection should settle just above Kulc(a1,b1)=1/3 — certainly
	// within (1/3, γ).
	if eps <= 1.0/3 || eps >= cfg.Gamma {
		t.Errorf("suggested ε = %v outside (1/3, γ)", eps)
	}

	// An impossible target reports found=false with the loosest result.
	_, res2, found2, err := SuggestEpsilon(db, tree, cfg, 50)
	if err != nil {
		t.Fatal(err)
	}
	if found2 {
		t.Error("target 50 reported as reachable")
	}
	if res2 == nil {
		t.Error("loosest result missing")
	}
	if _, _, _, err := SuggestEpsilon(db, tree, cfg, 0); err == nil {
		t.Error("target 0 accepted")
	}
}
