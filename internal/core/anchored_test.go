package core

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/flipper-mining/flipper/internal/measure"
	"github.com/flipper-mining/flipper/internal/taxonomy"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// rankedFingerprint renders a pattern list order-sensitively — unlike
// fingerprint, which sorts its lines — because anchored results are ranked
// and the ranking itself is part of the contract under test.
func rankedFingerprint(pats []Pattern, tree *taxonomy.Tree) string {
	var sb strings.Builder
	for _, p := range pats {
		fmt.Fprintf(&sb, "gap=%.9f|", p.Gap)
		for _, li := range p.Chain {
			fmt.Fprintf(&sb, "L%d%s|%d|%.9f|%s;", li.Level, tree.FormatSet(li.Items), li.Support, li.Corr, li.Label)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// anchoredReference computes the anchored top-K answer the slow way: filter
// the full exact pattern set down to chains through the anchor, then rank
// by gap and truncate — the definition guaranteed mode must reproduce.
func anchoredReference(full *Result, tree *taxonomy.Tree, anchor string, topK int) []Pattern {
	id, ok := tree.Dict().Lookup(anchor)
	if !ok {
		panic("reference anchor not in dictionary")
	}
	la := tree.LevelOf(id)
	var kept []Pattern
	for _, p := range full.Patterns {
		if p.Chain[la-1].Items.Contains(id) {
			kept = append(kept, p)
		}
	}
	return rankAnchored(kept, topK)
}

// TestAnchoredTopKMatchesExact is the acceptance property of the anchored
// query path: in guaranteed mode, across every counting strategy, every
// pruning level and shard counts 1, 2 and 7, the sketch-pruned anchored
// search returns byte-identically what filtering and ranking the full exact
// mine returns — same patterns, same order, same supports, correlations and
// labels. Like TestShardedMiningEquivalence it runs under the CI race job
// (go test -race ./...), so the shared sketch cache is raced on every PR.
func TestAnchoredTopKMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	trials := 4
	if testing.Short() {
		trials = 2
	}
	shardCounts := []int{1, 2, 7}
	strategies := []CountStrategy{CountScan, CountTIDList, CountBitmap, CountAuto}
	anchors := []string{"c0", "c1.0", "c0.1.1"} // level 1, 2 and leaf anchors
	for trial := 0; trial < trials; trial++ {
		db, tree := randomDataset(rng)
		base := Config{
			Measure:     measure.Kulczynski,
			Gamma:       0.3,
			Epsilon:     0.1,
			MinSupAbs:   []int64{2, 1, 1},
			Materialize: true,
		}
		full, err := Mine(db, tree, base)
		if err != nil {
			t.Fatalf("trial %d: full mine: %v", trial, err)
		}
		for _, anchor := range anchors {
			topK := 1 + rng.Intn(4)
			want := rankedFingerprint(anchoredReference(full, tree, anchor, topK), tree)
			for _, pruning := range Levels() {
				for _, strategy := range strategies {
					for _, shards := range shardCounts {
						cfg := base
						cfg.Pruning = pruning
						cfg.Strategy = strategy
						cfg.Shards = shards
						cfg.Anchor = anchor
						cfg.AnchorTopK = topK
						res, err := Mine(db, tree, cfg)
						if err != nil {
							t.Fatalf("trial %d anchor=%q %v/%v shards=%d: %v",
								trial, anchor, pruning, strategy, shards, err)
						}
						got := rankedFingerprint(res.Patterns, tree)
						if got != want {
							t.Fatalf("trial %d: anchored %q %v/%v shards=%d diverged from exact.\nexact:\n%s\nanchored:\n%s",
								trial, anchor, pruning, strategy, shards, want, got)
						}
						if res.Stats.SketchProbes == 0 && len(full.Patterns) > 0 {
							t.Fatalf("trial %d anchor=%q: materialized anchored run probed no sketches", trial, anchor)
						}
						if res.Stats.SketchPruned+res.Stats.ExactFallbacks > res.Stats.SketchProbes {
							t.Fatalf("trial %d: sketch counters inconsistent: %d pruned + %d fallbacks > %d probes",
								trial, res.Stats.SketchPruned, res.Stats.ExactFallbacks, res.Stats.SketchProbes)
						}
						for _, p := range res.Patterns {
							if p.Confidence != 0 {
								t.Fatalf("trial %d: guaranteed mode leaked confidence %v", trial, p.Confidence)
							}
						}
					}
				}
				// Streaming fallback: no tid lists to sketch, exact filter path.
				cfg := base
				cfg.Materialize = false
				cfg.Pruning = pruning
				cfg.Anchor = anchor
				cfg.AnchorTopK = topK
				res, err := Mine(db, tree, cfg)
				if err != nil {
					t.Fatalf("trial %d anchor=%q streaming %v: %v", trial, anchor, pruning, err)
				}
				if got := rankedFingerprint(res.Patterns, tree); got != want {
					t.Fatalf("trial %d: streaming anchored %q %v diverged from exact.\nexact:\n%s\nanchored:\n%s",
						trial, anchor, pruning, want, got)
				}
				if res.Stats.SketchProbes != 0 {
					t.Fatalf("trial %d: streaming fallback reported %d sketch probes", trial, res.Stats.SketchProbes)
				}
			}
		}
	}
}

// TestAnchoredBestEffortSound pins what best-effort mode may and may not
// do: it may drop patterns the sketch estimates ruled out, but every
// pattern it does return must be a real pattern with its exact chain, must
// appear in the guaranteed answer for the same K, and must carry a
// confidence in (0, 1].
func TestAnchoredBestEffortSound(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	trials := 6
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		db, tree := randomDataset(rng)
		cfg := Config{
			Measure:     measure.Kulczynski,
			Gamma:       0.3,
			Epsilon:     0.1,
			MinSupAbs:   []int64{2, 1, 1},
			Materialize: true,
			Anchor:      "c0",
			AnchorTopK:  5,
			SketchK:     4, // tiny signatures force wide brackets and real estimating
		}
		exact, err := Mine(db, tree, cfg)
		if err != nil {
			t.Fatal(err)
		}
		exactSet := make(map[string]bool)
		for _, p := range exact.Patterns {
			exactSet[rankedFingerprint([]Pattern{p}, tree)] = true
		}
		c := cfg
		c.AnchorMode = AnchorBestEffort
		approx, err := Mine(db, tree, c)
		if err != nil {
			t.Fatal(err)
		}
		if len(approx.Patterns) > len(exact.Patterns) {
			t.Fatalf("trial %d: best-effort invented patterns: %d > %d exact",
				trial, len(approx.Patterns), len(exact.Patterns))
		}
		for _, p := range approx.Patterns {
			conf := p.Confidence
			p.Confidence = 0
			if !exactSet[rankedFingerprint([]Pattern{p}, tree)] {
				t.Fatalf("trial %d: best-effort returned a pattern outside the exact top-K:\n%s",
					trial, p.Format(tree))
			}
			if conf <= 0 || conf > 1 {
				t.Fatalf("trial %d: best-effort confidence %v outside (0, 1]", trial, conf)
			}
		}
	}
}

// TestAnchoredUnknownAnchor pins the error contract for anchors that name
// no taxonomy item.
func TestAnchoredUnknownAnchor(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db, tree := randomDataset(rng)
	cfg := DefaultConfig(tree.Height())
	cfg.Anchor = "no-such-item"
	cfg.AnchorTopK = 3
	_, err := Mine(db, tree, cfg)
	if !errors.Is(err, ErrUnknownAnchor) {
		t.Fatalf("unknown anchor: got %v, want ErrUnknownAnchor", err)
	}
}

// TestAnchoredConfigValidation covers the anchored knob surface of
// Config.Validate.
func TestAnchoredConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.AnchorTopK = 3 },                  // anchor_top_k without anchor
		func(c *Config) { c.AnchorMode = AnchorBestEffort },   // anchor_mode without anchor
		func(c *Config) { c.SketchK = 64 },                    // sketch_k without anchor
		func(c *Config) { c.Anchor = "x" },                    // anchor without anchor_top_k
		func(c *Config) { c.Anchor = "x"; c.AnchorTopK = -1 }, // bad K
		func(c *Config) { c.Anchor = "x"; c.AnchorTopK = 2; c.AnchorMode = "psychic" },
		func(c *Config) { c.Anchor = "x"; c.AnchorTopK = 2; c.SketchK = -5 },
		func(c *Config) { c.Anchor = "x"; c.AnchorTopK = 2; c.TopK = 4 }, // mutually exclusive
	}
	for i, mutate := range bad {
		cfg := DefaultConfig(3)
		mutate(&cfg)
		if err := cfg.Validate(3, 100); err == nil {
			t.Fatalf("case %d: invalid anchored config validated: %+v", i, cfg)
		}
	}
	cfg := DefaultConfig(3)
	cfg.Anchor = "x"
	cfg.AnchorTopK = 2
	cfg.AnchorMode = AnchorBestEffort
	cfg.SketchK = 128
	if err := cfg.Validate(3, 100); err != nil {
		t.Fatalf("valid anchored config rejected: %v", err)
	}
}

// TestAnchoredCanonicalKey pins cache-key behavior: non-anchored keys keep
// their exact pre-anchor bytes, anchored keys separate by anchor, K, mode
// and sketch size, and "" normalizes to guaranteed.
func TestAnchoredCanonicalKey(t *testing.T) {
	plain := DefaultConfig(3)
	if k := plain.CanonicalKey(); strings.Contains(k, "anchor") {
		t.Fatalf("non-anchored key mentions anchor: %s", k)
	}
	a := DefaultConfig(3)
	a.Anchor = "x"
	a.AnchorTopK = 3
	b := a
	b.AnchorMode = AnchorGuaranteed
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Fatalf("default mode and explicit guaranteed split the cache:\n%s\n%s", a.CanonicalKey(), b.CanonicalKey())
	}
	c := a
	c.AnchorMode = AnchorBestEffort
	if a.CanonicalKey() == c.CanonicalKey() {
		t.Fatal("best-effort shares a cache entry with guaranteed")
	}
	d := a
	d.AnchorTopK = 4
	if a.CanonicalKey() == d.CanonicalKey() {
		t.Fatal("different AnchorTopK shares a cache entry")
	}
}

// TestAnchoredSketchPersistence checks the warm-start file: an anchored run
// saves sketches next to the dataset, a fresh engine loads them and answers
// identically, and a corrupt or mismatched file is rebuilt, not trusted.
func TestAnchoredSketchPersistence(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	db, tree := randomDataset(rng)
	path := filepath.Join(t.TempDir(), "sketches.bin")
	cfg := Config{
		Measure:     measure.Kulczynski,
		Gamma:       0.3,
		Epsilon:     0.1,
		MinSupAbs:   []int64{2, 1, 1},
		Materialize: true,
		Anchor:      "c0",
		AnchorTopK:  3,
	}
	eng := NewEngine(db, tree)
	eng.SetSketchPath(path)
	res, err := eng.Mine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := rankedFingerprint(res.Patterns, tree)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("anchored run left no sketch file: %v", err)
	}

	// A fresh engine over the same dataset warm-starts from the file.
	eng2 := NewEngine(db, tree)
	eng2.SetSketchPath(path)
	res2, err := eng2.Mine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := rankedFingerprint(res2.Patterns, tree); got != want {
		t.Fatalf("warm-started engine diverged.\ncold:\n%s\nwarm:\n%s", want, got)
	}

	// Corruption is detected and the sketches rebuilt.
	if err := os.WriteFile(path, []byte("definitely not a sketch file"), 0o644); err != nil {
		t.Fatal(err)
	}
	eng3 := NewEngine(db, tree)
	eng3.SetSketchPath(path)
	res3, err := eng3.Mine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := rankedFingerprint(res3.Patterns, tree); got != want {
		t.Fatalf("corrupt-file rebuild diverged.\ncold:\n%s\nrebuilt:\n%s", want, got)
	}

	// A file built from a different dataset fails the fingerprint check.
	db2, tree2 := randomDataset(rng)
	eng4 := NewEngine(db2, tree2)
	eng4.SetSketchPath(path)
	full, err := Mine(db2, tree2, Config{
		Measure: measure.Kulczynski, Gamma: 0.3, Epsilon: 0.1,
		MinSupAbs: []int64{2, 1, 1}, Materialize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res4, err := eng4.Mine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantOther := rankedFingerprint(anchoredReference(full, tree2, "c0", 3), tree2)
	if got := rankedFingerprint(res4.Patterns, tree2); got != wantOther {
		t.Fatalf("foreign sketch file poisoned the run.\nexact:\n%s\nanchored:\n%s", wantOther, got)
	}
}

// TestAnchoredShardedSource covers anchored mining over an explicit
// ShardedSource, where sketch keys fold the shard index in.
func TestAnchoredShardedSource(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	db, tree := randomDataset(rng)
	base := Config{
		Measure:     measure.Kulczynski,
		Gamma:       0.3,
		Epsilon:     0.1,
		MinSupAbs:   []int64{2, 1, 1},
		Materialize: true,
	}
	full, err := Mine(db, tree, base)
	if err != nil {
		t.Fatal(err)
	}
	want := rankedFingerprint(anchoredReference(full, tree, "c1", 3), tree)
	cfg := base
	cfg.Anchor = "c1"
	cfg.AnchorTopK = 3
	res, err := Mine(txdb.PartitionSource(db, 3), tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := rankedFingerprint(res.Patterns, tree); got != want {
		t.Fatalf("anchored over ShardedSource diverged.\nexact:\n%s\nanchored:\n%s", want, got)
	}
	if res.Stats.Shards != 3 {
		t.Fatalf("ShardedSource anchored run reports %d shards, want 3", res.Stats.Shards)
	}
}
