package core

import (
	"fmt"
	"math"
	"runtime"

	"github.com/flipper-mining/flipper/internal/measure"
)

// PruningLevel selects how much of the Flipper machinery is active. Levels
// are cumulative and mirror the four curves of the paper's Figure 8.
type PruningLevel int8

const (
	// Basic is the baseline: complete per-level Apriori with support-only
	// pruning, flipping chains assembled by post-processing. It represents
	// the prior-art pipeline the paper compares against.
	Basic PruningLevel = iota
	// Flipping gates vertical growth on chain-alive parents and frees
	// non-flipping itemsets once two consecutive rows are complete.
	Flipping
	// FlippingTPG adds the termination-of-pattern-growth check (Theorem 3).
	FlippingTPG
	// Full adds single-item based pruning (Theorem 2, Corollary 2).
	Full
)

// Levels lists all pruning levels in ascending strength.
func Levels() []PruningLevel { return []PruningLevel{Basic, Flipping, FlippingTPG, Full} }

func (p PruningLevel) String() string {
	switch p {
	case Basic:
		return "basic"
	case Flipping:
		return "flipping"
	case FlippingTPG:
		return "flipping+tpg"
	case Full:
		return "flipping+tpg+sibp"
	default:
		return fmt.Sprintf("pruning(%d)", int(p))
	}
}

// ParsePruningLevel converts a level name produced by String (aliases:
// "naive" for flipping-only, "full" for everything).
func ParsePruningLevel(s string) (PruningLevel, error) {
	switch s {
	case "basic":
		return Basic, nil
	case "flipping", "naive":
		return Flipping, nil
	case "flipping+tpg", "tpg":
		return FlippingTPG, nil
	case "flipping+tpg+sibp", "full", "sibp":
		return Full, nil
	default:
		return 0, fmt.Errorf("core: unknown pruning level %q", s)
	}
}

// usesFlipping reports whether vertical growth is gated on chain-alive
// parents.
func (p PruningLevel) usesFlipping() bool { return p >= Flipping }

// usesTPG reports whether the Theorem-3 termination check runs.
func (p PruningLevel) usesTPG() bool { return p >= FlippingTPG }

// usesSIBP reports whether single-item based pruning runs.
func (p PruningLevel) usesSIBP() bool { return p >= Full }

// CountStrategy selects how candidate supports are counted.
type CountStrategy int8

const (
	// CountScan is the paper-faithful strategy: one sequential pass over the
	// (level-view of the) database per cell, probing a candidate hash table
	// with the k-subsets of each transaction.
	CountScan CountStrategy = iota
	// CountTIDList intersects per-item transaction-ID lists (Eclat-style);
	// an ablation showing the trade-off the paper leaves to future work.
	CountTIDList
	// CountAuto chooses between scan, tid-list and bitmap per cell with a
	// simple cost model: scans pay one subset enumeration per distinct
	// transaction, tid-lists pay one k-way sorted intersection per
	// candidate, bitmaps pay k words per 64 distinct transactions per
	// candidate (plus a one-time per-level build). Scans win when candidates
	// dwarf the database, tid-lists when a few candidates face sparse
	// lists, bitmaps when many candidates face a dense level.
	CountAuto
	// CountBitmap ANDs per-item bit vectors over the distinct weighted
	// transactions of the level view and pop-counts the result against the
	// weight vector. Vectors are built lazily per level and cached on the
	// miner.
	CountBitmap
)

func (s CountStrategy) String() string {
	switch s {
	case CountScan:
		return "scan"
	case CountTIDList:
		return "tidlist"
	case CountAuto:
		return "auto"
	case CountBitmap:
		return "bitmap"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// ParseCountStrategy converts a strategy name produced by String.
func ParseCountStrategy(s string) (CountStrategy, error) {
	switch s {
	case "scan":
		return CountScan, nil
	case "tidlist", "tid":
		return CountTIDList, nil
	case "auto":
		return CountAuto, nil
	case "bitmap", "bits":
		return CountBitmap, nil
	default:
		return 0, fmt.Errorf("core: unknown counting strategy %q", s)
	}
}

// Config parameterizes a mining run. The zero value is not valid; start from
// DefaultConfig.
type Config struct {
	// Measure is the null-invariant correlation measure (default Kulczynski,
	// as in the paper's experiments).
	Measure measure.Measure `json:"measure"`
	// Gamma is the positive-correlation threshold γ (label positive when
	// Corr ≥ γ).
	Gamma float64 `json:"gamma"`
	// Epsilon is the negative-correlation threshold ε (label negative when
	// Corr ≤ ε). Must be strictly below Gamma.
	Epsilon float64 `json:"epsilon"`
	// MinSup holds per-level minimum supports as fractions of the number of
	// transactions, indexed by level-1 (MinSup[0] is level 1). Length must
	// equal the taxonomy height. Ignored when MinSupAbs is set.
	MinSup []float64 `json:"min_sup,omitempty"`
	// MinSupAbs optionally holds per-level absolute minimum supports.
	MinSupAbs []int64 `json:"min_sup_abs,omitempty"`
	// Pruning selects the pruning level (default Full).
	Pruning PruningLevel `json:"pruning"`
	// Strategy selects the support-counting implementation.
	Strategy CountStrategy `json:"strategy"`
	// MaxK caps the itemset size explored; 0 means bounded only by the data
	// (max transaction width and level-1 fanout).
	MaxK int `json:"max_k,omitempty"`
	// Parallelism is the number of counting workers; 0 means GOMAXPROCS.
	// It also caps the sharded fan-out (see Shards): a worker pool of this
	// size runs however many shards there are.
	Parallelism int `json:"parallelism,omitempty"`
	// Shards partitions the transaction database into that many contiguous
	// shards and makes every counting backend shard-parallel: a bounded
	// pool of workers counts the shards into private scratch, and the
	// partial support vectors are merged deterministically — mined output
	// is byte-identical to the unsharded run. 0 or 1 disables partitioning.
	// Only in-memory databases can be partitioned in place; to shard a
	// disk-resident dataset, mine a txdb.ShardedSource composed of per-shard
	// FileSources (whose shard count then takes precedence over this knob).
	Shards int `json:"shards,omitempty"`
	// Materialize keeps per-level generalized views of the database in
	// memory (with duplicate transactions merged). Disable to stream from
	// the source on every scan, trading time for memory — the paper's
	// disk-resident mode. CountTIDList requires materialized views.
	Materialize bool `json:"materialize"`
	// KeepCellStats records per-cell statistics in the result.
	KeepCellStats bool `json:"keep_cell_stats,omitempty"`
	// TopK, when positive, sorts patterns by descending flip gap (the
	// smallest |Corr(h) − Corr(h+1)| along the chain) and keeps the K
	// "most flipping" ones — the extension sketched in the paper's
	// future-work section.
	TopK int `json:"top_k,omitempty"`

	// Anchor, when set, switches the run into anchored search: instead of
	// mining every flipping pattern, the engine searches only patterns whose
	// generalization chain contains the named taxonomy node at its level, and
	// returns the AnchorTopK best by descending flip gap. Anchored search
	// prunes candidates whose sketch support upper bound cannot reach the
	// frequency threshold, the required label, or the current top-K heap, and
	// exact-counts only the survivors (Stats.SketchProbes / SketchPruned /
	// ExactFallbacks). Mutually exclusive with TopK (use AnchorTopK).
	Anchor string `json:"anchor,omitempty"`
	// AnchorTopK is how many anchored patterns to return; required (≥ 1)
	// when Anchor is set.
	AnchorTopK int `json:"anchor_top_k,omitempty"`
	// AnchorMode selects the anchored accuracy contract: "" or "guaranteed"
	// (the returned ranking is provably equal to filtering and ranking the
	// full exact mine — sketches only skip work they can prove irrelevant)
	// or "best_effort" (sketch estimates also prune, trading recall for
	// latency; each returned pattern carries a sketch-derived Confidence).
	AnchorMode string `json:"anchor_mode,omitempty"`
	// SketchK is the per-item bottom-k signature size anchored search probes
	// (0 = sketch.DefaultK). Larger sketches bound supports tighter — once
	// every tid list fits, the bounds are exact and best-effort loses
	// nothing — at ~8 bytes per item per k of memory.
	SketchK int `json:"sketch_k,omitempty"`
}

// Anchored mode names accepted by AnchorMode.
const (
	AnchorGuaranteed = "guaranteed"
	AnchorBestEffort = "best_effort"
)

// DefaultConfig returns the paper's default synthetic-experiment settings
// for a taxonomy of the given height: γ=0.3, ε=0.1, Kulczynski, full pruning
// and the thr-profile-like decreasing supports (1%, 0.1%, 0.05%, 0.01%, …).
func DefaultConfig(height int) Config {
	sup := make([]float64, height)
	defaults := []float64{0.01, 0.001, 0.0005, 0.0001}
	for h := range sup {
		if h < len(defaults) {
			sup[h] = defaults[h]
		} else {
			sup[h] = defaults[len(defaults)-1]
		}
	}
	return Config{
		Measure:     measure.Kulczynski,
		Gamma:       0.3,
		Epsilon:     0.1,
		MinSup:      sup,
		Pruning:     Full,
		Strategy:    CountScan,
		Materialize: true,
	}
}

// Validate checks the configuration against a taxonomy of the given height
// and a database of n transactions without running a mine — the early
// rejection path for services that accept configurations over the wire.
func (c *Config) Validate(height, n int) error {
	_, err := c.validate(height, n)
	return err
}

// validate checks the configuration against a taxonomy of the given height
// and database size, returning the resolved absolute per-level supports
// (indexed by level, entry 0 unused).
func (c *Config) validate(height, n int) ([]int64, error) {
	if height < 2 {
		return nil, fmt.Errorf("core: flipping patterns need a taxonomy of height ≥ 2, got %d", height)
	}
	if !c.Measure.Valid() {
		return nil, fmt.Errorf("core: invalid measure %v", c.Measure)
	}
	if !(c.Gamma > 0 && c.Gamma <= 1) {
		return nil, fmt.Errorf("core: gamma %v out of (0, 1]", c.Gamma)
	}
	if c.Epsilon < 0 || c.Epsilon >= c.Gamma {
		return nil, fmt.Errorf("core: epsilon %v must be in [0, gamma)", c.Epsilon)
	}
	if c.MaxK < 0 {
		return nil, fmt.Errorf("core: MaxK %d negative", c.MaxK)
	}
	if c.Parallelism < 0 {
		return nil, fmt.Errorf("core: parallelism %d negative", c.Parallelism)
	}
	if c.Shards < 0 {
		return nil, fmt.Errorf("core: shards %d negative", c.Shards)
	}
	if c.Strategy < CountScan || c.Strategy > CountBitmap {
		return nil, fmt.Errorf("core: unknown counting strategy %v", c.Strategy)
	}
	if c.Strategy != CountScan && !c.Materialize {
		return nil, fmt.Errorf("core: %v counting requires materialized views", c.Strategy)
	}
	if c.Anchor == "" {
		if c.AnchorTopK != 0 {
			return nil, fmt.Errorf("core: anchor_top_k %d requires an anchor", c.AnchorTopK)
		}
		if c.AnchorMode != "" {
			return nil, fmt.Errorf("core: anchor_mode %q requires an anchor", c.AnchorMode)
		}
		if c.SketchK != 0 {
			return nil, fmt.Errorf("core: sketch_k %d requires an anchor", c.SketchK)
		}
	} else {
		if c.AnchorTopK < 1 {
			return nil, fmt.Errorf("core: anchored search needs anchor_top_k ≥ 1, got %d", c.AnchorTopK)
		}
		if c.AnchorMode != "" && c.AnchorMode != AnchorGuaranteed && c.AnchorMode != AnchorBestEffort {
			return nil, fmt.Errorf("core: unknown anchor_mode %q (want %q or %q)", c.AnchorMode, AnchorGuaranteed, AnchorBestEffort)
		}
		if c.SketchK < 0 {
			return nil, fmt.Errorf("core: sketch_k %d negative", c.SketchK)
		}
		if c.TopK != 0 {
			return nil, fmt.Errorf("core: top_k and anchor are mutually exclusive (use anchor_top_k)")
		}
	}
	abs := make([]int64, height+1)
	switch {
	case c.MinSupAbs != nil:
		if len(c.MinSupAbs) != height {
			return nil, fmt.Errorf("core: MinSupAbs has %d levels, taxonomy has %d", len(c.MinSupAbs), height)
		}
		for h := 1; h <= height; h++ {
			v := c.MinSupAbs[h-1]
			if v < 1 {
				return nil, fmt.Errorf("core: MinSupAbs[%d] = %d, want ≥ 1", h-1, v)
			}
			abs[h] = v
		}
	case c.MinSup != nil:
		if len(c.MinSup) != height {
			return nil, fmt.Errorf("core: MinSup has %d levels, taxonomy has %d", len(c.MinSup), height)
		}
		for h := 1; h <= height; h++ {
			f := c.MinSup[h-1]
			if f < 0 || f > 1 {
				return nil, fmt.Errorf("core: MinSup[%d] = %v out of [0, 1]", h-1, f)
			}
			v := int64(math.Ceil(f * float64(n)))
			if v < 1 {
				v = 1
			}
			abs[h] = v
		}
	default:
		return nil, fmt.Errorf("core: one of MinSup or MinSupAbs is required")
	}
	return abs, nil
}

// workers resolves the counting parallelism.
func (c *Config) workers() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}
