package core_test

// Cancellation tests live in an external test package so they can drive the
// engine through the dense benchmark workload in internal/experiments
// (which itself imports core).

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/flipper-mining/flipper/internal/core"
	"github.com/flipper-mining/flipper/internal/experiments"
	"github.com/flipper-mining/flipper/internal/measure"
	"github.com/flipper-mining/flipper/internal/taxonomy"
	"github.com/flipper-mining/flipper/internal/txdb"
)

func denseCfg(strategy core.CountStrategy) core.Config {
	return core.Config{
		Measure:     measure.Kulczynski,
		Gamma:       0.3,
		Epsilon:     0.1,
		MinSupAbs:   []int64{2, 1},
		Pruning:     core.Full,
		Strategy:    strategy,
		Materialize: true,
	}
}

func denseWorkload(t *testing.T, n int) (*txdb.DB, *taxonomy.Tree) {
	t.Helper()
	db, tree, err := experiments.DenseWorkload(n, 10, 8, 10, 11)
	if err != nil {
		t.Fatal(err)
	}
	return db, tree
}

// TestCancellationLatency is the acceptance property of the checkpoint
// design: a CPU-bound mine over a dense workload must observe cancellation
// and return within 100ms. The workload escalates until the mine is still
// running when the cancel fires, so a fast machine cannot make the test
// vacuous.
func TestCancellationLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const bound = 100 * time.Millisecond
	for _, n := range []int{6000, 24000, 96000} {
		db, tree := denseWorkload(t, n)
		ctx, cancel := context.WithCancel(context.Background())
		type outcome struct {
			err     error
			latency time.Duration
		}
		res := make(chan outcome, 1)
		var cancelledAt time.Time
		go func() {
			_, err := core.MineContext(ctx, db, tree, denseCfg(core.CountScan))
			res <- outcome{err: err, latency: time.Since(cancelledAt)}
		}()
		time.Sleep(25 * time.Millisecond)
		cancelledAt = time.Now()
		cancel()
		out := <-res
		if out.err == nil {
			// The mine beat the cancel; try a workload large enough that it
			// cannot.
			continue
		}
		if !errors.Is(out.err, context.Canceled) {
			t.Fatalf("n=%d: err = %v, want wrapped context.Canceled", n, out.err)
		}
		if out.latency > bound {
			t.Fatalf("n=%d: mine took %s to observe cancellation, want < %s", n, out.latency, bound)
		}
		return
	}
	t.Fatal("every workload finished before the cancel fired; latency was never measured")
}

// TestMineContextPreCancelled pins the fast path: an already-cancelled
// context aborts before any data preparation.
func TestMineContextPreCancelled(t *testing.T) {
	db, tree := denseWorkload(t, 200)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := core.MineContext(ctx, db, tree, denseCfg(core.CountScan)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}

// TestMineContextDeadline pins that a deadline surfaces as
// context.DeadlineExceeded, distinguishable from an explicit cancel.
func TestMineContextDeadline(t *testing.T) {
	db, tree := denseWorkload(t, 24000)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := core.MineContext(ctx, db, tree, denseCfg(core.CountScan))
	if err == nil {
		t.Skip("mine finished inside a 10ms deadline; nothing to assert")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapped context.DeadlineExceeded", err)
	}
}

// TestMineContextCancelAllStrategies drives every counting backend through a
// cancelled run: each must abort with the context error, not hang or return
// partial results.
func TestMineContextCancelAllStrategies(t *testing.T) {
	db, tree := denseWorkload(t, 6000)
	for _, strategy := range []core.CountStrategy{core.CountScan, core.CountTIDList, core.CountBitmap} {
		for _, shards := range []int{0, 4} {
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() {
				cfg := denseCfg(strategy)
				cfg.Shards = shards
				res, err := core.MineContext(ctx, db, tree, cfg)
				if err == nil && res == nil {
					err = errors.New("nil result without error")
				}
				done <- err
			}()
			time.Sleep(10 * time.Millisecond)
			cancel()
			select {
			case err := <-done:
				// A fast run may legitimately finish before the cancel.
				if err != nil && !errors.Is(err, context.Canceled) {
					t.Fatalf("%v shards=%d: err = %v, want nil or context.Canceled", strategy, shards, err)
				}
			case <-time.After(10 * time.Second):
				t.Fatalf("%v shards=%d: mine hung after cancel", strategy, shards)
			}
		}
	}
}

// TestEpsilonSweepContextCancel pins that a sweep aborts between steps.
func TestEpsilonSweepContextCancel(t *testing.T) {
	db, tree := denseWorkload(t, 6000)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := core.EpsilonSweepContext(ctx, db, tree, denseCfg(core.CountScan),
			[]float64{0.29, 0.25, 0.2, 0.15, 0.1, 0.05})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want nil or context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("sweep hung after cancel")
	}
}

// TestSuggestEpsilonContextCancel pins that the ε bisection aborts when its
// context is cancelled mid-search.
func TestSuggestEpsilonContextCancel(t *testing.T) {
	db, tree := denseWorkload(t, 6000)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, _, err := core.SuggestEpsilonContext(ctx, db, tree, denseCfg(core.CountScan), 10)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want nil or context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("bisection hung after cancel")
	}
}
