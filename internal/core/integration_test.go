package core

import (
	"errors"
	"testing"

	"github.com/flipper-mining/flipper/internal/dict"
	"github.com/flipper-mining/flipper/internal/itemset"
	"github.com/flipper-mining/flipper/internal/measure"
	"github.com/flipper-mining/flipper/internal/taxonomy"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// tripleScenario plants a 3-itemset flipping pattern {la, lb, lc} across
// three categories with chain (+,−,+):
//
//	BOTH (2s×): {la, lb, lc}     — the pattern itself
//	PA  (20s×): {sa, xb, xc}     — midA without midB/midC, all roots together
//	PB  (20s×): {xa, sb, xc}
//	PC  (20s×): {xa, xb, sc}
//
// Root triple: every block holds one leaf per root → Kulc 1 (+).
// Mid triple: co-occurs only in BOTH → 2s/22s ≈ 0.091 (−).
// Leaf triple: Kulc 1 (+).
func tripleScenario(t *testing.T, s int) (*txdb.DB, *taxonomy.Tree) {
	t.Helper()
	b := taxonomy.NewBuilder(nil)
	for _, p := range [][]string{
		{"A", "A.m", "la"}, {"A", "A.m", "sa"}, {"A", "A.x", "xa"},
		{"B", "B.m", "lb"}, {"B", "B.m", "sb"}, {"B", "B.x", "xb"},
		{"C", "C.m", "lc"}, {"C", "C.m", "sc"}, {"C", "C.x", "xc"},
	} {
		if err := b.AddPath(p...); err != nil {
			t.Fatal(err)
		}
	}
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	db := txdb.New(tree.Dict())
	emit := func(n int, names ...string) {
		for i := 0; i < n; i++ {
			db.AddNames(names...)
		}
	}
	emit(2*s, "la", "lb", "lc")
	emit(20*s, "sa", "xb", "xc")
	emit(20*s, "xa", "sb", "xc")
	emit(20*s, "xa", "xb", "sc")
	return db, tree
}

func TestPlantedTriplePattern(t *testing.T) {
	db, tree := tripleScenario(t, 2)
	cfg := Config{
		Measure: measure.Kulczynski, Gamma: 0.5, Epsilon: 0.1,
		MinSupAbs: []int64{1, 1, 1}, Materialize: true,
	}
	for _, pruning := range Levels() {
		cfg.Pruning = pruning
		res, err := Mine(db, tree, cfg)
		if err != nil {
			t.Fatalf("%v: %v", pruning, err)
		}
		var triple *Pattern
		for i := range res.Patterns {
			if res.Patterns[i].K() == 3 {
				if triple != nil {
					t.Fatalf("%v: more than one triple pattern", pruning)
				}
				triple = &res.Patterns[i]
			}
		}
		if triple == nil {
			t.Fatalf("%v: planted triple not found (%d patterns)", pruning, len(res.Patterns))
		}
		if got := names(tree, triple.Leaf); got != "la,lb,lc" {
			t.Fatalf("%v: triple = {%s}", pruning, got)
		}
		wantLabels := []Label{LabelPositive, LabelNegative, LabelPositive}
		for i, li := range triple.Chain {
			if li.Label != wantLabels[i] {
				t.Errorf("%v: level %d label %v, want %v", pruning, li.Level, li.Label, wantLabels[i])
			}
		}
		// The pairwise sub-patterns flip too in this construction.
		pairs := 0
		for _, p := range res.Patterns {
			if p.K() == 2 {
				pairs++
			}
		}
		if pairs != 3 {
			t.Errorf("%v: pair patterns = %d, want 3", pruning, pairs)
		}
	}
}

// TestTruncatedTaxonomyQuery exercises the paper's level-subset queries
// (Section 2.2): truncating a 3-level taxonomy to levels {1,3} re-bases the
// flipping definition onto the two remaining levels.
func TestTruncatedTaxonomyQuery(t *testing.T) {
	// In the paper toy, the full chain is + − + over levels 1..3. Dropping
	// level 2 leaves + at level 1 and + at the leaves — NOT flipping — so
	// {a11, b11} must vanish on the truncated tree.
	db, tree := paperToy(t)
	trunc, leafMap, err := tree.Truncate([]int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	tdb := db.MapLeaves(leafMap)
	cfg := Config{
		Measure: measure.Kulczynski, Gamma: 0.6, Epsilon: 0.35,
		MinSupAbs: []int64{1, 1}, Pruning: Full, Materialize: true,
	}
	res, err := Mine(tdb, trunc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Patterns {
		if names(trunc, p.Leaf) == "a11,b11" {
			t.Fatal("{a11,b11} reported as flipping on levels {1,3}, but both levels are positive")
		}
	}

	// Conversely, truncating to {2,3} keeps the − + tail: the pattern
	// survives as a 2-level flip.
	trunc23, leafMap23, err := tree.Truncate([]int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	tdb23 := db.MapLeaves(leafMap23)
	res23, err := Mine(tdb23, trunc23, cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range res23.Patterns {
		if names(trunc23, p.Leaf) == "a11,b11" {
			found = true
			if p.Chain[0].Label != LabelNegative || p.Chain[1].Label != LabelPositive {
				t.Errorf("truncated chain labels: %v %v", p.Chain[0].Label, p.Chain[1].Label)
			}
		}
	}
	if !found {
		t.Fatal("{a11,b11} lost on levels {2,3} although its tail flips")
	}
}

// failingSource fails every Scan after the first, simulating a disk source
// that dies mid-run; Mine must surface the error, not partial results.
type failingSource struct {
	db    *txdb.DB
	calls int
}

var errSentinel = errors.New("injected source failure")

func (f *failingSource) Scan(fn func(tx itemset.Set) error) error {
	f.calls++
	if f.calls > 1 {
		return errSentinel
	}
	return f.db.Scan(fn)
}
func (f *failingSource) Len() int               { return f.db.Len() }
func (f *failingSource) Dict() *dict.Dictionary { return f.db.Dict() }

func TestErrorPropagationFromSource(t *testing.T) {
	db, tree := paperToy(t)
	src := &failingSource{db: db}
	cfg := toyConfig()
	if _, err := Mine(src, tree, cfg); err == nil {
		t.Fatal("failing source did not surface an error")
	}
	if !errors.Is(errSentinel, errSentinel) {
		t.Fatal("sentinel identity broken")
	}
}

// TestEmptyDatabase mines an empty database: no patterns, no panic.
func TestEmptyDatabase(t *testing.T) {
	_, tree := paperToy(t)
	empty := txdb.New(tree.Dict())
	cfg := toyConfig()
	res, err := Mine(empty, tree, cfg)
	if err != nil {
		t.Fatalf("empty database: %v", err)
	}
	if len(res.Patterns) != 0 {
		t.Errorf("patterns from empty database: %d", len(res.Patterns))
	}
}

// TestSingleCategory: all items under one level-1 node can never form a
// flipping pattern (distinct-roots requirement).
func TestSingleCategory(t *testing.T) {
	b := taxonomy.NewBuilder(nil)
	for _, p := range [][]string{{"only", "m1", "l1"}, {"only", "m1", "l2"}, {"only", "m2", "l3"}} {
		if err := b.AddPath(p...); err != nil {
			t.Fatal(err)
		}
	}
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	db := txdb.New(tree.Dict())
	for i := 0; i < 20; i++ {
		db.AddNames("l1", "l2", "l3")
	}
	cfg := Config{
		Measure: measure.Kulczynski, Gamma: 0.5, Epsilon: 0.1,
		MinSupAbs: []int64{1, 1, 1}, Pruning: Full, Materialize: true,
	}
	res, err := Mine(db, tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 0 {
		t.Errorf("single-category data produced %d patterns", len(res.Patterns))
	}
}
