package core

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/flipper-mining/flipper/internal/taxonomy"
)

// JSON hooks: the wire forms shared by the flipper CLI's -json-api mode and
// the flipperd service, plus the canonical cache key for configurations.

// MarshalJSON encodes the pruning level by its canonical name.
func (p PruningLevel) MarshalJSON() ([]byte, error) {
	if p < Basic || p > Full {
		return nil, fmt.Errorf("core: cannot marshal pruning level %d", int(p))
	}
	return []byte(`"` + p.String() + `"`), nil
}

// UnmarshalJSON accepts any spelling ParsePruningLevel accepts.
func (p *PruningLevel) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	v, err := ParsePruningLevel(name)
	if err != nil {
		return err
	}
	*p = v
	return nil
}

// MarshalJSON encodes the counting strategy by its canonical name.
func (s CountStrategy) MarshalJSON() ([]byte, error) {
	if s < CountScan || s > CountBitmap {
		return nil, fmt.Errorf("core: cannot marshal counting strategy %d", int(s))
	}
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON accepts any spelling ParseCountStrategy accepts.
func (s *CountStrategy) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	v, err := ParseCountStrategy(name)
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// CanonicalKey renders the configuration as a deterministic string covering
// exactly the fields that influence the mined output (patterns and the
// algorithmic counters in Stats). Pure execution knobs — Parallelism,
// Shards, Materialize, KeepCellStats — are excluded: they change how fast a
// run goes and how it is instrumented, never what it finds (sharded counting
// merges exact integer partial supports, so shard count cannot move a
// correlation). Two configurations with
// equal keys therefore produce identical pattern sets, which is what makes
// the key safe to use as a result-cache key.
func (c *Config) CanonicalKey() string {
	var b strings.Builder
	b.WriteString("m=")
	b.WriteString(c.Measure.String())
	b.WriteString(";g=")
	b.WriteString(strconv.FormatFloat(c.Gamma, 'g', -1, 64))
	b.WriteString(";e=")
	b.WriteString(strconv.FormatFloat(c.Epsilon, 'g', -1, 64))
	b.WriteString(";sup=")
	if c.MinSupAbs != nil {
		// MinSupAbs takes precedence over MinSup when both are set.
		b.WriteString("abs:")
		for i, v := range c.MinSupAbs {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.FormatInt(v, 10))
		}
	} else {
		b.WriteString("frac:")
		for i, v := range c.MinSup {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	b.WriteString(";p=")
	b.WriteString(c.Pruning.String())
	b.WriteString(";s=")
	b.WriteString(c.Strategy.String())
	b.WriteString(";maxk=")
	b.WriteString(strconv.Itoa(c.MaxK))
	b.WriteString(";topk=")
	b.WriteString(strconv.Itoa(c.TopK))
	if c.Anchor != "" {
		// Anchored-search identity. The mode is normalized so "" and
		// "guaranteed" — the same contract — share a cache entry; SketchK is
		// included because in best-effort mode it can change which patterns
		// are returned.
		mode := c.AnchorMode
		if mode == "" {
			mode = AnchorGuaranteed
		}
		b.WriteString(";anchor=")
		b.WriteString(c.Anchor)
		b.WriteString(";atopk=")
		b.WriteString(strconv.Itoa(c.AnchorTopK))
		b.WriteString(";amode=")
		b.WriteString(mode)
		b.WriteString(";sk=")
		b.WriteString(strconv.Itoa(c.SketchK))
	}
	return b.String()
}

// LevelJSON is the name-resolved wire form of one chain level.
type LevelJSON struct {
	Level   int      `json:"level"`
	Items   []string `json:"items"`
	Support int64    `json:"support"`
	Corr    float64  `json:"corr"`
	Label   string   `json:"label"`
}

// PatternJSON is the name-resolved wire form of one flipping pattern.
// Confidence appears only on best-effort anchored results (omitempty keeps
// every exact envelope — and every committed fixture — byte-identical).
type PatternJSON struct {
	Leaf       []string    `json:"leaf"`
	Gap        float64     `json:"gap"`
	Confidence float64     `json:"confidence,omitempty"`
	Chain      []LevelJSON `json:"chain"`
}

// StatsJSON is the wire form of a run's Stats, with the elapsed time in
// both machine (nanoseconds) and human form.
type StatsJSON struct {
	Transactions      int   `json:"transactions"`
	Height            int   `json:"height"`
	MaxK              int   `json:"max_k"`
	DBScans           int64 `json:"db_scans"`
	CandidatesCounted int64 `json:"candidates_counted"`
	SubsetPruned      int64 `json:"subset_pruned"`
	FrequentItemsets  int64 `json:"frequent_itemsets"`
	PositiveItemsets  int64 `json:"positive_itemsets"`
	NegativeItemsets  int64 `json:"negative_itemsets"`
	AliveItemsets     int64 `json:"alive_itemsets"`
	TPGBreaks         int64 `json:"tpg_breaks"`
	SIBPExcludedItems int64 `json:"sibp_excluded_items"`
	BitmapBuilds      int64 `json:"bitmap_builds"`
	BitmapWordOps     int64 `json:"bitmap_word_ops"`
	TrieNodes         int64 `json:"trie_nodes"`
	ProbesPruned      int64 `json:"probes_pruned"`
	Shards            int   `json:"shards"`
	ShardMergeNs      int64 `json:"shard_merge_ns"`
	PeakCandidates    int64 `json:"peak_candidates"`
	PeakBytes         int64 `json:"peak_bytes"`
	// Degraded is omitted when false so single-process envelopes — and every
	// golden fixture recorded before distributed mining existed — keep their
	// exact bytes.
	Degraded bool `json:"degraded,omitempty"`
	// The anchored-search counters are omitted when zero for the same
	// reason: every non-anchored envelope keeps its pre-anchor bytes.
	SketchProbes   int64  `json:"sketch_probes,omitempty"`
	SketchPruned   int64  `json:"sketch_pruned,omitempty"`
	ExactFallbacks int64  `json:"exact_fallbacks,omitempty"`
	ElapsedNS      int64  `json:"elapsed_ns"`
	Elapsed        string `json:"elapsed"`
}

// ResultJSON is the wire form of a full mining result: the envelope the
// flipperd service returns for completed mine jobs and the flipper CLI
// emits under -json-api.
type ResultJSON struct {
	PatternCount int           `json:"pattern_count"`
	Patterns     []PatternJSON `json:"patterns"`
	Stats        StatsJSON     `json:"stats"`
}

// VolatileStatsKeys lists the StatsJSON wire fields whose values depend on
// wall-clock time rather than on the mined data: two runs over the same
// input produce identical envelopes except for exactly these keys. The
// golden conformance harness (internal/golden) scrubs them before comparing
// committed fixtures; any new timing field added to StatsJSON must be listed
// here or fixtures regenerated on one machine will fail on the next.
func VolatileStatsKeys() []string {
	return []string{"elapsed", "elapsed_ns", "shard_merge_ns"}
}

// JSON converts the stats into their wire form.
func (s *Stats) JSON() StatsJSON {
	return StatsJSON{
		Transactions:      s.Transactions,
		Height:            s.Height,
		MaxK:              s.MaxK,
		DBScans:           s.DBScans,
		CandidatesCounted: s.CandidatesCounted,
		SubsetPruned:      s.SubsetPruned,
		FrequentItemsets:  s.FrequentItemsets,
		PositiveItemsets:  s.PositiveItemsets,
		NegativeItemsets:  s.NegativeItemsets,
		AliveItemsets:     s.AliveItemsets,
		TPGBreaks:         s.TPGBreaks,
		SIBPExcludedItems: s.SIBPExcludedItems,
		BitmapBuilds:      s.BitmapBuilds,
		BitmapWordOps:     s.BitmapWordOps,
		TrieNodes:         s.TrieNodes,
		ProbesPruned:      s.ProbesPruned,
		Shards:            s.Shards,
		ShardMergeNs:      s.ShardMergeNs,
		PeakCandidates:    s.PeakCandidates,
		PeakBytes:         s.PeakBytes,
		Degraded:          s.Degraded,
		SketchProbes:      s.SketchProbes,
		SketchPruned:      s.SketchPruned,
		ExactFallbacks:    s.ExactFallbacks,
		ElapsedNS:         int64(s.Elapsed),
		Elapsed:           s.Elapsed.Round(time.Microsecond).String(),
	}
}

// JSON converts one pattern into its name-resolved wire form.
func (p *Pattern) JSON(tree *taxonomy.Tree) PatternJSON {
	pj := PatternJSON{Leaf: nameSlice(tree, p.Leaf), Gap: p.Gap, Confidence: p.Confidence}
	for _, li := range p.Chain {
		pj.Chain = append(pj.Chain, LevelJSON{
			Level:   li.Level,
			Items:   nameSlice(tree, li.Items),
			Support: li.Support,
			Corr:    li.Corr,
			Label:   li.Label.String(),
		})
	}
	return pj
}

// JSON converts the result into its wire form.
func (r *Result) JSON(tree *taxonomy.Tree) ResultJSON {
	out := ResultJSON{
		PatternCount: len(r.Patterns),
		Patterns:     make([]PatternJSON, 0, len(r.Patterns)),
		Stats:        r.Stats.JSON(),
	}
	for i := range r.Patterns {
		out.Patterns = append(out.Patterns, r.Patterns[i].JSON(tree))
	}
	return out
}
