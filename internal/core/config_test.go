package core

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/flipper-mining/flipper/internal/measure"
)

// validConfig is a configuration that passes Validate(3, 100) — the base
// every rejection case below mutates.
func validConfig() Config {
	return Config{
		Measure: measure.Kulczynski, Gamma: 0.6, Epsilon: 0.35,
		MinSup: []float64{0.1, 0.1, 0.1}, Pruning: Full,
		Strategy: CountScan, Materialize: true,
	}
}

// TestValidateRejectionMessages pins every rejection path of Config.Validate
// with the exact message text: these strings travel over the wire verbatim
// ("invalid config: <msg>" in the flipperd 400 envelope, pinned again by the
// golden error fixtures), so rewording one is an API change that must show
// up in a diff here.
func TestValidateRejectionMessages(t *testing.T) {
	cases := []struct {
		name   string
		height int
		mutate func(*Config)
		want   string
	}{
		{"height below two", 1, func(c *Config) {}, "core: flipping patterns need a taxonomy of height ≥ 2, got 1"},
		{"invalid measure", 3, func(c *Config) { c.Measure = measure.Measure(99) }, "core: invalid measure"},
		{"gamma zero", 3, func(c *Config) { c.Gamma = 0 }, "core: gamma 0 out of (0, 1]"},
		{"gamma above one", 3, func(c *Config) { c.Gamma = 1.5 }, "core: gamma 1.5 out of (0, 1]"},
		{"negative epsilon", 3, func(c *Config) { c.Epsilon = -0.1 }, "core: epsilon -0.1 must be in [0, gamma)"},
		{"epsilon at gamma", 3, func(c *Config) { c.Epsilon = c.Gamma }, "core: epsilon 0.6 must be in [0, gamma)"},
		{"negative maxk", 3, func(c *Config) { c.MaxK = -1 }, "core: MaxK -1 negative"},
		{"negative parallelism", 3, func(c *Config) { c.Parallelism = -2 }, "core: parallelism -2 negative"},
		{"negative shards", 3, func(c *Config) { c.Shards = -3 }, "core: shards -3 negative"},
		{"unknown strategy", 3, func(c *Config) { c.Strategy = CountStrategy(42) }, "core: unknown counting strategy"},
		{"tidlist without views", 3, func(c *Config) { c.Strategy = CountTIDList; c.Materialize = false }, "counting requires materialized views"},
		{"bitmap without views", 3, func(c *Config) { c.Strategy = CountBitmap; c.Materialize = false }, "counting requires materialized views"},
		{"minsupabs wrong length", 3, func(c *Config) { c.MinSupAbs = []int64{1} }, "core: MinSupAbs has 1 levels, taxonomy has 3"},
		{"minsupabs below one", 3, func(c *Config) { c.MinSupAbs = []int64{1, 0, 1} }, "core: MinSupAbs[1] = 0, want ≥ 1"},
		{"minsup wrong length", 3, func(c *Config) { c.MinSup = []float64{0.1} }, "core: MinSup has 1 levels, taxonomy has 3"},
		{"minsup out of range", 3, func(c *Config) { c.MinSup = []float64{0.1, 2.0, 0.1} }, "core: MinSup[1] = 2 out of [0, 1]"},
		{"no minsup at all", 3, func(c *Config) { c.MinSup = nil; c.MinSupAbs = nil }, "core: one of MinSup or MinSupAbs is required"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := validConfig()
			tc.mutate(&cfg)
			err := cfg.Validate(tc.height, 100)
			if err == nil {
				t.Fatalf("invalid config accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("rejection message changed:\n  got  %q\n  want substring %q", err, tc.want)
			}
		})
	}
	valid := validConfig()
	if err := valid.Validate(3, 100); err != nil {
		t.Errorf("valid base config rejected: %v", err)
	}
	// MinSupAbs takes precedence over MinSup when both are set, so an
	// invalid fraction list must not be reached.
	both := validConfig()
	both.MinSupAbs = []int64{2, 2, 2}
	both.MinSup = []float64{9, 9, 9}
	if err := both.Validate(3, 100); err != nil {
		t.Errorf("MinSupAbs should shadow MinSup: %v", err)
	}
}

// TestCanonicalKeyStableAcrossFieldReordering decodes the same configuration
// from JSON documents with permuted field order and asserts the canonical
// key — the flipperd cache and single-flight identity — does not move.
// A key that depended on field order would silently split the cache.
func TestCanonicalKeyStableAcrossFieldReordering(t *testing.T) {
	docs := []string{
		`{"measure": "kulczynski", "gamma": 0.6, "epsilon": 0.35,
		  "min_sup": [0.1, 0.1, 0.1], "pruning": "flipping+tpg+sibp",
		  "strategy": "scan", "materialize": true, "top_k": 5}`,
		`{"top_k": 5, "materialize": true, "strategy": "scan",
		  "pruning": "flipping+tpg+sibp", "min_sup": [0.1, 0.1, 0.1],
		  "epsilon": 0.35, "gamma": 0.6, "measure": "kulczynski"}`,
		`{"strategy": "scan", "min_sup": [0.1, 0.1, 0.1], "measure": "kulczynski",
		  "top_k": 5, "gamma": 0.6, "pruning": "flipping+tpg+sibp",
		  "epsilon": 0.35, "materialize": true}`,
	}
	keys := make([]string, len(docs))
	for i, doc := range docs {
		var cfg Config
		if err := json.Unmarshal([]byte(doc), &cfg); err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
		keys[i] = cfg.CanonicalKey()
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] != keys[0] {
			t.Errorf("field order changed the canonical key:\n  doc 0: %s\n  doc %d: %s", keys[0], i, keys[i])
		}
	}
}

// TestCanonicalKeyDistinguishesSemanticChanges complements the reordering
// test: any change to a semantic field must move the key, or two different
// mines would share one cache slot.
func TestCanonicalKeyDistinguishesSemanticChanges(t *testing.T) {
	base := validConfig()
	mutations := map[string]func(*Config){
		"measure":  func(c *Config) { c.Measure = measure.Cosine },
		"gamma":    func(c *Config) { c.Gamma = 0.5 },
		"epsilon":  func(c *Config) { c.Epsilon = 0.2 },
		"min_sup":  func(c *Config) { c.MinSup = []float64{0.2, 0.1, 0.1} },
		"pruning":  func(c *Config) { c.Pruning = Basic },
		"strategy": func(c *Config) { c.Strategy = CountBitmap },
		"max_k":    func(c *Config) { c.MaxK = 7 },
		"top_k":    func(c *Config) { c.TopK = 3 },
	}
	seen := map[string]string{base.CanonicalKey(): "base"}
	for name, mutate := range mutations {
		cfg := base
		mutate(&cfg)
		key := cfg.CanonicalKey()
		if prev, dup := seen[key]; dup {
			t.Errorf("mutating %s collides with %s: %s", name, prev, key)
		}
		seen[key] = name
	}
}
