package core

import (
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteJSON(t *testing.T) {
	db, tree := paperToy(t)
	res, err := Mine(db, tree, toyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteJSON(&sb, tree); err != nil {
		t.Fatal(err)
	}
	var back []struct {
		Leaf  []string `json:"leaf"`
		Gap   float64  `json:"gap"`
		Chain []struct {
			Level   int      `json:"level"`
			Items   []string `json:"items"`
			Support int64    `json:"support"`
			Corr    float64  `json:"corr"`
			Label   string   `json:"label"`
		} `json:"chain"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(back) != 1 {
		t.Fatalf("patterns in JSON = %d", len(back))
	}
	p := back[0]
	if len(p.Leaf) != 2 || p.Leaf[0] != "a11" || p.Leaf[1] != "b11" {
		t.Errorf("leaf = %v", p.Leaf)
	}
	if len(p.Chain) != 3 {
		t.Fatalf("chain levels = %d", len(p.Chain))
	}
	if p.Chain[0].Label != "+" || p.Chain[1].Label != "-" || p.Chain[2].Label != "+" {
		t.Errorf("labels = %v %v %v", p.Chain[0].Label, p.Chain[1].Label, p.Chain[2].Label)
	}
	if p.Chain[1].Support != 2 {
		t.Errorf("level-2 support = %d", p.Chain[1].Support)
	}
}

func TestWriteCSV(t *testing.T) {
	db, tree := paperToy(t)
	res, err := Mine(db, tree, toyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteCSV(&sb, tree); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	// Header + one row per chain level of the single pattern.
	if len(records) != 1+3 {
		t.Fatalf("rows = %d", len(records))
	}
	if records[0][0] != "pattern" || records[0][7] != "label" {
		t.Errorf("header = %v", records[0])
	}
	if records[1][1] != "a11|b11" {
		t.Errorf("leaf cell = %q", records[1][1])
	}
	if records[2][4] != "a1|b1" || records[2][7] != "-" {
		t.Errorf("level-2 row = %v", records[2])
	}
}

func TestWriteEmptyResult(t *testing.T) {
	db, tree := paperToy(t)
	cfg := toyConfig()
	cfg.Gamma = 0.99 // nothing labels positive
	res, err := Mine(db, tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteJSON(&sb, tree); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(sb.String()) != "[]" {
		t.Errorf("empty JSON = %q", sb.String())
	}
	sb.Reset()
	if err := res.WriteCSV(&sb, tree); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "pattern,") {
		t.Errorf("empty CSV missing header: %q", sb.String())
	}
}
