package core

import (
	"github.com/flipper-mining/flipper/internal/sketch"
)

// Sketch plumbing for anchored search: per-item bottom-k signatures are
// dataset state (they depend only on the tid lists of a representation), so
// they cache in dataState next to the tid lists themselves, keyed by
// signature size. When the engine has a sketch path, unsharded builds
// persist to disk and later engines over the same dataset warm-start from
// the file — a fingerprint over the per-level single supports guards
// against trusting a file built from different data.

// sketchSet returns (building, loading, or reusing) the sketch set for the
// run's signature size.
func (m *miner) sketchSet() *sketch.Set {
	k := m.cfg.SketchK
	if k <= 0 {
		k = sketch.DefaultK
	}
	ds := m.ds
	ds.mu.Lock()
	s := ds.sketches[k]
	ds.mu.Unlock()
	if s != nil {
		return s
	}

	fp := m.sketchFingerprint()
	path := m.eng.sketchFile()
	// Persisted sketches are keyed by raw transaction IDs, which only the
	// unsharded representation uses (sharded keys fold the shard index in),
	// so the file is read and written for unsharded runs only.
	if path != "" && !m.sharded() {
		if loaded, err := sketch.LoadFile(path); err == nil &&
			loaded.K == k && loaded.Fingerprint == fp && len(loaded.Levels) == m.height+1 {
			return ds.storeSketches(k, loaded)
		}
	}
	s = m.buildSketchSet(k, fp)
	if path != "" && !m.sharded() {
		_ = s.SaveFile(path) // best-effort warm-start for the next engine
	}
	return ds.storeSketches(k, s)
}

// storeSketches publishes a built sketch set into the dataset cache; when a
// concurrent run won the race, its set wins so every run shares one copy.
func (ds *dataState) storeSketches(k int, s *sketch.Set) *sketch.Set {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.sketches == nil {
		ds.sketches = make(map[int]*sketch.Set)
	}
	if prev := ds.sketches[k]; prev != nil {
		return prev
	}
	ds.sketches[k] = s
	return s
}

// buildSketchSet runs every level's tid lists through a bottom-k builder.
// Unsharded keys are the raw transaction IDs; sharded keys fold the shard
// index into the high half so IDs stay distinct across shards.
func (m *miner) buildSketchSet(k int, fp uint64) *sketch.Set {
	H := m.height
	set := &sketch.Set{K: k, Fingerprint: fp, Levels: make([]*sketch.Level, H+1)}
	for h := 1; h <= H; h++ {
		b := sketch.NewBuilder(k)
		if m.sharded() {
			for s, lists := range m.shardTIDLists(h) {
				base := uint64(s) << 32
				for id, tids := range lists {
					for _, tid := range tids {
						b.Observe(id, base|uint64(uint32(tid)))
					}
				}
			}
		} else {
			for id, tids := range m.tidLists(h) {
				for _, tid := range tids {
					b.Observe(id, uint64(uint32(tid)))
				}
			}
		}
		set.Levels[h] = b.Finish()
	}
	return set
}

// sketchFingerprint identifies the dataset a sketch set was built from: any
// change to a level's single supports — or to the transaction count,
// height, or shard layout — changes it, so a stale sketch file on disk is
// rebuilt rather than trusted. The XOR of per-item hashes keeps the value
// independent of map iteration order.
func (m *miner) sketchFingerprint() uint64 {
	fp := sketch.Hash(uint64(m.n)<<32 ^ uint64(m.height)<<8 ^ uint64(len(m.ds.shards)))
	for h := 1; h <= m.height; h++ {
		for id, sup := range m.ds.sup1[h] {
			fp ^= sketch.Hash(uint64(h)<<56 ^ uint64(uint32(id))<<24 ^ uint64(sup))
		}
	}
	return fp
}
