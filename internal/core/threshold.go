package core

import (
	"context"
	"fmt"
	"sort"

	"github.com/flipper-mining/flipper/internal/taxonomy"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// Threshold workflow helpers, automating the guidance of the paper's
// Section 5.1 ("the user may start from setting the negative threshold just
// below γ, and gradually decrease it until the satisfactory number of
// flipping patterns is obtained") and addressing the future-work question
// of choosing γ and ε when the data expert cannot.

// EpsilonPoint is one step of an ε sweep.
type EpsilonPoint struct {
	Epsilon  float64 `json:"epsilon"`
	Patterns int     `json:"patterns"`
}

// EpsilonSweep mines with each ε in the given list (every value must be
// below cfg.Gamma) and reports the resulting pattern counts, descending ε
// first — exactly the paper's manual workflow.
func EpsilonSweep(src txdb.Source, tree *taxonomy.Tree, cfg Config, epsilons []float64) ([]EpsilonPoint, error) {
	return NewEngine(src, tree).EpsilonSweep(cfg, epsilons)
}

// EpsilonSweepContext is EpsilonSweep under a context: the sweep aborts
// between (and, through MineContext, inside) steps when ctx is done.
func EpsilonSweepContext(ctx context.Context, src txdb.Source, tree *taxonomy.Tree, cfg Config, epsilons []float64) ([]EpsilonPoint, error) {
	return NewEngine(src, tree).EpsilonSweepContext(ctx, cfg, epsilons)
}

// EpsilonSweep runs the sweep on the engine, so every step after the first
// reuses the materialized views, indexes and scratch arenas — the sweep is
// the workload engine caching was built for, since only thresholds change
// between runs.
func (e *Engine) EpsilonSweep(cfg Config, epsilons []float64) ([]EpsilonPoint, error) {
	return e.EpsilonSweepContext(context.Background(), cfg, epsilons)
}

// EpsilonSweepContext is the cancellable sweep: each step runs under ctx,
// and the loop itself re-checks ctx between steps so a sweep over many ε
// values stops at the first cancelled point.
func (e *Engine) EpsilonSweepContext(ctx context.Context, cfg Config, epsilons []float64) ([]EpsilonPoint, error) {
	if len(epsilons) == 0 {
		return nil, fmt.Errorf("core: empty epsilon list")
	}
	sorted := append([]float64(nil), epsilons...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	out := make([]EpsilonPoint, 0, len(sorted))
	for _, eps := range sorted {
		c := cfg
		c.Epsilon = eps
		res, err := e.MineContext(ctx, c)
		if err != nil {
			return nil, fmt.Errorf("core: sweep at ε=%v: %w", eps, err)
		}
		out = append(out, EpsilonPoint{Epsilon: eps, Patterns: len(res.Patterns)})
	}
	return out, nil
}

// SuggestEpsilon searches for the largest ε (most selective negative
// threshold) whose pattern count reaches at least target, bisecting within
// (0, cfg.Gamma). It returns the chosen ε and its result. When even the
// loosest ε (just below γ) yields fewer than target patterns, the loosest
// result is returned along with found=false.
//
// Lowering ε only shrinks the pattern set (fewer itemsets label negative),
// so the count is monotone in ε and bisection is sound.
func SuggestEpsilon(src txdb.Source, tree *taxonomy.Tree, cfg Config, target int) (eps float64, res *Result, found bool, err error) {
	return NewEngine(src, tree).SuggestEpsilon(cfg, target)
}

// SuggestEpsilonContext is SuggestEpsilon with cancellation: the bisection
// aborts between (and inside) probe runs when ctx is done.
func SuggestEpsilonContext(ctx context.Context, src txdb.Source, tree *taxonomy.Tree, cfg Config, target int) (eps float64, res *Result, found bool, err error) {
	return NewEngine(src, tree).SuggestEpsilonContext(ctx, cfg, target)
}

// SuggestEpsilon runs the bisection on the engine; like EpsilonSweep it
// pays the view and index builds once across all probe runs.
func (e *Engine) SuggestEpsilon(cfg Config, target int) (eps float64, res *Result, found bool, err error) {
	return e.SuggestEpsilonContext(context.Background(), cfg, target)
}

// SuggestEpsilonContext runs the bisection under ctx; each probe mine is
// cancellable at the engine's usual checkpoints.
func (e *Engine) SuggestEpsilonContext(ctx context.Context, cfg Config, target int) (eps float64, res *Result, found bool, err error) {
	if target < 1 {
		return 0, nil, false, fmt.Errorf("core: target %d must be ≥ 1", target)
	}
	const steps = 12
	lo, hi := 0.0, cfg.Gamma*0.999 // ε must stay strictly below γ
	mine := func(epsVal float64) (*Result, error) {
		c := cfg
		c.Epsilon = epsVal
		return e.MineContext(ctx, c)
	}
	best, err := mine(hi)
	if err != nil {
		return 0, nil, false, err
	}
	if len(best.Patterns) < target {
		return hi, best, false, nil
	}
	eps, res = hi, best
	for i := 0; i < steps; i++ {
		mid := (lo + hi) / 2
		r, err := mine(mid)
		if err != nil {
			return 0, nil, false, err
		}
		if len(r.Patterns) >= target {
			// mid is selective enough and still meets the target; prefer
			// the smaller ε (stronger negatives) and search below.
			eps, res = mid, r
			hi = mid
		} else {
			lo = mid
		}
	}
	return eps, res, true, nil
}
