package core

import (
	"fmt"
	"strings"
	"time"
)

// CellStat records what happened in one cell Q(h,k) of the search-space
// table; collected when Config.KeepCellStats is set.
type CellStat struct {
	H, K       int
	Candidates int // itemsets generated and counted
	Frequent   int // sup ≥ θ_h
	Positive   int // Corr ≥ γ among frequent
	Negative   int // Corr ≤ ε among frequent
	Alive      int // frequent, labeled, chain alternates up to this level
}

// Stats aggregates the cost and yield counters of one mining run. The
// candidate-memory counters reproduce the paper's Figure 9(b) comparison:
// BASIC retains every frequent itemset it ever counts, while Flipper frees
// non-flipping itemsets as rows complete.
type Stats struct {
	Transactions int
	Height       int
	MaxK         int

	// Shards is the number of transaction shards counting fanned out over
	// (1 when the run was unsharded), and ShardMergeNs the nanoseconds spent
	// merging per-shard partial support vectors into the candidate slabs —
	// the serial fraction that bounds sharded speedup (Amdahl's law).
	Shards       int
	ShardMergeNs int64

	// DBScans counts sequential passes over the (level views of the)
	// database, including the initial single-item pass.
	DBScans int64
	// CandidatesCounted is the number of itemsets whose support was counted.
	CandidatesCounted int64
	// SubsetPruned counts candidates discarded before counting because a
	// (k-1)-subset was already known to be infrequent.
	SubsetPruned int64
	// FrequentItemsets / PositiveItemsets / NegativeItemsets tally counted
	// itemsets of size ≥ 2 by outcome (complete totals only under Basic,
	// where cells hold all frequent itemsets).
	FrequentItemsets  int64
	PositiveItemsets  int64
	NegativeItemsets  int64
	AliveItemsets     int64
	TPGBreaks         int64
	SIBPExcludedItems int64

	// BitmapBuilds counts per-level bit-vector index constructions (at most
	// one per level per run — indexes are cached on the miner), and
	// BitmapWordOps the 64-bit AND/load operations spent answering bitmap
	// support queries.
	BitmapBuilds  int64
	BitmapWordOps int64

	// TrieNodes counts prefix-trie nodes allocated across all candidate
	// stores of the run, and ProbesPruned the subset probes the scan
	// counter's trie descent skipped relative to a flat C(w,k) enumeration
	// per transaction — subsets sharing no prefix with any candidate are
	// abandoned before they are enumerated.
	TrieNodes    int64
	ProbesPruned int64

	// PeakCandidates and PeakBytes track the maximum number of itemsets
	// resident at once and their estimated memory footprint.
	PeakCandidates int64
	PeakBytes      int64

	// Anchored-search counters (zero outside anchored runs). SketchProbes is
	// how many candidates were bracketed by the per-item sketches,
	// SketchPruned how many of those the bounds eliminated without an exact
	// count, and ExactFallbacks how many survived to exact tid-list counting
	// — the work the sketches failed to save.
	SketchProbes   int64
	SketchPruned   int64
	ExactFallbacks int64

	// Degraded marks a distributed run that fell back to local counting for
	// at least one shard because no worker could serve it (internal/cluster's
	// degraded mode). The patterns are still exact — local counting computes
	// the same partial sums a worker would have — but operators watching for
	// capacity loss need the flag. Always false for single-process runs.
	Degraded bool

	Elapsed time.Duration
	Cells   []CellStat

	current      int64
	currentBytes int64
}

// entryBytes estimates the resident footprint of one counted itemset in the
// slab store: 4k arena bytes for the items, 8 for the support slot, ~24 for
// the metadata record, and ~20 for the amortized share of trie nodes
// (roughly 1.3 nodes of 16 bytes per entry on realistic candidate sets).
// About half the old map representation's 96+4k (entry struct + slice
// header + hash-map slot), which is the point of the slab.
func entryBytes(k int) int64 { return 52 + 4*int64(k) }

func (s *Stats) addResident(n int, k int) {
	s.current += int64(n)
	s.currentBytes += int64(n) * entryBytes(k)
	if s.current > s.PeakCandidates {
		s.PeakCandidates = s.current
	}
	if s.currentBytes > s.PeakBytes {
		s.PeakBytes = s.currentBytes
	}
}

func (s *Stats) dropResident(n int, k int) {
	s.current -= int64(n)
	s.currentBytes -= int64(n) * entryBytes(k)
}

// String renders a one-run summary for logs and the CLI.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d tx, H=%d, maxK=%d: ", s.Transactions, s.Height, s.MaxK)
	fmt.Fprintf(&b, "%d candidates counted (%d subset-pruned), %d frequent (%d pos / %d neg, %d alive), ",
		s.CandidatesCounted, s.SubsetPruned, s.FrequentItemsets, s.PositiveItemsets, s.NegativeItemsets, s.AliveItemsets)
	fmt.Fprintf(&b, "%d scans, peak %d itemsets (%.1f MB est)",
		s.DBScans, s.PeakCandidates, float64(s.PeakBytes)/(1<<20))
	if s.TPGBreaks > 0 {
		fmt.Fprintf(&b, ", %d TPG breaks", s.TPGBreaks)
	}
	if s.SIBPExcludedItems > 0 {
		fmt.Fprintf(&b, ", %d SIBP-excluded items", s.SIBPExcludedItems)
	}
	if s.BitmapBuilds > 0 {
		fmt.Fprintf(&b, ", %d bitmap builds (%d word ops)", s.BitmapBuilds, s.BitmapWordOps)
	}
	if s.TrieNodes > 0 {
		fmt.Fprintf(&b, ", %d trie nodes (%d probes pruned)", s.TrieNodes, s.ProbesPruned)
	}
	if s.Shards > 1 {
		fmt.Fprintf(&b, ", %d shards (merge %v)", s.Shards, time.Duration(s.ShardMergeNs).Round(time.Microsecond))
	}
	if s.SketchProbes > 0 {
		fmt.Fprintf(&b, ", %d sketch probes (%d pruned, %d exact fallbacks)",
			s.SketchProbes, s.SketchPruned, s.ExactFallbacks)
	}
	fmt.Fprintf(&b, ", %v", s.Elapsed.Round(time.Millisecond))
	return b.String()
}
