package core

import (
	"github.com/flipper-mining/flipper/internal/itemset"
)

// The BASIC baseline: a complete per-level Apriori with support-only
// pruning, representing the prior-art pipeline the paper compares against —
// "computing all frequent patterns before ranking the correlations". Every
// cell of the search table is fully populated (subject only to support and
// the distinct-level-1-roots requirement that defines the problem), every
// frequent itemset is retained in memory until the end, and flipping chains
// are assembled in a post-processing pass.

func (m *miner) mineBasic() []Pattern {
	for h := 1; h <= m.height; h++ {
		kMax := m.ds.widths[h]
		if f := len(m.freq1[h]); f < kMax {
			kMax = f
		}
		if m.cfg.MaxK > 0 && m.cfg.MaxK < kMax {
			kMax = m.cfg.MaxK
		}
		for k := 2; k <= kMax; k++ {
			if m.cancelled() {
				return nil
			}
			c := m.basicCell(h, k)
			m.finishBasicCell(c)
			m.rows[h][k] = c
			if c.frequent < k+1 {
				// Fewer frequent k-itemsets than needed to join a single
				// (k+1)-candidate's subsets; the row is done.
				break
			}
		}
	}
	return m.collectBasic()
}

// basicCell generates all Apriori candidates of Q(h,k) from the complete
// cell Q(h,k-1): joins of prefix-sharing frequent itemsets whose items
// descend from pairwise distinct level-1 roots, with the full subset check.
func (m *miner) basicCell(h, k int) *cell {
	c := m.cell(h, k)
	if k == 2 {
		items := m.frequentItems(h)
		for i := 0; i < len(items); i++ {
			ri := m.tax.RootOf(items[i])
			for j := i + 1; j < len(items); j++ {
				if ri == m.tax.RootOf(items[j]) {
					continue
				}
				m.addCandidate(c, itemset.Set{items[i], items[j]})
			}
		}
		return c
	}
	prev := m.rows[h][k-1]
	if prev == nil || prev.frequent < k {
		return c
	}
	sets := prev.frequentSets() // lexicographic, so the join can break early
	scratch := make(itemset.Set, k-1)
	for i := 0; i < len(sets); i++ {
		if i&cancelCheckMask == 0 && m.cancelled() {
			return c
		}
		for j := i + 1; j < len(sets); j++ {
			joined, ok := itemset.Join(sets[i], sets[j])
			if !ok {
				break // sorted order: prefixes diverged for good
			}
			// The two tails must come from distinct roots; every other pair
			// was validated when the operands were generated.
			a, b := sets[i][k-2], sets[j][k-2]
			if m.tax.RootOf(a) == m.tax.RootOf(b) {
				continue
			}
			if !m.allSubsetsFrequent(prev, joined, scratch) {
				m.stats.SubsetPruned++
				continue
			}
			m.addCandidate(c, joined)
		}
	}
	return c
}

// finishBasicCell counts and labels a BASIC cell. Unlike finishCell it keeps
// no chain records (chains are assembled afterwards) and — crucially for
// the memory comparison — never frees anything.
func (m *miner) finishBasicCell(c *cell) {
	if c.candidates > 0 {
		m.count(c)
	}
	thr := m.minSup[c.h]
	sup1 := m.ds.sup1[c.h]
	sups := m.sc.supsFor(c.k)
	for i := range c.meta {
		e := &c.meta[i]
		sup := c.store.Sup[i]
		if sup < thr {
			e.infrequent = true
			// BASIC keeps all candidates resident until the run ends, so no
			// dropResident here: the paper's baseline stored every counted
			// candidate (40 GB on its server) until post-processing.
			continue
		}
		c.frequent++
		m.stats.FrequentItemsets++
		for j, id := range c.store.Items(int32(i)) {
			sups[j] = sup1[id]
		}
		e.corr = m.cfg.Measure.Corr(sup, sups)
		switch {
		case e.corr >= m.cfg.Gamma:
			e.label = LabelPositive
			c.positive++
			m.stats.PositiveItemsets++
		case e.corr <= m.cfg.Epsilon:
			e.label = LabelNegative
			c.negative++
			m.stats.NegativeItemsets++
		}
	}
	if m.cfg.KeepCellStats {
		m.stats.Cells = append(m.stats.Cells, CellStat{
			H: c.h, K: c.k, Candidates: c.candidates,
			Frequent: c.frequent, Positive: c.positive, Negative: c.negative,
		})
	}
}

// collectBasic post-processes the fully populated table: a leaf itemset is a
// flipping pattern when its generalization at every level is frequent,
// labeled, and alternates signs. Generalization lookups descend the row's
// trie instead of building key strings.
func (m *miner) collectBasic() []Pattern {
	var out []Pattern
	for k, leafCell := range m.rows[m.height] {
		for i := range leafCell.meta {
			e := &leafCell.meta[i]
			if e.infrequent || !e.label.Labeled() {
				continue
			}
			leafItems := leafCell.store.Items(int32(i))
			chain := make([]LevelInfo, m.height)
			// Patterns outlive the run, but the store arenas are pooled and
			// reused by the next Mine on this engine — clone what escapes.
			chain[m.height-1] = LevelInfo{
				Level: m.height, Items: leafItems.Clone(), Support: leafCell.store.Sup[i],
				Corr: e.corr, Label: e.label,
			}
			ok := true
			for h := m.height - 1; h >= 1; h-- {
				items, gok := m.tax.GeneralizeSet(leafItems, h)
				if !gok || len(items) != k {
					ok = false
					break
				}
				row := m.rows[h][k]
				if row == nil {
					ok = false
					break
				}
				pi := row.store.Lookup(items)
				if pi < 0 || row.meta[pi].infrequent {
					ok = false
					break
				}
				pe := &row.meta[pi]
				if !pe.label.Labeled() || !chain[h].Label.Flips(pe.label) {
					ok = false
					break
				}
				chain[h-1] = LevelInfo{
					Level: h, Items: row.store.Items(pi).Clone(), Support: row.store.Sup[pi],
					Corr: pe.corr, Label: pe.label,
				}
			}
			if !ok {
				continue
			}
			p := Pattern{Leaf: chain[m.height-1].Items, Chain: chain}
			p.computeGap()
			m.stats.AliveItemsets++
			out = append(out, p)
		}
	}
	return out
}
