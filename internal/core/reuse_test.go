package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestEngineReuseByteIdentical mines the same configuration repeatedly on
// one engine — across every counting backend, materialized and sharded —
// and requires each warm run's wire envelope (volatile keys scrubbed) to be
// byte-identical to a cold one-shot Mine. This is the contract that lets
// flipperd keep one engine per dataset: caching level views, indexes and
// scratch must be invisible in the output, including the cost stats.
func TestEngineReuseByteIdentical(t *testing.T) {
	db, tree := paperToy(t)
	scrub := func(res *Result) []byte {
		raw, err := json.Marshal(res.JSON(tree))
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatal(err)
		}
		stats := m["stats"].(map[string]any)
		for _, k := range VolatileStatsKeys() {
			delete(stats, k)
		}
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	for _, tc := range []struct {
		name     string
		strategy CountStrategy
		shards   int
		pruning  PruningLevel
	}{
		{"scan", CountScan, 0, Full},
		{"tidlist", CountTIDList, 0, Full},
		{"bitmap", CountBitmap, 0, Full},
		{"auto", CountAuto, 0, Full},
		{"scan-sharded", CountScan, 3, Full},
		{"bitmap-sharded", CountBitmap, 3, Full},
		{"basic-baseline", CountScan, 0, Basic},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := toyConfig()
			cfg.Strategy = tc.strategy
			cfg.Shards = tc.shards
			cfg.Pruning = tc.pruning
			cold, err := Mine(db, tree, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := scrub(cold)
			eng := NewEngine(db, tree)
			for run := 0; run < 3; run++ {
				res, err := eng.Mine(cfg)
				if err != nil {
					t.Fatalf("run %d: %v", run, err)
				}
				if got := scrub(res); !bytes.Equal(got, want) {
					t.Fatalf("run %d diverged from cold mine:\ncold: %s\nwarm: %s", run, want, got)
				}
			}
		})
	}
}

// TestEngineReuseMixedConfigs interleaves different strategies, shard
// counts and thresholds on one engine: per-(materialize, shards) data
// states must not bleed into each other, and every run must match its own
// cold baseline.
func TestEngineReuseMixedConfigs(t *testing.T) {
	db, tree := paperToy(t)
	eng := NewEngine(db, tree)
	rng := rand.New(rand.NewSource(5))
	strategies := []CountStrategy{CountScan, CountTIDList, CountBitmap, CountAuto}
	for i := 0; i < 20; i++ {
		cfg := toyConfig()
		cfg.Strategy = strategies[rng.Intn(len(strategies))]
		cfg.Shards = rng.Intn(4) // 0..3
		cfg.Epsilon = 0.2 + 0.2*rng.Float64()
		cold, err := Mine(db, tree, cfg)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := eng.Mine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if fingerprint(cold, tree) != fingerprint(warm, tree) {
			t.Fatalf("iteration %d (strategy=%v shards=%d): engine run diverged", i, cfg.Strategy, cfg.Shards)
		}
	}
}

// TestEngineReuseAllocatesLess pins the point of the arena/scratch pool: a
// warm Mine on a reused engine must allocate well under half of what a
// cold engine+Mine pays, since level views, indexes, candidate tries, cell
// metadata and counting buffers all come from the caches.
func TestEngineReuseAllocatesLess(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	b := taxonomyBuilderForDense(t)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	db := txdbForDense(rng, tree)
	cfg := toyConfig()
	cfg.MinSupAbs = []int64{1, 1}
	cfg.Strategy = CountBitmap
	cfg.Parallelism = 1 // deterministic allocation profile
	cold := testing.AllocsPerRun(3, func() {
		if _, err := NewEngine(db, tree).Mine(cfg); err != nil {
			t.Fatal(err)
		}
	})
	eng := NewEngine(db, tree)
	if _, err := eng.Mine(cfg); err != nil {
		t.Fatal(err)
	}
	warm := testing.AllocsPerRun(3, func() {
		if _, err := eng.Mine(cfg); err != nil {
			t.Fatal(err)
		}
	})
	if warm > cold/2 {
		t.Fatalf("warm Mine allocates %.0f objects, cold %.0f — engine reuse saves too little", warm, cold)
	}
	t.Logf("allocs/op: cold %.0f, warm %.0f (%.1f%%)", cold, warm, 100*warm/cold)
}

// TestEngineConcurrentMine hammers one engine from many goroutines with a
// mix of configurations and checks each result against its serial
// fingerprint — the engine's concurrency contract, exercised under the
// race detector by the CI race job.
func TestEngineConcurrentMine(t *testing.T) {
	db, tree := paperToy(t)
	eng := NewEngine(db, tree)
	cfgs := make([]Config, 8)
	want := make([]string, len(cfgs))
	for i := range cfgs {
		cfg := toyConfig()
		cfg.Strategy = []CountStrategy{CountScan, CountTIDList, CountBitmap, CountAuto}[i%4]
		cfg.Shards = (i / 4) * 2 // half unsharded, half 2-sharded
		cfgs[i] = cfg
		res, err := Mine(db, tree, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = fingerprint(res, tree)
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(cfgs)*4)
	for round := 0; round < 4; round++ {
		for i := range cfgs {
			wg.Add(1)
			go func(round, i int) {
				defer wg.Done()
				res, err := eng.Mine(cfgs[i])
				if err != nil {
					errs <- fmt.Errorf("round %d cfg %d: %w", round, i, err)
					return
				}
				if got := fingerprint(res, tree); got != want[i] {
					errs <- fmt.Errorf("round %d cfg %d: concurrent result diverged", round, i)
				}
			}(round, i)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestEngineSweepMatchesFreeFunctions pins the engine-resident threshold
// helpers to their one-shot counterparts.
func TestEngineSweepMatchesFreeFunctions(t *testing.T) {
	db, tree := paperToy(t)
	cfg := toyConfig()
	eps := []float64{0.5, 0.35, 0.2}
	free, err := EpsilonSweep(db, tree, cfg, eps)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(db, tree)
	bound, err := eng.EpsilonSweep(cfg, eps)
	if err != nil {
		t.Fatal(err)
	}
	if len(free) != len(bound) {
		t.Fatalf("sweep lengths diverged: %d vs %d", len(free), len(bound))
	}
	for i := range free {
		if free[i] != bound[i] {
			t.Fatalf("sweep point %d diverged: %+v vs %+v", i, free[i], bound[i])
		}
	}
	fe, fres, ffound, err := SuggestEpsilon(db, tree, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	be, bres, bfound, err := eng.SuggestEpsilon(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fe != be || ffound != bfound || fingerprint(fres, tree) != fingerprint(bres, tree) {
		t.Fatalf("SuggestEpsilon diverged: free (ε=%v found=%v) vs engine (ε=%v found=%v)", fe, ffound, be, bfound)
	}
}
