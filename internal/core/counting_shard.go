package core

import (
	"time"

	"github.com/flipper-mining/flipper/internal/bitmap"
	"github.com/flipper-mining/flipper/internal/itemset"
	"github.com/flipper-mining/flipper/internal/taxonomy"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// Shard-parallel counting: every backend gets a variant where workers own
// transaction shards instead of candidate or transaction ranges of the
// whole database. The fan-out is a bounded pool of cfg.workers()
// goroutines (txdb.ForEachShard) — worker w handles shards w, w+W, w+2W,
// … — so shard count scales independently of core count: a 256-shard
// out-of-core dataset on 4 cores runs 4 workers with 4 partial vectors,
// not 256 of each. Each worker counts its shards into one private partial
// support vector; the partials are then summed into the cell's candtrie
// slab (mergePartials). Because a transaction lives in exactly one shard
// and the merge is plain int64 addition — commutative and associative, so
// worker assignment cannot change the totals — the merged supports, and
// everything derived from them, are identical to the unsharded run, which
// TestShardedMiningEquivalence pins across strategies, pruning levels and
// shard counts.
//
// The payoffs over range fan-out: per-shard level views and indexes are
// built concurrently at init; each worker's working set is its shards'
// flat arenas and indexes rather than the whole level (cache residency);
// and with a txdb.ShardedSource over per-shard basket files, streaming
// counting scans the files in parallel — out-of-core mining of databases
// larger than RAM.

// resolveShardSources decides a run's shard layout. A ShardedSource brings
// its own shards (its on-disk partitioning is authoritative); otherwise
// cfgShards > 1 partitions an in-memory database in place. Any other
// source — e.g. a single FileSource, which cannot be split without
// rewriting the file — runs unsharded regardless of Config.Shards.
func resolveShardSources(src txdb.Source, cfgShards int) []txdb.Source {
	if ss, ok := src.(*txdb.ShardedSource); ok {
		if ss.NumShards() > 1 {
			return ss.Shards()
		}
		return nil
	}
	if cfgShards <= 1 {
		return nil
	}
	if db, ok := src.(*txdb.DB); ok {
		parts := txdb.Partition(db, cfgShards)
		if len(parts) <= 1 {
			return nil
		}
		shards := make([]txdb.Source, len(parts))
		for i, p := range parts {
			shards[i] = p
		}
		return shards
	}
	return nil
}

// boundWorkers bounds shard fan-out at the configured parallelism: at most
// cfg.workers() goroutines run however many shards there are.
func boundWorkers(cfg *Config, n int) int {
	w := cfg.workers()
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (m *miner) shardWorkers(n int) int { return boundWorkers(&m.cfg, n) }

// distinctCount returns how many deduplicated weighted transactions back
// the level — the database-size input of the CountAuto cost model. Sharded
// runs dedup per shard, so the count is the sum over shards (slightly above
// the global dedup when identical transactions straddle a shard boundary).
func (m *miner) distinctCount(h int) int {
	if !m.sharded() {
		return m.ds.flat[h].n()
	}
	n := 0
	for s := range m.ds.shardFlat[h] {
		n += m.ds.shardFlat[h][s].n()
	}
	return n
}

// streamSingleSupportsShards is the sharded form of the streaming
// single-item pass: a bounded worker pool scans the shards concurrently,
// each worker aggregating per-level single supports and widths across its
// shards locally; the locals then merge. Integer sums and maxima make the
// merged aggregates independent of worker assignment and equal to the
// single-pass values.
func (ds *dataState) streamSingleSupportsShards(tax *taxonomy.Tree, H, workers int) error {
	type agg struct {
		sup    []map[itemset.ID]int64
		widths []int
		err    error
	}
	aggs := make([]agg, workers)
	for w := range aggs {
		aggs[w].sup = make([]map[itemset.ID]int64, H+1)
		aggs[w].widths = make([]int, H+1)
		for h := 1; h <= H; h++ {
			aggs[w].sup[h] = make(map[itemset.ID]int64)
		}
	}
	txdb.ForEachShard(workers, len(ds.shards), func(w, s int) {
		a := &aggs[w]
		if a.err != nil {
			return
		}
		buf := make([]itemset.ID, 0, 32)
		a.err = ds.shards[s].Scan(func(tx itemset.Set) error {
			for h := 1; h <= H; h++ {
				buf = buf[:0]
				for _, id := range tx {
					if anc, ok := tax.AncestorAt(id, h); ok {
						buf = append(buf, anc)
					}
				}
				g := canonInto(buf)
				if len(g) > a.widths[h] {
					a.widths[h] = len(g)
				}
				for _, id := range g {
					a.sup[h][id]++
				}
			}
			return nil
		})
	})
	for h := 1; h <= H; h++ {
		ds.sup1[h] = make(map[itemset.ID]int64)
	}
	for w := range aggs {
		if aggs[w].err != nil {
			return aggs[w].err
		}
		for h := 1; h <= H; h++ {
			if aggs[w].widths[h] > ds.widths[h] {
				ds.widths[h] = aggs[w].widths[h]
			}
			for id, n := range aggs[w].sup[h] {
				ds.sup1[h][id] += n
			}
		}
	}
	return nil
}

// mergePartials folds the per-worker partial support vectors into the
// cell's slab. The time spent here is the serial fraction of sharded
// counting and is surfaced as Stats.ShardMergeNs.
func (m *miner) mergePartials(c *cell, partials [][]int64) {
	start := time.Now()
	sup := c.store.Sup
	for _, counts := range partials {
		for i, n := range counts {
			sup[i] += n
		}
	}
	m.stats.ShardMergeNs += time.Since(start).Nanoseconds()
}

// countScanShards is the sharded scan backend over materialized views: each
// pool worker walks its shards' flat transaction arenas down the cell's
// trie into its private scratch vector — one contiguous arena per shard, so
// the shard's transaction block stays cache-resident against the trie.
func (m *miner) countScanShards(c *cell) {
	flats := m.ds.shardFlat[c.h]
	workers := m.shardWorkers(len(flats))
	partials := m.sc.partialsFor(workers, c.store.Len())
	pruned := make([]int64, workers)
	txdb.ForEachShard(workers, len(flats), func(w, s int) {
		f := &flats[s]
		pruned[w] += scanTxsCheckpointed(c, f, 0, f.n(), partials[w], m.done)
	})
	m.mergePartials(c, partials)
	for _, n := range pruned {
		m.stats.ProbesPruned += n
	}
}

// countScanStreamingShards is the sharded disk-resident mode: every pool
// worker streams its own shard sources — for a ShardedSource of
// FileSources, its own basket files — generalizing to the cell's level on
// the fly. Memory stays one scan buffer and one partial vector per worker
// (not per shard) while the passes run in parallel: out-of-core mining at
// shard-parallel speed. A scan failure parks in m.scanErr and fails the
// mine (see count).
func (m *miner) countScanStreamingShards(c *cell) {
	if m.scanErr != nil {
		return
	}
	st := c.store
	workers := m.shardWorkers(len(m.ds.shards))
	partials := m.sc.partialsFor(workers, st.Len())
	pruned := make([]int64, workers)
	errs := make([]error, workers)
	txdb.ForEachShard(workers, len(m.ds.shards), func(w, s int) {
		if errs[w] != nil {
			return
		}
		counts := partials[w]
		var filtered itemset.Set
		var seen int
		buf := make([]itemset.ID, 0, 32)
		errs[w] = m.ds.shards[s].Scan(func(tx itemset.Set) error {
			if seen++; seen&1023 == 0 && m.cancelled() {
				return errCancelled
			}
			buf = buf[:0]
			for _, id := range tx {
				if a, ok := m.tax.AncestorAt(id, c.h); ok {
					buf = append(buf, a)
				}
			}
			g := canonInto(buf)
			filtered = st.Filter(g, filtered[:0])
			if len(filtered) < c.k {
				return nil
			}
			hits := st.CountTx(filtered, 1, counts)
			pruned[w] += itemset.Binomial(len(filtered), c.k) - hits
			return nil
		})
	})
	for _, err := range errs {
		if err != nil {
			m.scanErr = err
			return
		}
	}
	m.mergePartials(c, partials)
	for _, n := range pruned {
		m.stats.ProbesPruned += n
	}
}

// countTIDShards is the sharded tid-list backend: each pool worker
// intersects every candidate against its shards' per-item transaction-ID
// lists. A candidate's support is the sum of its per-shard intersection
// sizes, because each shard's lists index disjoint transactions.
func (m *miner) countTIDShards(c *cell) {
	lists := m.shardTIDLists(c.h)
	st := c.store
	n := st.Len()
	workers := m.shardWorkers(len(lists))
	partials := m.sc.partialsFor(workers, n)
	scratches := m.sc.tidScratchFor(workers)
	txdb.ForEachShard(workers, len(lists), func(w, s int) {
		for e := 0; e < n; e++ {
			if e&cancelCheckMask == 0 && m.cancelled() {
				return
			}
			partials[w][e] += intersectSupport(st.Items(int32(e)), lists[s], &scratches[w])
		}
	})
	m.mergePartials(c, partials)
}

// countBitmapShards is the sharded bitmap backend: each pool worker ANDs
// its shards' per-item bit vectors for every candidate. Per-shard supports
// sum exactly; per-shard word-op counts accumulate into the same stat the
// unsharded backend reports.
func (m *miner) countBitmapShards(c *cell) {
	ixs := m.shardBitmapIndexes(c.h)
	st := c.store
	n := st.Len()
	workers := m.shardWorkers(len(ixs))
	partials := m.sc.partialsFor(workers, n)
	ops := make([]int64, workers)
	scratches := m.sc.vecsFor(workers, c.k)
	txdb.ForEachShard(workers, len(ixs), func(w, s int) {
		for e := 0; e < n; e++ {
			if e&cancelCheckMask == 0 && m.cancelled() {
				return
			}
			sup, wops := ixs[s].SupportInto(st.Items(int32(e)), scratches[w])
			partials[w][e] += sup
			ops[w] += wops
		}
	})
	m.mergePartials(c, partials)
	for _, n := range ops {
		m.stats.BitmapWordOps += n
	}
}

// shardTIDLists returns each shard's per-item transaction-ID lists for a
// level, built on first use by any run of the engine — a bounded worker
// pool over the shards — and cached in the dataset state.
func (m *miner) shardTIDLists(h int) []map[itemset.ID][]int32 {
	ds := m.ds
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.shardTID[h] != nil {
		return ds.shardTID[h]
	}
	views := ds.shardLv[h]
	lists := make([]map[itemset.ID][]int32, len(views))
	txdb.ForEachShard(m.shardWorkers(len(views)), len(views), func(_, s int) {
		l := make(map[itemset.ID][]int32)
		for ti, tx := range views[s].Tx {
			for _, id := range tx {
				l[id] = append(l[id], int32(ti))
			}
		}
		lists[s] = l
	})
	ds.shardTID[h] = lists
	return lists
}

// shardBitmapIndexes returns each shard's bitmap index over its
// deduplicated transactions, built on first use by any run of the engine —
// a bounded worker pool over the shards — and cached in the dataset state.
// Stats.BitmapBuilds follows the run's logical flags: the first use per
// level per run counts one build per shard, cached or not.
func (m *miner) shardBitmapIndexes(h int) []*bitmap.Index {
	ds := m.ds
	ds.mu.Lock()
	ixs := ds.shardBM[h]
	if ixs == nil {
		dist := ds.shardDist[h]
		ixs = make([]*bitmap.Index, len(dist))
		txdb.ForEachShard(m.shardWorkers(len(dist)), len(dist), func(_, s int) {
			data := dist[s]
			txs := make([]itemset.Set, len(data))
			weights := make([]int64, len(data))
			for i, wt := range data {
				txs[i] = wt.Items
				weights[i] = wt.Weight
			}
			ixs[s] = bitmap.Build(txs, weights)
		})
		ds.shardBM[h] = ixs
	}
	ds.mu.Unlock()
	if !m.bmBuilt[h] {
		m.bmBuilt[h] = true
		m.stats.BitmapBuilds += int64(len(ixs))
	}
	return ixs
}
