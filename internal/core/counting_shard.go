package core

import (
	"time"

	"github.com/flipper-mining/flipper/internal/bitmap"
	"github.com/flipper-mining/flipper/internal/itemset"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// Shard-parallel counting: every backend gets a variant where workers own
// transaction shards instead of candidate or transaction ranges of the
// whole database. The fan-out is a bounded pool of cfg.workers()
// goroutines (txdb.ForEachShard) — worker w handles shards w, w+W, w+2W,
// … — so shard count scales independently of core count: a 256-shard
// out-of-core dataset on 4 cores runs 4 workers with 4 partial vectors,
// not 256 of each. Each worker counts its shards into one private partial
// support vector; the partials are then summed into the cell's candtrie
// slab (mergePartials). Because a transaction lives in exactly one shard
// and the merge is plain int64 addition — commutative and associative, so
// worker assignment cannot change the totals — the merged supports, and
// everything derived from them, are identical to the unsharded run, which
// TestShardedMiningEquivalence pins across strategies, pruning levels and
// shard counts.
//
// The payoffs over range fan-out: per-shard level views and indexes are
// built concurrently at init; each worker's working set is its shards'
// views and indexes rather than the whole level (cache residency); and with
// a txdb.ShardedSource over per-shard basket files, streaming counting
// scans the files in parallel — out-of-core mining of databases larger
// than RAM.

// resolveShards decides the run's shard layout. A ShardedSource brings its
// own shards (its on-disk partitioning is authoritative); otherwise
// Config.Shards > 1 partitions an in-memory database in place. Any other
// source — e.g. a single FileSource, which cannot be split without
// rewriting the file — runs unsharded regardless of Config.Shards.
func (m *miner) resolveShards() {
	if ss, ok := m.src.(*txdb.ShardedSource); ok {
		if ss.NumShards() > 1 {
			m.shards = ss.Shards()
		}
		return
	}
	if m.cfg.Shards <= 1 {
		return
	}
	if db, ok := m.src.(*txdb.DB); ok {
		parts := txdb.Partition(db, m.cfg.Shards)
		if len(parts) <= 1 {
			return
		}
		m.shards = make([]txdb.Source, len(parts))
		for i, p := range parts {
			m.shards[i] = p
		}
	}
}

// sharded reports whether counting fans out over shards.
func (m *miner) sharded() bool { return len(m.shards) > 1 }

// shardWorkers bounds shard fan-out at the configured parallelism: at most
// cfg.workers() goroutines run however many shards there are.
func (m *miner) shardWorkers(n int) int {
	w := m.cfg.workers()
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// makePartials allocates one partial support vector of length n per worker.
func makePartials(workers, n int) [][]int64 {
	out := make([][]int64, workers)
	for w := range out {
		out[w] = make([]int64, n)
	}
	return out
}

// distinctCount returns how many deduplicated weighted transactions back
// the level — the database-size input of the CountAuto cost model. Sharded
// runs dedup per shard, so the count is the sum over shards (slightly above
// the global dedup when identical transactions straddle a shard boundary).
func (m *miner) distinctCount(h int) int {
	if !m.sharded() {
		return len(m.distinct[h])
	}
	n := 0
	for _, d := range m.shardDist[h] {
		n += len(d)
	}
	return n
}

// streamSingleSupportsShards is the sharded form of the streaming
// single-item pass: a bounded worker pool scans the shards concurrently,
// each worker aggregating per-level single supports and widths across its
// shards locally; the locals then merge. Integer sums and maxima make the
// merged aggregates independent of worker assignment and equal to the
// single-pass values.
func (m *miner) streamSingleSupportsShards() error {
	H := m.height
	type agg struct {
		sup    []map[itemset.ID]int64
		widths []int
		err    error
	}
	workers := m.shardWorkers(len(m.shards))
	aggs := make([]agg, workers)
	for w := range aggs {
		aggs[w].sup = make([]map[itemset.ID]int64, H+1)
		aggs[w].widths = make([]int, H+1)
		for h := 1; h <= H; h++ {
			aggs[w].sup[h] = make(map[itemset.ID]int64)
		}
	}
	txdb.ForEachShard(workers, len(m.shards), func(w, s int) {
		a := &aggs[w]
		if a.err != nil {
			return
		}
		buf := make([]itemset.ID, 0, 32)
		a.err = m.shards[s].Scan(func(tx itemset.Set) error {
			for h := 1; h <= H; h++ {
				buf = buf[:0]
				for _, id := range tx {
					if anc, ok := m.tax.AncestorAt(id, h); ok {
						buf = append(buf, anc)
					}
				}
				g := itemset.New(buf...)
				if len(g) > a.widths[h] {
					a.widths[h] = len(g)
				}
				for _, id := range g {
					a.sup[h][id]++
				}
			}
			return nil
		})
	})
	for h := 1; h <= H; h++ {
		m.sup1[h] = make(map[itemset.ID]int64)
	}
	for w := range aggs {
		if aggs[w].err != nil {
			return aggs[w].err
		}
		for h := 1; h <= H; h++ {
			if aggs[w].widths[h] > m.widths[h] {
				m.widths[h] = aggs[w].widths[h]
			}
			for id, n := range aggs[w].sup[h] {
				m.sup1[h][id] += n
			}
		}
	}
	return nil
}

// mergePartials folds the per-worker partial support vectors into the
// cell's slab. The time spent here is the serial fraction of sharded
// counting and is surfaced as Stats.ShardMergeNs.
func (m *miner) mergePartials(c *cell, partials [][]int64) {
	start := time.Now()
	sup := c.store.Sup
	for _, counts := range partials {
		for i, n := range counts {
			sup[i] += n
		}
	}
	m.stats.ShardMergeNs += time.Since(start).Nanoseconds()
}

// countScanShards is the sharded scan backend over materialized views: each
// pool worker walks its shards' deduplicated transactions down the cell's
// trie into its private scratch vector.
func (m *miner) countScanShards(c *cell) {
	dist := m.shardDist[c.h]
	workers := m.shardWorkers(len(dist))
	partials := makePartials(workers, c.store.Len())
	pruned := make([]int64, workers)
	txdb.ForEachShard(workers, len(dist), func(w, s int) {
		pruned[w] += scanTxs(c, dist[s], partials[w], nil)
	})
	m.mergePartials(c, partials)
	for _, n := range pruned {
		m.stats.ProbesPruned += n
	}
}

// countScanStreamingShards is the sharded disk-resident mode: every pool
// worker streams its own shard sources — for a ShardedSource of
// FileSources, its own basket files — generalizing to the cell's level on
// the fly. Memory stays one scan buffer and one partial vector per worker
// (not per shard) while the passes run in parallel: out-of-core mining at
// shard-parallel speed. A scan failure parks in m.scanErr and fails the
// mine (see count).
func (m *miner) countScanStreamingShards(c *cell) {
	if m.scanErr != nil {
		return
	}
	st := c.store
	workers := m.shardWorkers(len(m.shards))
	partials := makePartials(workers, st.Len())
	pruned := make([]int64, workers)
	errs := make([]error, workers)
	txdb.ForEachShard(workers, len(m.shards), func(w, s int) {
		if errs[w] != nil {
			return
		}
		counts := partials[w]
		var filtered itemset.Set
		buf := make([]itemset.ID, 0, 32)
		errs[w] = m.shards[s].Scan(func(tx itemset.Set) error {
			buf = buf[:0]
			for _, id := range tx {
				if a, ok := m.tax.AncestorAt(id, c.h); ok {
					buf = append(buf, a)
				}
			}
			g := itemset.New(buf...)
			filtered = st.Filter(g, filtered[:0])
			if len(filtered) < c.k {
				return nil
			}
			hits := st.CountTx(filtered, 1, counts)
			pruned[w] += itemset.Binomial(len(filtered), c.k) - hits
			return nil
		})
	})
	for _, err := range errs {
		if err != nil {
			m.scanErr = err
			return
		}
	}
	m.mergePartials(c, partials)
	for _, n := range pruned {
		m.stats.ProbesPruned += n
	}
}

// countTIDShards is the sharded tid-list backend: each pool worker
// intersects every candidate against its shards' per-item transaction-ID
// lists. A candidate's support is the sum of its per-shard intersection
// sizes, because each shard's lists index disjoint transactions.
func (m *miner) countTIDShards(c *cell) {
	lists := m.shardTIDLists(c.h)
	st := c.store
	n := st.Len()
	workers := m.shardWorkers(len(lists))
	partials := makePartials(workers, n)
	scratches := make([]tidScratch, workers)
	txdb.ForEachShard(workers, len(lists), func(w, s int) {
		for e := 0; e < n; e++ {
			partials[w][e] += intersectSupport(st.Items(int32(e)), lists[s], &scratches[w])
		}
	})
	m.mergePartials(c, partials)
}

// countBitmapShards is the sharded bitmap backend: each pool worker ANDs
// its shards' per-item bit vectors for every candidate. Per-shard supports
// sum exactly; per-shard word-op counts accumulate into the same stat the
// unsharded backend reports.
func (m *miner) countBitmapShards(c *cell) {
	ixs := m.shardBitmapIndexes(c.h)
	st := c.store
	n := st.Len()
	workers := m.shardWorkers(len(ixs))
	partials := makePartials(workers, n)
	ops := make([]int64, workers)
	scratches := make([][]bitmap.Vector, workers)
	for w := range scratches {
		scratches[w] = make([]bitmap.Vector, c.k)
	}
	txdb.ForEachShard(workers, len(ixs), func(w, s int) {
		for e := 0; e < n; e++ {
			sup, wops := ixs[s].SupportInto(st.Items(int32(e)), scratches[w])
			partials[w][e] += sup
			ops[w] += wops
		}
	})
	m.mergePartials(c, partials)
	for _, n := range ops {
		m.stats.BitmapWordOps += n
	}
}

// shardTIDLists lazily builds each shard's per-item transaction-ID lists
// for a level — a bounded worker pool over the shards, results cached on
// the miner (like the unsharded lists).
func (m *miner) shardTIDLists(h int) []map[itemset.ID][]int32 {
	if m.shardTID[h] != nil {
		return m.shardTID[h]
	}
	views := m.shardLv[h]
	lists := make([]map[itemset.ID][]int32, len(views))
	txdb.ForEachShard(m.shardWorkers(len(views)), len(views), func(_, s int) {
		l := make(map[itemset.ID][]int32)
		for ti, tx := range views[s].Tx {
			for _, id := range tx {
				l[id] = append(l[id], int32(ti))
			}
		}
		lists[s] = l
	})
	m.shardTID[h] = lists
	return lists
}

// shardBitmapIndexes lazily builds each shard's bitmap index over its
// deduplicated transactions — a bounded worker pool over the shards,
// results cached on the miner. Every shard build counts toward
// Stats.BitmapBuilds.
func (m *miner) shardBitmapIndexes(h int) []*bitmap.Index {
	if m.shardBM[h] != nil {
		return m.shardBM[h]
	}
	dist := m.shardDist[h]
	ixs := make([]*bitmap.Index, len(dist))
	txdb.ForEachShard(m.shardWorkers(len(dist)), len(dist), func(_, s int) {
		data := dist[s]
		txs := make([]itemset.Set, len(data))
		weights := make([]int64, len(data))
		for i, wt := range data {
			txs[i] = wt.Items
			weights[i] = wt.Weight
		}
		ixs[s] = bitmap.Build(txs, weights)
	})
	m.shardBM[h] = ixs
	m.stats.BitmapBuilds += int64(len(ixs))
	return ixs
}
