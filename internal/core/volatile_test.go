package core

import (
	"encoding/json"
	"testing"
	"time"
)

// TestVolatileStatsKeysExist guards the contract between StatsJSON and the
// golden conformance harness: every key declared volatile must actually be a
// field of the marshaled stats envelope, so a rename cannot silently leave a
// timing field unscrubbed (and flapping) in committed fixtures.
func TestVolatileStatsKeysExist(t *testing.T) {
	s := Stats{Elapsed: 123 * time.Millisecond, ShardMergeNs: 7}
	raw, err := json.Marshal(s.JSON())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range VolatileStatsKeys() {
		if _, ok := m[k]; !ok {
			t.Errorf("VolatileStatsKeys lists %q, but StatsJSON has no such wire field", k)
		}
	}
}
