package core

import (
	"testing"

	"github.com/flipper-mining/flipper/internal/measure"
	"github.com/flipper-mining/flipper/internal/taxonomy"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// tpgScenario engineers a dataset where every pair at levels 1 and 2 is
// non-positive under a high γ, so the TPG check must terminate column
// growth immediately after k=2 — while wider itemsets would otherwise be
// generated (transactions are wide enough for k=3).
func tpgScenario(t *testing.T) (*txdb.DB, *taxonomy.Tree) {
	t.Helper()
	b := taxonomy.NewBuilder(nil)
	for _, p := range [][]string{
		{"x", "x1", "x11"}, {"x", "x1", "x12"},
		{"y", "y1", "y11"}, {"y", "y1", "y12"},
		{"z", "z1", "z11"}, {"z", "z1", "z12"},
	} {
		if err := b.AddPath(p...); err != nil {
			t.Fatal(err)
		}
	}
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	db := txdb.New(tree.Dict())
	// Each category appears often alone; triples co-occur rarely, so all
	// cross-category correlations are weakly positive at best.
	for i := 0; i < 30; i++ {
		db.AddNames("x11")
		db.AddNames("y11")
		db.AddNames("z11")
	}
	for i := 0; i < 3; i++ {
		db.AddNames("x11", "y11", "z11")
		db.AddNames("x12", "y12", "z12")
	}
	return db, tree
}

func TestTPGTerminatesColumns(t *testing.T) {
	db, tree := tpgScenario(t)
	cfg := Config{
		Measure: measure.Kulczynski, Gamma: 0.9, Epsilon: 0.01,
		MinSupAbs: []int64{1, 1, 1}, Materialize: true, KeepCellStats: true,
	}
	cfg.Pruning = FlippingTPG
	res, err := Mine(db, tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TPGBreaks == 0 {
		t.Fatal("TPG did not fire although all pairs are non-positive")
	}
	// No cell beyond k=2 may have been counted in rows 1-2.
	for _, cs := range res.Stats.Cells {
		if cs.H <= 2 && cs.K > 2 && cs.Candidates > 0 {
			t.Errorf("cell Q(%d,%d) counted %d candidates after TPG", cs.H, cs.K, cs.Candidates)
		}
	}
	// Without TPG, k=3 cells are explored (the data is wide enough).
	cfg.Pruning = Flipping
	res2, err := Mine(db, tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	counted3 := false
	for _, cs := range res2.Stats.Cells {
		if cs.K == 3 && cs.Candidates > 0 {
			counted3 = true
		}
	}
	if !counted3 {
		t.Fatal("scenario too narrow: no k=3 candidates even without TPG")
	}
	// Both configurations agree on the output (none here).
	if len(res.Patterns) != len(res2.Patterns) {
		t.Errorf("TPG changed the result: %d vs %d", len(res.Patterns), len(res2.Patterns))
	}
}

// sibpScenario: item "rare" has the smallest support at its level and never
// appears in a positive itemset, and neither does its parent — Corollary 2
// lets SIBP exclude it from wider candidate generation.
func sibpScenario(t *testing.T) (*txdb.DB, *taxonomy.Tree) {
	t.Helper()
	b := taxonomy.NewBuilder(nil)
	for _, p := range [][]string{
		{"p", "p1", "rare"}, {"p", "p1", "p11"},
		{"q", "q1", "q11"}, {"q", "q1", "q12"},
		{"r", "r1", "r11"}, {"r", "r1", "r12"},
	} {
		if err := b.AddPath(p...); err != nil {
			t.Fatal(err)
		}
	}
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	db := txdb.New(tree.Dict())
	// q and r correlate strongly with each other (and will keep the miner
	// busy at k=2..3); "rare" co-occurs with everything only occasionally,
	// so its max correlation stays below γ.
	for i := 0; i < 40; i++ {
		db.AddNames("q11", "r11")
		db.AddNames("q12", "r12")
	}
	for i := 0; i < 12; i++ {
		db.AddNames("p11", "q11", "r11")
	}
	db.AddNames("rare", "q11", "r11")
	db.AddNames("rare", "q12")
	db.AddNames("rare", "r12")
	return db, tree
}

func TestSIBPExcludesHopelessItems(t *testing.T) {
	db, tree := sibpScenario(t)
	cfg := Config{
		Measure: measure.Kulczynski, Gamma: 0.5, Epsilon: 0.05,
		MinSupAbs: []int64{1, 1, 1}, Materialize: true,
	}
	cfg.Pruning = Full
	res, err := Mine(db, tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SIBPExcludedItems == 0 {
		t.Fatal("SIBP never fired in a scenario built for it")
	}
	// Pruning must not change the answer.
	cfg.Pruning = Basic
	want, err := Mine(db, tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(res, tree) != fingerprint(want, tree) {
		t.Fatal("SIBP changed the mined patterns")
	}
}

func TestSIBPBookkeepingDirect(t *testing.T) {
	// Direct unit test of sibpUpdate/sibpExclude on a hand-built miner.
	db, tree := sibpScenario(t)
	cfg := Config{
		Measure: measure.Kulczynski, Gamma: 0.5, Epsilon: 0.05,
		MinSupAbs: []int64{1, 1, 1}, Materialize: true, Pruning: Full,
	}
	minSup, err := cfg.validate(tree.Height(), db.Len())
	if err != nil {
		t.Fatal(err)
	}
	m := &miner{cfg: cfg, tax: tree, src: db, height: tree.Height(), n: db.Len(), minSup: minSup}
	if err := m.init(); err != nil {
		t.Fatal(err)
	}
	// Build and count Q(1,2) and Q(2,2) the way the zigzag would.
	c1 := m.row1Cell(2)
	m.finishCell(c1)
	m.rows[1][2] = c1
	c2 := m.childCell(2, 2)
	m.finishCell(c2)
	m.rows[2][2] = c2
	m.sibpUpdate(1, 2, c1)
	m.sibpUpdate(2, 2, c2)
	if m.rsetCol[1] != 2 || m.rsetCol[2] != 2 {
		t.Fatal("R-set columns not recorded")
	}
	m.sibpExclude(2, 2)
	// Column mismatch must disable exclusion.
	m2 := &miner{cfg: cfg, tax: tree, src: db, height: tree.Height(), n: db.Len(), minSup: minSup}
	if err := m2.init(); err != nil {
		t.Fatal(err)
	}
	m2.rset[1] = map[int32]bool{}
	m2.rset[2] = map[int32]bool{}
	m2.rsetCol[1] = 2
	m2.rsetCol[2] = 3
	m2.sibpExclude(2, 3)
	if len(m2.excluded[2]) != 0 {
		t.Error("stale R-set produced exclusions")
	}
}

func TestTPGRequiresFrequentEvidence(t *testing.T) {
	// Two empty cells must not satisfy the TPG condition (empty-by-gating
	// proves nothing; see DESIGN.md).
	m := &miner{cfg: Config{Pruning: FlippingTPG}}
	up, down := newCell(1, 2), newCell(2, 2)
	if m.tpg(up, down) {
		t.Error("TPG fired on two empty cells")
	}
	up.frequent = 1
	if !m.tpg(up, down) {
		t.Error("TPG must fire: one frequent non-positive itemset, zero positives")
	}
	up.positive = 1
	if m.tpg(up, down) {
		t.Error("TPG fired despite a positive itemset")
	}
	m.cfg.Pruning = Flipping
	up.positive = 0
	if m.tpg(up, down) {
		t.Error("TPG fired while disabled")
	}
}
