/*
Package core implements the Flipper algorithm (Barsky et al., PVLDB 5(4),
2011): direct mining of flipping correlation patterns over a transactional
database equipped with a taxonomy, without generating all frequent itemsets
first. Four cumulative pruning levels — support-only (the BASIC baseline),
flipping-based vertical gating, termination of pattern growth (TPG,
Theorem 3) and single-item based pruning (SIBP, Theorem 2 / Corollary 2) —
reproduce the four variants of the paper's evaluation.

The rest of this comment is an algorithm walkthrough mapping the engine
onto the paper; start at Mine in engine.go and read alongside. For the
repository-level view — how this engine relates to the facade, the txdb
and taxonomy substrate, and the flipperd serving layer above it — see
docs/ARCHITECTURE.md.

# The search space (paper §4, Figure 6)

The table M has rows h = 1..H (taxonomy levels, 1 most general) and columns
k = 2..K (itemset sizes). Cell Q(h,k) holds k-itemsets whose items are
level-h taxonomy nodes from pairwise distinct level-1 subtrees. K is
bounded by the smallest maximum transaction width across the levels, the
level-1 fanout, and Config.MaxK.

# Processing order (paper §4.3.1, Figure 7(b), Algorithm 1)

Rows 1 and 2 are computed zigzag — Q(1,2), Q(2,2), Q(1,3), Q(2,3), … — so
the termination check always has two vertically consecutive cells in hand.
Rows 3..H follow one at a time, left to right. After finishing row h the
cells of row h−2 are released wholesale — each cell's candidate slabs
(item arena, supports, trie nodes, metadata) drop with the cell pointer.
Alive entries copy their level info into the miner's chain arena as they
are labeled, linked upward by index, so chains survive row frees without
keeping any cell alive. This is how the paper's "eliminate non-flipping
patterns in rows h−1 and h" keeps memory proportional to two rows plus the
output (Figure 9(b)).

# Candidate generation (cells.go)

Row 1 is a complete level-wise Apriori over the frequent level-1 items:
join prefix-sharing (k−1)-itemsets, check every (k−1)-subset. Row 1 has no
parent row, so its cells contain every frequent k-itemset at level 1.

Rows ≥ 2 grow vertically: each chain-alive itemset P in Q(h−1,k) expands
into the Cartesian product of its items' children (taxonomy.ChildrenAt,
which also realizes Figure 3 variant B by letting a shallow leaf stand in
for itself). A candidate is dropped early when one of its items is not a
frequent level-h 1-item, when SIBP excluded one of its items, or when a
(k−1)-subset was counted in Q(h,k−1) and found infrequent. Dropping
requires positive evidence of infrequency: a subset that was never
generated (possible under vertical gating) proves nothing.

Why vertical expansion instead of the textbook join within each row: a
subitemset of a flipping pattern need not have an alive chain of its own,
so joins over chain-gated cells can fail to assemble candidates that are
legitimate flipping-pattern generalizations. Children-of-alive-parents
generates exactly {A : parent(A) alive} ⊇ {generalizations of flipping
patterns}, keeping the miner complete; the randomized equivalence suite
(equivalence_test.go) pins this against BASIC enumeration.

# Counting (counting.go)

Candidates live in a trie-indexed slab store (internal/candtrie): items in
one arena, supports in one slice, and a prefix trie over item IDs indexing
both. CountScan is the paper's strategy: one sequential pass per cell.
Per-level views are materialized once and deduplicated
(txdb.LevelView.Dedup) — generalization collapses many raw transactions
onto few distinct ones, so upper rows count over tiny weighted sets. Each
transaction is filtered to candidate-relevant items and walked down the
trie (candtrie.Store.CountTx): only subsets sharing a prefix with some
candidate are ever enumerated, and no key bytes or map probes appear in
the inner loop (Stats.ProbesPruned counts what the descent skipped). Work
is fanned out over Config.Parallelism workers that merge plain int64 count
slices. With Config.Materialize=false the engine instead re-reads the
Source every pass — the paper's disk-resident mode. CountTIDList
intersects per-item transaction-id lists, CountBitmap ANDs per-item bit
vectors over the distinct weighted transactions and pop-counts the result
(internal/bitmap; vectors are built lazily per level and cached, like the
tid lists) — both iterate the candidate slab directly. CountAuto picks per
cell using a three-way cost estimate in word-operation units (a trie scan
probe is calibrated as 2.5 of those; see chooseStrategy).

Every backend also has a shard-parallel variant (counting_shard.go),
selected by Config.Shards or by mining a txdb.ShardedSource: the database
is split into contiguous transaction shards, each worker owns one shard —
its own level views, dedup, tid lists and bitmap index, built concurrently
at init — and fills a private partial support vector; mergePartials sums
the partials into the candidate slab in shard order. Integer sums make the
sharded output byte-identical to the unsharded run (shard_test.go pins
this across strategies, pruning levels and shard counts), which is why
Shards, like Parallelism, is excluded from Config.CanonicalKey. Sharded
streaming scans the shard sources in parallel — for per-shard basket
files, the out-of-core mode. Stats.Shards and Stats.ShardMergeNs surface
the fan-out and the serial merge fraction.

# Labeling and chains (engine.go finishCell)

A counted itemset with sup ≥ θ_h gets Corr computed from the level's
single-item supports, then a label: positive (≥ γ), negative (≤ ε) or none.
alive(1,k) = labeled; alive(h,k) = labeled ∧ parent alive ∧ label flips
parent's (the parent's chain index and label are captured at generation
time, so no cross-row pointers exist). Alive entries in row H are the
flipping patterns; assemble walks the chain-arena links to emit the full
chain.

# Pruning ladder (paper §4.2–4.3)

  - support: infrequent candidates are marked in the slab (their items
    stay for the subset checks of the cell to the right, until the row is
    freed).
  - flipping: only alive entries expand vertically; dead rows are freed.
  - TPG (Theorem 3): if two vertically consecutive cells hold at least one
    frequent itemset and no positive one, columns ≥ k of the row pair are
    abandoned. The check requires frequent evidence so that cells emptied
    by gating alone cannot fire it.
  - SIBP (Theorem 2 / Corollary 2): per level, walk the frequent items by
    ascending support; the maximal prefix whose members occur in no
    positive k-itemset forms R_h(k). An item whose level-(h−1)
    generalization sits in R_{h−1}(k) while the item sits in R_h(k) can
    never appear in a flipping pattern of size > k and is excluded from the
    row's further candidate generation. Both R sets must come from the same
    column (rsetCol) — a stale upper set proves nothing.

# BASIC (basic.go)

The baseline is a complete per-level Apriori with support-only pruning and
post-processing, retaining every counted candidate for the whole run: the
pipeline the paper compares against ("compute all frequent patterns before
ranking"). It shares counting and labeling code with Flipper, so runtime
and memory comparisons (Figures 8 and 9) isolate exactly the pruning.
*/
package core
