package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/flipper-mining/flipper/internal/bitmap"
	"github.com/flipper-mining/flipper/internal/candtrie"
	"github.com/flipper-mining/flipper/internal/itemset"
	"github.com/flipper-mining/flipper/internal/sketch"
	"github.com/flipper-mining/flipper/internal/taxonomy"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// Result carries the patterns and counters of one mining run.
type Result struct {
	// Patterns holds every flipping pattern, deterministically ordered (by
	// size then leaf items), or the top-K by gap when Config.TopK is set.
	Patterns []Pattern
	// Stats aggregates cost counters (scans, candidates, memory peaks).
	Stats Stats
}

// Engine mines one source/taxonomy pair repeatedly, caching everything that
// depends only on the dataset — materialized level views, deduplicated
// weighted transactions, the flat scan arenas, and the lazily built tid
// lists and bitmap indexes, each with their per-shard equivalents — across
// Mine calls, plus a pool of per-run scratch (candidate stores, counting
// buffers, chain arenas) so repeated runs stop paying full allocation.
//
// Cached state is keyed by the parts of the configuration that shape it
// (Materialize and the resolved shard count); every other knob varies freely
// across calls over the same caches. All methods are safe for concurrent
// use: dataset state is built once and read-only afterwards, and each run
// checks scratch out of the pool for exclusive use.
//
// A warm run is byte-identical to a cold one: pattern bytes trivially so,
// and the cost-model decisions and stats (db_scans, bitmap_builds,
// bitmap_word_ops, …) because the miner accounts index builds and init
// passes logically per run, whether or not the cache already held them.
type Engine struct {
	src  txdb.Source
	tree *taxonomy.Tree

	mu         sync.Mutex
	data       map[dataKey]*dataState
	scratch    []*runScratch // LIFO so the warmest arenas are reused first
	sketchPath string        // optional on-disk sketch cache (SetSketchPath)
}

// SetSketchPath points the engine at an on-disk cache for the anchored-search
// item sketches. When set, an anchored run first tries to load the file
// (validated by signature size and a dataset fingerprint, so a stale or
// foreign file is rebuilt, never trusted) and saves freshly built sketches
// back, best-effort, for the next engine over the same dataset.
func (e *Engine) SetSketchPath(path string) {
	e.mu.Lock()
	e.sketchPath = path
	e.mu.Unlock()
}

func (e *Engine) sketchFile() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sketchPath
}

// NewEngine returns an engine over the source and taxonomy. The source and
// tree must not be mutated while the engine is in use — cached level views
// and indexes alias their storage.
func NewEngine(src txdb.Source, tree *taxonomy.Tree) *Engine {
	return &Engine{src: src, tree: tree, data: make(map[dataKey]*dataState)}
}

// dataKey identifies one cached dataset representation: whether level views
// are materialized, and how many transaction shards counting fans out over
// (0 when unsharded).
type dataKey struct {
	materialize bool
	shards      int
}

// dataState is the dataset-derived state of one (materialize, shards)
// representation. The base fields are built once under the sync.Once; the
// tid lists and bitmap indexes build lazily under mu on first use by any
// run and are then shared read-only.
type dataState struct {
	once sync.Once
	err  error

	shards []txdb.Source // resolved shard sources; nil/len≤1 when unsharded

	views    []*txdb.LevelView      // indexed by level; nil when streaming
	distinct [][]txdb.WeightedTx    // deduplicated weighted txs per level
	flat     []flatLevel            // cache-blocked scan layout per level
	sup1     []map[itemset.ID]int64 // all single supports per level
	widths   []int                  // max generalized width per level

	shardLv   [][]*txdb.LevelView   // [level][shard]; nil when streaming
	shardDist [][][]txdb.WeightedTx // [level][shard]
	shardFlat [][]flatLevel         // [level][shard]

	mu       sync.Mutex // guards the lazy index builds below
	tid      []map[itemset.ID][]int32
	bitmaps  []*bitmap.Index
	shardTID [][]map[itemset.ID][]int32
	shardBM  [][]*bitmap.Index
	sketches map[int]*sketch.Set // anchored-search sketches by signature size
}

func (ds *dataState) sharded() bool { return len(ds.shards) > 1 }

// dataFor resolves (building at most once) the dataset state a run over cfg
// needs.
func (e *Engine) dataFor(cfg Config) (*dataState, error) {
	shards := resolveShardSources(e.src, cfg.Shards)
	key := dataKey{materialize: cfg.Materialize, shards: len(shards)}
	e.mu.Lock()
	ds := e.data[key]
	if ds == nil {
		ds = &dataState{shards: shards}
		e.data[key] = ds
	}
	e.mu.Unlock()
	ds.once.Do(func() { ds.err = ds.build(e.src, e.tree, cfg) })
	return ds, ds.err
}

// build materializes level views (or streams one single-support pass) for
// this representation. Parallelism of the build follows the triggering
// run's configuration; the built state is identical either way.
func (ds *dataState) build(src txdb.Source, tax *taxonomy.Tree, cfg Config) error {
	H := tax.Height()
	ds.views = make([]*txdb.LevelView, H+1)
	ds.distinct = make([][]txdb.WeightedTx, H+1)
	ds.flat = make([]flatLevel, H+1)
	ds.sup1 = make([]map[itemset.ID]int64, H+1)
	ds.widths = make([]int, H+1)
	ds.tid = make([]map[itemset.ID][]int32, H+1)
	ds.bitmaps = make([]*bitmap.Index, H+1)
	if ds.sharded() {
		ds.shardLv = make([][]*txdb.LevelView, H+1)
		ds.shardDist = make([][][]txdb.WeightedTx, H+1)
		ds.shardFlat = make([][]flatLevel, H+1)
		ds.shardTID = make([][]map[itemset.ID][]int32, H+1)
		ds.shardBM = make([][]*bitmap.Index, H+1)
	}
	switch {
	case cfg.Materialize && ds.sharded():
		// Per-shard level views, built concurrently (a bounded worker pool
		// over the shards, then another for dedup). The merged per-item
		// supports and widths are exact integer aggregates of the shard
		// views, so the level summaries the rest of the run reads are
		// identical to the unsharded Materialize.
		for h := 1; h <= H; h++ {
			views, err := txdb.MaterializeShards(ds.shards, tax, h, boundWorkers(&cfg, len(ds.shards)))
			if err != nil {
				return err
			}
			ds.shardLv[h] = views
			dist := make([][]txdb.WeightedTx, len(views))
			flats := make([]flatLevel, len(views))
			txdb.ForEachShard(boundWorkers(&cfg, len(views)), len(views), func(_, s int) {
				dist[s] = views[s].Dedup()
				flats[s] = flatten(dist[s])
			})
			ds.shardDist[h] = dist
			ds.shardFlat[h] = flats
			sup := make(map[itemset.ID]int64)
			width := 0
			for _, v := range views {
				if v.MaxWidth > width {
					width = v.MaxWidth
				}
				for id, n := range v.Support {
					sup[id] += n
				}
			}
			ds.views[h] = &txdb.LevelView{Level: h, Support: sup, MaxWidth: width}
			ds.sup1[h] = sup
			ds.widths[h] = width
		}
	case cfg.Materialize:
		for h := 1; h <= H; h++ {
			lv, err := txdb.Materialize(src, tax, h)
			if err != nil {
				return err
			}
			ds.views[h] = lv
			ds.distinct[h] = lv.Dedup()
			ds.flat[h] = flatten(ds.distinct[h])
			ds.sup1[h] = lv.Support
			ds.widths[h] = lv.MaxWidth
		}
	case ds.sharded():
		// Streaming init over shards: a worker pool runs the single-item
		// passes concurrently; the per-level integer aggregates then merge.
		if err := ds.streamSingleSupportsShards(tax, H, boundWorkers(&cfg, len(ds.shards))); err != nil {
			return err
		}
	default:
		// One streaming pass computing all levels' single supports.
		for h := 1; h <= H; h++ {
			ds.sup1[h] = make(map[itemset.ID]int64)
		}
		buf := make([]itemset.ID, 0, 32)
		err := src.Scan(func(tx itemset.Set) error {
			for h := 1; h <= H; h++ {
				buf = buf[:0]
				for _, id := range tx {
					if a, ok := tax.AncestorAt(id, h); ok {
						buf = append(buf, a)
					}
				}
				g := canonInto(buf)
				if len(g) > ds.widths[h] {
					ds.widths[h] = len(g)
				}
				for _, id := range g {
					ds.sup1[h][id]++
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// initScans is the number of database passes the init of this
// representation logically costs a run — one materialization pass per level,
// or one streaming single-support pass. Charged per run whether or not the
// cache already held the state, so warm stats match cold ones byte for byte.
func initScans(cfg *Config, height int) int64 {
	if cfg.Materialize {
		return int64(height)
	}
	return 1
}

// flatLevel is the cache-blocked scan layout of one level's deduplicated
// weighted transactions: every itemset concatenated into one contiguous
// arena with parallel start offsets and weights. The scan counter walks the
// arena sequentially, so a block of transactions streams through L1/L2
// while the candidate trie's CSR slabs stay resident — no per-transaction
// pointer chasing into view storage.
type flatLevel struct {
	items   []itemset.ID
	starts  []int32 // len = n()+1; tx t is items[starts[t]:starts[t+1]]
	weights []int64
}

func (f *flatLevel) n() int { return len(f.weights) }

func flatten(dist []txdb.WeightedTx) flatLevel {
	total := 0
	for _, wt := range dist {
		total += len(wt.Items)
	}
	f := flatLevel{
		items:   make([]itemset.ID, 0, total),
		starts:  make([]int32, 1, len(dist)+1),
		weights: make([]int64, 0, len(dist)),
	}
	for _, wt := range dist {
		f.items = append(f.items, wt.Items...)
		f.starts = append(f.starts, int32(len(f.items)))
		f.weights = append(f.weights, wt.Weight)
	}
	return f
}

// canonInto sorts and deduplicates buf in place and returns the canonical
// prefix — itemset.New without the allocation, for scratch buffers the
// caller owns.
func canonInto(buf []itemset.ID) itemset.Set {
	if len(buf) == 0 {
		return nil
	}
	sortIDs(buf)
	out := buf[:1]
	for _, id := range buf[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return itemset.Set(out)
}

// runScratch is the reusable per-run arena set. One run checks it out of
// the engine pool for exclusive use; everything in it is either overwritten
// or explicitly cleared before reuse.
type runScratch struct {
	cells    map[int][]*cell // retired cells by k, stores Reset and reusable
	chains   []chainRec      // chain arena backing (records cleared at release)
	sups     []int64         // finishCell single-support scratch
	partials [][]int64       // per-worker counting buffers, zeroed on checkout
	vecs     [][]bitmap.Vector
	tidScr   []tidScratch
	cand     []itemset.ID // candidate canonicalization buffer
	genBuf   []itemset.ID // streaming generalization buffer
}

func (e *Engine) getScratch() *runScratch {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n := len(e.scratch); n > 0 {
		sc := e.scratch[n-1]
		e.scratch = e.scratch[:n-1]
		return sc
	}
	return &runScratch{cells: make(map[int][]*cell)}
}

func (e *Engine) putScratch(sc *runScratch) {
	e.mu.Lock()
	e.scratch = append(e.scratch, sc)
	e.mu.Unlock()
}

// supsFor returns a length-k int64 scratch (contents unspecified).
func (sc *runScratch) supsFor(k int) []int64 {
	if cap(sc.sups) < k {
		sc.sups = make([]int64, k)
	}
	return sc.sups[:k]
}

// candFor returns a length-k item scratch (contents unspecified).
func (sc *runScratch) candFor(k int) []itemset.ID {
	if cap(sc.cand) < k {
		sc.cand = make([]itemset.ID, k)
	}
	return sc.cand[:k]
}

// partialsFor returns `workers` zeroed counting vectors of length n each.
func (sc *runScratch) partialsFor(workers, n int) [][]int64 {
	for len(sc.partials) < workers {
		sc.partials = append(sc.partials, nil)
	}
	out := sc.partials[:workers]
	for w := range out {
		if cap(out[w]) < n {
			out[w] = make([]int64, n)
		} else {
			out[w] = out[w][:n]
			clear(out[w])
		}
	}
	return out
}

// vecsFor returns `workers` vector-header scratches of length k each.
func (sc *runScratch) vecsFor(workers, k int) [][]bitmap.Vector {
	for len(sc.vecs) < workers {
		sc.vecs = append(sc.vecs, nil)
	}
	out := sc.vecs[:workers]
	for w := range out {
		if cap(out[w]) < k {
			out[w] = make([]bitmap.Vector, k)
		}
		out[w] = out[w][:k]
	}
	return out
}

// tidScratchFor returns `workers` tid-list intersection scratches.
func (sc *runScratch) tidScratchFor(workers int) []tidScratch {
	for len(sc.tidScr) < workers {
		sc.tidScr = append(sc.tidScr, tidScratch{})
	}
	return sc.tidScr[:workers]
}

// entryMeta is the engine-side metadata of one candidate slab entry. Items
// and supports live in the cell's candtrie.Store; this parallel slab holds
// what labeling and chain linking add on top. Chain references are indexes
// into the miner's chain arena, never pointers into other cells, so freeing
// a row releases its slabs wholesale.
type entryMeta struct {
	corr        float64
	parentChain int32 // chain-arena index of the alive parent; -1 in row 1
	chain       int32 // chain-arena index once this entry is alive; -1
	label       Label
	parentLabel Label // label of the parent entry at generation time
	alive       bool
	infrequent  bool // counted, sup < θ_h; retained for subset checks only
}

// cell is one Q(h,k) of the table M: the counted k-itemsets at level h.
// Candidates live in a trie-indexed slab store with a parallel metadata
// slab; membership, subset checks and scan counting all go through the trie
// (no key strings, no map probes).
type cell struct {
	h, k       int
	store      *candtrie.Store
	meta       []entryMeta
	candidates int
	frequent   int
	positive   int
	negative   int
	alive      int
}

func newCell(h, k int) *cell {
	return &cell{h: h, k: k, store: candtrie.New(k)}
}

// cell checks a pooled cell out of the run scratch (store slabs retained
// from earlier rows or runs) or allocates a fresh one.
func (m *miner) cell(h, k int) *cell {
	if list := m.sc.cells[k]; len(list) > 0 {
		c := list[len(list)-1]
		m.sc.cells[k] = list[:len(list)-1]
		c.h, c.k = h, k
		c.meta = c.meta[:0]
		c.candidates, c.frequent, c.positive, c.negative, c.alive = 0, 0, 0, 0, 0
		return c
	}
	return newCell(h, k)
}

// retireCell resets a cell's store and returns it to the run scratch for
// reuse by a later row or run. Callers must be done with every alias into
// the store's arenas.
func (m *miner) retireCell(c *cell) {
	c.store.Reset()
	m.sc.cells[c.k] = append(m.sc.cells[c.k], c)
}

// chainRec is one link of a flipping chain in the miner's chain arena. When
// an entry turns out alive, its level info is copied here (items cloned out
// of the cell's arena), so pattern assembly never needs a freed row's slab.
type chainRec struct {
	items  itemset.Set
	sup    int64
	corr   float64
	label  Label
	parent int32 // chain-arena index of the level-(h-1) link; -1 at level 1
}

// miner holds the state of one run: the configuration-dependent level
// summaries (frequent items, thresholds, SIBP state), the live rows of the
// search table, the chain arena, and the run's stats. Dataset-derived state
// is read through m.ds; reusable arenas through m.sc.
type miner struct {
	cfg    Config
	tax    *taxonomy.Tree
	src    txdb.Source
	height int
	n      int
	minSup []int64 // absolute, indexed by level (0 unused)

	eng *Engine
	ds  *dataState
	sc  *runScratch

	freq1  []map[itemset.ID]int64 // frequent single supports per level
	sorted [][]itemset.ID         // frequent items per level, ascending support (SIBP)

	// bmBuilt marks levels whose bitmap indexes this run has logically
	// built. The engine may serve a cached index, but the cost model and
	// Stats.BitmapBuilds follow these per-run flags, so a warm run chooses
	// the same strategies and reports the same stats as a cold one.
	bmBuilt []bool

	rows     []map[int]*cell       // rows[h][k]
	excluded []map[itemset.ID]bool // SIBP-excluded items per level
	rset     []map[itemset.ID]bool // R_h of the most recent column per level
	rsetCol  []int                 // column the R set belongs to

	// chains is the chain arena: one record per alive entry, linked upward
	// by index. It is the only candidate state that outlives freeRow.
	chains []chainRec

	stats Stats
	maxK  int

	// done is the run context's cancellation channel (nil when the run is
	// not cancellable, e.g. plain Mine). The mining loops poll it between
	// cells and the counting backends poll it at block granularity, so a
	// cancelled run unwinds within a bounded amount of counting work; an
	// uncancellable run pays one nil check per poll.
	done <-chan struct{}

	// ctx is the run's context; counting delegated over the network needs
	// the context itself, not just its done channel. Background for plain
	// Mine.
	ctx context.Context

	// remote, when set, replaces every local counting backend: count hands
	// each cell's candidates to it and trusts the returned totals
	// (MineRemote). Errors park in scanErr like streaming scan failures.
	remote CellCounter

	// scanErr records the first streaming counting-pass failure (the
	// materialized paths surface errors at init instead). Counting cannot
	// return errors through the mining loop, so the streaming backends park
	// the failure here, later passes short-circuit on it, and Mine fails
	// with it rather than returning silently undercounted patterns.
	scanErr error
}

// Mine runs the Flipper algorithm (or the BASIC baseline, depending on
// cfg.Pruning) over src with the given taxonomy.
//
// The taxonomy must offer a generalization at every level for every leaf:
// either it is balanced, or it was extended with taxonomy.Tree.Extend
// (the paper's Figure 3 variant B) or truncated to uniform levels.
//
// Mine builds a single-use Engine; callers mining the same dataset
// repeatedly should hold one Engine and call its Mine method, which reuses
// level views, bitmap indexes and counting arenas across runs.
func Mine(src txdb.Source, tree *taxonomy.Tree, cfg Config) (*Result, error) {
	return (&Engine{src: src, tree: tree, data: make(map[dataKey]*dataState)}).Mine(cfg)
}

// MineContext is Mine with a cancellable context; see Engine.MineContext for
// the cancellation contract.
func MineContext(ctx context.Context, src txdb.Source, tree *taxonomy.Tree, cfg Config) (*Result, error) {
	return (&Engine{src: src, tree: tree, data: make(map[dataKey]*dataState)}).MineContext(ctx, cfg)
}

// Mine runs one mining pass over the engine's dataset, reusing every cached
// representation and pooled arena a previous run left behind. Safe for
// concurrent use; the result is byte-identical to a cold Mine.
func (e *Engine) Mine(cfg Config) (*Result, error) {
	return e.MineContext(context.Background(), cfg)
}

// errCancelled is the sentinel a cancelled run's streaming scan callbacks
// abort their pass with; MineContext reports ctx.Err() instead, so the
// sentinel never escapes.
var errCancelled = fmt.Errorf("core: run cancelled")

// MineContext is Mine under a context: when ctx is cancelled or its deadline
// passes, the run stops at the next cancellation checkpoint — the mining
// loops check between cells and every counting backend checks at block
// granularity inside its worker loops — and returns an error wrapping
// ctx.Err(). No partial Result is ever returned. Checkpoints are polls of
// the context's done channel, so an uncancellable context (e.g.
// context.Background, which plain Mine uses) costs one nil check per poll
// and the hot counting loops stay unaffected.
//
// Dataset-state builds (materialized views, lazily built indexes) are shared
// across concurrent runs and therefore not cancellable: a run gives up
// before and after binding, but never aborts a build another run may be
// waiting on.
func (e *Engine) MineContext(ctx context.Context, cfg Config) (*Result, error) {
	return e.mineContext(ctx, cfg, nil)
}

// mineContext is the shared run body of MineContext and MineRemote: one
// mining pass under ctx, counting locally or through remote.
func (e *Engine) mineContext(ctx context.Context, cfg Config, remote CellCounter) (*Result, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: mine aborted: %w", err)
	}
	if e.tree == nil {
		return nil, fmt.Errorf("core: nil taxonomy")
	}
	if !e.tree.IsBalanced() && !e.tree.Extended() {
		return nil, fmt.Errorf("core: taxonomy is unbalanced; call Extend (variant B) or Truncate (variant A) first")
	}
	minSup, err := cfg.validate(e.tree.Height(), e.src.Len())
	if err != nil {
		return nil, err
	}
	m := &miner{
		cfg:    cfg,
		tax:    e.tree,
		src:    e.src,
		height: e.tree.Height(),
		n:      e.src.Len(),
		minSup: minSup,
		done:   ctx.Done(),
		ctx:    ctx,
		remote: remote,
	}
	if err := m.bind(e); err != nil {
		return nil, err
	}
	defer m.release()

	var patterns []Pattern
	switch {
	case cfg.Anchor != "":
		patterns, err = m.mineAnchored()
		if err != nil {
			return nil, err
		}
	case cfg.Pruning == Basic:
		patterns = m.mineBasic()
	default:
		patterns = m.mineFlipper()
	}
	if err := ctx.Err(); err != nil {
		// Cancellation wins over any scan abort it caused: the caller sees
		// the context error, never the internal sentinel.
		return nil, fmt.Errorf("core: mine aborted: %w", err)
	}
	if m.scanErr != nil {
		return nil, fmt.Errorf("core: streaming counting pass failed: %w", m.scanErr)
	}
	switch {
	case cfg.Anchor != "":
		// mineAnchored already ranked by gap and truncated to AnchorTopK.
	case cfg.TopK > 0:
		sortPatternsByGap(patterns)
		if len(patterns) > cfg.TopK {
			patterns = patterns[:cfg.TopK]
		}
	default:
		sortPatterns(patterns)
	}
	m.stats.Elapsed = time.Since(start)
	return &Result{Patterns: patterns, Stats: m.stats}, nil
}

// init binds the miner to a fresh single-use engine — the compatibility
// path for directly constructed miners (tests build them by hand);
// Engine.Mine binds against the shared engine instead.
func (m *miner) init() error {
	return m.bind(NewEngine(m.src, m.tax))
}

// bind attaches the miner to an engine: resolves (building if needed) the
// dataset state for its configuration, checks scratch out of the pool, and
// computes the per-run level summaries and logical init accounting.
func (m *miner) bind(e *Engine) error {
	ds, err := e.dataFor(m.cfg)
	if err != nil {
		return err
	}
	m.eng = e
	m.ds = ds
	m.sc = e.getScratch()
	m.chains = m.sc.chains[:0]

	H := m.height
	m.freq1 = make([]map[itemset.ID]int64, H+1)
	m.sorted = make([][]itemset.ID, H+1)
	m.bmBuilt = make([]bool, H+1)
	m.rows = make([]map[int]*cell, H+1)
	m.excluded = make([]map[itemset.ID]bool, H+1)
	m.rset = make([]map[itemset.ID]bool, H+1)
	m.rsetCol = make([]int, H+1)
	for h := 1; h <= H; h++ {
		m.rows[h] = make(map[int]*cell)
		m.excluded[h] = make(map[itemset.ID]bool)
	}
	m.stats.Shards = 1
	if ds.sharded() {
		m.stats.Shards = len(ds.shards)
	}
	m.stats.DBScans += initScans(&m.cfg, H)

	for h := 1; h <= H; h++ {
		freq := make(map[itemset.ID]int64)
		for id, sup := range ds.sup1[h] {
			if sup >= m.minSup[h] {
				freq[id] = sup
			}
		}
		m.freq1[h] = freq
		items := make([]itemset.ID, 0, len(freq))
		for id := range freq {
			items = append(items, id)
		}
		sort.Slice(items, func(i, j int) bool {
			si, sj := freq[items[i]], freq[items[j]]
			if si != sj {
				return si < sj
			}
			return items[i] < items[j]
		})
		m.sorted[h] = items
	}

	// Column bound K: itemsets wider than any transaction at a level cannot
	// be frequent there; flipping chains need every level, so the minimum
	// width over the levels bounds the whole table. The level-1 fanout and
	// MaxK bound it further.
	K := ds.widths[1]
	for h := 2; h <= H; h++ {
		if ds.widths[h] < K {
			K = ds.widths[h]
		}
	}
	if f := len(m.freq1[1]); f < K {
		K = f
	}
	if m.cfg.MaxK > 0 && m.cfg.MaxK < K {
		K = m.cfg.MaxK
	}
	m.maxK = K

	m.stats.Transactions = m.n
	m.stats.Height = H
	m.stats.MaxK = K
	return nil
}

// release retires every still-live cell into the scratch pool and returns
// the scratch to the engine. Patterns never alias cell or chain storage —
// chain records clone their items and collectBasic clones what it exports —
// so the arenas are free for the next run the moment mining ends.
func (m *miner) release() {
	for h := range m.rows {
		for _, c := range m.rows[h] {
			m.retireCell(c)
		}
		m.rows[h] = nil
	}
	sc := m.sc
	sc.chains = m.chains
	clear(sc.chains) // drop references to the cloned chain itemsets
	sc.chains = sc.chains[:0]
	m.sc = nil
	m.eng.putScratch(sc)
}

// sharded reports whether counting fans out over shards.
func (m *miner) sharded() bool { return m.ds.sharded() }

// canceled is the shared cancellation checkpoint: one nil check when the run
// has no cancellable context, one non-blocking channel poll otherwise.
// Counting workers call it with the miner's done channel at block
// granularity, so the per-element hot loops never pay for it.
func canceled(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// cancelled is the single-goroutine checkpoint of the mining loops.
func (m *miner) cancelled() bool { return canceled(m.done) }

// mineFlipper is Algorithm 1: zigzag over rows 1–2, then row-wise descent,
// with flipping gating and (by pruning level) TPG and SIBP.
func (m *miner) mineFlipper() []Pattern {
	H := m.height
	// Rows 1 and 2, zigzag: Q(1,k) then Q(2,k) for growing k.
	for k := 2; k <= m.maxK; k++ {
		if m.cancelled() {
			return nil
		}
		c1 := m.row1Cell(k)
		m.finishCell(c1)
		m.rows[1][k] = c1
		c2 := m.childCell(2, k)
		m.finishCell(c2)
		m.rows[2][k] = c2
		if m.cfg.Pruning.usesSIBP() {
			m.sibpUpdate(1, k, c1)
			m.sibpUpdate(2, k, c2)
			m.sibpExclude(2, k)
		}
		if c1.candidates == 0 {
			break // row 1 exhausted; nothing can grow to the right
		}
		if m.tpg(c1, c2) {
			break
		}
	}
	// Rows 3..H, one row at a time.
	for h := 3; h <= H; h++ {
		for k := 2; k <= m.maxK; k++ {
			if m.cancelled() {
				return nil
			}
			parent := m.rows[h-1][k]
			if parent == nil {
				break // the row above stopped before this column
			}
			c := m.childCell(h, k)
			m.finishCell(c)
			m.rows[h][k] = c
			if m.cfg.Pruning.usesSIBP() {
				m.sibpUpdate(h, k, c)
				m.sibpExclude(h, k)
			}
			if m.tpg(parent, c) {
				break
			}
		}
		// "Eliminate non-flipping patterns in rows h-1 and h": everything
		// two rows up can no longer influence generation; free it.
		m.freeRow(h - 2)
	}
	return m.collect()
}

// tpg applies the Theorem-3 check to two vertically consecutive cells. To
// avoid firing on cells that are empty only because of vertical gating (see
// DESIGN.md), it requires at least one frequent itemset across the pair.
func (m *miner) tpg(up, down *cell) bool {
	if !m.cfg.Pruning.usesTPG() {
		return false
	}
	if up.frequent == 0 && down.frequent == 0 {
		return false
	}
	if up.positive == 0 && down.positive == 0 {
		m.stats.TPGBreaks++
		return true
	}
	return false
}

// finishCell counts a cell's candidates, labels the frequent ones, links
// chain liveness into the chain arena, and marks infrequent candidates
// (their items stay in the slab for Apriori subset checks until the row is
// freed, but they leave the resident-candidate metric immediately).
func (m *miner) finishCell(c *cell) {
	if c.candidates > 0 {
		m.count(c)
	}
	thr := m.minSup[c.h]
	sup1 := m.ds.sup1[c.h]
	sups := m.sc.supsFor(c.k)
	for i := range c.meta {
		e := &c.meta[i]
		sup := c.store.Sup[i]
		if sup < thr {
			e.infrequent = true
			m.stats.dropResident(1, c.k)
			continue
		}
		items := c.store.Items(int32(i))
		c.frequent++
		m.stats.FrequentItemsets++
		for j, id := range items {
			sups[j] = sup1[id]
		}
		e.corr = m.cfg.Measure.Corr(sup, sups)
		switch {
		case e.corr >= m.cfg.Gamma:
			e.label = LabelPositive
			c.positive++
			m.stats.PositiveItemsets++
		case e.corr <= m.cfg.Epsilon:
			e.label = LabelNegative
			c.negative++
			m.stats.NegativeItemsets++
		}
		if c.h == 1 {
			e.alive = e.label.Labeled()
		} else {
			// childCell only expands alive parents, so parentChain ≥ 0 holds
			// for every generated candidate; the check guards hand-built cells.
			e.alive = e.label.Labeled() && e.parentChain >= 0 && e.label.Flips(e.parentLabel)
		}
		if e.alive {
			c.alive++
			m.stats.AliveItemsets++
			e.chain = int32(len(m.chains))
			m.chains = append(m.chains, chainRec{
				items:  items.Clone(),
				sup:    sup,
				corr:   e.corr,
				label:  e.label,
				parent: e.parentChain,
			})
		}
	}
	if m.cfg.KeepCellStats {
		m.stats.Cells = append(m.stats.Cells, CellStat{
			H: c.h, K: c.k, Candidates: c.candidates,
			Frequent: c.frequent, Positive: c.positive, Negative: c.negative, Alive: c.alive,
		})
	}
}

// freeRow releases the cells of a completed row. Because chain links live in
// the miner's chain arena (alive entries copy their level info there as they
// are labeled), dropping the row's cells frees the candidate slabs — item
// arena, support slice, trie nodes, metadata — wholesale, with no per-entry
// bookkeeping; the slabs go back to the scratch pool for the next row.
// This is the paper's memory story for Figure 9(b): only alive chain links
// outlive their row.
func (m *miner) freeRow(h int) {
	if h < 1 || m.rows[h] == nil {
		return
	}
	for _, c := range m.rows[h] {
		m.stats.dropResident(c.frequent, c.k)
		m.retireCell(c)
	}
	m.rows[h] = nil
}

// collect assembles patterns from alive entries of the leaf row.
func (m *miner) collect() []Pattern {
	var out []Pattern
	leafRow := m.rows[m.height]
	if leafRow == nil {
		return nil
	}
	for _, c := range leafRow {
		for i := range c.meta {
			if !c.meta[i].alive {
				continue
			}
			out = append(out, m.assemble(c.meta[i].chain))
		}
	}
	return out
}

// assemble walks a leaf entry's chain-arena links into a Pattern.
func (m *miner) assemble(ci int32) Pattern {
	chain := make([]LevelInfo, m.height)
	cur := ci
	for h := m.height; h >= 1; h-- {
		r := &m.chains[cur]
		chain[h-1] = LevelInfo{
			Level:   h,
			Items:   r.items,
			Support: r.sup,
			Corr:    r.corr,
			Label:   r.label,
		}
		cur = r.parent
	}
	p := Pattern{Leaf: chain[m.height-1].Items, Chain: chain}
	p.computeGap()
	return p
}
