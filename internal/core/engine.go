package core

import (
	"fmt"
	"sort"
	"time"

	"github.com/flipper-mining/flipper/internal/bitmap"
	"github.com/flipper-mining/flipper/internal/candtrie"
	"github.com/flipper-mining/flipper/internal/itemset"
	"github.com/flipper-mining/flipper/internal/taxonomy"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// Result carries the patterns and counters of one mining run.
type Result struct {
	// Patterns holds every flipping pattern, deterministically ordered (by
	// size then leaf items), or the top-K by gap when Config.TopK is set.
	Patterns []Pattern
	// Stats aggregates cost counters (scans, candidates, memory peaks).
	Stats Stats
}

// entryMeta is the engine-side metadata of one candidate slab entry. Items
// and supports live in the cell's candtrie.Store; this parallel slab holds
// what labeling and chain linking add on top. Chain references are indexes
// into the miner's chain arena, never pointers into other cells, so freeing
// a row releases its slabs wholesale.
type entryMeta struct {
	corr        float64
	parentChain int32 // chain-arena index of the alive parent; -1 in row 1
	chain       int32 // chain-arena index once this entry is alive; -1
	label       Label
	parentLabel Label // label of the parent entry at generation time
	alive       bool
	infrequent  bool // counted, sup < θ_h; retained for subset checks only
}

// cell is one Q(h,k) of the table M: the counted k-itemsets at level h.
// Candidates live in a trie-indexed slab store with a parallel metadata
// slab; membership, subset checks and scan counting all go through the trie
// (no key strings, no map probes).
type cell struct {
	h, k       int
	store      *candtrie.Store
	meta       []entryMeta
	candidates int
	frequent   int
	positive   int
	negative   int
	alive      int
}

func newCell(h, k int) *cell {
	return &cell{h: h, k: k, store: candtrie.New(k)}
}

// chainRec is one link of a flipping chain in the miner's chain arena. When
// an entry turns out alive, its level info is copied here (items cloned out
// of the cell's arena), so pattern assembly never needs a freed row's slab.
type chainRec struct {
	items  itemset.Set
	sup    int64
	corr   float64
	label  Label
	parent int32 // chain-arena index of the level-(h-1) link; -1 at level 1
}

// miner holds the state of one run.
type miner struct {
	cfg    Config
	tax    *taxonomy.Tree
	src    txdb.Source
	height int
	n      int
	minSup []int64 // absolute, indexed by level (0 unused)

	views    []*txdb.LevelView // indexed by level; nil when streaming
	distinct [][]txdb.WeightedTx
	sup1     []map[itemset.ID]int64 // all single supports per level
	freq1    []map[itemset.ID]int64 // frequent single supports per level
	widths   []int                  // max generalized width per level
	sorted   [][]itemset.ID         // frequent items per level, ascending support (SIBP)
	tid      []map[itemset.ID][]int32
	bitmaps  []*bitmap.Index // lazily built per-level item bit vectors

	// Shard-parallel state (nil / empty when the run is unsharded). A
	// bounded pool of counting workers owns the shards — each shard its own
	// source, level views, dedup'd weighted transactions, and lazily built
	// tid lists and bitmap indexes. Per-worker partial support vectors are
	// merged into the candidate slabs (see counting_shard.go); integer sums
	// make the merged supports — and therefore the whole mined output —
	// identical to the unsharded run.
	shards    []txdb.Source
	shardLv   [][]*txdb.LevelView        // [level][shard]; nil when streaming
	shardDist [][][]txdb.WeightedTx      // [level][shard]
	shardTID  [][]map[itemset.ID][]int32 // [level][shard], lazy
	shardBM   [][]*bitmap.Index          // [level][shard], lazy

	rows     []map[int]*cell       // rows[h][k]
	excluded []map[itemset.ID]bool // SIBP-excluded items per level
	rset     []map[itemset.ID]bool // R_h of the most recent column per level
	rsetCol  []int                 // column the R set belongs to

	// chains is the chain arena: one record per alive entry, linked upward
	// by index. It is the only candidate state that outlives freeRow.
	chains []chainRec

	stats Stats
	maxK  int

	// scanErr records the first streaming counting-pass failure (the
	// materialized paths surface errors at init instead). Counting cannot
	// return errors through the mining loop, so the streaming backends park
	// the failure here, later passes short-circuit on it, and Mine fails
	// with it rather than returning silently undercounted patterns.
	scanErr error
}

// Mine runs the Flipper algorithm (or the BASIC baseline, depending on
// cfg.Pruning) over src with the given taxonomy.
//
// The taxonomy must offer a generalization at every level for every leaf:
// either it is balanced, or it was extended with taxonomy.Tree.Extend
// (the paper's Figure 3 variant B) or truncated to uniform levels.
func Mine(src txdb.Source, tree *taxonomy.Tree, cfg Config) (*Result, error) {
	start := time.Now()
	if tree == nil {
		return nil, fmt.Errorf("core: nil taxonomy")
	}
	if !tree.IsBalanced() && !tree.Extended() {
		return nil, fmt.Errorf("core: taxonomy is unbalanced; call Extend (variant B) or Truncate (variant A) first")
	}
	minSup, err := cfg.validate(tree.Height(), src.Len())
	if err != nil {
		return nil, err
	}
	m := &miner{
		cfg:    cfg,
		tax:    tree,
		src:    src,
		height: tree.Height(),
		n:      src.Len(),
		minSup: minSup,
	}
	if err := m.init(); err != nil {
		return nil, err
	}

	var patterns []Pattern
	if cfg.Pruning == Basic {
		patterns = m.mineBasic()
	} else {
		patterns = m.mineFlipper()
	}
	if m.scanErr != nil {
		return nil, fmt.Errorf("core: streaming counting pass failed: %w", m.scanErr)
	}
	if cfg.TopK > 0 {
		sortPatternsByGap(patterns)
		if len(patterns) > cfg.TopK {
			patterns = patterns[:cfg.TopK]
		}
	} else {
		sortPatterns(patterns)
	}
	m.stats.Elapsed = time.Since(start)
	return &Result{Patterns: patterns, Stats: m.stats}, nil
}

// init materializes level views (or streams one counting pass), resolves
// single-item supports, frequent item lists and the column bound K.
func (m *miner) init() error {
	H := m.height
	m.views = make([]*txdb.LevelView, H+1)
	m.distinct = make([][]txdb.WeightedTx, H+1)
	m.sup1 = make([]map[itemset.ID]int64, H+1)
	m.freq1 = make([]map[itemset.ID]int64, H+1)
	m.widths = make([]int, H+1)
	m.sorted = make([][]itemset.ID, H+1)
	m.tid = make([]map[itemset.ID][]int32, H+1)
	m.bitmaps = make([]*bitmap.Index, H+1)
	m.resolveShards()
	m.stats.Shards = 1
	if m.sharded() {
		m.stats.Shards = len(m.shards)
		m.shardLv = make([][]*txdb.LevelView, H+1)
		m.shardDist = make([][][]txdb.WeightedTx, H+1)
		m.shardTID = make([][]map[itemset.ID][]int32, H+1)
		m.shardBM = make([][]*bitmap.Index, H+1)
	}
	m.rows = make([]map[int]*cell, H+1)
	m.excluded = make([]map[itemset.ID]bool, H+1)
	m.rset = make([]map[itemset.ID]bool, H+1)
	m.rsetCol = make([]int, H+1)
	for h := 1; h <= H; h++ {
		m.rows[h] = make(map[int]*cell)
		m.excluded[h] = make(map[itemset.ID]bool)
	}

	switch {
	case m.cfg.Materialize && m.sharded():
		// Per-shard level views, built concurrently (a bounded worker pool
		// over the shards, then another for dedup). The merged per-item
		// supports and widths are exact integer aggregates of the shard
		// views, so the level summaries the rest of the run reads are
		// identical to the unsharded Materialize.
		for h := 1; h <= H; h++ {
			views, err := txdb.MaterializeShards(m.shards, m.tax, h, m.shardWorkers(len(m.shards)))
			if err != nil {
				return err
			}
			m.stats.DBScans++
			m.shardLv[h] = views
			dist := make([][]txdb.WeightedTx, len(views))
			txdb.ForEachShard(m.shardWorkers(len(views)), len(views), func(_, s int) {
				dist[s] = views[s].Dedup()
			})
			m.shardDist[h] = dist
			sup := make(map[itemset.ID]int64)
			width := 0
			for _, v := range views {
				if v.MaxWidth > width {
					width = v.MaxWidth
				}
				for id, n := range v.Support {
					sup[id] += n
				}
			}
			m.views[h] = &txdb.LevelView{Level: h, Support: sup, MaxWidth: width}
			m.sup1[h] = sup
			m.widths[h] = width
		}
	case m.cfg.Materialize:
		for h := 1; h <= H; h++ {
			lv, err := txdb.Materialize(m.src, m.tax, h)
			if err != nil {
				return err
			}
			m.stats.DBScans++
			m.views[h] = lv
			m.distinct[h] = lv.Dedup()
			m.sup1[h] = lv.Support
			m.widths[h] = lv.MaxWidth
		}
	case m.sharded():
		// Streaming init over shards: a worker pool runs the single-item
		// passes concurrently; the per-level integer aggregates then merge.
		if err := m.streamSingleSupportsShards(); err != nil {
			return err
		}
		m.stats.DBScans++
	default:
		// One streaming pass computing all levels' single supports.
		for h := 1; h <= H; h++ {
			m.sup1[h] = make(map[itemset.ID]int64)
		}
		buf := make([]itemset.ID, 0, 32)
		err := m.src.Scan(func(tx itemset.Set) error {
			for h := 1; h <= H; h++ {
				buf = buf[:0]
				for _, id := range tx {
					if a, ok := m.tax.AncestorAt(id, h); ok {
						buf = append(buf, a)
					}
				}
				g := itemset.New(buf...)
				if len(g) > m.widths[h] {
					m.widths[h] = len(g)
				}
				for _, id := range g {
					m.sup1[h][id]++
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		m.stats.DBScans++
	}

	for h := 1; h <= H; h++ {
		freq := make(map[itemset.ID]int64)
		for id, sup := range m.sup1[h] {
			if sup >= m.minSup[h] {
				freq[id] = sup
			}
		}
		m.freq1[h] = freq
		items := make([]itemset.ID, 0, len(freq))
		for id := range freq {
			items = append(items, id)
		}
		sort.Slice(items, func(i, j int) bool {
			si, sj := freq[items[i]], freq[items[j]]
			if si != sj {
				return si < sj
			}
			return items[i] < items[j]
		})
		m.sorted[h] = items
	}

	// Column bound K: itemsets wider than any transaction at a level cannot
	// be frequent there; flipping chains need every level, so the minimum
	// width over the levels bounds the whole table. The level-1 fanout and
	// MaxK bound it further.
	K := m.widths[1]
	for h := 2; h <= H; h++ {
		if m.widths[h] < K {
			K = m.widths[h]
		}
	}
	if f := len(m.freq1[1]); f < K {
		K = f
	}
	if m.cfg.MaxK > 0 && m.cfg.MaxK < K {
		K = m.cfg.MaxK
	}
	m.maxK = K

	m.stats.Transactions = m.n
	m.stats.Height = H
	m.stats.MaxK = K
	return nil
}

// mineFlipper is Algorithm 1: zigzag over rows 1–2, then row-wise descent,
// with flipping gating and (by pruning level) TPG and SIBP.
func (m *miner) mineFlipper() []Pattern {
	H := m.height
	// Rows 1 and 2, zigzag: Q(1,k) then Q(2,k) for growing k.
	for k := 2; k <= m.maxK; k++ {
		c1 := m.row1Cell(k)
		m.finishCell(c1)
		m.rows[1][k] = c1
		c2 := m.childCell(2, k)
		m.finishCell(c2)
		m.rows[2][k] = c2
		if m.cfg.Pruning.usesSIBP() {
			m.sibpUpdate(1, k, c1)
			m.sibpUpdate(2, k, c2)
			m.sibpExclude(2, k)
		}
		if c1.candidates == 0 {
			break // row 1 exhausted; nothing can grow to the right
		}
		if m.tpg(c1, c2) {
			break
		}
	}
	// Rows 3..H, one row at a time.
	for h := 3; h <= H; h++ {
		for k := 2; k <= m.maxK; k++ {
			parent := m.rows[h-1][k]
			if parent == nil {
				break // the row above stopped before this column
			}
			c := m.childCell(h, k)
			m.finishCell(c)
			m.rows[h][k] = c
			if m.cfg.Pruning.usesSIBP() {
				m.sibpUpdate(h, k, c)
				m.sibpExclude(h, k)
			}
			if m.tpg(parent, c) {
				break
			}
		}
		// "Eliminate non-flipping patterns in rows h-1 and h": everything
		// two rows up can no longer influence generation; free it.
		m.freeRow(h - 2)
	}
	return m.collect()
}

// tpg applies the Theorem-3 check to two vertically consecutive cells. To
// avoid firing on cells that are empty only because of vertical gating (see
// DESIGN.md), it requires at least one frequent itemset across the pair.
func (m *miner) tpg(up, down *cell) bool {
	if !m.cfg.Pruning.usesTPG() {
		return false
	}
	if up.frequent == 0 && down.frequent == 0 {
		return false
	}
	if up.positive == 0 && down.positive == 0 {
		m.stats.TPGBreaks++
		return true
	}
	return false
}

// finishCell counts a cell's candidates, labels the frequent ones, links
// chain liveness into the chain arena, and marks infrequent candidates
// (their items stay in the slab for Apriori subset checks until the row is
// freed, but they leave the resident-candidate metric immediately).
func (m *miner) finishCell(c *cell) {
	if c.candidates > 0 {
		m.count(c)
	}
	thr := m.minSup[c.h]
	sup1 := m.sup1[c.h]
	sups := make([]int64, c.k)
	for i := range c.meta {
		e := &c.meta[i]
		sup := c.store.Sup[i]
		if sup < thr {
			e.infrequent = true
			m.stats.dropResident(1, c.k)
			continue
		}
		items := c.store.Items(int32(i))
		c.frequent++
		m.stats.FrequentItemsets++
		for j, id := range items {
			sups[j] = sup1[id]
		}
		e.corr = m.cfg.Measure.Corr(sup, sups)
		switch {
		case e.corr >= m.cfg.Gamma:
			e.label = LabelPositive
			c.positive++
			m.stats.PositiveItemsets++
		case e.corr <= m.cfg.Epsilon:
			e.label = LabelNegative
			c.negative++
			m.stats.NegativeItemsets++
		}
		if c.h == 1 {
			e.alive = e.label.Labeled()
		} else {
			// childCell only expands alive parents, so parentChain ≥ 0 holds
			// for every generated candidate; the check guards hand-built cells.
			e.alive = e.label.Labeled() && e.parentChain >= 0 && e.label.Flips(e.parentLabel)
		}
		if e.alive {
			c.alive++
			m.stats.AliveItemsets++
			e.chain = int32(len(m.chains))
			m.chains = append(m.chains, chainRec{
				items:  items.Clone(),
				sup:    sup,
				corr:   e.corr,
				label:  e.label,
				parent: e.parentChain,
			})
		}
	}
	if m.cfg.KeepCellStats {
		m.stats.Cells = append(m.stats.Cells, CellStat{
			H: c.h, K: c.k, Candidates: c.candidates,
			Frequent: c.frequent, Positive: c.positive, Negative: c.negative, Alive: c.alive,
		})
	}
}

// freeRow releases the cells of a completed row. Because chain links live in
// the miner's chain arena (alive entries copy their level info there as they
// are labeled), dropping the row's cell pointers frees the candidate slabs —
// item arena, support slice, trie nodes, metadata — wholesale, with no
// per-entry bookkeeping. This is the paper's memory story for Figure 9(b):
// only alive chain links outlive their row.
func (m *miner) freeRow(h int) {
	if h < 1 || m.rows[h] == nil {
		return
	}
	for _, c := range m.rows[h] {
		m.stats.dropResident(c.frequent, c.k)
	}
	m.rows[h] = nil
}

// collect assembles patterns from alive entries of the leaf row.
func (m *miner) collect() []Pattern {
	var out []Pattern
	leafRow := m.rows[m.height]
	if leafRow == nil {
		return nil
	}
	for _, c := range leafRow {
		for i := range c.meta {
			if !c.meta[i].alive {
				continue
			}
			out = append(out, m.assemble(c.meta[i].chain))
		}
	}
	return out
}

// assemble walks a leaf entry's chain-arena links into a Pattern.
func (m *miner) assemble(ci int32) Pattern {
	chain := make([]LevelInfo, m.height)
	cur := ci
	for h := m.height; h >= 1; h-- {
		r := &m.chains[cur]
		chain[h-1] = LevelInfo{
			Level:   h,
			Items:   r.items,
			Support: r.sup,
			Corr:    r.corr,
			Label:   r.label,
		}
		cur = r.parent
	}
	p := Pattern{Leaf: chain[m.height-1].Items, Chain: chain}
	p.computeGap()
	return p
}
