package core

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"github.com/flipper-mining/flipper/internal/taxonomy"
)

// Report writers: machine-readable renderings of a mining result. The CLI
// and the experiment harness use these; they are part of the public surface
// through the facade.

// WriteJSON writes the result's patterns as a JSON array with item names
// resolved through the taxonomy (the wire form of json.go's PatternJSON;
// use WriteAPIJSON for the full envelope with stats).
func (r *Result) WriteJSON(w io.Writer, tree *taxonomy.Tree) error {
	out := make([]PatternJSON, 0, len(r.Patterns))
	for i := range r.Patterns {
		out = append(out, r.Patterns[i].JSON(tree))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteAPIJSON writes the full ResultJSON envelope — pattern count, patterns
// and run statistics — the same shape the flipperd service returns for
// completed mine jobs.
func (r *Result) WriteAPIJSON(w io.Writer, tree *taxonomy.Tree) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.JSON(tree))
}

// WriteCSV writes one row per (pattern, level): pattern id, leaf itemset,
// gap, level, level itemset, support, correlation, label.
func (r *Result) WriteCSV(w io.Writer, tree *taxonomy.Tree) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"pattern", "leaf", "gap", "level", "items", "support", "corr", "label",
	}); err != nil {
		return err
	}
	for i, p := range r.Patterns {
		for _, li := range p.Chain {
			err := cw.Write([]string{
				strconv.Itoa(i),
				joinNames(tree, p.Leaf),
				fmt.Sprintf("%.6f", p.Gap),
				strconv.Itoa(li.Level),
				joinNames(tree, li.Items),
				strconv.FormatInt(li.Support, 10),
				fmt.Sprintf("%.6f", li.Corr),
				li.Label.String(),
			})
			if err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func nameSlice(tree *taxonomy.Tree, s []int32) []string {
	out := make([]string, len(s))
	for i, id := range s {
		out[i] = tree.Name(id)
	}
	return out
}

func joinNames(tree *taxonomy.Tree, s []int32) string {
	out := ""
	for i, id := range s {
		if i > 0 {
			out += "|"
		}
		out += tree.Name(id)
	}
	return out
}
