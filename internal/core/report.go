package core

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"github.com/flipper-mining/flipper/internal/taxonomy"
)

// Report writers: machine-readable renderings of a mining result. The CLI
// and the experiment harness use these; they are part of the public surface
// through the facade.

// patternJSON is the name-resolved JSON form of a pattern.
type patternJSON struct {
	Leaf  []string    `json:"leaf"`
	Gap   float64     `json:"gap"`
	Chain []levelJSON `json:"chain"`
}

type levelJSON struct {
	Level   int      `json:"level"`
	Items   []string `json:"items"`
	Support int64    `json:"support"`
	Corr    float64  `json:"corr"`
	Label   string   `json:"label"`
}

// WriteJSON writes the result's patterns as a JSON array with item names
// resolved through the taxonomy.
func (r *Result) WriteJSON(w io.Writer, tree *taxonomy.Tree) error {
	out := make([]patternJSON, 0, len(r.Patterns))
	for _, p := range r.Patterns {
		pj := patternJSON{Leaf: nameSlice(tree, p.Leaf), Gap: p.Gap}
		for _, li := range p.Chain {
			pj.Chain = append(pj.Chain, levelJSON{
				Level:   li.Level,
				Items:   nameSlice(tree, li.Items),
				Support: li.Support,
				Corr:    li.Corr,
				Label:   li.Label.String(),
			})
		}
		out = append(out, pj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteCSV writes one row per (pattern, level): pattern id, leaf itemset,
// gap, level, level itemset, support, correlation, label.
func (r *Result) WriteCSV(w io.Writer, tree *taxonomy.Tree) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"pattern", "leaf", "gap", "level", "items", "support", "corr", "label",
	}); err != nil {
		return err
	}
	for i, p := range r.Patterns {
		for _, li := range p.Chain {
			err := cw.Write([]string{
				strconv.Itoa(i),
				joinNames(tree, p.Leaf),
				fmt.Sprintf("%.6f", p.Gap),
				strconv.Itoa(li.Level),
				joinNames(tree, li.Items),
				strconv.FormatInt(li.Support, 10),
				fmt.Sprintf("%.6f", li.Corr),
				li.Label.String(),
			})
			if err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func nameSlice(tree *taxonomy.Tree, s []int32) []string {
	out := make([]string, len(s))
	for i, id := range s {
		out[i] = tree.Name(id)
	}
	return out
}

func joinNames(tree *taxonomy.Tree, s []int32) string {
	out := ""
	for i, id := range s {
		if i > 0 {
			out += "|"
		}
		out += tree.Name(id)
	}
	return out
}
