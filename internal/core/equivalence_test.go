package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"github.com/flipper-mining/flipper/internal/itemset"
	"github.com/flipper-mining/flipper/internal/measure"
	"github.com/flipper-mining/flipper/internal/taxonomy"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// The equivalence suite is the central correctness instrument of this
// reproduction: on randomized datasets, every pruning level must produce
// exactly the flipping patterns that the BASIC baseline finds by complete
// enumeration and post-filtering. Flipping-gated generation is provably
// complete (DESIGN.md); TPG and SIBP as specified in the paper are validated
// here empirically.

// randomDataset builds a random balanced taxonomy and a transaction mix with
// strong intra-branch correlations so that labeled itemsets (and therefore
// flips) actually occur.
func randomDataset(rng *rand.Rand) (*txdb.DB, *taxonomy.Tree) {
	roots := 2 + rng.Intn(3)  // 2..4 level-1 categories
	fanout := 2 + rng.Intn(2) // 2..3 children per node
	height := 3               // levels: root categories, mid, leaves
	b := taxonomy.NewBuilder(nil)
	var leaves []string
	for r := 0; r < roots; r++ {
		root := fmt.Sprintf("c%d", r)
		for m := 0; m < fanout; m++ {
			mid := fmt.Sprintf("c%d.%d", r, m)
			for l := 0; l < fanout; l++ {
				leaf := fmt.Sprintf("c%d.%d.%d", r, m, l)
				if err := b.AddPath(root, mid, leaf); err != nil {
					panic(err)
				}
				leaves = append(leaves, leaf)
			}
		}
	}
	tree, err := b.Build()
	if err != nil {
		panic(err)
	}
	if tree.Height() != height {
		panic("unexpected height")
	}
	db := txdb.New(tree.Dict())
	n := 60 + rng.Intn(120)
	// A few "pair templates" create deliberate co-occurrence structure.
	type template struct{ a, b string }
	var templates []template
	for i := 0; i < 3+rng.Intn(4); i++ {
		templates = append(templates, template{
			a: leaves[rng.Intn(len(leaves))],
			b: leaves[rng.Intn(len(leaves))],
		})
	}
	for i := 0; i < n; i++ {
		var names []string
		if rng.Float64() < 0.65 {
			tpl := templates[rng.Intn(len(templates))]
			names = append(names, tpl.a)
			if rng.Float64() < 0.8 {
				names = append(names, tpl.b)
			}
		}
		w := 1 + rng.Intn(4)
		for j := 0; j < w; j++ {
			names = append(names, leaves[rng.Intn(len(leaves))])
		}
		db.AddNames(names...)
	}
	return db, tree
}

// fingerprint renders a result to a canonical string: every pattern's chain
// with supports, rounded correlations and labels.
func fingerprint(res *Result, tree *taxonomy.Tree) string {
	lines := make([]string, 0, len(res.Patterns))
	for _, p := range res.Patterns {
		var sb strings.Builder
		for _, li := range p.Chain {
			fmt.Fprintf(&sb, "L%d%s|%d|%.9f|%s;", li.Level, tree.FormatSet(li.Items), li.Support, li.Corr, li.Label)
		}
		lines = append(lines, sb.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func TestPruningLevelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20110831)) // VLDB 2011 submission era
	trials := 60
	if testing.Short() {
		trials = 15
	}
	for trial := 0; trial < trials; trial++ {
		db, tree := randomDataset(rng)
		cfg := Config{
			Measure:     measure.Kulczynski,
			Gamma:       0.25 + rng.Float64()*0.4,
			Epsilon:     0.02 + rng.Float64()*0.15,
			MinSupAbs:   []int64{int64(1 + rng.Intn(4)), int64(1 + rng.Intn(3)), 1},
			Materialize: true,
		}
		if cfg.Epsilon >= cfg.Gamma {
			cfg.Epsilon = cfg.Gamma / 2
		}
		var want string
		for _, pruning := range Levels() {
			c := cfg
			c.Pruning = pruning
			res, err := Mine(db, tree, c)
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, pruning, err)
			}
			fp := fingerprint(res, tree)
			if pruning == Basic {
				want = fp
				continue
			}
			if fp != want {
				t.Fatalf("trial %d: %v diverged from basic.\nbasic:\n%s\n%v:\n%s",
					trial, pruning, want, pruning, fp)
			}
		}
	}
}

func TestStrategyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	trials := 25
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		db, tree := randomDataset(rng)
		cfg := Config{
			Measure:     measure.Kulczynski,
			Gamma:       0.3,
			Epsilon:     0.1,
			MinSupAbs:   []int64{2, 1, 1},
			Pruning:     Full,
			Materialize: true,
		}
		cfg.Strategy = CountScan
		a, err := Mine(db, tree, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := fingerprint(a, tree)
		for _, strategy := range []CountStrategy{CountTIDList, CountBitmap, CountAuto} {
			cfg.Strategy = strategy
			b, err := Mine(db, tree, cfg)
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, strategy, err)
			}
			if fingerprint(b, tree) != want {
				t.Fatalf("trial %d: %v diverged from scan.\nscan:\n%s\n%v:\n%s",
					trial, strategy, want, strategy, fingerprint(b, tree))
			}
		}
	}
}

// TestBitmapMatchesScanOnRandomData is the acceptance property of the
// bitmap backend: on randomized databases, a bitmap-counted mine produces a
// Result identical to the scan-counted mine — same patterns, same supports,
// same correlations and labels — and the run actually exercised the bitmap
// machinery (builds and word ops are visible in Stats).
func TestBitmapMatchesScanOnRandomData(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	trials := 25
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		db, tree := randomDataset(rng)
		cfg := Config{
			Measure: measure.Kulczynski, Gamma: 0.3, Epsilon: 0.1,
			MinSupAbs: []int64{1, 1, 1}, Pruning: Full, Materialize: true,
		}
		cfg.Strategy = CountScan
		a, err := Mine(db, tree, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Strategy = CountBitmap
		b, err := Mine(db, tree, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if fingerprint(a, tree) != fingerprint(b, tree) {
			t.Fatalf("trial %d: bitmap diverged from scan.\nscan:\n%s\nbitmap:\n%s",
				trial, fingerprint(a, tree), fingerprint(b, tree))
		}
		if a.Stats.BitmapBuilds != 0 || a.Stats.BitmapWordOps != 0 {
			t.Fatalf("trial %d: scan run reported bitmap work: %+v", trial, a.Stats)
		}
		if b.Stats.CandidatesCounted > 0 && (b.Stats.BitmapBuilds == 0 || b.Stats.BitmapWordOps == 0) {
			t.Fatalf("trial %d: bitmap run counted %d candidates without bitmap work",
				trial, b.Stats.CandidatesCounted)
		}
	}
}

// bruteForceReference mines flipping patterns with none of the engine's
// machinery: map[string]int64 support counting by subset enumeration over
// materialized level views, then chain assembly by generalization lookups.
// It is the retained map-based reference the trie-indexed candidate store
// replaced, kept as an independent oracle.
func bruteForceReference(t *testing.T, db *txdb.DB, tree *taxonomy.Tree, cfg Config) string {
	t.Helper()
	H := tree.Height()
	minSup, err := cfg.validate(H, db.Len())
	if err != nil {
		t.Fatal(err)
	}
	maxK := cfg.MaxK
	if maxK <= 0 {
		t.Fatal("bruteForceReference needs cfg.MaxK to bound enumeration")
	}
	// Count every 2..maxK-subset of every transaction at every level into
	// string-keyed maps — the representation the candidate store replaced.
	counts := make([]map[string]int64, H+1)
	views := make([]*txdb.LevelView, H+1)
	for h := 1; h <= H; h++ {
		lv, err := txdb.Materialize(db, tree, h)
		if err != nil {
			t.Fatal(err)
		}
		views[h] = lv
		counts[h] = make(map[string]int64)
		for _, tx := range lv.Tx {
			for k := 2; k <= maxK; k++ {
				itemset.KSubsets(tx, k, func(sub itemset.Set) {
					counts[h][sub.Key()]++
				})
			}
		}
	}
	label := func(h int, items itemset.Set) (Label, int64, float64, bool) {
		sup := counts[h][items.Key()]
		if sup < minSup[h] {
			return LabelNone, 0, 0, false
		}
		sups := make([]int64, len(items))
		for i, id := range items {
			sups[i] = views[h].Support[id]
		}
		corr := cfg.Measure.Corr(sup, sups)
		switch {
		case corr >= cfg.Gamma:
			return LabelPositive, sup, corr, true
		case corr <= cfg.Epsilon:
			return LabelNegative, sup, corr, true
		}
		return LabelNone, sup, corr, true
	}
	// A leaf-level itemset is a flipping pattern when its generalization at
	// every level keeps k distinct items, is frequent, labeled, and the
	// labels alternate down the chain.
	var lines []string
	for key := range counts[H] {
		leaf, err := itemset.ParseKey(key)
		if err != nil {
			t.Fatal(err)
		}
		k := len(leaf)
		chain := make([]LevelInfo, H)
		ok := true
		for h := H; h >= 1; h-- {
			items, gok := tree.GeneralizeSet(leaf, h)
			if !gok || len(items) != k {
				ok = false
				break
			}
			lab, sup, corr, frequent := label(h, items)
			if !frequent || lab == LabelNone {
				ok = false
				break
			}
			if h < H && !chain[h].Label.Flips(lab) {
				ok = false
				break
			}
			chain[h-1] = LevelInfo{Level: h, Items: items, Support: sup, Corr: corr, Label: lab}
		}
		if !ok {
			continue
		}
		var sb strings.Builder
		for _, li := range chain {
			fmt.Fprintf(&sb, "L%d%s|%d|%.9f|%s;", li.Level, tree.FormatSet(li.Items), li.Support, li.Corr, li.Label)
		}
		lines = append(lines, sb.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestTrieStoreMatchesMapReference is the acceptance property of the
// trie-indexed candidate store: across every counting strategy and every
// pruning level, the engine's mined output — patterns, supports,
// correlations, labels — must be byte-identical to what the retained
// brute-force map-based reference derives with no trie anywhere.
func TestTrieStoreMatchesMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		db, tree := randomDataset(rng)
		cfg := Config{
			Measure:     measure.Kulczynski,
			Gamma:       0.3,
			Epsilon:     0.1,
			MinSupAbs:   []int64{2, 1, 1},
			MaxK:        3,
			Materialize: true,
		}
		want := bruteForceReference(t, db, tree, cfg)
		for _, pruning := range Levels() {
			for _, strategy := range []CountStrategy{CountScan, CountTIDList, CountBitmap, CountAuto} {
				c := cfg
				c.Pruning = pruning
				c.Strategy = strategy
				res, err := Mine(db, tree, c)
				if err != nil {
					t.Fatalf("trial %d %v/%v: %v", trial, pruning, strategy, err)
				}
				if got := fingerprint(res, tree); got != want {
					t.Fatalf("trial %d: %v/%v diverged from the map-based reference.\nreference:\n%s\ngot:\n%s",
						trial, pruning, strategy, want, got)
				}
			}
		}
	}
}

func TestMeasureEquivalenceAcrossPruning(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		db, tree := randomDataset(rng)
		for _, meas := range measure.All() {
			cfg := Config{
				Measure:     meas,
				Gamma:       0.35,
				Epsilon:     0.12,
				MinSupAbs:   []int64{2, 1, 1},
				Materialize: true,
			}
			cfg.Pruning = Basic
			want, err := Mine(db, tree, cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Pruning = Full
			got, err := Mine(db, tree, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if fingerprint(want, tree) != fingerprint(got, tree) {
				t.Fatalf("trial %d measure %v: full diverged from basic", trial, meas)
			}
		}
	}
}

// TestSupportsAgainstReference cross-checks every support the engine reports
// in patterns against brute-force counting on materialized views.
func TestSupportsAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		db, tree := randomDataset(rng)
		cfg := Config{
			Measure: measure.Kulczynski, Gamma: 0.3, Epsilon: 0.12,
			MinSupAbs: []int64{1, 1, 1}, Pruning: Full, Materialize: true,
		}
		res, err := Mine(db, tree, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range res.Patterns {
			for _, li := range p.Chain {
				lv, err := txdb.Materialize(db, tree, li.Level)
				if err != nil {
					t.Fatal(err)
				}
				if got := lv.SupportOf(li.Items); got != li.Support {
					t.Fatalf("trial %d: support of %s at L%d = %d, engine said %d",
						trial, tree.FormatSet(li.Items), li.Level, got, li.Support)
				}
				// And the correlation recomputes from raw supports.
				sups := make([]int64, len(li.Items))
				for i, id := range li.Items {
					sups[i] = lv.Support[id]
				}
				if want := cfg.Measure.Corr(li.Support, sups); math.Abs(want-li.Corr) > 1e-12 {
					t.Fatalf("trial %d: corr mismatch %v vs %v", trial, li.Corr, want)
				}
			}
		}
	}
}

// TestChainIsActuallyFlipping verifies the defining property on every
// reported pattern: labels alternate and every level is labeled.
func TestChainIsActuallyFlipping(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		db, tree := randomDataset(rng)
		cfg := Config{
			Measure: measure.Kulczynski, Gamma: 0.3, Epsilon: 0.1,
			MinSupAbs: []int64{1, 1, 1}, Pruning: Full, Materialize: true,
		}
		res, err := Mine(db, tree, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range res.Patterns {
			if len(p.Chain) != tree.Height() {
				t.Fatalf("chain has %d levels", len(p.Chain))
			}
			for i, li := range p.Chain {
				if !li.Label.Labeled() {
					t.Fatalf("unlabeled level %d in pattern %s", li.Level, tree.FormatSet(p.Leaf))
				}
				if i > 0 && !li.Label.Flips(p.Chain[i-1].Label) {
					t.Fatalf("labels do not alternate at level %d", li.Level)
				}
				// Items must be the generalization of the leaf at the level.
				want, ok := tree.GeneralizeSet(p.Leaf, li.Level)
				if !ok || !want.Equal(li.Items) {
					t.Fatalf("chain items at level %d are not the generalization", li.Level)
				}
			}
		}
	}
}
