package core

import (
	"math/rand"
	"testing"

	"github.com/flipper-mining/flipper/internal/measure"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// TestShuffleInvariance: the mined patterns (and every support and
// correlation in their chains) must not depend on transaction order —
// counting is a pure aggregation.
func TestShuffleInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		db, tree := randomDataset(rng)
		cfg := Config{
			Measure: measure.Kulczynski, Gamma: 0.3, Epsilon: 0.1,
			MinSupAbs: []int64{2, 1, 1}, Pruning: Full, Materialize: true,
		}
		base, err := Mine(db, tree, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := fingerprint(base, tree)
		for _, seed := range []int64{1, 99} {
			shuffled := txdb.New(tree.Dict())
			for i := 0; i < db.Len(); i++ {
				shuffled.AddSet(db.Tx(i))
			}
			shuffled.Shuffle(seed)
			res, err := Mine(shuffled, tree, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := fingerprint(res, tree); got != want {
				t.Fatalf("trial %d seed %d: result depends on transaction order", trial, seed)
			}
		}
	}
}

// TestParallelismInvariance: worker count must not affect any reported
// value, only wall-clock time.
func TestParallelismInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 5; trial++ {
		db, tree := randomDataset(rng)
		cfg := Config{
			Measure: measure.Kulczynski, Gamma: 0.3, Epsilon: 0.1,
			MinSupAbs: []int64{1, 1, 1}, Pruning: Full, Materialize: true,
		}
		var want string
		for _, workers := range []int{1, 2, 7, 16} {
			c := cfg
			c.Parallelism = workers
			res, err := Mine(db, tree, c)
			if err != nil {
				t.Fatal(err)
			}
			fp := fingerprint(res, tree)
			if workers == 1 {
				want = fp
				continue
			}
			if fp != want {
				t.Fatalf("trial %d: %d workers changed the result", trial, workers)
			}
		}
	}
}

// TestRepeatedMiningIsPure: mining the same inputs twice yields identical
// results and leaves the database untouched.
func TestRepeatedMiningIsPure(t *testing.T) {
	db, tree := paperToy(t)
	before := make([]string, db.Len())
	for i := 0; i < db.Len(); i++ {
		before[i] = db.Tx(i).Key()
	}
	cfg := toyConfig()
	a, err := Mine(db, tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mine(db, tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(a, tree) != fingerprint(b, tree) {
		t.Fatal("two identical runs disagree")
	}
	for i := 0; i < db.Len(); i++ {
		if db.Tx(i).Key() != before[i] {
			t.Fatal("mining mutated the database")
		}
	}
}
