package core

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/flipper-mining/flipper/internal/measure"
)

func TestCanonicalKeyDeterministic(t *testing.T) {
	a := DefaultConfig(3)
	b := DefaultConfig(3)
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Errorf("identical configs, different keys:\n%s\n%s", a.CanonicalKey(), b.CanonicalKey())
	}
}

func TestCanonicalKeyIgnoresExecutionKnobs(t *testing.T) {
	a := DefaultConfig(3)
	b := DefaultConfig(3)
	b.Parallelism = 7
	b.Materialize = false
	b.KeepCellStats = true
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Errorf("execution knobs changed the key:\n%s\n%s", a.CanonicalKey(), b.CanonicalKey())
	}
}

func TestCanonicalKeySeparatesSemanticFields(t *testing.T) {
	base := DefaultConfig(3)
	variants := []func(c *Config){
		func(c *Config) { c.Gamma = 0.5 },
		func(c *Config) { c.Epsilon = 0.05 },
		func(c *Config) { c.Measure = measure.Cosine },
		func(c *Config) { c.MinSup = []float64{0.02, 0.002, 0.0002} },
		func(c *Config) { c.MinSupAbs = []int64{5, 3, 1} },
		func(c *Config) { c.Pruning = Basic },
		func(c *Config) { c.Strategy = CountTIDList },
		func(c *Config) { c.Strategy = CountBitmap },
		func(c *Config) { c.Strategy = CountAuto },
		func(c *Config) { c.MaxK = 3 },
		func(c *Config) { c.TopK = 10 },
	}
	seen := map[string]int{base.CanonicalKey(): -1}
	for i, mutate := range variants {
		c := base
		mutate(&c)
		key := c.CanonicalKey()
		if prev, dup := seen[key]; dup {
			t.Errorf("variants %d and %d collide on key %s", i, prev, key)
		}
		seen[key] = i
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.Measure = measure.Cosine
	cfg.Pruning = FlippingTPG
	cfg.Strategy = CountBitmap
	cfg.TopK = 5
	b, err := json.Marshal(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	text := string(b)
	// Enums serialize as names, not numbers.
	for _, want := range []string{`"cosine"`, `"flipping+tpg"`, `"bitmap"`} {
		if !strings.Contains(text, want) {
			t.Errorf("marshalled config missing %s: %s", want, text)
		}
	}
	var back Config
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.CanonicalKey() != cfg.CanonicalKey() {
		t.Errorf("round trip changed the canonical key:\n%s\n%s", cfg.CanonicalKey(), back.CanonicalKey())
	}
	if back.Measure != measure.Cosine || back.Pruning != FlippingTPG || back.Strategy != CountBitmap {
		t.Errorf("round trip = %+v", back)
	}
}

func TestEnumUnmarshalRejectsUnknown(t *testing.T) {
	var p PruningLevel
	if err := json.Unmarshal([]byte(`"bogus"`), &p); err == nil {
		t.Error("unknown pruning level accepted")
	}
	var s CountStrategy
	if err := json.Unmarshal([]byte(`"bogus"`), &s); err == nil {
		t.Error("unknown strategy accepted")
	}
	var m measure.Measure
	if err := json.Unmarshal([]byte(`"lift"`), &m); err == nil {
		t.Error("unknown measure accepted")
	}
}
