package core

import (
	"math"
	"strings"
	"testing"

	"github.com/flipper-mining/flipper/internal/itemset"
	"github.com/flipper-mining/flipper/internal/measure"
	"github.com/flipper-mining/flipper/internal/taxonomy"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// paperToy builds the dataset of the paper's Figure 4: a 3-level taxonomy
// over categories a and b, and ten transactions. With γ=0.6, ε=0.35 the only
// flipping pattern is {a11, b11} (the paper's Figure 5).
func paperToy(t testing.TB) (*txdb.DB, *taxonomy.Tree) {
	t.Helper()
	b := taxonomy.NewBuilder(nil)
	for _, path := range [][]string{
		{"a", "a1", "a11"}, {"a", "a1", "a12"},
		{"a", "a2", "a21"}, {"a", "a2", "a22"},
		{"b", "b1", "b11"}, {"b", "b1", "b12"},
		{"b", "b2", "b21"}, {"b", "b2", "b22"},
	} {
		if err := b.AddPath(path...); err != nil {
			t.Fatal(err)
		}
	}
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	db := txdb.New(tree.Dict())
	for _, tx := range [][]string{
		{"a11", "a22", "b11", "b22"},
		{"a11", "a21", "b11"},
		{"a12", "a21"},
		{"a12", "a22", "b21"},
		{"a12", "a22", "b21"},
		{"a12", "a21", "b22"},
		{"a21", "b12"},
		{"b12", "b21", "b22"},
		{"b12", "b21"},
		{"a22", "b12", "b22"},
	} {
		db.AddNames(tx...)
	}
	return db, tree
}

func toyConfig() Config {
	return Config{
		Measure:     measure.Kulczynski,
		Gamma:       0.6,
		Epsilon:     0.35,
		MinSupAbs:   []int64{1, 1, 1},
		Pruning:     Full,
		Strategy:    CountScan,
		Materialize: true,
	}
}

func names(tree *taxonomy.Tree, s itemset.Set) string {
	out := make([]string, len(s))
	for i, id := range s {
		out[i] = tree.Name(id)
	}
	return strings.Join(out, ",")
}

func TestPaperToyExample(t *testing.T) {
	db, tree := paperToy(t)
	for _, pruning := range Levels() {
		for _, strategy := range []CountStrategy{CountScan, CountTIDList} {
			cfg := toyConfig()
			cfg.Pruning = pruning
			cfg.Strategy = strategy
			res, err := Mine(db, tree, cfg)
			if err != nil {
				t.Fatalf("%v/%v: %v", pruning, strategy, err)
			}
			if len(res.Patterns) != 1 {
				t.Fatalf("%v/%v: got %d patterns, want exactly {a11,b11}", pruning, strategy, len(res.Patterns))
			}
			p := res.Patterns[0]
			if got := names(tree, p.Leaf); got != "a11,b11" {
				t.Fatalf("%v/%v: pattern = {%s}", pruning, strategy, got)
			}
			// Chain values hand-computed from Figure 4's transactions.
			wantChain := []struct {
				items string
				sup   int64
				corr  float64
				label Label
			}{
				{"a,b", 7, (7.0/8 + 7.0/9) / 2, LabelPositive},
				{"a1,b1", 2, (2.0/6 + 2.0/6) / 2, LabelNegative},
				{"a11,b11", 2, 1.0, LabelPositive},
			}
			for i, want := range wantChain {
				li := p.Chain[i]
				if li.Level != i+1 {
					t.Errorf("chain[%d].Level = %d", i, li.Level)
				}
				if got := names(tree, li.Items); got != want.items {
					t.Errorf("chain[%d] items = %s, want %s", i, got, want.items)
				}
				if li.Support != want.sup {
					t.Errorf("chain[%d] sup = %d, want %d", i, li.Support, want.sup)
				}
				if math.Abs(li.Corr-want.corr) > 1e-9 {
					t.Errorf("chain[%d] corr = %v, want %v", i, li.Corr, want.corr)
				}
				if li.Label != want.label {
					t.Errorf("chain[%d] label = %v, want %v", i, li.Label, want.label)
				}
			}
		}
	}
}

func TestPaperToyCellStats(t *testing.T) {
	db, tree := paperToy(t)
	cfg := toyConfig()
	cfg.KeepCellStats = true
	res, err := Mine(db, tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	byCell := map[[2]int]CellStat{}
	for _, cs := range res.Stats.Cells {
		byCell[[2]int{cs.H, cs.K}] = cs
	}
	// Q(1,2): the single pair {a,b}, frequent and positive.
	c12 := byCell[[2]int{1, 2}]
	if c12.Candidates != 1 || c12.Frequent != 1 || c12.Positive != 1 || c12.Alive != 1 {
		t.Errorf("Q(1,2) = %+v", c12)
	}
	// Q(2,2): the four child combos of {a,b}: 2 positive ({a1,b2},{a2,b2}),
	// 1 negative ({a1,b1}), 1 unlabeled ({a2,b1}); only {a1,b1} flips.
	c22 := byCell[[2]int{2, 2}]
	if c22.Candidates != 4 || c22.Frequent != 4 || c22.Positive != 2 || c22.Negative != 1 || c22.Alive != 1 {
		t.Errorf("Q(2,2) = %+v", c22)
	}
	// Q(3,2): the four child combos of {a1,b1}; three have support 0.
	c32 := byCell[[2]int{3, 2}]
	if c32.Candidates != 4 || c32.Frequent != 1 || c32.Positive != 1 || c32.Alive != 1 {
		t.Errorf("Q(3,2) = %+v", c32)
	}
}

func TestPaperToyThresholdSensitivity(t *testing.T) {
	db, tree := paperToy(t)
	// Raising ε above Kulc(a1,b1)=1/3 keeps the pattern; lowering it below
	// kills it.
	cfg := toyConfig()
	cfg.Epsilon = 0.30
	res, err := Mine(db, tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 0 {
		t.Errorf("epsilon=0.30 should label {a1,b1} as unlabeled, got %d patterns", len(res.Patterns))
	}
	// Raising γ above Kulc(a,b)≈0.826 unlabels level 1.
	cfg = toyConfig()
	cfg.Gamma = 0.9
	res, err = Mine(db, tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 0 {
		t.Errorf("gamma=0.9 should unlabel the root pair, got %d patterns", len(res.Patterns))
	}
	// A minimum support of 3 at the leaf level kills sup({a11,b11})=2.
	cfg = toyConfig()
	cfg.MinSupAbs = []int64{1, 1, 3}
	res, err = Mine(db, tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 0 {
		t.Errorf("leaf minsup=3 should kill the pattern, got %d", len(res.Patterns))
	}
}

func TestConfigValidation(t *testing.T) {
	db, tree := paperToy(t)
	base := toyConfig()

	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"gamma zero", func(c *Config) { c.Gamma = 0 }},
		{"gamma above one", func(c *Config) { c.Gamma = 1.5 }},
		{"epsilon ≥ gamma", func(c *Config) { c.Epsilon = c.Gamma }},
		{"negative epsilon", func(c *Config) { c.Epsilon = -0.1 }},
		{"wrong minsup length", func(c *Config) { c.MinSupAbs = []int64{1} }},
		{"zero abs minsup", func(c *Config) { c.MinSupAbs = []int64{1, 0, 1} }},
		{"no minsup at all", func(c *Config) { c.MinSupAbs = nil; c.MinSup = nil }},
		{"minsup fraction out of range", func(c *Config) { c.MinSupAbs = nil; c.MinSup = []float64{0.1, 2.0, 0.1} }},
		{"negative maxk", func(c *Config) { c.MaxK = -1 }},
		{"negative parallelism", func(c *Config) { c.Parallelism = -2 }},
		{"invalid measure", func(c *Config) { c.Measure = measure.Measure(99) }},
		{"tidlist without views", func(c *Config) { c.Strategy = CountTIDList; c.Materialize = false }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if _, err := Mine(db, tree, cfg); err == nil {
			t.Errorf("%s: invalid config accepted", tc.name)
		}
	}
	if _, err := Mine(db, nil, base); err == nil {
		t.Error("nil taxonomy accepted")
	}
	// Height-1 taxonomy cannot flip.
	b := taxonomy.NewBuilder(nil)
	b.AddRoot("only")
	flat, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Mine(txdb.New(flat.Dict()), flat, DefaultConfig(1)); err == nil {
		t.Error("height-1 taxonomy accepted")
	}
}

func TestUnbalancedTaxonomyRejectedUntilExtended(t *testing.T) {
	b := taxonomy.NewBuilder(nil)
	if err := b.AddPath("x", "x1", "x11"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPath("y", "yShallow"); err != nil {
		t.Fatal(err)
	}
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	db := txdb.New(tree.Dict())
	db.AddNames("x11", "yShallow")
	cfg := Config{
		Measure: measure.Kulczynski, Gamma: 0.6, Epsilon: 0.3,
		MinSupAbs: []int64{1, 1, 1}, Pruning: Full, Materialize: true,
	}
	if _, err := Mine(db, tree, cfg); err == nil {
		t.Fatal("unbalanced taxonomy accepted")
	}
	if _, err := Mine(db, tree.Extend(), cfg); err != nil {
		t.Fatalf("extended taxonomy rejected: %v", err)
	}
}

func TestExtendedTreeFlipping(t *testing.T) {
	// A shallow leaf stands in for itself at deeper levels, so a pattern can
	// flip between its own copies' levels. x11 vs yShallow: engineered
	// supports so {x, y} is positive, {x1, yShallow} negative, and
	// {x11, yShallow} positive again.
	b := taxonomy.NewBuilder(nil)
	for _, p := range [][]string{{"x", "x1", "x11"}, {"x", "x1", "x12"}, {"x", "x2", "x21"}, {"y", "yShallow"}} {
		if err := b.AddPath(p...); err != nil {
			t.Fatal(err)
		}
	}
	tree0, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tree := tree0.Extend()
	db := txdb.New(tree.Dict())
	// {x,y} together often (via x2 branch), {x1, yShallow} rare, but the
	// x11 specialization always co-occurs with yShallow.
	db.AddNames("x11", "yShallow")
	db.AddNames("x11", "yShallow")
	db.AddNames("x12")
	db.AddNames("x12")
	db.AddNames("x12")
	db.AddNames("x12")
	for i := 0; i < 10; i++ {
		db.AddNames("x21", "yShallow")
	}
	cfg := Config{
		Measure: measure.Kulczynski, Gamma: 0.55, Epsilon: 0.35,
		MinSupAbs: []int64{1, 1, 1}, Pruning: Full, Materialize: true,
	}
	res, err := Mine(db, tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range res.Patterns {
		if names(tree, p.Leaf) == "x11,yShallow" {
			found = true
			// The level-2 and level-3 entries for yShallow must both be the
			// stand-in leaf itself.
			if got := names(tree, p.Chain[1].Items); got != "x1,yShallow" {
				t.Errorf("level-2 items = %s", got)
			}
			if got := names(tree, p.Chain[2].Items); got != "x11,yShallow" {
				t.Errorf("level-3 items = %s", got)
			}
		}
	}
	// Verify the engineered chain flips by checking the expected pattern is
	// reported by the BASIC reference too.
	cfg.Pruning = Basic
	resBasic, err := Mine(db, tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(resBasic.Patterns) == 0 && found {
		t.Fatal("Flipper found a pattern BASIC does not")
	}
	if !found && len(resBasic.Patterns) > 0 {
		t.Fatalf("BASIC found %d patterns Flipper missed", len(resBasic.Patterns))
	}
	if !found {
		t.Skip("engineered supports did not flip; BASIC agrees — equivalence holds but scenario needs retuning")
	}
}

func TestStreamingMatchesMaterialized(t *testing.T) {
	db, tree := paperToy(t)
	cfgA := toyConfig()
	cfgB := toyConfig()
	cfgB.Materialize = false
	a, err := Mine(db, tree, cfgA)
	if err != nil {
		t.Fatal(err)
	}
	bres, err := Mine(db, tree, cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Patterns) != len(bres.Patterns) {
		t.Fatalf("materialized %d vs streaming %d patterns", len(a.Patterns), len(bres.Patterns))
	}
	for i := range a.Patterns {
		if !a.Patterns[i].Leaf.Equal(bres.Patterns[i].Leaf) {
			t.Errorf("pattern %d differs", i)
		}
		if a.Patterns[i].Chain[0].Support != bres.Patterns[i].Chain[0].Support {
			t.Errorf("pattern %d support differs", i)
		}
	}
}

func TestParallelCountingMatchesSerial(t *testing.T) {
	db, tree := paperToy(t)
	for _, strategy := range []CountStrategy{CountScan, CountTIDList, CountBitmap, CountAuto} {
		t.Run(strategy.String(), func(t *testing.T) {
			cfgSerial := toyConfig()
			cfgSerial.Strategy = strategy
			cfgSerial.Parallelism = 1
			cfgPar := toyConfig()
			cfgPar.Strategy = strategy
			cfgPar.Parallelism = 8
			a, err := Mine(db, tree, cfgSerial)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Mine(db, tree, cfgPar)
			if err != nil {
				t.Fatal(err)
			}
			if len(a.Patterns) != len(b.Patterns) {
				t.Fatalf("serial %d vs parallel %d patterns", len(a.Patterns), len(b.Patterns))
			}
			if fa, fb := fingerprint(a, tree), fingerprint(b, tree); fa != fb {
				t.Fatalf("serial and parallel runs disagree:\n%s\nvs\n%s", fa, fb)
			}
		})
	}
}

func TestTopKByGap(t *testing.T) {
	db, tree := paperToy(t)
	cfg := toyConfig()
	cfg.TopK = 5
	res, err := Mine(db, tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 1 {
		t.Fatalf("topK with one pattern = %d", len(res.Patterns))
	}
	// Gap of the toy pattern: |0.826-0.333| vs |0.333-1.0| -> min is 0.493.
	wantGap := math.Abs((7.0/8+7.0/9)/2 - 1.0/3)
	if math.Abs(res.Patterns[0].Gap-wantGap) > 1e-9 {
		t.Errorf("gap = %v, want %v", res.Patterns[0].Gap, wantGap)
	}
	cfg.TopK = 0
	if _, err := Mine(db, tree, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	db, tree := paperToy(t)
	cfg := toyConfig()
	res, err := Mine(db, tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Transactions != 10 || s.Height != 3 {
		t.Errorf("basic shape: %+v", s)
	}
	if s.CandidatesCounted == 0 || s.FrequentItemsets == 0 {
		t.Error("zero counted candidates")
	}
	if s.PeakCandidates <= 0 || s.PeakBytes <= 0 {
		t.Error("memory accounting missing")
	}
	if s.DBScans < 4 {
		t.Errorf("DBScans = %d, want ≥ 4 (3 views + ≥1 cell)", s.DBScans)
	}
	if !strings.Contains(s.String(), "candidates") {
		t.Errorf("Stats.String() = %q", s.String())
	}
	// BASIC must retain at least as much as Full at its peak.
	cfgB := toyConfig()
	cfgB.Pruning = Basic
	resB, err := Mine(db, tree, cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if resB.Stats.PeakCandidates < s.PeakCandidates {
		t.Errorf("BASIC peak %d < Full peak %d", resB.Stats.PeakCandidates, s.PeakCandidates)
	}
}

func TestMeasuresAllRun(t *testing.T) {
	db, tree := paperToy(t)
	for _, meas := range measure.All() {
		cfg := toyConfig()
		cfg.Measure = meas
		if _, err := Mine(db, tree, cfg); err != nil {
			t.Errorf("%v: %v", meas, err)
		}
	}
}

func TestPatternFormat(t *testing.T) {
	db, tree := paperToy(t)
	res, err := Mine(db, tree, toyConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := res.Patterns[0].Format(tree)
	for _, want := range []string{"{a11, b11}", "L1", "L2", "L3", "gap="} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q in:\n%s", want, out)
		}
	}
	if res.Patterns[0].K() != 2 {
		t.Errorf("K() = %d", res.Patterns[0].K())
	}
}

func TestLabelHelpers(t *testing.T) {
	if !LabelPositive.Flips(LabelNegative) || !LabelNegative.Flips(LabelPositive) {
		t.Error("opposite labels must flip")
	}
	if LabelPositive.Flips(LabelPositive) || LabelNone.Flips(LabelNegative) || LabelPositive.Flips(LabelNone) {
		t.Error("non-opposite labels must not flip")
	}
	if LabelNone.Labeled() || !LabelPositive.Labeled() || !LabelNegative.Labeled() {
		t.Error("Labeled() wrong")
	}
	if LabelPositive.String() != "+" || LabelNegative.String() != "-" || LabelNone.String() != "·" {
		t.Error("label strings wrong")
	}
}

func TestPruningLevelParsing(t *testing.T) {
	for _, p := range Levels() {
		back, err := ParsePruningLevel(p.String())
		if err != nil || back != p {
			t.Errorf("round trip %v failed: %v %v", p, back, err)
		}
	}
	if _, err := ParsePruningLevel("bogus"); err == nil {
		t.Error("bogus pruning level accepted")
	}
	for _, s := range []CountStrategy{CountScan, CountTIDList} {
		back, err := ParseCountStrategy(s.String())
		if err != nil || back != s {
			t.Errorf("round trip %v failed", s)
		}
	}
	if _, err := ParseCountStrategy("bogus"); err == nil {
		t.Error("bogus strategy accepted")
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(4)
	if len(cfg.MinSup) != 4 {
		t.Fatalf("MinSup len = %d", len(cfg.MinSup))
	}
	for h := 1; h < 4; h++ {
		if cfg.MinSup[h] > cfg.MinSup[h-1] {
			t.Error("default supports must be non-increasing")
		}
	}
	cfg6 := DefaultConfig(6)
	if len(cfg6.MinSup) != 6 || cfg6.MinSup[5] != cfg6.MinSup[3] {
		t.Errorf("deep defaults = %v", cfg6.MinSup)
	}
}
