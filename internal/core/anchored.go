package core

import (
	"errors"
	"fmt"
	"math"

	"github.com/flipper-mining/flipper/internal/itemset"
	"github.com/flipper-mining/flipper/internal/sketch"
)

// Anchored top-K search: given one taxonomy item X (the anchor), find the
// AnchorTopK flipping patterns whose generalization chain passes through X,
// ranked by descending flip gap. Instead of mining the full pattern set and
// filtering, the search enumerates only chains through X and consults
// per-item bottom-k sketches (internal/sketch) before every exact support
// count: a candidate whose sketch bracket proves it infrequent, unable to
// carry the required label, or unable to beat the current K-th best gap is
// dropped without touching the tid lists. Because every prune is justified
// by a one-sided bound, guaranteed mode returns exactly what filtering the
// full exact mine would; best-effort mode additionally trusts the sketch
// point estimates and reports a per-pattern Confidence instead.

// ErrUnknownAnchor reports an anchored run whose Config.Anchor names no item
// in the taxonomy.
var ErrUnknownAnchor = errors.New("core: unknown anchor item")

// mineAnchored runs anchored top-K search. Materialized runs use the
// sketch-pruned DFS; streaming runs have no tid lists to sketch, so they
// fall back to the exact full mine plus a chain filter.
func (m *miner) mineAnchored() ([]Pattern, error) {
	anchor, ok := m.tax.Dict().Lookup(m.cfg.Anchor)
	if !ok || !m.tax.Contains(anchor) {
		return nil, fmt.Errorf("%w: %q", ErrUnknownAnchor, m.cfg.Anchor)
	}
	la := m.tax.LevelOf(anchor)
	topK := m.cfg.AnchorTopK
	bestEff := m.cfg.AnchorMode == AnchorBestEffort

	if !m.cfg.Materialize {
		var pats []Pattern
		if m.cfg.Pruning == Basic {
			pats = m.mineBasic()
		} else {
			pats = m.mineFlipper()
		}
		var kept []Pattern
		for _, p := range pats {
			if p.Chain[la-1].Items.Contains(anchor) {
				kept = append(kept, p)
			}
		}
		kept = rankAnchored(kept, topK)
		if bestEff {
			for i := range kept {
				kept[i].Confidence = 1 // exact path: nothing was estimated away
			}
		}
		return kept, nil
	}

	a := &anchoredSearch{
		m:       m,
		anchor:  anchor,
		root:    m.tax.RootOf(anchor),
		la:      la,
		topK:    topK,
		bestEff: bestEff,
		sk:      m.sketchSet(),
	}
	a.run()
	pats := rankAnchored(a.patterns, topK)
	if bestEff {
		for i := range pats {
			conf := 1.0
			if a.riskGap > 0 && pats[i].Gap < a.riskGap {
				conf = pats[i].Gap / a.riskGap
			}
			pats[i].Confidence = conf
		}
	}
	return pats, nil
}

// rankAnchored orders patterns by descending gap and keeps the top K.
func rankAnchored(pats []Pattern, topK int) []Pattern {
	sortPatternsByGap(pats)
	if len(pats) > topK {
		pats = pats[:topK]
	}
	return pats
}

// anchoredSearch is the state of one sketch-pruned anchored DFS.
type anchoredSearch struct {
	m      *miner
	anchor itemset.ID
	root   itemset.ID // the anchor's level-1 root, present in every chain
	la     int        // the anchor's own taxonomy level

	topK    int
	bestEff bool

	sk  *sketch.Set
	scr tidScratch

	path     []LevelInfo // chain of the current DFS branch, levels 1..h
	patterns []Pattern
	gaps     []float64 // collected gaps, descending, capped at topK

	// riskGap caps the gap any estimate-pruned candidate could have carried
	// (best-effort only): the basis of per-pattern Confidence.
	riskGap float64
}

// run enumerates every chain through the anchor: level-1 root sets
// containing the anchor's root, then vertical descent with the anchor
// position locked to the anchor's ancestor path and subtree.
func (a *anchoredSearch) run() {
	m := a.m
	if _, ok := m.freq1[1][a.root]; !ok {
		return // the anchor's own root is infrequent; no chain can exist
	}
	others := make([]itemset.ID, 0, len(m.freq1[1]))
	for id := range m.freq1[1] {
		if id != a.root {
			others = append(others, id)
		}
	}
	sortIDs(others)
	a.extend(itemset.Set{a.root}, others, 0)
}

// extend grows the level-1 root set cur (always containing the anchor's
// root) by roots from others[idx:] in increasing ID order, so every
// superset is enumerated exactly once. Frequency is anti-monotone within a
// level: an infrequent extension closes that whole branch. Frequent sets
// keep extending regardless of label; labeled ones additionally start a
// chain and descend.
func (a *anchoredSearch) extend(cur itemset.Set, others []itemset.ID, idx int) {
	m := a.m
	if len(cur) >= m.maxK {
		return
	}
	for i := idx; i < len(others); i++ {
		if m.cancelled() {
			return
		}
		cand := cur.Insert(others[i])
		sup, pruned := a.resolveRoot(cand)
		if pruned || sup < m.minSup[1] {
			continue
		}
		corr := a.corrAt(cand, sup, 1)
		var label Label
		switch {
		case corr >= m.cfg.Gamma:
			label = LabelPositive
		case corr <= m.cfg.Epsilon:
			label = LabelNegative
		}
		if label.Labeled() {
			a.path = append(a.path, LevelInfo{Level: 1, Items: cand, Support: sup, Corr: corr, Label: label})
			if m.height == 1 {
				a.emit()
			} else {
				a.descend(cand, cand.IndexOf(a.root), 1, corr, label, math.Inf(1))
			}
			a.path = a.path[:len(a.path)-1]
		}
		a.extend(cand, others, i+1)
	}
}

// resolveRoot returns the support of a level-1 root set, or pruned=true
// when the sketch shows (guaranteed) or estimates (best-effort) that it is
// infrequent. A bracket that pins the support exactly is used directly;
// only ambiguous brackets fall back to an exact tid-list intersection.
func (a *anchoredSearch) resolveRoot(cand itemset.Set) (sup int64, pruned bool) {
	m := a.m
	m.stats.SketchProbes++
	b := a.boundAt(cand, 1)
	if b.Hi < m.minSup[1] {
		m.stats.SketchPruned++
		return 0, true
	}
	if a.bestEff && !b.Exact() && b.Est < m.minSup[1] {
		m.stats.SketchPruned++
		// No chain exists yet, so a wrongly pruned root set could have
		// carried any gap; the risk bound is the full correlation range.
		a.noteRisk(1)
		return 0, true
	}
	if b.Exact() {
		m.stats.SketchPruned++
		return b.Lo, false
	}
	return a.exactSupport(cand, 1), false
}

// descend expands an alive itemset at level h into its level-(h+1)
// candidates: the anchor position follows the anchor's ancestor path while
// above the anchor's level and its subtree below it; every other position
// fans out over taxonomy children. Options are pre-filtered by
// level-(h+1) single-item frequency (members of a frequent set are
// themselves frequent), so the cartesian product only enumerates viable
// combinations.
func (a *anchoredSearch) descend(items itemset.Set, anchorIdx, h int, corrPrev float64, labelPrev Label, gapSoFar float64) {
	m := a.m
	next := h + 1
	opts := make([][]itemset.ID, len(items))
	for i, id := range items {
		var cands []itemset.ID
		if i == anchorIdx && next <= a.la {
			if anc, ok := m.tax.AncestorAt(a.anchor, next); ok {
				cands = []itemset.ID{anc}
			}
		} else {
			cands = m.tax.ChildrenAt(id)
		}
		var keep []itemset.ID
		for _, c := range cands {
			if _, ok := m.freq1[next][c]; ok {
				keep = append(keep, c)
			}
		}
		if len(keep) == 0 {
			return
		}
		opts[i] = keep
	}
	combo := make([]itemset.ID, len(items))
	var walk func(pos int)
	walk = func(pos int) {
		if pos == len(items) {
			cand := itemset.New(combo...)
			a.visit(cand, cand.IndexOf(combo[anchorIdx]), next, corrPrev, labelPrev, gapSoFar)
			return
		}
		for _, c := range opts[pos] {
			combo[pos] = c
			walk(pos + 1)
		}
	}
	walk(0)
}

// visit judges one descent candidate at level h: sketch prunes first
// (frequency, required label, gap ceiling), then — in best-effort mode —
// estimate prunes, then exact resolution, labeling, and recursion.
func (a *anchoredSearch) visit(cand itemset.Set, anchorIdx, h int, corrPrev float64, labelPrev Label, gapSoFar float64) {
	m := a.m
	if m.cancelled() {
		return
	}
	required := LabelPositive
	if labelPrev == LabelPositive {
		required = LabelNegative
	}
	thr := m.minSup[h]
	m.stats.SketchProbes++
	b := a.boundAt(cand, h)
	if b.Hi < thr {
		m.stats.SketchPruned++
		return
	}
	corrLo, corrHi := a.corrRange(cand, b, h)
	if required == LabelPositive && corrHi < m.cfg.Gamma {
		m.stats.SketchPruned++
		return
	}
	if required == LabelNegative && corrLo > m.cfg.Epsilon {
		m.stats.SketchPruned++
		return
	}
	// The widest transition the true correlation could produce caps the gap
	// of every pattern through this candidate.
	tHi := corrPrev - corrLo
	if d := corrHi - corrPrev; d > tHi {
		tHi = d
	}
	gapUB := gapSoFar
	if tHi < gapUB {
		gapUB = tHi
	}
	if g, full := a.gapFloor(); full && gapUB < g {
		m.stats.SketchPruned++
		return
	}
	if a.bestEff && a.estPrune(cand, b, h, thr, required, corrPrev, gapSoFar, gapUB) {
		m.stats.SketchPruned++
		return
	}
	var sup int64
	if b.Exact() {
		m.stats.SketchPruned++ // support pinned by the sketch; no exact count
		sup = b.Lo
	} else {
		sup = a.exactSupport(cand, h)
	}
	if sup < thr {
		return
	}
	corr := a.corrAt(cand, sup, h)
	var label Label
	switch {
	case corr >= m.cfg.Gamma:
		label = LabelPositive
	case corr <= m.cfg.Epsilon:
		label = LabelNegative
	default:
		return
	}
	if label != required {
		return
	}
	gap := corr - corrPrev
	if gap < 0 {
		gap = -gap
	}
	if gap > gapSoFar {
		gap = gapSoFar
	}
	// Exact knowledge now: deeper transitions only shrink the running gap,
	// so a chain strictly below the top-K floor cannot recover (ties keep
	// going — the floor pattern could lose the leaf-key tiebreak).
	if g, full := a.gapFloor(); full && gap < g {
		return
	}
	a.path = append(a.path, LevelInfo{Level: h, Items: cand, Support: sup, Corr: corr, Label: label})
	if h == m.height {
		a.emit()
	} else {
		a.descend(cand, anchorIdx, h, corr, label, gap)
	}
	a.path = a.path[:len(a.path)-1]
}

// estPrune applies best-effort pruning: treat the sketch estimate as the
// truth and drop the candidate when that truth would fail frequency, the
// required label, or the gap floor. Each drop records the candidate's
// sound gap ceiling, which caps how good a wrongly pruned pattern could
// have been — the basis of Confidence.
func (a *anchoredSearch) estPrune(cand itemset.Set, b sketch.Bound, h int, thr int64, required Label, corrPrev, gapSoFar, gapUB float64) bool {
	m := a.m
	if b.Exact() {
		return false // the estimate is the truth; nothing to risk
	}
	prune := b.Est < thr
	if !prune {
		estCorr := a.corrClamped(cand, b.Est, h)
		switch required {
		case LabelPositive:
			prune = estCorr < m.cfg.Gamma
		case LabelNegative:
			prune = estCorr > m.cfg.Epsilon
		}
		if !prune {
			tEst := estCorr - corrPrev
			if tEst < 0 {
				tEst = -tEst
			}
			gEst := gapSoFar
			if tEst < gEst {
				gEst = tEst
			}
			if g, full := a.gapFloor(); full && gEst < g {
				prune = true
			}
		}
	}
	if prune {
		a.noteRisk(gapUB)
	}
	return prune
}

// emit turns the current DFS path into a Pattern and records its gap.
func (a *anchoredSearch) emit() {
	chain := make([]LevelInfo, len(a.path))
	copy(chain, a.path)
	p := Pattern{Leaf: chain[len(chain)-1].Items, Chain: chain}
	p.computeGap()
	a.patterns = append(a.patterns, p)
	a.noteGap(p.Gap)
}

// boundAt probes the sketch level for the candidate's support bracket.
func (a *anchoredSearch) boundAt(items itemset.Set, h int) sketch.Bound {
	lv := a.sk.Level(h)
	if lv == nil {
		// No sketch for this level: an unbounded bracket, so nothing prunes
		// and every candidate falls through to exact counting.
		return sketch.Bound{Lo: 0, Hi: math.MaxInt64, Est: math.MaxInt64}
	}
	return lv.Bound(items)
}

// exactSupport is the fallback exact count: a k-way tid-list intersection,
// summed over shards when the representation is sharded.
func (a *anchoredSearch) exactSupport(items itemset.Set, h int) int64 {
	m := a.m
	m.stats.ExactFallbacks++
	m.stats.CandidatesCounted++
	if m.sharded() {
		var sup int64
		for _, lists := range m.shardTIDLists(h) {
			sup += intersectSupport(items, lists, &a.scr)
		}
		return sup
	}
	return intersectSupport(items, m.tidLists(h), &a.scr)
}

// corrAt computes the exact correlation of items at level h given their
// support.
func (a *anchoredSearch) corrAt(items itemset.Set, sup int64, h int) float64 {
	m := a.m
	sups := m.sc.supsFor(len(items))
	sup1 := m.ds.sup1[h]
	for j, id := range items {
		sups[j] = sup1[id]
	}
	return m.cfg.Measure.Corr(sup, sups)
}

// corrClamped is corrAt with the support clamped into its feasible range
// [0, min single support] — sketch estimates and upper bounds can exceed
// what any true support could be, and Measure.Corr rejects that.
func (a *anchoredSearch) corrClamped(items itemset.Set, sup int64, h int) float64 {
	m := a.m
	sup1 := m.ds.sup1[h]
	for _, id := range items {
		if s := sup1[id]; sup > s {
			sup = s
		}
	}
	if sup <= 0 {
		return 0
	}
	return a.corrAt(items, sup, h)
}

// corrRange turns a support bracket into a correlation bracket: every
// supported measure is monotone increasing in sup(AB), so bounding the
// support bounds the correlation.
func (a *anchoredSearch) corrRange(items itemset.Set, b sketch.Bound, h int) (lo, hi float64) {
	if b.Lo > 0 {
		lo = a.corrClamped(items, b.Lo, h)
	}
	if b.Hi > 0 {
		hi = a.corrClamped(items, b.Hi, h)
	}
	return lo, hi
}

// gapFloor returns the current K-th best collected gap, and whether K
// patterns have been collected at all (no floor exists before that).
func (a *anchoredSearch) gapFloor() (float64, bool) {
	if len(a.gaps) < a.topK {
		return 0, false
	}
	return a.gaps[len(a.gaps)-1], true
}

// noteGap inserts a collected gap into the descending top-K gap list.
func (a *anchoredSearch) noteGap(g float64) {
	i := len(a.gaps)
	a.gaps = append(a.gaps, g)
	for i > 0 && a.gaps[i-1] < g {
		a.gaps[i] = a.gaps[i-1]
		i--
	}
	a.gaps[i] = g
	if len(a.gaps) > a.topK {
		a.gaps = a.gaps[:a.topK]
	}
}

// noteRisk records the sound gap ceiling of an estimate-pruned candidate.
// Correlations live in [0, 1], so no transition — and no gap — exceeds 1.
func (a *anchoredSearch) noteRisk(g float64) {
	if g > 1 {
		g = 1
	}
	if g > a.riskGap {
		a.riskGap = g
	}
}
