package core

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/flipper-mining/flipper/internal/dict"
	"github.com/flipper-mining/flipper/internal/itemset"
	"github.com/flipper-mining/flipper/internal/measure"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// TestShardedMiningEquivalence is the acceptance property of shard-parallel
// counting: across every counting strategy, every pruning level and shard
// counts 1, 2 and 7, mining a partitioned database produces output
// byte-identical to the unsharded run — same patterns, same supports, same
// correlations and labels. It runs under the CI race job (go test -race
// ./...), so the shard-worker scratch discipline is also raced on every PR.
func TestShardedMiningEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	trials := 6
	if testing.Short() {
		trials = 2
	}
	shardCounts := []int{1, 2, 7}
	strategies := []CountStrategy{CountScan, CountTIDList, CountBitmap, CountAuto}
	for trial := 0; trial < trials; trial++ {
		db, tree := randomDataset(rng)
		for _, pruning := range Levels() {
			for _, strategy := range strategies {
				cfg := Config{
					Measure:     measure.Kulczynski,
					Gamma:       0.3,
					Epsilon:     0.1,
					MinSupAbs:   []int64{2, 1, 1},
					Pruning:     pruning,
					Strategy:    strategy,
					Materialize: true,
				}
				base, err := Mine(db, tree, cfg)
				if err != nil {
					t.Fatalf("trial %d %v/%v: %v", trial, pruning, strategy, err)
				}
				want := fingerprint(base, tree)
				if base.Stats.Shards != 1 {
					t.Fatalf("trial %d: unsharded run reports %d shards", trial, base.Stats.Shards)
				}
				for _, shards := range shardCounts {
					c := cfg
					c.Shards = shards
					res, err := Mine(db, tree, c)
					if err != nil {
						t.Fatalf("trial %d %v/%v shards=%d: %v", trial, pruning, strategy, shards, err)
					}
					if got := fingerprint(res, tree); got != want {
						t.Fatalf("trial %d: %v/%v with %d shards diverged from unsharded.\nunsharded:\n%s\nsharded:\n%s",
							trial, pruning, strategy, shards, want, got)
					}
					if shards > 1 && res.Stats.Shards != shards {
						t.Fatalf("trial %d: requested %d shards, stats report %d", trial, shards, res.Stats.Shards)
					}
				}
				// The same property through an explicit ShardedSource.
				ss := txdb.PartitionSource(db, 3)
				res, err := Mine(ss, tree, cfg)
				if err != nil {
					t.Fatalf("trial %d %v/%v sharded source: %v", trial, pruning, strategy, err)
				}
				if got := fingerprint(res, tree); got != want {
					t.Fatalf("trial %d: %v/%v over a ShardedSource diverged from unsharded", trial, pruning, strategy)
				}
				if res.Stats.Shards != 3 {
					t.Fatalf("trial %d: ShardedSource run reports %d shards, want 3", trial, res.Stats.Shards)
				}
			}
		}
	}
}

// TestShardedStreamingEquivalence covers the disk-resident shard path: a
// partitioned in-memory source and a ShardedSource of per-shard basket
// files (the out-of-core layout) must stream-count to the same output as
// the single-source streaming scan.
func TestShardedStreamingEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trials := 4
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		db, tree := randomDataset(rng)
		cfg := Config{
			Measure:     measure.Kulczynski,
			Gamma:       0.3,
			Epsilon:     0.1,
			MinSupAbs:   []int64{2, 1, 1},
			Pruning:     Full,
			Strategy:    CountScan,
			Materialize: false,
		}
		base, err := Mine(db, tree, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := fingerprint(base, tree)

		c := cfg
		c.Shards = 4
		res, err := Mine(db, tree, c)
		if err != nil {
			t.Fatal(err)
		}
		if got := fingerprint(res, tree); got != want {
			t.Fatalf("trial %d: streaming with in-memory shards diverged.\nwant:\n%s\ngot:\n%s", trial, want, got)
		}

		// Out-of-core: each partition written to its own basket file, mined
		// through file-backed shards that re-read disk on every pass.
		dir := t.TempDir()
		var shards []txdb.Source
		for i, part := range txdb.Partition(db, 3) {
			path := filepath.Join(dir, fmt.Sprintf("shard%03d.txt", i))
			f, err := os.Create(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := part.WriteBaskets(f); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
			fs, err := txdb.OpenFile(path, tree.Dict())
			if err != nil {
				t.Fatal(err)
			}
			shards = append(shards, fs)
		}
		ss, err := txdb.NewSharded(shards...)
		if err != nil {
			t.Fatal(err)
		}
		res, err = Mine(ss, tree, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := fingerprint(res, tree); got != want {
			t.Fatalf("trial %d: out-of-core sharded streaming diverged.\nwant:\n%s\ngot:\n%s", trial, want, got)
		}
		if res.Stats.Shards != 3 {
			t.Fatalf("trial %d: file-sharded run reports %d shards, want 3", trial, res.Stats.Shards)
		}
	}
}

// flakySource is a Source whose Scan succeeds ok times and then fails —
// the shape of a disk going away between streaming counting passes.
type flakySource struct {
	db    *txdb.DB
	ok    int
	scans int
}

func (f *flakySource) Scan(fn func(tx itemset.Set) error) error {
	f.scans++
	if f.scans > f.ok {
		return errors.New("shard file unreadable")
	}
	return f.db.Scan(fn)
}

func (f *flakySource) Len() int               { return f.db.Len() }
func (f *flakySource) Dict() *dict.Dictionary { return f.db.Dict() }

// TestStreamingScanErrorFailsMine pins the failure contract of disk-resident
// counting, sharded and not: an I/O error during a counting pass must fail
// the mine rather than silently dropping the failed pass's counts.
func TestStreamingScanErrorFailsMine(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db, tree := randomDataset(rng)
	cfg := Config{
		Measure:     measure.Kulczynski,
		Gamma:       0.3,
		Epsilon:     0.1,
		MinSupAbs:   []int64{1, 1, 1},
		Pruning:     Full,
		Strategy:    CountScan,
		Materialize: false,
	}

	// Single source: the init pass succeeds, the first counting pass fails.
	if _, err := Mine(&flakySource{db: db, ok: 1}, tree, cfg); err == nil {
		t.Fatal("unsharded streaming mine over a failing source succeeded")
	}

	// Sharded source with one bad shard: each shard scans once at init, so
	// ok=1 makes the bad shard fail on its first counting pass.
	parts := txdb.Partition(db, 2)
	ss, err := txdb.NewSharded(parts[0], &flakySource{db: parts[1], ok: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Mine(ss, tree, cfg); err == nil {
		t.Fatal("sharded streaming mine with a failing shard succeeded")
	}
}

// TestShardsExcludedFromCanonicalKey pins the cache-safety contract: shard
// count is an execution knob and must not split the result cache.
func TestShardsExcludedFromCanonicalKey(t *testing.T) {
	a := DefaultConfig(3)
	b := DefaultConfig(3)
	b.Shards = 7
	b.Parallelism = 5
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Fatalf("Shards/Parallelism changed the canonical key:\n%s\n%s", a.CanonicalKey(), b.CanonicalKey())
	}
}

// TestShardsValidation rejects negative shard counts and accepts the
// degenerate ones.
func TestShardsValidation(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Shards = -1
	if err := cfg.Validate(2, 100); err == nil {
		t.Fatal("negative Shards validated")
	}
	for _, n := range []int{0, 1, 64} {
		cfg.Shards = n
		if err := cfg.Validate(2, 100); err != nil {
			t.Fatalf("Shards=%d rejected: %v", n, err)
		}
	}
}

// TestShardStatsSurface checks that a sharded run reports its shard count
// and merge time through the JSON wire form.
func TestShardStatsSurface(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	db, tree := randomDataset(rng)
	cfg := Config{
		Measure:     measure.Kulczynski,
		Gamma:       0.3,
		Epsilon:     0.1,
		MinSupAbs:   []int64{1, 1, 1},
		Pruning:     Full,
		Strategy:    CountBitmap,
		Materialize: true,
		Shards:      4,
	}
	res, err := Mine(db, tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	js := res.Stats.JSON()
	if js.Shards != 4 {
		t.Fatalf("StatsJSON.Shards = %d, want 4", js.Shards)
	}
	if js.ShardMergeNs != res.Stats.ShardMergeNs {
		t.Fatalf("StatsJSON.ShardMergeNs = %d, want %d", js.ShardMergeNs, res.Stats.ShardMergeNs)
	}
	if res.Stats.CandidatesCounted > 0 && res.Stats.BitmapBuilds < 4 {
		t.Fatalf("sharded bitmap run built %d indexes, want ≥ 4 (one per shard)", res.Stats.BitmapBuilds)
	}
}
