package core

import (
	"sync"

	"github.com/flipper-mining/flipper/internal/bitmap"
	"github.com/flipper-mining/flipper/internal/itemset"
)

// count fills in the support of every candidate in the cell with one pass
// over the data, one set of tid-list intersections, or one batch of bitmap
// AND+popcounts. The cell's trie is frozen here (CSR spans and the
// item-membership bitset filled), after which the store is safe for
// concurrent readers.
func (m *miner) count(c *cell) {
	m.stats.DBScans++
	m.stats.TrieNodes += int64(c.store.NodeCount())
	c.store.Freeze()
	if m.remote != nil {
		// Delegated counting (MineRemote): the CellCounter owns the pass —
		// strategy choice, sharding, fan-out all happen on its side.
		m.countRemote(c)
		return
	}
	strategy := m.cfg.Strategy
	if strategy == CountAuto {
		strategy = m.chooseStrategy(c)
	}
	if m.sharded() {
		// Shard-parallel variants: a bounded worker pool over the shards,
		// partial support vectors summed into the slab (counting_shard.go).
		switch strategy {
		case CountTIDList:
			m.countTIDShards(c)
		case CountBitmap:
			m.countBitmapShards(c)
		default:
			if m.cfg.Materialize {
				m.countScanShards(c)
			} else {
				m.countScanStreamingShards(c)
			}
		}
		return
	}
	switch strategy {
	case CountTIDList:
		m.countTID(c)
	case CountBitmap:
		m.countBitmap(c)
	default:
		if m.cfg.Materialize {
			m.countScanMaterialized(c)
		} else {
			m.countScanStreaming(c)
		}
	}
}

// scanProbeWeight converts one scan probe (one subset reached by trie
// descent) into the model's base unit — one sequential word/element
// operation, which is what a tid-list merge step and a bitmap AND both
// cost. The trie store cut the probe from a key build plus a string-map
// lookup (~8 units pre-PR3) to a handful of node/item comparisons;
// recalibrated on BenchmarkCountingDense (~12ns per probed subset vs ~5ns
// per word op on a 2.1GHz Xeon). The C(w,k) term stays an upper bound:
// descent abandons subsets with no candidate prefix early, so dense cells
// overestimate scan cost slightly and the model errs toward the vertical
// backends exactly where they win.
const scanProbeWeight = 2.5

// chooseStrategy is the CountAuto cost model, in units of one sequential
// word/element operation. Scan cost: every distinct transaction explores at
// most C(w, k) subsets by trie descent, each worth scanProbeWeight units.
// Tid-list cost: every candidate intersects k sorted lists whose combined
// length averages k·(level volume / level item count). Bitmap cost: every
// candidate ANDs k vectors of ⌈distinct/64⌉ words, plus a one-time
// per-level build of one word-vector per item. Scans win when candidates
// dwarf the database (their cost is candidate-independent), tid-lists win
// when a few candidates face sparse lists, and bitmaps win when a high
// candidate count meets a dense level — many probes amortizing the
// fixed-width vectors.
//
// Sharding enters the model in two places. The per-candidate merge of S
// partial vectors costs the same S additions for every backend, so it
// cancels out of the comparison and is omitted. Bitmap vectors, however,
// round up to whole words per shard instead of once per level, so S shards
// pay up to S−1 extra words per candidate AND (and per item at build time);
// the distinct-transaction count is likewise the per-shard sum, which
// already reflects the dedup lost at shard boundaries.
//
// The build term follows the run's logical build flags (m.bmBuilt), not the
// engine cache: a warm run prices — and therefore chooses — exactly as the
// cold run did, which is what keeps reused-engine output byte-identical.
func (m *miner) chooseStrategy(c *cell) CountStrategy {
	view := m.ds.views[c.h]
	items := len(view.Support)
	if items == 0 {
		return CountScan
	}
	var volume int64
	for _, sup := range view.Support {
		volume += sup
	}
	distinct := m.distinctCount(c.h)
	// Materialized views hold one generalized transaction per raw one, so
	// the level's transaction count is m.n regardless of sharding.
	avgWidth := float64(volume) / float64(m.n)
	scanCost := scanProbeWeight * float64(distinct) * float64(itemset.Binomial(int(avgWidth+1), c.k))
	tidCost := float64(c.candidates) * float64(c.k) * float64(volume) / float64(items)
	words := float64(bitmap.Words(distinct))
	if m.sharded() {
		words += float64(len(m.ds.shards) - 1) // per-shard word rounding
	}
	bitCost := float64(c.candidates) * float64(c.k) * words
	if !m.bmBuilt[c.h] {
		bitCost += float64(items) * words // the build pass, paid once per run
	}
	best, cost := CountScan, scanCost
	if tidCost < cost {
		best, cost = CountTIDList, tidCost
	}
	if bitCost < cost {
		best = CountBitmap
	}
	return best
}

// scanTxs counts the flat arena's transactions [lo, hi) into counts by trie
// descent: filter the transaction to candidate-relevant items, then walk
// the items down the trie so only subsets sharing a candidate prefix are
// ever enumerated. The arena is walked front to back, so a block of
// transactions streams through cache while the trie's CSR slabs stay
// resident. Returns the number of subset probes the descent skipped
// relative to a flat C(w,k) enumeration.
func scanTxs(c *cell, f *flatLevel, lo, hi int, counts []int64, filtered itemset.Set) (pruned int64, scratch itemset.Set) {
	k := c.k
	st := c.store
	items, starts, weights := f.items, f.starts, f.weights
	for t := lo; t < hi; t++ {
		filtered = st.Filter(items[starts[t]:starts[t+1]], filtered[:0])
		if len(filtered) < k {
			continue
		}
		hits := st.CountTx(filtered, weights[t], counts)
		pruned += itemset.Binomial(len(filtered), k) - hits
	}
	return pruned, filtered
}

// scanTxsCheckpointed walks [lo, hi) through scanTxs one scanBlock at a
// time, polling the run's cancellation channel between blocks — the scan
// kernel itself stays checkpoint-free, so a cancelled run abandons the pass
// within one block of work while the hot loop is untouched.
func scanTxsCheckpointed(c *cell, f *flatLevel, lo, hi int, counts []int64, done <-chan struct{}) (pruned int64) {
	var filtered itemset.Set
	for lo < hi {
		if canceled(done) {
			return pruned
		}
		end := lo + scanBlock
		if end > hi {
			end = hi
		}
		var p int64
		p, filtered = scanTxs(c, f, lo, end, counts, filtered)
		pruned += p
		lo = end
	}
	return pruned
}

// cancelCheckMask sets the granularity of per-candidate cancellation polls
// in the tid-list and bitmap backends: one poll every 256 candidates costs
// one AND+branch per candidate against work that is orders of magnitude
// larger (a k-way list intersection or k vector ANDs).
const cancelCheckMask = 255

// scanBlock is the transaction-block granularity of parallel scan
// splitting: worker ranges align to it, so no two workers interleave inside
// one block of the arena.
const scanBlock = 512

// countScanMaterialized counts over the level's flat transaction arena,
// fanning block-aligned ranges out to cfg.workers() goroutines.
func (m *miner) countScanMaterialized(c *cell) {
	f := &m.ds.flat[c.h]
	n := f.n()
	workers := m.cfg.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		m.stats.ProbesPruned += scanTxsCheckpointed(c, f, 0, n, c.store.Sup, m.done)
		return
	}
	chunk := (n + workers - 1) / workers
	chunk = (chunk + scanBlock - 1) / scanBlock * scanBlock
	partials := m.sc.partialsFor(workers, c.store.Len())
	pruned := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			pruned[w] = scanTxsCheckpointed(c, f, lo, hi, partials[w], m.done)
		}(w, lo, hi)
	}
	wg.Wait()
	sup := c.store.Sup
	for _, counts := range partials {
		for i, n := range counts {
			sup[i] += n
		}
	}
	for _, n := range pruned {
		m.stats.ProbesPruned += n
	}
}

// countScanStreaming is the disk-resident mode: one sequential pass over the
// raw source with on-the-fly generalization to the cell's level.
func (m *miner) countScanStreaming(c *cell) {
	if m.scanErr != nil {
		return
	}
	st := c.store
	counts := st.Sup
	var filtered itemset.Set
	var pruned int64
	if cap(m.sc.genBuf) < 32 {
		m.sc.genBuf = make([]itemset.ID, 0, 32)
	}
	buf := m.sc.genBuf
	var seen int
	err := m.src.Scan(func(tx itemset.Set) error {
		// Streaming passes can't chunk the loop, so poll inside the callback
		// — every 1024 transactions, amortized to a counter increment.
		if seen++; seen&1023 == 0 && m.cancelled() {
			return errCancelled
		}
		buf = buf[:0]
		for _, id := range tx {
			if a, ok := m.tax.AncestorAt(id, c.h); ok {
				buf = append(buf, a)
			}
		}
		g := canonInto(buf)
		filtered = st.Filter(g, filtered[:0])
		if len(filtered) < c.k {
			return nil
		}
		hits := st.CountTx(filtered, 1, counts)
		pruned += itemset.Binomial(len(filtered), c.k) - hits
		return nil
	})
	m.sc.genBuf = buf
	if err != nil {
		m.scanErr = err
	}
	m.stats.ProbesPruned += pruned
}

// countTID counts by intersecting per-item transaction-ID lists, building
// the level's lists on first use. Candidates are read straight off the
// cell's slab; workers own disjoint index ranges, so they write disjoint
// slots of the shared support slice.
func (m *miner) countTID(c *cell) {
	lists := m.tidLists(c.h)
	st := c.store
	n := st.Len()
	workers := m.cfg.workers()
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	scratches := m.sc.tidScratchFor(workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for e := lo; e < hi; e++ {
				if e&cancelCheckMask == 0 && m.cancelled() {
					return
				}
				st.Sup[e] = intersectSupport(st.Items(int32(e)), lists, &scratches[w])
			}
		}(w, lo, hi)
	}
	wg.Wait()
}

// countBitmap counts by AND-ing per-item bit vectors over the distinct
// weighted transactions of the level view, fanning candidate ranges out to
// cfg.workers() goroutines. The per-level index comes from the engine's
// dataset cache, built on first use by any run.
func (m *miner) countBitmap(c *cell) {
	ix := m.bitmapIndex(c.h)
	st := c.store
	n := st.Len()
	workers := m.cfg.workers()
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	chunk := (n + workers - 1) / workers
	ops := make([]int64, workers)
	scratches := m.sc.vecsFor(workers, c.k)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			scratch := scratches[w]
			var local int64
			for e := lo; e < hi; e++ {
				if e&cancelCheckMask == 0 && m.cancelled() {
					break
				}
				sup, n := ix.SupportInto(st.Items(int32(e)), scratch)
				st.Sup[e] = sup
				local += n
			}
			ops[w] = local
		}(w, lo, hi)
	}
	wg.Wait()
	for _, n := range ops {
		m.stats.BitmapWordOps += n
	}
}

// bitmapIndex returns the per-item bit vectors of a level, built over its
// deduplicated transactions on first use by any run of the engine and
// cached in the dataset state. Stats.BitmapBuilds follows the run's logical
// flags: the first use per level per run counts as a build, cached or not.
func (m *miner) bitmapIndex(h int) *bitmap.Index {
	ds := m.ds
	ds.mu.Lock()
	ix := ds.bitmaps[h]
	if ix == nil {
		data := ds.distinct[h]
		txs := make([]itemset.Set, len(data))
		weights := make([]int64, len(data))
		for i, wt := range data {
			txs[i] = wt.Items
			weights[i] = wt.Weight
		}
		ix = bitmap.Build(txs, weights)
		ds.bitmaps[h] = ix
	}
	ds.mu.Unlock()
	if !m.bmBuilt[h] {
		m.bmBuilt[h] = true
		m.stats.BitmapBuilds++
	}
	return ix
}

// tidLists returns the per-item transaction-ID lists of a level, built on
// first use by any run of the engine and cached in the dataset state.
func (m *miner) tidLists(h int) map[itemset.ID][]int32 {
	ds := m.ds
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.tid[h] != nil {
		return ds.tid[h]
	}
	lists := make(map[itemset.ID][]int32)
	for ti, tx := range ds.views[h].Tx {
		for _, id := range tx {
			lists[id] = append(lists[id], int32(ti))
		}
	}
	ds.tid[h] = lists
	return lists
}

// tidScratch is one tid-list worker's reusable state: the two alternating
// intersection targets plus the length-ordered list-of-lists, hoisted out
// of intersectSupport so the per-candidate loop allocates nothing.
type tidScratch struct {
	bufs    [2][]int32
	ordered [][]int32
}

// intersectSupport returns the size of the k-way intersection of the items'
// tid lists, intersecting smallest-first for early exit. The scratch buffers
// alternate as intersection targets so the map-owned lists are never
// written to.
func intersectSupport(items itemset.Set, lists map[itemset.ID][]int32, s *tidScratch) int64 {
	ordered := s.ordered[:0]
	for _, id := range items {
		l := lists[id]
		if len(l) == 0 {
			return 0
		}
		ordered = append(ordered, l)
	}
	s.ordered = ordered // retain the (possibly regrown) backing array
	// Selection sort by length; k is tiny.
	for i := range ordered {
		min := i
		for j := i + 1; j < len(ordered); j++ {
			if len(ordered[j]) < len(ordered[min]) {
				min = j
			}
		}
		ordered[i], ordered[min] = ordered[min], ordered[i]
	}
	cur := ordered[0] // borrowed from the map; read-only
	for step, next := range ordered[1:] {
		dst := s.bufs[step%2][:0]
		i, j := 0, 0
		for i < len(cur) && j < len(next) {
			switch {
			case cur[i] < next[j]:
				i++
			case cur[i] > next[j]:
				j++
			default:
				dst = append(dst, cur[i])
				i++
				j++
			}
		}
		s.bufs[step%2] = dst
		cur = dst
		if len(cur) == 0 {
			return 0
		}
	}
	return int64(len(cur))
}
