package core

import (
	"sync"

	"github.com/flipper-mining/flipper/internal/bitmap"
	"github.com/flipper-mining/flipper/internal/itemset"
)

// count fills in the support of every candidate in the cell with one pass
// over the data, one set of tid-list intersections, or one batch of bitmap
// AND+popcounts.
func (m *miner) count(c *cell) {
	m.stats.DBScans++
	strategy := m.cfg.Strategy
	if strategy == CountAuto {
		strategy = m.chooseStrategy(c)
	}
	switch strategy {
	case CountTIDList:
		m.countTID(c)
	case CountBitmap:
		m.countBitmap(c)
	default:
		if m.cfg.Materialize {
			m.countScanMaterialized(c)
		} else {
			m.countScanStreaming(c)
		}
	}
}

// scanProbeWeight converts one scan probe (k-subset key build + hash-map
// lookup) into the model's base unit — one sequential word/element
// operation, which is what a tid-list merge step and a bitmap AND both
// cost. Calibrated on the dense counting benchmark (BenchmarkCountingDense:
// ~40ns per probe vs ~5ns per word op on a 2.1GHz Xeon).
const scanProbeWeight = 8

// chooseStrategy is the CountAuto cost model, in units of one sequential
// word/element operation. Scan cost: every distinct transaction enumerates
// C(w, k) subsets, each a hash probe worth scanProbeWeight units. Tid-list
// cost: every candidate intersects k sorted lists whose combined length
// averages k·(level volume / level item count). Bitmap cost: every candidate
// ANDs k vectors of ⌈distinct/64⌉ words, plus a one-time per-level build of
// one word-vector per item. Scans win when candidates dwarf the database
// (their cost is candidate-independent), tid-lists win when a few candidates
// face sparse lists, and bitmaps win when a high candidate count meets a
// dense level — many probes amortizing the fixed-width vectors.
func (m *miner) chooseStrategy(c *cell) CountStrategy {
	view := m.views[c.h]
	items := len(view.Support)
	if items == 0 {
		return CountScan
	}
	var volume int64
	for _, sup := range view.Support {
		volume += sup
	}
	avgWidth := float64(volume) / float64(len(view.Tx))
	scanCost := scanProbeWeight * float64(len(m.distinct[c.h])) * float64(itemset.Binomial(int(avgWidth+1), c.k))
	tidCost := float64(c.candidates) * float64(c.k) * float64(volume) / float64(items)
	words := float64(bitmap.Words(len(m.distinct[c.h])))
	bitCost := float64(c.candidates) * float64(c.k) * words
	if m.bitmaps[c.h] == nil {
		bitCost += float64(items) * words // the build pass, paid once
	}
	best, cost := CountScan, scanCost
	if tidCost < cost {
		best, cost = CountTIDList, tidCost
	}
	if bitCost < cost {
		best = CountBitmap
	}
	return best
}

// candidateIndex freezes a cell's candidates into a slice with a key→index
// map, so workers can accumulate into plain int64 slices.
type candidateIndex struct {
	ents     []*entry
	index    map[string]int
	universe map[itemset.ID]struct{}
}

func buildIndex(c *cell) *candidateIndex {
	ci := &candidateIndex{
		ents:     make([]*entry, 0, len(c.entries)),
		index:    make(map[string]int, len(c.entries)),
		universe: make(map[itemset.ID]struct{}),
	}
	for key, e := range c.entries {
		ci.index[key] = len(ci.ents)
		ci.ents = append(ci.ents, e)
		for _, id := range e.items {
			ci.universe[id] = struct{}{}
		}
	}
	return ci
}

// probeTx enumerates the k-subsets of a transaction's candidate-relevant
// items and adds w to each matching candidate's local counter.
func (ci *candidateIndex) probeTx(tx itemset.Set, k int, w int64, counts []int64, filtered itemset.Set, keyBuf []byte) itemset.Set {
	filtered = filtered[:0]
	for _, id := range tx {
		if _, ok := ci.universe[id]; ok {
			filtered = append(filtered, id)
		}
	}
	if len(filtered) < k {
		return filtered
	}
	itemset.KSubsets(filtered, k, func(sub itemset.Set) {
		key := itemset.AppendKey(keyBuf[:0], sub)
		if i, ok := ci.index[string(key)]; ok {
			counts[i] += w
		}
	})
	return filtered
}

// countScanMaterialized counts over the deduplicated level view, fanning the
// weighted transactions out to cfg.workers() goroutines.
func (m *miner) countScanMaterialized(c *cell) {
	ci := buildIndex(c)
	data := m.distinct[c.h]
	workers := m.cfg.workers()
	if workers > len(data) {
		workers = len(data)
	}
	if workers <= 1 {
		counts := make([]int64, len(ci.ents))
		var filtered itemset.Set
		keyBuf := make([]byte, 0, 4*c.k)
		for _, wt := range data {
			filtered = ci.probeTx(wt.Items, c.k, wt.Weight, counts, filtered, keyBuf)
		}
		for i, e := range ci.ents {
			e.sup = counts[i]
		}
		return
	}
	chunk := (len(data) + workers - 1) / workers
	results := make([][]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(data) {
			hi = len(data)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			counts := make([]int64, len(ci.ents))
			var filtered itemset.Set
			keyBuf := make([]byte, 0, 4*c.k)
			for _, wt := range data[lo:hi] {
				filtered = ci.probeTx(wt.Items, c.k, wt.Weight, counts, filtered, keyBuf)
			}
			results[w] = counts
		}(w, lo, hi)
	}
	wg.Wait()
	for i, e := range ci.ents {
		var sup int64
		for _, counts := range results {
			if counts != nil {
				sup += counts[i]
			}
		}
		e.sup = sup
	}
}

// countScanStreaming is the disk-resident mode: one sequential pass over the
// raw source with on-the-fly generalization to the cell's level.
func (m *miner) countScanStreaming(c *cell) {
	ci := buildIndex(c)
	counts := make([]int64, len(ci.ents))
	var filtered itemset.Set
	keyBuf := make([]byte, 0, 4*c.k)
	buf := make([]itemset.ID, 0, 32)
	_ = m.src.Scan(func(tx itemset.Set) error {
		buf = buf[:0]
		for _, id := range tx {
			if a, ok := m.tax.AncestorAt(id, c.h); ok {
				buf = append(buf, a)
			}
		}
		g := itemset.New(buf...)
		filtered = ci.probeTx(g, c.k, 1, counts, filtered, keyBuf)
		return nil
	})
	for i, e := range ci.ents {
		e.sup = counts[i]
	}
}

// countTID counts by intersecting per-item transaction-ID lists, building
// the level's lists on first use.
func (m *miner) countTID(c *cell) {
	lists := m.tidLists(c.h)
	ci := buildIndex(c)
	workers := m.cfg.workers()
	if workers > len(ci.ents) {
		workers = len(ci.ents)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	chunk := (len(ci.ents) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(ci.ents) {
			hi = len(ci.ents)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var bufs [2][]int32
			for _, e := range ci.ents[lo:hi] {
				e.sup = intersectSupport(e.items, lists, &bufs)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// countBitmap counts by AND-ing per-item bit vectors over the distinct
// weighted transactions of the level view, fanning candidate ranges out to
// cfg.workers() goroutines. The per-level index is built lazily on first use
// and cached on the miner, like the tid lists.
func (m *miner) countBitmap(c *cell) {
	ix := m.bitmapIndex(c.h)
	ci := buildIndex(c)
	workers := m.cfg.workers()
	if workers > len(ci.ents) {
		workers = len(ci.ents)
	}
	if workers < 1 {
		workers = 1
	}
	chunk := (len(ci.ents) + workers - 1) / workers
	ops := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(ci.ents) {
			hi = len(ci.ents)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			scratch := make([]bitmap.Vector, c.k)
			var local int64
			for _, e := range ci.ents[lo:hi] {
				sup, n := ix.SupportInto(e.items, scratch)
				e.sup = sup
				local += n
			}
			ops[w] = local
		}(w, lo, hi)
	}
	wg.Wait()
	for _, n := range ops {
		m.stats.BitmapWordOps += n
	}
}

// bitmapIndex lazily builds the per-item bit vectors of a level over its
// deduplicated transactions.
func (m *miner) bitmapIndex(h int) *bitmap.Index {
	if m.bitmaps[h] != nil {
		return m.bitmaps[h]
	}
	data := m.distinct[h]
	txs := make([]itemset.Set, len(data))
	weights := make([]int64, len(data))
	for i, wt := range data {
		txs[i] = wt.Items
		weights[i] = wt.Weight
	}
	ix := bitmap.Build(txs, weights)
	m.bitmaps[h] = ix
	m.stats.BitmapBuilds++
	return ix
}

// tidLists lazily builds the per-item transaction-ID lists of a level.
func (m *miner) tidLists(h int) map[itemset.ID][]int32 {
	if m.tid[h] != nil {
		return m.tid[h]
	}
	lists := make(map[itemset.ID][]int32)
	for ti, tx := range m.views[h].Tx {
		for _, id := range tx {
			lists[id] = append(lists[id], int32(ti))
		}
	}
	m.tid[h] = lists
	return lists
}

// intersectSupport returns the size of the k-way intersection of the items'
// tid lists, intersecting smallest-first for early exit. The two scratch
// buffers alternate as intersection targets so the map-owned lists are never
// written to.
func intersectSupport(items itemset.Set, lists map[itemset.ID][]int32, bufs *[2][]int32) int64 {
	ordered := make([][]int32, 0, len(items))
	for _, id := range items {
		l := lists[id]
		if len(l) == 0 {
			return 0
		}
		ordered = append(ordered, l)
	}
	// Selection sort by length; k is tiny.
	for i := range ordered {
		min := i
		for j := i + 1; j < len(ordered); j++ {
			if len(ordered[j]) < len(ordered[min]) {
				min = j
			}
		}
		ordered[i], ordered[min] = ordered[min], ordered[i]
	}
	cur := ordered[0] // borrowed from the map; read-only
	for step, next := range ordered[1:] {
		dst := bufs[step%2][:0]
		i, j := 0, 0
		for i < len(cur) && j < len(next) {
			switch {
			case cur[i] < next[j]:
				i++
			case cur[i] > next[j]:
				j++
			default:
				dst = append(dst, cur[i])
				i++
				j++
			}
		}
		bufs[step%2] = dst
		cur = dst
		if len(cur) == 0 {
			return 0
		}
	}
	return int64(len(cur))
}
