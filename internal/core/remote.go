package core

import (
	"context"
	"fmt"

	"github.com/flipper-mining/flipper/internal/candtrie"
	"github.com/flipper-mining/flipper/internal/itemset"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// Distributed counting support: the two exports internal/cluster builds its
// scatter–gather protocol on.
//
//   - A coordinator mines with MineRemote, which runs the full Flipper
//     search locally (candidate generation, labeling, pruning, chain
//     assembly — all cheap) but delegates every cell's support counting —
//     the dominant cost — to a CellCounter. The counter returns the merged
//     support vector for the cell's candidates, aligned index-for-index
//     with the candidate slab.
//
//   - A worker answers one shard's share of such a cell with ShardSupports:
//     the per-shard partial support vector of PR 5's sharded counting,
//     exported as a plain []int64 so it can travel over a wire. Because a
//     transaction lives in exactly one shard and supports merge by plain
//     int64 addition, summing the per-shard vectors — wherever they were
//     computed — reproduces the single-process counts exactly, which is
//     what keeps distributed mining byte-identical to local mining.
//
// Candidate order is the contract: candidates are exchanged in slab-entry
// order (the order Insert assigned their indexes), and ShardSupports
// re-inserts them in that order, reproducing the same indexes. The returned
// vector is therefore aligned with the requesting cell's support slab with
// no key exchange at all.

// CellCounter computes the merged support vector of one cell's candidates.
// Implementations (the cluster coordinator) may fan the work out over
// remote workers, retry, hedge, or fall back to local counting; the only
// obligations are that the returned slice has exactly len(candidates)
// entries, that entry i is the total support of candidates[i] over the
// whole database, and that every candidate is counted exactly once (a
// retried or hedged dispatch must not double-count a shard).
type CellCounter interface {
	CountCell(ctx context.Context, h, k int, candidates []itemset.Set) ([]int64, error)
}

// MineRemote is MineContext with support counting delegated to counter. The
// search itself — candidate generation, thresholds, labeling, TPG/SIBP
// pruning, chain assembly — runs locally over the engine's dataset state,
// so the engine must hold the same dataset the counter's workers count
// (internal/cluster enforces this with dataset fingerprints). A counter
// error fails the mine; it never returns partial results.
func (e *Engine) MineRemote(ctx context.Context, cfg Config, counter CellCounter) (*Result, error) {
	if counter == nil {
		return nil, fmt.Errorf("core: MineRemote needs a CellCounter")
	}
	return e.mineContext(ctx, cfg, counter)
}

// countRemote delegates one cell's counting to the run's CellCounter.
// Errors park in m.scanErr exactly like streaming scan failures: later
// cells short-circuit and Mine fails instead of returning undercounted
// patterns.
func (m *miner) countRemote(c *cell) {
	if m.scanErr != nil {
		return
	}
	cands := make([]itemset.Set, c.store.Len())
	c.store.Walk(func(e int32, items itemset.Set) { cands[e] = items })
	sup, err := m.remote.CountCell(m.ctx, c.h, c.k, cands)
	if err != nil {
		m.scanErr = err
		return
	}
	if len(sup) != len(cands) {
		m.scanErr = fmt.Errorf("core: remote counter returned %d supports for %d candidates", len(sup), len(cands))
		return
	}
	dst := c.store.Sup
	for i, v := range sup {
		dst[i] += v
	}
}

// ResolveShards reports how many transaction shards a run over cfg fans
// counting out over: the source's own shard count for a ShardedSource, the
// in-place partition count Config.Shards induces on an in-memory database,
// and 1 otherwise. Coordinator and workers resolve this identically from
// the same data and configuration, so shard indexes agree across nodes
// without negotiation.
func (e *Engine) ResolveShards(cfg Config) int {
	shards := resolveShardSources(e.src, cfg.Shards)
	if len(shards) <= 1 {
		return 1
	}
	return len(shards)
}

// ShardSupports counts candidates (itemsets of one size, in slab order) at
// taxonomy level h over one transaction shard and returns the partial
// support vector, aligned index-for-index with candidates. shard indexes
// the resolved shard layout (see ResolveShards); for an unsharded run,
// shard 0 is the whole database. The scan-descent counter is used
// regardless of cfg.Strategy — every backend counts identically, and the
// trie walk needs no per-shard index build, which keeps a worker's first
// request as cheap as its hundredth.
func (e *Engine) ShardSupports(ctx context.Context, cfg Config, h int, cands []itemset.Set, shard int) ([]int64, error) {
	if e.tree == nil {
		return nil, fmt.Errorf("core: nil taxonomy")
	}
	if h < 1 || h > e.tree.Height() {
		return nil, fmt.Errorf("core: level %d out of [1, %d]", h, e.tree.Height())
	}
	if len(cands) == 0 {
		return []int64{}, nil
	}
	k := len(cands[0])
	if k < 1 {
		return nil, fmt.Errorf("core: empty candidate itemset")
	}
	if _, err := cfg.validate(e.tree.Height(), e.src.Len()); err != nil {
		return nil, err
	}
	ds, err := e.dataFor(cfg)
	if err != nil {
		return nil, err
	}
	nshards := 1
	if ds.sharded() {
		nshards = len(ds.shards)
	}
	if shard < 0 || shard >= nshards {
		return nil, fmt.Errorf("core: shard %d out of [0, %d)", shard, nshards)
	}
	st := candtrie.New(k)
	for i, cand := range cands {
		if len(cand) != k {
			return nil, fmt.Errorf("core: candidate %d has %d items, want %d", i, len(cand), k)
		}
		for j, id := range cand {
			if id < 0 {
				return nil, fmt.Errorf("core: candidate %d has negative item ID %d", i, id)
			}
			if j > 0 && cand[j-1] >= id {
				return nil, fmt.Errorf("core: candidate %d is not a canonical itemset", i)
			}
		}
		idx, added := st.Insert(cand)
		if !added || idx != int32(i) {
			return nil, fmt.Errorf("core: duplicate candidate at index %d", i)
		}
	}
	st.Freeze()
	c := &cell{h: h, k: k, store: st}
	done := ctx.Done()
	switch {
	case cfg.Materialize && ds.sharded():
		f := &ds.shardFlat[h][shard]
		scanTxsCheckpointed(c, f, 0, f.n(), st.Sup, done)
	case cfg.Materialize:
		f := &ds.flat[h]
		scanTxsCheckpointed(c, f, 0, f.n(), st.Sup, done)
	default:
		src := e.src
		if ds.sharded() {
			src = ds.shards[shard]
		}
		if err := streamCountShard(c, src, e, done); err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]int64, st.Len())
	copy(out, st.Sup)
	return out, nil
}

// streamCountShard is the streaming form of ShardSupports: one pass over
// the shard source with on-the-fly generalization to the cell's level.
func streamCountShard(c *cell, src txdb.Source, e *Engine, done <-chan struct{}) error {
	st := c.store
	var filtered itemset.Set
	var seen int
	buf := make([]itemset.ID, 0, 32)
	return src.Scan(func(tx itemset.Set) error {
		if seen++; seen&1023 == 0 && canceled(done) {
			return errCancelled
		}
		buf = buf[:0]
		for _, id := range tx {
			if a, ok := e.tree.AncestorAt(id, c.h); ok {
				buf = append(buf, a)
			}
		}
		g := canonInto(buf)
		filtered = st.Filter(g, filtered[:0])
		if len(filtered) < c.k {
			return nil
		}
		st.CountTx(filtered, 1, st.Sup)
		return nil
	})
}
