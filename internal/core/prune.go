package core

import (
	"github.com/flipper-mining/flipper/internal/itemset"
)

// Single-item based pruning (SIBP), the paper's Section 4.3.2.
//
// Per level h the frequent 1-items are kept sorted by ascending support
// (m.sorted[h]). After counting cell Q(h,k), the maximal prefix of that list
// whose items appear in no positive k-itemset forms R_h(k): by Corollary 2,
// every itemset of size > k containing such an item is non-positive. When an
// item sits in R_h(k) while its parent sits in R_{h-1}(k), no superset of the
// item can be part of a flipping pattern — two consecutive chain levels
// would be non-positive — so the item is excluded from candidate generation
// in the remaining columns of row h.

// sibpUpdate computes R_h(k) from a freshly counted cell.
func (m *miner) sibpUpdate(h, k int, c *cell) {
	maxCorr := make(map[itemset.ID]float64)
	for i := range c.meta {
		e := &c.meta[i]
		if e.infrequent {
			continue
		}
		for _, id := range c.store.Items(int32(i)) {
			if e.corr > maxCorr[id] {
				maxCorr[id] = e.corr
			}
		}
	}
	r := make(map[itemset.ID]bool)
	for _, id := range m.sorted[h] {
		if m.excluded[h][id] {
			// Already removed from the row; the next item inherits the
			// "smallest remaining support" role.
			continue
		}
		if maxCorr[id] >= m.cfg.Gamma {
			break // prefix ends at the first item with a positive itemset
		}
		r[id] = true
	}
	m.rset[h] = r
	m.rsetCol[h] = k
}

// sibpExclude excludes items of R_h(k) whose parents are in R_{h-1}(k).
// Both R sets must come from the same column; a stale upper set (possible
// when the row above terminated earlier) proves nothing.
func (m *miner) sibpExclude(h, k int) {
	if h < 2 || m.rset[h] == nil || m.rset[h-1] == nil {
		return
	}
	if m.rsetCol[h] != k || m.rsetCol[h-1] != k {
		return
	}
	up := m.rset[h-1]
	for id := range m.rset[h] {
		if m.excluded[h][id] {
			continue
		}
		// AncestorAt rather than Parent: under leaf-copy extension a shallow
		// leaf stands in for itself, and its level-(h-1) generalization is
		// the stand-in, not the tree parent.
		p, ok := m.tax.AncestorAt(id, h-1)
		if ok && up[p] {
			m.excluded[h][id] = true
			m.stats.SIBPExcludedItems++
		}
	}
}
