// Package candtrie implements the engine's candidate store: the set of
// k-itemsets whose supports one cell of the search-space table is counting.
//
// The store replaces the former map[string]*entry representation. Entries
// live in a flat slab — one contiguous item arena plus one support slice,
// addressed by dense int32 indexes — and are indexed by a prefix trie over
// item IDs. The trie serves three roles at once:
//
//   - membership: Lookup descends k nodes instead of building a 4k-byte key
//     and hashing it, so Apriori subset checks allocate nothing;
//   - counting: CountTx walks a transaction's items down the trie, so the
//     scan counter only ever explores subsets that share a prefix with some
//     candidate — subsets with no candidate prefix are pruned before they
//     are enumerated, and no key bytes or map probes appear in the inner
//     loop;
//   - determinism: sibling lists are kept sorted by item ID, so Walk visits
//     entries in lexicographic itemset order — the order the old code
//     obtained by sorting the map's key strings on every use.
//
// Node child lists use the classic first-child/next-sibling encoding with
// int32 links into one node slab, so the whole structure is three flat
// slices. A cell frees its store by dropping the single *Store pointer:
// slabs are released wholesale, with no per-entry cleanup.
package candtrie

import (
	"github.com/flipper-mining/flipper/internal/itemset"
)

// node is one trie node. Links are indexes into Store.nodes; -1 is nil.
// Siblings are sorted ascending by item, which CountTx exploits to merge
// child lists against sorted transactions and Walk exploits for
// lexicographic iteration.
type node struct {
	item  itemset.ID
	child int32 // first child
	next  int32 // next sibling
	entry int32 // entry index for depth-k nodes; -1 above
}

// Store is the candidate store of one cell: all k-itemsets registered for
// counting, k fixed per store.
type Store struct {
	k     int
	nodes []node       // nodes[0] is the root (item field unused there)
	ids   []itemset.ID // item arena: entry e owns ids[e*k : (e+1)*k]
	Sup   []int64      // per-entry support, filled by the counting backends

	// kids[n] is node n's child count, maintained incrementally by Insert so
	// Freeze can size every CSR span exactly without walking sibling chains
	// twice or regrowing slabs.
	kids []int32

	// present is the item-membership bitset over [minID, maxID]; the ID
	// bounds are maintained incrementally by Insert, the bitset is filled by
	// Freeze into a reused slab. Filter consults it to drop transaction items
	// no candidate contains before descending.
	present      []uint64
	minID, maxID itemset.ID
	frozen       bool

	// The CSR child index: node n's children live at
	// csrItems/csrChild/csrEntry[csrStart[n]:csrStart[n+1]], sorted
	// ascending by item. Span sizes accumulate at Insert time (kids); Freeze
	// is one exact-size fill pass into slabs that are reused across
	// Freeze/Reset cycles. CountTx descends these contiguous spans instead of
	// chasing sibling links — sequential loads, binary search when a span
	// is much longer than the transaction, and csrEntry keeps terminal hits
	// from ever touching the node slab.
	csrStart []int32
	csrItems []itemset.ID
	csrChild []int32
	csrEntry []int32
}

// New returns an empty store for k-itemsets.
func New(k int) *Store {
	return &Store{
		k:     k,
		nodes: []node{{child: -1, next: -1, entry: -1}},
		kids:  []int32{0},
		minID: 1, // inverted sentinel range until the first insert
	}
}

// Reset empties the store for reuse with the same k, retaining every slab's
// capacity — node slab, item arena, support slice, CSR index and membership
// bitset. A pooled store that cycles through Reset/Insert/Freeze allocates
// only when a later candidate set outgrows the largest one it has held.
func (s *Store) Reset() {
	s.nodes = s.nodes[:1]
	s.nodes[0] = node{child: -1, next: -1, entry: -1}
	s.kids = s.kids[:1]
	s.kids[0] = 0
	s.ids = s.ids[:0]
	s.Sup = s.Sup[:0]
	s.minID, s.maxID = 1, 0
	s.frozen = false
}

// Len returns the number of entries (registered candidates).
func (s *Store) Len() int { return len(s.Sup) }

// NodeCount returns the number of trie nodes allocated (excluding the root).
func (s *Store) NodeCount() int { return len(s.nodes) - 1 }

// K returns the itemset size the store holds.
func (s *Store) K() int { return s.k }

// Items returns entry e's itemset, aliasing the store's arena. The slice is
// valid for the lifetime of the store and must not be modified.
func (s *Store) Items(e int32) itemset.Set {
	return itemset.Set(s.ids[int(e)*s.k : (int(e)+1)*s.k])
}

// Insert registers a k-itemset and returns its entry index. If the itemset
// is already present, its existing index is returned with added=false.
// Insert must not be called concurrently with any other method.
func (s *Store) Insert(items itemset.Set) (int32, bool) {
	if len(items) != s.k {
		panic("candtrie: itemset size does not match store k")
	}
	s.frozen = false
	n := int32(0)
	for _, id := range items {
		prev := int32(-1)
		c := s.nodes[n].child
		for c != -1 && s.nodes[c].item < id {
			prev, c = c, s.nodes[c].next
		}
		if c == -1 || s.nodes[c].item != id {
			nn := int32(len(s.nodes))
			s.nodes = append(s.nodes, node{item: id, child: -1, next: c, entry: -1})
			s.kids = append(s.kids, 0)
			s.kids[n]++
			if s.minID > s.maxID {
				s.minID, s.maxID = id, id
			} else if id < s.minID {
				s.minID = id
			} else if id > s.maxID {
				s.maxID = id
			}
			if prev == -1 {
				s.nodes[n].child = nn
			} else {
				s.nodes[prev].next = nn
			}
			c = nn
		}
		n = c
	}
	if e := s.nodes[n].entry; e >= 0 {
		return e, false
	}
	e := int32(len(s.Sup))
	s.nodes[n].entry = e
	s.ids = append(s.ids, items...)
	s.Sup = append(s.Sup, 0)
	return e, true
}

// Lookup returns the entry index of items, or -1 when absent.
func (s *Store) Lookup(items itemset.Set) int32 {
	if len(items) != s.k {
		return -1
	}
	n := int32(0)
	for _, id := range items {
		c := s.nodes[n].child
		for c != -1 && s.nodes[c].item < id {
			c = s.nodes[c].next
		}
		if c == -1 || s.nodes[c].item != id {
			return -1
		}
		n = c
	}
	return s.nodes[n].entry
}

// Walk visits every entry in lexicographic itemset order. The itemset passed
// to fn aliases the arena; clone to retain.
func (s *Store) Walk(fn func(e int32, items itemset.Set)) {
	s.walk(0, fn)
}

func (s *Store) walk(n int32, fn func(e int32, items itemset.Set)) {
	for c := s.nodes[n].child; c != -1; c = s.nodes[c].next {
		if e := s.nodes[c].entry; e >= 0 {
			fn(e, s.Items(e))
		} else {
			s.walk(c, fn)
		}
	}
}

// grown returns buf resized to n elements, reusing its backing array when
// the capacity suffices (contents are unspecified; callers overwrite).
func grown[T int32 | uint64](buf []T, n int) []T {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]T, n)
}

// Freeze builds the read-side indexes: the item-membership bitset and the
// CSR child spans. The expensive parts were already paid incrementally by
// Insert — per-node child counts size every span exactly and the ID bounds
// are known — so Freeze is a prefix sum plus one fill pass into slabs reused
// across Freeze/Reset cycles, not a stop-the-world rebuild with regrowing
// appends. It must be called after the last Insert and before Filter/CountTx
// are used (possibly from multiple goroutines); all read-side methods are
// then safe for concurrent use.
func (s *Store) Freeze() {
	if s.frozen {
		return
	}
	s.frozen = true
	// Every non-root node is exactly one parent's child, so the spans hold
	// len(nodes)-1 slots in total.
	total := len(s.nodes) - 1
	s.csrStart = grown(s.csrStart, len(s.nodes)+1)
	s.csrItems = grown(s.csrItems, total)
	s.csrChild = grown(s.csrChild, total)
	s.csrEntry = grown(s.csrEntry, total)
	sum := int32(0)
	for n := range s.nodes {
		s.csrStart[n] = sum
		sum += s.kids[n]
	}
	s.csrStart[len(s.nodes)] = sum
	for n := range s.nodes {
		pos := s.csrStart[n]
		for c := s.nodes[n].child; c != -1; c = s.nodes[c].next {
			s.csrItems[pos] = s.nodes[c].item
			s.csrChild[pos] = c
			s.csrEntry[pos] = s.nodes[c].entry
			pos++
		}
	}
	if len(s.nodes) == 1 {
		// Empty store: the inverted sentinel range (min > max, kept by
		// New/Reset) makes has() reject every ID without consulting the
		// bitset.
		s.present = s.present[:0]
		return
	}
	s.present = grown(s.present, (int(s.maxID)-int(s.minID))>>6+1)
	clear(s.present)
	for _, n := range s.nodes[1:] {
		off := uint(n.item - s.minID)
		s.present[off>>6] |= 1 << (off & 63)
	}
}

// has reports whether any candidate contains id. Freeze must have run.
func (s *Store) has(id itemset.ID) bool {
	if id < s.minID || id > s.maxID {
		return false
	}
	off := uint(id - s.minID)
	return s.present[off>>6]&(1<<(off&63)) != 0
}

// Filter appends the items of tx that occur in at least one candidate to buf
// and returns it. Narrowing transactions to candidate-relevant items before
// CountTx keeps the descent's merge loops short. Freeze must have run.
func (s *Store) Filter(tx itemset.Set, buf itemset.Set) itemset.Set {
	for _, id := range tx {
		if s.has(id) {
			buf = append(buf, id)
		}
	}
	return buf
}

// CountTx adds w to counts[e] for every candidate e that is a subset of tx,
// by descending the trie along tx's items. It returns the number of
// candidates matched (paths that reached depth k) — the probes a flat
// hash-map scan would have spent building keys for; the caller can subtract
// that from C(len(tx), k) to measure how many subset probes the trie pruned.
//
// counts must have length Len(). tx must be canonical (sorted ascending);
// pass the result of Filter for best performance. Safe for concurrent use
// after Freeze (counts are caller-owned).
func (s *Store) CountTx(tx itemset.Set, w int64, counts []int64) int64 {
	if len(tx) < s.k {
		return 0
	}
	return s.countRec(0, 0, tx, w, counts)
}

func (s *Store) countRec(n int32, depth int, tx itemset.Set, w int64, counts []int64) int64 {
	var hits int64
	need := s.k - depth // items still required to complete a candidate
	lo, hi := s.csrStart[n], s.csrStart[n+1]
	items := s.csrItems[lo:hi]
	if len(items) > 16*len(tx) {
		// Child span much wider than the transaction: binary-search each
		// item instead of merging past mostly-absent children. The
		// threshold is deliberately high — binary search's data-dependent
		// branches mispredict ~every level, while the merge's skip branch
		// is predictable, so merging wins until the span dwarfs the
		// transaction (measured on BenchmarkCountingDense).
		for ti := 0; len(tx)-ti >= need; ti++ {
			t := tx[ti]
			a, b := 0, len(items)
			for a < b {
				mid := (a + b) >> 1
				if items[mid] < t {
					a = mid + 1
				} else {
					b = mid
				}
			}
			if a == len(items) || items[a] != t {
				continue
			}
			if e := s.csrEntry[lo+int32(a)]; e >= 0 {
				counts[e] += w
				hits++
			} else {
				hits += s.countRec(s.csrChild[lo+int32(a)], depth+1, tx[ti+1:], w, counts)
			}
		}
		return hits
	}
	entries := s.csrEntry[lo:hi]
	if need == 1 {
		// Terminal level: every match is a candidate hit; a skip-heavy
		// two-pointer merge with no recursion or entry test in the loop.
		ci := 0
		for _, t := range tx {
			for ci < len(items) && items[ci] < t {
				ci++
			}
			if ci == len(items) {
				break
			}
			if items[ci] == t {
				counts[entries[ci]] += w
				hits++
				ci++
			}
		}
		return hits
	}
	ci, ti := 0, 0
	for ci < len(items) && len(tx)-ti >= need {
		t := tx[ti]
		for items[ci] < t {
			ci++
			if ci == len(items) {
				return hits
			}
		}
		if items[ci] == t {
			if e := entries[ci]; e >= 0 {
				counts[e] += w
				hits++
			} else {
				hits += s.countRec(s.csrChild[lo+int32(ci)], depth+1, tx[ti+1:], w, counts)
			}
			ci++
		}
		ti++
	}
	return hits
}
