package candtrie

import (
	"math/rand"
	"testing"

	"github.com/flipper-mining/flipper/internal/itemset"
)

func TestInsertLookupWalk(t *testing.T) {
	s := New(2)
	sets := []itemset.Set{
		itemset.New(3, 4), itemset.New(1, 2), itemset.New(1, 9), itemset.New(2, 3),
	}
	idx := make(map[string]int32)
	for _, set := range sets {
		e, added := s.Insert(set)
		if !added {
			t.Fatalf("Insert(%v) reported duplicate", set)
		}
		idx[set.Key()] = e
	}
	if s.Len() != len(sets) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(sets))
	}
	// Re-inserting returns the existing entry.
	if e, added := s.Insert(itemset.New(1, 2)); added || e != idx[itemset.New(1, 2).Key()] {
		t.Fatalf("duplicate insert: e=%d added=%v", e, added)
	}
	if s.Len() != len(sets) {
		t.Fatalf("Len after duplicate = %d", s.Len())
	}
	for _, set := range sets {
		if e := s.Lookup(set); e != idx[set.Key()] {
			t.Fatalf("Lookup(%v) = %d, want %d", set, e, idx[set.Key()])
		}
		if !s.Items(idx[set.Key()]).Equal(set) {
			t.Fatalf("Items(%d) = %v, want %v", idx[set.Key()], s.Items(idx[set.Key()]), set)
		}
	}
	for _, absent := range []itemset.Set{itemset.New(1, 3), itemset.New(4, 9), itemset.New(9, 11)} {
		if e := s.Lookup(absent); e != -1 {
			t.Fatalf("Lookup(%v) = %d, want -1", absent, e)
		}
	}
	// Walk is lexicographic regardless of insertion order.
	var walked []itemset.Set
	s.Walk(func(e int32, items itemset.Set) {
		walked = append(walked, items.Clone())
	})
	if len(walked) != len(sets) {
		t.Fatalf("Walk visited %d entries", len(walked))
	}
	for i := 1; i < len(walked); i++ {
		if itemset.Compare(walked[i-1], walked[i]) >= 0 {
			t.Fatalf("Walk out of order: %v before %v", walked[i-1], walked[i])
		}
	}
	if !walked[0].Equal(itemset.New(1, 2)) {
		t.Fatalf("first walked = %v", walked[0])
	}
}

func TestFilterAndCountTx(t *testing.T) {
	s := New(2)
	s.Insert(itemset.New(1, 2))
	s.Insert(itemset.New(2, 3))
	s.Freeze()

	var buf itemset.Set
	buf = s.Filter(itemset.New(1, 2, 3, 99), buf[:0])
	if !itemset.Set(buf).Equal(itemset.New(1, 2, 3)) {
		t.Fatalf("Filter = %v", buf)
	}

	counts := make([]int64, s.Len())
	hits := s.CountTx(buf, 5, counts)
	if hits != 2 {
		t.Fatalf("hits = %d", hits)
	}
	for _, set := range []itemset.Set{itemset.New(1, 2), itemset.New(2, 3)} {
		if c := counts[s.Lookup(set)]; c != 5 {
			t.Fatalf("count of %v = %d", set, c)
		}
	}
	// Too-narrow transactions contribute nothing.
	before := append([]int64(nil), counts...)
	if h := s.CountTx(itemset.New(2), 1, counts); h != 0 {
		t.Fatalf("narrow tx hit %d", h)
	}
	for i := range counts {
		if counts[i] != before[i] {
			t.Fatal("narrow transaction changed counts")
		}
	}
	// A transaction matching only a dead-end prefix counts nothing: {1,3}
	// shares the prefix 1 with candidate {1,2} but never completes it, and
	// the descent abandons the branch without enumerating subsets.
	if h := s.CountTx(itemset.New(1, 3), 1, counts); h != 0 {
		t.Fatalf("dead-end prefix produced %d hits", h)
	}
	for i := range counts {
		if counts[i] != before[i] {
			t.Fatal("dead-end transaction changed counts")
		}
	}
}

// TestCountTxAgainstBruteForce drives random stores and random transactions
// against the obvious reference: for every candidate, count the weighted
// transactions containing it.
func TestCountTxAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		k := 2 + rng.Intn(3)
		universe := 6 + rng.Intn(10)
		s := New(k)
		var cands []itemset.Set
		seen := map[string]bool{}
		for i := 0; i < 3+rng.Intn(25); i++ {
			ids := make([]itemset.ID, 0, k)
			for len(ids) < k {
				id := itemset.ID(rng.Intn(universe))
				dup := false
				for _, x := range ids {
					if x == id {
						dup = true
					}
				}
				if !dup {
					ids = append(ids, id)
				}
			}
			set := itemset.New(ids...)
			if seen[set.Key()] {
				continue
			}
			seen[set.Key()] = true
			cands = append(cands, set)
			s.Insert(set)
		}
		s.Freeze()
		counts := make([]int64, s.Len())
		want := make([]int64, s.Len())
		var buf itemset.Set
		for txi := 0; txi < 30; txi++ {
			var ids []itemset.ID
			w := int64(1 + rng.Intn(4))
			for j := 0; j < rng.Intn(universe+2); j++ {
				ids = append(ids, itemset.ID(rng.Intn(universe)))
			}
			tx := itemset.New(ids...)
			buf = s.Filter(tx, buf[:0])
			s.CountTx(buf, w, counts)
			for _, c := range cands {
				if c.SubsetOf(tx) {
					want[s.Lookup(c)] += w
				}
			}
		}
		for i := range counts {
			if counts[i] != want[i] {
				t.Fatalf("trial %d: count of %v = %d, brute force = %d",
					trial, s.Items(int32(i)), counts[i], want[i])
			}
		}
	}
}

func TestEmptyStore(t *testing.T) {
	s := New(2)
	s.Freeze()
	if s.Len() != 0 || s.NodeCount() != 0 {
		t.Fatalf("empty store: Len=%d NodeCount=%d", s.Len(), s.NodeCount())
	}
	if e := s.Lookup(itemset.New(1, 2)); e != -1 {
		t.Fatalf("Lookup on empty = %d", e)
	}
	if got := s.Filter(itemset.New(1, 2, 3), nil); len(got) != 0 {
		t.Fatalf("Filter on empty = %v", got)
	}
	// ID 0 is a valid dictionary-assigned ID and must not slip past the
	// empty store's range check into the nil bitset.
	if got := s.Filter(itemset.Set{0}, nil); len(got) != 0 {
		t.Fatalf("Filter({0}) on empty = %v", got)
	}
	if h := s.CountTx(itemset.New(1, 2, 3), 1, nil); h != 0 {
		t.Fatalf("CountTx on empty = %d", h)
	}
	s.Walk(func(int32, itemset.Set) { t.Fatal("Walk visited an entry") })
}

// TestResetReuse cycles one store through Reset/Insert/Freeze with different
// candidate sets and checks each generation counts exactly like a fresh
// store — the property the engine's store pool depends on.
func TestResetReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	reused := New(2)
	for gen := 0; gen < 50; gen++ {
		reused.Reset()
		fresh := New(2)
		universe := 4 + rng.Intn(12)
		for i := 0; i < rng.Intn(20); i++ {
			a := itemset.ID(rng.Intn(universe))
			b := itemset.ID(rng.Intn(universe))
			if a == b {
				continue
			}
			set := itemset.New(a, b)
			re, ra := reused.Insert(set)
			fe, fa := fresh.Insert(set)
			if re != fe || ra != fa {
				t.Fatalf("gen %d: Insert(%v) = (%d,%v) reused vs (%d,%v) fresh", gen, set, re, ra, fe, fa)
			}
		}
		reused.Freeze()
		fresh.Freeze()
		if reused.Len() != fresh.Len() || reused.NodeCount() != fresh.NodeCount() {
			t.Fatalf("gen %d: Len/NodeCount diverged", gen)
		}
		rc := make([]int64, reused.Len())
		fc := make([]int64, fresh.Len())
		var rbuf, fbuf itemset.Set
		for txi := 0; txi < 20; txi++ {
			var ids []itemset.ID
			for j := 0; j < rng.Intn(universe+2); j++ {
				ids = append(ids, itemset.ID(rng.Intn(universe)))
			}
			tx := itemset.New(ids...)
			rbuf = reused.Filter(tx, rbuf[:0])
			fbuf = fresh.Filter(tx, fbuf[:0])
			if !rbuf.Equal(fbuf) {
				t.Fatalf("gen %d: Filter diverged: %v vs %v", gen, rbuf, fbuf)
			}
			reused.CountTx(rbuf, 1, rc)
			fresh.CountTx(fbuf, 1, fc)
		}
		for i := range rc {
			if rc[i] != fc[i] {
				t.Fatalf("gen %d: count of %v = %d reused, %d fresh",
					gen, reused.Items(int32(i)), rc[i], fc[i])
			}
		}
	}
}
