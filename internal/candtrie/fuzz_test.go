package candtrie

import (
	"testing"

	"github.com/flipper-mining/flipper/internal/itemset"
)

// decodeTxs turns arbitrary fuzz bytes into a small weighted database with
// the same total encoding the bitmap fuzzer uses: a zero byte ends the
// current transaction, any other byte contributes its low nibble as an item
// ID and its high nibble to the transaction's weight.
func decodeTxs(data []byte) (txs []itemset.Set, weights []int64) {
	var cur []itemset.ID
	var w int64 = 1
	flush := func() {
		txs = append(txs, itemset.New(cur...))
		weights = append(weights, w)
		cur, w = nil, 1
	}
	for _, b := range data {
		if b == 0 {
			flush()
			continue
		}
		cur = append(cur, itemset.ID(b&0x0f))
		w += int64(b >> 4)
	}
	if len(cur) > 0 {
		flush()
	}
	return txs, weights
}

// FuzzSupportEquivalence is the trie-store half of the counting-equivalence
// property: for every database the fuzzer can encode, trie-descent counting
// over the full 2- and 3-itemset candidate universe must report exactly the
// supports of the retained brute-force map[string]int64 reference — the
// representation the store replaced.
func FuzzSupportEquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 3, 0, 1, 2, 0, 0x21, 0x32})
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{0xff, 0xf1, 1, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1024 {
			return // keep each execution fast
		}
		txs, weights := decodeTxs(data)
		for k := 2; k <= 3; k++ {
			checkK(t, txs, weights, k)
		}
	})
}

func checkK(t *testing.T, txs []itemset.Set, weights []int64, k int) {
	t.Helper()
	// The nibble encoding bounds the universe to 0..15; register every
	// k-itemset over it as a candidate.
	s := New(k)
	universe := itemset.Set{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
	itemset.KSubsets(universe, k, func(sub itemset.Set) {
		s.Insert(sub.Clone())
	})
	s.Freeze()

	// Trie side: filter + descent, exactly the scan counter's hot loop.
	counts := make([]int64, s.Len())
	var buf itemset.Set
	for i, tx := range txs {
		buf = s.Filter(tx, buf[:0])
		s.CountTx(buf, weights[i], counts)
	}

	// Reference side: the old representation — subset enumeration probing a
	// map keyed by itemset key strings.
	ref := make(map[string]int64)
	for i, tx := range txs {
		itemset.KSubsets(tx, k, func(sub itemset.Set) {
			ref[sub.Key()] += weights[i]
		})
	}

	s.Walk(func(e int32, items itemset.Set) {
		if counts[e] != ref[items.Key()] {
			t.Fatalf("k=%d: trie support of %v = %d, map reference = %d (n=%d)",
				k, items, counts[e], ref[items.Key()], len(txs))
		}
	})
	// And nothing the reference counted is missing from the store.
	for key, want := range ref {
		set, err := itemset.ParseKey(key)
		if err != nil {
			t.Fatal(err)
		}
		e := s.Lookup(set)
		if e < 0 {
			t.Fatalf("k=%d: reference counted %v but store has no entry", k, set)
		}
		if counts[e] != want {
			t.Fatalf("k=%d: support of %v = %d, want %d", k, set, counts[e], want)
		}
	}
}
