package datasets

import (
	"math/rand"

	"github.com/flipper-mining/flipper/internal/gen"
	"github.com/flipper-mining/flipper/internal/taxonomy"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// Census simulates the paper's CENSUS dataset: an extract of 32,000
// multi-attribute person records treated as transactions. The manually
// built hierarchies follow the paper: level-1 nodes are single attribute
// values (occupation, age group, income bin), level-2 leaves are attribute
// combinations such as "craft-repair & bachelors"; the income bins have no
// sub-divisions, so the tree is unbalanced and is leaf-copy extended
// (Figure 3 variant B) — income bins answer for themselves at level 2.
//
// Planted patterns (the paper's Figure 11):
//
//   - Pattern A: occupation craft-repair is negatively correlated with
//     income ≥ 50K, but craft-repair & bachelors flips to positive.
//   - Pattern B: age 60–65 is negatively correlated with income ≥ 50K, but
//     60–65 & executive flips to positive.
//
// Thresholds follow the paper's Table 4 CENSUS row (γ=0.25, ε=0.15) with
// the support profile truncated to the simulator's two levels.
func Census(scale float64, seed int64) (*Dataset, error) {
	if scale <= 0 {
		scale = 1
	}
	n := int(32000 * scale)
	rng := rand.New(rand.NewSource(seed))

	occupations := []string{"craft-repair", "executive", "service", "sales", "tech-support"}
	occShare := []float64{0.15, 0.18, 0.35, 0.17, 0.15}
	educations := []string{"bachelors", "hs-grad", "some-college", "masters"}
	// eduShare[occ][edu]
	eduShare := map[string][]float64{
		"craft-repair": {0.15, 0.50, 0.30, 0.05},
		"executive":    {0.40, 0.10, 0.20, 0.30},
		"service":      {0.10, 0.55, 0.30, 0.05},
		"sales":        {0.25, 0.35, 0.30, 0.10},
		"tech-support": {0.35, 0.20, 0.30, 0.15},
	}
	ages := []string{"25-35", "36-45", "46-59", "60-65"}
	ageShare := []float64{0.30, 0.30, 0.32, 0.08}
	// The age hierarchy's combination attribute groups occupations coarsely.
	ageOcc := map[string]string{
		"craft-repair": "craft-repair",
		"executive":    "executive",
		"service":      "service",
		"sales":        "clerical",
		"tech-support": "clerical",
	}

	b := taxonomy.NewBuilder(nil)
	for _, occ := range occupations {
		root := "occupation: " + occ
		for _, edu := range educations {
			if err := b.AddPath(root, occ+" & "+edu); err != nil {
				return nil, err
			}
		}
	}
	for _, age := range ages {
		root := "age: " + age
		for _, grp := range []string{"executive", "craft-repair", "service", "clerical"} {
			if err := b.AddPath(root, age+" & "+grp); err != nil {
				return nil, err
			}
		}
	}
	b.AddRoot("income >= 50K")
	b.AddRoot("income < 50K")
	tree0, err := b.Build()
	if err != nil {
		return nil, err
	}
	tree := tree0.Extend() // income bins answer for level 2 as themselves

	// P(income ≥ 50K | occupation, education, age).
	incomeProb := func(occ, edu, age string) float64 {
		if age == "60-65" {
			if occ == "executive" {
				return 0.80
			}
			return 0.05
		}
		switch occ {
		case "craft-repair":
			if edu == "bachelors" {
				return 0.85
			}
			return 0.05
		case "executive":
			return 0.60
		case "service":
			return 0.08
		case "sales":
			return 0.30
		default: // tech-support
			return 0.50
		}
	}

	db := txdb.New(tree.Dict())
	for i := 0; i < n; i++ {
		occ := occupations[weighted(rng, occShare)]
		edu := educations[weighted(rng, eduShare[occ])]
		age := ages[weighted(rng, ageShare)]
		income := "income < 50K"
		if rng.Float64() < incomeProb(occ, edu, age) {
			income = "income >= 50K"
		}
		db.AddNames(occ+" & "+edu, age+" & "+ageOcc[occ], income)
	}

	expected := []gen.ExpectedFlip{
		{
			LeafA: "craft-repair & bachelors", LeafB: "income >= 50K",
			Labels:         []string{"-", "+"},
			MinLeafSupport: int64(float64(n) * 0.15 * 0.15 * 0.5), // conservative
		},
		{
			LeafA: "60-65 & executive", LeafB: "income >= 50K",
			Labels:         []string{"-", "+"},
			MinLeafSupport: int64(float64(n) * 0.08 * 0.18 * 0.5),
		},
	}
	return &Dataset{
		Name:     "CENSUS",
		DB:       db,
		Tree:     tree,
		Expected: expected,
		Gamma:    0.25,
		Epsilon:  0.15,
		MinSup:   []float64{0.002, 0.001},
	}, nil
}

// weighted draws an index proportional to the weights.
func weighted(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return i
		}
	}
	return len(weights) - 1
}
