package datasets

import (
	"github.com/flipper-mining/flipper/internal/gen"
	"github.com/flipper-mining/flipper/internal/taxonomy"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// PaperToy returns the worked example of the paper's Figure 4: a 3-level
// taxonomy over categories a and b and ten transactions. With the paper's
// thresholds (γ=0.6, ε=0.35, any minimum support ≥ 1) the only flipping
// pattern is {a11, b11} — Figure 5's chain ab(+) → a1b1(−) → a11b11(+).
func PaperToy() *Dataset {
	b := taxonomy.NewBuilder(nil)
	for _, path := range [][]string{
		{"a", "a1", "a11"}, {"a", "a1", "a12"},
		{"a", "a2", "a21"}, {"a", "a2", "a22"},
		{"b", "b1", "b11"}, {"b", "b1", "b12"},
		{"b", "b2", "b21"}, {"b", "b2", "b22"},
	} {
		if err := b.AddPath(path...); err != nil {
			panic(err) // static input
		}
	}
	tree, err := b.Build()
	if err != nil {
		panic(err)
	}
	db := txdb.New(tree.Dict())
	for _, tx := range [][]string{
		{"a11", "a22", "b11", "b22"},
		{"a11", "a21", "b11"},
		{"a12", "a21"},
		{"a12", "a22", "b21"},
		{"a12", "a22", "b21"},
		{"a12", "a21", "b22"},
		{"a21", "b12"},
		{"b12", "b21", "b22"},
		{"b12", "b21"},
		{"a22", "b12", "b22"},
	} {
		db.AddNames(tx...)
	}
	return &Dataset{
		Name: "PAPER-TOY",
		DB:   db,
		Tree: tree,
		Expected: []gen.ExpectedFlip{{
			LeafA: "a11", LeafB: "b11",
			Labels:         []string{"+", "-", "+"},
			MinLeafSupport: 2,
		}},
		Gamma:   0.6,
		Epsilon: 0.35,
		MinSup:  []float64{0.1, 0.1, 0.1},
	}
}
