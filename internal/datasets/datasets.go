// Package datasets simulates the paper's three reality-check datasets —
// GROCERIES, CENSUS and MEDLINE — which are not redistributable. Each
// simulator reproduces the original's scale (transaction count, taxonomy
// depth and shape) and plants the flipping correlations the paper reports
// for that dataset (Figures 10–12), so the qualitative results are
// recoverable and verifiable. Everything is deterministic given a seed.
//
// The substitution rationale is recorded in DESIGN.md: the paper's
// quantitative claims about these datasets concern the behaviour of the
// miner in the low-support regime (runtime, candidate memory, pattern
// counts), which depends on scale and density, not on the identity of the
// items; the qualitative claims are specific published patterns, which the
// simulators plant with analytically controlled correlation chains.
package datasets

import (
	"fmt"
	"sort"

	"github.com/flipper-mining/flipper/internal/core"
	"github.com/flipper-mining/flipper/internal/gen"
	"github.com/flipper-mining/flipper/internal/measure"
	"github.com/flipper-mining/flipper/internal/taxonomy"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// Dataset bundles a simulated database with its taxonomy, the mining
// thresholds the paper's Table 4 lists for it, and the planted ground truth.
type Dataset struct {
	// Name is the paper's dataset name (GROCERIES, CENSUS, MEDLINE).
	Name string
	// DB holds the transactions.
	DB *txdb.DB
	// Tree is the taxonomy, already extended where the original hierarchy is
	// unbalanced (CENSUS income bins, MEDLINE temperance).
	Tree *taxonomy.Tree
	// Expected lists the planted flips that must be recoverable with the
	// dataset's thresholds.
	Expected []gen.ExpectedFlip
	// Gamma, Epsilon and MinSup are the paper's Table-4 threshold row,
	// adapted to the simulator's taxonomy height.
	Gamma   float64
	Epsilon float64
	MinSup  []float64
}

// Config returns the mining configuration for the dataset's Table-4 row.
func (d *Dataset) Config() core.Config {
	return core.Config{
		Measure:     measure.Kulczynski,
		Gamma:       d.Gamma,
		Epsilon:     d.Epsilon,
		MinSup:      d.MinSup,
		Pruning:     core.Full,
		Strategy:    core.CountScan,
		Materialize: true,
	}
}

// ByName builds a dataset simulator by its paper name, at the given scale
// factor (1.0 = the paper's size) and seed.
func ByName(name string, scale float64, seed int64) (*Dataset, error) {
	switch name {
	case "groceries", "GROCERIES":
		return Groceries(scale, seed)
	case "census", "CENSUS":
		return Census(scale, seed)
	case "medline", "MEDLINE":
		return Medline(scale, seed)
	default:
		return nil, fmt.Errorf("datasets: unknown dataset %q (want groceries, census or medline)", name)
	}
}

// Names lists the three simulators in the paper's order.
func Names() []string { return []string{"GROCERIES", "CENSUS", "MEDLINE"} }

// addForest registers a root→mid→leaves forest in deterministic (sorted)
// order — map iteration order must never leak into dictionary IDs or leaf
// ordering, or identical seeds would produce different datasets.
func addForest(b *taxonomy.Builder, forest map[string]map[string][]string) ([]string, error) {
	roots := make([]string, 0, len(forest))
	for root := range forest {
		roots = append(roots, root)
	}
	sort.Strings(roots)
	var leaves []string
	for _, root := range roots {
		mids := make([]string, 0, len(forest[root]))
		for mid := range forest[root] {
			mids = append(mids, mid)
		}
		sort.Strings(mids)
		for _, mid := range mids {
			for _, leaf := range forest[root][mid] {
				if err := b.AddPath(root, mid, leaf); err != nil {
					return nil, err
				}
				leaves = append(leaves, leaf)
			}
		}
	}
	return leaves, nil
}
