package datasets

import (
	"math/rand"
	"sort"

	"github.com/flipper-mining/flipper/internal/gen"
	"github.com/flipper-mining/flipper/internal/taxonomy"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// Movies simulates the paper's motivating MovieLens example (Example 1,
// Figure 2a): each user is a transaction holding the movies they ranked
// 4/5 or higher; the taxonomy groups movies into genres. Romance and
// western are negatively correlated genres, yet "The Big Country (1958)"
// and "High Noon (1952)" are favored together — the correlation flips from
// negative to positive one level down.
//
// The original MovieLens rankings are not redistributable; the simulator
// draws genre-affine users (each user favors 1–2 genres and ranks mostly
// within them) plus a planted audience that loves both flip movies. Scale
// 1.0 is 6,000 users (the MovieLens-1M user count).
func Movies(scale float64, seed int64) (*Dataset, error) {
	if scale <= 0 {
		scale = 1
	}
	n := int(6000 * scale)
	rng := rand.New(rand.NewSource(seed))

	genres := map[string][]string{
		"romance": {
			"A Farewell to Arms (1932)", "An Affair to Remember (1957)",
			"Roman Holiday (1953)", "Casablanca (1942)",
		},
		"western": {
			"My Darling Clementine (1946)", "Rio Bravo (1959)",
			"Shane (1953)", "The Searchers (1956)",
		},
		"action": {
			"The Great Escape (1963)", "Bullitt (1968)", "Goldfinger (1964)",
		},
		"adventure": {
			"The African Queen (1951)", "Around the World in 80 Days (1956)",
			"Treasure Island (1950)",
		},
		"drama": {
			"12 Angry Men (1957)", "On the Waterfront (1954)",
			"Sunset Boulevard (1950)", "All About Eve (1950)",
		},
		"comedy": {
			"Some Like It Hot (1959)", "The Apartment (1960)",
			"Harvey (1950)",
		},
	}
	// The two flip movies of Figure 2(a).
	bigCountry := "The Big Country (1958)"
	highNoon := "High Noon (1952)"
	genres["romance"] = append(genres["romance"], bigCountry)
	genres["western"] = append(genres["western"], highNoon)

	b := taxonomy.NewBuilder(nil)
	genreNames := make([]string, 0, len(genres))
	for g := range genres {
		genreNames = append(genreNames, g)
	}
	sort.Strings(genreNames)
	for _, g := range genreNames {
		for _, m := range genres[g] {
			if err := b.AddPath(g, m); err != nil {
				return nil, err
			}
		}
	}
	tree, err := b.Build()
	if err != nil {
		return nil, err
	}
	db := txdb.New(tree.Dict())

	// Genre affinity matrix: which second genre a fan of the first also
	// likes. Action pairs with adventure (the paper's positive example);
	// romance and western avoid each other.
	second := map[string][]string{
		"romance":   {"drama", "comedy", "romance"},
		"western":   {"action", "drama", "western"},
		"action":    {"adventure", "adventure", "western"},
		"adventure": {"action", "comedy", "drama"},
		"drama":     {"romance", "comedy", "drama"},
		"comedy":    {"drama", "romance", "adventure"},
	}
	// pick draws up to k distinct movies from a genre, honouring (and
	// extending) the avoid set; it returns fewer when the pool runs dry
	// (the same genre can be drawn as both first and second choice).
	pick := func(genre string, k int, avoid map[string]bool) []string {
		avail := make([]string, 0, len(genres[genre]))
		for _, m := range genres[genre] {
			if !avoid[m] {
				avail = append(avail, m)
			}
		}
		rng.Shuffle(len(avail), func(i, j int) { avail[i], avail[j] = avail[j], avail[i] })
		if k > len(avail) {
			k = len(avail)
		}
		for _, m := range avail[:k] {
			avoid[m] = true
		}
		return avail[:k]
	}

	// The planted audience: users who favor exactly the two flip movies
	// (plus unrelated filler), making the pair positively correlated while
	// the genres stay negative.
	crossFans := 10 + n/200
	for i := 0; i < crossFans; i++ {
		tx := []string{bigCountry, highNoon}
		avoid := map[string]bool{bigCountry: true, highNoon: true}
		tx = append(tx, pick("drama", 1+rng.Intn(2), avoid)...)
		db.AddNames(tx...)
	}
	for db.Len() < n {
		g1 := genreNames[rng.Intn(len(genreNames))]
		avoid := map[string]bool{bigCountry: true, highNoon: true}
		tx := pick(g1, 1+rng.Intn(3), avoid)
		if rng.Float64() < 0.7 {
			g2 := second[g1][rng.Intn(len(second[g1]))]
			tx = append(tx, pick(g2, 1+rng.Intn(2), avoid)...)
		}
		// Occasionally a flip movie shows up in its own genre's context,
		// keeping its single support realistic without pairing the two.
		if rng.Float64() < 0.02 {
			if g1 == "romance" {
				tx = append(tx, bigCountry)
			} else if g1 == "western" {
				tx = append(tx, highNoon)
			}
		}
		db.AddNames(tx...)
	}
	db.Shuffle(seed + 1)

	minLeaf := int64(crossFans)
	return &Dataset{
		Name: "MOVIES",
		DB:   db,
		Tree: tree,
		Expected: []gen.ExpectedFlip{{
			LeafA: bigCountry, LeafB: highNoon,
			Labels:         []string{"-", "+"},
			MinLeafSupport: minLeaf,
		}},
		Gamma:   0.30,
		Epsilon: 0.15,
		MinSup:  []float64{0.002, 0.001},
	}, nil
}
