package datasets

import (
	"math"
	"math/rand"

	"github.com/flipper-mining/flipper/internal/gen"
	"github.com/flipper-mining/flipper/internal/taxonomy"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// Groceries simulates the paper's GROCERIES dataset: one month of
// point-of-sale data, 9,800 transactions, a 3-level store taxonomy.
// The planted flips are the paper's published patterns (Figure 10 and the
// accompanying text):
//
//   - canned beer × baby cosmetics: positively correlated specifics under
//     the negatively correlated beer and cosmetics sub-categories (the
//     "beer and diapers" pattern, chain +,−,+ from the department level).
//   - pork chops × salad dressing: positive at the shelf level while pork
//     and dressings are negative (chain +,−,+) — the store-layout example.
//   - eggs × fresh fish: negative specifics under positively correlated
//     sub-categories of fresh produce and meat&fish (chain −,+,−).
//
// Thresholds follow the paper's Table 4 GROCERIES row:
// γ=0.15, ε=0.10, θ=(0.001, 0.0005, 0.0002).
func Groceries(scale float64, seed int64) (*Dataset, error) {
	if scale <= 0 {
		scale = 1
	}
	n := int(9800 * scale)
	rng := rand.New(rand.NewSource(seed))
	b := taxonomy.NewBuilder(nil)

	// Absolute thresholds implied by the Table-4 GROCERIES row at this size;
	// planted block multipliers are derived from them so every chain level
	// stays frequent at any scale.
	theta1 := int(math.Ceil(0.001 * float64(n)))
	theta2 := int(math.Ceil(0.0005 * float64(n)))
	theta3 := int(math.Ceil(0.0002 * float64(n)))
	// (+,−,+) chains: leaf and mid pair supports are 2s, root pair 42s.
	sPos := maxInt(1, (theta3+1)/2, (theta2+1)/2, (theta1+41)/42)
	// (−,+,−) chains: leaf pair support is s, mid and root pairs 25s.
	sNeg := maxInt(1, theta3, (theta2+24)/25, (theta1+24)/25)

	flips := []gen.FlipSpec3{
		{
			RootA: "drinks", MidA: "beer", AltMidA: "soft drinks",
			LeafA: "canned beer", SibA: "bottled beer", AltLeafA: "soda",
			RootB: "non-food", MidB: "cosmetics", AltMidB: "household",
			LeafB: "baby cosmetics", SibB: "hand cream", AltLeafB: "napkins",
			LeafPositive: true, Scale: sPos,
		},
		{
			RootA: "meat", MidA: "pork", AltMidA: "poultry",
			LeafA: "pork chops", SibA: "pork belly", AltLeafA: "chicken breast",
			RootB: "delicatessen", MidB: "dressings", AltMidB: "spreads",
			LeafB: "salad dressing", SibB: "mayonnaise", AltLeafB: "hummus",
			LeafPositive: true, Scale: sPos,
		},
		{
			RootA: "fresh produce", MidA: "dairy and eggs", AltMidA: "vegetables",
			LeafA: "eggs", SibA: "butter", AltLeafA: "root vegetables",
			RootB: "meat and fish", MidB: "fish", AltMidB: "sausage",
			LeafB: "fresh fish", SibB: "smoked fish", AltLeafB: "frankfurter",
			LeafPositive: false, Scale: sNeg,
		},
	}
	for _, f := range flips {
		if err := f.Register(b); err != nil {
			return nil, err
		}
	}

	// Background departments for realistic noise.
	noise := map[string]map[string][]string{
		"bakery": {
			"bread":  {"white bread", "whole wheat bread", "rolls"},
			"pastry": {"croissant", "muffin", "donut"},
		},
		"pantry": {
			"canned goods": {"canned tomatoes", "canned corn", "canned beans"},
			"pasta":        {"spaghetti", "penne", "noodles"},
			"baking":       {"flour", "sugar", "yeast"},
		},
		"snacks": {
			"chips":     {"potato chips", "tortilla chips"},
			"chocolate": {"milk chocolate", "dark chocolate", "pralines"},
		},
		"frozen": {
			"frozen meals":   {"frozen pizza", "frozen lasagna"},
			"frozen dessert": {"ice cream", "frozen yogurt"},
		},
		"beverages": {
			"juice":      {"orange juice", "apple juice"},
			"hot drinks": {"coffee", "tea", "cocoa"},
		},
		"dairy": {
			"milk":   {"whole milk", "low fat milk"},
			"cheese": {"gouda", "cheddar", "cream cheese"},
			"yogurt": {"plain yogurt", "fruit yogurt"},
		},
	}
	noiseLeaves, err := addForest(b, noise)
	if err != nil {
		return nil, err
	}

	tree, err := b.Build()
	if err != nil {
		return nil, err
	}
	db := txdb.New(tree.Dict())

	// Noise basket: 1–6 items, with mild same-department affinity supplied
	// by drawing a second item near the first.
	basket := func(rng *rand.Rand) []string {
		w := 1 + rng.Intn(6)
		items := make([]string, 0, w)
		first := rng.Intn(len(noiseLeaves))
		items = append(items, noiseLeaves[first])
		for len(items) < w {
			if rng.Float64() < 0.4 {
				// Neighbouring leaf index: same or adjacent shelf.
				j := first + rng.Intn(5) - 2
				if j < 0 {
					j = 0
				}
				if j >= len(noiseLeaves) {
					j = len(noiseLeaves) - 1
				}
				items = append(items, noiseLeaves[j])
			} else {
				items = append(items, noiseLeaves[rng.Intn(len(noiseLeaves))])
			}
		}
		return items
	}
	filler := func(rng *rand.Rand) []string {
		if rng.Float64() < 0.5 {
			return nil
		}
		return basket(rng)[:1]
	}

	var expected []gen.ExpectedFlip
	for _, f := range flips {
		expected = append(expected, f.Emit(db, rng, filler))
	}
	for db.Len() < n {
		db.AddNames(basket(rng)...)
	}
	db.Shuffle(seed + 1)

	return &Dataset{
		Name:     "GROCERIES",
		DB:       db,
		Tree:     tree,
		Expected: expected,
		Gamma:    0.15,
		Epsilon:  0.10,
		MinSup:   []float64{0.001, 0.0005, 0.0002},
	}, nil
}
