package datasets

import (
	"math"
	"math/rand"

	"github.com/flipper-mining/flipper/internal/gen"
	"github.com/flipper-mining/flipper/internal/taxonomy"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// Medline simulates the paper's MEDLINE dataset: medical paper citations
// (transactions) indexed with MeSH topics organized in a hierarchy, of which
// the paper uses the top three levels. The original working set has 640,000
// citations; that is the simulator's scale 1.0 (tests and benches typically
// run a fraction — pass e.g. 0.05 for 32,000).
//
// Planted patterns (the paper's Figure 12):
//
//   - Pattern A: substance-related disorders are often studied together
//     with temperance (positive at level 2) while the specific combination
//     withdrawal syndrome × temperance is underrepresented (negative at the
//     leaf level); mental disorders and human activities are negatively
//     correlated at level 1. Temperance itself has no MeSH children here,
//     so the tree is unbalanced and leaf-copy extended — temperance answers
//     for itself at levels 2 and 3 exactly as the paper's Figure 12 shows.
//   - Pattern B: psychophysiology × psychotherapy are negatively correlated
//     sub-disciplines whose specifics biofeedback × behavior therapy flip
//     to positive (chain +,−,+).
//
// Thresholds follow the paper's Table 4 MEDLINE row:
// γ=0.40, ε=0.10, θ=(0.001, 0.0005, 0.0001).
func Medline(scale float64, seed int64) (*Dataset, error) {
	if scale <= 0 {
		scale = 1
	}
	n := int(640000 * scale)
	rng := rand.New(rand.NewSource(seed))

	// Absolute thresholds implied by the Table-4 row at this scale; planted
	// block sizes are derived from them so the chains stay frequent at any
	// scale.
	theta1 := int(math.Ceil(0.001 * float64(n)))
	theta2 := int(math.Ceil(0.0005 * float64(n)))
	theta3 := int(math.Ceil(0.0001 * float64(n)))

	b := taxonomy.NewBuilder(nil)

	// Pattern A nodes (hand-planted; temperance is a shallow leaf).
	for _, path := range [][]string{
		{"mental disorders", "substance-related disorders", "withdrawal syndrome"},
		{"mental disorders", "substance-related disorders", "substance use disorder"},
		{"mental disorders", "mood disorders", "depressive disorder"},
		{"human activities", "temperance"},
		{"human activities", "leisure activities", "recreation"},
	} {
		if err := b.AddPath(path...); err != nil {
			return nil, err
		}
	}

	// Pattern B via the generic 3-level planter.
	// Scale: the mid-level pair support is 2s and must clear θ2; the leaf
	// pair (2s) must clear θ3 and the root pair (42s) θ1.
	sB := maxInt(1, (theta2+1)/2+1, theta3, (theta1+41)/42)
	flipB := gen.FlipSpec3{
		RootA: "psychological phenomena", MidA: "psychophysiology", AltMidA: "mental processes",
		LeafA: "biofeedback", SibA: "arousal", AltLeafA: "memory",
		RootB: "behavioral disciplines", MidB: "psychotherapy", AltMidB: "behavioral sciences",
		LeafB: "behavior therapy", SibB: "group psychotherapy", AltLeafB: "ethology",
		LeafPositive: true, Scale: sB,
	}
	if err := flipB.Register(b); err != nil {
		return nil, err
	}

	// Background MeSH-like topic forest.
	noise := map[string]map[string][]string{
		"diseases": {
			"cardiovascular diseases": {"heart failure", "hypertension", "arrhythmia"},
			"neoplasms":               {"carcinoma", "lymphoma", "melanoma"},
			"respiratory diseases":    {"asthma", "copd", "pneumonia"},
		},
		"chemicals and drugs": {
			"antibiotics":     {"penicillins", "macrolides"},
			"antineoplastics": {"alkylating agents", "antimetabolites"},
			"hormones":        {"insulin", "glucocorticoids"},
		},
		"anatomy": {
			"cardiovascular system": {"myocardium", "coronary vessels"},
			"nervous system":        {"cerebral cortex", "hippocampus", "spinal cord"},
		},
		"techniques": {
			"diagnostic imaging": {"mri", "tomography", "ultrasonography"},
			"genetic techniques": {"sequencing", "pcr", "gene expression profiling"},
		},
		"health care": {
			"health services": {"primary health care", "emergency services"},
			"quality of care": {"patient safety", "outcome assessment"},
		},
		"organisms": {
			"bacteria": {"escherichia coli", "staphylococcus aureus"},
			"viruses":  {"influenza virus", "coronavirus"},
		},
	}
	noiseLeaves, err := addForest(b, noise)
	if err != nil {
		return nil, err
	}

	tree0, err := b.Build()
	if err != nil {
		return nil, err
	}
	tree := tree0.Extend() // temperance answers for levels 2 and 3

	db := txdb.New(tree.Dict())

	// Zipf-skewed topic popularity for noise citations (2–8 topics each).
	zipf := rand.NewZipf(rng, 1.4, 4, uint64(len(noiseLeaves)-1))
	citation := func(rng *rand.Rand) []string {
		w := 2 + rng.Intn(7)
		items := make([]string, 0, w)
		for len(items) < w {
			items = append(items, noiseLeaves[int(zipf.Uint64())])
		}
		return items
	}
	filler := func(rng *rand.Rand) []string {
		if rng.Float64() < 0.6 {
			return nil
		}
		return citation(rng)[:1]
	}

	// Pattern A blocks (chain −,+,−): see the package-level derivation —
	// sup(ws)=13s, sup(temperance)=13s, leaf co-occurrence s;
	// substance-related × temperance co-occur 13s of sup(SR)=25s;
	// mental disorders × human activities diluted by v root-only blocks.
	sA := maxInt(1, theta3, (theta2+12)/13, (theta1+12)/13)
	vA := 120 * sA
	emit := func(count int, names ...string) {
		for i := 0; i < count; i++ {
			tx := append([]string(nil), names...)
			tx = append(tx, filler(rng)...)
			db.AddNames(tx...)
		}
	}
	emit(12*sA, "substance use disorder", "temperance")
	emit(1*sA, "withdrawal syndrome", "temperance")
	emit(12*sA, "withdrawal syndrome", "depressive disorder")
	emit(vA, "depressive disorder")
	emit(vA, "recreation")
	expA := gen.ExpectedFlip{
		LeafA: "temperance", LeafB: "withdrawal syndrome",
		Labels:         []string{"-", "+", "-"},
		MinLeafSupport: int64(sA),
	}

	expB := flipB.Emit(db, rng, filler)

	for db.Len() < n {
		db.AddNames(citation(rng)...)
	}
	db.Shuffle(seed + 1)

	return &Dataset{
		Name:     "MEDLINE",
		DB:       db,
		Tree:     tree,
		Expected: []gen.ExpectedFlip{expA, expB},
		Gamma:    0.40,
		Epsilon:  0.10,
		MinSup:   []float64{0.001, 0.0005, 0.0001},
	}, nil
}

func maxInt(vals ...int) int {
	m := vals[0]
	for _, v := range vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
