package datasets

import (
	"sort"
	"strings"
	"testing"

	"github.com/flipper-mining/flipper/internal/core"
	"github.com/flipper-mining/flipper/internal/gen"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// findPlanted locates a mined pattern matching the expected flip (unordered
// leaf pair plus the exact label chain) and reports whether it was found.
func findPlanted(t *testing.T, ds *Dataset, res *core.Result, exp gen.ExpectedFlip) bool {
	t.Helper()
	wantPair := []string{exp.LeafA, exp.LeafB}
	sort.Strings(wantPair)
	for _, p := range res.Patterns {
		if len(p.Leaf) != 2 {
			continue
		}
		got := []string{ds.Tree.Name(p.Leaf[0]), ds.Tree.Name(p.Leaf[1])}
		sort.Strings(got)
		if got[0] != wantPair[0] || got[1] != wantPair[1] {
			continue
		}
		if len(p.Chain) != len(exp.Labels) {
			t.Fatalf("%s: pattern %v has %d levels, expected %d", ds.Name, got, len(p.Chain), len(exp.Labels))
		}
		for i, li := range p.Chain {
			if li.Label.String() != exp.Labels[i] {
				t.Fatalf("%s: pattern %v level %d labeled %s, planted %s",
					ds.Name, got, li.Level, li.Label, exp.Labels[i])
			}
		}
		return true
	}
	return false
}

func mineDataset(t *testing.T, ds *Dataset) *core.Result {
	t.Helper()
	res, err := core.Mine(ds.DB, ds.Tree, ds.Config())
	if err != nil {
		t.Fatalf("%s: %v", ds.Name, err)
	}
	return res
}

func TestGroceriesRecoversPlantedPatterns(t *testing.T) {
	ds, err := Groceries(1.0, 42)
	if err != nil {
		t.Fatal(err)
	}
	if ds.DB.Len() != 9800 {
		t.Fatalf("groceries has %d transactions, want 9800", ds.DB.Len())
	}
	if ds.Tree.Height() != 3 {
		t.Fatalf("groceries taxonomy height = %d", ds.Tree.Height())
	}
	res := mineDataset(t, ds)
	for _, exp := range ds.Expected {
		if !findPlanted(t, ds, res, exp) {
			t.Errorf("planted pattern {%s, %s} (%v) not recovered; %d patterns found",
				exp.LeafA, exp.LeafB, exp.Labels, len(res.Patterns))
		}
	}
}

func TestCensusRecoversPlantedPatterns(t *testing.T) {
	ds, err := Census(0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ds.DB.Len() != 16000 {
		t.Fatalf("census has %d records", ds.DB.Len())
	}
	if ds.Tree.Height() != 2 {
		t.Fatalf("census taxonomy height = %d", ds.Tree.Height())
	}
	if !ds.Tree.Extended() {
		t.Fatal("census tree must be leaf-copy extended (income bins)")
	}
	res := mineDataset(t, ds)
	for _, exp := range ds.Expected {
		if !findPlanted(t, ds, res, exp) {
			t.Errorf("planted pattern {%s, %s} not recovered (%d patterns)",
				exp.LeafA, exp.LeafB, len(res.Patterns))
		}
	}
}

func TestMedlineRecoversPlantedPatterns(t *testing.T) {
	ds, err := Medline(0.02, 11) // 12,800 citations for test speed
	if err != nil {
		t.Fatal(err)
	}
	if ds.DB.Len() != 12800 {
		t.Fatalf("medline has %d citations", ds.DB.Len())
	}
	if ds.Tree.Height() != 3 {
		t.Fatalf("medline taxonomy height = %d", ds.Tree.Height())
	}
	if !ds.Tree.Extended() {
		t.Fatal("medline tree must be leaf-copy extended (temperance)")
	}
	res := mineDataset(t, ds)
	for _, exp := range ds.Expected {
		if !findPlanted(t, ds, res, exp) {
			t.Errorf("planted pattern {%s, %s} not recovered (%d patterns)",
				exp.LeafA, exp.LeafB, len(res.Patterns))
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Groceries(0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Groceries(0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.DB.Len() != b.DB.Len() {
		t.Fatal("sizes differ")
	}
	for i := 0; i < a.DB.Len(); i++ {
		if !a.DB.Tx(i).Equal(b.DB.Tx(i)) {
			t.Fatalf("transaction %d differs between identical seeds", i)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		ds, err := ByName(name, 0.02, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ds.Name != name {
			t.Errorf("ByName(%s).Name = %s", name, ds.Name)
		}
		if ds.DB.Len() == 0 {
			t.Errorf("%s is empty", name)
		}
		if len(ds.MinSup) != ds.Tree.Height() {
			t.Errorf("%s: MinSup levels %d != height %d", name, len(ds.MinSup), ds.Tree.Height())
		}
	}
	if _, err := ByName("imdb", 1, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
	// Lowercase aliases work.
	if _, err := ByName("groceries", 0.02, 1); err != nil {
		t.Error("lowercase alias rejected")
	}
}

func TestDatasetStatsAreRealistic(t *testing.T) {
	ds, err := Groceries(1.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	st, err := txdb.ComputeStats(ds.DB)
	if err != nil {
		t.Fatal(err)
	}
	if st.DistinctItems < 40 {
		t.Errorf("groceries distinct items = %d, unrealistically few", st.DistinctItems)
	}
	if st.AvgWidth < 1.2 || st.AvgWidth > 8 {
		t.Errorf("groceries avg width = %v", st.AvgWidth)
	}
	if strings.TrimSpace(ds.Tree.Describe()) == "" {
		t.Error("empty taxonomy description")
	}
}

func TestPaperToy(t *testing.T) {
	ds := PaperToy()
	if ds.DB.Len() != 10 {
		t.Fatalf("toy has %d transactions", ds.DB.Len())
	}
	res, err := core.Mine(ds.DB, ds.Tree, ds.Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 1 {
		t.Fatalf("toy patterns = %d, want 1", len(res.Patterns))
	}
	if !findPlanted(t, ds, res, ds.Expected[0]) {
		t.Error("toy pattern {a11,b11} not matched")
	}
}

func TestMoviesRecoversMotivatingExample(t *testing.T) {
	ds, err := Movies(1.0, 19)
	if err != nil {
		t.Fatal(err)
	}
	if ds.DB.Len() != 6000 {
		t.Fatalf("movies has %d users", ds.DB.Len())
	}
	if ds.Tree.Height() != 2 {
		t.Fatalf("movies taxonomy height = %d", ds.Tree.Height())
	}
	res := mineDataset(t, ds)
	if !findPlanted(t, ds, res, ds.Expected[0]) {
		t.Errorf("Big Country × High Noon not recovered (%d patterns)", len(res.Patterns))
	}
	// The genre-level pair must be negative while the movie pair is
	// positive — the motivating flip of the paper's Example 1.
}

func TestMoviesDeterminism(t *testing.T) {
	a, err := Movies(0.1, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Movies(0.1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.DB.Len(); i++ {
		if !a.DB.Tx(i).Equal(b.DB.Tx(i)) {
			t.Fatalf("transaction %d differs", i)
		}
	}
}
