// Package taxonomy implements the is-a hierarchy substrate of the paper: a
// taxonomy tree whose leaves are the items observed in transactions and whose
// internal nodes are higher-level abstractions. Level 1 holds the most
// general non-root concepts; level H (the height) holds the leaves of a
// balanced tree.
//
// The package provides construction (Builder), navigation (Parent, Children,
// AncestorAt), the two re-balancing strategies of the paper's Figure 3
// (leaf-copy extension and level truncation), a text serialization, and DOT
// export for documentation.
package taxonomy

import (
	"fmt"
	"sort"

	"github.com/flipper-mining/flipper/internal/dict"
	"github.com/flipper-mining/flipper/internal/itemset"
)

// NoParent marks level-1 nodes, whose conceptual parent is the (excluded)
// virtual root at level 0.
const NoParent itemset.ID = -1

type node struct {
	parent   itemset.ID
	children []itemset.ID
	level    int // 1-based; depth below the virtual root
}

// Tree is an immutable taxonomy. Build one with a Builder or a parser; all
// navigation methods are safe for concurrent use.
type Tree struct {
	dict   *dict.Dictionary
	nodes  []node              // indexed by node ID; IDs not in the tree have level 0
	member []bool              // membership mask, indexed by node ID
	levels [][]itemset.ID      // levels[h] = IDs at level h (levels[0] unused)
	height int                 // deepest level
	anc    [][]itemset.ID      // anc[id][h] = ancestor of id at level h (0 entry unused)
	leafAt map[itemset.ID]bool // IDs with no children
	extend bool                // leaf-copy extension active (Figure 3 variant B)
}

// Builder accumulates parent→child edges and produces a validated Tree.
type Builder struct {
	dict  *dict.Dictionary
	edges map[itemset.ID]itemset.ID // child -> parent
	seen  map[itemset.ID]bool
}

// NewBuilder returns a Builder that assigns IDs through d. Passing nil
// creates a fresh dictionary.
func NewBuilder(d *dict.Dictionary) *Builder {
	if d == nil {
		d = dict.New()
	}
	return &Builder{
		dict:  d,
		edges: make(map[itemset.ID]itemset.ID),
		seen:  make(map[itemset.ID]bool),
	}
}

// Dict exposes the dictionary backing the builder.
func (b *Builder) Dict() *dict.Dictionary { return b.dict }

// AddRoot declares name as a level-1 node (child of the virtual root).
// Adding the same root twice is a no-op.
func (b *Builder) AddRoot(name string) itemset.ID {
	id := b.dict.ID(name)
	b.seen[id] = true
	if _, ok := b.edges[id]; !ok {
		b.edges[id] = NoParent
	}
	return id
}

// AddEdge declares child as a direct descendant of parent, creating IDs as
// needed. It returns an error if child already has a different parent.
func (b *Builder) AddEdge(parent, child string) error {
	p := b.dict.ID(parent)
	c := b.dict.ID(child)
	b.seen[p] = true
	b.seen[c] = true
	if prev, ok := b.edges[c]; ok && prev != p && prev != NoParent {
		return fmt.Errorf("taxonomy: node %q has two parents (%q and %q)",
			child, b.dict.Name(prev), parent)
	}
	b.edges[c] = p
	if _, ok := b.edges[p]; !ok {
		b.edges[p] = NoParent
	}
	return nil
}

// AddPath declares a chain of nodes from a level-1 concept down to a leaf,
// e.g. AddPath("drinks", "beer", "canned beer").
func (b *Builder) AddPath(names ...string) error {
	if len(names) == 0 {
		return nil
	}
	b.AddRoot(names[0])
	for i := 1; i < len(names); i++ {
		if err := b.AddEdge(names[i-1], names[i]); err != nil {
			return err
		}
	}
	return nil
}

// Build validates the accumulated edges and produces the Tree. It fails on
// cycles and on empty input. The resulting tree may be unbalanced; call
// Extend (variant B) or Truncate (variant A) before mining if leaf depths
// differ.
func (b *Builder) Build() (*Tree, error) {
	if len(b.seen) == 0 {
		return nil, fmt.Errorf("taxonomy: no nodes")
	}
	n := b.dict.Len()
	t := &Tree{
		dict:   b.dict,
		nodes:  make([]node, n),
		member: make([]bool, n),
		leafAt: make(map[itemset.ID]bool),
	}
	for id := range t.nodes {
		t.nodes[id].parent = NoParent
	}
	var roots []itemset.ID
	for id := range b.seen {
		t.member[id] = true
		p := b.edges[id]
		t.nodes[id].parent = p
		if p == NoParent {
			roots = append(roots, id)
		} else {
			t.nodes[p].children = append(t.nodes[p].children, id)
		}
	}
	if len(roots) == 0 {
		return nil, fmt.Errorf("taxonomy: no level-1 nodes (cycle through every node)")
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	// Deterministic child order.
	for id := range t.nodes {
		ch := t.nodes[id].children
		sort.Slice(ch, func(i, j int) bool { return ch[i] < ch[j] })
	}
	// BFS to assign levels and detect cycles (unreached member nodes).
	t.levels = append(t.levels, nil) // level 0 unused
	frontier := roots
	level := 1
	visited := 0
	for len(frontier) > 0 {
		t.levels = append(t.levels, frontier)
		var next []itemset.ID
		for _, id := range frontier {
			t.nodes[id].level = level
			visited++
			next = append(next, t.nodes[id].children...)
		}
		frontier = next
		level++
	}
	t.height = level - 1
	if visited != len(b.seen) {
		return nil, fmt.Errorf("taxonomy: %d node(s) unreachable from level 1 (cycle)", len(b.seen)-visited)
	}
	for id, ok := range t.member {
		if ok && len(t.nodes[id].children) == 0 {
			t.leafAt[itemset.ID(id)] = true
		}
	}
	t.buildAncestorTable()
	return t, nil
}

func (t *Tree) buildAncestorTable() {
	t.anc = make([][]itemset.ID, len(t.nodes))
	for h := 1; h <= t.height; h++ {
		for _, id := range t.levels[h] {
			row := make([]itemset.ID, t.height+1)
			for i := range row {
				row[i] = NoParent
			}
			// Walk up from the node filling levels ≤ its own.
			cur := id
			for cur != NoParent {
				row[t.nodes[cur].level] = cur
				cur = t.nodes[cur].parent
			}
			if t.extend {
				// Variant B: a shallow leaf stands in for itself at all
				// deeper levels.
				for hh := t.nodes[id].level + 1; hh <= t.height; hh++ {
					row[hh] = id
				}
			}
			t.anc[id] = row
		}
	}
}

// Dict returns the dictionary shared by the tree's nodes.
func (t *Tree) Dict() *dict.Dictionary { return t.dict }

// Height returns H, the number of abstraction levels (excluding the virtual
// root).
func (t *Tree) Height() int { return t.height }

// Contains reports whether id is a node of the tree.
func (t *Tree) Contains(id itemset.ID) bool {
	return id >= 0 && int(id) < len(t.member) && t.member[id]
}

// LevelOf returns the level of id, or 0 when id is not in the tree.
func (t *Tree) LevelOf(id itemset.ID) int {
	if !t.Contains(id) {
		return 0
	}
	return t.nodes[id].level
}

// Parent returns the parent of id, or NoParent for level-1 nodes.
func (t *Tree) Parent(id itemset.ID) itemset.ID {
	if !t.Contains(id) {
		return NoParent
	}
	return t.nodes[id].parent
}

// Children returns the direct descendants of id. The returned slice is owned
// by the tree and must not be mutated.
func (t *Tree) Children(id itemset.ID) []itemset.ID {
	if !t.Contains(id) {
		return nil
	}
	return t.nodes[id].children
}

// ChildrenAt returns the nodes standing for id at level h+... one level below
// id's: its children, or — under leaf-copy extension — id itself when id is a
// leaf shallower than H. This is the expansion step of the engine's vertical
// pattern growth.
func (t *Tree) ChildrenAt(id itemset.ID) []itemset.ID {
	if !t.Contains(id) {
		return nil
	}
	ch := t.nodes[id].children
	if len(ch) == 0 && t.extend && t.nodes[id].level < t.height {
		return []itemset.ID{id}
	}
	return ch
}

// IsLeaf reports whether id has no children.
func (t *Tree) IsLeaf(id itemset.ID) bool { return t.leafAt[id] }

// Leaves returns all leaf IDs in ascending order.
func (t *Tree) Leaves() []itemset.ID {
	out := make([]itemset.ID, 0, len(t.leafAt))
	for id := range t.leafAt {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NodesAtLevel returns the node IDs at level h (1 ≤ h ≤ Height). Under
// leaf-copy extension, shallow leaves are included at every deeper level.
// The returned slice is freshly allocated.
func (t *Tree) NodesAtLevel(h int) []itemset.ID {
	if h < 1 || h > t.height {
		return nil
	}
	var out []itemset.ID
	out = append(out, t.levels[h]...)
	if t.extend {
		for hh := 1; hh < h; hh++ {
			for _, id := range t.levels[hh] {
				if t.leafAt[id] {
					out = append(out, id)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AncestorAt returns the generalization of id at level h. For h equal to id's
// level it returns id itself. Without leaf-copy extension, asking for a level
// deeper than the node's own returns false; with extension, shallow leaves
// answer for all deeper levels.
func (t *Tree) AncestorAt(id itemset.ID, h int) (itemset.ID, bool) {
	if !t.Contains(id) || h < 1 || h > t.height {
		return NoParent, false
	}
	a := t.anc[id][h]
	if a == NoParent {
		return NoParent, false
	}
	return a, true
}

// RootOf returns the level-1 ancestor of id.
func (t *Tree) RootOf(id itemset.ID) itemset.ID {
	a, _ := t.AncestorAt(id, 1)
	return a
}

// IsBalanced reports whether every leaf sits at level Height.
func (t *Tree) IsBalanced() bool {
	for id := range t.leafAt {
		if t.nodes[id].level != t.height {
			return false
		}
	}
	return true
}

// Extended reports whether leaf-copy extension (Figure 3 variant B) is
// active.
func (t *Tree) Extended() bool { return t.extend }

// NodeCount returns the number of nodes in the tree.
func (t *Tree) NodeCount() int {
	n := 0
	for _, ok := range t.member {
		if ok {
			n++
		}
	}
	return n
}

// Name resolves a node ID to its name.
func (t *Tree) Name(id itemset.ID) string { return t.dict.Name(id) }

// FormatSet renders an itemset with node names, e.g. "{beer, diapers}".
func (t *Tree) FormatSet(s itemset.Set) string {
	out := "{"
	for i, id := range s {
		if i > 0 {
			out += ", "
		}
		out += t.dict.Name(id)
	}
	return out + "}"
}

// GeneralizeSet maps every item of a (leaf-level) itemset to its ancestor at
// level h and returns the canonical result. Items that collapse onto the same
// ancestor are merged; ok is false if any item has no ancestor at h.
func (t *Tree) GeneralizeSet(s itemset.Set, h int) (itemset.Set, bool) {
	ids := make([]itemset.ID, 0, len(s))
	for _, id := range s {
		a, ok := t.AncestorAt(id, h)
		if !ok {
			return nil, false
		}
		ids = append(ids, a)
	}
	return itemset.New(ids...), true
}

// Validate performs internal consistency checks; it is used by tests and by
// parsers after loading external files.
func (t *Tree) Validate() error {
	count := 0
	for h := 1; h <= t.height; h++ {
		for _, id := range t.levels[h] {
			count++
			if t.nodes[id].level != h {
				return fmt.Errorf("taxonomy: node %q level mismatch", t.Name(id))
			}
			p := t.nodes[id].parent
			if h == 1 && p != NoParent {
				return fmt.Errorf("taxonomy: level-1 node %q has parent", t.Name(id))
			}
			if h > 1 {
				if p == NoParent {
					return fmt.Errorf("taxonomy: node %q at level %d has no parent", t.Name(id), h)
				}
				if t.nodes[p].level != h-1 {
					return fmt.Errorf("taxonomy: parent of %q is not one level up", t.Name(id))
				}
			}
		}
	}
	if count != t.NodeCount() {
		return fmt.Errorf("taxonomy: %d nodes in levels, %d members", count, t.NodeCount())
	}
	return nil
}
