package taxonomy

import (
	"fmt"
	"sort"

	"github.com/flipper-mining/flipper/internal/itemset"
)

// Extend returns a view of the tree with leaf-copy extension enabled — the
// paper's Figure 3 variant B. A leaf whose depth is less than the tree
// height answers for itself at every deeper level, so every abstraction level
// 1..H is total over the item universe. The original tree is unchanged.
func (t *Tree) Extend() *Tree {
	if t.extend {
		return t
	}
	c := &Tree{
		dict:   t.dict,
		nodes:  t.nodes,
		member: t.member,
		levels: t.levels,
		height: t.height,
		leafAt: t.leafAt,
		extend: true,
	}
	c.buildAncestorTable()
	return c
}

// Truncate implements the paper's Figure 3 variant A: it keeps only the given
// levels (ascending, each within 1..Height) and rewires parent edges across
// the removed levels. Nodes whose own level is dropped disappear; the
// deepest kept level becomes the new leaf level.
//
// Because transactions reference original leaves, Truncate also returns a
// leaf mapping from every original leaf to its representative in the new
// tree (its ancestor at the deepest kept level), which txdb.DB.MapLeaves
// applies to a database. Original leaves with no ancestor at the deepest
// kept level (possible in unbalanced trees without extension) are absent
// from the map and should be dropped from transactions.
func (t *Tree) Truncate(levels []int) (*Tree, map[itemset.ID]itemset.ID, error) {
	if len(levels) == 0 {
		return nil, nil, fmt.Errorf("taxonomy: Truncate needs at least one level")
	}
	sorted := append([]int(nil), levels...)
	sort.Ints(sorted)
	for i, h := range sorted {
		if h < 1 || h > t.height {
			return nil, nil, fmt.Errorf("taxonomy: Truncate level %d out of range 1..%d", h, t.height)
		}
		if i > 0 && sorted[i-1] == h {
			return nil, nil, fmt.Errorf("taxonomy: Truncate level %d repeated", h)
		}
	}
	b := NewBuilder(t.dict)
	for i, h := range sorted {
		for _, id := range t.NodesAtLevel(h) {
			name := t.Name(id)
			if i == 0 {
				b.AddRoot(name)
				continue
			}
			p, ok := t.AncestorAt(id, sorted[i-1])
			if !ok {
				// Shallow leaf with no ancestor at the previous kept level;
				// only possible without extension. Skip it.
				continue
			}
			if p == id {
				// Leaf-copy stand-in: the node already exists at the
				// shallower kept level; do not create a self-edge.
				continue
			}
			if err := b.AddEdge(t.Name(p), name); err != nil {
				return nil, nil, err
			}
		}
	}
	nt, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	if t.extend {
		nt = nt.Extend()
	}
	deepest := sorted[len(sorted)-1]
	leafMap := make(map[itemset.ID]itemset.ID)
	for _, leaf := range t.Leaves() {
		if a, ok := t.AncestorAt(leaf, deepest); ok {
			leafMap[leaf] = a
		}
	}
	return nt, leafMap, nil
}
