package taxonomy

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/flipper-mining/flipper/internal/dict"
	"github.com/flipper-mining/flipper/internal/itemset"
)

// paperToy builds the taxonomy of the paper's Figure 4: two level-1
// categories a and b, each with two children, each of those with two leaves.
func paperToy(t *testing.T) *Tree {
	t.Helper()
	b := NewBuilder(nil)
	for _, path := range [][]string{
		{"a", "a1", "a11"}, {"a", "a1", "a12"},
		{"a", "a2", "a21"}, {"a", "a2", "a22"},
		{"b", "b1", "b11"}, {"b", "b1", "b12"},
		{"b", "b2", "b21"}, {"b", "b2", "b22"},
	} {
		if err := b.AddPath(path...); err != nil {
			t.Fatalf("AddPath(%v): %v", path, err)
		}
	}
	tree, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return tree
}

func id(t *testing.T, tr *Tree, name string) itemset.ID {
	t.Helper()
	v, ok := tr.Dict().Lookup(name)
	if !ok {
		t.Fatalf("node %q not in dictionary", name)
	}
	return v
}

func TestBuildPaperToy(t *testing.T) {
	tr := paperToy(t)
	if tr.Height() != 3 {
		t.Fatalf("Height = %d, want 3", tr.Height())
	}
	if got := tr.NodeCount(); got != 14 {
		t.Errorf("NodeCount = %d, want 14", got)
	}
	if !tr.IsBalanced() {
		t.Error("paper toy should be balanced")
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	sizes := tr.LevelSizes()
	for h, want := range map[int]int{1: 2, 2: 4, 3: 8} {
		if sizes[h] != want {
			t.Errorf("level %d has %d nodes, want %d", h, sizes[h], want)
		}
	}
}

func TestNavigation(t *testing.T) {
	tr := paperToy(t)
	a := id(t, tr, "a")
	a1 := id(t, tr, "a1")
	a11 := id(t, tr, "a11")

	if tr.Parent(a) != NoParent {
		t.Error("level-1 node must have NoParent")
	}
	if tr.Parent(a1) != a {
		t.Error("Parent(a1) != a")
	}
	if tr.Parent(a11) != a1 {
		t.Error("Parent(a11) != a1")
	}
	if tr.LevelOf(a) != 1 || tr.LevelOf(a1) != 2 || tr.LevelOf(a11) != 3 {
		t.Error("levels wrong")
	}
	if !tr.IsLeaf(a11) || tr.IsLeaf(a1) || tr.IsLeaf(a) {
		t.Error("leaf detection wrong")
	}
	ch := tr.Children(a1)
	if len(ch) != 2 {
		t.Fatalf("Children(a1) = %v", ch)
	}
	if tr.Name(ch[0]) != "a11" || tr.Name(ch[1]) != "a12" {
		t.Errorf("Children(a1) = [%s %s]", tr.Name(ch[0]), tr.Name(ch[1]))
	}
	if len(tr.Leaves()) != 8 {
		t.Errorf("Leaves = %d, want 8", len(tr.Leaves()))
	}
}

func TestAncestorAt(t *testing.T) {
	tr := paperToy(t)
	a := id(t, tr, "a")
	a1 := id(t, tr, "a1")
	a11 := id(t, tr, "a11")

	cases := []struct {
		node itemset.ID
		h    int
		want itemset.ID
		ok   bool
	}{
		{a11, 3, a11, true},
		{a11, 2, a1, true},
		{a11, 1, a, true},
		{a1, 1, a, true},
		{a1, 2, a1, true},
		{a1, 3, NoParent, false}, // deeper than own level, no extension
		{a11, 0, NoParent, false},
		{a11, 4, NoParent, false},
	}
	for _, c := range cases {
		got, ok := tr.AncestorAt(c.node, c.h)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("AncestorAt(%s, %d) = %v, %v; want %v, %v",
				tr.Name(c.node), c.h, got, ok, c.want, c.ok)
		}
	}
	if tr.RootOf(a11) != a {
		t.Error("RootOf(a11) != a")
	}
}

func TestGeneralizeSet(t *testing.T) {
	tr := paperToy(t)
	s := itemset.New(id(t, tr, "a11"), id(t, tr, "a12"), id(t, tr, "b21"))
	g2, ok := tr.GeneralizeSet(s, 2)
	if !ok {
		t.Fatal("GeneralizeSet failed")
	}
	want2 := itemset.New(id(t, tr, "a1"), id(t, tr, "b2"))
	if !g2.Equal(want2) {
		t.Errorf("level 2 generalization = %v, want %v (a11,a12 must merge)", tr.FormatSet(g2), tr.FormatSet(want2))
	}
	g1, _ := tr.GeneralizeSet(s, 1)
	want1 := itemset.New(id(t, tr, "a"), id(t, tr, "b"))
	if !g1.Equal(want1) {
		t.Errorf("level 1 generalization = %v", tr.FormatSet(g1))
	}
}

func TestDuplicateParentRejected(t *testing.T) {
	b := NewBuilder(nil)
	if err := b.AddEdge("p1", "c"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge("p2", "c"); err == nil {
		t.Fatal("second parent for c accepted")
	}
	// Same edge twice is fine.
	if err := b.AddEdge("p1", "c"); err != nil {
		t.Fatalf("re-adding identical edge: %v", err)
	}
}

func TestCycleDetection(t *testing.T) {
	b := NewBuilder(nil)
	// x -> y -> z -> x forms a cycle with no level-1 entry point... but each
	// AddEdge marks the parent as a root candidate when unseen, so build a
	// genuine cycle by wiring after the fact through a shared builder.
	if err := b.AddEdge("x", "y"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge("y", "z"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge("z", "x"); err == nil {
		// z gets x as child, but x already has parent NoParent -> AddEdge
		// overrides? It must fail or Build must fail.
		if _, buildErr := b.Build(); buildErr == nil {
			t.Fatal("cycle neither rejected by AddEdge nor by Build")
		}
	}
}

func TestEmptyBuild(t *testing.T) {
	if _, err := NewBuilder(nil).Build(); err == nil {
		t.Fatal("empty Build succeeded")
	}
}

func TestExtendVariantB(t *testing.T) {
	// Unbalanced: category "x" has a deep branch and a shallow leaf.
	b := NewBuilder(nil)
	if err := b.AddPath("x", "x1", "x11"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPath("x", "xShallow"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPath("y", "y1", "y11"); err != nil {
		t.Fatal(err)
	}
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if tr.IsBalanced() {
		t.Fatal("tree should be unbalanced")
	}
	xs := id(t, tr, "xShallow")
	if _, ok := tr.AncestorAt(xs, 3); ok {
		t.Fatal("shallow leaf must not answer for level 3 without extension")
	}

	ext := tr.Extend()
	if !ext.Extended() {
		t.Fatal("Extend did not mark the tree")
	}
	if a, ok := ext.AncestorAt(xs, 3); !ok || a != xs {
		t.Errorf("extended AncestorAt(xShallow, 3) = %v, %v; want self", a, ok)
	}
	if a, ok := ext.AncestorAt(xs, 2); !ok || a != xs {
		t.Errorf("extended AncestorAt(xShallow, 2) = %v, %v; want self", a, ok)
	}
	if a, ok := ext.AncestorAt(xs, 1); !ok || a != id(t, tr, "x") {
		t.Errorf("extended AncestorAt(xShallow, 1) = %v, %v; want x", a, ok)
	}
	// Level listing must now include the stand-in leaf.
	found := false
	for _, n := range ext.NodesAtLevel(3) {
		if n == xs {
			found = true
		}
	}
	if !found {
		t.Error("NodesAtLevel(3) missing extended shallow leaf")
	}
	// ChildrenAt of the shallow leaf yields itself (vertical growth).
	ca := ext.ChildrenAt(xs)
	if len(ca) != 1 || ca[0] != xs {
		t.Errorf("ChildrenAt(xShallow) = %v", ca)
	}
	// The original tree is untouched.
	if tr.Extended() {
		t.Error("Extend mutated the receiver")
	}
}

func TestTruncateVariantA(t *testing.T) {
	tr := paperToy(t)
	nt, leafMap, err := tr.Truncate([]int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if nt.Height() != 2 {
		t.Fatalf("truncated height = %d, want 2", nt.Height())
	}
	// a11's parent in the truncated tree must be a (level 2 removed).
	a11 := id(t, tr, "a11")
	if nt.Parent(a11) != id(t, tr, "a") {
		t.Errorf("truncated parent of a11 = %q", nt.Name(nt.Parent(a11)))
	}
	if got := leafMap[a11]; got != a11 {
		t.Errorf("leafMap[a11] = %v, want identity (leaf level kept)", got)
	}
	if err := nt.Validate(); err != nil {
		t.Errorf("Validate truncated: %v", err)
	}

	// Truncating to {1,2} makes level-2 nodes the new leaves.
	nt2, leafMap2, err := tr.Truncate([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if nt2.Height() != 2 {
		t.Fatalf("truncated height = %d, want 2", nt2.Height())
	}
	if got := leafMap2[a11]; got != id(t, tr, "a1") {
		t.Errorf("leafMap2[a11] = %q, want a1", nt2.Name(got))
	}

	// Error cases.
	if _, _, err := tr.Truncate(nil); err == nil {
		t.Error("Truncate(nil) accepted")
	}
	if _, _, err := tr.Truncate([]int{0}); err == nil {
		t.Error("Truncate(level 0) accepted")
	}
	if _, _, err := tr.Truncate([]int{1, 1}); err == nil {
		t.Error("Truncate(repeated level) accepted")
	}
	if _, _, err := tr.Truncate([]int{4}); err == nil {
		t.Error("Truncate(level beyond height) accepted")
	}
}

func TestParseWriteRoundTrip(t *testing.T) {
	tr := paperToy(t)
	var sb strings.Builder
	if _, err := tr.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(strings.NewReader(sb.String()), nil)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if back.Height() != tr.Height() || back.NodeCount() != tr.NodeCount() {
		t.Fatalf("round trip changed shape: %s vs %s", back.Describe(), tr.Describe())
	}
	// Structure is preserved under name lookup.
	for _, leaf := range tr.Leaves() {
		name := tr.Name(leaf)
		bid, ok := back.Dict().Lookup(name)
		if !ok {
			t.Fatalf("leaf %q lost", name)
		}
		if back.Name(back.Parent(bid)) != tr.Name(tr.Parent(leaf)) {
			t.Errorf("parent of %q changed", name)
		}
	}
}

func TestParseFormats(t *testing.T) {
	in := "# comment\n\nfood\nbeer\tfood\n  stout \t beer \n"
	tr, err := Parse(strings.NewReader(in), nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Height() != 3 {
		t.Fatalf("height = %d, want 3", tr.Height())
	}
	stout := id(t, tr, "stout")
	if tr.Name(tr.Parent(stout)) != "beer" {
		t.Error("whitespace trimming failed")
	}

	if _, err := Parse(strings.NewReader("a\tb\tc\n"), nil); err == nil {
		t.Error("3-field line accepted")
	}
	if _, err := Parse(strings.NewReader("\tb\n"), nil); err == nil {
		t.Error("empty child accepted")
	}
}

func TestWriteDOT(t *testing.T) {
	tr := paperToy(t)
	var sb strings.Builder
	if err := tr.WriteDOT(&sb, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph", `"a11"`, "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	// Depth-limited export excludes leaves.
	sb.Reset()
	if err := tr.WriteDOT(&sb, 1); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), `"a11"`) {
		t.Error("depth-1 DOT should not include leaves")
	}
}

func TestSharedDictionary(t *testing.T) {
	d := dict.New()
	d.ID("pre-existing")
	b := NewBuilder(d)
	b.AddRoot("food")
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// The pre-existing id is not a tree member.
	pid, _ := d.Lookup("pre-existing")
	if tr.Contains(pid) {
		t.Error("non-tree dictionary entry reported as member")
	}
	if tr.LevelOf(pid) != 0 {
		t.Error("non-member level must be 0")
	}
}

func TestDescribe(t *testing.T) {
	tr := paperToy(t)
	got := tr.Describe()
	for _, want := range []string{"height 3", "14 nodes", "balanced"} {
		if !strings.Contains(got, want) {
			t.Errorf("Describe() = %q missing %q", got, want)
		}
	}
}

// Property-style test: random trees round-trip through serialization and
// satisfy ancestor invariants.
func TestRandomTreeInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		b := NewBuilder(nil)
		roots := 1 + rng.Intn(5)
		depth := 2 + rng.Intn(3)
		var build func(parent string, level int)
		nodeCount := 0
		build = func(parent string, level int) {
			if level > depth {
				return
			}
			kids := 1 + rng.Intn(3)
			for i := 0; i < kids; i++ {
				nodeCount++
				name := parent + "/" + string(rune('a'+i))
				if err := b.AddEdge(parent, name); err != nil {
					t.Fatal(err)
				}
				if rng.Intn(3) > 0 { // sometimes stop early -> unbalanced
					build(name, level+1)
				}
			}
		}
		for r := 0; r < roots; r++ {
			name := string(rune('A' + r))
			b.AddRoot(name)
			build(name, 2)
		}
		tr, err := b.Build()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ext := tr.Extend()
		for _, leaf := range ext.Leaves() {
			for h := 1; h <= ext.Height(); h++ {
				a, ok := ext.AncestorAt(leaf, h)
				if !ok {
					t.Fatalf("trial %d: extended leaf %q missing ancestor at %d", trial, ext.Name(leaf), h)
				}
				// The ancestor's own ancestors agree (transitivity).
				if h > 1 {
					up, ok := ext.AncestorAt(a, h-1)
					if !ok {
						// A leaf stand-in at level h answers for h-1 too,
						// unless h-1 is above its true level.
						continue
					}
					b2, _ := ext.AncestorAt(leaf, h-1)
					if up != b2 {
						t.Fatalf("trial %d: ancestor transitivity broken for %q at %d", trial, ext.Name(leaf), h)
					}
				}
			}
		}
		var sb strings.Builder
		if _, err := tr.WriteTo(&sb); err != nil {
			t.Fatal(err)
		}
		back, err := Parse(strings.NewReader(sb.String()), nil)
		if err != nil {
			t.Fatalf("trial %d parse: %v", trial, err)
		}
		if back.NodeCount() != tr.NodeCount() || back.Height() != tr.Height() {
			t.Fatalf("trial %d: round trip shape mismatch", trial)
		}
	}
}

func BenchmarkAncestorAt(b *testing.B) {
	bt := NewBuilder(nil)
	for r := 0; r < 10; r++ {
		root := string(rune('A' + r))
		bt.AddRoot(root)
		for c := 0; c < 5; c++ {
			mid := root + "/" + string(rune('a'+c))
			_ = bt.AddEdge(root, mid)
			for l := 0; l < 5; l++ {
				_ = bt.AddEdge(mid, mid+"/"+string(rune('0'+l)))
			}
		}
	}
	tr, err := bt.Build()
	if err != nil {
		b.Fatal(err)
	}
	leaves := tr.Leaves()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		leaf := leaves[i%len(leaves)]
		if _, ok := tr.AncestorAt(leaf, 1); !ok {
			b.Fatal("missing ancestor")
		}
	}
}
