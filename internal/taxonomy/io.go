package taxonomy

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/flipper-mining/flipper/internal/dict"
	"github.com/flipper-mining/flipper/internal/itemset"
)

// The on-disk taxonomy format is one edge per line:
//
//	child <TAB> parent
//
// Level-1 nodes may appear alone on a line (no parent column). Blank lines
// and lines starting with '#' are ignored. Names may contain spaces but not
// tabs. The format round-trips through Parse/WriteTo.

// Parse reads the edge-list format from r, assigning IDs through d (pass nil
// for a fresh dictionary).
func Parse(r io.Reader, d *dict.Dictionary) (*Tree, error) {
	b := NewBuilder(d)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Text()
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(raw, "\t")
		switch len(parts) {
		case 1:
			b.AddRoot(strings.TrimSpace(parts[0]))
		case 2:
			child := strings.TrimSpace(parts[0])
			parent := strings.TrimSpace(parts[1])
			if child == "" || parent == "" {
				return nil, fmt.Errorf("taxonomy: line %d: empty node name", lineNo)
			}
			if err := b.AddEdge(parent, child); err != nil {
				return nil, fmt.Errorf("taxonomy: line %d: %w", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("taxonomy: line %d: expected 'child<TAB>parent', got %d fields", lineNo, len(parts))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("taxonomy: read: %w", err)
	}
	return b.Build()
}

// WriteTo serializes the tree in the edge-list format understood by Parse.
// Output is deterministic: nodes ordered by level then ID. Node names
// containing tabs, newlines or a leading '#' cannot round-trip the format
// and are rejected.
func (t *Tree) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	for h := 1; h <= t.height; h++ {
		for _, id := range t.levels[h] {
			if err := validateNodeName(t.Name(id)); err != nil {
				return n, err
			}
			var line string
			if p := t.nodes[id].parent; p == NoParent {
				line = t.Name(id) + "\n"
			} else {
				line = t.Name(id) + "\t" + t.Name(p) + "\n"
			}
			wn, err := bw.WriteString(line)
			n += int64(wn)
			if err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// validateNodeName rejects node names the edge-list format cannot represent.
func validateNodeName(name string) error {
	if name == "" {
		return fmt.Errorf("taxonomy: empty node name cannot round-trip")
	}
	if strings.ContainsAny(name, "\t\n\r") {
		return fmt.Errorf("taxonomy: node name %q contains a field separator", name)
	}
	if strings.HasPrefix(strings.TrimSpace(name), "#") {
		return fmt.Errorf("taxonomy: node name %q would parse as a comment", name)
	}
	if name != strings.TrimSpace(name) {
		return fmt.Errorf("taxonomy: node name %q has surrounding whitespace", name)
	}
	return nil
}

// WriteDOT emits a Graphviz rendering of the tree (or, for large trees, of
// the top maxDepth levels; pass 0 for the full tree). Used to generate the
// documentation figures.
func (t *Tree) WriteDOT(w io.Writer, maxDepth int) error {
	if maxDepth <= 0 || maxDepth > t.height {
		maxDepth = t.height
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "digraph taxonomy {")
	fmt.Fprintln(bw, "  rankdir=TB;")
	fmt.Fprintln(bw, "  node [shape=box, fontsize=10];")
	for h := 1; h <= maxDepth; h++ {
		for _, id := range t.levels[h] {
			fmt.Fprintf(bw, "  n%d [label=%q];\n", id, t.Name(id))
			if p := t.nodes[id].parent; p != NoParent {
				fmt.Fprintf(bw, "  n%d -> n%d;\n", p, id)
			}
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// Describe returns a short human-readable summary, e.g.
// "taxonomy: height 3, 142 nodes (9 level-1, 118 leaves), balanced".
func (t *Tree) Describe() string {
	balance := "balanced"
	if !t.IsBalanced() {
		balance = "unbalanced"
		if t.extend {
			balance = "unbalanced (leaf-copy extended)"
		}
	}
	return fmt.Sprintf("taxonomy: height %d, %d nodes (%d level-1, %d leaves), %s",
		t.height, t.NodeCount(), len(t.levels[1]), len(t.leafAt), balance)
}

// LevelSizes returns the node count per level, indexed 1..Height.
func (t *Tree) LevelSizes() []int {
	out := make([]int, t.height+1)
	for h := 1; h <= t.height; h++ {
		out[h] = len(t.levels[h])
	}
	return out
}

// SortNodesByName returns the given node IDs sorted by their names; useful
// for deterministic human-facing output.
func (t *Tree) SortNodesByName(ids []itemset.ID) []itemset.ID {
	out := append([]itemset.ID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return t.Name(out[i]) < t.Name(out[j]) })
	return out
}
