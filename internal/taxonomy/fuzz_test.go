package taxonomy

import (
	"strings"
	"testing"
)

// FuzzParse: arbitrary input must never panic; successfully parsed trees
// must validate and round-trip whenever their names are writable.
func FuzzParse(f *testing.F) {
	f.Add("beer\tdrinks\nstout\tbeer\n")
	f.Add("# comment\nroot\n")
	f.Add("a\tb\nb\tc\nc\ta\n") // cycle
	f.Add("x\t\n")
	f.Fuzz(func(t *testing.T, input string) {
		tree, err := Parse(strings.NewReader(input), nil)
		if err != nil {
			return
		}
		if err := tree.Validate(); err != nil {
			t.Fatalf("parsed tree fails validation: %v\ninput: %q", err, input)
		}
		var sb strings.Builder
		if _, err := tree.WriteTo(&sb); err != nil {
			return // unrepresentable names
		}
		back, err := Parse(strings.NewReader(sb.String()), nil)
		if err != nil {
			t.Fatalf("re-parse of own output failed: %v\noutput: %q", err, sb.String())
		}
		if back.Height() != tree.Height() || back.NodeCount() != tree.NodeCount() {
			t.Fatalf("round trip changed shape: %s vs %s", back.Describe(), tree.Describe())
		}
	})
}

func TestWriteToRejectsUnrepresentableNames(t *testing.T) {
	for _, name := range []string{"tab\there", "new\nline", "#hash", " padded "} {
		b := NewBuilder(nil)
		b.AddRoot(name)
		tree, err := b.Build()
		if err != nil {
			t.Fatalf("Build with %q: %v", name, err)
		}
		var sb strings.Builder
		if _, err := tree.WriteTo(&sb); err == nil {
			t.Errorf("name %q serialized without error", name)
		}
	}
}
