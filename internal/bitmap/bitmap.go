// Package bitmap implements vertical bit-vector support counting: one bit
// vector per item over the distinct transactions of a level view, so that a
// candidate's support is the AND of its item vectors followed by a weighted
// population count. Where the scan counter pays one hash probe per k-subset
// of every transaction and the tid-list counter pays one comparison per list
// element, the bitmap counter pays one 64-bit word operation per 64 distinct
// transactions — the classic vertical layout of the condensed
// correlated-pattern literature, and the cheapest regime when many
// candidates face a dense level.
package bitmap

import (
	"math/bits"

	"github.com/flipper-mining/flipper/internal/itemset"
)

// Vector is a bit vector over transaction slots, packed into 64-bit words.
// Slot i lives in word i/64 at bit i%64.
type Vector []uint64

// NewVector returns an all-zero vector with capacity for n slots.
func NewVector(n int) Vector { return make(Vector, Words(n)) }

// Words returns the number of 64-bit words needed for n slots.
func Words(n int) int { return (n + 63) / 64 }

// Set sets slot i.
func (v Vector) Set(i int) { v[i>>6] |= 1 << (uint(i) & 63) }

// Get reports whether slot i is set.
func (v Vector) Get(i int) bool { return v[i>>6]&(1<<(uint(i)&63)) != 0 }

// Count returns the number of set slots.
func (v Vector) Count() int {
	total := 0
	for _, w := range v {
		total += bits.OnesCount64(w)
	}
	return total
}

// Index holds the per-item bit vectors of one materialized level view,
// together with the per-slot transaction weights (multiplicities of the
// deduplicated transactions).
type Index struct {
	n       int
	words   int
	total   int64 // sum of all weights: the empty itemset's support
	uniform bool  // every weight is 1: plain popcount suffices
	weights []int64
	items   map[itemset.ID]Vector
}

// Build constructs the index over n = len(txs) distinct transactions.
// weights[i] is the multiplicity of txs[i]; a nil weights means all ones.
// Transactions must be canonical itemsets; the same item may appear in any
// number of them.
func Build(txs []itemset.Set, weights []int64) *Index {
	ix := &Index{
		n:       len(txs),
		words:   Words(len(txs)),
		uniform: true,
		weights: weights,
		items:   make(map[itemset.ID]Vector),
	}
	if weights == nil {
		ix.total = int64(len(txs))
	}
	for _, w := range weights {
		ix.total += w
		if w != 1 {
			ix.uniform = false
		}
	}
	for i, tx := range txs {
		for _, id := range tx {
			v, ok := ix.items[id]
			if !ok {
				v = NewVector(len(txs))
				ix.items[id] = v
			}
			v.Set(i)
		}
	}
	return ix
}

// N returns the number of transaction slots.
func (ix *Index) N() int { return ix.n }

// Items returns the number of distinct items indexed.
func (ix *Index) Items() int { return len(ix.items) }

// MemoryBytes estimates the resident footprint of the item vectors.
func (ix *Index) MemoryBytes() int64 {
	return int64(len(ix.items)) * int64(ix.words) * 8
}

// ItemVector returns the bit vector of one item; ok is false when the item
// never occurs. The returned vector is owned by the index — read only.
func (ix *Index) ItemVector(id itemset.ID) (Vector, bool) {
	v, ok := ix.items[id]
	return v, ok
}

// Support returns the weighted support of the itemset — the sum of weights
// over transactions containing every item — by AND-ing the item vectors word
// by word. The second return value counts 64-bit word operations performed,
// the unit the engine's cost model and stats reason in. An itemset with an
// unindexed item has support 0; the empty itemset is vacuously contained in
// every transaction and has the total weight as its support.
func (ix *Index) Support(items itemset.Set) (sup int64, wordOps int64) {
	return ix.SupportInto(items, make([]Vector, len(items)))
}

// SupportInto is Support with a caller-provided scratch slice for the vector
// headers, so hot counting loops stay allocation-free. The scratch must have
// capacity ≥ len(items).
func (ix *Index) SupportInto(items itemset.Set, scratch []Vector) (sup int64, wordOps int64) {
	if len(items) == 0 {
		return ix.total, 0
	}
	vecs := scratch[:len(items)]
	for i, id := range items {
		v, ok := ix.items[id]
		if !ok {
			return 0, 0
		}
		vecs[i] = v
	}
	return ix.supportOf(vecs)
}

// supportOf AND-folds the vectors word-major: for each word position the
// partial AND short-circuits to the next position as soon as it hits zero,
// then surviving bits are resolved against the weight vector (or a plain
// popcount when every weight is 1). Pairs — the dominant case, since level-2
// cells of the search table hold 2-itemsets — take a specialized unrolled
// path that reports the same word-op count the general fold would.
func (ix *Index) supportOf(vecs []Vector) (sup int64, wordOps int64) {
	if len(vecs) == 2 {
		return ix.supportOf2(vecs[0], vecs[1])
	}
	for w := 0; w < ix.words; w++ {
		word := vecs[0][w]
		wordOps++
		for j := 1; j < len(vecs) && word != 0; j++ {
			word &= vecs[j][w]
			wordOps++
		}
		if word == 0 {
			continue
		}
		if ix.uniform {
			sup += int64(bits.OnesCount64(word))
			continue
		}
		base := w << 6
		for word != 0 {
			sup += ix.weights[base+bits.TrailingZeros64(word)]
			word &= word - 1
		}
	}
	return sup, wordOps
}

// supportOf2 is the pair kernel: a straight AND+popcount sweep with no
// per-word branching. The general fold would charge one op for loading a's
// word plus one for the AND whenever that word is non-zero (the short-circuit
// skips the AND on zero words), so the equivalent count is
// words + nonzero-words-of-a, accumulated branchlessly.
func (ix *Index) supportOf2(a, b Vector) (sup int64, wordOps int64) {
	a = a[:ix.words]
	b = b[:ix.words]
	nz := int64(0)
	if ix.uniform {
		for w, aw := range a {
			nz += int64((aw | -aw) >> 63)
			sup += int64(bits.OnesCount64(aw & b[w]))
		}
		return sup, int64(len(a)) + nz
	}
	for w, aw := range a {
		nz += int64((aw | -aw) >> 63)
		word := aw & b[w]
		base := w << 6
		for word != 0 {
			sup += ix.weights[base+bits.TrailingZeros64(word)]
			word &= word - 1
		}
	}
	return sup, int64(len(a)) + nz
}
