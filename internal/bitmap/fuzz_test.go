package bitmap

import (
	"testing"

	"github.com/flipper-mining/flipper/internal/itemset"
)

// decodeTxs turns arbitrary fuzz bytes into a small weighted database: a
// zero byte ends the current transaction, any other byte contributes its
// low nibble as an item ID and its high nibble (plus one) to the
// transaction's weight. The decoder is total — every byte string yields a
// valid database — so the fuzzer explores shapes, not parse errors.
func decodeTxs(data []byte) (txs []itemset.Set, weights []int64) {
	var cur []itemset.ID
	var w int64 = 1
	flush := func() {
		txs = append(txs, itemset.New(cur...))
		weights = append(weights, w)
		cur, w = nil, 1
	}
	for _, b := range data {
		if b == 0 {
			flush()
			continue
		}
		cur = append(cur, itemset.ID(b&0x0f))
		w += int64(b >> 4)
	}
	if len(cur) > 0 {
		flush()
	}
	return txs, weights
}

// FuzzSupportEquivalence is the bitmap/scan support-equivalence property as
// a fuzz target: for every database the fuzzer can encode and every 1-, 2-
// and 3-itemset over its item universe, the bitmap index must report exactly
// the brute-force scan support.
func FuzzSupportEquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 3, 0, 1, 2, 0, 0x21, 0x32})
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{0xff, 0xf1, 1, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1024 {
			return // keep each execution fast
		}
		txs, weights := decodeTxs(data)
		ix := Build(txs, weights)
		// The nibble encoding bounds the universe to 0..15; probe every
		// 1- and 2-itemset and a diagonal of 3-itemsets.
		for a := itemset.ID(0); a < 16; a++ {
			check(t, ix, txs, weights, itemset.New(a))
			for b := a + 1; b < 16; b++ {
				check(t, ix, txs, weights, itemset.New(a, b))
			}
			check(t, ix, txs, weights, itemset.New(a, (a+1)%16, (a+5)%16))
		}
	})
}

func check(t *testing.T, ix *Index, txs []itemset.Set, weights []int64, items itemset.Set) {
	t.Helper()
	got, _ := ix.Support(items)
	want := bruteSupport(txs, weights, items)
	if got != want {
		t.Fatalf("Support(%v) = %d, scan reference = %d (n=%d)", items, got, want, len(txs))
	}
}
