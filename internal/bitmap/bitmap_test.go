package bitmap

import (
	"math/rand"
	"testing"

	"github.com/flipper-mining/flipper/internal/itemset"
)

func TestVectorSetGetCount(t *testing.T) {
	v := NewVector(130) // three words
	if len(v) != 3 {
		t.Fatalf("130 slots packed into %d words, want 3", len(v))
	}
	for _, i := range []int{0, 63, 64, 129} {
		v.Set(i)
	}
	for _, c := range []struct {
		i    int
		want bool
	}{{0, true}, {1, false}, {63, true}, {64, true}, {65, false}, {128, false}, {129, true}} {
		if got := v.Get(c.i); got != c.want {
			t.Errorf("Get(%d) = %v, want %v", c.i, got, c.want)
		}
	}
	if got := v.Count(); got != 4 {
		t.Errorf("Count() = %d, want 4", got)
	}
	v.Set(63) // idempotent
	if got := v.Count(); got != 4 {
		t.Errorf("Count() after re-Set = %d, want 4", got)
	}
}

func TestWords(t *testing.T) {
	cases := []struct{ n, want int }{{0, 0}, {1, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3}}
	for _, c := range cases {
		if got := Words(c.n); got != c.want {
			t.Errorf("Words(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestIndexSupportSmall(t *testing.T) {
	txs := []itemset.Set{
		itemset.New(1, 2, 3),
		itemset.New(1, 2),
		itemset.New(2, 3),
		itemset.New(1, 3),
	}
	weights := []int64{2, 1, 1, 3}
	ix := Build(txs, weights)
	if ix.N() != 4 || ix.Items() != 3 {
		t.Fatalf("index shape: n=%d items=%d", ix.N(), ix.Items())
	}
	cases := []struct {
		items itemset.Set
		want  int64
	}{
		{itemset.New(), 7},        // empty set: total weight
		{itemset.New(1), 6},       // 2+1+3
		{itemset.New(1, 2), 3},    // 2+1
		{itemset.New(1, 2, 3), 2}, // first tx only
		{itemset.New(2, 3), 3},    // 2+1
		{itemset.New(1, 9), 0},    // unindexed item
	}
	for _, c := range cases {
		got, _ := ix.Support(c.items)
		if got != c.want {
			t.Errorf("Support(%v) = %d, want %d", c.items, got, c.want)
		}
		scratch := make([]Vector, len(c.items))
		got2, _ := ix.SupportInto(c.items, scratch)
		if got2 != c.want {
			t.Errorf("SupportInto(%v) = %d, want %d", c.items, got2, c.want)
		}
	}
}

func TestIndexUniformWeights(t *testing.T) {
	txs := []itemset.Set{itemset.New(1, 2), itemset.New(1, 2), itemset.New(1)}
	ix := Build(txs, nil) // nil weights = all ones
	if sup, _ := ix.Support(itemset.New(1, 2)); sup != 2 {
		t.Errorf("uniform support = %d, want 2", sup)
	}
	if sup, _ := ix.Support(itemset.New(1)); sup != 3 {
		t.Errorf("uniform support = %d, want 3", sup)
	}
}

func TestIndexWordOpsCounted(t *testing.T) {
	// 70 slots → 2 words; a 2-itemset costs ≤ 2 ops per word.
	txs := make([]itemset.Set, 70)
	for i := range txs {
		txs[i] = itemset.New(1, 2)
	}
	ix := Build(txs, nil)
	_, ops := ix.Support(itemset.New(1, 2))
	if ops != 4 {
		t.Errorf("wordOps = %d, want 4 (2 words × 2 vectors)", ops)
	}
	// The zero short-circuit: item 3 never occurs with item 1.
	txs = append(txs, itemset.New(3))
	ix = Build(txs, nil)
	_, ops = ix.Support(itemset.New(1, 3))
	// 71 slots → 2 words; every word zeroes after the first AND: 2×2 = 4 ops.
	if ops != 4 {
		t.Errorf("wordOps = %d, want 4", ops)
	}
}

func TestIndexMemoryBytes(t *testing.T) {
	txs := []itemset.Set{itemset.New(1, 2, 3)}
	ix := Build(txs, nil)
	if got := ix.MemoryBytes(); got != 3*8 {
		t.Errorf("MemoryBytes = %d, want 24", got)
	}
}

func TestItemVectorReadOnlyView(t *testing.T) {
	txs := []itemset.Set{itemset.New(7), itemset.New(7), itemset.New(8)}
	ix := Build(txs, nil)
	v, ok := ix.ItemVector(7)
	if !ok || v.Count() != 2 {
		t.Fatalf("ItemVector(7) = %v ok=%v", v, ok)
	}
	if _, ok := ix.ItemVector(99); ok {
		t.Error("ItemVector(99) found a vector for an absent item")
	}
}

// bruteSupport is the reference: weighted count of transactions containing
// every item.
func bruteSupport(txs []itemset.Set, weights []int64, items itemset.Set) int64 {
	var sup int64
	for i, tx := range txs {
		if items.SubsetOf(tx) {
			w := int64(1)
			if weights != nil {
				w = weights[i]
			}
			sup += w
		}
	}
	return sup
}

// TestSupportMatchesBruteForceRandom is the package-level property test:
// on randomized weighted databases, every candidate's bitmap support equals
// the brute-force subset count.
func TestSupportMatchesBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(200)
		universe := 1 + rng.Intn(12)
		txs := make([]itemset.Set, n)
		weights := make([]int64, n)
		for i := range txs {
			w := rng.Intn(universe + 1)
			ids := make([]itemset.ID, w)
			for j := range ids {
				ids[j] = itemset.ID(rng.Intn(universe))
			}
			txs[i] = itemset.New(ids...)
			weights[i] = 1 + int64(rng.Intn(5))
		}
		ix := Build(txs, weights)
		for probe := 0; probe < 30; probe++ {
			k := 1 + rng.Intn(4)
			ids := make([]itemset.ID, k)
			for j := range ids {
				ids[j] = itemset.ID(rng.Intn(universe + 2)) // may be unindexed
			}
			items := itemset.New(ids...)
			got, _ := ix.Support(items)
			want := bruteSupport(txs, weights, items)
			if got != want {
				t.Fatalf("trial %d: Support(%v) = %d, brute force = %d", trial, items, got, want)
			}
		}
	}
}

// TestPairKernelMatchesGeneralFold pins the specialized 2-vector kernel to
// the general word-major fold: same support and — because stats are part of
// the golden wire format — the exact same word-op count, across uniform and
// weighted indexes of varying density.
func TestPairKernelMatchesGeneralFold(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		var weights []int64
		if trial%2 == 1 {
			weights = make([]int64, n)
			for i := range weights {
				weights[i] = 1 + int64(rng.Intn(4))
			}
		}
		txs := make([]itemset.Set, n)
		density := 1 + rng.Intn(4)
		for i := range txs {
			var s []itemset.ID
			for id := itemset.ID(1); id <= 3; id++ {
				if rng.Intn(4) < density {
					s = append(s, id)
				}
			}
			txs[i] = s
		}
		ix := Build(txs, weights)
		a, aok := ix.ItemVector(1)
		b, bok := ix.ItemVector(2)
		if !aok || !bok {
			continue
		}
		// Reference: the general fold, forced by padding with an all-ones
		// vector that changes neither the AND result nor a-word zeroness.
		ones := make(Vector, ix.words)
		for i := range ones {
			ones[i] = ^uint64(0)
		}
		gotSup, gotOps := ix.supportOf2(a, b)
		refSup, refOps := ix.supportOf([]Vector{a, b, ones, ones})
		// The 4-way fold charges extra ops for the two padding vectors:
		// one AND per padding vector per word whose a&b partial survives.
		pad := int64(0)
		for w := 0; w < ix.words; w++ {
			if a[w]&b[w] != 0 {
				pad += 2
			}
		}
		refOps -= pad
		if gotSup != refSup || gotOps != refOps {
			t.Fatalf("trial %d (n=%d uniform=%v): pair kernel (sup=%d ops=%d) vs general fold (sup=%d ops=%d)",
				trial, n, weights == nil, gotSup, gotOps, refSup, refOps)
		}
	}
}
