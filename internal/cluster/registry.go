package cluster

import (
	"sort"
	"sync"
	"time"
)

// State is a registered worker's health as the coordinator sees it.
type State int

const (
	// StateAlive: recent heartbeat, no outstanding dispatch failures.
	StateAlive State = iota
	// StateSuspect: heartbeat overdue, or recent dispatch failures. Suspect
	// workers are still dispatched to — last, after every alive worker.
	StateSuspect
	// StateDead: heartbeat long overdue or repeated dispatch failures. Dead
	// workers receive no dispatches until heartbeats bring them back.
	StateDead
)

func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	}
	return "unknown"
}

// Dispatch-failure thresholds. Health is driven by two independent signals:
// heartbeat age (is the worker up?) and dispatch failures (can it actually
// serve?). One failed dispatch makes a worker suspect — it keeps serving,
// deprioritized — and failDead consecutive failures make it dead regardless
// of heartbeats, because a worker that heartbeats but cannot answer counts
// is exactly the one that must stop receiving shards. Each accepted
// heartbeat decays one failure, so a worker that recovers (and a network
// whose fault burst passes) walks back to alive instead of being banned
// forever; a successful dispatch clears the count immediately.
const (
	failSuspect = 1
	failDead    = 3
)

// WorkerInfo is a point-in-time snapshot of one registered worker.
type WorkerInfo struct {
	ID       string
	Addr     string
	State    State
	LastSeen time.Time
	Failures int
	Datasets []Fingerprint
}

// serves reports whether the worker advertises a dataset build matching fp.
func (w *WorkerInfo) serves(fp Fingerprint) bool {
	for _, d := range w.Datasets {
		if d == fp {
			return true
		}
	}
	return false
}

// Registry is the coordinator's worker table: heartbeat-driven liveness
// plus dispatch-failure accounting, with health states computed lazily from
// both (no background reaper goroutine — a worker's state is a pure
// function of the clock, which also makes it trivially testable with an
// injected clock). Safe for concurrent use.
type Registry struct {
	mu           sync.Mutex
	workers      map[string]*workerEntry
	suspectAfter time.Duration
	deadAfter    time.Duration
	now          func() time.Time
}

type workerEntry struct {
	addr     string
	lastSeen time.Time
	failures int
	datasets []Fingerprint
}

// NewRegistry builds a registry: a worker whose last heartbeat is older
// than suspectAfter is suspect, older than deadAfter dead. now is the clock
// (nil = time.Now), injectable so state-transition tests run on a virtual
// timeline.
func NewRegistry(suspectAfter, deadAfter time.Duration, now func() time.Time) *Registry {
	if suspectAfter <= 0 {
		suspectAfter = 3 * time.Second
	}
	if deadAfter <= suspectAfter {
		deadAfter = 3 * suspectAfter
	}
	if now == nil {
		now = time.Now
	}
	return &Registry{
		workers:      make(map[string]*workerEntry),
		suspectAfter: suspectAfter,
		deadAfter:    deadAfter,
		now:          now,
	}
}

// Heartbeat records a worker's push: registers unknown workers, refreshes
// lastSeen and the advertised datasets, and decays one dispatch failure.
func (r *Registry) Heartbeat(hb Heartbeat) {
	if hb.Worker == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.workers[hb.Worker]
	if w == nil {
		w = &workerEntry{}
		r.workers[hb.Worker] = w
	}
	w.addr = hb.Addr
	w.lastSeen = r.now()
	w.datasets = hb.Datasets
	if w.failures > 0 {
		w.failures--
	}
}

// Remove deregisters a worker (operator action or test harness); unknown
// IDs are a no-op.
func (r *Registry) Remove(id string) {
	r.mu.Lock()
	delete(r.workers, id)
	r.mu.Unlock()
}

// RecordFailure counts one failed dispatch against a worker.
func (r *Registry) RecordFailure(id string) {
	r.mu.Lock()
	if w := r.workers[id]; w != nil && w.failures < failDead {
		w.failures++
	}
	r.mu.Unlock()
}

// RecordSuccess clears a worker's dispatch-failure count.
func (r *Registry) RecordSuccess(id string) {
	r.mu.Lock()
	if w := r.workers[id]; w != nil {
		w.failures = 0
	}
	r.mu.Unlock()
}

func (r *Registry) stateLocked(w *workerEntry, now time.Time) State {
	age := now.Sub(w.lastSeen)
	switch {
	case age >= r.deadAfter || w.failures >= failDead:
		return StateDead
	case age >= r.suspectAfter || w.failures >= failSuspect:
		return StateSuspect
	}
	return StateAlive
}

func (r *Registry) infoLocked(id string, w *workerEntry, now time.Time) WorkerInfo {
	return WorkerInfo{
		ID:       id,
		Addr:     w.addr,
		State:    r.stateLocked(w, now),
		LastSeen: w.lastSeen,
		Failures: w.failures,
		Datasets: w.datasets,
	}
}

// StateOf reports a worker's current health; unknown workers are dead.
func (r *Registry) StateOf(id string) State {
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.workers[id]
	if w == nil {
		return StateDead
	}
	return r.stateLocked(w, r.now())
}

// Snapshot lists every registered worker, sorted by ID.
func (r *Registry) Snapshot() []WorkerInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	out := make([]WorkerInfo, 0, len(r.workers))
	for id, w := range r.workers {
		out = append(out, r.infoLocked(id, w, now))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Serving lists the non-dead workers advertising a dataset build matching
// fp, alive workers first, each group sorted by ID — the deterministic
// order shard-affinity scheduling indexes into.
func (r *Registry) Serving(fp Fingerprint) []WorkerInfo {
	all := r.Snapshot()
	out := make([]WorkerInfo, 0, len(all))
	for _, st := range []State{StateAlive, StateSuspect} {
		for _, w := range all {
			if w.State == st && w.serves(fp) {
				out = append(out, w)
			}
		}
	}
	return out
}

// Reachable counts the non-dead workers — the readiness signal load
// balancers drain on.
func (r *Registry) Reachable() int {
	n := 0
	for _, w := range r.Snapshot() {
		if w.State != StateDead {
			n++
		}
	}
	return n
}
