package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/flipper-mining/flipper/internal/core"
	"github.com/flipper-mining/flipper/internal/itemset"
)

// Options tune a coordinator; the zero value selects the defaults.
type Options struct {
	// SuspectAfter / DeadAfter drive heartbeat health (see Registry;
	// defaults 3s / 9s).
	SuspectAfter time.Duration
	DeadAfter    time.Duration

	// RetryAttempts is how many workers are tried per shard before the
	// degraded local fallback (default 3). Each attempt rotates to the next
	// worker in affinity order and sleeps a full-jitter backoff first.
	RetryAttempts int
	// RetryBase / RetryCap shape the backoff between attempts: the sleep is
	// uniform in [0, cap_i] with cap_i doubling from RetryBase (default
	// 25ms) up to RetryCap (default 1s) — full jitter, so a burst of shards
	// retrying after one worker's death doesn't re-arrive in lockstep.
	RetryBase time.Duration
	RetryCap  time.Duration

	// HedgeQuantile picks the straggler deadline: a dispatch still
	// unanswered after the q-quantile of recently observed count latencies
	// is hedged — duplicated to the next worker, first result wins (default
	// 0.9; ≥ 1 disables hedging). HedgeMin floors the deadline (default
	// 25ms) so cold windows and microsecond-fast local tests don't hedge
	// everything. HedgeAfter, when set, overrides the quantile with a fixed
	// deadline — the deterministic knob tests use.
	HedgeQuantile float64
	HedgeMin      time.Duration
	HedgeAfter    time.Duration

	// Seed seeds the backoff-jitter source (default 1; any value works —
	// jitter needs spread, not secrecy — but a fixed seed keeps fault-
	// injection tests replayable).
	Seed int64

	// HTTPClient overrides the dispatch client (default: http.Client with a
	// 30s timeout). Fault-injection tests wrap its Transport.
	HTTPClient *http.Client

	// Now overrides the clock (default time.Now) for registry and latency
	// bookkeeping.
	Now func() time.Time

	// TraceWriter, when set, receives one JSON line per dispatch event —
	// the per-shard dispatch trace CI uploads when the chaos suite fails.
	TraceWriter io.Writer
}

func (o Options) withDefaults() Options {
	if o.SuspectAfter <= 0 {
		o.SuspectAfter = 3 * time.Second
	}
	if o.DeadAfter <= o.SuspectAfter {
		o.DeadAfter = 3 * o.SuspectAfter
	}
	if o.RetryAttempts <= 0 {
		o.RetryAttempts = 3
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 25 * time.Millisecond
	}
	if o.RetryCap < o.RetryBase {
		o.RetryCap = time.Second
	}
	if o.HedgeQuantile <= 0 {
		o.HedgeQuantile = 0.9
	}
	if o.HedgeMin <= 0 {
		o.HedgeMin = 25 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{Timeout: 30 * time.Second}
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Coordinator owns the distributed side of a mining job: the worker
// registry, per-shard dispatch with retries and hedging, first-result-wins
// merging, and the degraded local fallback. It mines through
// core.MineRemote — the search runs here, only support counting fans out —
// so a distributed result is byte-identical to a local one (the partial
// vectors sum commutatively), which the cluster equivalence suite pins
// under injected network faults.
type Coordinator struct {
	cat  *Catalog
	reg  *Registry
	opts Options
	mux  *http.ServeMux

	lat latencyWindow

	rngMu sync.Mutex
	rng   *rand.Rand

	traceMu sync.Mutex
}

// New builds a coordinator over the catalog.
func New(cat *Catalog, opts Options) *Coordinator {
	opts = opts.withDefaults()
	co := &Coordinator{
		cat:  cat,
		reg:  NewRegistry(opts.SuspectAfter, opts.DeadAfter, opts.Now),
		opts: opts,
		rng:  rand.New(rand.NewSource(opts.Seed)),
	}
	co.mux = http.NewServeMux()
	co.mux.HandleFunc("POST "+PathHeartbeat, co.handleHeartbeat)
	co.mux.HandleFunc("GET /cluster/workers", co.handleWorkers)
	return co
}

// Registry exposes the worker registry (readiness probes, tests).
func (co *Coordinator) Registry() *Registry { return co.reg }

// Handler returns the coordinator's HTTP handler (PathHeartbeat,
// /cluster/workers).
func (co *Coordinator) Handler() http.Handler { return co.mux }

func (co *Coordinator) handleHeartbeat(rw http.ResponseWriter, r *http.Request) {
	var hb Heartbeat
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&hb); err != nil {
		writeError(rw, http.StatusBadRequest, "bad heartbeat: %v", err)
		return
	}
	if hb.Worker == "" || hb.Addr == "" {
		writeError(rw, http.StatusBadRequest, "heartbeat needs worker and addr")
		return
	}
	co.reg.Heartbeat(hb)
	writeJSON(rw, http.StatusOK, map[string]string{"status": "ok"})
}

func (co *Coordinator) handleWorkers(rw http.ResponseWriter, _ *http.Request) {
	type workerView struct {
		ID       string        `json:"id"`
		Addr     string        `json:"addr"`
		State    string        `json:"state"`
		Failures int           `json:"failures"`
		Datasets []Fingerprint `json:"datasets"`
	}
	snap := co.reg.Snapshot()
	out := make([]workerView, 0, len(snap))
	for _, w := range snap {
		out = append(out, workerView{
			ID: w.ID, Addr: w.Addr, State: w.State.String(),
			Failures: w.Failures, Datasets: w.Datasets,
		})
	}
	writeJSON(rw, http.StatusOK, map[string]any{"workers": out})
}

// Eligible reports whether a job over the dataset would actually be
// distributed: at least one non-dead worker advertises a matching build.
// Callers (the service queue) mine locally otherwise — a coordinator with
// no workers is just a single-node flipperd, not a degraded cluster.
func (co *Coordinator) Eligible(dataset string) bool {
	ent, ok := co.cat.Get(dataset)
	if !ok {
		return false
	}
	return len(co.reg.Serving(ent.Fp)) > 0
}

// Reachable counts non-dead workers (the readiness signal).
func (co *Coordinator) Reachable() int { return co.reg.Reachable() }

// Mine runs one distributed mining job: the Flipper search executes
// locally, each cell's support counting is scattered shard-by-shard over
// the registry's workers and gathered by commutative summation. Shards
// whose every worker is down are counted locally and the result carries
// Stats.Degraded = true — capacity loss degrades latency, never
// availability or correctness.
func (co *Coordinator) Mine(ctx context.Context, dataset string, cfg core.Config) (*core.Result, error) {
	ent, ok := co.cat.Get(dataset)
	if !ok {
		return nil, fmt.Errorf("cluster: unknown dataset %q", dataset)
	}
	g := &gather{
		co:     co,
		ent:    ent,
		cfg:    cfg,
		key:    cfg.CanonicalKey(),
		shards: ent.Engine.ResolveShards(cfg),
	}
	res, err := ent.Engine.MineRemote(ctx, cfg, g)
	if err != nil {
		return nil, err
	}
	res.Stats.Degraded = g.degraded.Load()
	return res, nil
}

// gather is the CellCounter of one distributed run: scatter the shards,
// gather the partial vectors, sum. Exactly one vector per shard enters the
// sum — countShard returns a single winner however many retries or hedges
// ran — so duplicated dispatches can never double-count.
type gather struct {
	co       *Coordinator
	ent      CatalogEntry
	cfg      core.Config
	key      string
	shards   int
	degraded atomic.Bool
}

// CountCell implements core.CellCounter.
func (g *gather) CountCell(ctx context.Context, h, k int, cands []itemset.Set) ([]int64, error) {
	if len(cands) == 0 {
		return nil, nil
	}
	req := CountRequest{
		Fingerprint: g.ent.Fp,
		ConfigKey:   g.key,
		Config:      g.cfg,
		Level:       h,
		K:           k,
		Candidates:  cands,
	}
	parts := make([][]int64, g.shards)
	errs := make([]error, g.shards)
	var wg sync.WaitGroup
	for s := 0; s < g.shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			r := req
			r.Shard = s
			parts[s], errs[s] = g.countShard(ctx, r, len(cands))
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	total := make([]int64, len(cands))
	for _, part := range parts {
		for i, v := range part {
			total[i] += v
		}
	}
	return total, nil
}

// countShard resolves one shard's partial vector: affinity-ordered worker
// attempts with jittered backoff and straggler hedging, then the degraded
// local fallback. The worker list is re-read per attempt, so a worker the
// registry declared dead mid-job (heartbeat loss or failure threshold) is
// reassigned away from automatically.
func (g *gather) countShard(ctx context.Context, req CountRequest, want int) ([]int64, error) {
	co := g.co
	backoff := co.opts.RetryBase
	for attempt := 0; attempt < co.opts.RetryAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ws := co.reg.Serving(g.ent.Fp)
		if len(ws) == 0 {
			break // every worker is dead: degrade now, retrying helps no one
		}
		if attempt > 0 {
			co.sleepJittered(ctx, backoff)
			if backoff *= 2; backoff > co.opts.RetryCap {
				backoff = co.opts.RetryCap
			}
			// The sleep may outlive the workers; re-read the registry.
			if ws = co.reg.Serving(g.ent.Fp); len(ws) == 0 {
				break
			}
		}
		// Shard affinity: shard s prefers worker s mod W, so a steady
		// cluster pins each shard to one worker (warm per-shard state on the
		// worker: the engine's shard views and indexes stay hot). Attempts
		// rotate from there.
		primary := (req.Shard + attempt) % len(ws)
		sup, err := co.dispatchHedged(ctx, req, ws, primary, attempt, want)
		if err == nil {
			return sup, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	// Degraded fallback: every worker for this shard is gone or failing;
	// the coordinator counts the shard itself. Exact same partial sums, so
	// correctness is untouched; Stats.Degraded tells operators capacity is.
	g.degraded.Store(true)
	co.trace(traceEvent{
		Event: "degraded", Dataset: g.ent.Fp.Dataset,
		Shard: req.Shard, Level: req.Level, K: req.K,
	})
	return g.ent.Engine.ShardSupports(ctx, g.cfg, req.Level, req.Candidates, req.Shard)
}

// dispatchHedged sends one attempt's request to the primary worker and, if
// the response is still outstanding after the hedge deadline, duplicates it
// to the next worker. The first successful response wins and the loser is
// cancelled; exactly one vector is returned. An error is returned only when
// every launched dispatch failed.
func (co *Coordinator) dispatchHedged(ctx context.Context, req CountRequest, ws []WorkerInfo, primary, attempt, want int) ([]int64, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type outcome struct {
		sup []int64
		err error
	}
	ch := make(chan outcome, 2)
	launch := func(w WorkerInfo, hedge bool) {
		start := co.opts.Now()
		sup, err := co.post(cctx, w, body, want)
		lat := co.opts.Now().Sub(start)
		ev := traceEvent{
			Event: "dispatch", Dataset: req.Fingerprint.Dataset,
			Shard: req.Shard, Level: req.Level, K: req.K,
			Worker: w.ID, Attempt: attempt, Hedge: hedge,
			LatencyMS: float64(lat) / float64(time.Millisecond),
		}
		if err != nil {
			ev.Err = err.Error()
			// A hedge loser cancelled because the other copy won is not a
			// worker failure; don't poison its health.
			if cctx.Err() == nil || ctx.Err() != nil {
				co.reg.RecordFailure(w.ID)
			}
		} else {
			co.reg.RecordSuccess(w.ID)
			co.lat.add(lat)
		}
		co.trace(ev)
		ch <- outcome{sup, err}
	}

	go launch(ws[primary], false)
	launched, failed := 1, 0
	var hedgeTimer *time.Timer
	var hedgeC <-chan time.Time
	if len(ws) > 1 && co.hedgingEnabled() {
		hedgeTimer = time.NewTimer(co.hedgeDelay())
		hedgeC = hedgeTimer.C
		defer hedgeTimer.Stop()
	}
	var firstErr error
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-hedgeC:
			hedgeC = nil
			hedge := ws[(primary+1)%len(ws)]
			co.trace(traceEvent{
				Event: "hedge", Dataset: req.Fingerprint.Dataset,
				Shard: req.Shard, Level: req.Level, K: req.K,
				Worker: hedge.ID, Attempt: attempt,
			})
			go launch(hedge, true)
			launched++
		case out := <-ch:
			if out.err == nil {
				// First result wins; cancel (via the deferred cancel) any
				// still-outstanding duplicate and discard its vector.
				return out.sup, nil
			}
			if firstErr == nil {
				firstErr = out.err
			}
			// Every launched dispatch failed: report and let the retry loop
			// take over. If the hedge timer is still pending, launching the
			// hedge now would just duplicate that retry.
			if failed++; failed == launched {
				return nil, firstErr
			}
		}
	}
}

// post performs one count request against one worker.
func (co *Coordinator) post(ctx context.Context, w WorkerInfo, body []byte, want int) ([]int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Addr+PathCount, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := co.opts.HTTPClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: worker %s: %w", w.ID, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("cluster: worker %s: %s: %s", w.ID, resp.Status, bytes.TrimSpace(msg))
	}
	var cr CountResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		return nil, fmt.Errorf("cluster: worker %s: bad response: %w", w.ID, err)
	}
	if len(cr.Supports) != want {
		return nil, fmt.Errorf("cluster: worker %s: %d supports for %d candidates", w.ID, len(cr.Supports), want)
	}
	return cr.Supports, nil
}

func (co *Coordinator) hedgingEnabled() bool {
	return co.opts.HedgeAfter > 0 || co.opts.HedgeQuantile < 1
}

// hedgeDelay is the straggler deadline: the configured fixed override, or
// the latency window's HedgeQuantile floored at HedgeMin.
func (co *Coordinator) hedgeDelay() time.Duration {
	if co.opts.HedgeAfter > 0 {
		return co.opts.HedgeAfter
	}
	d := co.lat.quantile(co.opts.HedgeQuantile)
	if d < co.opts.HedgeMin {
		d = co.opts.HedgeMin
	}
	return d
}

// sleepJittered sleeps a uniformly random duration in [0, cap] — full
// jitter — or until ctx is done.
func (co *Coordinator) sleepJittered(ctx context.Context, capDur time.Duration) {
	if capDur <= 0 {
		return
	}
	co.rngMu.Lock()
	d := time.Duration(co.rng.Int63n(int64(capDur) + 1))
	co.rngMu.Unlock()
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// traceEvent is one line of the coordinator's JSONL dispatch trace.
type traceEvent struct {
	TS        string  `json:"ts"`
	Event     string  `json:"event"` // dispatch | hedge | degraded
	Dataset   string  `json:"dataset"`
	Shard     int     `json:"shard"`
	Level     int     `json:"level"`
	K         int     `json:"k"`
	Worker    string  `json:"worker,omitempty"`
	Attempt   int     `json:"attempt"`
	Hedge     bool    `json:"hedge,omitempty"`
	Err       string  `json:"err,omitempty"`
	LatencyMS float64 `json:"latency_ms,omitempty"`
}

func (co *Coordinator) trace(ev traceEvent) {
	if co.opts.TraceWriter == nil {
		return
	}
	ev.TS = co.opts.Now().UTC().Format(time.RFC3339Nano)
	line, err := json.Marshal(ev)
	if err != nil {
		return
	}
	co.traceMu.Lock()
	co.opts.TraceWriter.Write(append(line, '\n'))
	co.traceMu.Unlock()
}

// latencyWindow is a fixed-size ring of recent successful dispatch
// latencies, the sample the hedge deadline's quantile is computed over.
type latencyWindow struct {
	mu      sync.Mutex
	samples [128]time.Duration
	n       int // total added; min(n, len) are valid
}

func (lw *latencyWindow) add(d time.Duration) {
	lw.mu.Lock()
	lw.samples[lw.n%len(lw.samples)] = d
	lw.n++
	lw.mu.Unlock()
}

// quantile returns the q-quantile of the window, or 0 with no samples.
func (lw *latencyWindow) quantile(q float64) time.Duration {
	lw.mu.Lock()
	n := lw.n
	if n > len(lw.samples) {
		n = len(lw.samples)
	}
	buf := make([]time.Duration, n)
	copy(buf, lw.samples[:n])
	lw.mu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	idx := int(q * float64(n))
	if idx >= n {
		idx = n - 1
	}
	if idx < 0 {
		idx = 0
	}
	return buf[idx]
}
