package cluster

import (
	"testing"
	"time"
)

// fakeClock is the injected registry timeline: tests advance it explicitly,
// so heartbeat-age transitions are exact rather than sleep-raced.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testFp(name string) Fingerprint {
	return Fingerprint{Dataset: name, Transactions: 100, Height: 3, Nodes: 42}
}

func hb(worker, addr string, fps ...Fingerprint) Heartbeat {
	return Heartbeat{Worker: worker, Addr: addr, Datasets: fps}
}

// TestRegistryHeartbeatFlap walks one worker through the full health cycle
// on a virtual clock: alive → suspect (heartbeat overdue) → alive (flap
// recovers) → suspect → dead (heartbeat long overdue) → alive again on the
// next heartbeat.
func TestRegistryHeartbeatFlap(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r := NewRegistry(3*time.Second, 9*time.Second, clk.now)
	fp := testFp("g")

	r.Heartbeat(hb("w1", "http://a", fp))
	if got := r.StateOf("w1"); got != StateAlive {
		t.Fatalf("fresh heartbeat: state %v, want alive", got)
	}

	clk.advance(4 * time.Second)
	if got := r.StateOf("w1"); got != StateSuspect {
		t.Fatalf("heartbeat 4s old: state %v, want suspect", got)
	}
	// Suspect workers still serve — deprioritized, not excluded.
	if ws := r.Serving(fp); len(ws) != 1 || ws[0].State != StateSuspect {
		t.Fatalf("suspect worker not serving: %+v", ws)
	}

	// The flap recovers: one heartbeat restores alive immediately.
	r.Heartbeat(hb("w1", "http://a", fp))
	if got := r.StateOf("w1"); got != StateAlive {
		t.Fatalf("after recovery heartbeat: state %v, want alive", got)
	}

	clk.advance(4 * time.Second)
	if got := r.StateOf("w1"); got != StateSuspect {
		t.Fatalf("second flap: state %v, want suspect", got)
	}
	clk.advance(6 * time.Second) // 10s since last heartbeat ≥ deadAfter
	if got := r.StateOf("w1"); got != StateDead {
		t.Fatalf("heartbeat 10s old: state %v, want dead", got)
	}
	if ws := r.Serving(fp); len(ws) != 0 {
		t.Fatalf("dead worker still serving: %+v", ws)
	}
	if r.Reachable() != 0 {
		t.Fatalf("dead worker counted reachable")
	}

	// Death by heartbeat age is not a ban: the worker comes back.
	r.Heartbeat(hb("w1", "http://a", fp))
	if got := r.StateOf("w1"); got != StateAlive {
		t.Fatalf("post-death heartbeat: state %v, want alive", got)
	}
}

// TestRegistryDispatchFailures pins the failure-counter half of health:
// one failure → suspect, failDead failures → dead even with fresh
// heartbeats, success resets, heartbeats decay one failure each.
func TestRegistryDispatchFailures(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r := NewRegistry(3*time.Second, 9*time.Second, clk.now)
	fp := testFp("g")
	r.Heartbeat(hb("w1", "http://a", fp))

	r.RecordFailure("w1")
	if got := r.StateOf("w1"); got != StateSuspect {
		t.Fatalf("1 failure: state %v, want suspect", got)
	}
	r.RecordFailure("w1")
	r.RecordFailure("w1")
	if got := r.StateOf("w1"); got != StateDead {
		t.Fatalf("%d failures: state %v, want dead", failDead, got)
	}

	// Heartbeats keep coming (the worker is up but can't serve counts) —
	// each decays one failure, walking dead → suspect → alive.
	clk.advance(time.Second)
	r.Heartbeat(hb("w1", "http://a", fp))
	if got := r.StateOf("w1"); got != StateSuspect {
		t.Fatalf("after one decay heartbeat: state %v, want suspect", got)
	}
	r.Heartbeat(hb("w1", "http://a", fp))
	r.Heartbeat(hb("w1", "http://a", fp))
	if got := r.StateOf("w1"); got != StateAlive {
		t.Fatalf("after full decay: state %v, want alive", got)
	}

	// A successful dispatch clears everything at once.
	r.RecordFailure("w1")
	r.RecordFailure("w1")
	r.RecordSuccess("w1")
	if got := r.StateOf("w1"); got != StateAlive {
		t.Fatalf("after success: state %v, want alive", got)
	}

	if got := r.StateOf("unknown"); got != StateDead {
		t.Fatalf("unknown worker: state %v, want dead", got)
	}
}

// TestRegistryServingOrder pins the deterministic affinity order: alive
// workers first, then suspect, each sorted by ID, and only workers whose
// advertised fingerprint matches exactly.
func TestRegistryServingOrder(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r := NewRegistry(3*time.Second, 9*time.Second, clk.now)
	fp := testFp("g")
	other := testFp("h")
	stale := fp
	stale.Transactions++ // same name, different build

	r.Heartbeat(hb("w3", "http://c", fp))
	r.Heartbeat(hb("w1", "http://a", fp))
	r.Heartbeat(hb("w4", "http://d", other)) // different dataset
	r.Heartbeat(hb("w5", "http://e", stale)) // mismatched build of the same dataset
	r.RecordFailure("w3")                    // w3 drops to suspect

	clk.advance(time.Second)
	r.Heartbeat(hb("w2", "http://b", fp))

	ws := r.Serving(fp)
	ids := make([]string, len(ws))
	for i, w := range ws {
		ids[i] = w.ID
	}
	want := []string{"w1", "w2", "w3"} // alive w1,w2 (ID order), then suspect w3
	if len(ids) != len(want) {
		t.Fatalf("serving %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("serving %v, want %v", ids, want)
		}
	}
	if r.Reachable() != 5 {
		t.Fatalf("reachable %d, want 5", r.Reachable())
	}
	r.Remove("w5")
	if r.Reachable() != 4 {
		t.Fatalf("after remove: reachable %d, want 4", r.Reachable())
	}
}
