package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/flipper-mining/flipper/internal/core"
	"github.com/flipper-mining/flipper/internal/faultinject"
	"github.com/flipper-mining/flipper/internal/itemset"
	"github.com/flipper-mining/flipper/internal/measure"
	"github.com/flipper-mining/flipper/internal/taxonomy"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// testDataset builds a random balanced taxonomy and correlated transaction
// mix — the same generator shape core's equivalence suite uses, so flips
// actually occur.
func testDataset(rng *rand.Rand) (*txdb.DB, *taxonomy.Tree) {
	roots := 2 + rng.Intn(3)
	fanout := 2 + rng.Intn(2)
	b := taxonomy.NewBuilder(nil)
	var leaves []string
	for r := 0; r < roots; r++ {
		root := fmt.Sprintf("c%d", r)
		for m := 0; m < fanout; m++ {
			mid := fmt.Sprintf("c%d.%d", r, m)
			for l := 0; l < fanout; l++ {
				leaf := fmt.Sprintf("c%d.%d.%d", r, m, l)
				if err := b.AddPath(root, mid, leaf); err != nil {
					panic(err)
				}
				leaves = append(leaves, leaf)
			}
		}
	}
	tree, err := b.Build()
	if err != nil {
		panic(err)
	}
	db := txdb.New(tree.Dict())
	n := 60 + rng.Intn(120)
	type template struct{ a, b string }
	var templates []template
	for i := 0; i < 3+rng.Intn(4); i++ {
		templates = append(templates, template{
			a: leaves[rng.Intn(len(leaves))],
			b: leaves[rng.Intn(len(leaves))],
		})
	}
	for i := 0; i < n; i++ {
		var names []string
		if rng.Float64() < 0.65 {
			tpl := templates[rng.Intn(len(templates))]
			names = append(names, tpl.a)
			if rng.Float64() < 0.8 {
				names = append(names, tpl.b)
			}
		}
		w := 1 + rng.Intn(4)
		for j := 0; j < w; j++ {
			names = append(names, leaves[rng.Intn(len(leaves))])
		}
		db.AddNames(names...)
	}
	return db, tree
}

// patternsJSON renders a result's patterns as canonical bytes — the
// byte-identity surface of the equivalence suite. Stats are excluded on
// purpose: distributed execution legitimately reorders counting work, so
// timing and backend counters differ, but the patterns cannot.
func patternsJSON(t *testing.T, res *core.Result, tree *taxonomy.Tree) string {
	t.Helper()
	rj := res.JSON(tree)
	var sb strings.Builder
	fmt.Fprintf(&sb, "count=%d\n", rj.PatternCount)
	for _, p := range rj.Patterns {
		line, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		sb.Write(line)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// testCluster is an in-process multi-node cluster: N worker HTTP servers
// over their own engines, one coordinator over its own engine, all sharing
// the same in-memory db + tree (which LoadDir determinism guarantees for
// real multi-process deployments).
type testCluster struct {
	co      *Coordinator
	fp      Fingerprint
	workers []*httptest.Server
	ids     []string
	delay   []*atomic.Int64 // per-worker artificial handler delay, ns
	failAt  []*atomic.Bool  // per-worker hard-failure switch
}

// traceWriter returns the CI artifact sink: a JSONL file under
// CLUSTER_TRACE_DIR when set (the cluster-chaos job uploads the directory
// on failure), nil otherwise.
func traceWriter(t *testing.T) io.Writer {
	dir := os.Getenv("CLUSTER_TRACE_DIR")
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("trace dir: %v", err)
		return nil
	}
	name := strings.NewReplacer("/", "_", " ", "_").Replace(t.Name()) + ".jsonl"
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		t.Logf("trace file: %v", err)
		return nil
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// newTestCluster assembles n workers and a coordinator over the dataset.
// Workers register through real heartbeat HTTP pushes against the
// coordinator's handler, not by poking the registry.
func newTestCluster(t *testing.T, n int, db *txdb.DB, tree *taxonomy.Tree, opts Options) *testCluster {
	t.Helper()
	fp := NewFingerprint("ds", db, tree)
	tc := &testCluster{fp: fp}
	if opts.TraceWriter == nil {
		opts.TraceWriter = traceWriter(t)
	}
	coordCat := NewCatalog()
	coordCat.Add("ds", core.NewEngine(db, tree), tree, fp)
	tc.co = New(coordCat, opts)
	coordSrv := httptest.NewServer(tc.co.Handler())
	t.Cleanup(coordSrv.Close)

	for i := 0; i < n; i++ {
		cat := NewCatalog()
		cat.Add("ds", core.NewEngine(db, tree), tree, fp)
		id := fmt.Sprintf("w%d", i)
		w := NewWorker(id, cat)
		delay := &atomic.Int64{}
		failing := &atomic.Bool{}
		handler := http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			if d := delay.Load(); d > 0 {
				select {
				case <-r.Context().Done():
					return
				case <-time.After(time.Duration(d)):
				}
			}
			if failing.Load() {
				http.Error(rw, `{"error":"worker killed"}`, http.StatusInternalServerError)
				return
			}
			w.Handler().ServeHTTP(rw, r)
		})
		srv := httptest.NewServer(handler)
		t.Cleanup(srv.Close)
		if err := w.SendHeartbeat(context.Background(), coordSrv.URL, srv.URL, nil); err != nil {
			t.Fatalf("heartbeat: %v", err)
		}
		tc.workers = append(tc.workers, srv)
		tc.ids = append(tc.ids, id)
		tc.delay = append(tc.delay, delay)
		tc.failAt = append(tc.failAt, failing)
	}
	return tc
}

// reheartbeat refreshes every non-killed worker's registration (long
// matrices on slow CI machines can outlast SuspectAfter between cases, and
// heartbeats decay dispatch-failure counts).
func (tc *testCluster) reheartbeat() {
	for i, srv := range tc.workers {
		if !tc.failAt[i].Load() {
			tc.co.Registry().Heartbeat(Heartbeat{
				Worker:   tc.ids[i],
				Addr:     srv.URL,
				Datasets: []Fingerprint{tc.fp},
			})
		}
	}
}

// fastOpts keeps retry/hedge timing test-sized.
func fastOpts() Options {
	return Options{
		RetryAttempts: 4,
		RetryBase:     time.Millisecond,
		RetryCap:      5 * time.Millisecond,
		HedgeAfter:    15 * time.Millisecond,
		Seed:          7,
	}
}

func testConfig(strategy core.CountStrategy, materialize bool, shards int) core.Config {
	return core.Config{
		Measure:     measure.Kulczynski,
		Gamma:       0.3,
		Epsilon:     0.1,
		MinSupAbs:   []int64{2, 1, 1},
		Pruning:     core.Full,
		Strategy:    strategy,
		Materialize: materialize,
		Shards:      shards,
	}
}

// TestClusterEquivalence is the acceptance criterion of the PR: a 3-worker
// in-process cluster with injected network faults — drops, stalls, 5xx
// bursts, truncated bodies — produces patterns byte-identical to
// single-process core.Mine, across all four counting strategies × shards
// 2/7 × fault schedules. Workers that die under the fault load push the
// coordinator through reassignment and, at the limit, the degraded local
// fallback — the bytes must not move either way.
func TestClusterEquivalence(t *testing.T) {
	type faultCase struct {
		name string
		plan faultinject.HTTPPlan
	}
	faults := []faultCase{
		{"clean", faultinject.HTTPPlan{}},
		{"drops", faultinject.HTTPPlan{Seed: 101, DropEveryN: 4, MaxFaults: 40}},
		{"5xx-burst", faultinject.HTTPPlan{Seed: 202, Error5xxEveryN: 3, MaxFaults: 40}},
		{"truncated", faultinject.HTTPPlan{Seed: 303, TruncateEveryN: 4, MaxFaults: 40}},
		{"stalls", faultinject.HTTPPlan{Seed: 404, StallEveryN: 3, Delay: 30 * time.Millisecond}},
		{"mixed", faultinject.HTTPPlan{
			Seed: 505, DropEveryN: 6, Error5xxEveryN: 8, TruncateEveryN: 8,
			StallEveryN: 6, Delay: 20 * time.Millisecond, MaxFaults: 60,
		}},
	}
	strategies := []core.CountStrategy{core.CountScan, core.CountTIDList, core.CountBitmap, core.CountAuto}
	shardCounts := []int{2, 7}
	if testing.Short() {
		faults = faults[:3]
		strategies = []core.CountStrategy{core.CountScan, core.CountAuto}
	}

	rng := rand.New(rand.NewSource(20110831))
	db, tree := testDataset(rng)

	for _, fc := range faults {
		t.Run(fc.name, func(t *testing.T) {
			opts := fastOpts()
			if fc.plan != (faultinject.HTTPPlan{}) {
				opts.HTTPClient = &http.Client{
					Transport: faultinject.NewHTTPTransport(nil, fc.plan),
					Timeout:   30 * time.Second,
				}
			}
			tc := newTestCluster(t, 3, db, tree, opts)
			for _, shards := range shardCounts {
				for _, strategy := range strategies {
					cfg := testConfig(strategy, true, shards)
					local, err := core.Mine(db, tree, cfg)
					if err != nil {
						t.Fatalf("shards=%d %v: local: %v", shards, strategy, err)
					}
					tc.reheartbeat()
					dist, err := tc.co.Mine(context.Background(), "ds", cfg)
					if err != nil {
						t.Fatalf("shards=%d %v: distributed: %v", shards, strategy, err)
					}
					want, got := patternsJSON(t, local, tree), patternsJSON(t, dist, tree)
					if got != want {
						t.Fatalf("shards=%d %v: distributed diverged from local.\nlocal:\n%s\ndistributed:\n%s",
							shards, strategy, want, got)
					}
				}
			}
		})
	}
}

// TestClusterStreamingEquivalence covers the disk-resident (streaming)
// counting mode over the cluster.
func TestClusterStreamingEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	db, tree := testDataset(rng)
	cfg := testConfig(core.CountScan, false, 2)
	local, err := core.Mine(db, tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tc := newTestCluster(t, 3, db, tree, fastOpts())
	dist, err := tc.co.Mine(context.Background(), "ds", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := patternsJSON(t, dist, tree), patternsJSON(t, local, tree); got != want {
		t.Fatalf("streaming distributed diverged.\nlocal:\n%s\ndistributed:\n%s", want, got)
	}
}

// TestClusterWorkerDeathMidJob kills a worker (hard 500s) for the duration
// of a job: the dispatch failure counters must declare it dead, its shards
// must be reassigned to the survivors without degrading, and the result must
// stay byte-identical. Then the worker revives through heartbeat decay.
func TestClusterWorkerDeathMidJob(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	db, tree := testDataset(rng)
	cfg := testConfig(core.CountScan, true, 7)
	local, err := core.Mine(db, tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tc := newTestCluster(t, 3, db, tree, fastOpts())
	// Kill w0: every dispatch to it fails hard, so mid-job its shards
	// reroute and the failure threshold buries it.
	tc.failAt[0].Store(true)
	dist, err := tc.co.Mine(context.Background(), "ds", cfg)
	if err != nil {
		t.Fatalf("distributed mine with dead worker: %v", err)
	}
	if got, want := patternsJSON(t, dist, tree), patternsJSON(t, local, tree); got != want {
		t.Fatalf("result diverged after worker death.\nlocal:\n%s\ndistributed:\n%s", want, got)
	}
	if dist.Stats.Degraded {
		t.Fatal("run degraded despite two healthy workers")
	}
	if st := tc.co.Registry().StateOf("w0"); st != StateDead {
		t.Fatalf("failing worker state %v, want dead", st)
	}
	// Revive: heartbeats decay the failures and the worker serves again.
	tc.failAt[0].Store(false)
	for i := 0; i < failDead; i++ {
		tc.reheartbeat()
	}
	if st := tc.co.Registry().StateOf("w0"); st != StateAlive {
		t.Fatalf("revived worker state %v, want alive", st)
	}
}

// TestClusterDegradedFallback takes every worker down: the coordinator must
// mine the whole job locally, report degraded, and still match the
// single-process result byte for byte.
func TestClusterDegradedFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	db, tree := testDataset(rng)
	cfg := testConfig(core.CountScan, true, 2)
	local, err := core.Mine(db, tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tc := newTestCluster(t, 3, db, tree, fastOpts())
	for _, f := range tc.failAt {
		f.Store(true)
	}
	dist, err := tc.co.Mine(context.Background(), "ds", cfg)
	if err != nil {
		t.Fatalf("degraded mine: %v", err)
	}
	if !dist.Stats.Degraded {
		t.Fatal("all-workers-down run not flagged degraded")
	}
	if got, want := patternsJSON(t, dist, tree), patternsJSON(t, local, tree); got != want {
		t.Fatalf("degraded result diverged.\nlocal:\n%s\ndegraded:\n%s", want, got)
	}

	// Partial recovery: one worker comes back (one heartbeat decays it from
	// dead to suspect, so it serves again). Whether any given shard lands on
	// it or falls back locally, the bytes cannot move.
	tc.failAt[1].Store(false)
	tc.reheartbeat()
	dist2, err := tc.co.Mine(context.Background(), "ds", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := patternsJSON(t, dist2, tree), patternsJSON(t, local, tree); got != want {
		t.Fatalf("partially-recovered result diverged.\nlocal:\n%s\ndistributed:\n%s", want, got)
	}
}

// TestClusterHedgeWinnerDeterminism pins first-result-wins: with one
// straggling worker forcing hedges, the merged result is byte-identical no
// matter which copy of a duplicated dispatch lands first — both orders are
// exercised by swapping which worker is the straggler.
func TestClusterHedgeWinnerDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	db, tree := testDataset(rng)
	cfg := testConfig(core.CountScan, true, 2)
	local, err := core.Mine(db, tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := patternsJSON(t, local, tree)

	for slow := 0; slow < 2; slow++ {
		opts := fastOpts()
		opts.HedgeAfter = 10 * time.Millisecond
		tc := newTestCluster(t, 2, db, tree, opts)
		// The slow worker stalls past the hedge deadline on every request:
		// when it is primary for a shard the hedge on the fast worker wins;
		// when it is the hedge target the primary wins. The straggler's
		// vector arrives later (or is cancelled) and is never merged.
		tc.delay[slow].Store(int64(60 * time.Millisecond))
		dist, err := tc.co.Mine(context.Background(), "ds", cfg)
		if err != nil {
			t.Fatalf("slow=%d: %v", slow, err)
		}
		if got := patternsJSON(t, dist, tree); got != want {
			t.Fatalf("slow=%d: hedged result diverged.\nlocal:\n%s\ndistributed:\n%s", slow, want, got)
		}
		if dist.Stats.Degraded {
			t.Fatalf("slow=%d: hedged run flagged degraded", slow)
		}
	}
}

// TestCoordinatorEligible pins the local-vs-distributed routing predicate
// the service queue keys off.
func TestCoordinatorEligible(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	db, tree := testDataset(rng)
	fp := NewFingerprint("ds", db, tree)
	cat := NewCatalog()
	cat.Add("ds", core.NewEngine(db, tree), tree, fp)
	co := New(cat, fastOpts())
	if co.Eligible("ds") {
		t.Fatal("eligible with no workers")
	}
	if co.Eligible("nope") {
		t.Fatal("eligible for unknown dataset")
	}
	co.Registry().Heartbeat(Heartbeat{Worker: "w1", Addr: "http://a", Datasets: []Fingerprint{fp}})
	if !co.Eligible("ds") {
		t.Fatal("not eligible with a live worker")
	}
	if co.Reachable() != 1 {
		t.Fatalf("reachable %d, want 1", co.Reachable())
	}
	// A worker advertising a different build of the dataset doesn't count.
	stale := fp
	stale.Nodes++
	co.Registry().Remove("w1")
	co.Registry().Heartbeat(Heartbeat{Worker: "w2", Addr: "http://b", Datasets: []Fingerprint{stale}})
	if co.Eligible("ds") {
		t.Fatal("eligible via mismatched fingerprint")
	}
}

// TestWorkerHandlerValidation exercises the worker's request cross-checks
// over real HTTP: every property whose mismatch would otherwise merge wrong
// integers silently must be rejected loudly.
func TestWorkerHandlerValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	db, tree := testDataset(rng)
	fp := NewFingerprint("ds", db, tree)
	cat := NewCatalog()
	cat.Add("ds", core.NewEngine(db, tree), tree, fp)
	w := NewWorker("w1", cat)
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()

	cfg := core.Config{
		Measure: measure.Kulczynski, Gamma: 0.3, Epsilon: 0.1,
		MinSupAbs: []int64{1, 1, 1}, Materialize: true,
	}
	post := func(req CountRequest) int {
		t.Helper()
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(srv.URL+PathCount, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	leaves := tree.Leaves()
	a, b := leaves[0], leaves[1]
	if a > b {
		a, b = b, a
	}
	good := CountRequest{
		Fingerprint: fp, ConfigKey: cfg.CanonicalKey(), Config: cfg,
		Level: tree.Height(), K: 2, Shard: 0,
		Candidates: []itemset.Set{{a, b}},
	}
	if got := post(good); got != http.StatusOK {
		t.Fatalf("valid request: %d", got)
	}
	bad := good
	bad.Fingerprint.Transactions++
	if got := post(bad); got != http.StatusConflict {
		t.Fatalf("fingerprint mismatch: %d, want 409", got)
	}
	bad = good
	bad.Fingerprint.Dataset = "nope"
	if got := post(bad); got != http.StatusNotFound {
		t.Fatalf("unknown dataset: %d, want 404", got)
	}
	bad = good
	bad.ConfigKey = "tampered"
	if got := post(bad); got != http.StatusBadRequest {
		t.Fatalf("config-key mismatch: %d, want 400", got)
	}
	bad = good
	bad.Shard = 5
	if got := post(bad); got != http.StatusBadRequest {
		t.Fatalf("shard out of range: %d, want 400", got)
	}
	bad = good
	bad.K = 3
	if got := post(bad); got != http.StatusBadRequest {
		t.Fatalf("k mismatch: %d, want 400", got)
	}
}

// TestLatencyWindowQuantile pins the hedge-deadline math.
func TestLatencyWindowQuantile(t *testing.T) {
	var lw latencyWindow
	if q := lw.quantile(0.9); q != 0 {
		t.Fatalf("empty window quantile %v, want 0", q)
	}
	for i := 1; i <= 10; i++ {
		lw.add(time.Duration(i) * time.Millisecond)
	}
	if q := lw.quantile(0.9); q != 10*time.Millisecond {
		t.Fatalf("p90 of 1..10ms = %v, want 10ms", q)
	}
	if q := lw.quantile(0.5); q != 6*time.Millisecond {
		t.Fatalf("p50 of 1..10ms = %v, want 6ms", q)
	}
	// Overflow the ring: only the last 128 samples count.
	for i := 0; i < 300; i++ {
		lw.add(time.Second)
	}
	if q := lw.quantile(0.5); q != time.Second {
		t.Fatalf("post-overflow p50 %v, want 1s", q)
	}
}
