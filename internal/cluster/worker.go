package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// Worker is the counting side of the protocol: it serves PathCount over a
// catalog of loaded datasets and pushes heartbeats to a coordinator. One
// worker process serves every dataset it loaded; the coordinator's registry
// matches requests to workers by dataset fingerprint.
type Worker struct {
	id  string
	cat *Catalog
	mux *http.ServeMux
}

// NewWorker builds a worker serving the catalog's datasets under the given
// ID (unique per worker process; the operator's -worker-id or a
// host:port-derived default).
func NewWorker(id string, cat *Catalog) *Worker {
	w := &Worker{id: id, cat: cat, mux: http.NewServeMux()}
	w.mux.HandleFunc("POST "+PathCount, w.handleCount)
	w.mux.HandleFunc("GET "+PathPing, w.handlePing)
	return w
}

// ID returns the worker's identifier.
func (w *Worker) ID() string { return w.id }

// Handler returns the worker's HTTP handler (PathCount, PathPing).
func (w *Worker) Handler() http.Handler { return w.mux }

// writeJSON/writeError mirror the service envelopes so cluster endpoints
// read like the rest of the API surface.
func writeJSON(rw http.ResponseWriter, status int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	enc := json.NewEncoder(rw)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(rw http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(rw, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleCount answers one shard's partial support vector. Every
// cross-checkable property of the request is verified before counting —
// dataset fingerprint, canonical config key, shard range — because a
// mismatch here would not fail loudly downstream: it would merge wrong
// integers into a result that still looks perfectly healthy.
func (w *Worker) handleCount(rw http.ResponseWriter, r *http.Request) {
	var req CountRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(rw, http.StatusBadRequest, "bad count request: %v", err)
		return
	}
	ent, ok := w.cat.Get(req.Fingerprint.Dataset)
	if !ok {
		writeError(rw, http.StatusNotFound, "unknown dataset %q", req.Fingerprint.Dataset)
		return
	}
	if ent.Fp != req.Fingerprint {
		writeError(rw, http.StatusConflict, "dataset fingerprint mismatch: coordinator has %s, worker has %s",
			req.Fingerprint, ent.Fp)
		return
	}
	if key := req.Config.CanonicalKey(); key != req.ConfigKey {
		writeError(rw, http.StatusBadRequest, "config key mismatch: request says %q, config resolves to %q",
			req.ConfigKey, key)
		return
	}
	if shards := ent.Engine.ResolveShards(req.Config); req.Shard < 0 || req.Shard >= shards {
		writeError(rw, http.StatusBadRequest, "shard %d out of range [0, %d)", req.Shard, shards)
		return
	}
	for i, c := range req.Candidates {
		if len(c) != req.K {
			writeError(rw, http.StatusBadRequest, "candidate %d has %d items, want k=%d", i, len(c), req.K)
			return
		}
	}
	sup, err := ent.Engine.ShardSupports(r.Context(), req.Config, req.Level, req.Candidates, req.Shard)
	if err != nil {
		if r.Context().Err() != nil {
			// The coordinator cancelled (hedge loser or aborted job): no one
			// is listening for this response.
			return
		}
		writeError(rw, http.StatusInternalServerError, "count failed: %v", err)
		return
	}
	writeJSON(rw, http.StatusOK, CountResponse{Worker: w.id, Supports: sup})
}

func (w *Worker) handlePing(rw http.ResponseWriter, _ *http.Request) {
	writeJSON(rw, http.StatusOK, map[string]any{
		"worker":   w.id,
		"datasets": w.cat.Fingerprints(),
	})
}

// HeartbeatLoop pushes heartbeats to the coordinator at coordURL every
// interval until ctx is cancelled, advertising selfURL as the worker's base
// URL. The first push happens immediately, so a freshly joined worker is
// schedulable within one round trip rather than one interval. Push failures
// are silently dropped — the coordinator's suspect/dead machinery is the
// failure detector; the worker just keeps trying.
func (w *Worker) HeartbeatLoop(ctx context.Context, coordURL, selfURL string, interval time.Duration, client *http.Client) {
	if client == nil {
		client = http.DefaultClient
	}
	if interval <= 0 {
		interval = time.Second
	}
	w.SendHeartbeat(ctx, coordURL, selfURL, client)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			w.SendHeartbeat(ctx, coordURL, selfURL, client)
		}
	}
}

// SendHeartbeat pushes one heartbeat; errors are returned for callers that
// want to log them, but the loop ignores them by design.
func (w *Worker) SendHeartbeat(ctx context.Context, coordURL, selfURL string, client *http.Client) error {
	if client == nil {
		client = http.DefaultClient
	}
	body, err := json.Marshal(Heartbeat{
		Worker:   w.id,
		Addr:     selfURL,
		Datasets: w.cat.Fingerprints(),
	})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, coordURL+PathHeartbeat, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: heartbeat: coordinator returned %s", resp.Status)
	}
	return nil
}
