// Package cluster distributes flipping-correlation mining over multiple
// flipperd processes with a scatter–gather protocol that keeps the output
// byte-identical to a single-process run.
//
// # Why counting, not mining, is distributed
//
// The Flipper search is iterative: each cell Q(h,k) of the table is
// generated from the counted results of its neighbors, so the search
// itself cannot fan out. What dominates cost — and parallelizes exactly —
// is support counting: every transaction lives in exactly one shard, and
// per-shard partial support vectors merge by plain int64 addition
// (commutative and associative), so counting a cell's candidates is
// embarrassingly parallel across shards with a deterministic merged
// result. The coordinator therefore runs the search locally through
// core.MineRemote and scatters each cell's counting shard-by-shard
// (CountRequest → CountResponse) over the worker pool; core.ShardSupports
// is the worker-side kernel.
//
// # Robustness model
//
// Workers push heartbeats; the coordinator's Registry grades each worker
// alive → suspect → dead from heartbeat age and dispatch failures. Each
// shard's dispatch walks the non-dead workers in shard-affinity order with
// full-jitter exponential backoff between attempts; dispatches outstanding
// past a latency-quantile deadline are hedged to a second worker, first
// result wins. Because every shard resolves to exactly one vector before
// the merge, retries and hedges can never double-count. When no worker can
// serve a shard, the coordinator counts it locally and flags the run
// degraded (Stats.Degraded) — partial cluster failure degrades capacity,
// never availability or correctness.
package cluster
