package cluster

import (
	"fmt"
	"sort"
	"sync"

	"github.com/flipper-mining/flipper/internal/core"
	"github.com/flipper-mining/flipper/internal/itemset"
	"github.com/flipper-mining/flipper/internal/taxonomy"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// HTTP paths of the cluster wire protocol. Workers serve PathCount and
// PathPing; coordinators serve PathHeartbeat.
const (
	// PathCount is the worker endpoint answering one shard's partial
	// support vector for one cell's candidates (POST, CountRequest →
	// CountResponse).
	PathCount = "/cluster/count"
	// PathPing is the worker liveness probe (GET).
	PathPing = "/cluster/ping"
	// PathHeartbeat is the coordinator endpoint workers push Heartbeat
	// messages to (POST).
	PathHeartbeat = "/cluster/heartbeat"
)

// Fingerprint identifies a dataset build well enough to catch the failure
// mode that silently corrupts distributed counting: a worker holding a
// different dataset (or a differently-built taxonomy) under the same name.
// Loading is deterministic — LoadDir resolves identical dictionary IDs and
// shard layouts from identical files — so equal fingerprints mean the
// worker's item IDs and shard indexes line up with the coordinator's.
type Fingerprint struct {
	Dataset      string `json:"dataset"`
	Transactions int    `json:"transactions"`
	Height       int    `json:"height"`
	Nodes        int    `json:"nodes"`
}

// NewFingerprint derives the fingerprint of a loaded dataset.
func NewFingerprint(name string, src txdb.Source, tree *taxonomy.Tree) Fingerprint {
	return Fingerprint{
		Dataset:      name,
		Transactions: src.Len(),
		Height:       tree.Height(),
		Nodes:        tree.NodeCount(),
	}
}

func (f Fingerprint) String() string {
	return fmt.Sprintf("%s(tx=%d,h=%d,nodes=%d)", f.Dataset, f.Transactions, f.Height, f.Nodes)
}

// CountRequest asks a worker for one shard's partial support vector of one
// cell's candidates. Candidates travel in slab-entry order and the response
// vector is aligned with them (see core.ShardSupports). ConfigKey is the
// coordinator's core.Config.CanonicalKey; the worker recomputes it from
// Config and rejects mismatches, so a corrupted or version-skewed config
// can never produce silently different counts.
type CountRequest struct {
	Fingerprint Fingerprint   `json:"fingerprint"`
	ConfigKey   string        `json:"config_key"`
	Config      core.Config   `json:"config"`
	Level       int           `json:"level"`
	K           int           `json:"k"`
	Shard       int           `json:"shard"`
	Candidates  []itemset.Set `json:"candidates"`
}

// CountResponse is the worker's answer: the partial support vector, aligned
// index-for-index with the request's candidates.
type CountResponse struct {
	Worker   string  `json:"worker"`
	Supports []int64 `json:"supports"`
}

// Heartbeat is the worker → coordinator health push: who the worker is,
// where it serves the count endpoint, and which dataset builds it holds.
type Heartbeat struct {
	Worker   string        `json:"worker"`
	Addr     string        `json:"addr"` // base URL, e.g. http://10.0.0.7:8081
	Datasets []Fingerprint `json:"datasets"`
}

// Catalog maps dataset names to the engine and fingerprint both sides of
// the protocol resolve requests against: workers count through it,
// coordinators mine through it and fall back to its engines in degraded
// mode. Safe for concurrent use.
type Catalog struct {
	mu sync.RWMutex
	m  map[string]CatalogEntry
}

// CatalogEntry is one dataset's cluster-facing state.
type CatalogEntry struct {
	Engine *core.Engine
	Tree   *taxonomy.Tree
	Fp     Fingerprint
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{m: make(map[string]CatalogEntry)}
}

// Add registers (or replaces) a dataset.
func (c *Catalog) Add(name string, eng *core.Engine, tree *taxonomy.Tree, fp Fingerprint) {
	c.mu.Lock()
	c.m[name] = CatalogEntry{Engine: eng, Tree: tree, Fp: fp}
	c.mu.Unlock()
}

// Get looks a dataset up by name.
func (c *Catalog) Get(name string) (CatalogEntry, bool) {
	c.mu.RLock()
	e, ok := c.m[name]
	c.mu.RUnlock()
	return e, ok
}

// Fingerprints lists every registered dataset's fingerprint, sorted by
// dataset name — the payload a worker heartbeats.
func (c *Catalog) Fingerprints() []Fingerprint {
	c.mu.RLock()
	out := make([]Fingerprint, 0, len(c.m))
	for _, e := range c.m {
		out = append(out, e.Fp)
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Dataset < out[j].Dataset })
	return out
}
