package experiments

import (
	"fmt"
	"sort"

	"github.com/flipper-mining/flipper/internal/core"
	"github.com/flipper-mining/flipper/internal/measure"
	"github.com/flipper-mining/flipper/internal/taxonomy"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// TopK compares the anchored top-K search against the exact baseline (a full
// mine filtered to the anchor and ranked by gap) on the dense counting
// workload with planted flips. Three variants per anchor:
//
//   - exact: one full unanchored mine; its candidate count is the
//     denominator of the "how much counting does anchoring skip" story.
//   - guaranteed: the anchored path with sketches sized to stay unsaturated,
//     so every support probe resolves from the signatures alone (the skip
//     ratio column must stay ≥ 0.5 on this workload — the CI shape check).
//   - best_effort: deliberately undersized sketches, so pruning runs on
//     estimates; recall@K against the exact top-K quantifies the trade.
func TopK(s Scale) (*Table, error) {
	const topK = 5
	db, tree, err := topkWorkload(s)
	if err != nil {
		return nil, err
	}
	// Unsaturated signatures bound every support exactly; the best-effort
	// row shrinks them 16× so its pruning genuinely estimates.
	guaranteedK := 1
	for guaranteedK < db.Len() {
		guaranteedK <<= 1
	}
	cfg := topkConfig()
	t := &Table{
		ID:      "topk",
		Title:   "Anchored top-K: exact vs sketch-pruned guaranteed vs best-effort",
		Columns: []string{"Anchor", "Mode", "SketchK", "Seconds", "Candidates", "Probes", "Pruned", "Skip", "Recall@5"},
		Notes: []string{
			fmt.Sprintf("dense background N=%d ×16 items over 64 cats, planted (+,−) flips on {cat00,cat01} and {cat02,cat03}; γ=%g, ε=%g", db.Len(), cfg.Gamma, cfg.Epsilon),
			"Candidates counts exact tid-list intersections; Skip = Pruned/Probes, the share of anchored support probes resolved from sketches alone",
			fmt.Sprintf("guaranteed sketches hold k=%d ≥ N hashes (never saturated, bounds are exact); best_effort uses k=%d", guaranteedK, guaranteedK/16),
		},
	}

	full, err := core.Mine(db, tree, cfg)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		"(all)", "exact", "-", seconds(full.Stats.Elapsed),
		fmt.Sprintf("%d", full.Stats.CandidatesCounted), "-", "-", "-", "1.000",
	})

	eng := core.NewEngine(db, tree)
	for _, anchor := range []string{"leaf00.0", "cat02"} {
		want := exactAnchoredTopK(full, tree, anchor, topK)
		if len(want) == 0 {
			return nil, fmt.Errorf("topk: planted workload yields no patterns through anchor %s", anchor)
		}
		for _, mode := range []struct {
			name    string
			mode    string
			sketchK int
		}{
			{"guaranteed", core.AnchorGuaranteed, guaranteedK},
			{"best_effort", core.AnchorBestEffort, guaranteedK / 16},
		} {
			c := cfg
			c.Anchor = anchor
			c.AnchorTopK = topK
			c.AnchorMode = mode.mode
			c.SketchK = mode.sketchK
			res, err := eng.Mine(c)
			if err != nil {
				return nil, err
			}
			skip := 0.0
			if res.Stats.SketchProbes > 0 {
				skip = float64(res.Stats.SketchPruned) / float64(res.Stats.SketchProbes)
			}
			t.Rows = append(t.Rows, []string{
				anchor, mode.name, fmt.Sprintf("%d", mode.sketchK), seconds(res.Stats.Elapsed),
				fmt.Sprintf("%d", res.Stats.CandidatesCounted),
				fmt.Sprintf("%d", res.Stats.SketchProbes),
				fmt.Sprintf("%d", res.Stats.SketchPruned),
				fmt.Sprintf("%.3f", skip),
				fmt.Sprintf("%.3f", recallAt(res.Patterns, want)),
			})
		}
	}
	return t, nil
}

// topkWorkload plants two (+,−) flips on the dense background: for each
// boosted category pair, n/10 extra cross-pair transactions raise the
// level-1 correlation past γ while leaving every leaf pair of the two
// categories uncorrelated (the cross pairs never co-occur with themselves),
// so the chain flips negative at the leaves.
func topkWorkload(s Scale) (*txdb.DB, *taxonomy.Tree, error) {
	db, tree, err := DenseWorkload(s.SyntheticN, 64, 2, 16, s.Seed)
	if err != nil {
		return nil, nil, err
	}
	m := s.SyntheticN / 10
	for _, pair := range [][2]int{{0, 1}, {2, 3}} {
		for i := 0; i < m; i++ {
			db.AddNames(
				fmt.Sprintf("leaf%02d.%d", pair[0], i%2),
				fmt.Sprintf("leaf%02d.%d", pair[1], 1-i%2),
			)
		}
	}
	return db, tree, nil
}

// topkConfig: thresholds solved for the planted design. The random
// background puts unboosted category pairs near Kulczynski 0.2 (unlabeled:
// between ε and γ) and leaf pairs near 0.11; boosting lifts the planted
// category pairs past 0.4 and dilutes their leaf pairs under 0.12.
func topkConfig() core.Config {
	return core.Config{
		Measure:     measure.Kulczynski,
		Gamma:       0.4,
		Epsilon:     0.12,
		MinSup:      []float64{0.02, 0.005},
		Pruning:     core.Full,
		Strategy:    core.CountScan,
		Materialize: true,
	}
}

// exactAnchoredTopK is the semantic contract of the anchored path, computed
// independently: filter the full result to chains passing through the
// anchor, rank by descending gap (ties by leaf key, as core ranks), keep K.
func exactAnchoredTopK(full *core.Result, tree *taxonomy.Tree, anchor string, k int) []core.Pattern {
	id, ok := tree.Dict().Lookup(anchor)
	if !ok {
		return nil
	}
	level := tree.LevelOf(id)
	var out []core.Pattern
	for _, p := range full.Patterns {
		if level >= 1 && level <= len(p.Chain) && p.Chain[level-1].Items.Contains(id) {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Gap != out[j].Gap {
			return out[i].Gap > out[j].Gap
		}
		return out[i].Leaf.Key() < out[j].Leaf.Key()
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// recallAt measures how many of the exact top-K leaves the approximate run
// recovered.
func recallAt(got, want []core.Pattern) float64 {
	if len(want) == 0 {
		return 1
	}
	keys := make(map[string]bool, len(got))
	for _, p := range got {
		keys[p.Leaf.Key()] = true
	}
	hit := 0
	for _, p := range want {
		if keys[p.Leaf.Key()] {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}
