package experiments

import (
	"fmt"
	"runtime"

	"github.com/flipper-mining/flipper/internal/core"
)

// Ablation evaluates the design choices DESIGN.md calls out beyond the
// paper: counting strategy (the paper's sequential scan vs Eclat-style
// tid-lists vs the cost-model auto mode), counting parallelism, and
// materialized views vs disk-resident streaming. All runs use full pruning
// on the default synthetic workload.
func Ablation(s Scale) (*Table, error) {
	db, tree, err := synthetic(s.SyntheticN, 5, s.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ablation",
		Title:   "Design-choice ablations (full pruning, default synthetic workload)",
		Columns: []string{"Variant", "Seconds", "DB scans", "Peak itemsets"},
		Notes: []string{
			fmt.Sprintf("N=%d, W=5, thresholds %v, γ=0.3, ε=0.1", s.SyntheticN, defaultSynMinsup),
		},
	}
	run := func(name string, mutate func(*core.Config)) error {
		cfg := syntheticConfig(core.Full, defaultSynMinsup)
		mutate(&cfg)
		res, err := core.Mine(db, tree, cfg)
		if err != nil {
			return err
		}
		t.Rows = append(t.Rows, []string{
			name,
			seconds(res.Stats.Elapsed),
			fmt.Sprintf("%d", res.Stats.DBScans),
			fmt.Sprintf("%d", res.Stats.PeakCandidates),
		})
		return nil
	}
	variants := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"count=scan", func(c *core.Config) { c.Strategy = core.CountScan }},
		{"count=tidlist", func(c *core.Config) { c.Strategy = core.CountTIDList }},
		{"count=bitmap", func(c *core.Config) { c.Strategy = core.CountBitmap }},
		{"count=auto", func(c *core.Config) { c.Strategy = core.CountAuto }},
		{"workers=1", func(c *core.Config) { c.Parallelism = 1 }},
		{fmt.Sprintf("workers=%d", runtime.GOMAXPROCS(0)), func(c *core.Config) { c.Parallelism = runtime.GOMAXPROCS(0) }},
		{"views=materialized", func(c *core.Config) { c.Materialize = true }},
		{"views=streaming", func(c *core.Config) { c.Materialize = false; c.Strategy = core.CountScan }},
	}
	for _, v := range variants {
		if err := run(v.name, v.mutate); err != nil {
			return nil, err
		}
	}
	return t, nil
}
