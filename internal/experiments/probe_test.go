package experiments

import (
	"os"
	"testing"
	"time"

	"github.com/flipper-mining/flipper/internal/core"
)

// TestProbeWidthCost is a manual probe (FLIPPER_PROBE=1 go test -run
// ProbeWidth -v) used to size the quick-scale width sweep for the BASIC
// baseline; at N=10,000 BASIC needs ~26 s at W=7 and ~40 s at W=8.
func TestProbeWidthCost(t *testing.T) {
	if os.Getenv("FLIPPER_PROBE") == "" {
		t.Skip("manual probe; set FLIPPER_PROBE=1 to run")
	}
	for _, w := range []int{7, 8} {
		db, tree, err := synthetic(10000, float64(w), 1)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		res, err := core.Mine(db, tree, syntheticConfig(core.Basic, defaultSynMinsup))
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("W=%d basic: %v, %d candidates", w, time.Since(start), res.Stats.CandidatesCounted)
	}
}
