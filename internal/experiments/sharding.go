package experiments

import (
	"fmt"
	"runtime"
	"time"

	"github.com/flipper-mining/flipper/internal/core"
	"github.com/flipper-mining/flipper/internal/measure"
)

// Sharding measures how counting scales with the transaction shard count on
// the dense workload the counting micro-benchmarks use. Every backend runs
// a bounded worker pool over per-shard views and indexes; the table reports
// wall time, the serial merge fraction (Stats.ShardMergeNs) and the speedup
// over the same backend unsharded, for shard counts 1..8. The pattern count
// column doubles as a correctness check: sharding must never change it.
func Sharding(s Scale) (*Table, error) {
	n := s.SyntheticN
	db, tree, err := DenseWorkload(n, 64, 2, 16, s.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "sharding",
		Title:   "Shard-count scaling of the counting backends (dense workload)",
		Columns: []string{"Strategy", "Shards", "Seconds", "Merge ms", "Speedup", "Patterns"},
		Notes: []string{
			fmt.Sprintf("dense: %d tx × 16 items, 64 cats × 2 leaves; every pair candidate counted", n),
			"speedup is vs the same backend with shards=1; merge ms is the serial partial-vector merge (Amdahl bound)",
			fmt.Sprintf("GOMAXPROCS=%d — speedup is bounded by cores; on one core the table pins sharding overhead instead", runtime.GOMAXPROCS(0)),
		},
	}
	for _, strategy := range []core.CountStrategy{core.CountScan, core.CountTIDList, core.CountBitmap} {
		var base time.Duration
		for _, shards := range []int{1, 2, 4, 8} {
			cfg := core.Config{
				Measure:     measure.Kulczynski,
				Gamma:       0.3,
				Epsilon:     0.1,
				MinSupAbs:   []int64{5, 5},
				Pruning:     core.Basic,
				Strategy:    strategy,
				MaxK:        2,
				Materialize: true,
				Shards:      shards,
			}
			res, err := core.Mine(db, tree, cfg)
			if err != nil {
				return nil, err
			}
			if shards == 1 {
				base = res.Stats.Elapsed
			}
			speedup := float64(base) / float64(res.Stats.Elapsed)
			t.Rows = append(t.Rows, []string{
				strategy.String(),
				fmt.Sprintf("%d", shards),
				seconds(res.Stats.Elapsed),
				fmt.Sprintf("%.1f", float64(res.Stats.ShardMergeNs)/1e6),
				fmt.Sprintf("%.2f", speedup),
				fmt.Sprintf("%d", len(res.Patterns)),
			})
		}
	}
	return t, nil
}
