package experiments

import (
	"fmt"
	"math/rand"

	"github.com/flipper-mining/flipper/internal/taxonomy"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// DenseWorkload builds the counting benchmarks' home turf: a flat taxonomy
// of cats categories with leavesPerCat leaves each (height 2) and n
// transactions of width random leaves, so permissive thresholds put every
// pair candidate against a dense level view that barely dedups. Shared by
// BenchmarkCountingDense and the flipbench -json micro suite so the
// committed BENCH_*.json baselines measure exactly what the in-repo
// benchmark measures.
func DenseWorkload(n, cats, leavesPerCat, width int, seed int64) (*txdb.DB, *taxonomy.Tree, error) {
	tb := taxonomy.NewBuilder(nil)
	for r := 0; r < cats; r++ {
		for l := 0; l < leavesPerCat; l++ {
			if err := tb.AddPath(fmt.Sprintf("cat%02d", r), fmt.Sprintf("leaf%02d.%d", r, l)); err != nil {
				return nil, nil, err
			}
		}
	}
	tree, err := tb.Build()
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	db := txdb.New(tree.Dict())
	for i := 0; i < n; i++ {
		var names []string
		for j := 0; j < width; j++ {
			names = append(names, fmt.Sprintf("leaf%02d.%d", rng.Intn(cats), rng.Intn(leavesPerCat)))
		}
		db.AddNames(names...)
	}
	return db, tree, nil
}
