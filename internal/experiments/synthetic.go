package experiments

import (
	"fmt"

	"github.com/flipper-mining/flipper/internal/core"
	"github.com/flipper-mining/flipper/internal/gen"
	"github.com/flipper-mining/flipper/internal/measure"
	"github.com/flipper-mining/flipper/internal/taxonomy"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// Minsup profiles of the paper's Table 3: per-level thresholds
// (θ1, θ2, θ3, θ4) lowered one level at a time.
var minsupProfiles = []struct {
	Name    string
	Profile [4]float64
}{
	{"thr1", [4]float64{0.05, 0.05, 0.05, 0.05}},
	{"thr2", [4]float64{0.05, 0.001, 0.0005, 0.0001}},
	{"thr3", [4]float64{0.01, 0.001, 0.0005, 0.0001}},
	{"thr4", [4]float64{0.01, 0.0005, 0.0005, 0.0001}},
	{"thr5", [4]float64{0.01, 0.0005, 0.0001, 0.0001}},
	{"thr6", [4]float64{0.01, 0.0005, 0.0001, 0.00005}},
	{"thr7", [4]float64{0.001, 0.0005, 0.0001, 0.00005}},
	{"thr8", [4]float64{0.001, 0.0001, 0.0001, 0.00005}},
	{"thr9", [4]float64{0.001, 0.0001, 0.00006, 0.00005}},
	{"thr10", [4]float64{0.001, 0.0001, 0.00006, 0.00003}},
}

// Table3 prints the minimum-support profiles (used by Figure 8(a)).
func Table3(Scale) (*Table, error) {
	t := &Table{
		ID:      "table3",
		Title:   "Minimum support profiles (paper Table 3)",
		Columns: []string{"Profile", "θ1", "θ2", "θ3", "θ4"},
	}
	for _, p := range minsupProfiles {
		t.Rows = append(t.Rows, []string{
			p.Name,
			fmt.Sprintf("%g", p.Profile[0]), fmt.Sprintf("%g", p.Profile[1]),
			fmt.Sprintf("%g", p.Profile[2]), fmt.Sprintf("%g", p.Profile[3]),
		})
	}
	return t, nil
}

// synthetic builds the paper's default synthetic workload: H=4, 10 level-1
// categories, fanout 5, |I|≈1000 leaves, width W, N transactions.
func synthetic(n int, width float64, seed int64) (*txdb.DB, *taxonomy.Tree, error) {
	tree, err := gen.BuildTaxonomy(gen.DefaultTaxonomyParams())
	if err != nil {
		return nil, nil, err
	}
	p := gen.DefaultParams()
	p.N = n
	p.AvgWidth = width
	p.Seed = seed
	db, err := gen.Generate(tree, p)
	if err != nil {
		return nil, nil, err
	}
	return db, tree, nil
}

// syntheticConfig is the paper's default synthetic threshold set:
// γ=0.3, ε=0.1 and the thr5-style default supports.
func syntheticConfig(pruning core.PruningLevel, minsup []float64) core.Config {
	return core.Config{
		Measure:     measure.Kulczynski,
		Gamma:       0.3,
		Epsilon:     0.1,
		MinSup:      minsup,
		Pruning:     pruning,
		Strategy:    core.CountScan,
		Materialize: true,
	}
}

var defaultSynMinsup = []float64{0.01, 0.001, 0.0005, 0.0001}

// variantColumns are the four curves of Figure 8.
var variantColumns = []struct {
	Name    string
	Pruning core.PruningLevel
}{
	{"Basic", core.Basic},
	{"Flipping", core.Flipping},
	{"Flipping+TPG", core.FlippingTPG},
	{"Flipping+TPG+SIBP", core.Full},
}

// runVariants mines the same workload with all four pruning variants and
// returns the runtime cells plus the candidate counts (for notes).
func runVariants(db *txdb.DB, tree *taxonomy.Tree, minsup []float64, gamma, epsilon float64) ([]string, []int64, error) {
	times := make([]string, 0, len(variantColumns))
	candidates := make([]int64, 0, len(variantColumns))
	for _, v := range variantColumns {
		cfg := syntheticConfig(v.Pruning, minsup)
		cfg.Gamma, cfg.Epsilon = gamma, epsilon
		res, err := core.Mine(db, tree, cfg)
		if err != nil {
			return nil, nil, err
		}
		times = append(times, seconds(res.Stats.Elapsed))
		candidates = append(candidates, res.Stats.CandidatesCounted)
	}
	return times, candidates, nil
}

// Fig8a reproduces Figure 8(a): runtime for the ten minsup profiles of
// Table 3, for all four pruning variants.
func Fig8a(s Scale) (*Table, error) {
	db, tree, err := synthetic(s.SyntheticN, 5, s.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig8a",
		Title:   "Running time (sec) vs minimum support profile",
		Columns: append([]string{"Profile"}, variantNames()...),
		Notes: []string{
			fmt.Sprintf("N=%d (paper: 100,000), W=5, |I|≈1000, H=4, γ=0.3, ε=0.1", s.SyntheticN),
		},
	}
	for _, p := range minsupProfiles {
		times, _, err := runVariants(db, tree, p.Profile[:], 0.3, 0.1)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, append([]string{p.Name}, times...))
	}
	return t, nil
}

// Fig8b reproduces Figure 8(b): runtime vs number of transactions; the
// paper sweeps 100K–1M and reports linear growth for all variants.
func Fig8b(s Scale) (*Table, error) {
	t := &Table{
		ID:      "fig8b",
		Title:   "Running time (sec) vs number of transactions",
		Columns: append([]string{"N"}, variantNames()...),
		Notes: []string{
			fmt.Sprintf("sweep up to %d (paper: 1,000,000); default thresholds", s.SweepMax),
		},
	}
	for _, frac := range []float64{0.1, 0.25, 0.5, 0.75, 1.0} {
		n := int(float64(s.SweepMax) * frac)
		if n < 1000 {
			n = 1000
		}
		db, tree, err := synthetic(n, 5, s.Seed)
		if err != nil {
			return nil, err
		}
		times, _, err := runVariants(db, tree, defaultSynMinsup, 0.3, 0.1)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, append([]string{fmt.Sprintf("%d", n)}, times...))
	}
	return t, nil
}

// Fig8c reproduces Figure 8(c): runtime vs average transaction width W=5..10.
func Fig8c(s Scale) (*Table, error) {
	t := &Table{
		ID:      "fig8c",
		Title:   "Running time (sec) vs average transaction width",
		Columns: append([]string{"W"}, variantNames()...),
		Notes: []string{
			fmt.Sprintf("N=%d (paper: 100,000); width swept 5..10 as in the paper", s.SyntheticN),
		},
	}
	for w := 5; w <= 10; w++ {
		db, tree, err := synthetic(s.SyntheticN, float64(w), s.Seed)
		if err != nil {
			return nil, err
		}
		times, _, err := runVariants(db, tree, defaultSynMinsup, 0.3, 0.1)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, append([]string{fmt.Sprintf("%d", w)}, times...))
	}
	return t, nil
}

// Fig8d reproduces Figure 8(d): runtime vs the seven (γ, ε) profiles. The
// BASIC baseline ignores correlation thresholds entirely, so its row is
// flat — exactly the paper's observation.
func Fig8d(s Scale) (*Table, error) {
	db, tree, err := synthetic(s.SyntheticN, 5, s.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig8d",
		Title:   "Running time (sec) vs correlation thresholds (γ, ε)",
		Columns: append([]string{"(γ,ε)"}, variantNames()...),
		Notes: []string{
			fmt.Sprintf("N=%d; pruning strength grows with γ as in the paper", s.SyntheticN),
		},
	}
	profiles := [][2]float64{
		{0.2, 0.1}, {0.3, 0.1}, {0.4, 0.1}, {0.5, 0.1}, {0.6, 0.1},
		{0.6, 0.3}, {0.6, 0.5},
	}
	for _, p := range profiles {
		times, _, err := runVariants(db, tree, defaultSynMinsup, p[0], p[1])
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, append([]string{fmt.Sprintf("(%.1f,%.1f)", p[0], p[1])}, times...))
	}
	return t, nil
}

func variantNames() []string {
	out := make([]string, len(variantColumns))
	for i, v := range variantColumns {
		out[i] = v.Name
	}
	return out
}
