package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// tiny returns a scale small enough for unit tests.
func tiny() Scale {
	return Scale{
		SyntheticN:     1500,
		SweepMax:       3000,
		GroceriesScale: 0.2,
		CensusScale:    0.1,
		MedlineScale:   0.01,
		Seed:           1,
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "table3", "fig8a", "fig8b", "fig8c", "fig8d", "fig9a", "fig9b", "table4", "fig10-12", "ablation", "counting", "sharding", "topk"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Errorf("registry[%d] = %s, want %s", i, reg[i].ID, id)
		}
		if _, ok := Lookup(id); !ok {
			t.Errorf("Lookup(%s) failed", id)
		}
	}
	if _, ok := Lookup("fig99"); ok {
		t.Error("Lookup of unknown id succeeded")
	}
}

func TestTable1Static(t *testing.T) {
	tbl, err := Table1(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("table1 rows = %d", len(tbl.Rows))
	}
	// DB1 rows say positive, DB2 rows say negative; Kulc identical per pair.
	if tbl.Rows[0][6] != "positive" || tbl.Rows[1][6] != "negative" {
		t.Errorf("verdicts = %s / %s", tbl.Rows[0][6], tbl.Rows[1][6])
	}
	if tbl.Rows[0][7] != tbl.Rows[1][7] {
		t.Error("Kulc changed with N")
	}
}

func TestTable3Profiles(t *testing.T) {
	tbl, err := Table3(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 10 {
		t.Fatalf("profiles = %d, want 10", len(tbl.Rows))
	}
	if tbl.Rows[0][0] != "thr1" || tbl.Rows[9][0] != "thr10" {
		t.Error("profile names wrong")
	}
}

func TestRenderAndCSV(t *testing.T) {
	tbl := &Table{
		ID: "x", Title: "demo",
		Columns: []string{"A", "LongColumn"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"a note"},
	}
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"# x — demo", "LongColumn", "note: a note", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	if err := tbl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "A,LongColumn\n") {
		t.Errorf("csv = %q", sb.String())
	}
}

func TestFig8aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("synthetic sweep")
	}
	tbl, err := Fig8a(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 10 || len(tbl.Columns) != 5 {
		t.Fatalf("shape = %dx%d", len(tbl.Rows), len(tbl.Columns))
	}
	// All cells parse as seconds.
	for _, row := range tbl.Rows {
		for _, cell := range row[1:] {
			if _, err := strconv.ParseFloat(cell, 64); err != nil {
				t.Fatalf("cell %q not a float", cell)
			}
		}
	}
}

func TestFig9aAndTable4(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset sweep")
	}
	tbl, err := Fig9a(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("fig9a rows = %d", len(tbl.Rows))
	}
	t4, err := Table4(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range t4.Rows {
		flips, err := strconv.Atoi(row[5])
		if err != nil {
			t.Fatalf("flips cell %q", row[5])
		}
		pos, _ := strconv.Atoi(row[3])
		neg, _ := strconv.Atoi(row[4])
		// The paper's observation: flips are a small subset of all labeled
		// patterns.
		if flips > pos+neg {
			t.Errorf("%s: flips %d exceed pos+neg %d", row[0], flips, pos+neg)
		}
		if flips < 1 {
			t.Errorf("%s: no flipping patterns found", row[0])
		}
	}
}

func TestCountingShape(t *testing.T) {
	tbl, err := Counting(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// 3 widths × 4 strategies.
	if len(tbl.Rows) != 12 {
		t.Fatalf("counting rows = %d, want 12", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		switch row[1] {
		case "scan", "tidlist":
			if row[4] != "0" {
				t.Errorf("width %s strategy %s reported %s bitmap builds, want 0", row[0], row[1], row[4])
			}
		case "bitmap":
			if row[4] == "0" || row[5] == "0" {
				t.Errorf("width %s bitmap row has no bitmap work: builds=%s ops=%s", row[0], row[4], row[5])
			}
		}
	}
	// Pattern counts must agree across strategies within a width.
	for w := 0; w < 3; w++ {
		base := tbl.Rows[4*w][6]
		for i := 1; i < 4; i++ {
			if got := tbl.Rows[4*w+i][6]; got != base {
				t.Errorf("width group %d: %s found %s patterns, scan found %s", w, tbl.Rows[4*w+i][1], got, base)
			}
		}
	}
}

func TestShardingShape(t *testing.T) {
	tbl, err := Sharding(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// 3 strategies × 4 shard counts.
	if len(tbl.Rows) != 12 {
		t.Fatalf("sharding rows = %d, want 12", len(tbl.Rows))
	}
	// Pattern counts must agree across shard counts within a strategy —
	// sharding can never change the mined output.
	for s := 0; s < 3; s++ {
		base := tbl.Rows[4*s][5]
		for i := 1; i < 4; i++ {
			row := tbl.Rows[4*s+i]
			if row[5] != base {
				t.Errorf("strategy %s at %s shards found %s patterns, want %s", row[0], row[1], row[5], base)
			}
		}
	}
}

func TestPatternsQualitative(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset sweep")
	}
	tbl, err := Patterns(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 7 { // 3 groceries + 2 census + 2 medline
		t.Fatalf("pattern rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[2] == "NOT FOUND" {
			t.Errorf("%s: planted pattern %s not recovered at tiny scale", row[0], row[1])
		}
	}
}
