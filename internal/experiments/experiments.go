// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5): the synthetic parameter sweeps of Figure 8, the
// real-dataset comparisons of Figure 9, the pattern-count Table 4, the
// minimum-support profiles of Table 3, and the expectation-based
// instability demonstration of Table 1.
//
// Each driver returns a Table that renders as aligned text (mirroring the
// paper's presentation) or CSV. Absolute runtimes depend on hardware and on
// the scale factor; the harness is about reproducing the paper's *shapes*:
// which variant wins, by what factor, and how costs grow along each axis.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment identifier, e.g. "fig8a" or "table4".
	ID string
	// Title describes the experiment, quoting the paper artifact.
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows hold the data cells, one slice per row.
	Rows [][]string
	// Notes document scale factors and substitutions.
	Notes []string
}

// Render writes an aligned text table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "# %s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	fmt.Fprintln(w, line(t.Columns))
	for i, wd := range widths {
		if i > 0 {
			fmt.Fprint(w, "  ")
		}
		fmt.Fprint(w, strings.Repeat("-", wd))
	}
	fmt.Fprintln(w)
	for _, row := range t.Rows {
		fmt.Fprintln(w, line(row))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	return nil
}

// WriteCSV writes the table as CSV (header + rows; notes as comments).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Scale shrinks the paper's workloads so the whole suite runs in minutes on
// a laptop. The paper ran N=100K–1M transactions on a 48 GB Xeon server;
// shapes are preserved at smaller N because every cost in the algorithm is
// linear in N for a fixed density (the paper's own Figure 8(b)).
type Scale struct {
	// SyntheticN is the synthetic transaction count (paper: 100,000).
	SyntheticN int
	// SweepMax is the largest N of the Figure 8(b) sweep (paper: 1M).
	SweepMax int
	// GroceriesScale, CensusScale and MedlineScale multiply the original
	// dataset sizes (9,800 / 32,000 / 640,000).
	GroceriesScale float64
	CensusScale    float64
	MedlineScale   float64
	// Seed drives all generators.
	Seed int64
}

// Quick is the default scale: the full suite in a few minutes.
func Quick() Scale {
	return Scale{
		SyntheticN:     10_000,
		SweepMax:       50_000,
		GroceriesScale: 1.0,  // 9,800 — already small
		CensusScale:    0.5,  // 16,000
		MedlineScale:   0.05, // 32,000
		Seed:           1,
	}
}

// Paper is the paper-faithful scale; expect long runtimes for the BASIC
// baseline, exactly as the paper reports.
func Paper() Scale {
	return Scale{
		SyntheticN:     100_000,
		SweepMax:       1_000_000,
		GroceriesScale: 1.0,
		CensusScale:    1.0,
		MedlineScale:   1.0,
		Seed:           1,
	}
}

// Runner is one experiment driver.
type Runner func(Scale) (*Table, error)

// Registry maps experiment IDs to their drivers, in the paper's order.
func Registry() []struct {
	ID   string
	Desc string
	Run  Runner
} {
	return []struct {
		ID   string
		Desc string
		Run  Runner
	}{
		{"table1", "Table 1: expectation-based correlation instability", Table1},
		{"table3", "Table 3: minimum support profiles", Table3},
		{"fig8a", "Figure 8(a): runtime vs minimum support profile", Fig8a},
		{"fig8b", "Figure 8(b): runtime vs number of transactions", Fig8b},
		{"fig8c", "Figure 8(c): runtime vs transaction width", Fig8c},
		{"fig8d", "Figure 8(d): runtime vs correlation thresholds", Fig8d},
		{"fig9a", "Figure 9(a): runtime on real datasets", Fig9a},
		{"fig9b", "Figure 9(b): memory on real datasets", Fig9b},
		{"table4", "Table 4: flipping vs all positive/negative patterns", Table4},
		{"fig10-12", "Figures 10-12: qualitative patterns per dataset", Patterns},
		{"ablation", "Beyond the paper: counting strategy / parallelism / view ablations", Ablation},
		{"counting", "Beyond the paper: scan vs tidlist vs bitmap counting across densities", Counting},
		{"sharding", "Beyond the paper: shard-count scaling of the counting backends", Sharding},
		{"topk", "Beyond the paper: anchored top-K — exact vs sketch-pruned guaranteed vs best-effort", TopK},
	}
}

// Lookup finds a driver by ID.
func Lookup(id string) (Runner, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run, true
		}
	}
	return nil, false
}

func seconds(d time.Duration) string { return fmt.Sprintf("%.3f", d.Seconds()) }
