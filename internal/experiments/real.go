package experiments

import (
	"fmt"
	"strings"

	"github.com/flipper-mining/flipper/internal/core"
	"github.com/flipper-mining/flipper/internal/datasets"
	"github.com/flipper-mining/flipper/internal/measure"
)

// loadReal builds the three dataset simulators at the requested scale.
func loadReal(s Scale) ([]*datasets.Dataset, error) {
	g, err := datasets.Groceries(s.GroceriesScale, s.Seed)
	if err != nil {
		return nil, err
	}
	c, err := datasets.Census(s.CensusScale, s.Seed)
	if err != nil {
		return nil, err
	}
	m, err := datasets.Medline(s.MedlineScale, s.Seed)
	if err != nil {
		return nil, err
	}
	return []*datasets.Dataset{g, c, m}, nil
}

// Fig9a reproduces Figure 9(a): running time of the naive flipping-based
// pruning versus the full Flipper (flipping + TPG + SIBP) on the three
// real datasets. The paper excludes BASIC here — it ran beyond 10 hours on
// the smallest dataset; the Table-4 thresholds put the miners deep in the
// low-support regime where support-only pruning collapses.
func Fig9a(s Scale) (*Table, error) {
	dss, err := loadReal(s)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig9a",
		Title:   "Running time (sec) on real datasets: naive flipping vs full Flipper",
		Columns: []string{"Dataset", "Tx", "NaiveFlipping", "FullFlipper"},
		Notes: []string{
			"naive = flipping-based pruning only; full = flipping+TPG+SIBP",
			fmt.Sprintf("scales: groceries ×%g, census ×%g, medline ×%g of the original sizes",
				s.GroceriesScale, s.CensusScale, s.MedlineScale),
		},
	}
	for _, ds := range dss {
		row := []string{ds.Name, fmt.Sprintf("%d", ds.DB.Len())}
		for _, pruning := range []core.PruningLevel{core.Flipping, core.Full} {
			cfg := ds.Config()
			cfg.Pruning = pruning
			res, err := core.Mine(ds.DB, ds.Tree, cfg)
			if err != nil {
				return nil, err
			}
			row = append(row, seconds(res.Stats.Elapsed))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig9b reproduces Figure 9(b): memory consumption on the real datasets,
// measured as the peak number of resident candidate itemsets and their
// estimated bytes. The paper's full version stayed under 2 GB while the
// naive version needed gigabytes — the ratio is the reproduced shape.
func Fig9b(s Scale) (*Table, error) {
	dss, err := loadReal(s)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig9b",
		Title:   "Peak candidate memory on real datasets: naive flipping vs full Flipper",
		Columns: []string{"Dataset", "Naive itemsets", "Naive MB", "Full itemsets", "Full MB"},
		Notes: []string{
			"itemset counts are exact; bytes are the engine's per-entry estimate",
		},
	}
	for _, ds := range dss {
		row := []string{ds.Name}
		for _, pruning := range []core.PruningLevel{core.Flipping, core.Full} {
			cfg := ds.Config()
			cfg.Pruning = pruning
			res, err := core.Mine(ds.DB, ds.Tree, cfg)
			if err != nil {
				return nil, err
			}
			row = append(row,
				fmt.Sprintf("%d", res.Stats.PeakCandidates),
				fmt.Sprintf("%.2f", float64(res.Stats.PeakBytes)/(1<<20)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table4 reproduces the paper's Table 4: the number of flipping patterns
// versus all positive and negative frequent patterns per dataset, at the
// dataset's threshold row. The complete positive/negative totals require
// the BASIC enumeration (cells hold every frequent itemset there).
func Table4(s Scale) (*Table, error) {
	dss, err := loadReal(s)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "table4",
		Title:   "Flipping patterns vs all positive and negative patterns",
		Columns: []string{"Dataset", "(γ,ε)", "θ profile", "Pos", "Neg", "Flips"},
		Notes: []string{
			"Pos/Neg counted by complete per-level enumeration (BASIC cells)",
		},
	}
	for _, ds := range dss {
		cfg := ds.Config()
		cfg.Pruning = core.Basic
		res, err := core.Mine(ds.DB, ds.Tree, cfg)
		if err != nil {
			return nil, err
		}
		thresholds := make([]string, len(ds.MinSup))
		for i, v := range ds.MinSup {
			thresholds[i] = fmt.Sprintf("%g", v)
		}
		t.Rows = append(t.Rows, []string{
			ds.Name,
			fmt.Sprintf("(%.2f,%.2f)", ds.Gamma, ds.Epsilon),
			strings.Join(thresholds, "/"),
			fmt.Sprintf("%d", res.Stats.PositiveItemsets),
			fmt.Sprintf("%d", res.Stats.NegativeItemsets),
			fmt.Sprintf("%d", len(res.Patterns)),
		})
	}
	return t, nil
}

// Patterns reproduces the qualitative side of Figures 10–12: the planted
// flipping patterns of each dataset simulator, as mined end to end.
func Patterns(s Scale) (*Table, error) {
	dss, err := loadReal(s)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig10-12",
		Title:   "Qualitative flipping patterns per dataset (planted per Figures 10-12)",
		Columns: []string{"Dataset", "Pattern", "Chain"},
	}
	for _, ds := range dss {
		res, err := core.Mine(ds.DB, ds.Tree, ds.Config())
		if err != nil {
			return nil, err
		}
		for _, exp := range ds.Expected {
			found := "NOT FOUND"
			for _, p := range res.Patterns {
				if len(p.Leaf) != 2 {
					continue
				}
				a, b := ds.Tree.Name(p.Leaf[0]), ds.Tree.Name(p.Leaf[1])
				if (a == exp.LeafA && b == exp.LeafB) || (a == exp.LeafB && b == exp.LeafA) {
					var chain []string
					for _, li := range p.Chain {
						chain = append(chain, fmt.Sprintf("L%d %s %s (%.3f)",
							li.Level, ds.Tree.FormatSet(li.Items), li.Label, li.Corr))
					}
					found = strings.Join(chain, " → ")
					break
				}
			}
			t.Rows = append(t.Rows, []string{
				ds.Name,
				fmt.Sprintf("{%s, %s}", exp.LeafA, exp.LeafB),
				found,
			})
		}
	}
	return t, nil
}

// Table1 reproduces the paper's Table 1 / Example 2: the expectation-based
// verdicts flip with the total transaction count while Kulczynski is
// null-invariant.
func Table1(Scale) (*Table, error) {
	t := &Table{
		ID:    "table1",
		Title: "Expectation-based correlation instability (paper Table 1)",
		Columns: []string{
			"Pair", "sup(A)", "sup(B)", "sup(AB)", "N", "E[sup]", "Expectation verdict", "Kulc",
		},
	}
	rows := []struct {
		pair              string
		supA, supB, supAB int64
		n                 int64
	}{
		{"A,B", 1000, 1000, 400, 20000},
		{"A,B", 1000, 1000, 400, 2000},
		{"C,D", 200, 200, 4, 20000},
		{"C,D", 200, 200, 4, 2000},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.pair,
			fmt.Sprintf("%d", r.supA), fmt.Sprintf("%d", r.supB), fmt.Sprintf("%d", r.supAB),
			fmt.Sprintf("%d", r.n),
			fmt.Sprintf("%.0f", measure.ExpectedSupport(r.supA, r.supB, r.n)),
			measure.ExpectationVerdict(r.supAB, r.supA, r.supB, r.n),
			fmt.Sprintf("%.2f", measure.Kulczynski.Corr2(r.supAB, r.supA, r.supB)),
		})
	}
	t.Notes = append(t.Notes,
		"the same supports are judged positive in DB1 (N=20,000) and negative in DB2 (N=2,000)")
	return t, nil
}
