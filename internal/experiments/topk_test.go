package experiments

import (
	"strconv"
	"testing"
)

// TestTopKShape is the issue's flipbench acceptance: on the dense planted
// workload the guaranteed anchored rows must recover the exact top-K
// (recall 1.000) while resolving at least half their support probes from
// sketches alone, and the best-effort rows must report a recall in [0, 1].
func TestTopKShape(t *testing.T) {
	tbl, err := TopK(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// 1 exact row + 2 anchors × 2 anchored modes.
	if len(tbl.Rows) != 5 {
		t.Fatalf("topk rows = %d, want 5", len(tbl.Rows))
	}
	if tbl.Rows[0][1] != "exact" || tbl.Rows[0][8] != "1.000" {
		t.Fatalf("exact row malformed: %v", tbl.Rows[0])
	}
	exactCands, err := strconv.Atoi(tbl.Rows[0][4])
	if err != nil || exactCands == 0 {
		t.Fatalf("exact candidates cell %q", tbl.Rows[0][4])
	}
	for _, row := range tbl.Rows[1:] {
		probes, err := strconv.Atoi(row[5])
		if err != nil || probes == 0 {
			t.Fatalf("%s/%s: probes cell %q", row[0], row[1], row[5])
		}
		skip, err := strconv.ParseFloat(row[7], 64)
		if err != nil {
			t.Fatalf("%s/%s: skip cell %q", row[0], row[1], row[7])
		}
		recall, err := strconv.ParseFloat(row[8], 64)
		if err != nil || recall < 0 || recall > 1 {
			t.Fatalf("%s/%s: recall cell %q", row[0], row[1], row[8])
		}
		cands, err := strconv.Atoi(row[4])
		if err != nil {
			t.Fatalf("%s/%s: candidates cell %q", row[0], row[1], row[4])
		}
		if cands >= exactCands {
			t.Errorf("%s/%s: anchored run counted %d candidates, exact full mine counted %d — anchoring saved nothing",
				row[0], row[1], cands, exactCands)
		}
		if row[1] == "guaranteed" {
			if recall != 1 {
				t.Errorf("%s: guaranteed recall = %s, want 1.000 (the exactness theorem)", row[0], row[8])
			}
			if skip < 0.5 {
				t.Errorf("%s: guaranteed skip ratio = %s, want >= 0.5 — sketches resolved too few probes", row[0], row[7])
			}
		}
	}
}
