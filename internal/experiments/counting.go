package experiments

import (
	"fmt"

	"github.com/flipper-mining/flipper/internal/core"
)

// Counting compares the three concrete counting backends (and the auto cost
// model) across transaction densities on the default synthetic workload.
// The interesting axis is width: wider transactions mean denser level views,
// more candidates per cell, and longer tid-lists — the regime where the
// bitmap backend's fixed ⌈n/64⌉ words per candidate pull ahead of both the
// subset-enumerating scan and the list intersections.
func Counting(s Scale) (*Table, error) {
	t := &Table{
		ID:      "counting",
		Title:   "Counting-strategy comparison across densities (full pruning)",
		Columns: []string{"Width", "Strategy", "Seconds", "Candidates", "Bitmap builds", "Bitmap word ops", "Patterns"},
		Notes: []string{
			fmt.Sprintf("N=%d, thresholds %v, γ=0.3, ε=0.1", s.SyntheticN, defaultSynMinsup),
			"auto picks a backend per cell: scan when candidates dwarf the database, tidlist on sparse levels, bitmap on dense high-candidate cells",
		},
	}
	strategies := []core.CountStrategy{core.CountScan, core.CountTIDList, core.CountBitmap, core.CountAuto}
	for _, width := range []float64{5, 7, 9} {
		db, tree, err := synthetic(s.SyntheticN, width, s.Seed)
		if err != nil {
			return nil, err
		}
		for _, strategy := range strategies {
			cfg := syntheticConfig(core.Full, defaultSynMinsup)
			cfg.Strategy = strategy
			res, err := core.Mine(db, tree, cfg)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%g", width),
				strategy.String(),
				seconds(res.Stats.Elapsed),
				fmt.Sprintf("%d", res.Stats.CandidatesCounted),
				fmt.Sprintf("%d", res.Stats.BitmapBuilds),
				fmt.Sprintf("%d", res.Stats.BitmapWordOps),
				fmt.Sprintf("%d", len(res.Patterns)),
			})
		}
	}
	return t, nil
}
