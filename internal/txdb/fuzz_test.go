package txdb

import (
	"strings"
	"testing"
)

// FuzzReadBaskets: arbitrary input must never panic, and every successfully
// parsed database must round-trip (write → re-read → identical widths and
// names) whenever its names are writable.
func FuzzReadBaskets(f *testing.F) {
	f.Add("beer, diapers\nmilk\n-\n")
	f.Add("# comment\n\n")
	f.Add("a,b,c\na\n")
	f.Add("x")
	f.Fuzz(func(t *testing.T, input string) {
		db, err := ReadBaskets(strings.NewReader(input), nil)
		if err != nil {
			return // malformed input rejected is fine
		}
		var sb strings.Builder
		if err := db.WriteBaskets(&sb); err != nil {
			return // names unrepresentable in the format
		}
		back, err := ReadBaskets(strings.NewReader(sb.String()), nil)
		if err != nil {
			t.Fatalf("re-read of own output failed: %v\noutput: %q", err, sb.String())
		}
		if back.Len() != db.Len() {
			t.Fatalf("round trip changed transaction count %d -> %d", db.Len(), back.Len())
		}
		for i := 0; i < db.Len(); i++ {
			a, b := db.Tx(i), back.Tx(i)
			if a.K() != b.K() {
				t.Fatalf("tx %d width %d -> %d", i, a.K(), b.K())
			}
			for j := range a {
				if db.Dict().Name(a[j]) != back.Dict().Name(b[j]) {
					t.Fatalf("tx %d item %d name changed", i, j)
				}
			}
		}
	})
}

func TestWriteBasketsRejectsUnrepresentableNames(t *testing.T) {
	cases := [][]string{
		{"has,comma"},
		{"has\nnewline"},
		{"#comment-like"},
		{" padded "},
		{"-"},
	}
	for _, names := range cases {
		db := New(nil)
		db.AddNames(names...)
		var sb strings.Builder
		if err := db.WriteBaskets(&sb); err == nil {
			t.Errorf("name %q serialized without error", names[0])
		}
	}
}
