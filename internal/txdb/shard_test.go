package txdb

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/flipper-mining/flipper/internal/dict"
	"github.com/flipper-mining/flipper/internal/itemset"
	"github.com/flipper-mining/flipper/internal/taxonomy"
)

func randomShardDB(t *testing.T, n int, seed int64) *DB {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db := New(nil)
	for i := 0; i < n; i++ {
		w := rng.Intn(5)
		names := make([]string, 0, w)
		for j := 0; j < w; j++ {
			names = append(names, fmt.Sprintf("item%02d", rng.Intn(20)))
		}
		db.AddNames(names...)
	}
	return db
}

// replay collects the transaction sequence a source produces.
func replay(t *testing.T, src Source) []itemset.Set {
	t.Helper()
	var out []itemset.Set
	if err := src.Scan(func(tx itemset.Set) error {
		out = append(out, tx.Clone())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestPartitionPreservesOrderAndDict(t *testing.T) {
	db := randomShardDB(t, 103, 1)
	want := replay(t, db)
	for _, n := range []int{1, 2, 3, 7, 103, 500} {
		parts := Partition(db, n)
		if len(parts) == 0 || len(parts) > n {
			t.Fatalf("Partition(%d) returned %d shards", n, len(parts))
		}
		total := 0
		var got []itemset.Set
		for _, p := range parts {
			if p.Dict() != db.Dict() {
				t.Fatalf("Partition(%d): shard does not share the dictionary", n)
			}
			if p.Len() == 0 {
				t.Fatalf("Partition(%d): empty shard", n)
			}
			total += p.Len()
			got = append(got, replay(t, p)...)
		}
		if total != db.Len() {
			t.Fatalf("Partition(%d): shard lengths sum to %d, want %d", n, total, db.Len())
		}
		if len(got) != len(want) {
			t.Fatalf("Partition(%d): replay has %d transactions, want %d", n, len(got), len(want))
		}
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Fatalf("Partition(%d): transaction %d differs", n, i)
			}
		}
	}
}

func TestPartitionEmptyDB(t *testing.T) {
	db := New(nil)
	parts := Partition(db, 4)
	if len(parts) != 1 || parts[0].Len() != 0 {
		t.Fatalf("Partition of empty DB = %d shards, want one empty shard", len(parts))
	}
}

func TestShardedSourceEqualsConcatenation(t *testing.T) {
	db := randomShardDB(t, 64, 2)
	want := replay(t, db)
	ss := PartitionSource(db, 5)
	if ss.Len() != db.Len() {
		t.Fatalf("Len = %d, want %d", ss.Len(), db.Len())
	}
	if ss.Dict() != db.Dict() {
		t.Fatal("sharded source does not share the dictionary")
	}
	if ss.NumShards() != 5 {
		t.Fatalf("NumShards = %d, want 5", ss.NumShards())
	}
	got := replay(t, ss)
	if len(got) != len(want) {
		t.Fatalf("replay has %d transactions, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("transaction %d differs through the sharded source", i)
		}
	}
	// Summary statistics agree as well.
	a, err := ComputeStats(db)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ComputeStats(ss)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("stats diverge: %+v vs %+v", a, b)
	}
}

func TestNewShardedValidation(t *testing.T) {
	if _, err := NewSharded(); err == nil {
		t.Fatal("NewSharded() accepted zero shards")
	}
	a := New(nil)
	a.AddNames("x")
	b := New(nil) // fresh dictionary, not shared
	b.AddNames("x")
	if _, err := NewSharded(a, b); err == nil {
		t.Fatal("NewSharded accepted shards with distinct dictionaries")
	}
	c := New(a.Dict())
	c.AddNames("y")
	ss, err := NewSharded(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ss.Len())
	}
}

func TestShardedFileSources(t *testing.T) {
	dir := t.TempDir()
	d := dict.New()
	var shards []Source
	var want []string
	for i := 0; i < 3; i++ {
		path := filepath.Join(dir, fmt.Sprintf("shard%d.txt", i))
		content := fmt.Sprintf("a%d,b%d\nc%d\n", i, i, i)
		want = append(want, fmt.Sprintf("a%d", i))
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		fs, err := OpenFile(path, d)
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, fs)
	}
	ss, err := NewSharded(shards...)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Len() != 6 {
		t.Fatalf("Len = %d, want 6", ss.Len())
	}
	got := replay(t, ss)
	if len(got) != 6 {
		t.Fatalf("replayed %d transactions, want 6", len(got))
	}
	for i, name := range want {
		id, ok := d.Lookup(name)
		if !ok {
			t.Fatalf("item %q missing from shared dictionary", name)
		}
		if !got[2*i].Contains(id) {
			t.Fatalf("transaction %d does not contain %q", 2*i, name)
		}
	}
}

func TestMaterializeShardsMergesToUnsharded(t *testing.T) {
	b := taxonomy.NewBuilder(nil)
	for r := 0; r < 3; r++ {
		for l := 0; l < 3; l++ {
			if err := b.AddPath(fmt.Sprintf("c%d", r), fmt.Sprintf("c%d.%d", r, l)); err != nil {
				t.Fatal(err)
			}
		}
	}
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	db := New(tree.Dict())
	for i := 0; i < 90; i++ {
		w := 1 + rng.Intn(4)
		names := make([]string, 0, w)
		for j := 0; j < w; j++ {
			names = append(names, fmt.Sprintf("c%d.%d", rng.Intn(3), rng.Intn(3)))
		}
		db.AddNames(names...)
	}
	for h := 1; h <= tree.Height(); h++ {
		whole, err := Materialize(db, tree, h)
		if err != nil {
			t.Fatal(err)
		}
		ss := PartitionSource(db, 4)
		views, err := MaterializeShards(ss.Shards(), tree, h, 2)
		if err != nil {
			t.Fatal(err)
		}
		merged := make(map[itemset.ID]int64)
		maxWidth, total := 0, 0
		for _, v := range views {
			total += len(v.Tx)
			if v.MaxWidth > maxWidth {
				maxWidth = v.MaxWidth
			}
			for id, sup := range v.Support {
				merged[id] += sup
			}
		}
		if total != len(whole.Tx) {
			t.Fatalf("level %d: shard views hold %d transactions, want %d", h, total, len(whole.Tx))
		}
		if maxWidth != whole.MaxWidth {
			t.Fatalf("level %d: merged MaxWidth %d, want %d", h, maxWidth, whole.MaxWidth)
		}
		if len(merged) != len(whole.Support) {
			t.Fatalf("level %d: merged support has %d items, want %d", h, len(merged), len(whole.Support))
		}
		for id, sup := range whole.Support {
			if merged[id] != sup {
				t.Fatalf("level %d: support of %v = %d merged, want %d", h, id, merged[id], sup)
			}
		}
	}
}
