package txdb

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/flipper-mining/flipper/internal/dict"
	"github.com/flipper-mining/flipper/internal/itemset"
	"github.com/flipper-mining/flipper/internal/taxonomy"
)

// Transaction sharding: the data-partitioning substrate behind the engine's
// shard-parallel counting. A database is split into contiguous transaction
// ranges (Partition) or assembled from independently stored pieces
// (ShardedSource over FileSources for out-of-core mining); either way the
// concatenation of the shards, in shard order, replays exactly the same
// transaction sequence as the unsharded source, which is what lets the
// engine prove sharded mining byte-identical to unsharded mining.

// Partition splits db into n shards of contiguous transaction ranges, in
// order: shard i holds transactions [i·⌈len/n⌉, (i+1)·⌈len/n⌉). The shards
// alias db's transaction storage and share its dictionary, so partitioning
// allocates only shard headers. n is clamped to [1, db.Len()] (an empty
// database yields one empty shard), so fewer than n shards may be returned,
// but never an empty one.
func Partition(db *DB, n int) []*DB {
	if n < 1 {
		n = 1
	}
	if n > len(db.tx) {
		n = len(db.tx)
	}
	if n <= 1 {
		return []*DB{{dict: db.dict, tx: db.tx}}
	}
	chunk := (len(db.tx) + n - 1) / n
	out := make([]*DB, 0, n)
	for lo := 0; lo < len(db.tx); lo += chunk {
		hi := lo + chunk
		if hi > len(db.tx) {
			hi = len(db.tx)
		}
		out = append(out, &DB{dict: db.dict, tx: db.tx[lo:hi:hi]})
	}
	return out
}

// ShardedSource is a Source composed of ordered shards, each itself a
// Source. Scanning replays the shards back to back in shard order, so a
// ShardedSource is indistinguishable from the concatenated database; the
// engine additionally reaches through it (Shards) to scan the pieces in
// parallel over a bounded worker pool. Shards may be in-memory DBs
// (from Partition) or disk-resident FileSources — the latter is the
// out-of-core mode: a dataset larger than RAM, stored as several basket
// files, is mined with only one shard's scan buffer resident per worker.
type ShardedSource struct {
	shards []Source
	n      int
}

// NewSharded composes shards into one source. At least one shard is
// required and all shards must share one dictionary — IDs must mean the
// same item in every shard for counting across them to be meaningful.
func NewSharded(shards ...Source) (*ShardedSource, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("txdb: sharded source needs at least one shard")
	}
	d := shards[0].Dict()
	n := 0
	for i, s := range shards {
		if s.Dict() != d {
			return nil, fmt.Errorf("txdb: shard %d does not share the dictionary of shard 0", i)
		}
		n += s.Len()
	}
	return &ShardedSource{shards: shards, n: n}, nil
}

// PartitionSource partitions an in-memory database into an n-shard source;
// the convenience composition of Partition and NewSharded.
func PartitionSource(db *DB, n int) *ShardedSource {
	parts := Partition(db, n)
	shards := make([]Source, len(parts))
	for i, p := range parts {
		shards[i] = p
	}
	ss, err := NewSharded(shards...)
	if err != nil {
		panic(err) // unreachable: Partition output always shares one dict
	}
	return ss
}

// Scan implements Source: the shards are replayed sequentially in shard
// order, so the observable transaction sequence equals the unsharded one.
func (ss *ShardedSource) Scan(fn func(tx itemset.Set) error) error {
	for _, s := range ss.shards {
		if err := s.Scan(fn); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the total number of transactions across shards.
func (ss *ShardedSource) Len() int { return ss.n }

// Dict returns the dictionary shared by all shards.
func (ss *ShardedSource) Dict() *dict.Dictionary { return ss.shards[0].Dict() }

// Shards returns the shard sources in order. The returned slice is owned by
// the ShardedSource — read only.
func (ss *ShardedSource) Shards() []Source { return ss.shards }

// NumShards returns the number of shards.
func (ss *ShardedSource) NumShards() int { return len(ss.shards) }

// ShardDirFiles lists the shard*.txt basket shards of dir in shard order —
// the write order of the flipgen -shards layout (shard000.txt,
// shard001.txt, …). Only names with the shard prefix qualify, so a stray
// README.txt or scratch file next to the shards is never silently mined as
// transactions. Names are ordered by length before lexicography so that
// numbering wider than the zero padding (shard1000.txt after shard999.txt)
// still replays in numeric order; plain name order would interleave it
// between shard100.txt and shard101.txt and permute the transaction
// sequence.
func ShardDirFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "shard") || filepath.Ext(name) != ".txt" {
			continue
		}
		out = append(out, filepath.Join(dir, name))
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return out[i] < out[j]
	})
	return out, nil
}

// OpenBasketSource opens one basket file as a Source sharing dictionary d:
// a FileSource re-read from disk on every pass when stream is set,
// otherwise an in-memory DB read once. The single place the
// stream/materialize loading switch lives — the CLI, the flipperd registry
// and OpenShards all route through it.
func OpenBasketSource(path string, d *dict.Dictionary, stream bool) (Source, error) {
	if stream {
		return OpenFile(path, d)
	}
	// The one-shot load reads through the same transient-fault retry layer
	// the streaming mode scans with.
	f, err := openRetryReader(path, DefaultRetry, nil)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBaskets(f, d)
}

// OpenShards composes the basket files, in the given order, into a
// ShardedSource sharing dictionary d; each file is opened with
// OpenBasketSource (FileSource when stream is set, in-memory DB
// otherwise).
func OpenShards(paths []string, d *dict.Dictionary, stream bool) (*ShardedSource, error) {
	shards := make([]Source, 0, len(paths))
	for _, p := range paths {
		s, err := OpenBasketSource(p, d, stream)
		if err != nil {
			return nil, err
		}
		shards = append(shards, s)
	}
	return NewSharded(shards...)
}

// OpenShardDir opens a directory of shard*.txt basket files (the flipgen
// -shards layout) as a ShardedSource; the convenience composition of
// ShardDirFiles and OpenShards shared by the flipper CLI and the flipperd
// dataset registry.
func OpenShardDir(dir string, d *dict.Dictionary, stream bool) (*ShardedSource, error) {
	paths, err := ShardDirFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("txdb: no shard*.txt basket shards in %s", dir)
	}
	return OpenShards(paths, d, stream)
}

// ForEachShard runs body(w, s) for every shard index s in [0, n) over a
// bounded pool of worker goroutines and waits for all of them: worker w
// handles shards w, w+W, w+2W, … This strided pool is the concurrency
// discipline every shard-parallel path shares — at most `workers`
// goroutines live regardless of shard count, so shard count scales
// independently of core count. Only worker w calls body with that w, so
// per-worker state indexed by w needs no locking.
func ForEachShard(workers, n int, body func(w, s int)) {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for s := w; s < n; s += workers {
				body(w, s)
			}
		}(w)
	}
	wg.Wait()
}

// MaterializeShards builds the level-h view of every shard concurrently
// over a pool of at most `workers` goroutines (the caller's parallelism
// budget). The returned views are indexed by shard; their per-item
// supports sum — and their MaxWidths max — to exactly the values of the
// unsharded Materialize, because generalization is per-transaction.
func MaterializeShards(shards []Source, tree *taxonomy.Tree, h, workers int) ([]*LevelView, error) {
	views := make([]*LevelView, len(shards))
	errs := make([]error, len(shards))
	ForEachShard(workers, len(shards), func(_, s int) {
		views[s], errs[s] = Materialize(shards[s], tree, h)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return views, nil
}
