package txdb

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"time"
)

// Transient-read recovery for the out-of-core paths. A FileSource re-reads
// its basket file on every counting pass, so one flaky read — NFS hiccup,
// overloaded disk, an injected fault in tests — would otherwise abort a
// whole mine minutes in. The retryReader below absorbs such failures at the
// byte level: it tracks how many bytes the consumer has seen, and on a
// transient error closes the file, backs off, reopens, seeks to that
// offset, and continues. The line scanner above it never observes the
// fault, so transactions are delivered exactly once and mining under
// faults is byte-identical to the fault-free run (pinned by
// internal/faultinject's equivalence tests).

// ErrTransient marks an error as retryable by wrapping (errors.Is). Errors
// from other packages can opt in instead by implementing
// `Transient() bool` — see IsTransient.
var ErrTransient = errors.New("transient I/O error")

// IsTransient reports whether err is worth retrying: it wraps ErrTransient
// or something in its chain implements `Transient() bool` returning true.
// Ordinary OS errors match neither, so retry stays inert for real failures
// like a deleted file or a bad permission bit.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrTransient) {
		return true
	}
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// RetryPolicy bounds transient-read recovery: up to Attempts consecutive
// retries per fault. Backoff caps the sleep before each retry; the actual
// sleep is full jitter — uniform in [0, cap] with the cap doubling per
// retry — so a burst of readers hitting the same stalled disk spreads its
// re-reads instead of re-arriving in lockstep. Attempts == 0 disables
// recovery entirely; Backoff == 0 keeps every sleep at zero.
type RetryPolicy struct {
	Attempts int
	Backoff  time.Duration
	// Rand draws the jitter: given n it returns a value in [0, n). Nil uses
	// a package-level seeded source; tests inject their own for exact
	// schedules.
	Rand func(n int64) int64
}

// jitterMu guards the default jitter source. A fixed seed keeps fault-
// injection runs replayable — jitter needs spread, not secrecy.
var (
	jitterMu  sync.Mutex
	jitterRng = rand.New(rand.NewSource(1))
)

// jitter draws one full-jitter sleep: uniform in [0, capDur].
func (p RetryPolicy) jitter(capDur time.Duration) time.Duration {
	if capDur <= 0 {
		return 0
	}
	if p.Rand != nil {
		return time.Duration(p.Rand(int64(capDur) + 1))
	}
	jitterMu.Lock()
	defer jitterMu.Unlock()
	return time.Duration(jitterRng.Int63n(int64(capDur) + 1))
}

// DefaultRetry is the policy out-of-core sources open with: a handful of
// quick retries, enough to ride out a momentary stall without materially
// delaying a genuinely failing mine.
var DefaultRetry = RetryPolicy{Attempts: 4, Backoff: 2 * time.Millisecond}

// ReaderWrapper decorates the raw file reader of each (re)open — the hook
// fault-injection tests use to place faults underneath the retry layer.
// The wrapper is re-applied after every reopen, so stateful wrappers see
// one continuous schedule across reopens.
type ReaderWrapper func(io.Reader) io.Reader

// retryReader is an io.Reader over a file that survives transient read
// errors by reopening the file and seeking back to the first unconsumed
// byte. Bytes handed to the caller are counted in off before any fault can
// occur, so recovery never rereads or drops data. Not safe for concurrent
// use (each Scan builds its own).
type retryReader struct {
	path    string
	policy  RetryPolicy
	wrap    ReaderWrapper
	f       *os.File
	r       io.Reader
	off     int64
	retries int
}

// openRetryReader opens path for resumable reading. The initial open
// itself retries transient failures under the same policy.
func openRetryReader(path string, policy RetryPolicy, wrap ReaderWrapper) (*retryReader, error) {
	r := &retryReader{path: path, policy: policy, wrap: wrap}
	if err := r.reopen(); err != nil {
		return nil, err
	}
	return r, nil
}

// reopen (re)establishes the reader at r.off, retrying transient open
// failures with the policy's backoff.
func (r *retryReader) reopen() error {
	backoff := r.policy.Backoff
	for attempt := 0; ; attempt++ {
		f, err := os.Open(r.path)
		if err == nil {
			if r.off > 0 {
				if _, err = f.Seek(r.off, io.SeekStart); err != nil {
					f.Close()
					return fmt.Errorf("txdb: resume %s at %d: %w", r.path, r.off, err)
				}
			}
			r.f = f
			if r.wrap != nil {
				r.r = r.wrap(f)
			} else {
				r.r = f
			}
			return nil
		}
		if !IsTransient(err) || attempt >= r.policy.Attempts {
			return err
		}
		r.retries++
		sleep(r.policy.jitter(backoff))
		backoff *= 2
	}
}

func (r *retryReader) Read(p []byte) (int, error) {
	backoff := r.policy.Backoff
	for attempt := 0; ; attempt++ {
		if r.r == nil {
			if err := r.reopen(); err != nil {
				return 0, err
			}
		}
		n, err := r.r.Read(p)
		r.off += int64(n)
		if err == nil || err == io.EOF || !IsTransient(err) || attempt >= r.policy.Attempts {
			return n, err
		}
		// Transient fault: drop the handle so the next iteration (or the
		// next Read, when this one already has bytes to deliver) reopens at
		// the resume offset.
		r.retries++
		r.f.Close()
		r.f, r.r = nil, nil
		if n > 0 {
			// Deliver what arrived before the fault; recovery happens on
			// the next Read so no byte waits on a backoff sleep.
			return n, nil
		}
		sleep(r.policy.jitter(backoff))
		backoff *= 2
	}
}

func (r *retryReader) Close() error {
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f, r.r = nil, nil
	return err
}

// Retries reports how many transient faults the reader recovered from.
func (r *retryReader) Retries() int { return r.retries }

func sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}
