package txdb

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/flipper-mining/flipper/internal/itemset"
	"github.com/flipper-mining/flipper/internal/taxonomy"
)

func TestAddCanonicalizes(t *testing.T) {
	db := New(nil)
	db.Add(3, 1, 3, 2)
	if got := db.Tx(0); !got.Equal(itemset.New(1, 2, 3)) {
		t.Errorf("Tx(0) = %v", got)
	}
	db.Add()
	if db.Len() != 2 {
		t.Errorf("Len = %d", db.Len())
	}
	if len(db.Tx(1)) != 0 {
		t.Error("empty transaction lost")
	}
}

func TestAddNames(t *testing.T) {
	db := New(nil)
	db.AddNames("beer", "diapers", "beer")
	if db.Len() != 1 || db.Tx(0).K() != 2 {
		t.Fatalf("bad transaction: %v", db.Tx(0))
	}
	id, ok := db.Dict().Lookup("beer")
	if !ok || !db.Tx(0).Contains(id) {
		t.Error("beer missing")
	}
}

func TestScanOrderAndError(t *testing.T) {
	db := New(nil)
	db.AddNames("a")
	db.AddNames("b")
	var seen []string
	err := db.Scan(func(tx itemset.Set) error {
		seen = append(seen, db.Dict().Name(tx[0]))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(seen, ",") != "a,b" {
		t.Errorf("scan order %v", seen)
	}
	calls := 0
	sentinel := os.ErrClosed
	err = db.Scan(func(itemset.Set) error {
		calls++
		return sentinel
	})
	if err != sentinel || calls != 1 {
		t.Errorf("error propagation failed: err=%v calls=%d", err, calls)
	}
}

func TestComputeStats(t *testing.T) {
	db := New(nil)
	db.AddNames("a", "b", "c")
	db.AddNames("a")
	db.Add()
	s, err := ComputeStats(db)
	if err != nil {
		t.Fatal(err)
	}
	if s.Transactions != 3 || s.DistinctItems != 3 || s.TotalItems != 4 || s.MaxWidth != 3 {
		t.Errorf("stats = %+v", s)
	}
	if s.AvgWidth < 1.33 || s.AvgWidth > 1.34 {
		t.Errorf("avg width = %v", s.AvgWidth)
	}
	if !strings.Contains(s.String(), "3 transactions") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestBasketRoundTrip(t *testing.T) {
	db := New(nil)
	db.AddNames("canned beer", "baby cosmetics")
	db.Add()
	db.AddNames("fish")
	var sb strings.Builder
	if err := db.WriteBaskets(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBaskets(strings.NewReader(sb.String()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() {
		t.Fatalf("round trip %d -> %d transactions", db.Len(), back.Len())
	}
	for i := 0; i < db.Len(); i++ {
		a, b := db.Tx(i), back.Tx(i)
		if a.K() != b.K() {
			t.Fatalf("tx %d width changed", i)
		}
		for j := range a {
			if db.Dict().Name(a[j]) != back.Dict().Name(b[j]) {
				t.Errorf("tx %d item %d: %q vs %q", i, j, db.Dict().Name(a[j]), back.Dict().Name(b[j]))
			}
		}
	}
}

func TestReadBasketsErrorsAndComments(t *testing.T) {
	in := "# header\nbeer, diapers\n\nmilk\n"
	db, err := ReadBaskets(strings.NewReader(in), nil)
	if err != nil {
		t.Fatal(err)
	}
	// comment skipped, blank line = empty transaction.
	if db.Len() != 3 {
		t.Fatalf("Len = %d, want 3", db.Len())
	}
	if db.Tx(0).K() != 2 || db.Tx(1).K() != 0 || db.Tx(2).K() != 1 {
		t.Errorf("widths = %d,%d,%d", db.Tx(0).K(), db.Tx(1).K(), db.Tx(2).K())
	}
	if _, err := ReadBaskets(strings.NewReader("a,,b\n"), nil); err == nil {
		t.Error("empty item accepted")
	}
}

func testTree(t *testing.T) *taxonomy.Tree {
	t.Helper()
	b := taxonomy.NewBuilder(nil)
	for _, p := range [][]string{
		{"food", "dairy", "milk"}, {"food", "dairy", "butter"},
		{"food", "meat", "pork"}, {"food", "meat", "beef"},
		{"drink", "beer", "stout"}, {"drink", "beer", "lager"},
	} {
		if err := b.AddPath(p...); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestMaterialize(t *testing.T) {
	tr := testTree(t)
	db := New(tr.Dict())
	db.AddNames("milk", "butter", "stout")
	db.AddNames("pork", "lager")
	db.AddNames("milk")

	lv2, err := Materialize(db, tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	dairy, _ := tr.Dict().Lookup("dairy")
	beer, _ := tr.Dict().Lookup("beer")
	meat, _ := tr.Dict().Lookup("meat")
	// tx0: {milk,butter,stout} -> {dairy, beer} (milk+butter merge)
	if !lv2.Tx[0].Equal(itemset.New(dairy, beer)) {
		t.Errorf("tx0 at level 2 = %v", tr.FormatSet(lv2.Tx[0]))
	}
	if lv2.Support[dairy] != 2 || lv2.Support[beer] != 2 || lv2.Support[meat] != 1 {
		t.Errorf("supports: dairy=%d beer=%d meat=%d", lv2.Support[dairy], lv2.Support[beer], lv2.Support[meat])
	}
	if lv2.MaxWidth != 2 {
		t.Errorf("MaxWidth = %d", lv2.MaxWidth)
	}
	// Level-1 view merges everything under food/drink.
	lv1, err := Materialize(db, tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	food, _ := tr.Dict().Lookup("food")
	if lv1.Support[food] != 3 {
		t.Errorf("food support = %d, want 3", lv1.Support[food])
	}
	// SupportOf reference counting agrees.
	// {dairy, beer} co-occur only in tx0.
	if got := lv2.SupportOf(itemset.New(dairy, beer)); got != 1 {
		t.Errorf("SupportOf({dairy,beer}) = %d", got)
	}
	if _, err := Materialize(db, tr, 0); err == nil {
		t.Error("level 0 accepted")
	}
	if _, err := Materialize(db, tr, 9); err == nil {
		t.Error("level 9 accepted")
	}
}

func TestMaterializeDropsUnmappedItems(t *testing.T) {
	tr := testTree(t)
	db := New(tr.Dict())
	// "mystery" is not in the taxonomy at all.
	db.AddNames("milk", "mystery")
	lv, err := Materialize(db, tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if lv.Tx[0].K() != 1 {
		t.Errorf("unmapped item kept: %v", lv.Tx[0])
	}
}

func TestMapLeaves(t *testing.T) {
	tr := testTree(t)
	db := New(tr.Dict())
	db.AddNames("milk", "stout")
	nt, leafMap, err := tr.Truncate([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	mapped := db.MapLeaves(leafMap)
	dairy, _ := nt.Dict().Lookup("dairy")
	beer, _ := nt.Dict().Lookup("beer")
	if !mapped.Tx(0).Equal(itemset.New(dairy, beer)) {
		t.Errorf("mapped tx = %v", tr.FormatSet(mapped.Tx(0)))
	}
	// Unmappable items are dropped.
	db2 := New(tr.Dict())
	db2.AddNames("milk")
	partial := map[itemset.ID]itemset.ID{}
	if got := db2.MapLeaves(partial); got.Tx(0).K() != 0 {
		t.Error("unmapped leaf survived MapLeaves")
	}
}

func TestShuffleDeterministic(t *testing.T) {
	mk := func() *DB {
		db := New(nil)
		for i := 0; i < 20; i++ {
			db.Add(itemset.ID(i))
		}
		return db
	}
	a, b := mk(), mk()
	a.Shuffle(7)
	b.Shuffle(7)
	for i := 0; i < a.Len(); i++ {
		if !a.Tx(i).Equal(b.Tx(i)) {
			t.Fatal("same seed produced different orders")
		}
	}
	c := mk()
	c.Shuffle(8)
	same := true
	for i := 0; i < a.Len(); i++ {
		if !a.Tx(i).Equal(c.Tx(i)) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical orders")
	}
}

func TestFileSource(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baskets.txt")
	content := "# demo\nbeer, diapers\nmilk\n-\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Len() != 3 {
		t.Fatalf("Len = %d, want 3", fs.Len())
	}
	// Two passes give identical results.
	for pass := 0; pass < 2; pass++ {
		var widths []int
		err := fs.Scan(func(tx itemset.Set) error {
			widths = append(widths, tx.K())
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(widths) != 3 || widths[0] != 2 || widths[1] != 1 || widths[2] != 0 {
			t.Fatalf("pass %d widths = %v", pass, widths)
		}
	}
	if _, err := OpenFile(filepath.Join(dir, "missing.txt"), nil); err == nil {
		t.Error("missing file accepted")
	}
	// New items appearing after the first pass are a hard error.
	if err := os.WriteFile(path, []byte("beer, vodka\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Scan(func(itemset.Set) error { return nil }); err == nil {
		t.Error("mutated file with new items accepted on later pass")
	}
}

// Property: materialized per-level supports equal brute-force counting for
// random databases and trees.
func TestMaterializeSupportsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := testTree(t)
	leaves := tr.Leaves()
	for trial := 0; trial < 30; trial++ {
		db := New(tr.Dict())
		for i := 0; i < 50; i++ {
			w := rng.Intn(4)
			ids := make([]itemset.ID, 0, w)
			for j := 0; j < w; j++ {
				ids = append(ids, leaves[rng.Intn(len(leaves))])
			}
			db.Add(ids...)
		}
		for h := 1; h <= tr.Height(); h++ {
			lv, err := Materialize(db, tr, h)
			if err != nil {
				t.Fatal(err)
			}
			for id, sup := range lv.Support {
				if got := lv.SupportOf(itemset.New(id)); got != sup {
					t.Fatalf("trial %d level %d: support mismatch for %s: %d vs %d",
						trial, h, tr.Name(id), sup, got)
				}
			}
		}
	}
}

func BenchmarkMaterialize(b *testing.B) {
	bt := taxonomy.NewBuilder(nil)
	for r := 0; r < 10; r++ {
		root := string(rune('A' + r))
		for c := 0; c < 10; c++ {
			leaf := root + string(rune('a'+c))
			if err := bt.AddPath(root, leaf); err != nil {
				b.Fatal(err)
			}
		}
	}
	tr, err := bt.Build()
	if err != nil {
		b.Fatal(err)
	}
	leaves := tr.Leaves()
	db := New(tr.Dict())
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		ids := make([]itemset.ID, 5)
		for j := range ids {
			ids[j] = leaves[rng.Intn(len(leaves))]
		}
		db.Add(ids...)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Materialize(db, tr, 1); err != nil {
			b.Fatal(err)
		}
	}
}
