package txdb

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/flipper-mining/flipper/internal/itemset"
)

// flakeReader injects a transient error every `period` reads, failing
// before consuming (n = 0), like a stalled syscall.
type flakeReader struct {
	r      io.Reader
	reads  *int
	period int
}

type transientErr struct{ at int }

func (e *transientErr) Error() string   { return fmt.Sprintf("flake at read %d", e.at) }
func (e *transientErr) Transient() bool { return true }

func (fr *flakeReader) Read(p []byte) (int, error) {
	*fr.reads++
	if fr.period > 0 && *fr.reads%fr.period == 0 {
		return 0, &transientErr{at: *fr.reads}
	}
	// Tiny reads force many Read calls so the fault schedule actually
	// triggers mid-file.
	if len(p) > 3 {
		p = p[:3]
	}
	return fr.r.Read(p)
}

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestIsTransient pins the classification contract: the sentinel and the
// Transient() interface match; ordinary errors do not.
func TestIsTransient(t *testing.T) {
	if !IsTransient(ErrTransient) {
		t.Error("ErrTransient itself not transient")
	}
	if !IsTransient(fmt.Errorf("wrapped: %w", ErrTransient)) {
		t.Error("wrapped sentinel not transient")
	}
	if !IsTransient(&transientErr{}) {
		t.Error("Transient() implementer not transient")
	}
	if IsTransient(errors.New("disk on fire")) {
		t.Error("plain error classified transient")
	}
	if IsTransient(os.ErrNotExist) {
		t.Error("os.ErrNotExist classified transient")
	}
	if IsTransient(nil) {
		t.Error("nil classified transient")
	}
}

// TestRetryReaderResumesAtOffset reads a file through a reader that faults
// every few reads and checks the recovered byte stream is exactly the file
// — nothing dropped, nothing duplicated.
func TestRetryReaderResumesAtOffset(t *testing.T) {
	content := "abcdefghijklmnopqrstuvwxyz0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	path := writeTemp(t, content)
	reads := 0
	r, err := openRetryReader(path, RetryPolicy{Attempts: 3},
		func(raw io.Reader) io.Reader { return &flakeReader{r: raw, reads: &reads, period: 4} })
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("read through faults: %v", err)
	}
	if string(got) != content {
		t.Fatalf("recovered stream diverged:\nwant %q\ngot  %q", content, got)
	}
	if r.Retries() == 0 {
		t.Fatal("no retries recorded — the fault schedule never fired")
	}
}

// TestRetryReaderHardErrorPropagates pins that non-transient errors are
// returned immediately, not retried.
func TestRetryReaderHardErrorPropagates(t *testing.T) {
	path := writeTemp(t, "some data")
	hard := errors.New("hard failure")
	calls := 0
	r, err := openRetryReader(path, RetryPolicy{Attempts: 5},
		func(raw io.Reader) io.Reader {
			return readerFunc(func(p []byte) (int, error) { calls++; return 0, hard })
		})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := io.ReadAll(r); !errors.Is(err, hard) {
		t.Fatalf("err = %v, want the hard failure", err)
	}
	if calls != 1 {
		t.Fatalf("hard error retried %d times", calls-1)
	}
}

// TestRetryReaderExhaustion pins the bounded-retry contract: a fault storm
// longer than the policy's budget surfaces the transient error.
func TestRetryReaderExhaustion(t *testing.T) {
	path := writeTemp(t, "some data")
	r, err := openRetryReader(path, RetryPolicy{Attempts: 2},
		func(raw io.Reader) io.Reader {
			return readerFunc(func(p []byte) (int, error) { return 0, &transientErr{} })
		})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var te *transientErr
	if _, err := io.ReadAll(r); !errors.As(err, &te) {
		t.Fatalf("err = %v, want exhausted transient error", err)
	}
}

type readerFunc func(p []byte) (int, error)

func (f readerFunc) Read(p []byte) (int, error) { return f(p) }

// TestRetryFullJitter pins the backoff scheme: each retry draws uniform in
// [0, cap] with the cap doubling from Backoff, through the injectable rand.
func TestRetryFullJitter(t *testing.T) {
	path := writeTemp(t, "some data")
	var draws []int64
	policy := RetryPolicy{
		Attempts: 3,
		Backoff:  4 * time.Millisecond,
		Rand: func(n int64) int64 {
			draws = append(draws, n)
			return 0 // draw zero so the test never actually sleeps
		},
	}
	r, err := openRetryReader(path, policy,
		func(raw io.Reader) io.Reader {
			return readerFunc(func(p []byte) (int, error) { return 0, &transientErr{} })
		})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := io.ReadAll(r); !IsTransient(err) {
		t.Fatalf("err = %v, want exhausted transient error", err)
	}
	// Three retries: caps 4ms, 8ms, 16ms; jitter draws over [0, cap] are
	// Int63n(cap+1).
	want := []int64{
		int64(4*time.Millisecond) + 1,
		int64(8*time.Millisecond) + 1,
		int64(16*time.Millisecond) + 1,
	}
	if len(draws) != len(want) {
		t.Fatalf("%d jitter draws (%v), want %d", len(draws), draws, len(want))
	}
	for i := range want {
		if draws[i] != want[i] {
			t.Fatalf("draw %d over %d, want %d (cap must double from Backoff)", i, draws[i], want[i])
		}
	}

	// Zero backoff must stay exactly zero: no draw, no sleep.
	draws = nil
	policy.Backoff = 0
	r2, err := openRetryReader(path, policy,
		func(raw io.Reader) io.Reader {
			return readerFunc(func(p []byte) (int, error) { return 0, &transientErr{} })
		})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	io.ReadAll(r2)
	if len(draws) != 0 {
		t.Fatalf("zero-backoff policy drew jitter: %v", draws)
	}
}

// TestFileSourceScanUnderFaults streams a basket file through a faulty
// reader and checks every transaction arrives exactly once, in order.
func TestFileSourceScanUnderFaults(t *testing.T) {
	var sb strings.Builder
	want := 200
	for i := 0; i < want; i++ {
		fmt.Fprintf(&sb, "item%03d,common\n", i)
	}
	path := writeTemp(t, sb.String())
	fs, err := OpenFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	reads := 0
	fs.SetReaderWrapper(func(raw io.Reader) io.Reader {
		return &flakeReader{r: raw, reads: &reads, period: 5}
	})
	fs.SetRetry(RetryPolicy{Attempts: 4})
	got := 0
	err = fs.Scan(func(tx itemset.Set) error {
		if len(tx) != 2 {
			return fmt.Errorf("transaction %d has %d items", got, len(tx))
		}
		got++
		return nil
	})
	if err != nil {
		t.Fatalf("scan under faults: %v", err)
	}
	if got != want {
		t.Fatalf("delivered %d transactions, want %d", got, want)
	}
}
