// Package txdb implements the transactional-database substrate: an in-memory
// transaction store with a shared item dictionary, the basket text format,
// a streaming file-backed source for disk-resident counting (the paper's
// engines count "by sequential scans of disk-resident input data"),
// materialized per-level views that map leaf items to their taxonomy
// generalizations, and transaction sharding — Partition for splitting an
// in-memory database into contiguous shards and ShardedSource for composing
// per-shard sources (including disk-resident FileSources, the out-of-core
// layout) — the data-partitioning layer behind the engine's shard-parallel
// counting.
package txdb

import (
	"fmt"
	"math/rand"
	"slices"

	"github.com/flipper-mining/flipper/internal/dict"
	"github.com/flipper-mining/flipper/internal/itemset"
	"github.com/flipper-mining/flipper/internal/taxonomy"
)

// Source is a replayable stream of transactions. The mining engine only
// requires sequential passes, so massive inputs can stay on disk.
type Source interface {
	// Scan invokes fn once per transaction, in a stable order. The itemset
	// passed to fn is only valid during the call; clone to retain.
	Scan(fn func(tx itemset.Set) error) error
	// Len returns the number of transactions.
	Len() int
	// Dict returns the dictionary resolving the item IDs used in Scan.
	Dict() *dict.Dictionary
}

// DB is an in-memory transaction database over leaf items. It implements
// Source. The zero value is not usable; construct with New.
type DB struct {
	dict *dict.Dictionary
	tx   []itemset.Set
}

// New returns an empty database writing IDs through d (nil for a fresh
// dictionary).
func New(d *dict.Dictionary) *DB {
	if d == nil {
		d = dict.New()
	}
	return &DB{dict: d}
}

// Dict returns the database's dictionary.
func (db *DB) Dict() *dict.Dictionary { return db.dict }

// Len returns the number of transactions.
func (db *DB) Len() int { return len(db.tx) }

// Add appends a transaction. The input is canonicalized (sorted,
// deduplicated); empty transactions are kept, matching the paper's market
// baskets which may be empty after filtering.
func (db *DB) Add(items ...itemset.ID) {
	db.tx = append(db.tx, itemset.New(items...))
}

// AddSet appends an already-canonical transaction without copying.
func (db *DB) AddSet(s itemset.Set) {
	db.tx = append(db.tx, s)
}

// AddNames appends a transaction given item names, assigning IDs as needed.
func (db *DB) AddNames(names ...string) {
	ids := make([]itemset.ID, len(names))
	for i, n := range names {
		ids[i] = db.dict.ID(n)
	}
	db.Add(ids...)
}

// Tx returns transaction i. The returned set is owned by the database.
func (db *DB) Tx(i int) itemset.Set { return db.tx[i] }

// Scan implements Source.
func (db *DB) Scan(fn func(tx itemset.Set) error) error {
	for _, t := range db.tx {
		if err := fn(t); err != nil {
			return err
		}
	}
	return nil
}

// Shuffle permutes transaction order deterministically from seed; used by
// generators to avoid artificial ordering artifacts.
func (db *DB) Shuffle(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(db.tx), func(i, j int) { db.tx[i], db.tx[j] = db.tx[j], db.tx[i] })
}

// MapLeaves rewrites every transaction through the leaf mapping produced by
// taxonomy.Tree.Truncate: items present in m are replaced, items absent from
// m are dropped. A new database sharing the dictionary is returned.
func (db *DB) MapLeaves(m map[itemset.ID]itemset.ID) *DB {
	out := New(db.dict)
	for _, t := range db.tx {
		mapped := make([]itemset.ID, 0, len(t))
		for _, id := range t {
			if nid, ok := m[id]; ok {
				mapped = append(mapped, nid)
			}
		}
		out.Add(mapped...)
	}
	return out
}

// Stats summarizes a database for experiment logs.
type Stats struct {
	Transactions  int
	DistinctItems int
	TotalItems    int64
	MaxWidth      int
	AvgWidth      float64
}

// ComputeStats scans the source once and reports summary statistics.
func ComputeStats(src Source) (Stats, error) {
	var s Stats
	distinct := make(map[itemset.ID]struct{})
	err := src.Scan(func(tx itemset.Set) error {
		s.Transactions++
		s.TotalItems += int64(len(tx))
		if len(tx) > s.MaxWidth {
			s.MaxWidth = len(tx)
		}
		for _, id := range tx {
			distinct[id] = struct{}{}
		}
		return nil
	})
	if err != nil {
		return Stats{}, err
	}
	s.DistinctItems = len(distinct)
	if s.Transactions > 0 {
		s.AvgWidth = float64(s.TotalItems) / float64(s.Transactions)
	}
	return s, nil
}

func (s Stats) String() string {
	return fmt.Sprintf("%d transactions, %d distinct items, avg width %.2f, max width %d",
		s.Transactions, s.DistinctItems, s.AvgWidth, s.MaxWidth)
}

// LevelView is a database materialized at one abstraction level: every leaf
// item replaced by its level-h ancestor, duplicates merged. It also carries
// the level's single-item supports, which the engine needs both for
// candidate filtering and for every correlation computation at the level.
type LevelView struct {
	Level   int
	Tx      []itemset.Set
	Support map[itemset.ID]int64
	// MaxWidth is the widest generalized transaction, bounding the itemset
	// size k worth exploring at this level.
	MaxWidth int
}

// Materialize builds the level-h view of src under tree. Items without an
// ancestor at level h (shallow leaves of an unextended, unbalanced tree) are
// dropped from the view, mirroring the paper's requirement that the user
// resolves missing generalizations (taxonomy.Tree.Extend is variant B).
func Materialize(src Source, tree *taxonomy.Tree, h int) (*LevelView, error) {
	if h < 1 || h > tree.Height() {
		return nil, fmt.Errorf("txdb: level %d out of range 1..%d", h, tree.Height())
	}
	lv := &LevelView{Level: h, Support: make(map[itemset.ID]int64)}
	buf := make([]itemset.ID, 0, 32)
	err := src.Scan(func(tx itemset.Set) error {
		buf = buf[:0]
		for _, id := range tx {
			if a, ok := tree.AncestorAt(id, h); ok {
				buf = append(buf, a)
			}
		}
		g := itemset.New(buf...)
		lv.Tx = append(lv.Tx, g)
		if len(g) > lv.MaxWidth {
			lv.MaxWidth = len(g)
		}
		for _, id := range g {
			lv.Support[id]++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return lv, nil
}

// WeightedTx is a distinct transaction with its multiplicity. Generalizing
// to a high abstraction level collapses many raw transactions onto few
// distinct item combinations, so counting over the deduplicated view is the
// single most effective optimization for the upper rows of the search table.
type WeightedTx struct {
	Items  itemset.Set
	Weight int64
}

// Dedup merges identical transactions of the view into weighted ones,
// ordered deterministically in lexicographic itemset order (the same order
// the former key-string sort produced). Sorting references and merging
// adjacent runs avoids the per-transaction key allocations of the old
// map[string] implementation — this runs once per level on every mine.
func (lv *LevelView) Dedup() []WeightedTx {
	if len(lv.Tx) == 0 {
		return nil
	}
	sorted := make([]itemset.Set, len(lv.Tx))
	copy(sorted, lv.Tx)
	slices.SortFunc(sorted, itemset.Compare)
	out := make([]WeightedTx, 0, len(sorted))
	for _, tx := range sorted {
		if n := len(out); n > 0 && out[n-1].Items.Equal(tx) {
			out[n-1].Weight++
			continue
		}
		out = append(out, WeightedTx{Items: tx, Weight: 1})
	}
	return out
}

// SupportOf returns the level view's support for an itemset by scanning the
// materialized transactions; a reference implementation used by tests and by
// the harness to verify engine counts.
func (lv *LevelView) SupportOf(s itemset.Set) int64 {
	var sup int64
	for _, tx := range lv.Tx {
		if s.SubsetOf(tx) {
			sup++
		}
	}
	return sup
}
