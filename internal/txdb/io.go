package txdb

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"github.com/flipper-mining/flipper/internal/dict"
	"github.com/flipper-mining/flipper/internal/itemset"
)

// The basket text format is one transaction per line, item names separated
// by commas (names may contain spaces, e.g. "canned beer"). Blank lines are
// empty transactions unless they are comments ('#' prefix); a lone "-"
// denotes an explicitly empty transaction for round-trip fidelity.

// ReadBaskets parses the basket format from r into an in-memory DB, writing
// IDs through d (nil for a fresh dictionary).
func ReadBaskets(r io.Reader, d *dict.Dictionary) (*DB, error) {
	db := New(d)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "#") {
			continue
		}
		if line == "" || line == "-" {
			db.Add()
			continue
		}
		parts := strings.Split(line, ",")
		ids := make([]itemset.ID, 0, len(parts))
		for _, p := range parts {
			name := strings.TrimSpace(p)
			if name == "" {
				return nil, fmt.Errorf("txdb: line %d: empty item name", lineNo)
			}
			ids = append(ids, db.dict.ID(name))
		}
		db.Add(ids...)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("txdb: read: %w", err)
	}
	return db, nil
}

// WriteBaskets serializes the database in the basket format. Item names
// containing the format's structural characters (commas, newlines, carriage
// returns, or a leading '#'/'-') cannot round-trip and are rejected.
func (db *DB) WriteBaskets(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, tx := range db.tx {
		if len(tx) == 0 {
			if _, err := bw.WriteString("-\n"); err != nil {
				return err
			}
			continue
		}
		for i, id := range tx {
			name := db.dict.Name(id)
			if err := validateBasketName(name); err != nil {
				return err
			}
			if i > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(name); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// validateBasketName rejects item names that the basket text format cannot
// represent unambiguously.
func validateBasketName(name string) error {
	if name == "" || name == "-" {
		return fmt.Errorf("txdb: item name %q cannot round-trip the basket format", name)
	}
	if strings.ContainsAny(name, ",\n\r") {
		return fmt.Errorf("txdb: item name %q contains a basket separator", name)
	}
	if strings.HasPrefix(strings.TrimSpace(name), "#") {
		return fmt.Errorf("txdb: item name %q would parse as a comment", name)
	}
	if name != strings.TrimSpace(name) {
		return fmt.Errorf("txdb: item name %q has surrounding whitespace", name)
	}
	return nil
}

// FileSource is a Source that re-reads a basket file on every Scan, keeping
// memory usage independent of database size (the disk-resident mode of the
// paper's experiments). The dictionary is populated on the first pass and
// then frozen: later passes must not meet unknown items.
//
// Scans read through a resumable retry layer (see retry.go): a transient
// read fault mid-pass reopens the file at the first unconsumed byte instead
// of failing the mine, delivering every transaction exactly once.
type FileSource struct {
	path  string
	dict  *dict.Dictionary
	n     int
	init  bool
	retry RetryPolicy
	wrap  ReaderWrapper
}

// OpenFile creates a FileSource over path with dictionary d (nil for fresh).
// The file is validated (and the dictionary and transaction count populated)
// by one immediate pass. The source starts with DefaultRetry.
func OpenFile(path string, d *dict.Dictionary) (*FileSource, error) {
	if d == nil {
		d = dict.New()
	}
	fs := &FileSource{path: path, dict: d, retry: DefaultRetry}
	if err := fs.Scan(func(itemset.Set) error { return nil }); err != nil {
		return nil, err
	}
	fs.init = true
	return fs, nil
}

// SetRetry replaces the source's transient-read recovery policy (a zero
// policy disables recovery). Not safe to call concurrently with Scan.
func (fs *FileSource) SetRetry(p RetryPolicy) { fs.retry = p }

// SetReaderWrapper installs a decorator applied to the raw file reader of
// every (re)open — the fault-injection hook. Pass nil to remove. Not safe
// to call concurrently with Scan.
func (fs *FileSource) SetReaderWrapper(w ReaderWrapper) { fs.wrap = w }

// Dict returns the source's dictionary.
func (fs *FileSource) Dict() *dict.Dictionary { return fs.dict }

// Len returns the number of transactions counted on the first pass.
func (fs *FileSource) Len() int { return fs.n }

// Scan implements Source by streaming the file through the retry layer.
func (fs *FileSource) Scan(fn func(tx itemset.Set) error) error {
	f, err := openRetryReader(fs.path, fs.retry, fs.wrap)
	if err != nil {
		return fmt.Errorf("txdb: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	count := 0
	var ids []itemset.ID
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "#") {
			continue
		}
		ids = ids[:0]
		if line != "" && line != "-" {
			for _, p := range strings.Split(line, ",") {
				name := strings.TrimSpace(p)
				if name == "" {
					return fmt.Errorf("txdb: %s: empty item name", fs.path)
				}
				if fs.init {
					id, ok := fs.dict.Lookup(name)
					if !ok {
						return fmt.Errorf("txdb: %s: item %q appeared after the first pass", fs.path, name)
					}
					ids = append(ids, id)
				} else {
					ids = append(ids, fs.dict.ID(name))
				}
			}
		}
		count++
		if err := fn(itemset.New(ids...)); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("txdb: read: %w", err)
	}
	if !fs.init {
		fs.n = count
	}
	return nil
}
