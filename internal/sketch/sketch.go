// Package sketch implements per-item KMV/bottom-k signatures over
// transaction IDs, with one-sided support bounds for item combinations.
//
// A Level holds one signature per item of one taxonomy level: the k smallest
// 64-bit hashes of the item's transaction IDs, the saturation threshold (the
// k-th smallest hash, or MaxUint64 while the item has fewer than k
// transactions), and the item's exact transaction count. From those
// signatures, Bound brackets the support of any item combination — the size
// of the intersection of the items' transaction sets — without touching the
// transaction data:
//
//   - Lo is exact over the region below t = min over the items of their
//     saturation thresholds: the hash is a bijection on uint64, so a hash
//     below t appears in every item's signature iff its transaction is in
//     the true intersection. Lo therefore never exceeds the true support.
//   - Hi adds the most optimistic count of the unseen region: at most
//     min_i(total_i − below_i(t)) intersection transactions can hash ≥ t.
//     Hi therefore never falls below the true support.
//   - Est is the standard KMV point estimate Lo·2⁶⁴/t, clamped into
//     [Lo, Hi]. When no signature is saturated, t is MaxUint64, every
//     transaction of every item is in its signature, and Lo = Est = Hi is
//     the exact support — the sketch degrades into an exact oracle.
//
// The engine's anchored top-K search uses Hi to skip exact counting for
// candidates that cannot reach the frequency threshold or the current
// top-K heap (the one-sided guarantee the pruner depends on), and Est for
// the best-effort mode's recall/latency trade.
package sketch

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// DefaultK is the per-item signature size used when a configuration leaves
// the sketch size unset: 8 KiB of hashes per item, giving relative support
// error around 1/√k ≈ 3% on saturated items.
const DefaultK = 1024

// Bound brackets the support of one item combination: the true support s
// always satisfies Lo ≤ s ≤ Hi, and Lo ≤ Est ≤ Hi.
type Bound struct {
	Lo  int64
	Hi  int64
	Est int64
}

// Exact reports whether the bracket pins the support to a single value.
func (b Bound) Exact() bool { return b.Lo == b.Hi }

// Hash is the sketch's 64-bit mixer (the splitmix64 finalizer). It is a
// bijection on uint64 — every step is invertible — which is what makes Lo
// exact below the saturation threshold: distinct transactions never collide.
func Hash(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// sig is one item's signature.
type sig struct {
	hashes []uint64 // ascending; the item's bottom-k transaction hashes
	kth    uint64   // saturation threshold: hashes[k-1], or MaxUint64 unsaturated
	total  int64    // exact number of transactions observed for the item
}

// Level holds the signatures of one taxonomy level, keyed by item ID.
type Level struct {
	k    int
	sigs map[int32]*sig
}

// K returns the per-item signature size.
func (l *Level) K() int { return l.k }

// Items returns the number of items carrying a signature.
func (l *Level) Items() int { return len(l.sigs) }

// Total returns the exact transaction count of one item (0 for unknown items).
func (l *Level) Total(item int32) int64 {
	if s, ok := l.sigs[item]; ok {
		return s.total
	}
	return 0
}

// Builder accumulates transaction keys per item and produces a Level. Keys
// must be unique per item (a transaction observed twice for the same item
// inflates total and breaks the bounds); across items the same key naturally
// recurs — that is what intersection bounding is about.
type Builder struct {
	k    int
	sigs map[int32]*builderSig
}

// builderSig keeps an item's bottom-k hashes as a max-heap while building,
// so memory stays O(k) per item however many transactions stream through.
type builderSig struct {
	heap  []uint64 // max-heap once len == k
	total int64
}

// NewBuilder returns a builder producing signatures of size k (DefaultK
// when k ≤ 0).
func NewBuilder(k int) *Builder {
	if k <= 0 {
		k = DefaultK
	}
	return &Builder{k: k, sigs: make(map[int32]*builderSig)}
}

// Observe records that item occurs in the transaction identified by key.
func (b *Builder) Observe(item int32, key uint64) {
	s := b.sigs[item]
	if s == nil {
		s = &builderSig{}
		b.sigs[item] = s
	}
	s.total++
	h := Hash(key)
	if len(s.heap) < b.k {
		s.heap = append(s.heap, h)
		siftUp(s.heap, len(s.heap)-1)
		return
	}
	if h < s.heap[0] {
		s.heap[0] = h
		siftDown(s.heap, 0)
	}
}

func siftUp(h []uint64, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h[p] >= h[i] {
			return
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func siftDown(h []uint64, i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && h[l] > h[big] {
			big = l
		}
		if r < n && h[r] > h[big] {
			big = r
		}
		if big == i {
			return
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
}

// Finish freezes the builder into a Level. The builder must not be used
// afterwards.
func (b *Builder) Finish() *Level {
	l := &Level{k: b.k, sigs: make(map[int32]*sig, len(b.sigs))}
	for item, bs := range b.sigs {
		sort.Slice(bs.heap, func(i, j int) bool { return bs.heap[i] < bs.heap[j] })
		s := &sig{hashes: bs.heap, total: bs.total, kth: math.MaxUint64}
		if len(bs.heap) == b.k {
			s.kth = bs.heap[b.k-1]
		}
		l.sigs[item] = s
	}
	b.sigs = nil
	return l
}

// Bound brackets the support of the item combination — the number of
// transactions containing every item. An item without a signature has no
// transactions, so the bound collapses to {0, 0, 0}. The one-sided
// guarantees (Lo ≤ true support ≤ Hi) are what the engine's pruner relies
// on; see the package comment for the argument.
func (l *Level) Bound(items []int32) Bound {
	if len(items) == 0 {
		return Bound{}
	}
	sigs := make([]*sig, len(items))
	t := uint64(math.MaxUint64)
	for i, item := range items {
		s, ok := l.sigs[item]
		if !ok || s.total == 0 {
			return Bound{}
		}
		sigs[i] = s
		if s.kth < t {
			t = s.kth
		}
	}
	// below[i] = how many of item i's hashes fall strictly below t. Because
	// t ≤ every kth, the region below t is fully observed for every item.
	base := 0
	var slack int64 = math.MaxInt64
	below := make([]int, len(sigs))
	for i, s := range sigs {
		below[i] = countBelow(s.hashes, t)
		if sl := s.total - int64(below[i]); sl < slack {
			slack = sl
		}
		if below[i] < below[base] {
			base = i
		}
	}
	// Lo: hashes below t present in every signature. Iterate the sparsest
	// signature, binary-search the rest.
	var lo int64
	for _, h := range sigs[base].hashes[:below[base]] {
		in := true
		for i, s := range sigs {
			if i == base {
				continue
			}
			if !contains(s.hashes[:below[i]], h) {
				in = false
				break
			}
		}
		if in {
			lo++
		}
	}
	hi := lo + slack
	est := lo
	if t != math.MaxUint64 && t != 0 {
		// KMV: the observed region covers a t/2⁶⁴ fraction of the hash
		// space; intersection members are uniform over it. The estimate is
		// clamped into [Lo, Hi] in float space, before a conversion could
		// overflow int64.
		e := float64(lo) * (float64(math.MaxUint64) / float64(t))
		switch {
		case e >= float64(hi):
			est = hi
		case int64(e) > est:
			est = int64(e)
		}
	}
	if est > hi {
		est = hi
	}
	return Bound{Lo: lo, Hi: hi, Est: est}
}

// countBelow returns how many of the ascending hashes are strictly below t.
func countBelow(hashes []uint64, t uint64) int {
	return sort.Search(len(hashes), func(i int) bool { return hashes[i] >= t })
}

// contains binary-searches h in the ascending slice.
func contains(hashes []uint64, h uint64) bool {
	i := sort.Search(len(hashes), func(j int) bool { return hashes[j] >= h })
	return i < len(hashes) && hashes[i] == h
}

// Set is a full per-dataset sketch: one Level per taxonomy level (index 0
// unused, matching the engine's level indexing), the signature size, and a
// fingerprint of the data the sketch was built from. The fingerprint guards
// warm reuse: a Set loaded from disk is only trusted when its fingerprint
// matches the one recomputed from the live dataset.
type Set struct {
	K           int
	Fingerprint uint64
	Levels      []*Level
}

// Level returns the sketch of taxonomy level h, or nil when absent.
func (s *Set) Level(h int) *Level {
	if h < 0 || h >= len(s.Levels) {
		return nil
	}
	return s.Levels[h]
}

// Serialization: a small versioned binary format so warm engines reload
// sketches instead of re-hashing every tid list.
//
//	magic "FLSKETCH" | version u32 | k u32 | fingerprint u64 | nlevels u32
//	per level: present u8; when present:
//	  nitems u32, then per item (ascending id):
//	    id i32 | total i64 | kth u64 | nhashes u32 | nhashes × u64

var magic = [8]byte{'F', 'L', 'S', 'K', 'E', 'T', 'C', 'H'}

const formatVersion = 1

// Encode serializes the set. Item order is canonical (ascending ID), so
// identical sets produce identical bytes.
func (s *Set) Encode(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.write(magic[:])
	bw.u32(formatVersion)
	bw.u32(uint32(s.K))
	bw.u64(s.Fingerprint)
	bw.u32(uint32(len(s.Levels)))
	for _, l := range s.Levels {
		if l == nil {
			bw.write([]byte{0})
			continue
		}
		bw.write([]byte{1})
		bw.u32(uint32(len(l.sigs)))
		ids := make([]int32, 0, len(l.sigs))
		for id := range l.sigs {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			sg := l.sigs[id]
			bw.u32(uint32(id))
			bw.u64(uint64(sg.total))
			bw.u64(sg.kth)
			bw.u32(uint32(len(sg.hashes)))
			for _, h := range sg.hashes {
				bw.u64(h)
			}
		}
	}
	return bw.err
}

// Read deserializes a set written by Encode.
func Read(r io.Reader) (*Set, error) {
	br := &errReader{r: r}
	var m [8]byte
	br.read(m[:])
	if br.err != nil {
		return nil, fmt.Errorf("sketch: read header: %w", br.err)
	}
	if m != magic {
		return nil, fmt.Errorf("sketch: bad magic %q", m[:])
	}
	version := br.u32()
	if br.err == nil && version != formatVersion {
		return nil, fmt.Errorf("sketch: unsupported version %d", version)
	}
	k := int(br.u32())
	fp := br.u64()
	nlevels := int(br.u32())
	if br.err != nil {
		return nil, fmt.Errorf("sketch: read header: %w", br.err)
	}
	if k <= 0 || nlevels < 0 || nlevels > 1<<16 {
		return nil, fmt.Errorf("sketch: implausible header (k=%d, levels=%d)", k, nlevels)
	}
	s := &Set{K: k, Fingerprint: fp, Levels: make([]*Level, nlevels)}
	for h := 0; h < nlevels; h++ {
		var present [1]byte
		br.read(present[:])
		if br.err != nil {
			return nil, fmt.Errorf("sketch: level %d: %w", h, br.err)
		}
		if present[0] == 0 {
			continue
		}
		nitems := int(br.u32())
		if br.err != nil || nitems < 0 {
			return nil, fmt.Errorf("sketch: level %d: truncated", h)
		}
		l := &Level{k: k, sigs: make(map[int32]*sig, nitems)}
		for i := 0; i < nitems; i++ {
			id := int32(br.u32())
			total := int64(br.u64())
			kth := br.u64()
			n := int(br.u32())
			if br.err != nil || n < 0 || n > k {
				return nil, fmt.Errorf("sketch: level %d item %d: truncated or oversized", h, i)
			}
			hashes := make([]uint64, n)
			for j := range hashes {
				hashes[j] = br.u64()
			}
			if br.err != nil {
				return nil, fmt.Errorf("sketch: level %d item %d: %w", h, i, br.err)
			}
			l.sigs[id] = &sig{hashes: hashes, kth: kth, total: total}
		}
		s.Levels[h] = l
	}
	return s, nil
}

// SaveFile writes the set to path via a temp file + rename, so a crashed
// writer never leaves a truncated sketch a later engine would half-read.
func (s *Set) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := s.Encode(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a set from path.
func LoadFile(path string) (*Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

type errWriter struct {
	w   io.Writer
	err error
	buf [8]byte
}

func (w *errWriter) write(b []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(b)
}

func (w *errWriter) u32(v uint32) {
	binary.LittleEndian.PutUint32(w.buf[:4], v)
	w.write(w.buf[:4])
}

func (w *errWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:8], v)
	w.write(w.buf[:8])
}

type errReader struct {
	r   io.Reader
	err error
	buf [8]byte
}

func (r *errReader) read(b []byte) {
	if r.err != nil {
		return
	}
	_, r.err = io.ReadFull(r.r, b)
}

func (r *errReader) u32() uint32 {
	r.read(r.buf[:4])
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(r.buf[:4])
}

func (r *errReader) u64() uint64 {
	r.read(r.buf[:8])
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(r.buf[:8])
}
