package sketch

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// refSupport is the brute-force reference: the size of the intersection of
// the items' transaction sets.
func refSupport(lists map[int32][]uint64, items []int32) int64 {
	if len(items) == 0 {
		return 0
	}
	count := make(map[uint64]int)
	for _, item := range items {
		seen := make(map[uint64]bool)
		for _, tid := range lists[item] {
			if !seen[tid] {
				seen[tid] = true
				count[tid]++
			}
		}
	}
	var n int64
	for _, c := range count {
		if c == len(items) {
			n++
		}
	}
	return n
}

// buildLevel runs every list through a builder of size k.
func buildLevel(lists map[int32][]uint64, k int) *Level {
	b := NewBuilder(k)
	for item, tids := range lists {
		seen := make(map[uint64]bool)
		for _, tid := range tids {
			if seen[tid] {
				continue
			}
			seen[tid] = true
			b.Observe(item, tid)
		}
	}
	return b.Finish()
}

// randomLists draws a random per-item tid-list family over a shared universe,
// so intersections are non-trivial.
func randomLists(rng *rand.Rand) map[int32][]uint64 {
	universe := rng.Intn(400) + 1
	items := rng.Intn(6) + 1
	lists := make(map[int32][]uint64)
	for i := 0; i < items; i++ {
		n := rng.Intn(universe + 1)
		if i == 0 && n == 0 {
			n = 1 // at least one non-empty list, so probes always exist
		}
		for j := 0; j < n; j++ {
			lists[int32(i)] = append(lists[int32(i)], uint64(rng.Intn(universe)))
		}
	}
	return lists
}

func checkBound(t *testing.T, lists map[int32][]uint64, items []int32, k int) {
	t.Helper()
	l := buildLevel(lists, k)
	got := l.Bound(items)
	want := refSupport(lists, items)
	if got.Lo > want {
		t.Fatalf("k=%d items=%v: Lo %d above true support %d", k, items, got.Lo, want)
	}
	if got.Hi < want {
		t.Fatalf("k=%d items=%v: Hi %d below true support %d", k, items, got.Hi, want)
	}
	if got.Est < got.Lo || got.Est > got.Hi {
		t.Fatalf("k=%d items=%v: Est %d outside [%d, %d]", k, items, got.Est, got.Lo, got.Hi)
	}
}

// TestBoundSoundProperty is the pruner's invariant over random data: the
// sketch bracket always contains the true support, for saturated and
// unsaturated signature sizes alike.
func TestBoundSoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		lists := randomLists(rng)
		k := rng.Intn(64) + 1
		var all []int32
		for item := range lists {
			all = append(all, item)
		}
		for probe := 0; probe < 8; probe++ {
			items := all[:rng.Intn(len(all))+1]
			checkBound(t, lists, items, k)
		}
	}
}

// TestBoundExactWhenUnsaturated: with k at least as large as every list, no
// signature saturates and the sketch is an exact oracle (Lo == Hi == truth).
func TestBoundExactWhenUnsaturated(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		lists := randomLists(rng)
		maxLen := 0
		var all []int32
		for item, tids := range lists {
			all = append(all, item)
			if len(tids) > maxLen {
				maxLen = len(tids)
			}
		}
		l := buildLevel(lists, maxLen+1)
		items := all[:rng.Intn(len(all))+1]
		got := l.Bound(items)
		want := refSupport(lists, items)
		if got.Lo != want || got.Hi != want || got.Est != want {
			t.Fatalf("unsaturated sketch not exact: got %+v want %d", got, want)
		}
		if !got.Exact() {
			t.Fatalf("unsaturated bound not Exact(): %+v", got)
		}
	}
}

func TestBoundEdgeCases(t *testing.T) {
	l := buildLevel(map[int32][]uint64{1: {10, 20, 30}, 2: {20, 30}}, 8)
	if got := l.Bound(nil); got != (Bound{}) {
		t.Fatalf("empty combination: got %+v", got)
	}
	if got := l.Bound([]int32{1, 99}); got != (Bound{}) {
		t.Fatalf("unknown item: got %+v, want zero bound", got)
	}
	if got := l.Bound([]int32{1, 2}); got.Lo != 2 || got.Hi != 2 {
		t.Fatalf("tiny exact intersection: got %+v, want {2 2 2}", got)
	}
	if got := l.Total(1); got != 3 {
		t.Fatalf("Total(1) = %d, want 3", got)
	}
	if got := l.Total(99); got != 0 {
		t.Fatalf("Total(99) = %d, want 0", got)
	}
	if l.Items() != 2 {
		t.Fatalf("Items() = %d, want 2", l.Items())
	}
	if l.K() != 8 {
		t.Fatalf("K() = %d, want 8", l.K())
	}
}

// TestHashBijective spot-checks injectivity of the mixer on a dense range —
// a collision would break the exactness of Lo.
func TestHashBijective(t *testing.T) {
	seen := make(map[uint64]uint64, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		h := Hash(i)
		if prev, dup := seen[h]; dup {
			t.Fatalf("Hash collision: Hash(%d) == Hash(%d)", i, prev)
		}
		seen[h] = i
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	lists := randomLists(rng)
	set := &Set{
		K:           16,
		Fingerprint: 0xdeadbeefcafe,
		Levels:      []*Level{nil, buildLevel(lists, 16), buildLevel(lists, 16)},
	}
	var buf bytes.Buffer
	if err := set.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.K != set.K || got.Fingerprint != set.Fingerprint || len(got.Levels) != len(set.Levels) {
		t.Fatalf("header mismatch: %+v vs %+v", got, set)
	}
	if got.Level(0) != nil {
		t.Fatal("absent level resurrected")
	}
	if got.Level(99) != nil {
		t.Fatal("out-of-range level not nil")
	}
	var all []int32
	for item := range lists {
		all = append(all, item)
	}
	for h := 1; h <= 2; h++ {
		for probe := 0; probe < 8; probe++ {
			items := all[:rng.Intn(len(all))+1]
			a, b := set.Levels[h].Bound(items), got.Level(h).Bound(items)
			if a != b {
				t.Fatalf("level %d bound drifted through serialization: %+v vs %+v", h, a, b)
			}
		}
	}
	// Canonical bytes: re-serializing the loaded set reproduces the file.
	var buf2 bytes.Buffer
	if err := got.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("serialization not canonical: round-trip changed bytes")
	}
}

func TestSerializationRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOTASKTCHxxxxxxxxxxxxxxxxxxx"),
		"truncated": append([]byte("FLSKETCH"), 1, 0, 0),
	}
	for name, b := range cases {
		if _, err := Read(bytes.NewReader(b)); err == nil {
			t.Fatalf("%s: Read accepted garbage", name)
		}
	}
	// Version from the future.
	var buf bytes.Buffer
	set := &Set{K: 4, Levels: []*Level{nil}}
	if err := set.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[8] = 99 // version byte
	if _, err := Read(bytes.NewReader(b)); err == nil {
		t.Fatal("Read accepted an unsupported version")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sketches.bin")
	lists := map[int32][]uint64{3: {1, 2, 3}, 7: {2, 3, 4}}
	set := &Set{K: 8, Fingerprint: 42, Levels: []*Level{nil, buildLevel(lists, 8)}}
	if err := set.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != 42 {
		t.Fatalf("fingerprint %d, want 42", got.Fingerprint)
	}
	if b := got.Level(1).Bound([]int32{3, 7}); b.Lo != 2 || b.Hi != 2 {
		t.Fatalf("loaded bound %+v, want exact 2", b)
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.bin")); err == nil {
		t.Fatal("LoadFile invented a missing file")
	}
}

// FuzzSketchBoundSound fuzzes the pruner invariant: however the lists and
// the probed combination are drawn, the sketch bracket contains the true
// support computed by the brute-force reference.
func FuzzSketchBoundSound(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(4), uint8(2))
	f.Add([]byte{0}, uint8(1), uint8(1))
	f.Add(bytes.Repeat([]byte{9, 1, 200}, 50), uint8(3), uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, kByte, nItems uint8) {
		k := int(kByte%64) + 1
		items := int(nItems%5) + 1
		// Decode data as a stream of (item, tid) observations.
		lists := make(map[int32][]uint64)
		for i := 0; i+1 < len(data); i += 2 {
			item := int32(data[i] % uint8(items))
			tid := uint64(data[i+1])
			lists[item] = append(lists[item], tid)
		}
		if len(lists) == 0 {
			return
		}
		l := buildLevel(lists, k)
		var probe []int32
		for item := range lists {
			probe = append(probe, item)
		}
		got := l.Bound(probe)
		want := refSupport(lists, probe)
		if got.Lo > want || got.Hi < want {
			t.Fatalf("bound [%d, %d] excludes true support %d (k=%d, items=%v)",
				got.Lo, got.Hi, want, k, probe)
		}
		if got.Est < got.Lo || got.Est > got.Hi {
			t.Fatalf("Est %d outside [%d, %d]", got.Est, got.Lo, got.Hi)
		}
	})
}

func TestBoundUnsaturatedThresholdIsMax(t *testing.T) {
	// A single unsaturated item: kth must be MaxUint64 and the bound exact.
	b := NewBuilder(100)
	for i := uint64(0); i < 10; i++ {
		b.Observe(1, i)
	}
	l := b.Finish()
	if l.sigs[1].kth != math.MaxUint64 {
		t.Fatalf("unsaturated kth = %d, want MaxUint64", l.sigs[1].kth)
	}
	if got := l.Bound([]int32{1}); got.Lo != 10 || got.Hi != 10 || got.Est != 10 {
		t.Fatalf("single-item bound %+v, want exact 10", got)
	}
}
