package itemset

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewCanonicalizes(t *testing.T) {
	cases := []struct {
		in   []ID
		want Set
	}{
		{nil, nil},
		{[]ID{5}, Set{5}},
		{[]ID{3, 1, 2}, Set{1, 2, 3}},
		{[]ID{4, 4, 4}, Set{4}},
		{[]ID{9, 1, 9, 1, 5}, Set{1, 5, 9}},
	}
	for _, c := range cases {
		got := New(c.in...)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("New(%v) = %v, want %v", c.in, got, c.want)
		}
		if !got.IsCanonical() {
			t.Errorf("New(%v) not canonical: %v", c.in, got)
		}
	}
}

func TestIsCanonical(t *testing.T) {
	if !(Set{}).IsCanonical() {
		t.Error("empty set should be canonical")
	}
	if !(Set{1, 2, 3}).IsCanonical() {
		t.Error("{1,2,3} should be canonical")
	}
	if (Set{1, 1, 3}).IsCanonical() {
		t.Error("{1,1,3} must not be canonical")
	}
	if (Set{3, 2}).IsCanonical() {
		t.Error("{3,2} must not be canonical")
	}
}

func TestContainsAndIndexOf(t *testing.T) {
	s := New(2, 4, 8, 16)
	for i, id := range s {
		if !s.Contains(id) {
			t.Errorf("Contains(%d) = false", id)
		}
		if got := s.IndexOf(id); got != i {
			t.Errorf("IndexOf(%d) = %d, want %d", id, got, i)
		}
	}
	for _, id := range []ID{1, 3, 5, 17} {
		if s.Contains(id) {
			t.Errorf("Contains(%d) = true for absent item", id)
		}
		if s.IndexOf(id) != -1 {
			t.Errorf("IndexOf(%d) != -1 for absent item", id)
		}
	}
}

func TestSubsetOf(t *testing.T) {
	s := New(1, 3, 5)
	cases := []struct {
		sub  Set
		want bool
	}{
		{New(), true},
		{New(1), true},
		{New(3, 5), true},
		{New(1, 3, 5), true},
		{New(1, 2), false},
		{New(1, 3, 5, 7), false},
		{New(6), false},
	}
	for _, c := range cases {
		if got := c.sub.SubsetOf(s); got != c.want {
			t.Errorf("%v.SubsetOf(%v) = %v, want %v", c.sub, s, got, c.want)
		}
	}
}

func TestWithoutAndInsert(t *testing.T) {
	s := New(1, 3, 5)
	if got := s.Without(1); !got.Equal(New(1, 5)) {
		t.Errorf("Without(1) = %v", got)
	}
	if got := s.WithoutItem(3); !got.Equal(New(1, 5)) {
		t.Errorf("WithoutItem(3) = %v", got)
	}
	if got := s.WithoutItem(99); !got.Equal(s) {
		t.Errorf("WithoutItem(absent) = %v", got)
	}
	if got := s.Insert(4); !got.Equal(New(1, 3, 4, 5)) {
		t.Errorf("Insert(4) = %v", got)
	}
	if got := s.Insert(3); !got.Equal(s) {
		t.Errorf("Insert(existing) = %v", got)
	}
	if got := s.Insert(0); !got.Equal(New(0, 1, 3, 5)) {
		t.Errorf("Insert(0) = %v", got)
	}
	if got := s.Insert(9); !got.Equal(New(1, 3, 5, 9)) {
		t.Errorf("Insert(9) = %v", got)
	}
	// The receiver must be unchanged by all of the above.
	if !s.Equal(New(1, 3, 5)) {
		t.Errorf("receiver mutated: %v", s)
	}
}

func TestUnionIntersect(t *testing.T) {
	a, b := New(1, 3, 5), New(2, 3, 6)
	if got := a.Union(b); !got.Equal(New(1, 2, 3, 5, 6)) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(New(3)) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Intersect(New(7)); len(got) != 0 {
		t.Errorf("disjoint Intersect = %v", got)
	}
}

func TestKeyRoundTrip(t *testing.T) {
	sets := []Set{nil, New(0), New(1, 2, 3), New(1 << 20), New(0, 255, 256, 1<<30)}
	for _, s := range sets {
		key := s.Key()
		back, err := ParseKey(key)
		if err != nil {
			t.Fatalf("ParseKey(%q): %v", key, err)
		}
		if !back.Equal(s) {
			t.Errorf("round trip %v -> %v", s, back)
		}
	}
	if _, err := ParseKey("abc"); err == nil {
		t.Error("ParseKey of 3-byte key should fail")
	}
}

func TestKeyUnique(t *testing.T) {
	// Keys must distinguish sets that naive separators could confuse.
	a := New(1, 2)
	b := New(12)
	if a.Key() == b.Key() {
		t.Error("keys collide for {1,2} vs {12}")
	}
}

func TestSubsetsEnumeration(t *testing.T) {
	s := New(1, 2, 3)
	var got []Set
	s.Subsets(func(sub Set) { got = append(got, sub.Clone()) })
	want := []Set{New(2, 3), New(1, 3), New(1, 2)}
	if len(got) != len(want) {
		t.Fatalf("got %d subsets, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("subset[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestJoin(t *testing.T) {
	cases := []struct {
		a, b Set
		want Set
		ok   bool
	}{
		{New(1, 2), New(1, 3), New(1, 2, 3), true},
		{New(1, 3), New(1, 2), nil, false}, // wrong order
		{New(1, 2), New(2, 3), nil, false}, // prefix mismatch
		{New(1), New(2), New(1, 2), true},
		{New(2), New(1), nil, false},
		{New(1, 2), New(1, 2), nil, false}, // identical
		{New(1, 2, 5), New(1, 2, 9), New(1, 2, 5, 9), true},
	}
	for _, c := range cases {
		got, ok := Join(c.a, c.b)
		if ok != c.ok || (ok && !got.Equal(c.want)) {
			t.Errorf("Join(%v, %v) = %v, %v; want %v, %v", c.a, c.b, got, ok, c.want, c.ok)
		}
	}
}

func TestKSubsets(t *testing.T) {
	u := New(1, 2, 3, 4)
	var got []Set
	KSubsets(u, 2, func(sub Set) { got = append(got, sub.Clone()) })
	want := []Set{
		New(1, 2), New(1, 3), New(1, 4),
		New(2, 3), New(2, 4), New(3, 4),
	}
	if len(got) != len(want) {
		t.Fatalf("got %d subsets, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("KSubsets[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Degenerate cases.
	count := 0
	KSubsets(u, 0, func(Set) { count++ })
	KSubsets(u, 5, func(Set) { count++ })
	if count != 0 {
		t.Errorf("degenerate KSubsets invoked fn %d times", count)
	}
	count = 0
	KSubsets(u, 4, func(sub Set) {
		count++
		if !sub.Equal(u) {
			t.Errorf("full subset = %v", sub)
		}
	})
	if count != 1 {
		t.Errorf("k=n enumerated %d times", count)
	}
}

func TestKSubsetsCount(t *testing.T) {
	u := make(Set, 9)
	for i := range u {
		u[i] = ID(i * 2)
	}
	for k := 1; k <= len(u); k++ {
		count := int64(0)
		KSubsets(u, k, func(Set) { count++ })
		if want := Binomial(len(u), k); count != want {
			t.Errorf("k=%d: enumerated %d, want %d", k, count, want)
		}
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120},
		{52, 5, 2598960}, {5, 6, 0}, {5, -1, 0},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Errorf("Binomial(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
	// Saturation: C(200,100) overflows int64; must not panic or go negative.
	if got := Binomial(200, 100); got <= 0 {
		t.Errorf("Binomial(200,100) = %d, want saturated positive", got)
	}
}

// Property: New always produces a canonical set containing exactly the
// distinct inputs.
func TestNewProperty(t *testing.T) {
	f := func(ids []int32) bool {
		s := New(ids...)
		if !s.IsCanonical() {
			return false
		}
		distinct := map[int32]bool{}
		for _, id := range ids {
			distinct[id] = true
		}
		if len(s) != len(distinct) {
			return false
		}
		for _, id := range s {
			if !distinct[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Key round-trips for arbitrary canonical sets.
func TestKeyRoundTripProperty(t *testing.T) {
	f := func(ids []int32) bool {
		s := New(ids...)
		back, err := ParseKey(s.Key())
		return err == nil && back.Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Union and Intersect agree with map-based implementations.
func TestSetAlgebraProperty(t *testing.T) {
	f := func(as, bs []int32) bool {
		a, b := New(as...), New(bs...)
		inA := map[int32]bool{}
		for _, id := range a {
			inA[id] = true
		}
		var wantUnion, wantInter []int32
		wantUnion = append(wantUnion, a...)
		for _, id := range b {
			if !inA[id] {
				wantUnion = append(wantUnion, id)
			} else {
				wantInter = append(wantInter, id)
			}
		}
		sort.Slice(wantUnion, func(i, j int) bool { return wantUnion[i] < wantUnion[j] })
		sort.Slice(wantInter, func(i, j int) bool { return wantInter[i] < wantInter[j] })
		return a.Union(b).Equal(New(wantUnion...)) && a.Intersect(b).Equal(New(wantInter...))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Join(a,b) succeeds iff the two k-itemsets share the k-1 prefix
// and a's tail precedes b's, and the result is canonical and a superset of
// both inputs.
func TestJoinProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		k := 1 + rng.Intn(4)
		prefix := New(randIDs(rng, k+2)...)
		if len(prefix) < k+1 {
			continue
		}
		a := append(prefix[:k-1:k-1].Clone(), prefix[k-1])
		b := append(prefix[:k-1:k-1].Clone(), prefix[k])
		got, ok := Join(a, b)
		if !ok {
			t.Fatalf("Join(%v,%v) failed", a, b)
		}
		if !got.IsCanonical() || !a.SubsetOf(got) || !b.SubsetOf(got) || len(got) != k+1 {
			t.Fatalf("Join(%v,%v) = %v not a canonical union", a, b, got)
		}
	}
}

func randIDs(rng *rand.Rand, n int) []ID {
	ids := make([]ID, n)
	for i := range ids {
		ids[i] = ID(rng.Intn(1000))
	}
	return ids
}

func BenchmarkKey(b *testing.B) {
	s := New(10, 200, 3000, 40000, 500000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Key()
	}
}

func BenchmarkKSubsets(b *testing.B) {
	u := make(Set, 10)
	for i := range u {
		u[i] = ID(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		KSubsets(u, 3, func(Set) {})
	}
}
