// Package itemset provides the shared itemset kernel used by every miner in
// this module: a canonical representation for sets of item identifiers,
// deterministic map keys, Apriori-style joins and subset enumeration.
//
// An itemset is a strictly increasing slice of int32 item identifiers. The
// strict ordering makes equality, hashing, joining and subset checks cheap
// and allocation-light, which matters because the Flipper engine materializes
// millions of candidate itemsets on dense workloads.
package itemset

import (
	"fmt"
	"slices"
	"sort"
	"strings"
)

// ID is an item identifier. Identifiers are assigned by a txdb.Dictionary and
// shared with taxonomy nodes: every taxonomy node (leaf or internal) is an
// item and owns exactly one ID.
type ID = int32

// Set is a canonical itemset: item IDs in strictly increasing order with no
// duplicates. The zero value is the empty itemset.
type Set []ID

// New builds a canonical Set from the given IDs, sorting and deduplicating.
func New(ids ...ID) Set {
	if len(ids) == 0 {
		return nil
	}
	s := make(Set, len(ids))
	copy(s, ids)
	slices.Sort(s)
	// Deduplicate in place.
	out := s[:1]
	for _, id := range s[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}

// FromSorted wraps ids as a Set without copying. The caller asserts that ids
// is strictly increasing; IsCanonical can verify.
func FromSorted(ids []ID) Set { return Set(ids) }

// IsCanonical reports whether s is strictly increasing (the Set invariant).
func (s Set) IsCanonical() bool {
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			return false
		}
	}
	return true
}

// K returns the number of items (the "k" of a k-itemset).
func (s Set) K() int { return len(s) }

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	if s == nil {
		return nil
	}
	c := make(Set, len(s))
	copy(c, s)
	return c
}

// Contains reports whether s contains id, by binary search.
func (s Set) Contains(id ID) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	return i < len(s) && s[i] == id
}

// IndexOf returns the position of id in s, or -1.
func (s Set) IndexOf(id ID) int {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	if i < len(s) && s[i] == id {
		return i
	}
	return -1
}

// Equal reports whether s and t contain exactly the same items.
func (s Set) Equal(t Set) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Compare orders itemsets lexicographically by item sequence, with a proper
// prefix sorting before its extensions. The order agrees with the byte order
// of Key, so replacing key-sorted iteration with Compare-sorted iteration
// preserves determinism without building any key strings.
func Compare(s, t Set) int {
	n := len(s)
	if len(t) < n {
		n = len(t)
	}
	for i := 0; i < n; i++ {
		switch {
		case s[i] < t[i]:
			return -1
		case s[i] > t[i]:
			return 1
		}
	}
	switch {
	case len(s) < len(t):
		return -1
	case len(s) > len(t):
		return 1
	}
	return 0
}

// SubsetOf reports whether every item of s is in t. Both must be canonical.
func (s Set) SubsetOf(t Set) bool {
	if len(s) > len(t) {
		return false
	}
	j := 0
	for _, id := range s {
		for j < len(t) && t[j] < id {
			j++
		}
		if j >= len(t) || t[j] != id {
			return false
		}
		j++
	}
	return true
}

// Without returns a copy of s with the item at position idx removed.
func (s Set) Without(idx int) Set {
	out := make(Set, 0, len(s)-1)
	out = append(out, s[:idx]...)
	out = append(out, s[idx+1:]...)
	return out
}

// WithoutItem returns a copy of s with the given item removed; it returns s
// itself (shared storage) when the item is absent.
func (s Set) WithoutItem(id ID) Set {
	idx := s.IndexOf(id)
	if idx < 0 {
		return s
	}
	return s.Without(idx)
}

// Insert returns a canonical itemset containing s's items plus id. If id is
// already present, a copy of s is returned.
func (s Set) Insert(id ID) Set {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	if i < len(s) && s[i] == id {
		return s.Clone()
	}
	out := make(Set, 0, len(s)+1)
	out = append(out, s[:i]...)
	out = append(out, id)
	out = append(out, s[i:]...)
	return out
}

// Union returns the canonical union of s and t.
func (s Set) Union(t Set) Set {
	out := make(Set, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

// Intersect returns the canonical intersection of s and t.
func (s Set) Intersect(t Set) Set {
	var out Set
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// Key returns a compact string key that uniquely identifies the itemset.
// It is suitable as a map key; two itemsets have equal keys iff Equal.
func (s Set) Key() string {
	if len(s) == 0 {
		return ""
	}
	// 4 bytes per ID, big-endian-ish packing. Deterministic and compact.
	b := make([]byte, 4*len(s))
	for i, id := range s {
		b[4*i+0] = byte(uint32(id) >> 24)
		b[4*i+1] = byte(uint32(id) >> 16)
		b[4*i+2] = byte(uint32(id) >> 8)
		b[4*i+3] = byte(uint32(id))
	}
	return string(b)
}

// AppendKey appends the Key encoding of s to dst and returns the extended
// buffer. Probing a map with map[string(AppendKey(buf[:0], s))] avoids the
// per-lookup allocation of Key on hot counting paths.
func AppendKey(dst []byte, s Set) []byte {
	for _, id := range s {
		dst = append(dst,
			byte(uint32(id)>>24), byte(uint32(id)>>16), byte(uint32(id)>>8), byte(uint32(id)))
	}
	return dst
}

// ParseKey reverses Key. It returns an error when the key length is not a
// multiple of four bytes.
func ParseKey(key string) (Set, error) {
	if len(key)%4 != 0 {
		return nil, fmt.Errorf("itemset: malformed key of %d bytes", len(key))
	}
	s := make(Set, len(key)/4)
	for i := range s {
		v := uint32(key[4*i])<<24 | uint32(key[4*i+1])<<16 | uint32(key[4*i+2])<<8 | uint32(key[4*i+3])
		s[i] = int32(v)
	}
	return s, nil
}

// String renders the itemset as "{1, 5, 9}" using raw IDs. For human-readable
// names, resolve through a txdb.Dictionary.
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, id := range s {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", id)
	}
	b.WriteByte('}')
	return b.String()
}

// Subsets calls fn for every (k-1)-subset of s, reusing a single scratch
// buffer across calls. fn must not retain the argument; clone if needed.
func (s Set) Subsets(fn func(sub Set)) {
	if len(s) == 0 {
		return
	}
	scratch := make(Set, len(s)-1)
	for drop := range s {
		copy(scratch, s[:drop])
		copy(scratch[drop:], s[drop+1:])
		fn(scratch)
	}
}

// Join attempts the Apriori join of two canonical k-itemsets that share their
// first k-1 items. On success it returns the joined (k+1)-itemset and true.
// The inputs must be canonical and have equal length ≥ 1.
func Join(a, b Set) (Set, bool) {
	k := len(a)
	if k == 0 || len(b) != k {
		return nil, false
	}
	for i := 0; i < k-1; i++ {
		if a[i] != b[i] {
			return nil, false
		}
	}
	if a[k-1] >= b[k-1] {
		return nil, false
	}
	out := make(Set, k+1)
	copy(out, a)
	out[k] = b[k-1]
	return out, true
}

// KSubsets enumerates every k-subset of the canonical set universe, invoking
// fn with a scratch buffer that is reused across calls (clone to retain).
// Enumeration is in lexicographic order. It is used by the scan counter to
// probe candidate hash tables with the subsets of a transaction.
func KSubsets(universe Set, k int, fn func(sub Set)) {
	n := len(universe)
	if k <= 0 || k > n {
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	scratch := make(Set, k)
	for {
		for i, j := range idx {
			scratch[i] = universe[j]
		}
		fn(scratch)
		// Advance combination indexes.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// Binomial returns C(n, k) saturating at math.MaxInt64 for large inputs; it
// backs the scan counter's cost model when choosing a counting strategy.
func Binomial(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	const maxInt64 = int64(^uint64(0) >> 1)
	var res int64 = 1
	for i := 1; i <= k; i++ {
		// res = res * (n-k+i) / i, guarding overflow.
		f := int64(n - k + i)
		if res > maxInt64/f {
			return maxInt64
		}
		res = res * f / int64(i)
	}
	return res
}
