package measure

// Expectation-based correlation, implemented solely to reproduce the paper's
// Example 2 / Table 1: these measures depend on the total transaction count N
// and therefore flip their verdict when null transactions are added, which is
// exactly why the paper rejects them for large sparse databases.

// ExpectedSupport returns E[sup(AB)] = sup(A)/N · sup(B)/N · N under the
// independence assumption.
func ExpectedSupport(supA, supB, n int64) float64 {
	if n == 0 {
		return 0
	}
	return float64(supA) * float64(supB) / float64(n)
}

// Lift returns sup(AB)·N / (sup(A)·sup(B)); values above 1 are read as
// positive correlation, below 1 as negative.
func Lift(supAB, supA, supB, n int64) float64 {
	if supA == 0 || supB == 0 {
		return 0
	}
	return float64(supAB) * float64(n) / (float64(supA) * float64(supB))
}

// ExpectationVerdict classifies a pair the way an expectation-based measure
// would: positive when the observed support exceeds the expected one,
// negative when below, neutral on exact equality.
func ExpectationVerdict(supAB, supA, supB, n int64) string {
	e := ExpectedSupport(supA, supB, n)
	switch {
	case float64(supAB) > e:
		return "positive"
	case float64(supAB) < e:
		return "negative"
	default:
		return "neutral"
	}
}

// Chi2 returns the 2x2 chi-square statistic for items A and B, the companion
// significance test usually paired with Lift.
func Chi2(supAB, supA, supB, n int64) float64 {
	if n == 0 {
		return 0
	}
	// Contingency table: observed counts.
	oAB := float64(supAB)
	oAnotB := float64(supA - supAB)
	oBnotA := float64(supB - supAB)
	oNone := float64(n - supA - supB + supAB)
	pA := float64(supA) / float64(n)
	pB := float64(supB) / float64(n)
	e := [4]float64{
		pA * pB * float64(n),
		pA * (1 - pB) * float64(n),
		(1 - pA) * pB * float64(n),
		(1 - pA) * (1 - pB) * float64(n),
	}
	o := [4]float64{oAB, oAnotB, oBnotA, oNone}
	chi := 0.0
	for i := range o {
		if e[i] > 0 {
			d := o[i] - e[i]
			chi += d * d / e[i]
		}
	}
	return chi
}
