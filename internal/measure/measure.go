// Package measure implements the correlation measures of the paper's
// Section 2 (Table 2): the five null-invariant measures — All Confidence,
// Coherence, Cosine, Kulczynski and Max Confidence — which are generalized
// means of the conditional probabilities P(A|ai) = sup(A)/sup(ai), plus the
// expectation-based Lift family used only to reproduce the instability
// demonstration of Example 2 / Table 1.
//
// All five null-invariant measures share two properties proven in the
// paper's Section 3 and property-tested here:
//
//   - Theorem 1 (correlation upper bound): Corr(A) never exceeds the maximum
//     Corr over A's (k-1)-subsets.
//   - Theorem 2 / Corollary 2: a minimum-support item whose k-itemsets are
//     all below γ cannot appear in any positive itemset of size ≥ k.
//
// These two properties are what makes correlation-based pruning possible for
// measures that are not anti-monotonic (Kulczynski, Cosine, Max Confidence).
package measure

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// Measure selects one of the five null-invariant correlation measures.
type Measure int8

const (
	// Kulczynski is the arithmetic mean of conditional probabilities — the
	// paper's default: tolerant of unbalanced supports.
	Kulczynski Measure = iota
	// Cosine is the geometric mean.
	Cosine
	// AllConfidence is the minimum; it is anti-monotonic.
	AllConfidence
	// Coherence is the harmonic mean (the paper's re-definition of the
	// Jaccard-style coherence, preserving its ordering — but not, contrary
	// to the paper's side remark, its anti-monotonicity; see AntiMonotonic).
	Coherence
	// MaxConfidence is the maximum.
	MaxConfidence

	numMeasures = iota
)

// All lists every null-invariant measure, in ascending order of the
// generalized mean each represents is NOT guaranteed here; use OrderedByMean.
func All() []Measure {
	return []Measure{AllConfidence, Coherence, Cosine, Kulczynski, MaxConfidence}
}

// OrderedByMean returns the measures sorted so that for any fixed itemset the
// correlation values are non-decreasing along the slice:
// AllConf ≤ Coherence ≤ Cosine ≤ Kulc ≤ MaxConf
// (minimum ≤ harmonic ≤ geometric ≤ arithmetic ≤ maximum).
func OrderedByMean() []Measure {
	return []Measure{AllConfidence, Coherence, Cosine, Kulczynski, MaxConfidence}
}

// String implements fmt.Stringer with the paper's names.
func (m Measure) String() string {
	switch m {
	case Kulczynski:
		return "kulczynski"
	case Cosine:
		return "cosine"
	case AllConfidence:
		return "all_confidence"
	case Coherence:
		return "coherence"
	case MaxConfidence:
		return "max_confidence"
	default:
		return fmt.Sprintf("measure(%d)", int(m))
	}
}

// Parse converts a name (as produced by String, case-insensitive, with "-"
// accepted for "_", plus the common short alias "kulc") into a Measure.
func Parse(name string) (Measure, error) {
	switch strings.ReplaceAll(strings.ToLower(strings.TrimSpace(name)), "-", "_") {
	case "kulczynski", "kulc":
		return Kulczynski, nil
	case "cosine":
		return Cosine, nil
	case "all_confidence", "allconf", "all":
		return AllConfidence, nil
	case "coherence":
		return Coherence, nil
	case "max_confidence", "maxconf", "max":
		return MaxConfidence, nil
	default:
		return 0, fmt.Errorf("measure: unknown measure %q", name)
	}
}

// MarshalJSON encodes the measure by its canonical name, so configurations
// serialize readably and survive renumbering of the constants.
func (m Measure) MarshalJSON() ([]byte, error) {
	if !m.Valid() {
		return nil, fmt.Errorf("measure: cannot marshal invalid measure %d", int(m))
	}
	return []byte(`"` + m.String() + `"`), nil
}

// UnmarshalJSON accepts any spelling Parse accepts.
func (m *Measure) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return fmt.Errorf("measure: %w", err)
	}
	v, err := Parse(name)
	if err != nil {
		return err
	}
	*m = v
	return nil
}

// Valid reports whether m is one of the defined measures.
func (m Measure) Valid() bool { return m >= 0 && m < numMeasures }

// NullInvariant reports whether the measure ignores null transactions. All
// five defined measures are null-invariant; this exists so that future
// expectation-based additions are kept out of the pruning machinery.
func (m Measure) NullInvariant() bool { return m.Valid() }

// AntiMonotonic reports whether adding an item can never increase the
// measure. Only All Confidence qualifies.
//
// Reproduction finding: the paper asserts (proofs of Theorems 1–2) that
// Coherence is anti-monotonic, which is true for the original Jaccard-style
// coherence sup(A)/|union| but NOT for the paper's harmonic-mean
// re-definition k·sup(A)/Σsup(ai): with sup(a)=sup(b)=7, sup(ab)=1 the
// value is 2/14 ≈ 0.143, and adding c with sup(c)=4, sup(abc)=1 raises it
// to 3/18 ≈ 0.167 (realizable as 1×{a,b,c}, 6×{a}, 6×{b}, 3×{c}). The
// property tests exhibit such counterexamples. Theorems 1 and 2 themselves
// still hold for the re-defined Coherence — they are what the engine relies
// on — so no pruning in this module is affected.
func (m Measure) AntiMonotonic() bool {
	return m == AllConfidence
}

// Corr computes the measure for a k-itemset A given sup(A) and the k single
// item supports. It returns 0 when supA is 0 and panics when any single
// support is smaller than supA or non-positive, because the mining engine
// can only reach that state through a counting bug.
func (m Measure) Corr(supA int64, sups []int64) float64 {
	if len(sups) == 0 {
		return 0
	}
	if supA == 0 {
		return 0
	}
	for _, s := range sups {
		if s <= 0 || s < supA {
			panic(fmt.Sprintf("measure: invalid supports supA=%d sups=%v", supA, sups))
		}
	}
	k := float64(len(sups))
	switch m {
	case Kulczynski:
		sum := 0.0
		for _, s := range sups {
			sum += 1 / float64(s)
		}
		return float64(supA) / k * sum
	case Cosine:
		// Geometric mean via logarithms to avoid overflow for large k.
		logSum := 0.0
		for _, s := range sups {
			logSum += math.Log(float64(s))
		}
		return float64(supA) / math.Exp(logSum/k)
	case AllConfidence:
		maxSup := sups[0]
		for _, s := range sups[1:] {
			if s > maxSup {
				maxSup = s
			}
		}
		return float64(supA) / float64(maxSup)
	case Coherence:
		sum := int64(0)
		for _, s := range sups {
			sum += s
		}
		return k * float64(supA) / float64(sum)
	case MaxConfidence:
		minSup := sups[0]
		for _, s := range sups[1:] {
			if s < minSup {
				minSup = s
			}
		}
		return float64(supA) / float64(minSup)
	default:
		panic("measure: invalid measure " + m.String())
	}
}

// Corr2 is the two-item convenience form.
func (m Measure) Corr2(supAB, supA, supB int64) float64 {
	return m.Corr(supAB, []int64{supA, supB})
}

// UpperBoundFromSubsets returns the Theorem-1 upper bound for a k-itemset
// whose (k-1)-subset correlations are given: the maximum of the slice.
// It returns 0 for an empty slice.
func UpperBoundFromSubsets(subsetCorrs []float64) float64 {
	ub := 0.0
	for _, c := range subsetCorrs {
		if c > ub {
			ub = c
		}
	}
	return ub
}
