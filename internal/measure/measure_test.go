package measure

import (
	"math"
	"math/rand"
	"testing"
)

const eps = 1e-12

func almost(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }

func TestStringParseRoundTrip(t *testing.T) {
	for _, m := range All() {
		back, err := Parse(m.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", m.String(), err)
		}
		if back != m {
			t.Errorf("Parse(String(%v)) = %v", m, back)
		}
	}
	if _, err := Parse("kulc"); err != nil {
		t.Error("alias kulc rejected")
	}
	if _, err := Parse("MAX-CONFIDENCE"); err != nil {
		t.Error("case/dash variant rejected")
	}
	if _, err := Parse("lift"); err == nil {
		t.Error("lift must not parse as a null-invariant measure")
	}
	if Measure(99).String() == "" {
		t.Error("unknown measure String empty")
	}
}

func TestCorrPairHandComputed(t *testing.T) {
	// sup(A)=1000, sup(B)=250, sup(AB)=200:
	// P(AB|A)=0.2, P(AB|B)=0.8
	supAB, supA, supB := int64(200), int64(1000), int64(250)
	cases := []struct {
		m    Measure
		want float64
	}{
		{AllConfidence, 0.2},
		{Coherence, 2 * 200.0 / 1250.0}, // harmonic mean = 2*sAB*k-style: 2/(1/0.2+1/0.8) = 0.32
		{Cosine, math.Sqrt(0.2 * 0.8)},  // 0.4
		{Kulczynski, (0.2 + 0.8) / 2},   // 0.5
		{MaxConfidence, 0.8},
	}
	for _, c := range cases {
		if got := c.m.Corr2(supAB, supA, supB); !almost(got, c.want) {
			t.Errorf("%v = %v, want %v", c.m, got, c.want)
		}
	}
}

func TestCorrKItems(t *testing.T) {
	// Three items with supports 10, 20, 40 and sup(A)=8.
	sups := []int64{10, 20, 40}
	supA := int64(8)
	// Conditional probabilities: 0.8, 0.4, 0.2.
	wantKulc := (0.8 + 0.4 + 0.2) / 3
	wantCos := math.Cbrt(0.8 * 0.4 * 0.2)
	wantAll := 0.2
	wantMax := 0.8
	wantCoh := 3.0 * 8 / (10 + 20 + 40)
	if got := Kulczynski.Corr(supA, sups); !almost(got, wantKulc) {
		t.Errorf("kulc = %v, want %v", got, wantKulc)
	}
	if got := Cosine.Corr(supA, sups); !almost(got, wantCos) {
		t.Errorf("cosine = %v, want %v", got, wantCos)
	}
	if got := AllConfidence.Corr(supA, sups); !almost(got, wantAll) {
		t.Errorf("allconf = %v, want %v", got, wantAll)
	}
	if got := MaxConfidence.Corr(supA, sups); !almost(got, wantMax) {
		t.Errorf("maxconf = %v, want %v", got, wantMax)
	}
	if got := Coherence.Corr(supA, sups); !almost(got, wantCoh) {
		t.Errorf("coherence = %v, want %v", got, wantCoh)
	}
}

func TestCorrEdgeCases(t *testing.T) {
	if got := Kulczynski.Corr(0, []int64{5, 5}); got != 0 {
		t.Errorf("zero supA should give 0, got %v", got)
	}
	if got := Kulczynski.Corr(3, nil); got != 0 {
		t.Errorf("empty sups should give 0, got %v", got)
	}
	// Identical supports: every measure equals sup(A)/sup(a).
	for _, m := range All() {
		if got := m.Corr(5, []int64{10, 10, 10}); !almost(got, 0.5) {
			t.Errorf("%v with equal supports = %v, want 0.5", m, got)
		}
	}
	// Perfect correlation: all equal to supA -> 1.0.
	for _, m := range All() {
		if got := m.Corr(7, []int64{7, 7}); !almost(got, 1.0) {
			t.Errorf("%v perfect correlation = %v, want 1", m, got)
		}
	}
}

func TestCorrPanicsOnCorruptSupports(t *testing.T) {
	for _, sups := range [][]int64{{0, 5}, {3, 5}, {-1, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Corr(4, %v) did not panic", sups)
				}
			}()
			Kulczynski.Corr(4, sups)
		}()
	}
}

func TestAntiMonotonicFlags(t *testing.T) {
	want := map[Measure]bool{
		AllConfidence: true,
		Coherence:     false, // the paper's harmonic-mean re-definition; see AntiMonotonic
		Cosine:        false,
		Kulczynski:    false,
		MaxConfidence: false,
	}
	for m, w := range want {
		if m.AntiMonotonic() != w {
			t.Errorf("%v.AntiMonotonic() = %v, want %v", m, m.AntiMonotonic(), w)
		}
		if !m.NullInvariant() {
			t.Errorf("%v must be null-invariant", m)
		}
	}
}

// TestMeanOrdering verifies the paper's ordering
// AllConf ≤ Coherence ≤ Cosine ≤ Kulc ≤ MaxConf on random support vectors.
func TestMeanOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	order := OrderedByMean()
	for trial := 0; trial < 5000; trial++ {
		k := 2 + rng.Intn(4)
		supA := int64(1 + rng.Intn(100))
		sups := make([]int64, k)
		for i := range sups {
			sups[i] = supA + int64(rng.Intn(1000))
		}
		prev := -1.0
		for _, m := range order {
			v := m.Corr(supA, sups)
			if v < prev-eps {
				t.Fatalf("ordering violated at %v: %v < %v (supA=%d sups=%v)", m, v, prev, supA, sups)
			}
			prev = v
		}
	}
}

// syntheticDB is a tiny transaction matrix for measure-level property tests:
// rows are transactions, columns are items.
type syntheticDB struct {
	rows [][]bool
	k    int
}

func randDB(rng *rand.Rand, n, k int, density float64) *syntheticDB {
	db := &syntheticDB{k: k}
	for i := 0; i < n; i++ {
		row := make([]bool, k)
		for j := range row {
			row[j] = rng.Float64() < density
		}
		db.rows = append(db.rows, row)
	}
	return db
}

// support returns sup over the item subset given by mask indexes.
func (db *syntheticDB) support(items []int) int64 {
	var sup int64
	for _, row := range db.rows {
		all := true
		for _, j := range items {
			if !row[j] {
				all = false
				break
			}
		}
		if all {
			sup++
		}
	}
	return sup
}

// TestNullInvariance: appending transactions that contain none of the items
// never changes any of the five measures, while Lift changes.
func TestNullInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		k := 2 + rng.Intn(3)
		db := randDB(rng, 50+rng.Intn(100), k, 0.3+rng.Float64()*0.4)
		items := make([]int, k)
		for i := range items {
			items[i] = i
		}
		supA := db.support(items)
		if supA == 0 {
			continue
		}
		sups := make([]int64, k)
		for i := range sups {
			sups[i] = db.support([]int{i})
		}
		before := make([]float64, 0, 5)
		for _, m := range All() {
			before = append(before, m.Corr(supA, sups))
		}
		// Null transactions change N but none of the supports.
		liftBefore := Lift(supA, sups[0], sups[1], int64(len(db.rows)))
		liftAfter := Lift(supA, sups[0], sups[1], int64(len(db.rows))*10)
		if almost(liftBefore, liftAfter) {
			t.Fatalf("Lift unchanged by null transactions (%v)", liftBefore)
		}
		for i, m := range All() {
			if got := m.Corr(supA, sups); !almost(got, before[i]) {
				t.Fatalf("%v changed by null transactions", m)
			}
		}
	}
}

// TestTheorem1UpperBound: for every measure and random database,
// Corr(A) ≤ max over (k-1)-subsets of Corr(B). This is the paper's Theorem 1.
func TestTheorem1UpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 400; trial++ {
		k := 3 + rng.Intn(3) // 3..5 items so subsets are proper itemsets
		db := randDB(rng, 30+rng.Intn(80), k, 0.25+rng.Float64()*0.5)
		full := make([]int, k)
		for i := range full {
			full[i] = i
		}
		supA := db.support(full)
		if supA == 0 {
			continue
		}
		sups := make([]int64, k)
		for i := range sups {
			sups[i] = db.support([]int{i})
		}
		for _, m := range All() {
			corrA := m.Corr(supA, sups)
			best := 0.0
			for drop := 0; drop < k; drop++ {
				sub := make([]int, 0, k-1)
				subSups := make([]int64, 0, k-1)
				for i := 0; i < k; i++ {
					if i != drop {
						sub = append(sub, i)
						subSups = append(subSups, sups[i])
					}
				}
				c := m.Corr(db.support(sub), subSups)
				if c > best {
					best = c
				}
			}
			if corrA > best+eps {
				t.Fatalf("trial %d: Theorem 1 violated for %v: Corr(A)=%v > max subsets %v", trial, m, corrA, best)
			}
		}
	}
}

// TestTheorem2 verifies the single-item bound: if every (k-1)-itemset
// containing item a has Corr < γ and some other item in A has support
// ≥ sup(a), then Corr(A) < γ.
func TestTheorem2(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	checked := 0
	for trial := 0; trial < 3000 && checked < 500; trial++ {
		k := 3 + rng.Intn(2)
		db := randDB(rng, 40+rng.Intn(60), k, 0.2+rng.Float64()*0.5)
		full := make([]int, k)
		for i := range full {
			full[i] = i
		}
		supA := db.support(full)
		if supA == 0 {
			continue
		}
		sups := make([]int64, k)
		for i := range sups {
			sups[i] = db.support([]int{i})
		}
		// a = item 0; condition (2): some other item has support >= sup(a).
		hasLarger := false
		for i := 1; i < k; i++ {
			if sups[i] >= sups[0] {
				hasLarger = true
			}
		}
		if !hasLarger {
			continue
		}
		for _, m := range All() {
			// Max corr over (k-1)-subsets that contain item 0.
			maxSub := 0.0
			for drop := 1; drop < k; drop++ {
				sub := make([]int, 0, k-1)
				subSups := make([]int64, 0, k-1)
				for i := 0; i < k; i++ {
					if i != drop {
						sub = append(sub, i)
						subSups = append(subSups, sups[i])
					}
				}
				if c := m.Corr(db.support(sub), subSups); c > maxSub {
					maxSub = c
				}
			}
			gamma := maxSub + 1e-9 // premise: all those subsets are < gamma
			if corrA := m.Corr(supA, sups); corrA >= gamma {
				t.Fatalf("trial %d: Theorem 2 violated for %v: Corr(A)=%v ≥ γ=%v", trial, m, corrA, gamma)
			}
		}
		checked++
	}
	if checked < 100 {
		t.Fatalf("only %d configurations satisfied the premise; generator too narrow", checked)
	}
}

func TestUpperBoundFromSubsets(t *testing.T) {
	if got := UpperBoundFromSubsets(nil); got != 0 {
		t.Errorf("empty = %v", got)
	}
	if got := UpperBoundFromSubsets([]float64{0.2, 0.9, 0.5}); got != 0.9 {
		t.Errorf("got %v, want 0.9", got)
	}
}

// TestTable1Reproduction reproduces the paper's Table 1: the same support
// counts classified as positive in DB1 (N=20,000) and negative in DB2
// (N=2,000) by the expectation-based measure, while Kulc is stable.
func TestTable1Reproduction(t *testing.T) {
	type row struct {
		supA, supB, supAB int64
		n1, n2            int64
		kulc              float64
	}
	rows := []row{
		{1000, 1000, 400, 20000, 2000, 0.40},
		{200, 200, 4, 20000, 2000, 0.02},
	}
	for i, r := range rows {
		if got := Kulczynski.Corr2(r.supAB, r.supA, r.supB); !almost(got, r.kulc) {
			t.Errorf("row %d: Kulc = %v, want %v", i, got, r.kulc)
		}
		if v := ExpectationVerdict(r.supAB, r.supA, r.supB, r.n1); v != "positive" {
			t.Errorf("row %d DB1: expectation verdict = %v, want positive", i, v)
		}
		if v := ExpectationVerdict(r.supAB, r.supA, r.supB, r.n2); v != "negative" {
			t.Errorf("row %d DB2: expectation verdict = %v, want negative", i, v)
		}
	}
	// Expected supports as printed in Table 1.
	if e := ExpectedSupport(1000, 1000, 20000); !almost(e, 50) {
		t.Errorf("E DB1 row1 = %v, want 50", e)
	}
	if e := ExpectedSupport(1000, 1000, 2000); !almost(e, 500) {
		t.Errorf("E DB2 row1 = %v, want 500", e)
	}
	if e := ExpectedSupport(200, 200, 20000); !almost(e, 2) {
		t.Errorf("E DB1 row2 = %v, want 2", e)
	}
	if e := ExpectedSupport(200, 200, 2000); !almost(e, 20) {
		t.Errorf("E DB2 row2 = %v, want 20", e)
	}
}

func TestLiftAndChi2(t *testing.T) {
	// Independent items: lift 1, chi2 0.
	if got := Lift(25, 50, 50, 100); !almost(got, 1.0) {
		t.Errorf("independent lift = %v", got)
	}
	if got := Chi2(25, 50, 50, 100); !almost(got, 0) {
		t.Errorf("independent chi2 = %v", got)
	}
	// Perfectly dependent: lift = N/supA.
	if got := Lift(50, 50, 50, 100); !almost(got, 2.0) {
		t.Errorf("dependent lift = %v", got)
	}
	if got := Chi2(50, 50, 50, 100); !almost(got, 100) {
		t.Errorf("dependent chi2 = %v, want 100", got)
	}
	if got := Lift(1, 0, 5, 10); got != 0 {
		t.Errorf("lift with zero support = %v", got)
	}
	if got := ExpectedSupport(5, 5, 0); got != 0 {
		t.Errorf("expected support with N=0 = %v", got)
	}
	if got := Chi2(1, 2, 2, 0); got != 0 {
		t.Errorf("chi2 with N=0 = %v", got)
	}
}

func BenchmarkKulc4(b *testing.B) {
	sups := []int64{100, 200, 300, 400}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Kulczynski.Corr(90, sups)
	}
}

func BenchmarkCosine4(b *testing.B) {
	sups := []int64{100, 200, 300, 400}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Cosine.Corr(90, sups)
	}
}

// TestAntiMonotonicityProperty: for All Confidence and Coherence, adding an
// item never increases the measure (brute-force over random databases);
// Kulc/Cosine/MaxConf are shown NOT anti-monotonic by counterexample
// search — the paper's motivation for Theorems 1–2.
func TestAntiMonotonicityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	counterexample := map[Measure]bool{}
	for trial := 0; trial < 2000; trial++ {
		k := 3 + rng.Intn(2)
		db := randDB(rng, 30+rng.Intn(50), k, 0.2+rng.Float64()*0.6)
		full := make([]int, k)
		for i := range full {
			full[i] = i
		}
		supA := db.support(full)
		if supA == 0 {
			continue
		}
		sups := make([]int64, k)
		for i := range sups {
			sups[i] = db.support([]int{i})
		}
		sub := full[:k-1]
		subSups := sups[:k-1]
		supB := db.support(sub)
		for _, m := range All() {
			corrSub := m.Corr(supB, subSups)
			corrFull := m.Corr(supA, sups)
			if corrFull > corrSub+eps {
				if m.AntiMonotonic() {
					t.Fatalf("%v claims anti-monotonicity but grew %v -> %v", m, corrSub, corrFull)
				}
				counterexample[m] = true
			}
		}
	}
	for _, m := range []Measure{Kulczynski, Cosine, MaxConfidence, Coherence} {
		if !counterexample[m] {
			t.Errorf("no growth counterexample found for %v; generator too narrow", m)
		}
	}
	// The Coherence counterexample is the reproduction finding documented
	// on Measure.AntiMonotonic: the paper's harmonic-mean re-definition is
	// not anti-monotonic although the paper's proofs assume it is.
	if counterexample[AllConfidence] {
		t.Error("AllConfidence produced a growth counterexample")
	}
}
