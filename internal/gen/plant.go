package gen

import (
	"fmt"
	"math/rand"

	"github.com/flipper-mining/flipper/internal/taxonomy"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// Planted flipping correlations with analytic guarantees.
//
// The paper's reality-check datasets (GROCERIES, CENSUS, MEDLINE) are not
// redistributable, so the simulators in internal/datasets assemble
// look-alike databases from planted flip blocks plus noise. Each planted
// flip reserves two level-1 categories exclusively and emits transaction
// blocks whose support ratios pin the Kulczynski value of the pair at every
// level:
//
// Chain (+,−,+) over a 3-level taxonomy, scale s:
//
//	block BOTH (2s×):  {leafA, leafB}          — leaf pair always together
//	block P   (20s×):  {sibA,  altLeafB}       — midA without midB, but A with B
//	block Q   (20s×):  {sibB,  altLeafA}       — midB without midA, but A with B
//
// giving Kulc(leafA,leafB)=1, Kulc(midA,midB)=2/22≈0.091, Kulc(rootA,rootB)=1.
//
// Chain (−,+,−), scale s:
//
//	block BOTH (s×):    {leafA, leafB}
//	block X   (12s×):   {leafA, sibB}          — mids together, leaves apart
//	block Y   (12s×):   {sibA,  leafB}
//	block AO  (vs×):    {altLeafA}              — root A without root B
//	block BO  (vs×):    {altLeafB}
//
// giving Kulc(leafA,leafB)=1/13≈0.077, Kulc(midA,midB)=1,
// Kulc(rootA,rootB)=25s/(25s+vs); v defaults to 250 so the value ≈0.091.
//
// Every block may carry filler items drawn from non-reserved categories;
// fillers do not change any support that involves the reserved nodes.

// ExpectedFlip records the ground truth of one planted flip for tests.
type ExpectedFlip struct {
	// LeafA and LeafB name the flipping pair at the deepest level.
	LeafA, LeafB string
	// Labels holds the planted chain from level 1 downward, using "+"/"-".
	Labels []string
	// MinLeafSupport is the leaf pair's co-occurrence count; thresholds at
	// or below this keep the pattern frequent at every level.
	MinLeafSupport int64
}

// FlipSpec3 plants one flipping pair in a 3-level taxonomy.
type FlipSpec3 struct {
	// RootA/RootB are the reserved level-1 categories.
	RootA, RootB string
	// MidA/MidB are the level-2 parents of the flipping pair; AltMidA/AltMidB
	// are sibling level-2 nodes used by the contrast blocks.
	MidA, MidB, AltMidA, AltMidB string
	// LeafA/LeafB are the flipping pair; SibA/SibB their level-3 siblings;
	// AltLeafA/AltLeafB live under the Alt mids.
	LeafA, LeafB, SibA, SibB, AltLeafA, AltLeafB string
	// LeafPositive selects chain (+,−,+) when true and (−,+,−) otherwise.
	LeafPositive bool
	// Scale multiplies all block counts (must be ≥ 1).
	Scale int
	// NegRootOnly overrides the per-side count of root-only transactions in
	// the (−,+,−) chain; 0 means the default 250×Scale (root Kulc ≈ 0.098).
	NegRootOnly int
}

// Register adds the spec's nine nodes to the taxonomy builder.
func (s FlipSpec3) Register(b *taxonomy.Builder) error {
	if s.Scale < 1 {
		return fmt.Errorf("gen: FlipSpec3 scale %d < 1", s.Scale)
	}
	for _, path := range [][]string{
		{s.RootA, s.MidA, s.LeafA},
		{s.RootA, s.MidA, s.SibA},
		{s.RootA, s.AltMidA, s.AltLeafA},
		{s.RootB, s.MidB, s.LeafB},
		{s.RootB, s.MidB, s.SibB},
		{s.RootB, s.AltMidB, s.AltLeafB},
	} {
		if err := b.AddPath(path...); err != nil {
			return err
		}
	}
	return nil
}

// Emit appends the spec's transaction blocks to db. filler, when non-nil,
// returns extra item names (from non-reserved categories) appended to each
// emitted transaction. It returns the ground truth for verification.
func (s FlipSpec3) Emit(db *txdb.DB, rng *rand.Rand, filler func(*rand.Rand) []string) ExpectedFlip {
	emit := func(count int, names ...string) {
		for i := 0; i < count; i++ {
			tx := append([]string(nil), names...)
			if filler != nil {
				tx = append(tx, filler(rng)...)
			}
			db.AddNames(tx...)
		}
	}
	if s.LeafPositive {
		emit(2*s.Scale, s.LeafA, s.LeafB)
		emit(20*s.Scale, s.SibA, s.AltLeafB)
		emit(20*s.Scale, s.SibB, s.AltLeafA)
		return ExpectedFlip{
			LeafA: s.LeafA, LeafB: s.LeafB,
			Labels:         []string{"+", "-", "+"},
			MinLeafSupport: int64(2 * s.Scale),
		}
	}
	rootOnly := s.NegRootOnly
	if rootOnly == 0 {
		rootOnly = 250 * s.Scale
	}
	emit(1*s.Scale, s.LeafA, s.LeafB)
	emit(12*s.Scale, s.LeafA, s.SibB)
	emit(12*s.Scale, s.SibA, s.LeafB)
	emit(rootOnly, s.AltLeafA)
	emit(rootOnly, s.AltLeafB)
	return ExpectedFlip{
		LeafA: s.LeafA, LeafB: s.LeafB,
		Labels:         []string{"-", "+", "-"},
		MinLeafSupport: int64(s.Scale),
	}
}

// FlipSpec2 plants one flipping pair in a 2-level taxonomy (level 1 and
// leaves). Chain (+,−): roots positively correlated, the leaf pair negative;
// chain (−,+): the reverse.
type FlipSpec2 struct {
	RootA, RootB             string
	LeafA, LeafB, SibA, SibB string
	LeafPositive             bool
	Scale                    int
	// NegRootOnly as in FlipSpec3, for the (−,+) chain; default 250×Scale.
	NegRootOnly int
}

// Register adds the spec's six nodes to the builder.
func (s FlipSpec2) Register(b *taxonomy.Builder) error {
	if s.Scale < 1 {
		return fmt.Errorf("gen: FlipSpec2 scale %d < 1", s.Scale)
	}
	for _, path := range [][]string{
		{s.RootA, s.LeafA}, {s.RootA, s.SibA},
		{s.RootB, s.LeafB}, {s.RootB, s.SibB},
	} {
		if err := b.AddPath(path...); err != nil {
			return err
		}
	}
	return nil
}

// Emit appends the spec's blocks to db and returns the ground truth.
func (s FlipSpec2) Emit(db *txdb.DB, rng *rand.Rand, filler func(*rand.Rand) []string) ExpectedFlip {
	emit := func(count int, names ...string) {
		for i := 0; i < count; i++ {
			tx := append([]string(nil), names...)
			if filler != nil {
				tx = append(tx, filler(rng)...)
			}
			db.AddNames(tx...)
		}
	}
	if s.LeafPositive {
		// (−,+): leaves always together, roots mostly apart.
		rootOnly := s.NegRootOnly
		if rootOnly == 0 {
			rootOnly = 250 * s.Scale
		}
		emit(2*s.Scale, s.LeafA, s.LeafB)
		emit(rootOnly, s.SibA)
		emit(rootOnly, s.SibB)
		return ExpectedFlip{
			LeafA: s.LeafA, LeafB: s.LeafB,
			Labels:         []string{"-", "+"},
			MinLeafSupport: int64(2 * s.Scale),
		}
	}
	// (+,−): roots always together, leaves mostly apart.
	emit(1*s.Scale, s.LeafA, s.LeafB)
	emit(12*s.Scale, s.LeafA, s.SibB)
	emit(12*s.Scale, s.SibA, s.LeafB)
	return ExpectedFlip{
		LeafA: s.LeafA, LeafB: s.LeafB,
		Labels:         []string{"+", "-"},
		MinLeafSupport: int64(s.Scale),
	}
}
