package gen

import (
	"math"
	"math/rand"
	"testing"

	"github.com/flipper-mining/flipper/internal/itemset"
	"github.com/flipper-mining/flipper/internal/measure"
	"github.com/flipper-mining/flipper/internal/taxonomy"
	"github.com/flipper-mining/flipper/internal/txdb"
)

func spec3(positive bool) FlipSpec3 {
	return FlipSpec3{
		RootA: "A", RootB: "B",
		MidA: "A.m", MidB: "B.m", AltMidA: "A.alt", AltMidB: "B.alt",
		LeafA: "A.m.l", LeafB: "B.m.l", SibA: "A.m.s", SibB: "B.m.s",
		AltLeafA: "A.alt.l", AltLeafB: "B.alt.l",
		LeafPositive: positive, Scale: 2,
	}
}

// kulcOf measures the pair correlation at a level via brute-force counting.
func kulcOf(t *testing.T, db *txdb.DB, tree *taxonomy.Tree, h int, nameA, nameB string) float64 {
	t.Helper()
	lv, err := txdb.Materialize(db, tree, h)
	if err != nil {
		t.Fatal(err)
	}
	a, ok := tree.Dict().Lookup(nameA)
	if !ok {
		t.Fatalf("unknown node %q", nameA)
	}
	b, ok := tree.Dict().Lookup(nameB)
	if !ok {
		t.Fatalf("unknown node %q", nameB)
	}
	ga, _ := tree.AncestorAt(a, h)
	gb, _ := tree.AncestorAt(b, h)
	pair := itemset.New(ga, gb)
	sup := lv.SupportOf(pair)
	return measure.Kulczynski.Corr2(sup, lv.Support[ga], lv.Support[gb])
}

func TestFlipSpec3PositiveChainValues(t *testing.T) {
	s := spec3(true)
	b := taxonomy.NewBuilder(nil)
	if err := s.Register(b); err != nil {
		t.Fatal(err)
	}
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	db := txdb.New(tree.Dict())
	exp := s.Emit(db, rand.New(rand.NewSource(1)), nil)
	if exp.LeafA != s.LeafA || exp.LeafB != s.LeafB {
		t.Errorf("expected pair = %q,%q", exp.LeafA, exp.LeafB)
	}
	if len(exp.Labels) != 3 || exp.Labels[0] != "+" || exp.Labels[1] != "-" || exp.Labels[2] != "+" {
		t.Errorf("labels = %v", exp.Labels)
	}
	// Analytic chain values: 1.0 / 2/22 / 1.0.
	if got := kulcOf(t, db, tree, 1, s.LeafA, s.LeafB); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("level-1 kulc = %v, want 1.0", got)
	}
	if got := kulcOf(t, db, tree, 2, s.LeafA, s.LeafB); math.Abs(got-2.0/22) > 1e-9 {
		t.Errorf("level-2 kulc = %v, want %v", got, 2.0/22)
	}
	if got := kulcOf(t, db, tree, 3, s.LeafA, s.LeafB); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("level-3 kulc = %v, want 1.0", got)
	}
	if exp.MinLeafSupport != 4 { // 2×Scale
		t.Errorf("MinLeafSupport = %d", exp.MinLeafSupport)
	}
}

func TestFlipSpec3NegativeChainValues(t *testing.T) {
	s := spec3(false)
	b := taxonomy.NewBuilder(nil)
	if err := s.Register(b); err != nil {
		t.Fatal(err)
	}
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	db := txdb.New(tree.Dict())
	exp := s.Emit(db, rand.New(rand.NewSource(1)), nil)
	if got := exp.Labels; got[0] != "-" || got[1] != "+" || got[2] != "-" {
		t.Errorf("labels = %v", got)
	}
	// Analytic values: 25/275, 1.0, 1/13.
	if got := kulcOf(t, db, tree, 1, s.LeafA, s.LeafB); math.Abs(got-25.0/275) > 1e-9 {
		t.Errorf("level-1 kulc = %v, want %v", got, 25.0/275)
	}
	if got := kulcOf(t, db, tree, 2, s.LeafA, s.LeafB); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("level-2 kulc = %v, want 1.0", got)
	}
	if got := kulcOf(t, db, tree, 3, s.LeafA, s.LeafB); math.Abs(got-1.0/13) > 1e-9 {
		t.Errorf("level-3 kulc = %v, want %v", got, 1.0/13)
	}
}

func TestFlipSpec2ChainValues(t *testing.T) {
	for _, positive := range []bool{true, false} {
		s := FlipSpec2{
			RootA: "P", RootB: "Q",
			LeafA: "P.l", LeafB: "Q.l", SibA: "P.s", SibB: "Q.s",
			LeafPositive: positive, Scale: 3,
		}
		b := taxonomy.NewBuilder(nil)
		if err := s.Register(b); err != nil {
			t.Fatal(err)
		}
		tree, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		db := txdb.New(tree.Dict())
		exp := s.Emit(db, rand.New(rand.NewSource(1)), nil)
		l1 := kulcOf(t, db, tree, 1, s.LeafA, s.LeafB)
		l2 := kulcOf(t, db, tree, 2, s.LeafA, s.LeafB)
		if positive {
			if exp.Labels[0] != "-" || exp.Labels[1] != "+" {
				t.Errorf("labels = %v", exp.Labels)
			}
			// sup(AB)=2s, sup(A)=sup(B)=252s → Kulc = 2/252.
			if math.Abs(l1-2.0/252) > 1e-9 || math.Abs(l2-1.0) > 1e-9 {
				t.Errorf("positive spec: l1=%v l2=%v", l1, l2)
			}
		} else {
			if exp.Labels[0] != "+" || exp.Labels[1] != "-" {
				t.Errorf("labels = %v", exp.Labels)
			}
			if math.Abs(l1-1.0) > 1e-9 || math.Abs(l2-1.0/13) > 1e-9 {
				t.Errorf("negative spec: l1=%v l2=%v", l1, l2)
			}
		}
	}
}

func TestFlipSpecScaleValidation(t *testing.T) {
	s := spec3(true)
	s.Scale = 0
	if err := s.Register(taxonomy.NewBuilder(nil)); err == nil {
		t.Error("scale 0 accepted by FlipSpec3")
	}
	s2 := FlipSpec2{RootA: "a", RootB: "b", LeafA: "al", LeafB: "bl", SibA: "as", SibB: "bs"}
	if err := s2.Register(taxonomy.NewBuilder(nil)); err == nil {
		t.Error("scale 0 accepted by FlipSpec2")
	}
}

func TestFillerDoesNotPerturbChains(t *testing.T) {
	s := spec3(true)
	b := taxonomy.NewBuilder(nil)
	if err := s.Register(b); err != nil {
		t.Fatal(err)
	}
	// A noise category supplies fillers.
	if err := b.AddPath("noise", "noise.m", "noise.m.1"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPath("noise", "noise.m", "noise.m.2"); err != nil {
		t.Fatal(err)
	}
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	db := txdb.New(tree.Dict())
	filler := func(rng *rand.Rand) []string {
		if rng.Float64() < 0.5 {
			return []string{"noise.m.1"}
		}
		return []string{"noise.m.1", "noise.m.2"}
	}
	s.Emit(db, rand.New(rand.NewSource(2)), filler)
	if got := kulcOf(t, db, tree, 2, s.LeafA, s.LeafB); math.Abs(got-2.0/22) > 1e-9 {
		t.Errorf("filler perturbed level-2 kulc: %v", got)
	}
	if got := kulcOf(t, db, tree, 3, s.LeafA, s.LeafB); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("filler perturbed level-3 kulc: %v", got)
	}
}
