package gen

import (
	"math"
	"math/rand"
	"testing"

	"github.com/flipper-mining/flipper/internal/txdb"
)

func TestBuildTaxonomyShape(t *testing.T) {
	p := TaxonomyParams{Roots: 3, Fanout: 2, Height: 3, Prefix: "x"}
	tr, err := BuildTaxonomy(p)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Height() != 3 {
		t.Fatalf("height = %d", tr.Height())
	}
	sizes := tr.LevelSizes()
	if sizes[1] != 3 || sizes[2] != 6 || sizes[3] != 12 {
		t.Errorf("level sizes = %v", sizes)
	}
	if !tr.IsBalanced() {
		t.Error("complete tree should be balanced")
	}
}

func TestBuildTaxonomyPaperDefaults(t *testing.T) {
	tr, err := BuildTaxonomy(DefaultTaxonomyParams())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Height() != 4 {
		t.Fatalf("height = %d", tr.Height())
	}
	leaves := len(tr.Leaves())
	// |I| trimmed to ~1000 as in the paper (10 roots × 5^3 = 1250 untrimmed).
	if leaves < 990 || leaves > 1010 {
		t.Errorf("leaves = %d, want ≈1000", leaves)
	}
	if got := len(tr.NodesAtLevel(1)); got != 10 {
		t.Errorf("level-1 categories = %d", got)
	}
}

func TestBuildTaxonomyTrimStaysBalanced(t *testing.T) {
	// Trimming distributes the leaf quota evenly across roots (5/2 -> 2 per
	// root) and must never leave a childless internal node behind.
	p := TaxonomyParams{Roots: 2, Fanout: 3, Height: 3, MaxLeaves: 5, Prefix: "t"}
	tr, err := BuildTaxonomy(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Leaves()); got != 4 {
		t.Errorf("trimmed leaves = %d, want 2 per root", got)
	}
	if !tr.IsBalanced() {
		t.Error("trimmed tree must stay balanced")
	}
	if got := len(tr.NodesAtLevel(1)); got != 2 {
		t.Errorf("roots = %d, want both kept", got)
	}
}

func TestBuildTaxonomyRejectsBadParams(t *testing.T) {
	for _, p := range []TaxonomyParams{
		{Roots: 0, Fanout: 5, Height: 4},
		{Roots: 5, Fanout: 0, Height: 4},
		{Roots: 5, Fanout: 5, Height: 0},
	} {
		if _, err := BuildTaxonomy(p); err == nil {
			t.Errorf("params %+v accepted", p)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	tr, err := BuildTaxonomy(TaxonomyParams{Roots: 5, Fanout: 3, Height: 3, Prefix: "g"})
	if err != nil {
		t.Fatal(err)
	}
	p := Params{N: 2000, AvgWidth: 5, PatternCount: 50, AvgPatternLen: 4, CorruptionMean: 0.5, Seed: 3}
	db, err := Generate(tr, p)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 2000 {
		t.Fatalf("N = %d", db.Len())
	}
	st, err := txdb.ComputeStats(db)
	if err != nil {
		t.Fatal(err)
	}
	// Poisson(4)+1 has mean 5; duplicates inside a transaction shrink it a
	// little. Accept a generous band.
	if st.AvgWidth < 3.0 || st.AvgWidth > 6.0 {
		t.Errorf("avg width = %v, want ≈5", st.AvgWidth)
	}
	if st.DistinctItems < 20 {
		t.Errorf("distinct items = %d, too few", st.DistinctItems)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	tr, err := BuildTaxonomy(TaxonomyParams{Roots: 4, Fanout: 2, Height: 3, Prefix: "d"})
	if err != nil {
		t.Fatal(err)
	}
	p := Params{N: 300, AvgWidth: 4, PatternCount: 30, AvgPatternLen: 3, CorruptionMean: 0.5, Seed: 9}
	a, err := Generate(tr, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(tr, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Len(); i++ {
		if !a.Tx(i).Equal(b.Tx(i)) {
			t.Fatalf("transaction %d differs between identical seeds", i)
		}
	}
	p.Seed = 10
	c, err := Generate(tr, p)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < a.Len() && same; i++ {
		same = a.Tx(i).Equal(c.Tx(i))
	}
	if same {
		t.Error("different seeds produced identical databases")
	}
}

func TestGenerateParamValidation(t *testing.T) {
	tr, err := BuildTaxonomy(TaxonomyParams{Roots: 2, Fanout: 2, Height: 2, Prefix: "v"})
	if err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{N: -1, AvgWidth: 5, PatternCount: 10, AvgPatternLen: 4},
		{N: 10, AvgWidth: 0, PatternCount: 10, AvgPatternLen: 4},
		{N: 10, AvgWidth: 5, PatternCount: 0, AvgPatternLen: 4},
		{N: 10, AvgWidth: 5, PatternCount: 10, AvgPatternLen: 0},
	}
	for i, p := range bad {
		if _, err := Generate(tr, p); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestPoisson(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const mean = 4.0
	const n = 20000
	sum := 0
	for i := 0; i < n; i++ {
		sum += poisson(rng, mean)
	}
	got := float64(sum) / n
	if math.Abs(got-mean) > 0.1 {
		t.Errorf("poisson mean = %v, want %v", got, mean)
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Error("non-positive mean must give 0")
	}
}

func TestClamp01(t *testing.T) {
	if clamp01(-0.5) != 0 || clamp01(1.5) != 1 || clamp01(0.25) != 0.25 {
		t.Error("clamp01 wrong")
	}
}
