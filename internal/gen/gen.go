// Package gen provides the synthetic-workload substrate of the paper's
// Section 5.1: a re-implementation of the Srikant & Agrawal generalized
// association-rule generator ("Mining Generalized Association Rules",
// VLDB 1995) — the generator the paper uses for all scaling experiments —
// plus a planted-flips generator with known ground truth that backs the
// integration tests and the real-dataset simulators.
//
// Everything is deterministic given a seed.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/flipper-mining/flipper/internal/itemset"
	"github.com/flipper-mining/flipper/internal/taxonomy"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// TaxonomyParams shapes a synthetic taxonomy. The paper's defaults: 10
// level-1 categories ("roots"), fanout 5, height 4, ~1000 leaves.
type TaxonomyParams struct {
	// Roots is the number of level-1 categories.
	Roots int
	// Fanout is the number of children of every internal node.
	Fanout int
	// Height is the number of levels.
	Height int
	// MaxLeaves, when positive, trims the tree to approximately this many
	// leaves by dropping trailing leaves (the paper's |I| = 1000 with
	// 10 roots × fanout 5 × height 4 would otherwise give 1250).
	MaxLeaves int
	// Prefix namespaces node names so several trees can share a dictionary.
	Prefix string
}

// DefaultTaxonomyParams returns the paper's synthetic defaults.
func DefaultTaxonomyParams() TaxonomyParams {
	return TaxonomyParams{Roots: 10, Fanout: 5, Height: 4, MaxLeaves: 1000, Prefix: "i"}
}

// BuildTaxonomy constructs the complete Roots × Fanout^(Height-1) tree.
func BuildTaxonomy(p TaxonomyParams) (*taxonomy.Tree, error) {
	if p.Roots < 1 || p.Fanout < 1 || p.Height < 1 {
		return nil, fmt.Errorf("gen: invalid taxonomy params %+v", p)
	}
	b := taxonomy.NewBuilder(nil)
	// The leaf quota is distributed evenly across roots so that trimming
	// (the paper's |I| = 1000 over 10 categories) never drops a whole
	// category: each root keeps the first quota leaves of its subtree.
	quota := math.MaxInt
	if p.MaxLeaves > 0 {
		quota = p.MaxLeaves / p.Roots
		if quota < 1 {
			quota = 1
		}
	}
	// Depth-first creation: name nodes by their path, e.g. i3.1.4.0. A node
	// is only created while quota remains, and the first descendant chain of
	// every created internal node reaches a leaf before the quota can drop,
	// so the trimmed tree stays balanced.
	leaves := 0
	var build func(parent string, level int) bool
	build = func(parent string, level int) bool {
		for c := 0; c < p.Fanout; c++ {
			if leaves >= quota {
				return false
			}
			name := fmt.Sprintf("%s.%d", parent, c)
			if err := b.AddEdge(parent, name); err != nil {
				panic(err) // unique path names cannot conflict
			}
			if level == p.Height {
				leaves++
			} else if !build(name, level+1) {
				return false
			}
		}
		return true
	}
	for r := 0; r < p.Roots; r++ {
		root := fmt.Sprintf("%s%d", p.Prefix, r)
		b.AddRoot(root)
		leaves = 0
		if p.Height > 1 {
			build(root, 2)
		}
	}
	return b.Build()
}

// Params shapes a synthetic transaction database in the style of Srikant &
// Agrawal. Field names follow the original generator's table.
type Params struct {
	// N is the number of transactions (paper default 100,000).
	N int
	// AvgWidth is the mean transaction width W (Poisson; paper default 5).
	AvgWidth float64
	// PatternCount is the size of the potentially-large itemset table |L|
	// (paper default 2000).
	PatternCount int
	// AvgPatternLen is the mean size of a potentially-large itemset
	// (original generator default 4).
	AvgPatternLen float64
	// CorruptionMean is the mean corruption level c (items dropped from a
	// pattern instance; original default 0.5).
	CorruptionMean float64
	// Seed drives every random choice.
	Seed int64
}

// DefaultParams returns the paper's synthetic defaults.
func DefaultParams() Params {
	return Params{
		N:              100_000,
		AvgWidth:       5,
		PatternCount:   2000,
		AvgPatternLen:  4,
		CorruptionMean: 0.5,
		Seed:           1,
	}
}

// Generate produces a transaction database over the leaves of tree.
//
// Following the original generator: a table of PatternCount potentially
// large itemsets is drawn first (sizes Poisson-distributed around
// AvgPatternLen, items biased towards siblings of previously chosen items
// to model intra-category affinity, weights exponentially distributed);
// each transaction then draws patterns by weight, corrupts them by dropping
// items, and fills up to its Poisson-distributed width.
func Generate(tree *taxonomy.Tree, p Params) (*txdb.DB, error) {
	if p.N < 0 {
		return nil, fmt.Errorf("gen: negative N")
	}
	if p.AvgWidth <= 0 || p.AvgPatternLen <= 0 {
		return nil, fmt.Errorf("gen: non-positive widths")
	}
	if p.PatternCount < 1 {
		return nil, fmt.Errorf("gen: PatternCount < 1")
	}
	leaves := tree.Leaves()
	if len(leaves) == 0 {
		return nil, fmt.Errorf("gen: taxonomy has no leaves")
	}
	rng := rand.New(rand.NewSource(p.Seed))

	// Potentially large itemsets with exponential weights.
	type pattern struct {
		items  itemset.Set
		weight float64
	}
	patterns := make([]pattern, 0, p.PatternCount)
	totalWeight := 0.0
	for i := 0; i < p.PatternCount; i++ {
		size := poisson(rng, p.AvgPatternLen-1) + 1
		if size > len(leaves) {
			size = len(leaves)
		}
		ids := make([]itemset.ID, 0, size)
		for j := 0; j < size; j++ {
			var next itemset.ID
			if j > 0 && rng.Float64() < 0.5 {
				// Bias towards a sibling of the previous item: intra-category
				// affinity, as in the original generator's correlation knob.
				sibs := tree.Children(tree.Parent(ids[len(ids)-1]))
				next = sibs[rng.Intn(len(sibs))]
			} else {
				next = leaves[rng.Intn(len(leaves))]
			}
			ids = append(ids, next)
		}
		w := rng.ExpFloat64()
		patterns = append(patterns, pattern{items: itemset.New(ids...), weight: w})
		totalWeight += w
	}
	// Cumulative weights for O(log n) sampling.
	cum := make([]float64, len(patterns))
	acc := 0.0
	for i, pat := range patterns {
		acc += pat.weight / totalWeight
		cum[i] = acc
	}
	pick := func() pattern {
		x := rng.Float64()
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return patterns[lo]
	}

	db := txdb.New(tree.Dict())
	buf := make([]itemset.ID, 0, 32)
	for i := 0; i < p.N; i++ {
		want := poisson(rng, p.AvgWidth-1) + 1
		buf = buf[:0]
		for len(buf) < want {
			pat := pick()
			// Corrupt: keep dropping items while a uniform draw stays below
			// the pattern's corruption level.
			c := clamp01(rng.NormFloat64()*0.1 + p.CorruptionMean)
			kept := append([]itemset.ID(nil), pat.items...)
			for len(kept) > 0 && rng.Float64() < c {
				kept = append(kept[:0], kept[1:]...)
			}
			if len(kept) == 0 {
				kept = append(kept, leaves[rng.Intn(len(leaves))])
			}
			buf = append(buf, kept...)
		}
		if len(buf) > want {
			buf = buf[:want]
		}
		db.Add(buf...)
	}
	return db, nil
}

// poisson draws from a Poisson distribution with the given mean (Knuth's
// method; means here are small).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
