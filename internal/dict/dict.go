// Package dict provides the shared string↔ID dictionary used by the taxonomy
// and transaction-database substrates. Every item — leaf or internal taxonomy
// node — owns exactly one int32 identifier, assigned densely from zero so
// that per-item tables can be plain slices.
package dict

import (
	"fmt"
	"sort"
)

// Dictionary maps item names to dense int32 identifiers and back. The zero
// value is not usable; construct with New. A Dictionary is not safe for
// concurrent mutation; the mining engine treats it as read-only after load.
type Dictionary struct {
	names []string
	ids   map[string]int32
}

// New returns an empty dictionary.
func New() *Dictionary {
	return &Dictionary{ids: make(map[string]int32)}
}

// ID returns the identifier for name, assigning the next free identifier if
// name has not been seen before.
func (d *Dictionary) ID(name string) int32 {
	if id, ok := d.ids[name]; ok {
		return id
	}
	id := int32(len(d.names))
	d.names = append(d.names, name)
	d.ids[name] = id
	return id
}

// Lookup returns the identifier for name without assigning a new one.
func (d *Dictionary) Lookup(name string) (int32, bool) {
	id, ok := d.ids[name]
	return id, ok
}

// Name returns the name owning id. It panics when id was never assigned,
// because that always indicates corrupted caller state rather than user input.
func (d *Dictionary) Name(id int32) string {
	if id < 0 || int(id) >= len(d.names) {
		panic(fmt.Sprintf("dict: unknown id %d (have %d)", id, len(d.names)))
	}
	return d.names[id]
}

// Len returns the number of assigned identifiers.
func (d *Dictionary) Len() int { return len(d.names) }

// Names returns a copy of all names ordered by identifier.
func (d *Dictionary) Names() []string {
	out := make([]string, len(d.names))
	copy(out, d.names)
	return out
}

// SortedNames returns all names in lexicographic order; handy for
// deterministic output in tools and tests.
func (d *Dictionary) SortedNames() []string {
	out := d.Names()
	sort.Strings(out)
	return out
}

// Clone returns an independent copy of the dictionary.
func (d *Dictionary) Clone() *Dictionary {
	c := New()
	c.names = append(c.names, d.names...)
	for name, id := range d.ids {
		c.ids[name] = id
	}
	return c
}
