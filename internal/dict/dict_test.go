package dict

import (
	"testing"
	"testing/quick"
)

func TestIDAssignment(t *testing.T) {
	d := New()
	a := d.ID("apple")
	b := d.ID("banana")
	if a == b {
		t.Fatal("distinct names share an id")
	}
	if got := d.ID("apple"); got != a {
		t.Errorf("re-lookup of apple = %d, want %d", got, a)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
	if d.Name(a) != "apple" || d.Name(b) != "banana" {
		t.Error("Name does not invert ID")
	}
}

func TestIDsAreDense(t *testing.T) {
	d := New()
	for i := 0; i < 100; i++ {
		id := d.ID(string(rune('a' + i)))
		if id != int32(i) {
			t.Fatalf("id %d assigned for insertion %d", id, i)
		}
	}
}

func TestLookup(t *testing.T) {
	d := New()
	d.ID("x")
	if _, ok := d.Lookup("x"); !ok {
		t.Error("Lookup(x) missed")
	}
	if _, ok := d.Lookup("y"); ok {
		t.Error("Lookup(y) found unassigned name")
	}
	if d.Len() != 1 {
		t.Error("Lookup must not assign")
	}
}

func TestNamePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Name of unknown id did not panic")
		}
	}()
	New().Name(3)
}

func TestCloneIndependence(t *testing.T) {
	d := New()
	d.ID("a")
	c := d.Clone()
	c.ID("b")
	if d.Len() != 1 || c.Len() != 2 {
		t.Errorf("clone not independent: orig %d, clone %d", d.Len(), c.Len())
	}
	if c.Name(0) != "a" {
		t.Error("clone lost original entries")
	}
}

func TestSortedNames(t *testing.T) {
	d := New()
	for _, n := range []string{"pear", "apple", "mango"} {
		d.ID(n)
	}
	got := d.SortedNames()
	want := []string{"apple", "mango", "pear"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedNames = %v", got)
		}
	}
	// Names() stays in id order.
	if d.Names()[0] != "pear" {
		t.Error("Names not in id order")
	}
}

// Property: ID is idempotent and Name inverts it.
func TestRoundTripProperty(t *testing.T) {
	d := New()
	f := func(name string) bool {
		id := d.ID(name)
		return d.ID(name) == id && d.Name(id) == name
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
