package golden

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"testing"

	"github.com/flipper-mining/flipper/internal/core"
)

// The anchored top-K surface is pinned on the topk-cosine scenario's dataset
// (no new scenario row: the /v1 conformance choreography numbers jobs by
// scenario order, so riding an existing dataset keeps those fixtures
// untouched). Three envelopes are committed: the core anchored result
// (topk_result.json, also what `flipper -anchor -json-api` must print), the
// /v1/topk 200 job envelope (topk.json), and the endpoint's error bodies.

// anchoredScenario returns the topk-cosine scenario and the anchored
// configuration the fixtures pin: the scenario's canonical config with the
// global top-K knob swapped for an anchor at level 2 of the paper's toy
// taxonomy.
func anchoredScenario(t *testing.T) (*Scenario, core.Config) {
	t.Helper()
	for _, sc := range Scenarios() {
		if sc.Name == "topk-cosine" {
			_, _, cfg := sc.Load(t)
			cfg.TopK = 0
			cfg.Anchor = "a1"
			cfg.AnchorTopK = 2
			return &sc, cfg
		}
	}
	t.Fatal("topk-cosine scenario missing")
	return nil, core.Config{}
}

// anchoredCoreEnvelope mines the anchored configuration in process and
// returns the raw result envelope — the reference every surface is compared
// against.
func anchoredCoreEnvelope(t *testing.T, sc *Scenario, cfg core.Config) []byte {
	t.Helper()
	tree, src, _ := sc.Load(t)
	res, err := core.Mine(src, tree, cfg)
	if err != nil {
		t.Fatalf("anchored Mine: %v", err)
	}
	if len(res.Patterns) == 0 {
		t.Fatal("anchored fixture mined no patterns; the fixture would pin an empty envelope")
	}
	raw, err := json.Marshal(res.JSON(tree))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestTopKCoreGolden pins the anchored result envelope: patterns ranked by
// descending flip gap, truncated to K, with the sketch counters in stats.
// This test owns the fixture under -update.
func TestTopKCoreGolden(t *testing.T) {
	sc, cfg := anchoredScenario(t)
	raw := anchoredCoreEnvelope(t, sc, cfg)
	Compare(t, filepath.Join(SuiteDir, "topk_result.json"), raw)
}

// TestTopKCLIGolden runs the real binary with -anchor over the committed
// scenario inputs and pins stdout to the same anchored envelope. Like
// TestCLIResultGolden, under -update it compares against a fresh in-process
// mine instead of the fixture (test order across files is not guaranteed).
func TestTopKCLIGolden(t *testing.T) {
	sc, cfg := anchoredScenario(t)
	bin := flipperBin(t)
	args := append(sc.CLIArgs(), "-anchor", cfg.Anchor)
	cmd := exec.Command(bin, args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("flipper %v: %v\nstderr:\n%s", args, err, stderr.String())
	}
	if *Update {
		want, err := Canonical(anchoredCoreEnvelope(t, sc, cfg))
		if err != nil {
			t.Fatal(err)
		}
		got, err := Canonical(stdout.Bytes())
		if err != nil {
			t.Fatalf("canonicalizing CLI output: %v\nstdout:\n%s", err, stdout.String())
		}
		if !bytes.Equal(got, want) {
			t.Errorf("anchored CLI envelope diverges from core envelope:\n%s", Diff(want, got))
		}
		return
	}
	Compare(t, filepath.Join(SuiteDir, "topk_result.json"), stdout.Bytes())
}

// TestTopKHTTPGolden pins the /v1/topk success envelope on a fresh server:
// the GET form answers 200 with a finished job whose embedded result is
// byte-identical (canonicalized) to the core anchored envelope, and the POST
// form with the equivalent body canonicalizes to the same envelope.
func TestTopKHTTPGolden(t *testing.T) {
	sc, cfg := anchoredScenario(t)
	h := newConformanceHandler(t)

	query := fmt.Sprintf("/v1/topk?dataset=%s&anchor=%s&k=%d", sc.Name, cfg.Anchor, cfg.AnchorTopK)
	// The registered dataset mines under its default config; overlay the
	// scenario's canonical knobs so the envelope matches the core fixture.
	// The GET form cannot carry a config patch, so the suite pins the POST
	// envelope and checks the GET form against the dataset defaults only by
	// status.
	code, body := do(t, h, "GET", query, nil)
	if code != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", query, code, body)
	}

	post, err := json.Marshal(map[string]any{
		"dataset": sc.Name,
		"anchor":  cfg.Anchor,
		"k":       cfg.AnchorTopK,
		"config":  patchFor(sc.Config),
	})
	if err != nil {
		t.Fatal(err)
	}
	code, body = do(t, h, "POST", "/v1/topk", post)
	if code != http.StatusOK {
		t.Fatalf("POST /v1/topk: status %d: %s", code, body)
	}
	var env struct {
		Status string          `json:"status"`
		Error  string          `json:"error"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Status != "done" {
		t.Fatalf("topk job finished %s: %s", env.Status, env.Error)
	}
	Compare(t, filepath.Join(SuiteDir, "topk.json"), body)

	// Cross-surface identity: the embedded result canonicalizes to exactly
	// the core anchored envelope (computed in process so -update ordering
	// across test files cannot race the fixture).
	gotRes, err := Canonical(env.Result)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Canonical(anchoredCoreEnvelope(t, sc, cfg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotRes, want) {
		t.Errorf("/v1/topk embedded result diverges from core anchored envelope:\n%s", Diff(want, gotRes))
	}

	// A repeat of the identical query must come back flagged as a cache hit:
	// topk rides the same queue, cache and single-flight as mine jobs.
	code, body = do(t, h, "POST", "/v1/topk", post)
	if code != http.StatusOK {
		t.Fatalf("cached POST /v1/topk: status %d: %s", code, body)
	}
	var cached struct {
		CacheHit bool `json:"cache_hit"`
	}
	if err := json.Unmarshal(body, &cached); err != nil {
		t.Fatal(err)
	}
	if !cached.CacheHit {
		t.Errorf("repeated topk query was not served from the result cache: %s", body)
	}
}

// TestTopKHTTPErrorEnvelopes pins the /v1/topk error paths — unknown anchor
// (404), invalid K (400), missing anchor (400), unknown dataset (404) — in
// the suite's wrapped {"status": N, "body": {...}} form on a fresh server.
func TestTopKHTTPErrorEnvelopes(t *testing.T) {
	h := newConformanceHandler(t)
	cases := []struct {
		name   string
		method string
		path   string
		body   string
	}{
		{"topk_unknown_anchor", "GET", "/v1/topk?dataset=topk-cosine&anchor=no-such-item&k=2", ""},
		{"topk_invalid_k", "GET", "/v1/topk?dataset=topk-cosine&anchor=a1&k=0", ""},
		{"topk_missing_anchor", "GET", "/v1/topk?dataset=topk-cosine&k=2", ""},
		{"topk_unknown_dataset", "GET", "/v1/topk?dataset=no-such-dataset&anchor=a1&k=2", ""},
		{"topk_bad_mode", "POST", "/v1/topk", `{"dataset": "topk-cosine", "anchor": "a1", "k": 2, "mode": "psychic"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := do(t, h, tc.method, tc.path, []byte(tc.body))
			if code < 400 {
				t.Fatalf("expected an error status, got %d: %s", code, body)
			}
			wrapped := fmt.Sprintf("{\"status\": %d, \"body\": %s}", code, body)
			Compare(t, filepath.Join(SuiteDir, "errors", tc.name+".json"), []byte(wrapped))
		})
	}
}
