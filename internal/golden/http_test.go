package golden

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"github.com/flipper-mining/flipper/internal/core"
	"github.com/flipper-mining/flipper/internal/itemset"
	"github.com/flipper-mining/flipper/internal/service"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// The /v1 surface is exercised over httptest against a server whose registry
// holds every committed scenario. The whole conformance choreography is
// deterministic: one worker, jobs submitted in scenario order, each waited to
// completion before the next request, so job numbering, queue counters and
// the jobs list are identical on every run (timestamps are scrubbed by
// canonicalization).

// newConformanceHandler builds a flipperd server serving every scenario as a
// registered dataset (the scenario fixture directories are flipgen-layout
// dataset directories on purpose).
func newConformanceHandler(t *testing.T) http.Handler {
	t.Helper()
	reg := service.NewRegistry()
	for i := range Scenarios() {
		sc := Scenarios()[i]
		tree, src, _ := sc.Load(t)
		if err := reg.Add(&service.Dataset{Name: sc.Name, Tree: tree, Src: src, Stream: sc.Stream}); err != nil {
			t.Fatal(err)
		}
	}
	srv := service.NewServer(reg, service.Options{Workers: 1})
	t.Cleanup(srv.Close)
	return srv.Handler()
}

// do issues one request against the handler and returns status and body.
func do(t *testing.T, h http.Handler, method, path string, body []byte) (int, []byte) {
	t.Helper()
	rec := doRec(t, h, method, path, body)
	return rec.Code, rec.Body.Bytes()
}

// doRec is do exposing the full recorder, for tests that pin headers.
func doRec(t *testing.T, h http.Handler, method, path string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// patchFor renders a scenario configuration as the submit-time ConfigPatch
// that reproduces it exactly over the dataset's defaults.
func patchFor(cfg core.Config) *service.ConfigPatch {
	return &service.ConfigPatch{
		Measure:     &cfg.Measure,
		Gamma:       &cfg.Gamma,
		Epsilon:     &cfg.Epsilon,
		MinSup:      cfg.MinSup,
		Pruning:     &cfg.Pruning,
		Strategy:    &cfg.Strategy,
		MaxK:        &cfg.MaxK,
		Materialize: &cfg.Materialize,
		TopK:        &cfg.TopK,
	}
}

func submitBody(t *testing.T, sc *Scenario) []byte {
	t.Helper()
	raw, err := json.Marshal(service.SubmitRequest{Dataset: sc.Name, Config: patchFor(sc.Config)})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// waitDone polls a job until it leaves the queue and returns its final
// envelope.
func waitDone(t *testing.T, h http.Handler, id string) []byte {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		code, body := do(t, h, "GET", "/v1/jobs/"+id, nil)
		if code != http.StatusOK {
			t.Fatalf("GET /v1/jobs/%s: status %d: %s", id, code, body)
		}
		var v struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatalf("job envelope: %v", err)
		}
		if v.Status == "done" || v.Status == "failed" || v.Status == "cancelled" {
			return body
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return nil
}

// TestHTTPConformance runs the deterministic /v1 choreography: every
// scenario submitted and mined to completion in order, then a cache-hit
// resubmission, a sweep job, and finally the suite-wide endpoint envelopes
// (jobs list, datasets, healthz, stats). Each job's final envelope is pinned
// per scenario (job.json) and its embedded result must be byte-identical to
// the core/CLI fixture (result.json) — the cross-surface conformance claim.
func TestHTTPConformance(t *testing.T) {
	h := newConformanceHandler(t)
	scs := Scenarios()
	for i := range scs {
		sc := &scs[i]
		t.Run("job/"+sc.Name, func(t *testing.T) {
			code, resp := do(t, h, "POST", "/v1/jobs", submitBody(t, sc))
			if code != http.StatusAccepted && code != http.StatusOK {
				t.Fatalf("submit: status %d: %s", code, resp)
			}
			var submitted struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(resp, &submitted); err != nil || submitted.ID == "" {
				t.Fatalf("submit envelope has no job id: %s", resp)
			}
			final := waitDone(t, h, submitted.ID)
			var env struct {
				Status string          `json:"status"`
				Error  string          `json:"error"`
				Result json.RawMessage `json:"result"`
			}
			if err := json.Unmarshal(final, &env); err != nil {
				t.Fatal(err)
			}
			if env.Status != "done" {
				t.Fatalf("job finished %s: %s", env.Status, env.Error)
			}
			Compare(t, filepath.Join(sc.Dir(), "job.json"), final)

			// Cross-surface identity: the result embedded in the HTTP job
			// envelope canonicalizes to exactly the core/CLI fixture.
			gotRes, err := Canonical(env.Result)
			if err != nil {
				t.Fatal(err)
			}
			want := ReadFixture(t, filepath.Join(sc.Dir(), "result.json"))
			if !bytes.Equal(gotRes, want) {
				t.Errorf("/v1 embedded result diverges from core envelope for %s:\n%s",
					sc.Name, Diff(want, gotRes))
			}
		})
	}

	t.Run("cache-hit", func(t *testing.T) {
		// Resubmitting the first scenario verbatim must come back already
		// done and flagged cache_hit, with the identical result payload.
		code, resp := do(t, h, "POST", "/v1/jobs", submitBody(t, &scs[0]))
		if code != http.StatusOK {
			t.Fatalf("cache-hit submit: status %d: %s", code, resp)
		}
		Compare(t, filepath.Join(SuiteDir, "cache_hit.json"), resp)
	})

	t.Run("sweep", func(t *testing.T) {
		raw, err := json.Marshal(service.SubmitRequest{
			Dataset:  scs[0].Name,
			Kind:     service.JobSweep,
			Config:   patchFor(scs[0].Config),
			Epsilons: []float64{0.25 * scs[0].Config.Gamma, 0.5 * scs[0].Config.Gamma, 0.75 * scs[0].Config.Gamma},
		})
		if err != nil {
			t.Fatal(err)
		}
		code, resp := do(t, h, "POST", "/v1/jobs", raw)
		if code != http.StatusAccepted && code != http.StatusOK {
			t.Fatalf("sweep submit: status %d: %s", code, resp)
		}
		var submitted struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(resp, &submitted); err != nil || submitted.ID == "" {
			t.Fatalf("sweep submit envelope has no job id: %s", resp)
		}
		Compare(t, filepath.Join(SuiteDir, "sweep.json"), waitDone(t, h, submitted.ID))
	})

	// Suite-wide envelopes, pinned after the full choreography so the jobs
	// list and every counter reflect a known, reproducible history.
	for _, ep := range []struct{ name, path string }{
		{"jobs_list", "/v1/jobs"},
		{"datasets", "/v1/datasets"},
		{"healthz", "/v1/healthz"},
		{"readyz", "/v1/readyz"},
		{"stats", "/v1/stats"},
	} {
		t.Run(ep.name, func(t *testing.T) {
			code, body := do(t, h, "GET", ep.path, nil)
			if code != http.StatusOK {
				t.Fatalf("GET %s: status %d: %s", ep.path, code, body)
			}
			Compare(t, filepath.Join(SuiteDir, ep.name+".json"), body)
		})
	}
}

// TestHTTPErrorEnvelopes pins every /v1 error path — status code and exact
// JSON error body together, wrapped as {"status": N, "body": {...}} — on a
// fresh server so nothing depends on prior jobs.
func TestHTTPErrorEnvelopes(t *testing.T) {
	h := newConformanceHandler(t)
	cases := []struct {
		name   string
		method string
		path   string
		body   string
	}{
		{"unknown_dataset", "POST", "/v1/jobs", `{"dataset": "no-such-dataset"}`},
		{"malformed_body", "POST", "/v1/jobs", `{"dataset": "toy-paper",`},
		{"unknown_config_field", "POST", "/v1/jobs", `{"dataset": "toy-paper", "config": {"shards": 2}}`},
		{"invalid_config", "POST", "/v1/jobs", `{"dataset": "toy-paper", "config": {"gamma": 1.5}}`},
		{"bad_kind", "POST", "/v1/jobs", `{"dataset": "toy-paper", "kind": "train"}`},
		{"mine_with_epsilons", "POST", "/v1/jobs", `{"dataset": "toy-paper", "epsilons": [0.1]}`},
		{"sweep_no_epsilons", "POST", "/v1/jobs", `{"dataset": "toy-paper", "kind": "sweep"}`},
		{"sweep_bad_epsilon", "POST", "/v1/jobs", `{"dataset": "toy-paper", "kind": "sweep", "epsilons": [5]}`},
		{"bad_timeout", "POST", "/v1/jobs", `{"dataset": "toy-paper", "timeout_ms": -5}`},
		{"unknown_job", "GET", "/v1/jobs/job-999999", ""},
		{"cancel_unknown_job", "DELETE", "/v1/jobs/job-999999", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := do(t, h, tc.method, tc.path, []byte(tc.body))
			if code < 400 {
				t.Fatalf("expected an error status, got %d: %s", code, body)
			}
			wrapped := fmt.Sprintf("{\"status\": %d, \"body\": %s}", code, body)
			Compare(t, filepath.Join(SuiteDir, "errors", tc.name+".json"), []byte(wrapped))
		})
	}
}

// gateSource wraps an in-memory database so its first Scan parks until
// released: the job occupying the single worker is frozen mid-mine, making
// the queue-full 503 deterministic instead of a race against fast toy mines.
type gateSource struct {
	*txdb.DB
	entered chan struct{}
	release chan struct{}
}

func (g *gateSource) Scan(fn func(tx itemset.Set) error) error {
	select {
	case g.entered <- struct{}{}:
	default:
	}
	<-g.release
	return g.DB.Scan(fn)
}

// TestHTTPQueueFullEnvelope pins the 503 envelope: a one-worker,
// depth-one server whose running job is gated mid-scan, a second job
// filling the queue, and a third deterministically rejected.
func TestHTTPQueueFullEnvelope(t *testing.T) {
	sc := Scenarios()[0]
	tree, _, _ := sc.Load(t)
	db := txdb.New(tree.Dict())
	db.AddNames("a11", "b11")
	gs := &gateSource{
		DB:      db,
		entered: make(chan struct{}, 1),
		release: make(chan struct{}),
	}
	reg := service.NewRegistry()
	if err := reg.Add(&service.Dataset{Name: "gate", Tree: tree, Src: gs}); err != nil {
		t.Fatal(err)
	}
	srv := service.NewServer(reg, service.Options{Workers: 1, QueueDepth: 1})
	defer srv.Close()
	defer close(gs.release)
	h := srv.Handler()

	submit := func(epsilon float64) (int, []byte) {
		body := fmt.Sprintf(`{"dataset": "gate", "config": {"epsilon": %g}}`, epsilon)
		return do(t, h, "POST", "/v1/jobs", []byte(body))
	}
	if code, body := submit(0.05); code != http.StatusAccepted {
		t.Fatalf("gate job: status %d: %s", code, body)
	}
	select {
	case <-gs.entered:
	case <-time.After(30 * time.Second):
		t.Fatal("gated job never started scanning")
	}
	if code, body := submit(0.15); code != http.StatusAccepted {
		t.Fatalf("filler job: status %d: %s", code, body)
	}
	rec := doRec(t, h, "POST", "/v1/jobs", []byte(`{"dataset": "gate", "config": {"epsilon": 0.2}}`))
	code, body := rec.Code, rec.Body.Bytes()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("expected 503, got %d: %s", code, body)
	}
	// The Retry-After hint is part of the pinned envelope: load-shedding
	// without it invites hot-looping clients.
	wrapped := fmt.Sprintf("{\"status\": %d, \"retry_after\": %q, \"body\": %s}",
		code, rec.Header().Get("Retry-After"), body)
	Compare(t, filepath.Join(SuiteDir, "errors", "queue_full.json"), []byte(wrapped))
}

// TestHTTPCancelEnvelopes pins the DELETE /v1/jobs/{id} choreography on a
// gated one-worker server: cancelling a queued job (finalized instantly),
// cancelling the running job (acknowledged, then finalized once the miner
// observes the context), the final cancelled job envelope, and the 409 for
// re-cancelling a finished job.
func TestHTTPCancelEnvelopes(t *testing.T) {
	sc := Scenarios()[0]
	tree, _, _ := sc.Load(t)
	db := txdb.New(tree.Dict())
	db.AddNames("a11", "b11")
	gs := &gateSource{
		DB:      db,
		entered: make(chan struct{}, 1),
		release: make(chan struct{}),
	}
	reg := service.NewRegistry()
	if err := reg.Add(&service.Dataset{Name: "gate", Tree: tree, Src: gs}); err != nil {
		t.Fatal(err)
	}
	srv := service.NewServer(reg, service.Options{Workers: 1, QueueDepth: 4})
	defer srv.Close()
	h := srv.Handler()

	submit := func(epsilon float64) string {
		t.Helper()
		body := fmt.Sprintf(`{"dataset": "gate", "config": {"epsilon": %g}}`, epsilon)
		code, resp := do(t, h, "POST", "/v1/jobs", []byte(body))
		if code != http.StatusAccepted {
			t.Fatalf("submit: status %d: %s", code, resp)
		}
		var v struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(resp, &v); err != nil || v.ID == "" {
			t.Fatalf("submit envelope has no job id: %s", resp)
		}
		return v.ID
	}

	running := submit(0.05)
	select {
	case <-gs.entered:
	case <-time.After(30 * time.Second):
		t.Fatal("gated job never started scanning")
	}
	queued := submit(0.15)

	code, body := do(t, h, "DELETE", "/v1/jobs/"+queued, nil)
	if code != http.StatusOK {
		t.Fatalf("cancel queued: status %d: %s", code, body)
	}
	Compare(t, filepath.Join(SuiteDir, "cancel_queued.json"), body)

	code, body = do(t, h, "DELETE", "/v1/jobs/"+running, nil)
	if code != http.StatusOK {
		t.Fatalf("cancel running: status %d: %s", code, body)
	}
	Compare(t, filepath.Join(SuiteDir, "cancel_running.json"), body)

	// Unblock the gated scan; the miner hits its next checkpoint, observes
	// the cancelled context and the job finalizes as cancelled.
	close(gs.release)
	final := waitDone(t, h, running)
	Compare(t, filepath.Join(SuiteDir, "job_cancelled.json"), final)

	code, body = do(t, h, "DELETE", "/v1/jobs/"+running, nil)
	if code != http.StatusConflict {
		t.Fatalf("cancel finished: status %d: %s", code, body)
	}
	wrapped := fmt.Sprintf("{\"status\": %d, \"body\": %s}", code, body)
	Compare(t, filepath.Join(SuiteDir, "errors", "cancel_finished.json"), []byte(wrapped))
}
