// Package golden is the wire-format conformance harness: every scenario
// under testdata/golden/<name>/ commits an input dataset (taxonomy.tsv plus
// baskets.txt or shards/), a config.json, and the expected JSON envelopes
// (result.json for the core Mine → ResultJSON path and the flipper -json-api
// CLI, job.json and the _suite/ files for the flipperd /v1 API). Tests mine
// the committed inputs through all three surfaces and compare canonicalized
// JSON by deep equality; `go test ./internal/golden -update` regenerates
// every fixture deterministically.
//
// Canonicalization re-marshals the JSON with sorted keys and stable
// indentation and scrubs exactly the fields the wire layers declare volatile
// (core.VolatileStatsKeys, service.VolatileWireKeys): timestamps, elapsed
// durations, uptimes and generated job IDs. Everything else — field names,
// pattern order, supports, correlations, counters — is pinned byte for byte,
// which is what makes engine refactors (distributed flipperd, streaming
// ingestion, top-K) safe to land against this suite.
package golden

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/flipper-mining/flipper/internal/core"
	"github.com/flipper-mining/flipper/internal/service"
)

// Update is the regeneration switch: `go test ./internal/golden -update`
// rewrites every committed fixture (inputs and expected envelopes) instead
// of comparing. Run it over the whole package, not with -run filters, so no
// fixture is left stale.
var Update = flag.Bool("update", false, "regenerate golden fixtures instead of comparing")

// Root is the fixture tree, relative to this package directory (the working
// directory of its tests).
const Root = "testdata/golden"

// SuiteDir holds the fixtures that span scenarios (the /v1 endpoint and
// error envelopes); the leading underscore keeps it from parsing as a
// dataset directory.
var SuiteDir = filepath.Join(Root, "_suite")

// volatileKeys is the union of the volatile wire fields declared by the core
// and service layers; scrub replaces their values with fixed sentinels.
var volatileKeys = func() map[string]bool {
	m := make(map[string]bool)
	for _, k := range core.VolatileStatsKeys() {
		m[k] = true
	}
	for _, k := range service.VolatileWireKeys() {
		m[k] = true
	}
	return m
}()

// Canonical parses raw JSON and re-renders it deterministically: object keys
// sorted (encoding/json marshals maps that way), two-space indentation, a
// trailing newline, and every volatile wire field replaced by a sentinel of
// its own type ("<volatile>" for strings, 0 for numbers).
func Canonical(raw []byte) ([]byte, error) {
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, fmt.Errorf("golden: invalid JSON: %w", err)
	}
	scrub(v)
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// scrub walks the decoded JSON tree replacing volatile values in place.
func scrub(v any) {
	switch x := v.(type) {
	case map[string]any:
		for k, val := range x {
			if volatileKeys[k] {
				switch val.(type) {
				case string:
					x[k] = "<volatile>"
				case float64:
					x[k] = 0
				}
				continue
			}
			scrub(val)
		}
	case []any:
		for _, e := range x {
			scrub(e)
		}
	}
}

// Compare canonicalizes got and checks it against the committed fixture at
// path. Under -update it (re)writes the fixture instead. On mismatch it
// fails with a line diff and, when the GOLDEN_DIFF_DIR environment variable
// is set (the CI conformance job sets it), drops the canonicalized actual
// bytes and the diff there so the break is diagnosable from the uploaded
// artifact alone.
func Compare(t *testing.T, path string, got []byte) {
	t.Helper()
	canon, err := Canonical(got)
	if err != nil {
		t.Fatalf("golden: %s: %v\nraw output:\n%s", path, err, got)
	}
	if *Update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, canon, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden: missing fixture %s (regenerate with `go test ./internal/golden -update`): %v", path, err)
	}
	if bytes.Equal(canon, want) {
		return
	}
	d := Diff(want, canon)
	saveDiffArtifact(t, path, canon, d)
	t.Errorf("golden mismatch for %s (regenerate with `go test ./internal/golden -update` if the change is intended):\n%s", path, d)
}

// ReadFixture loads a committed fixture, failing the test if it is absent.
func ReadFixture(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden: missing fixture %s (regenerate with `go test ./internal/golden -update`): %v", path, err)
	}
	return b
}

// Diff renders a loud line-oriented comparison of two canonical JSON
// documents: every run of differing lines is printed with -/+ markers and a
// few lines of surrounding context, capped so a wholly different envelope
// does not flood the log.
func Diff(want, got []byte) string {
	const context, maxBlocks = 2, 8
	w := strings.Split(strings.TrimSuffix(string(want), "\n"), "\n")
	g := strings.Split(strings.TrimSuffix(string(got), "\n"), "\n")
	var b strings.Builder
	fmt.Fprintf(&b, "--- want (%d lines)\n+++ got (%d lines)\n", len(w), len(g))
	blocks := 0
	i := 0
	for i < len(w) || i < len(g) {
		if i < len(w) && i < len(g) && w[i] == g[i] {
			i++
			continue
		}
		// Start of a differing block: find where the streams re-align.
		j := i
		for j < len(w) || j < len(g) {
			if j < len(w) && j < len(g) && w[j] == g[j] {
				break
			}
			j++
		}
		if blocks++; blocks > maxBlocks {
			b.WriteString("... (more differences truncated)\n")
			break
		}
		for c := max(0, i-context); c < i; c++ {
			fmt.Fprintf(&b, "  %4d   %s\n", c+1, w[c])
		}
		for c := i; c < j && c < len(w); c++ {
			fmt.Fprintf(&b, "- %4d   %s\n", c+1, w[c])
		}
		for c := i; c < j && c < len(g); c++ {
			fmt.Fprintf(&b, "+ %4d   %s\n", c+1, g[c])
		}
		for c := j; c < min(j+context, min(len(w), len(g))); c++ {
			fmt.Fprintf(&b, "  %4d   %s\n", c+1, w[c])
		}
		i = j
	}
	return b.String()
}

// saveDiffArtifact writes the actual bytes and the diff under
// $GOLDEN_DIFF_DIR, mirroring the fixture layout, for CI artifact upload.
func saveDiffArtifact(t *testing.T, path string, got []byte, diff string) {
	t.Helper()
	dir := os.Getenv("GOLDEN_DIFF_DIR")
	if dir == "" {
		return
	}
	rel, err := filepath.Rel(Root, path)
	if err != nil {
		rel = filepath.Base(path)
	}
	dst := filepath.Join(dir, rel)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Logf("golden: diff artifact: %v", err)
		return
	}
	if err := os.WriteFile(dst+".got", got, 0o644); err != nil {
		t.Logf("golden: diff artifact: %v", err)
	}
	if err := os.WriteFile(dst+".diff", []byte(diff), 0o644); err != nil {
		t.Logf("golden: diff artifact: %v", err)
	}
}
