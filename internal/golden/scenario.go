package golden

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/flipper-mining/flipper/internal/core"
	"github.com/flipper-mining/flipper/internal/datasets"
	"github.com/flipper-mining/flipper/internal/gen"
	"github.com/flipper-mining/flipper/internal/measure"
	"github.com/flipper-mining/flipper/internal/taxonomy"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// Scenario is one committed conformance fixture: a deterministic dataset
// builder, the on-disk layout it is written in, and the canonical mining
// configuration whose wire envelopes are pinned. The scenario directory
// doubles as a flipgen-layout dataset directory, so the flipperd registry
// and the flipper CLI consume it unchanged.
type Scenario struct {
	// Name is the directory under testdata/golden and the dataset name the
	// scenario is registered under in the /v1 API fixtures.
	Name string
	// Shards > 1 writes the sharded layout (shards/shardNNN.txt) instead of
	// a single baskets.txt, exercising shard-parallel counting end to end.
	Shards int
	// Stream loads the committed baskets through disk-streaming sources
	// (txdb.FileSource per file), the out-of-core mode.
	Stream bool
	// Config is the canonical mining configuration; it is committed as
	// config.json and is the configuration all three surfaces are pinned
	// under. Keep Shards/Parallelism zero: shardedness comes from the
	// on-disk layout so the CLI and the service resolve it identically.
	Config core.Config
	// Build deterministically constructs the taxonomy and transactions.
	// Generators are seeded and handcrafted baskets are literals, so
	// -update regenerates byte-identical inputs on any machine.
	Build func() (*taxonomy.Tree, *txdb.DB)
}

// Dir returns the scenario's fixture directory.
func (sc *Scenario) Dir() string { return filepath.Join(Root, sc.Name) }

// Load opens the committed fixture inputs: the taxonomy (leaf-copy extended
// when unbalanced, as every surface does), the transaction source in the
// scenario's layout and streaming mode, and the canonical configuration.
func (sc *Scenario) Load(t interface{ Fatalf(string, ...any) }) (*taxonomy.Tree, txdb.Source, core.Config) {
	tree, src, cfg, err := sc.open()
	if err != nil {
		t.Fatalf("golden: scenario %s: %v", sc.Name, err)
	}
	return tree, src, cfg
}

func (sc *Scenario) open() (*taxonomy.Tree, txdb.Source, core.Config, error) {
	var cfg core.Config
	tf, err := os.Open(filepath.Join(sc.Dir(), "taxonomy.tsv"))
	if err != nil {
		return nil, nil, cfg, err
	}
	tree, err := taxonomy.Parse(tf, nil)
	tf.Close()
	if err != nil {
		return nil, nil, cfg, err
	}
	if !tree.IsBalanced() {
		tree = tree.Extend()
	}
	var src txdb.Source
	if sc.Shards > 1 {
		src, err = txdb.OpenShardDir(filepath.Join(sc.Dir(), "shards"), tree.Dict(), sc.Stream)
	} else {
		src, err = txdb.OpenBasketSource(filepath.Join(sc.Dir(), "baskets.txt"), tree.Dict(), sc.Stream)
	}
	if err != nil {
		return nil, nil, cfg, err
	}
	raw, err := os.ReadFile(filepath.Join(sc.Dir(), "config.json"))
	if err != nil {
		return nil, nil, cfg, fmt.Errorf("config.json: %w (regenerate with -update)", err)
	}
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return nil, nil, cfg, fmt.Errorf("config.json: %w", err)
	}
	return tree, src, cfg, nil
}

// CLIArgs renders the canonical configuration as flipper CLI flags, so the
// CLI surface mines exactly the committed scenario.
func (sc *Scenario) CLIArgs() []string {
	cfg := sc.Config
	sups := make([]string, len(cfg.MinSup))
	for i, v := range cfg.MinSup {
		sups[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	args := []string{
		"-tax", filepath.Join(sc.Dir(), "taxonomy.tsv"),
		"-db", sc.Dir(),
		"-gamma", strconv.FormatFloat(cfg.Gamma, 'g', -1, 64),
		"-epsilon", strconv.FormatFloat(cfg.Epsilon, 'g', -1, 64),
		"-minsup", strings.Join(sups, ","),
		"-measure", cfg.Measure.String(),
		"-pruning", cfg.Pruning.String(),
		"-strategy", cfg.Strategy.String(),
		"-json-api",
	}
	if cfg.TopK > 0 {
		args = append(args, "-topk", strconv.Itoa(cfg.TopK))
	}
	if cfg.MaxK > 0 {
		args = append(args, "-maxk", strconv.Itoa(cfg.MaxK))
	}
	if !cfg.Materialize {
		args = append(args, "-stream")
	}
	return args
}

// WriteInputs regenerates the scenario's committed inputs (taxonomy.tsv,
// baskets.txt or shards/, config.json), wiping the directory first so stale
// layouts and expected envelopes never linger. Only -update calls this.
func (sc *Scenario) WriteInputs() error {
	dir := sc.Dir()
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tree, db := sc.Build()
	tf, err := os.Create(filepath.Join(dir, "taxonomy.tsv"))
	if err != nil {
		return err
	}
	if _, err := tree.WriteTo(tf); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}
	if sc.Shards > 1 {
		sdir := filepath.Join(dir, "shards")
		if err := os.MkdirAll(sdir, 0o755); err != nil {
			return err
		}
		for i, part := range txdb.Partition(db, sc.Shards) {
			f, err := os.Create(filepath.Join(sdir, fmt.Sprintf("shard%03d.txt", i)))
			if err != nil {
				return err
			}
			if err := part.WriteBaskets(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	} else {
		f, err := os.Create(filepath.Join(dir, "baskets.txt"))
		if err != nil {
			return err
		}
		if err := db.WriteBaskets(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	raw, err := json.MarshalIndent(sc.Config, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "config.json"), append(raw, '\n'), 0o644)
}

// Scenarios returns the committed scenario matrix, sorted by name — the
// order fixtures are generated and jobs submitted in, so suite-level
// envelopes stay stable.
func Scenarios() []Scenario {
	list := []Scenario{
		{
			Name:   "toy-paper",
			Config: handConfig(3, 0.6, 0.35),
			Build: func() (*taxonomy.Tree, *txdb.DB) {
				ds := datasets.PaperToy()
				return ds.Tree, ds.DB
			},
		},
		{
			Name:   "multi-taxonomy",
			Config: handConfig(3, 0.6, 0.35),
			Build:  buildMultiTaxonomy,
		},
		{
			Name: "deep-chain",
			Config: core.Config{
				Measure: measure.Kulczynski, Gamma: 0.6, Epsilon: 0.35,
				MinSup:  []float64{0.1, 0.1, 0.05, 0.03, 0.02, 0.01},
				Pruning: core.Full, Strategy: core.CountScan, Materialize: true,
			},
			Build: buildDeepChain,
		},
		{
			Name:   "degenerate-flat",
			Config: handConfig(2, 0.6, 0.35),
			Build:  buildDegenerateFlat,
		},
		{
			Name: "star",
			Config: core.Config{
				Measure: measure.Kulczynski, Gamma: 0.5, Epsilon: 0.2,
				MinSup:  []float64{0.03, 0.03},
				Pruning: core.Full, Strategy: core.CountScan, Materialize: true,
			},
			Build: buildStar,
		},
		{
			Name:   "incomplete-taxonomy",
			Config: handConfig(3, 0.6, 0.35),
			Build:  buildIncomplete,
		},
		{
			Name:   "sharded-2",
			Shards: 2,
			Config: shardedConfig(),
			Build:  buildShardedWorkload,
		},
		{
			Name:   "sharded-7",
			Shards: 7,
			Config: shardedConfig(),
			Build:  buildShardedWorkload,
		},
		{
			Name:   "outofcore-stream",
			Stream: true,
			Config: core.Config{
				Measure: measure.Kulczynski, Gamma: 0.3, Epsilon: 0.28,
				MinSup:  []float64{0.03, 0.015, 0.01, 0.008},
				Pruning: core.Full, Strategy: core.CountScan, Materialize: false,
			},
			Build: func() (*taxonomy.Tree, *txdb.DB) {
				return buildSynthetic(gen.TaxonomyParams{Roots: 5, Fanout: 3, Height: 4, Prefix: "o"},
					2400, 5, 60, 3, 13)
			},
		},
		{
			// The reality-check simulator with planted flipping patterns
			// (Table 4 GROCERIES row): the fixture pins the store-layout
			// chains {canned beer, baby cosmetics} (+,−,+), {pork chops,
			// salad dressing} (+,−,+) and {eggs, fresh fish} (−,+,−), mined
			// through the bitmap counting backend as its canonical strategy.
			Name: "groceries-sim",
			Config: core.Config{
				Measure: measure.Kulczynski, Gamma: 0.15, Epsilon: 0.10,
				MinSup:  []float64{0.001, 0.0005, 0.0002},
				Pruning: core.Full, Strategy: core.CountBitmap, Materialize: true,
			},
			Build: func() (*taxonomy.Tree, *txdb.DB) {
				ds, err := datasets.Groceries(0.2, 21)
				if err != nil {
					panic(err)
				}
				return ds.Tree, ds.DB
			},
		},
		{
			Name: "topk-cosine",
			Config: core.Config{
				Measure: measure.Cosine, Gamma: 0.5, Epsilon: 0.4,
				MinSup:  []float64{0.1, 0.1, 0.1},
				Pruning: core.Full, Strategy: core.CountScan, Materialize: true,
				TopK: 2,
			},
			Build: func() (*taxonomy.Tree, *txdb.DB) {
				ds := datasets.PaperToy()
				return ds.Tree, ds.DB
			},
		},
	}
	sort.Slice(list, func(i, j int) bool { return list[i].Name < list[j].Name })
	return list
}

// handConfig is the shared shape of the handcrafted scenarios: Kulczynski,
// full pruning, scan counting, materialized views, uniform 10% supports.
func handConfig(height int, gamma, epsilon float64) core.Config {
	sup := make([]float64, height)
	for i := range sup {
		sup[i] = 0.1
	}
	return core.Config{
		Measure: measure.Kulczynski, Gamma: gamma, Epsilon: epsilon,
		MinSup: sup, Pruning: core.Full, Strategy: core.CountScan, Materialize: true,
	}
}

func shardedConfig() core.Config {
	return core.Config{
		Measure: measure.Kulczynski, Gamma: 0.3, Epsilon: 0.25,
		MinSup:  []float64{0.04, 0.02, 0.015},
		Pruning: core.Full, Strategy: core.CountScan, Materialize: true,
	}
}

// buildSynthetic wraps the seeded Srikant & Agrawal-style generator.
func buildSynthetic(tp gen.TaxonomyParams, n int, width float64, patterns int, patLen float64, seed int64) (*taxonomy.Tree, *txdb.DB) {
	tree, err := gen.BuildTaxonomy(tp)
	if err != nil {
		panic(err)
	}
	p := gen.DefaultParams()
	p.N = n
	p.AvgWidth = width
	p.PatternCount = patterns
	p.AvgPatternLen = patLen
	p.Seed = seed
	db, err := gen.Generate(tree, p)
	if err != nil {
		panic(err)
	}
	return tree, db
}

// toyPaths and toyBaskets are the paper's Figure 4 worked example (the same
// data datasets.PaperToy builds), reused with prefixes by the multi-taxonomy
// scenario.
var toyPaths = [][]string{
	{"a", "a1", "a11"}, {"a", "a1", "a12"},
	{"a", "a2", "a21"}, {"a", "a2", "a22"},
	{"b", "b1", "b11"}, {"b", "b1", "b12"},
	{"b", "b2", "b21"}, {"b", "b2", "b22"},
}

var toyBaskets = [][]string{
	{"a11", "a22", "b11", "b22"},
	{"a11", "a21", "b11"},
	{"a12", "a21"},
	{"a12", "a22", "b21"},
	{"a12", "a22", "b21"},
	{"a12", "a21", "b22"},
	{"a21", "b12"},
	{"b12", "b21", "b22"},
	{"b12", "b21"},
	{"a22", "b12", "b22"},
}

// buildMultiTaxonomy plants the toy example twice under two disjoint
// level-1 forests ("x…" and "y…") sharing one dictionary; every basket
// holds an x-domain toy transaction and a (rotated) y-domain one, so both
// domains keep their planted flip and cross-domain correlations appear on
// top. Null-invariant measures ignore the changed transaction count, which
// is what keeps the per-domain flips intact.
func buildMultiTaxonomy() (*taxonomy.Tree, *txdb.DB) {
	b := taxonomy.NewBuilder(nil)
	for _, prefix := range []string{"x", "y"} {
		for _, path := range toyPaths {
			p := make([]string, len(path))
			for i, name := range path {
				p[i] = prefix + name
			}
			if err := b.AddPath(p...); err != nil {
				panic(err)
			}
		}
	}
	tree, err := b.Build()
	if err != nil {
		panic(err)
	}
	db := txdb.New(tree.Dict())
	for i := range toyBaskets {
		var names []string
		for _, n := range toyBaskets[i] {
			names = append(names, "x"+n)
		}
		for _, n := range toyBaskets[(i+3)%len(toyBaskets)] {
			names = append(names, "y"+n)
		}
		db.AddNames(names...)
	}
	return tree, db
}

// buildDegenerateFlat is the minimum-height taxonomy (2 levels: roots and
// leaves). {r0,r1} is negative while {r0.a,r1.a} is perfectly positive — a
// one-step flip — and two explicitly empty transactions exercise the basket
// format's "-" lines through every surface.
func buildDegenerateFlat() (*taxonomy.Tree, *txdb.DB) {
	b := taxonomy.NewBuilder(nil)
	for r := 0; r < 4; r++ {
		root := fmt.Sprintf("r%d", r)
		for _, leaf := range []string{"a", "b", "c"} {
			if err := b.AddPath(root, root+"."+leaf); err != nil {
				panic(err)
			}
		}
	}
	tree, err := b.Build()
	if err != nil {
		panic(err)
	}
	db := txdb.New(tree.Dict())
	for i := 0; i < 6; i++ {
		db.AddNames("r0.a", "r1.a")
	}
	for i := 0; i < 12; i++ {
		db.AddNames("r0.b", "r2.a")
	}
	for i := 0; i < 12; i++ {
		db.AddNames("r1.b", "r3.a")
	}
	for i := 0; i < 6; i++ {
		db.AddNames("r2.b", "r3.b")
	}
	db.Add() // explicitly empty transactions: format edge case
	db.Add()
	return tree, db
}

// buildStar is the degenerate single-hub taxonomy: one level-1 node over 12
// leaves. Every leaf pair generalizes onto the lone hub, so no flipping
// chain can exist — the scenario pins the empty envelope and the stats of a
// run that prunes everything.
func buildStar() (*taxonomy.Tree, *txdb.DB) {
	b := taxonomy.NewBuilder(nil)
	leaves := make([]string, 12)
	for i := range leaves {
		leaves[i] = fmt.Sprintf("s%02d", i)
		if err := b.AddPath("hub", leaves[i]); err != nil {
			panic(err)
		}
	}
	tree, err := b.Build()
	if err != nil {
		panic(err)
	}
	db := txdb.New(tree.Dict())
	for i := 0; i < 30; i++ {
		db.AddNames(leaves[i%12], leaves[(i*5+1)%12])
	}
	return tree, db
}

// buildIncomplete is the crowd-taxonomy shape: the a-side is a full 3-level
// hierarchy, b2 is a leaf stranded at level 2 (its level-3 descendants were
// never reported), and "orphan" is an item with no ancestors at all. The
// tree is unbalanced, so every surface leaf-copy extends it (Figure 3
// variant B); {a11,b11} still flips (+,−,+).
func buildIncomplete() (*taxonomy.Tree, *txdb.DB) {
	b := taxonomy.NewBuilder(nil)
	for _, path := range [][]string{
		{"a", "a1", "a11"}, {"a", "a1", "a12"},
		{"a", "a2", "a21"}, {"a", "a2", "a22"},
		{"b", "b1", "b11"}, {"b", "b1", "b12"},
	} {
		if err := b.AddPath(path...); err != nil {
			panic(err)
		}
	}
	if err := b.AddPath("b", "b2"); err != nil { // leaf stranded at level 2
		panic(err)
	}
	b.AddRoot("orphan") // item missing every ancestor
	tree, err := b.Build()
	if err != nil {
		panic(err)
	}
	db := txdb.New(tree.Dict())
	for _, tx := range [][]string{
		{"a11", "b11"},
		{"a11", "b11"},
		{"a12", "b2"},
		{"a12", "b2"},
		{"a12", "orphan"},
		{"a12", "b2"},
		{"a21", "b12"},
		{"a22", "b12"},
		{"b12", "orphan"},
		{"a22", "b12"},
		{"a21", "a22"},
		{"b2", "orphan"},
	} {
		db.AddNames(tx...)
	}
	return tree, db
}

// buildDeepChain hand-crafts a six-level taxonomy whose target pair
// {a.p, b.p} carries a fully alternating chain — every adjacent level flips
// sign. Two mirrored spines a and b descend to the target leaves; each spine
// node at levels 1–5 also owns a chain down to one "knob" leaf (a.n1…a.n5).
// Basket counts are solved level by level for Kulczynski at γ=0.6 ε=0.35:
// the knobs at levels 5, 3 and 1 appear alone (diluting every ancestor at
// their level and above toward the root), the knobs at levels 4 and 2 appear
// jointly across the spines (boosting co-occurrence there). The resulting
// chain, root to leaf, is
//
//	0.348 (−), 0.604 (+), 0.345 (−), 0.613 (+), 0.333 (−), 1.0 (+)
//
// and the joint knob pairs {a.n4, b.n4} and {a.n2, b.n2} surface as further
// deep-chain patterns of their own.
func buildDeepChain() (*taxonomy.Tree, *txdb.DB) {
	b := taxonomy.NewBuilder(nil)
	for _, s := range []string{"a", "b"} {
		for _, path := range [][]string{
			{s, s + ".2", s + ".3", s + ".4", s + ".5", s + ".p"},
			{s, s + ".2", s + ".3", s + ".4", s + ".5", s + ".n5"},
			{s, s + ".2", s + ".3", s + ".4", s + ".f4", s + ".n4"},
			{s, s + ".2", s + ".3", s + ".f3a", s + ".f3b", s + ".n3"},
			{s, s + ".2", s + ".f2a", s + ".f2b", s + ".f2c", s + ".n2"},
			{s, s + ".f1a", s + ".f1b", s + ".f1c", s + ".f1d", s + ".n1"},
		} {
			if err := b.AddPath(path...); err != nil {
				panic(err)
			}
		}
	}
	tree, err := b.Build()
	if err != nil {
		panic(err)
	}
	db := txdb.New(tree.Dict())
	addN := func(n int, items ...string) {
		for i := 0; i < n; i++ {
			db.AddNames(items...)
		}
	}
	addN(6, "a.p", "b.p")    // leaf pair: kulc 1.0 (+) at level 6
	addN(12, "a.n5")         // dilute level 5: 6/18 = 0.333 (−)
	addN(12, "b.n5")         //
	addN(13, "a.n4", "b.n4") // boost level 4: 19/31 ≈ 0.613 (+)
	addN(24, "a.n3")         // dilute level 3: 19/55 ≈ 0.345 (−)
	addN(24, "b.n3")         //
	addN(36, "a.n2", "b.n2") // boost level 2: 55/91 ≈ 0.604 (+)
	addN(67, "a.n1")         // dilute level 1: 55/158 ≈ 0.348 (−)
	addN(67, "b.n1")         //
	return tree, db
}

// buildShardedWorkload is the shared dataset of the sharded-2 and sharded-7
// scenarios: same transactions, different committed shard layouts, so the
// fixtures also pin that shard count never moves a correlation.
func buildShardedWorkload() (*taxonomy.Tree, *txdb.DB) {
	return buildSynthetic(gen.TaxonomyParams{Roots: 4, Fanout: 3, Height: 3, Prefix: "s"},
		280, 4, 30, 3, 7)
}
