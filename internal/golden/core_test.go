package golden

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/flipper-mining/flipper/internal/core"
)

// TestMain regenerates every scenario's committed inputs before any test
// runs when -update is set, so input files, core/CLI envelopes and /v1
// envelopes are always rewritten from the same generation.
func TestMain(m *testing.M) {
	flag.Parse()
	if *Update {
		if err := os.RemoveAll(SuiteDir); err != nil {
			fmt.Fprintln(os.Stderr, "golden:", err)
			os.Exit(1)
		}
		for _, sc := range Scenarios() {
			if err := sc.WriteInputs(); err != nil {
				fmt.Fprintf(os.Stderr, "golden: regenerate %s: %v\n", sc.Name, err)
				os.Exit(1)
			}
		}
	}
	os.Exit(m.Run())
}

// TestScenarioMatrixSize pins the issue's floor: the committed conformance
// wall must hold at least ten scenarios.
func TestScenarioMatrixSize(t *testing.T) {
	if n := len(Scenarios()); n < 10 {
		t.Fatalf("scenario matrix has %d scenarios, want >= 10", n)
	}
}

// TestCoreResultGolden mines every committed scenario through the core
// engine (Mine → Result.JSON) under its canonical configuration and pins
// the full wire envelope — patterns, chains, supports, correlations and
// non-volatile stats counters — byte for byte.
func TestCoreResultGolden(t *testing.T) {
	for _, sc := range Scenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			tree, src, cfg := sc.Load(t)
			res, err := core.Mine(src, tree, cfg)
			if err != nil {
				t.Fatalf("Mine: %v", err)
			}
			raw, err := json.Marshal(res.JSON(tree))
			if err != nil {
				t.Fatal(err)
			}
			Compare(t, filepath.Join(sc.Dir(), "result.json"), raw)
		})
	}
}

// TestStrategyPruningMatrix re-mines every scenario under all four counting
// strategies crossed with all four pruning levels and asserts the mined
// patterns are byte-identical to the canonical run's. Pattern sets must be
// invariant (the paper's losslessness claim for the pruning ladder, and
// counting is counting regardless of backend); stats counters legitimately
// differ, so only the pattern portion of the envelope is compared here —
// the canonical run's full envelope is pinned by TestCoreResultGolden.
func TestStrategyPruningMatrix(t *testing.T) {
	strategies := []core.CountStrategy{core.CountScan, core.CountTIDList, core.CountAuto, core.CountBitmap}
	prunings := []core.PruningLevel{core.Basic, core.Flipping, core.FlippingTPG, core.Full}
	for _, sc := range Scenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			tree, src, cfg := sc.Load(t)
			base, err := core.Mine(src, tree, cfg)
			if err != nil {
				t.Fatalf("canonical Mine: %v", err)
			}
			want := patternEnvelope(t, base.JSON(tree))
			for _, strat := range strategies {
				for _, pr := range prunings {
					c := cfg
					c.Strategy = strat
					c.Pruning = pr
					if strat != core.CountScan && !c.Materialize {
						// Non-scan backends require materialized views; the
						// out-of-core scenario mines them from memory here.
						c.Materialize = true
					}
					res, err := core.Mine(src, tree, c)
					if err != nil {
						t.Fatalf("%s/%s: Mine: %v", strat, pr, err)
					}
					got := patternEnvelope(t, res.JSON(tree))
					if got != want {
						t.Errorf("%s/%s: mined patterns diverge from canonical run:\n%s",
							strat, pr, Diff([]byte(want), []byte(got)))
					}
				}
			}
		})
	}
}

// patternEnvelope canonicalizes just the pattern portion (pattern_count +
// patterns) of a result envelope.
func patternEnvelope(t *testing.T, rj core.ResultJSON) string {
	t.Helper()
	raw, err := json.Marshal(map[string]any{
		"pattern_count": rj.PatternCount,
		"patterns":      rj.Patterns,
	})
	if err != nil {
		t.Fatal(err)
	}
	canon, err := Canonical(raw)
	if err != nil {
		t.Fatal(err)
	}
	return string(canon)
}

// TestCanonicalIsStable guards the harness itself: canonicalization is a
// fixed point (canon(canon(x)) == canon(x)) and scrubs volatile fields to
// typed sentinels.
func TestCanonicalIsStable(t *testing.T) {
	raw := []byte(`{"b":1,"a":{"elapsed":"17ms","elapsed_ns":17000000,"id":"job-000042","deep":[{"uptime":"3s","x":2}]}}`)
	once, err := Canonical(raw)
	if err != nil {
		t.Fatal(err)
	}
	twice, err := Canonical(once)
	if err != nil {
		t.Fatal(err)
	}
	if string(once) != string(twice) {
		t.Fatalf("canonicalization is not a fixed point:\n%s", Diff(once, twice))
	}
	var v struct {
		A struct {
			Elapsed   string `json:"elapsed"`
			ElapsedNS int    `json:"elapsed_ns"`
			ID        string `json:"id"`
			Deep      []struct {
				Uptime string `json:"uptime"`
			} `json:"deep"`
		} `json:"a"`
	}
	if err := json.Unmarshal(once, &v); err != nil {
		t.Fatal(err)
	}
	if v.A.Elapsed != "<volatile>" || v.A.ElapsedNS != 0 || v.A.ID != "<volatile>" || v.A.Deep[0].Uptime != "<volatile>" {
		t.Fatalf("volatile fields not scrubbed: %s", once)
	}
}
