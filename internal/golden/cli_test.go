package golden

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"

	"github.com/flipper-mining/flipper/internal/core"
)

// The CLI surface is exercised through the real `flipper` binary, not an
// in-process call: the conformance claim is that what an operator sees on
// stdout with -json-api is byte-identical (after canonicalization) to the
// core envelope committed in result.json.

var (
	cliBuildOnce sync.Once
	cliBinPath   string
	cliBuildOut  []byte
	cliBuildErr  error
)

func flipperBin(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping real-binary CLI conformance in -short mode")
	}
	cliBuildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "flipper-golden-")
		if err != nil {
			cliBuildErr = err
			return
		}
		cliBinPath = filepath.Join(dir, "flipper")
		cmd := exec.Command("go", "build", "-o", cliBinPath, "github.com/flipper-mining/flipper/cmd/flipper")
		cliBuildOut, cliBuildErr = cmd.CombinedOutput()
	})
	if cliBuildErr != nil {
		t.Fatalf("building flipper binary: %v\n%s", cliBuildErr, cliBuildOut)
	}
	return cliBinPath
}

// TestCLIResultGolden runs the real binary over every committed scenario
// with its canonical configuration rendered as flags and pins stdout to the
// same result.json fixture the core surface is pinned to. Under -update the
// CLI does not write the fixture (the core test owns it); it is instead
// checked against the in-process engine, so a surface divergence cannot be
// silently committed during regeneration.
func TestCLIResultGolden(t *testing.T) {
	for _, sc := range Scenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			bin := flipperBin(t)
			cmd := exec.Command(bin, sc.CLIArgs()...)
			var stdout, stderr bytes.Buffer
			cmd.Stdout = &stdout
			cmd.Stderr = &stderr
			if err := cmd.Run(); err != nil {
				t.Fatalf("flipper %v: %v\nstderr:\n%s", sc.CLIArgs(), err, stderr.String())
			}
			if *Update {
				// The core test owns (re)writing result.json, and test order
				// across files is not guaranteed; during regeneration the CLI
				// is checked against a fresh in-process mine instead, so a
				// surface divergence cannot be silently committed.
				tree, src, cfg := sc.Load(t)
				res, err := core.Mine(src, tree, cfg)
				if err != nil {
					t.Fatalf("Mine: %v", err)
				}
				raw, err := json.Marshal(res.JSON(tree))
				if err != nil {
					t.Fatal(err)
				}
				want, err := Canonical(raw)
				if err != nil {
					t.Fatal(err)
				}
				got, err := Canonical(stdout.Bytes())
				if err != nil {
					t.Fatalf("canonicalizing CLI output: %v\nstdout:\n%s", err, stdout.String())
				}
				if !bytes.Equal(got, want) {
					t.Errorf("CLI envelope diverges from core envelope for %s:\n%s",
						sc.Name, Diff(want, got))
				}
				return
			}
			Compare(t, filepath.Join(sc.Dir(), "result.json"), stdout.Bytes())
		})
	}
}
