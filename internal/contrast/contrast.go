// Package contrast implements the first extension sketched in the paper's
// future-work section: "the flipping pattern concept can be extended for
// discovering a set of discriminative correlations, that are specific for a
// given sub-group."
//
// Where the Flipper engine contrasts correlations *across taxonomy levels*,
// this package contrasts them *across populations*: a pair of items is a
// discriminative correlation for a sub-group when its correlation label
// inside the sub-group (the transactions containing a given context
// itemset) is opposite to its label in the whole database. The same
// null-invariant measures, thresholds and labeling rules apply, so findings
// compose naturally with flipping patterns.
package contrast

import (
	"fmt"
	"sort"

	"github.com/flipper-mining/flipper/internal/core"
	"github.com/flipper-mining/flipper/internal/itemset"
	"github.com/flipper-mining/flipper/internal/measure"
	"github.com/flipper-mining/flipper/internal/taxonomy"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// Config parameterizes a discriminative-correlation search.
type Config struct {
	// Measure is the null-invariant correlation measure (default
	// Kulczynski when zero-valued, matching the paper).
	Measure measure.Measure
	// Gamma and Epsilon are the positive / negative thresholds, as in the
	// flipping-pattern definition.
	Gamma   float64
	Epsilon float64
	// MinSup is the absolute minimum pair support required in each
	// population (sub-group and whole database).
	MinSup int64
	// Level is the taxonomy level at which items are compared; 0 means the
	// leaf level.
	Level int
	// RequireOpposite keeps only strict label flips (positive↔negative).
	// When false, a labeled-vs-unlabeled contrast is also reported.
	RequireOpposite bool
}

// Finding is one discriminative correlation.
type Finding struct {
	// Items is the correlated pair, at Config.Level.
	Items itemset.Set
	// Global* describe the pair in the whole database.
	GlobalSup   int64
	GlobalCorr  float64
	GlobalLabel core.Label
	// Group* describe the pair within the sub-group.
	GroupSup   int64
	GroupCorr  float64
	GroupLabel core.Label
	// Gap is |GroupCorr − GlobalCorr|; findings are ordered by descending
	// Gap, mirroring the "most flipping" ranking.
	Gap float64
}

// Format renders the finding with names resolved through the taxonomy.
func (f Finding) Format(tree *taxonomy.Tree) string {
	return fmt.Sprintf("%s  global %s corr=%.4f sup=%d | subgroup %s corr=%.4f sup=%d (gap %.3f)",
		tree.FormatSet(f.Items),
		f.GlobalLabel, f.GlobalCorr, f.GlobalSup,
		f.GroupLabel, f.GroupCorr, f.GroupSup, f.Gap)
}

// Discriminative finds all pairs at cfg.Level whose correlation label
// within the sub-group (transactions containing every item of the context
// itemset, given as leaf items) contrasts with their label in the whole
// database. Context items and their generalizations are excluded from the
// reported pairs.
func Discriminative(src txdb.Source, tree *taxonomy.Tree, context itemset.Set, cfg Config) ([]Finding, error) {
	if len(context) == 0 {
		return nil, fmt.Errorf("contrast: empty context itemset")
	}
	if !(cfg.Gamma > 0 && cfg.Gamma <= 1) {
		return nil, fmt.Errorf("contrast: gamma %v out of (0, 1]", cfg.Gamma)
	}
	if cfg.Epsilon < 0 || cfg.Epsilon >= cfg.Gamma {
		return nil, fmt.Errorf("contrast: epsilon %v must be in [0, gamma)", cfg.Epsilon)
	}
	if cfg.MinSup < 1 {
		return nil, fmt.Errorf("contrast: MinSup %d must be ≥ 1", cfg.MinSup)
	}
	level := cfg.Level
	if level == 0 {
		level = tree.Height()
	}
	if level < 1 || level > tree.Height() {
		return nil, fmt.Errorf("contrast: level %d out of range 1..%d", cfg.Level, tree.Height())
	}
	for _, id := range context {
		if !tree.Contains(id) {
			return nil, fmt.Errorf("contrast: context item %d not in taxonomy", id)
		}
	}
	// The context's own generalizations at the comparison level are trivially
	// correlated with the sub-group; exclude them from findings.
	excluded := make(map[itemset.ID]bool)
	for _, id := range context {
		if a, ok := tree.AncestorAt(id, level); ok {
			excluded[a] = true
		}
	}

	type pop struct {
		n      int64
		single map[itemset.ID]int64
		pair   map[string]int64
	}
	global := &pop{single: map[itemset.ID]int64{}, pair: map[string]int64{}}
	group := &pop{single: map[itemset.ID]int64{}, pair: map[string]int64{}}

	buf := make([]itemset.ID, 0, 32)
	keyBuf := make([]byte, 0, 8)
	err := src.Scan(func(tx itemset.Set) error {
		inGroup := context.SubsetOf(tx)
		buf = buf[:0]
		for _, id := range tx {
			if a, ok := tree.AncestorAt(id, level); ok && !excluded[a] {
				buf = append(buf, a)
			}
		}
		g := itemset.New(buf...)
		pops := []*pop{global}
		if inGroup {
			pops = append(pops, group)
		}
		for _, p := range pops {
			p.n++
			for _, id := range g {
				p.single[id]++
			}
		}
		for i := 0; i < len(g); i++ {
			for j := i + 1; j < len(g); j++ {
				keyBuf = itemset.AppendKey(keyBuf[:0], itemset.Set{g[i], g[j]})
				global.pair[string(keyBuf)]++
				if inGroup {
					group.pair[string(keyBuf)]++
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if group.n == 0 {
		return nil, fmt.Errorf("contrast: no transaction contains the context itemset")
	}

	label := func(corr float64) core.Label {
		switch {
		case corr >= cfg.Gamma:
			return core.LabelPositive
		case corr <= cfg.Epsilon:
			return core.LabelNegative
		default:
			return core.LabelNone
		}
	}

	var out []Finding
	for key, gsup := range group.pair {
		if gsup < cfg.MinSup {
			continue
		}
		allSup := global.pair[key]
		if allSup < cfg.MinSup {
			continue
		}
		pair, err := itemset.ParseKey(key)
		if err != nil {
			return nil, err
		}
		a, b := pair[0], pair[1]
		groupCorr := cfg.Measure.Corr(gsup, []int64{group.single[a], group.single[b]})
		globalCorr := cfg.Measure.Corr(allSup, []int64{global.single[a], global.single[b]})
		gl, al := label(groupCorr), label(globalCorr)
		discriminative := gl.Flips(al)
		if !cfg.RequireOpposite && !discriminative {
			// Relaxed mode: one side labeled, the other not.
			discriminative = gl != al && (gl.Labeled() || al.Labeled())
		}
		if !discriminative {
			continue
		}
		gap := groupCorr - globalCorr
		if gap < 0 {
			gap = -gap
		}
		out = append(out, Finding{
			Items:     pair,
			GlobalSup: allSup, GlobalCorr: globalCorr, GlobalLabel: al,
			GroupSup: gsup, GroupCorr: groupCorr, GroupLabel: gl,
			Gap: gap,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Gap != out[j].Gap {
			return out[i].Gap > out[j].Gap
		}
		return out[i].Items.Key() < out[j].Items.Key()
	})
	return out, nil
}
