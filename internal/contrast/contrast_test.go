package contrast

import (
	"math"
	"strings"
	"testing"

	"github.com/flipper-mining/flipper/internal/core"
	"github.com/flipper-mining/flipper/internal/itemset"
	"github.com/flipper-mining/flipper/internal/measure"
	"github.com/flipper-mining/flipper/internal/taxonomy"
	"github.com/flipper-mining/flipper/internal/txdb"
)

// buildScenario engineers a database where items x and y are positively
// correlated overall but negatively within the sub-group of transactions
// containing the context item "ctx".
//
//	20×  {x, y}            — global co-occurrence
//	 2×  {ctx, x, y}       — rare co-occurrence inside the sub-group
//	12×  {ctx, x}          — x without y inside the sub-group
//	12×  {ctx, y}          — y without x inside the sub-group
//
// Globally: sup(x)=sup(y)=34, sup(xy)=22 → Kulc = 22/34 ≈ 0.647 (+ at γ=0.5).
// In-group: sup(x)=sup(y)=14, sup(xy)=2  → Kulc = 2/14 ≈ 0.143 (− at ε=0.2).
func buildScenario(t *testing.T) (*txdb.DB, *taxonomy.Tree, itemset.Set) {
	t.Helper()
	b := taxonomy.NewBuilder(nil)
	for _, p := range [][]string{
		{"features", "x"}, {"features", "y"}, {"features", "z"},
		{"segments", "ctx"},
	} {
		if err := b.AddPath(p...); err != nil {
			t.Fatal(err)
		}
	}
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	db := txdb.New(tree.Dict())
	emit := func(n int, names ...string) {
		for i := 0; i < n; i++ {
			db.AddNames(names...)
		}
	}
	emit(20, "x", "y")
	emit(2, "ctx", "x", "y")
	emit(12, "ctx", "x")
	emit(12, "ctx", "y")
	ctx, _ := tree.Dict().Lookup("ctx")
	return db, tree, itemset.New(ctx)
}

func config() Config {
	return Config{
		Measure: measure.Kulczynski,
		Gamma:   0.5,
		Epsilon: 0.2,
		MinSup:  1,
		Level:   2,
	}
}

func TestDiscriminativeFindsEngineeredFlip(t *testing.T) {
	db, tree, ctx := buildScenario(t)
	findings, err := Discriminative(db, tree, ctx, config())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %d, want exactly the engineered pair", len(findings))
	}
	f := findings[0]
	if got := tree.FormatSet(f.Items); got != "{x, y}" {
		t.Fatalf("pair = %s", got)
	}
	if f.GlobalLabel != core.LabelPositive || f.GroupLabel != core.LabelNegative {
		t.Errorf("labels = %v / %v", f.GlobalLabel, f.GroupLabel)
	}
	if math.Abs(f.GlobalCorr-22.0/34) > 1e-9 {
		t.Errorf("global corr = %v, want %v", f.GlobalCorr, 22.0/34)
	}
	if math.Abs(f.GroupCorr-2.0/14) > 1e-9 {
		t.Errorf("group corr = %v, want %v", f.GroupCorr, 2.0/14)
	}
	if f.GlobalSup != 22 || f.GroupSup != 2 {
		t.Errorf("sups = %d / %d", f.GlobalSup, f.GroupSup)
	}
	wantGap := 22.0/34 - 2.0/14
	if math.Abs(f.Gap-wantGap) > 1e-9 {
		t.Errorf("gap = %v, want %v", f.Gap, wantGap)
	}
	out := f.Format(tree)
	for _, want := range []string{"{x, y}", "global +", "subgroup -"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q: %s", want, out)
		}
	}
}

func TestContextGeneralizationExcluded(t *testing.T) {
	db, tree, ctx := buildScenario(t)
	findings, err := Discriminative(db, tree, ctx, config())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		for _, id := range f.Items {
			if tree.Name(id) == "ctx" || tree.Name(id) == "segments" {
				t.Fatalf("context leaked into findings: %s", tree.FormatSet(f.Items))
			}
		}
	}
}

func TestMinSupFilters(t *testing.T) {
	db, tree, ctx := buildScenario(t)
	cfg := config()
	cfg.MinSup = 3 // the in-group pair has support 2
	findings, err := Discriminative(db, tree, ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("MinSup=3 should filter the pair, got %d findings", len(findings))
	}
}

func TestRelaxedMode(t *testing.T) {
	// With ε below the in-group value the strict mode finds nothing, but the
	// relaxed mode reports the labeled-vs-unlabeled contrast.
	db, tree, ctx := buildScenario(t)
	cfg := config()
	cfg.Epsilon = 0.1 // in-group 0.143 is now unlabeled
	cfg.RequireOpposite = true
	strict, err := Discriminative(db, tree, ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(strict) != 0 {
		t.Fatalf("strict mode found %d findings", len(strict))
	}
	cfg.RequireOpposite = false
	relaxed, err := Discriminative(db, tree, ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(relaxed) != 1 {
		t.Fatalf("relaxed mode found %d findings, want 1", len(relaxed))
	}
	if relaxed[0].GroupLabel != core.LabelNone {
		t.Errorf("relaxed group label = %v", relaxed[0].GroupLabel)
	}
}

func TestLevelSelection(t *testing.T) {
	// At level 1 the pair generalizes to {features, features} — a single
	// item — so no findings are possible in this scenario.
	db, tree, ctx := buildScenario(t)
	cfg := config()
	cfg.Level = 1
	findings, err := Discriminative(db, tree, ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("level-1 findings = %d, want 0 (items merge)", len(findings))
	}
	// Level 0 defaults to the leaf level and behaves like Level=2 here.
	cfg.Level = 0
	findings, err = Discriminative(db, tree, ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("leaf-level findings = %d", len(findings))
	}
}

func TestValidation(t *testing.T) {
	db, tree, ctx := buildScenario(t)
	cases := []struct {
		name   string
		mutate func(*Config) itemset.Set
	}{
		{"empty context", func(c *Config) itemset.Set { return nil }},
		{"bad gamma", func(c *Config) itemset.Set { c.Gamma = 0; return ctx }},
		{"epsilon over gamma", func(c *Config) itemset.Set { c.Epsilon = 0.9; return ctx }},
		{"zero minsup", func(c *Config) itemset.Set { c.MinSup = 0; return ctx }},
		{"bad level", func(c *Config) itemset.Set { c.Level = 9; return ctx }},
		{"unknown context item", func(c *Config) itemset.Set { return itemset.New(9999) }},
	}
	for _, tc := range cases {
		cfg := config()
		context := tc.mutate(&cfg)
		if _, err := Discriminative(db, tree, context, cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// A context matching no transaction is an error, not an empty result.
	b := taxonomy.NewBuilder(tree.Dict())
	_ = b // tree already built; reuse an existing but absent item instead:
	z, _ := tree.Dict().Lookup("z")
	if _, err := Discriminative(db, tree, itemset.New(z), config()); err == nil {
		t.Error("context with zero matching transactions accepted")
	}
}

func TestOrderingByGap(t *testing.T) {
	// Two discriminative pairs with different gaps: (x,y) engineered above
	// plus a second, weaker one (u,v).
	b := taxonomy.NewBuilder(nil)
	for _, p := range [][]string{
		{"f", "x"}, {"f", "y"}, {"f", "u"}, {"f", "v"}, {"s", "ctx"},
	} {
		if err := b.AddPath(p...); err != nil {
			t.Fatal(err)
		}
	}
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	db := txdb.New(tree.Dict())
	emit := func(n int, names ...string) {
		for i := 0; i < n; i++ {
			db.AddNames(names...)
		}
	}
	// Strong flip for (x,y): global Kulc 1.0, group ≈ 1/13.
	emit(26, "x", "y")
	emit(1, "ctx", "x", "y")
	emit(12, "ctx", "x")
	emit(12, "ctx", "y")
	// Weaker flip for (u,v): global 22/34 ≈ 0.65, group 2/14 ≈ 0.14.
	emit(20, "u", "v")
	emit(2, "ctx", "u", "v")
	emit(12, "ctx", "u")
	emit(12, "ctx", "v")
	ctx, _ := tree.Dict().Lookup("ctx")
	findings, err := Discriminative(db, tree, itemset.New(ctx), Config{
		Measure: measure.Kulczynski, Gamma: 0.5, Epsilon: 0.2, MinSup: 1, Level: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("findings = %d, want 2", len(findings))
	}
	if tree.FormatSet(findings[0].Items) != "{x, y}" {
		t.Errorf("strongest finding = %s, want {x, y}", tree.FormatSet(findings[0].Items))
	}
	if findings[0].Gap <= findings[1].Gap {
		t.Error("findings not ordered by descending gap")
	}
}
