package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildGen(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	bin := filepath.Join(t.TempDir(), "flipgen")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func TestGenToy(t *testing.T) {
	bin := buildGen(t)
	dir := t.TempDir()
	out, err := exec.Command(bin, "-out", dir, "toy").CombinedOutput()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	for _, f := range []string{"taxonomy.tsv", "baskets.txt", "README.txt"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing %s: %v", f, err)
		}
	}
	readme, err := os.ReadFile(filepath.Join(dir, "README.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(readme), "{a11, b11}") {
		t.Errorf("toy README missing planted pattern:\n%s", readme)
	}
}

// TestGenShardedLayout checks that -shards writes shards/shardNNN.txt files
// whose lines concatenate, in name order, to the single-file output.
func TestGenShardedLayout(t *testing.T) {
	bin := buildGen(t)
	flat := t.TempDir()
	if out, err := exec.Command(bin, "-out", flat, "toy").CombinedOutput(); err != nil {
		t.Fatalf("toy: %v\n%s", err, out)
	}
	want, err := os.ReadFile(filepath.Join(flat, "baskets.txt"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if out, err := exec.Command(bin, "-out", dir, "-shards", "3", "toy").CombinedOutput(); err != nil {
		t.Fatalf("sharded toy: %v\n%s", err, out)
	}
	if _, err := os.Stat(filepath.Join(dir, "baskets.txt")); err == nil {
		t.Error("sharded output also wrote baskets.txt")
	}
	entries, err := os.ReadDir(filepath.Join(dir, "shards"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("shards/ holds %d files, want 3", len(entries))
	}
	var got strings.Builder
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, "shards", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		got.Write(data)
	}
	if got.String() != string(want) {
		t.Errorf("concatenated shards differ from baskets.txt:\n%q\nvs\n%q", got.String(), want)
	}
}

func TestGenSyntheticAndDataset(t *testing.T) {
	bin := buildGen(t)
	dir := t.TempDir()
	out, err := exec.Command(bin, "-out", dir, "synthetic", "-n", "500", "-items", "100").CombinedOutput()
	if err != nil {
		t.Fatalf("synthetic: %v\n%s", err, out)
	}
	baskets, err := os.ReadFile(filepath.Join(dir, "baskets.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(baskets), "\n"); got != 500 {
		t.Errorf("synthetic baskets = %d lines, want 500", got)
	}

	dir2 := t.TempDir()
	out, err = exec.Command(bin, "-out", dir2, "dataset", "-name", "groceries", "-scale", "0.1").CombinedOutput()
	if err != nil {
		t.Fatalf("dataset: %v\n%s", err, out)
	}
	readme, err := os.ReadFile(filepath.Join(dir2, "README.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(readme), "GROCERIES") {
		t.Errorf("dataset README:\n%s", readme)
	}
}

func TestGenErrors(t *testing.T) {
	bin := buildGen(t)
	cases := [][]string{
		{},                    // no -out, no mode
		{"-out", t.TempDir()}, // no mode
		{"-out", t.TempDir(), "bogusmode"},
		{"-out", t.TempDir(), "dataset", "-name", "imdb"},
	}
	for _, args := range cases {
		if err := exec.Command(bin, args...).Run(); err == nil {
			t.Errorf("args %v: expected failure", args)
		}
	}
}

// TestGenDeterministic: the same seed must produce byte-identical output
// across runs, for every mode and for both on-disk layouts — the property
// the golden conformance fixtures (internal/golden) stand on when their
// committed inputs are regenerated with -update.
func TestGenDeterministic(t *testing.T) {
	bin := buildGen(t)
	runs := [][]string{
		{"synthetic", "-n", "400", "-width", "4", "-roots", "4", "-fanout", "3", "-height", "3", "-items", "50", "-seed", "9"},
		{"-shards", "5", "synthetic", "-n", "400", "-width", "4", "-roots", "4", "-fanout", "3", "-height", "3", "-items", "50", "-seed", "9"},
		{"dataset", "-name", "groceries", "-scale", "0.05", "-seed", "9"},
		{"toy"},
	}
	for _, args := range runs {
		t.Run(strings.Join(args, "_"), func(t *testing.T) {
			dirs := [2]string{t.TempDir(), t.TempDir()}
			for _, dir := range dirs {
				full := append([]string{"-out", dir}, args...)
				if out, err := exec.Command(bin, full...).CombinedOutput(); err != nil {
					t.Fatalf("flipgen %v: %v\n%s", full, err, out)
				}
			}
			first := readAllFiles(t, dirs[0])
			second := readAllFiles(t, dirs[1])
			if len(first) != len(second) {
				t.Fatalf("runs wrote different file sets: %d vs %d files", len(first), len(second))
			}
			for name, data := range first {
				other, ok := second[name]
				if !ok {
					t.Errorf("second run is missing %s", name)
					continue
				}
				if data != other {
					t.Errorf("%s differs between two identically-seeded runs", name)
				}
			}
		})
	}
}

// readAllFiles loads every regular file under dir, keyed by relative path.
func readAllFiles(t *testing.T, dir string) map[string]string {
	t.Helper()
	files := make(map[string]string)
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		files[rel] = string(data)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}
