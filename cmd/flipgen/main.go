// Command flipgen writes synthetic datasets (taxonomy + baskets) in the
// formats the flipper CLI and the flipperd service consume.
//
// Usage:
//
//	flipgen -out DIR [-shards 0] synthetic [-n 100000] [-width 5] [-roots 10]
//	                           [-fanout 5] [-height 4] [-items 1000] [-seed 1]
//	flipgen -out DIR [-shards 0] dataset -name groceries|census|medline [-scale 1.0] [-seed 1]
//	flipgen -out DIR [-shards 0] toy
//
// "synthetic" emits the paper's Srikant & Agrawal-style workload of
// Section 5.1; "dataset" emits one of the reality-check simulators with its
// planted patterns; "toy" emits the worked example of Figure 4. Each mode
// writes taxonomy.tsv and baskets.txt into -out, plus a README.txt stating
// the thresholds to mine with.
//
// -shards N writes the sharded on-disk layout instead of baskets.txt: a
// shards/ subdirectory holding N basket files of contiguous transaction
// ranges (shard000.txt, shard001.txt, …). Both flipper (-db DIR/shards) and
// flipperd recognize the layout and mine the shards in parallel, streaming
// them without ever materializing the whole database when -stream is set.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/flipper-mining/flipper/internal/datasets"
	"github.com/flipper-mining/flipper/internal/gen"
	"github.com/flipper-mining/flipper/internal/taxonomy"
	"github.com/flipper-mining/flipper/internal/txdb"
)

func main() {
	out := flag.String("out", "", "output directory (created if missing)")
	shards := flag.Int("shards", 0, "write shards/shardNNN.txt basket shards instead of baskets.txt (0 = single file)")
	flag.Parse()
	args := flag.Args()
	if *out == "" || len(args) == 0 {
		usage()
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}
	switch args[0] {
	case "synthetic":
		synthetic(*out, *shards, args[1:])
	case "dataset":
		dataset(*out, *shards, args[1:])
	case "toy":
		ds := datasets.PaperToy()
		writeDataset(*out, *shards, ds.Tree, ds.DB, describe(ds))
	default:
		usage()
	}
}

func synthetic(out string, shards int, args []string) {
	fs := flag.NewFlagSet("synthetic", flag.ExitOnError)
	n := fs.Int("n", 100000, "number of transactions")
	width := fs.Float64("width", 5, "average transaction width")
	roots := fs.Int("roots", 10, "level-1 categories")
	fanout := fs.Int("fanout", 5, "children per node")
	height := fs.Int("height", 4, "taxonomy levels")
	items := fs.Int("items", 1000, "approximate leaf count (0 = untrimmed)")
	seed := fs.Int64("seed", 1, "generator seed")
	_ = fs.Parse(args)

	tree, err := gen.BuildTaxonomy(gen.TaxonomyParams{
		Roots: *roots, Fanout: *fanout, Height: *height, MaxLeaves: *items, Prefix: "i",
	})
	if err != nil {
		fail(err)
	}
	p := gen.DefaultParams()
	p.N = *n
	p.AvgWidth = *width
	p.Seed = *seed
	db, err := gen.Generate(tree, p)
	if err != nil {
		fail(err)
	}
	writeDataset(out, shards, tree, db, fmt.Sprintf(
		"synthetic dataset (Srikant & Agrawal style)\nN=%d W=%g roots=%d fanout=%d height=%d seed=%d\n"+
			"suggested: -gamma 0.3 -epsilon 0.1 -minsup 0.01,0.001,0.0005,0.0001\n",
		*n, *width, *roots, *fanout, *height, *seed))
}

func dataset(out string, shards int, args []string) {
	fs := flag.NewFlagSet("dataset", flag.ExitOnError)
	name := fs.String("name", "", "groceries, census or medline")
	scale := fs.Float64("scale", 1.0, "size multiplier vs the original dataset")
	seed := fs.Int64("seed", 1, "generator seed")
	_ = fs.Parse(args)
	ds, err := datasets.ByName(*name, *scale, *seed)
	if err != nil {
		fail(err)
	}
	writeDataset(out, shards, ds.Tree, ds.DB, describe(ds))
}

func describe(ds *datasets.Dataset) string {
	sups := make([]string, len(ds.MinSup))
	for i, v := range ds.MinSup {
		sups[i] = fmt.Sprintf("%g", v)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s simulator: %d transactions\n", ds.Name, ds.DB.Len())
	fmt.Fprintf(&b, "mine with: -gamma %g -epsilon %g -minsup %s\n", ds.Gamma, ds.Epsilon, strings.Join(sups, ","))
	fmt.Fprintf(&b, "planted flipping patterns:\n")
	for _, e := range ds.Expected {
		fmt.Fprintf(&b, "  {%s, %s} chain %s\n", e.LeafA, e.LeafB, strings.Join(e.Labels, ""))
	}
	return b.String()
}

func writeDataset(out string, shards int, tree *taxonomy.Tree, db *txdb.DB, readme string) {
	taxPath := filepath.Join(out, "taxonomy.tsv")
	f, err := os.Create(taxPath)
	if err != nil {
		fail(err)
	}
	if _, err := tree.WriteTo(f); err != nil {
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	// Regeneration must not leave the previous run's layout behind: a stale
	// baskets.txt would shadow freshly written shards (both loaders prefer
	// it), and stale shardNNN.txt files beyond the new count would be
	// concatenated into the database. Remove both layout paths first.
	var dbPath string
	if shards > 1 {
		dbPath = filepath.Join(out, "shards")
		if err := os.Remove(filepath.Join(out, "baskets.txt")); err != nil && !os.IsNotExist(err) {
			fail(err)
		}
		if err := os.RemoveAll(dbPath); err != nil {
			fail(err)
		}
		if err := os.MkdirAll(dbPath, 0o755); err != nil {
			fail(err)
		}
		for i, part := range txdb.Partition(db, shards) {
			path := filepath.Join(dbPath, fmt.Sprintf("shard%03d.txt", i))
			f, err := os.Create(path)
			if err != nil {
				fail(err)
			}
			if err := part.WriteBaskets(f); err != nil {
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
		}
	} else {
		dbPath = filepath.Join(out, "baskets.txt")
		if err := os.RemoveAll(filepath.Join(out, "shards")); err != nil {
			fail(err)
		}
		f, err = os.Create(dbPath)
		if err != nil {
			fail(err)
		}
		if err := db.WriteBaskets(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
	if err := os.WriteFile(filepath.Join(out, "README.txt"), []byte(readme), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s and %s\n", taxPath, dbPath)
}

func usage() {
	fmt.Fprintln(os.Stderr, `flipgen -out DIR [-shards 0] synthetic [flags]
flipgen -out DIR [-shards 0] dataset -name groceries|census|medline [-scale 1.0]
flipgen -out DIR [-shards 0] toy`)
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "flipgen:", err)
	os.Exit(1)
}
