// Command flipper mines flipping correlation patterns from a basket file
// and a taxonomy file.
//
// Usage:
//
//	flipper -tax taxonomy.tsv -db baskets.txt \
//	        -gamma 0.3 -epsilon 0.1 -minsup 0.01,0.001,0.0005,0.0001 \
//	        [-measure kulczynski] [-pruning full] [-strategy scan|tidlist|bitmap|auto] \
//	        [-shards 0] [-topk 0] [-target-patterns 0] [-stream] [-stats] \
//	        [-anchor item] [-approx] [-sketchk 0] \
//	        [-timeout 0] [-json] [-json-api] [-csv patterns.csv]
//
// The taxonomy file holds one "child<TAB>parent" edge per line; the basket
// file one transaction per line with comma-separated item names. -db also
// accepts a directory: a flipgen dataset directory (its baskets.txt or
// shards/ subdirectory is used) or a directory of shard*.txt basket files
// (the flipgen -shards layout); shards are mined in parallel, and with
// -stream they are streamed in parallel without ever being resident
// together (out-of-core mode). -minsup takes one fraction per taxonomy level, most general first.
// -stream keeps counting passes on disk instead of materializing per-level
// views. -shards N partitions an in-memory database into N shards counted
// in parallel (output is byte-identical to the unsharded run).
// -target-patterns auto-tunes ε (the paper's threshold workflow): the most
// selective ε still yielding at least that many patterns is used.
// -anchor switches to anchored top-K search: only patterns whose chain
// passes through the named item are mined, ranked by descending flip gap
// (-topk sets K, default 10); -approx trades the exactness guarantee for
// sketch-estimated pruning with per-pattern confidence. The
// default output is one block per pattern with the full correlation chain;
// -json emits name-resolved JSON, -json-api the full result envelope
// (pattern count, patterns, run statistics) in exactly the shape the
// flipperd service returns for completed mine jobs, and -csv writes one row
// per chain level.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	flipper "github.com/flipper-mining/flipper"
)

func main() {
	var (
		taxPath  = flag.String("tax", "", "taxonomy file (child<TAB>parent per line)")
		dbPath   = flag.String("db", "", "basket file (comma-separated item names per line)")
		gamma    = flag.Float64("gamma", 0.3, "positive correlation threshold γ")
		epsilon  = flag.Float64("epsilon", 0.1, "negative correlation threshold ε")
		minsup   = flag.String("minsup", "", "per-level minimum supports, e.g. 0.01,0.001,0.0005 (most general level first)")
		meas     = flag.String("measure", "kulczynski", "correlation measure: kulczynski, cosine, all_confidence, coherence, max_confidence")
		pruning  = flag.String("pruning", "full", "pruning level: basic, flipping, flipping+tpg, full")
		strategy = flag.String("strategy", "scan", "support counting: scan, tidlist, bitmap or auto")
		shards   = flag.Int("shards", 0, "partition the database into N shards counted in parallel (0 = unsharded; ignored when -db is a shard directory, which brings its own shards, or a single file in -stream mode, which cannot be split — see flipgen -shards)")
		topK     = flag.Int("topk", 0, "keep only the K most flipping patterns (largest correlation gap); with -anchor this is the anchored K (default 10)")
		anchor   = flag.String("anchor", "", "anchored top-K search: return only patterns whose chain passes through this item, ranked by gap")
		approx   = flag.Bool("approx", false, "with -anchor: best-effort mode — prune on sketch estimates and report per-pattern confidence")
		sketchK  = flag.Int("sketchk", 0, "with -anchor: per-item sketch signature size (0 = default)")
		target   = flag.Int("target-patterns", 0, "auto-tune ε: search for the most selective ε yielding at least this many patterns")
		maxK     = flag.Int("maxk", 0, "cap the itemset size (0 = data-bound)")
		stream   = flag.Bool("stream", false, "disk-resident mode: re-read the basket file on every pass")
		timeout  = flag.Duration("timeout", 0, "abort the mine after this long, e.g. 30s or 5m (0 = no deadline)")
		extend   = flag.Bool("extend", true, "leaf-copy extend unbalanced taxonomies (paper Fig. 3 variant B)")
		stats    = flag.Bool("stats", false, "print run statistics to stderr")
		asJSON   = flag.Bool("json", false, "emit patterns as JSON")
		asAPI    = flag.Bool("json-api", false, "emit the flipperd result envelope (patterns + stats) as JSON")
		csvPath  = flag.String("csv", "", "also write patterns to a CSV file (one row per chain level)")
	)
	flag.Parse()
	if *taxPath == "" || *dbPath == "" {
		fmt.Fprintln(os.Stderr, "flipper: -tax and -db are required")
		flag.Usage()
		os.Exit(2)
	}

	tree, err := loadTaxonomy(*taxPath)
	if err != nil {
		fail(err)
	}
	if !tree.IsBalanced() && *extend {
		tree = tree.Extend()
	}

	cfg := flipper.DefaultConfig(tree.Height())
	cfg.Gamma = *gamma
	cfg.Epsilon = *epsilon
	cfg.TopK = *topK
	cfg.MaxK = *maxK
	cfg.Shards = *shards
	if *anchor != "" {
		// -topk doubles as the anchored K; anchored search replaces the
		// global top-K knob (the two are mutually exclusive in core).
		cfg.Anchor = *anchor
		cfg.AnchorTopK = *topK
		if cfg.AnchorTopK < 1 {
			cfg.AnchorTopK = 10
		}
		cfg.TopK = 0
		if *approx {
			cfg.AnchorMode = flipper.AnchorBestEffort
		}
		cfg.SketchK = *sketchK
	} else if *approx || *sketchK != 0 {
		fail(errors.New("-approx and -sketchk require -anchor"))
	}
	if cfg.Measure, err = flipper.ParseMeasure(*meas); err != nil {
		fail(err)
	}
	if cfg.Pruning, err = flipper.ParsePruningLevel(*pruning); err != nil {
		fail(err)
	}
	if cfg.Strategy, err = flipper.ParseCountStrategy(*strategy); err != nil {
		fail(err)
	}
	if *minsup != "" {
		if cfg.MinSup, err = parseMinsup(*minsup); err != nil {
			fail(err)
		}
	}
	if len(cfg.MinSup) != tree.Height() {
		fail(fmt.Errorf("-minsup needs %d comma-separated values for this taxonomy (got %d)",
			tree.Height(), len(cfg.MinSup)))
	}

	if *stream {
		cfg.Materialize = false
	}
	src, err := loadSource(*dbPath, tree, *stream)
	if err != nil {
		fail(err)
	}
	if *shards > 1 {
		if _, ok := src.(*flipper.FileSource); ok {
			fmt.Fprintln(os.Stderr, "flipper: warning: -shards ignored — a single basket file cannot be partitioned in -stream mode; split it into a shard directory with flipgen -shards, or drop -stream")
		}
	}

	// Ctrl-C / SIGTERM cancel the mine through the engine's checkpoint
	// polling; -timeout adds a deadline on top.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var res *flipper.Result
	if *target > 0 {
		eps, r, found, err := flipper.SuggestEpsilonContext(ctx, src, tree, cfg, *target)
		if err != nil {
			failMine(err, *timeout)
		}
		if !found {
			fmt.Fprintf(os.Stderr, "flipper: even ε just below γ yields only %d pattern(s); reporting those\n", len(r.Patterns))
		}
		fmt.Fprintf(os.Stderr, "flipper: auto-tuned ε = %.4f\n", eps)
		res = r
	} else {
		r, err := flipper.MineContext(ctx, src, tree, cfg)
		if err != nil {
			failMine(err, *timeout)
		}
		res = r
	}
	switch {
	case *asAPI:
		if err := res.WriteAPIJSON(os.Stdout, tree); err != nil {
			fail(err)
		}
	case *asJSON:
		if err := res.WriteJSON(os.Stdout, tree); err != nil {
			fail(err)
		}
	default:
		fmt.Printf("%d flipping pattern(s)\n\n", len(res.Patterns))
		for _, p := range res.Patterns {
			fmt.Print(p.Format(tree))
			fmt.Println()
		}
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fail(err)
		}
		if err := res.WriteCSV(f, tree); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
	}
	if *stats {
		fmt.Fprintln(os.Stderr, res.Stats.String())
	}
}

// loadSource resolves -db: a basket file, a directory of shard*.txt basket
// files (mined as a ShardedSource — in parallel, and with -stream never
// resident together), or a flipgen dataset directory, whose baskets.txt or
// shards/ subdirectory is used — with baskets.txt winning when both exist,
// matching the flipperd registry, so a dataset never changes content by
// gaining a stray shards/ directory.
func loadSource(path string, tree *flipper.Taxonomy, stream bool) (flipper.Source, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return flipper.OpenBasketSource(path, tree.Dict(), stream)
	}
	if fi, err := os.Stat(filepath.Join(path, "baskets.txt")); err == nil && !fi.IsDir() {
		return flipper.OpenBasketSource(filepath.Join(path, "baskets.txt"), tree.Dict(), stream)
	}
	if fi, err := os.Stat(filepath.Join(path, "shards")); err == nil && fi.IsDir() {
		path = filepath.Join(path, "shards")
	}
	return flipper.OpenShardDir(path, tree.Dict(), stream)
}

func loadTaxonomy(path string) (*flipper.Taxonomy, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return flipper.ParseTaxonomy(f, nil)
}

func parseMinsup(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad minsup %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "flipper:", err)
	os.Exit(1)
}

// failMine reports a mining error, translating the two cancellation causes
// into plain messages: exit 124 on deadline (the timeout(1) convention) and
// 130 on interrupt (128+SIGINT).
func failMine(err error, timeout time.Duration) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		fmt.Fprintf(os.Stderr, "flipper: mine aborted: -timeout %s exceeded\n", timeout)
		os.Exit(124)
	case errors.Is(err, context.Canceled):
		fmt.Fprintln(os.Stderr, "flipper: mine aborted: interrupted")
		os.Exit(130)
	}
	fail(err)
}
