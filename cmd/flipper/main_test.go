package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseMinsup(t *testing.T) {
	got, err := parseMinsup("0.01, 0.001,0.0005")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0.01 || got[2] != 0.0005 {
		t.Errorf("parseMinsup = %v", got)
	}
	if _, err := parseMinsup("0.1,abc"); err == nil {
		t.Error("malformed minsup accepted")
	}
}

// buildCmd compiles this command into a temp dir and returns the binary
// path. Skipped in -short mode.
func buildCmd(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	bin := filepath.Join(t.TempDir(), "flipper")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

const toyTaxonomy = "a1\ta\na11\ta1\na12\ta1\na2\ta\na21\ta2\na22\ta2\n" +
	"b1\tb\nb11\tb1\nb12\tb1\nb2\tb\nb21\tb2\nb22\tb2\n"

const toyBaskets = `a11, a22, b11, b22
a11, a21, b11
a12, a21
a12, a22, b21
a12, a22, b21
a12, a21, b22
a21, b12
b12, b21, b22
b12, b21
a22, b12, b22
`

func writeToy(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	tax := filepath.Join(dir, "tax.tsv")
	db := filepath.Join(dir, "baskets.txt")
	if err := os.WriteFile(tax, []byte(toyTaxonomy), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(db, []byte(toyBaskets), 0o644); err != nil {
		t.Fatal(err)
	}
	return tax, db
}

func TestCLIEndToEnd(t *testing.T) {
	bin := buildCmd(t)
	tax, db := writeToy(t)
	out, err := exec.Command(bin,
		"-tax", tax, "-db", db,
		"-gamma", "0.6", "-epsilon", "0.35", "-minsup", "0.1,0.1,0.1",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"1 flipping pattern(s)", "{a11, b11}", "L2 {a1, b1}"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestCLIJSONAndStream(t *testing.T) {
	bin := buildCmd(t)
	tax, db := writeToy(t)
	out, err := exec.Command(bin,
		"-tax", tax, "-db", db, "-json", "-stream",
		"-gamma", "0.6", "-epsilon", "0.35", "-minsup", "0.1,0.1,0.1",
	).Output()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var patterns []map[string]any
	if err := json.Unmarshal(out, &patterns); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, out)
	}
	if len(patterns) != 1 {
		t.Fatalf("JSON patterns = %d", len(patterns))
	}
}

func TestCLIAPIJSON(t *testing.T) {
	bin := buildCmd(t)
	tax, db := writeToy(t)
	out, err := exec.Command(bin,
		"-tax", tax, "-db", db, "-json-api",
		"-gamma", "0.6", "-epsilon", "0.35", "-minsup", "0.1,0.1,0.1",
	).Output()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// The envelope is the flipperd service's completed-mine result shape.
	var res struct {
		PatternCount int              `json:"pattern_count"`
		Patterns     []map[string]any `json:"patterns"`
		Stats        map[string]any   `json:"stats"`
	}
	if err := json.Unmarshal(out, &res); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, out)
	}
	if res.PatternCount != 1 || len(res.Patterns) != 1 {
		t.Fatalf("pattern_count = %d", res.PatternCount)
	}
	if res.Stats["transactions"] != 10.0 {
		t.Errorf("stats = %v", res.Stats)
	}
	if _, ok := res.Stats["candidates_counted"]; !ok {
		t.Errorf("stats missing core counters: %v", res.Stats)
	}
}

// TestCLISharded pins the -shards flag and the shard-directory form of -db:
// both must mine exactly what the single-file, unsharded run mines.
func TestCLISharded(t *testing.T) {
	bin := buildCmd(t)
	tax, db := writeToy(t)
	mine := func(args ...string) string {
		t.Helper()
		args = append(args, "-gamma", "0.6", "-epsilon", "0.35", "-minsup", "0.1,0.1,0.1", "-json")
		out, err := exec.Command(bin, args...).Output()
		if err != nil {
			t.Fatalf("run %v: %v", args, err)
		}
		return string(out)
	}
	want := mine("-tax", tax, "-db", db)
	if got := mine("-tax", tax, "-db", db, "-shards", "3"); got != want {
		t.Errorf("-shards 3 diverged:\n%s\nvs\n%s", want, got)
	}
	// Shard-directory form: split the baskets into per-shard files.
	lines := strings.SplitAfter(strings.TrimRight(toyBaskets, "\n"), "\n")
	shardDir := filepath.Join(t.TempDir(), "shards")
	if err := os.MkdirAll(shardDir, 0o755); err != nil {
		t.Fatal(err)
	}
	half := len(lines) / 2
	for i, chunk := range []string{strings.Join(lines[:half], ""), strings.Join(lines[half:], "")} {
		if err := os.WriteFile(filepath.Join(shardDir, []string{"shard000.txt", "shard001.txt"}[i]), []byte(chunk), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if got := mine("-tax", tax, "-db", shardDir); got != want {
		t.Errorf("shard directory diverged:\n%s\nvs\n%s", want, got)
	}
	if got := mine("-tax", tax, "-db", shardDir, "-stream"); got != want {
		t.Errorf("streamed shard directory diverged:\n%s\nvs\n%s", want, got)
	}
}

func TestCLIErrors(t *testing.T) {
	bin := buildCmd(t)
	tax, db := writeToy(t)
	cases := [][]string{
		{},            // missing required flags
		{"-tax", tax}, // missing -db
		{"-tax", tax, "-db", db, "-minsup", "0.1"},    // wrong level count
		{"-tax", tax, "-db", db, "-measure", "lift"},  // unknown measure
		{"-tax", tax, "-db", db, "-pruning", "bogus"}, // unknown pruning
		{"-tax", "/nonexistent", "-db", db},           // missing file
		{"-tax", tax, "-db", db, "-minsup", "0.1,0.1,0.1", "-strategy", "bogus"},
	}
	for _, args := range cases {
		if err := exec.Command(bin, args...).Run(); err == nil {
			t.Errorf("args %v: expected failure", args)
		}
	}
}

func TestCLICSVOutput(t *testing.T) {
	bin := buildCmd(t)
	tax, db := writeToy(t)
	csvPath := filepath.Join(t.TempDir(), "patterns.csv")
	out, err := exec.Command(bin,
		"-tax", tax, "-db", db, "-csv", csvPath,
		"-gamma", "0.6", "-epsilon", "0.35", "-minsup", "0.1,0.1,0.1",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if !strings.HasPrefix(text, "pattern,leaf,gap,level,items,support,corr,label\n") {
		t.Errorf("csv header: %q", strings.SplitN(text, "\n", 2)[0])
	}
	if !strings.Contains(text, "a11|b11") {
		t.Errorf("csv missing pattern rows:\n%s", text)
	}
}

func TestCLIAutoEpsilon(t *testing.T) {
	bin := buildCmd(t)
	tax, db := writeToy(t)
	// Start with a hopelessly tight ε; auto-tuning must relax it until the
	// toy pattern appears.
	out, err := exec.Command(bin,
		"-tax", tax, "-db", db,
		"-gamma", "0.6", "-epsilon", "0.01", "-minsup", "0.1,0.1,0.1",
		"-target-patterns", "1",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "auto-tuned ε") {
		t.Errorf("missing auto-tune notice:\n%s", text)
	}
	if !strings.Contains(text, "{a11, b11}") {
		t.Errorf("auto-tuned run missed the pattern:\n%s", text)
	}
}
