package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildBench(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	bin := filepath.Join(t.TempDir(), "flipbench")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func TestBenchList(t *testing.T) {
	bin := buildBench(t)
	out, err := exec.Command(bin, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	for _, want := range []string{"table1", "fig8a", "fig9b", "table4"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("-list missing %q", want)
		}
	}
}

func TestBenchTable1WithCSV(t *testing.T) {
	bin := buildBench(t)
	dir := t.TempDir()
	out, err := exec.Command(bin, "-exp", "table1", "-csv", dir).CombinedOutput()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Expectation verdict") {
		t.Errorf("table1 output:\n%s", out)
	}
	csv, err := os.ReadFile(filepath.Join(dir, "table1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "Pair,") {
		t.Errorf("csv header: %q", string(csv)[:20])
	}
}

func TestBenchErrors(t *testing.T) {
	bin := buildBench(t)
	if err := exec.Command(bin, "-exp", "fig99").Run(); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := exec.Command(bin, "-exp", "table1", "-scale", "galactic").Run(); err == nil {
		t.Error("unknown scale accepted")
	}
	if err := exec.Command(bin).Run(); err == nil {
		t.Error("missing -exp accepted")
	}
}
