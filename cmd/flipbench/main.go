// Command flipbench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	flipbench -list
//	flipbench -exp fig8a [-scale quick|paper] [-csv out.csv] [-seed 7]
//	flipbench -exp all   [-scale quick]
//	flipbench -json BENCH_PR3.json [-tag PR3]
//
// Each experiment prints a text table mirroring the corresponding paper
// artifact; -csv additionally writes machine-readable output. The quick
// scale (default) shrinks the workloads so the full suite finishes in
// minutes; -scale paper runs the original sizes (expect the BASIC baseline
// to take a very long time in the low-support regime, as the paper reports).
//
// -json runs the counting micro-benchmark suite (the BenchmarkCountingDense
// workload under testing.Benchmark, per backend and per shard count) and
// writes machine-readable results — benchmark name, ns/op, allocs/op,
// engine counters, the machine's GOMAXPROCS — to the given file. Committed
// BENCH_<tag>.json files record the repo's perf trajectory; CI regenerates
// one per run and uploads it as an artifact. The "sharding" experiment
// (-exp sharding) prints the shard-count scaling table for this machine.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"

	"github.com/flipper-mining/flipper/internal/experiments"
)

func main() {
	var (
		exp        = flag.String("exp", "", "experiment id (see -list), or 'all'")
		scale      = flag.String("scale", "quick", "workload scale: quick or paper")
		csvDir     = flag.String("csv", "", "directory to write <exp>.csv files into")
		seed       = flag.Int64("seed", 1, "generator seed")
		listExp    = flag.Bool("list", false, "list available experiments")
		jsonPath   = flag.String("json", "", "run the counting micro-bench suite and write BENCH JSON to this file")
		tag        = flag.String("tag", "dev", "tag recorded in the -json output")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (pprof format; feeds go build -pgo)")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flipbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "flipbench: %v\n", err)
			os.Exit(1)
		}
		// The profile of the -json micro suite is the committed default.pgo:
		// it concentrates samples in the counting hot loops the campaign
		// targets (see docs/OPERATIONS.md on refreshing it).
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "flipbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *cpuprofile)
		}()
	}

	if *jsonPath != "" {
		if err := runBenchJSON(*jsonPath, *tag); err != nil {
			fmt.Fprintf(os.Stderr, "flipbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
		return
	}

	if *listExp || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range experiments.Registry() {
			fmt.Printf("  %-9s %s\n", e.ID, e.Desc)
		}
		if *exp == "" && !*listExp {
			os.Exit(2)
		}
		return
	}

	var s experiments.Scale
	switch *scale {
	case "quick":
		s = experiments.Quick()
	case "paper":
		s = experiments.Paper()
	default:
		fmt.Fprintf(os.Stderr, "flipbench: unknown scale %q (want quick or paper)\n", *scale)
		os.Exit(2)
	}
	s.Seed = *seed

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "flipbench: %v\n", err)
			os.Exit(1)
		}
	}

	var ids []string
	if *exp == "all" {
		for _, e := range experiments.Registry() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = []string{*exp}
	}

	for _, id := range ids {
		run, ok := experiments.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "flipbench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		tbl, err := run(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flipbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		if err := tbl.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "flipbench: render: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
		if *csvDir != "" {
			path := filepath.Join(*csvDir, id+".csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "flipbench: %v\n", err)
				os.Exit(1)
			}
			if err := tbl.WriteCSV(f); err != nil {
				f.Close()
				fmt.Fprintf(os.Stderr, "flipbench: csv: %v\n", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "flipbench: close: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
}
