package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"github.com/flipper-mining/flipper/internal/core"
	"github.com/flipper-mining/flipper/internal/experiments"
	"github.com/flipper-mining/flipper/internal/measure"
)

// The -json mode: run the counting micro-benchmark suite (the same dense
// workload as BenchmarkCountingDense) under testing.Benchmark and write a
// machine-readable BENCH_<tag>.json. Committed baselines (BENCH_PR3.json,
// …) plus the CI artifact of every run give the repo a perf trajectory:
// compare ns/op and allocs/op across PRs without re-running old code.

// BenchRecord is one benchmark's measurements.
type BenchRecord struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Counters    map[string]float64 `json:"counters,omitempty"`
}

// BenchFile is the envelope written to BENCH_<tag>.json. MaxProcs records
// the core budget of the measuring machine: the sharded records scale with
// it, so a 1-core run legitimately shows flat ns/op across shard counts
// (the record then pins sharding overhead, not speedup).
type BenchFile struct {
	Tag        string        `json:"tag"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	MaxProcs   int           `json:"maxprocs"`
	Workload   string        `json:"workload"`
	Benchmarks []BenchRecord `json:"benchmarks"`
}

// runBenchJSON measures every counting strategy on the dense workload and
// writes the result file.
func runBenchJSON(path, tag string) error {
	db, tree, err := experiments.DenseWorkload(8000, 64, 2, 16, 3)
	if err != nil {
		return err
	}
	cfgFor := func(strategy core.CountStrategy) core.Config {
		return core.Config{
			Measure:     measure.Kulczynski,
			Gamma:       0.3,
			Epsilon:     0.1,
			MinSupAbs:   []int64{5, 5},
			Pruning:     core.Basic,
			Strategy:    strategy,
			MaxK:        2,
			Materialize: true,
		}
	}
	out := BenchFile{
		Tag:       tag,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		MaxProcs:  runtime.GOMAXPROCS(0),
		Workload:  "dense: 8000 tx × 16 items, 64 cats × 2 leaves (BenchmarkCountingDense)",
	}
	// record measures one configuration. With eng set it measures the warm
	// steady state — the engine is prewarmed by the instrumented run, so the
	// loop reuses cached level views, indexes and scratch; with eng nil every
	// iteration builds a throwaway engine (the cold, one-shot cost).
	record := func(name string, cfg core.Config, eng *core.Engine) error {
		mine := func() (*core.Result, error) {
			if eng != nil {
				return eng.Mine(cfg)
			}
			return core.Mine(db, tree, cfg)
		}
		// One instrumented run for the engine's own counters (and the warm-up
		// for warm records).
		res, err := mine()
		if err != nil {
			return err
		}
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := mine(); err != nil {
					b.Fatal(err)
				}
			}
		})
		out.Benchmarks = append(out.Benchmarks, BenchRecord{
			Name:        name,
			Iterations:  br.N,
			NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
			Counters: map[string]float64{
				"candidates_counted": float64(res.Stats.CandidatesCounted),
				"trie_nodes":         float64(res.Stats.TrieNodes),
				"probes_pruned":      float64(res.Stats.ProbesPruned),
				"bitmap_word_ops":    float64(res.Stats.BitmapWordOps),
				"shards":             float64(res.Stats.Shards),
				"shard_merge_ns":     float64(res.Stats.ShardMergeNs),
				"sketch_probes":      float64(res.Stats.SketchProbes),
				"sketch_pruned":      float64(res.Stats.SketchPruned),
				"exact_fallbacks":    float64(res.Stats.ExactFallbacks),
				"patterns":           float64(len(res.Patterns)),
			},
		})
		fmt.Fprintf(os.Stderr, "bench %-32s %12.0f ns/op %8d allocs/op\n",
			name, float64(br.T.Nanoseconds())/float64(br.N), br.AllocsPerOp())
		return nil
	}
	for _, s := range []core.CountStrategy{core.CountScan, core.CountTIDList, core.CountBitmap, core.CountAuto} {
		if err := record("CountingDense/"+s.String(), cfgFor(s), nil); err != nil {
			return err
		}
		// The warm counterpart: one persistent engine per strategy, measuring
		// the steady-state cost a resident flipperd pays per job.
		if err := record("CountingDense/"+s.String()+"/warm", cfgFor(s), core.NewEngine(db, tree)); err != nil {
			return err
		}
	}
	// Shard-count scaling of the parallel backends on the same workload —
	// the BENCH_PR5 sharding story next to the per-backend baselines.
	for _, s := range []core.CountStrategy{core.CountScan, core.CountBitmap} {
		for _, shards := range []int{2, 4, 8} {
			cfg := cfgFor(s)
			cfg.Shards = shards
			name := fmt.Sprintf("CountingDense/%s/shards=%d", s.String(), shards)
			if err := record(name, cfg, nil); err != nil {
				return err
			}
		}
		cfg := cfgFor(s)
		cfg.Shards = 4
		name := fmt.Sprintf("CountingDense/%s/shards=%d/warm", s.String(), 4)
		if err := record(name, cfg, core.NewEngine(db, tree)); err != nil {
			return err
		}
	}
	// Anchored top-K on the same workload: the sketch-pruned query path, cold
	// and warm (a warm engine reuses the cached signatures, which is the
	// steady state a resident flipperd serves /v1/topk in). Guaranteed mode
	// carries unsaturated sketches (k=8192 ≥ 8000 transactions, bounds are
	// exact); best_effort shrinks them 16× so pruning runs on estimates.
	anchoredCfg := func(mode string, sketchK int) core.Config {
		cfg := cfgFor(core.CountScan)
		cfg.Anchor = "leaf00.0"
		cfg.AnchorTopK = 5
		cfg.AnchorMode = mode
		cfg.SketchK = sketchK
		return cfg
	}
	for _, m := range []struct {
		name    string
		mode    string
		sketchK int
	}{
		{"guaranteed", core.AnchorGuaranteed, 8192},
		{"best_effort", core.AnchorBestEffort, 512},
	} {
		if err := record("AnchoredTopK/"+m.name, anchoredCfg(m.mode, m.sketchK), nil); err != nil {
			return err
		}
		if err := record("AnchoredTopK/"+m.name+"/warm", anchoredCfg(m.mode, m.sketchK), core.NewEngine(db, tree)); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&out); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
