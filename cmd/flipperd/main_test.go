package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildCmd compiles this command into a temp dir and returns the binary
// path. Skipped in -short mode.
func buildCmd(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("daemon integration test")
	}
	bin := filepath.Join(t.TempDir(), "flipperd")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

const toyTaxonomy = "a1\ta\na11\ta1\na12\ta1\na2\ta\na21\ta2\na22\ta2\n" +
	"b1\tb\nb11\tb1\nb12\tb1\nb2\tb\nb21\tb2\nb22\tb2\n"

const toyBaskets = `a11, a22, b11, b22
a11, a21, b11
a12, a21
a12, a22, b21
a12, a22, b21
a12, a21, b22
a21, b12
b12, b21, b22
b12, b21
a22, b12, b22
`

// writeDataDir lays out data/toy/{taxonomy.tsv, baskets.txt}.
func writeDataDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	sub := filepath.Join(dir, "toy")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sub, "taxonomy.tsv"), []byte(toyTaxonomy), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sub, "baskets.txt"), []byte(toyBaskets), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// freePort asks the kernel for an unused TCP port.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

// startDaemon launches flipperd and waits for /v1/healthz.
func startDaemon(t *testing.T, bin, dataDir string, extra ...string) string {
	t.Helper()
	port := freePort(t)
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	args := append([]string{"-addr", addr, "-data", dataDir}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})
	base := "http://" + addr
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return base
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("flipperd did not become healthy")
	return ""
}

func postJob(t *testing.T, base, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var v map[string]any
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, raw)
	}
	return resp.StatusCode, v
}

func getJSON(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestDaemonEndToEnd is the acceptance flow: start the server, submit the
// same mine twice, and require the second to be a cache hit (visible in
// /v1/stats) with byte-identical patterns.
func TestDaemonEndToEnd(t *testing.T) {
	bin := buildCmd(t)
	base := startDaemon(t, bin, writeDataDir(t))

	ds := getJSON(t, base+"/v1/datasets")
	datasets, _ := ds["datasets"].([]any)
	if len(datasets) != 1 {
		t.Fatalf("datasets = %v", ds)
	}

	body := `{"dataset": "toy", "config": {"gamma": 0.6, "epsilon": 0.35, "min_sup": [0.1, 0.1, 0.1]}}`
	status, first := postJob(t, base, body)
	if status != http.StatusAccepted && status != http.StatusOK {
		t.Fatalf("first submit: %d %v", status, first)
	}
	id, _ := first["id"].(string)

	var firstResult string
	deadline := time.Now().Add(10 * time.Second)
	for {
		j := getJSON(t, base+"/v1/jobs/"+id)
		if j["status"] == "done" {
			raw, _ := json.Marshal(j["result"].(map[string]any)["patterns"])
			firstResult = string(raw)
			break
		}
		if j["status"] == "failed" || time.Now().After(deadline) {
			t.Fatalf("job: %v", j)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !strings.Contains(firstResult, "a11") || !strings.Contains(firstResult, "b11") {
		t.Fatalf("patterns missing the toy flip: %s", firstResult)
	}

	status, second := postJob(t, base, body)
	if status != http.StatusOK || second["cache_hit"] != true || second["status"] != "done" {
		t.Fatalf("second submit not a cache hit: %d %v", status, second)
	}
	raw, _ := json.Marshal(second["result"].(map[string]any)["patterns"])
	if string(raw) != firstResult {
		t.Errorf("cache hit patterns differ:\n%s\nvs\n%s", raw, firstResult)
	}

	stats := getJSON(t, base+"/v1/stats")
	cache, _ := stats["cache"].(map[string]any)
	if cache["hits"] != 1.0 || cache["misses"] != 1.0 {
		t.Errorf("cache stats = %v, want 1 hit / 1 miss", cache)
	}
	queue, _ := stats["queue"].(map[string]any)
	if queue["mines_run"] != 1.0 {
		t.Errorf("queue stats = %v, want one mine", queue)
	}
}

func TestDaemonStreamMode(t *testing.T) {
	bin := buildCmd(t)
	base := startDaemon(t, bin, writeDataDir(t), "-stream")
	body := `{"dataset": "toy", "config": {"gamma": 0.6, "epsilon": 0.35, "min_sup": [0.1, 0.1, 0.1]}}`
	status, v := postJob(t, base, body)
	if status != http.StatusAccepted && status != http.StatusOK {
		t.Fatalf("submit: %d %v", status, v)
	}
	id, _ := v["id"].(string)
	deadline := time.Now().Add(10 * time.Second)
	for {
		j := getJSON(t, base+"/v1/jobs/"+id)
		if j["status"] == "done" {
			res, _ := j["result"].(map[string]any)
			if res["pattern_count"] != 1.0 {
				t.Fatalf("stream-mode result: %v", res["pattern_count"])
			}
			return
		}
		if j["status"] == "failed" || time.Now().After(deadline) {
			t.Fatalf("job: %v", j)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestDaemonRequiresData(t *testing.T) {
	bin := buildCmd(t)
	if err := exec.Command(bin).Run(); err == nil {
		t.Error("flipperd without -data should fail")
	}
	if err := exec.Command(bin, "-data", t.TempDir()).Run(); err == nil {
		t.Error("flipperd with an empty data dir should fail")
	}
}
