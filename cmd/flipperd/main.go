// Command flipperd serves flipping-correlation mining over HTTP: an async
// job queue with a bounded worker pool and an LRU result cache over a
// registry of named datasets.
//
// Usage:
//
//	flipperd -data DIR [-addr :8080] [-workers 2] [-queue 64] [-cache 128]
//	         [-history 1000] [-stream] [-debug-addr localhost:6060]
//	         [-job-timeout 0] [-max-job-timeout 15m]
//	         [-heartbeat-interval 1s] [-hedge-quantile 0.9]
//	flipperd -data DIR -worker -join http://coordinator:8080
//	         [-advertise http://me:8081] [-worker-id NAME]
//
// The data directory holds one subdirectory per dataset, each with a
// taxonomy.tsv (child<TAB>parent edges) and either a baskets.txt (one
// transaction per line, comma-separated item names) or a shards/ directory
// of per-shard basket files — exactly the two layouts flipgen writes:
//
//	flipgen -out data/groceries dataset -name groceries
//	flipgen -out data/medline -shards 8 dataset -name medline
//	flipperd -data data
//
// Sharded datasets are mined shard-parallel (a bounded pool of counting
// workers over the shard files), with output byte-identical to the
// single-file layout. With
// -stream, basket files stay on disk and are re-read on every counting
// pass (the paper's disk-resident mode) — shard files in parallel, so big
// datasets mine without ever being resident in memory; otherwise each
// dataset is materialized into memory once at startup.
//
// Multi-node operation (docs/OPERATIONS.md): the default mode is a
// coordinator — it serves the /v1 API, accepts worker heartbeats on
// /cluster/heartbeat, and scatter–gathers per-shard support counting over
// any registered workers, falling back to local mining (degraded mode)
// when none are reachable. With -worker the process instead serves only
// the /cluster counting endpoints and pushes heartbeats to -join; workers
// must load the same -data directory (fingerprints are verified per
// request, so version-skewed workers are rejected, not silently wrong).
//
// API (JSON; see docs/ARCHITECTURE.md):
//
//	POST   /v1/jobs        {"dataset":"groceries","config":{"epsilon":0.2}}
//	                       optional "timeout_ms" caps the job's run time
//	GET    /v1/jobs/{id}   poll status; result envelope appears when done
//	DELETE /v1/jobs/{id}   cancel a queued or running job
//	GET    /v1/datasets    registered datasets
//	GET    /v1/healthz     liveness
//	GET    /v1/readyz      readiness (queue saturation, drain, cluster reach)
//	GET    /v1/stats       cache hit rate, queue depth, per-job stats
//	GET    /cluster/workers  worker registry with health states
//
// Every job runs under a deadline: the request's timeout_ms if given, else
// -job-timeout, both clamped by -max-job-timeout (default 15m). Expired or
// cancelled jobs finish with status "cancelled". On SIGTERM readiness
// flips to 503 (draining) and the queue is drained: running jobs complete
// and are recorded before exit.
//
// Identical submissions are served from the cache (or coalesced onto the
// in-flight job), so re-issued mines and ε-sweeps cost one computation.
//
// -debug-addr (off by default) serves net/http/pprof on a separate
// listener, so the mining hot paths can be profiled against the live
// service without exposing profiling endpoints on the API address:
//
//	flipperd -data data -debug-addr localhost:6060
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=30
//
// See README.md ("Profiling the service") for the workflow.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/flipper-mining/flipper/internal/cluster"
	"github.com/flipper-mining/flipper/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		dataDir = flag.String("data", "", "data directory (one subdirectory per dataset)")
		workers = flag.Int("workers", 2, "mining worker pool size")
		queue   = flag.Int("queue", 64, "max queued jobs (further submissions get 503)")
		cache   = flag.Int("cache", 128, "result cache capacity in entries (0 disables)")
		history = flag.Int("history", 1000, "max completed jobs kept pollable (older ones are pruned)")
		stream  = flag.Bool("stream", false, "disk-resident mode: re-read basket files on every pass")
		debug   = flag.String("debug-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")

		jobTimeout = flag.Duration("job-timeout", 0, "default per-job deadline applied when a submission has no timeout_ms (0 = cap at -max-job-timeout)")
		maxTimeout = flag.Duration("max-job-timeout", 0, "hard ceiling on any job's deadline, clamping timeout_ms and -job-timeout (0 = 15m)")

		workerMode = flag.Bool("worker", false, "run as a counting worker: serve /cluster endpoints and heartbeat to -join instead of the /v1 API")
		join       = flag.String("join", "", "coordinator base URL a -worker heartbeats to (e.g. http://coordinator:8080)")
		advertise  = flag.String("advertise", "", "URL the coordinator should dial this worker at (default http://<hostname><addr>)")
		workerID   = flag.String("worker-id", "", "stable worker identity in the coordinator's registry (default hostname)")
		hbInterval = flag.Duration("heartbeat-interval", time.Second, "worker heartbeat period; the coordinator marks workers suspect after 3 missed beats and dead after 9")
		hedgeQ     = flag.Float64("hedge-quantile", 0.9, "straggler deadline: hedge a shard dispatch still unanswered after this quantile of recent latencies (>= 1 disables hedging)")
	)
	flag.Parse()
	if *dataDir == "" {
		fmt.Fprintln(os.Stderr, "flipperd: -data is required")
		flag.Usage()
		os.Exit(2)
	}

	reg := service.NewRegistry()
	names, err := reg.LoadDir(*dataDir, *stream)
	if err != nil {
		log.Fatalf("flipperd: %v", err)
	}
	if len(names) == 0 {
		log.Fatalf("flipperd: no datasets in %s (want subdirectories with taxonomy.tsv + baskets.txt)", *dataDir)
	}
	for _, info := range reg.List() {
		log.Printf("flipperd: dataset %q: %d tx, height %d, %d nodes (stream=%v)",
			info.Name, info.Transactions, info.Height, info.Nodes, info.Stream)
	}

	// Both roles share the catalog: the coordinator resolves datasets and
	// mines the degraded fallback through it; workers count against it.
	// Fingerprints guard against version skew between nodes.
	cat := cluster.NewCatalog()
	for _, name := range names {
		d, ok := reg.Get(name)
		if !ok {
			continue
		}
		cat.Add(name, d.Engine(), d.Tree, cluster.NewFingerprint(name, d.Src, d.Tree))
	}

	if *workerMode {
		runWorker(cat, *addr, *join, *advertise, *workerID, *hbInterval)
		return
	}

	var debugSrv *http.Server
	if *debug != "" {
		// A dedicated mux on a dedicated listener: the profiling surface
		// never shares an address with the public API, and the default
		// ServeMux (which net/http/pprof would register on) stays empty.
		// The server is shut down on the same signal path as the API
		// listener, so the debug port does not outlive the service.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv = &http.Server{Addr: *debug, Handler: mux}
		go func() {
			log.Printf("flipperd: pprof on http://%s/debug/pprof/", *debug)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("flipperd: pprof listener: %v", err)
			}
		}()
	}

	co := cluster.New(cat, cluster.Options{
		SuspectAfter:  3 * *hbInterval,
		DeadAfter:     9 * *hbInterval,
		HedgeQuantile: *hedgeQ,
	})

	srv := service.NewServer(reg, service.Options{
		Workers:       *workers,
		QueueDepth:    *queue,
		CacheSize:     *cache,
		JobHistory:    *history,
		JobTimeout:    *jobTimeout,
		MaxJobTimeout: *maxTimeout,
		Coordinator:   co,
	})
	mux := http.NewServeMux()
	mux.Handle("/cluster/", co.Handler())
	mux.Handle("/", srv.Handler())
	httpSrv := &http.Server{Addr: *addr, Handler: mux}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("flipperd: shutting down")
		// Flip readiness first so load balancers stop routing new
		// submissions while in-flight requests finish under Shutdown.
		srv.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("flipperd: shutdown: %v", err)
		}
		if debugSrv != nil {
			if err := debugSrv.Shutdown(ctx); err != nil {
				log.Printf("flipperd: pprof shutdown: %v", err)
			}
		}
		// Close drains in-flight jobs: a mine that finished computing is
		// always recorded before the workers exit.
		srv.Close()
	}()

	log.Printf("flipperd: listening on %s (%d workers, queue %d, cache %d)",
		*addr, *workers, *queue, *cache)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("flipperd: %v", err)
	}
	<-done
}

// runWorker serves the counting endpoints and heartbeats to the
// coordinator until SIGTERM. Workers hold no job state, so shutdown is
// just closing the listener: in-flight count requests are cheap and the
// coordinator retries or hedges any that are cut off.
func runWorker(cat *cluster.Catalog, addr, join, advertise, id string, interval time.Duration) {
	if join == "" {
		fmt.Fprintln(os.Stderr, "flipperd: -worker requires -join (coordinator URL)")
		os.Exit(2)
	}
	host, _ := os.Hostname()
	if host == "" {
		host = "localhost"
	}
	if id == "" {
		id = host
	}
	if advertise == "" {
		if strings.HasPrefix(addr, ":") {
			advertise = "http://" + host + addr
		} else {
			advertise = "http://" + addr
		}
	}

	w := cluster.NewWorker(id, cat)
	httpSrv := &http.Server{Addr: addr, Handler: w.Handler()}

	ctx, stop := context.WithCancel(context.Background())
	go w.HeartbeatLoop(ctx, join, advertise, interval, nil)

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("flipperd: worker shutting down")
		stop() // end the heartbeat loop so the coordinator marks us dead
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			log.Printf("flipperd: worker shutdown: %v", err)
		}
	}()

	log.Printf("flipperd: worker %q on %s, joining %s (advertising %s)", id, addr, join, advertise)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("flipperd: worker: %v", err)
	}
	<-done
}
