package flipper_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	flipper "github.com/flipper-mining/flipper"
)

const toyTaxonomy = `a1	a
a11	a1
a12	a1
a2	a
a21	a2
a22	a2
b1	b
b11	b1
b12	b1
b2	b
b21	b2
b22	b2
`

const toyBaskets = `a11, a22, b11, b22
a11, a21, b11
a12, a21
a12, a22, b21
a12, a22, b21
a12, a21, b22
a21, b12
b12, b21, b22
b12, b21
a22, b12, b22
`

func toyConfig() flipper.Config {
	return flipper.Config{
		Measure:     flipper.Kulczynski,
		Gamma:       0.6,
		Epsilon:     0.35,
		MinSupAbs:   []int64{1, 1, 1},
		Pruning:     flipper.Full,
		Strategy:    flipper.CountScan,
		Materialize: true,
	}
}

// TestQuickstart exercises the documented facade flow end to end.
func TestQuickstart(t *testing.T) {
	tree, err := flipper.ParseTaxonomy(strings.NewReader(toyTaxonomy), nil)
	if err != nil {
		t.Fatal(err)
	}
	db, err := flipper.ReadBaskets(strings.NewReader(toyBaskets), tree.Dict())
	if err != nil {
		t.Fatal(err)
	}
	res, err := flipper.Mine(db, tree, toyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 1 {
		t.Fatalf("patterns = %d, want 1", len(res.Patterns))
	}
	formatted := res.Patterns[0].Format(tree)
	if !strings.Contains(formatted, "{a11, b11}") {
		t.Errorf("unexpected pattern:\n%s", formatted)
	}
	if res.Stats.Transactions != 10 {
		t.Errorf("stats transactions = %d", res.Stats.Transactions)
	}
	// Every counting backend finds the same single pattern.
	for _, strategy := range []flipper.CountStrategy{flipper.CountTIDList, flipper.CountBitmap, flipper.CountAuto} {
		cfg := toyConfig()
		cfg.Strategy = strategy
		res, err := flipper.Mine(db, tree, cfg)
		if err != nil {
			t.Fatalf("%v: %v", strategy, err)
		}
		if len(res.Patterns) != 1 || !strings.Contains(res.Patterns[0].Format(tree), "{a11, b11}") {
			t.Errorf("%v found %d patterns, want the toy flip", strategy, len(res.Patterns))
		}
	}
}

func TestBuilderFlow(t *testing.T) {
	b := flipper.NewTaxonomyBuilder(nil)
	for _, p := range [][]string{
		{"drinks", "beer", "canned beer"}, {"drinks", "beer", "bottled beer"},
		{"food", "snacks", "chips"}, {"food", "snacks", "pretzels"},
	} {
		if err := b.AddPath(p...); err != nil {
			t.Fatal(err)
		}
	}
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	db := flipper.NewDB(tree.Dict())
	for i := 0; i < 4; i++ {
		db.AddNames("canned beer", "chips")
	}
	db.AddNames("bottled beer")
	db.AddNames("pretzels")
	cfg := flipper.DefaultConfig(tree.Height())
	cfg.MinSupAbs = []int64{1, 1, 1}
	cfg.MinSup = nil
	if _, err := flipper.Mine(db, tree, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDiskResidentFlow(t *testing.T) {
	dir := t.TempDir()
	taxPath := filepath.Join(dir, "tax.tsv")
	basketPath := filepath.Join(dir, "baskets.txt")
	if err := os.WriteFile(taxPath, []byte(toyTaxonomy), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(basketPath, []byte(toyBaskets), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(taxPath)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := flipper.ParseTaxonomy(f, nil)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	src, err := flipper.OpenBasketFile(basketPath, tree.Dict())
	if err != nil {
		t.Fatal(err)
	}
	cfg := toyConfig()
	cfg.Materialize = false // stream from disk on every pass
	res, err := flipper.Mine(src, tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 1 {
		t.Fatalf("patterns = %d, want 1", len(res.Patterns))
	}
}

func TestParsers(t *testing.T) {
	if _, err := flipper.ParseMeasure("cosine"); err != nil {
		t.Error(err)
	}
	if _, err := flipper.ParsePruningLevel("full"); err != nil {
		t.Error(err)
	}
	for _, name := range []string{"scan", "tidlist", "bitmap", "auto"} {
		if _, err := flipper.ParseCountStrategy(name); err != nil {
			t.Error(err)
		}
	}
	if _, err := flipper.ParseMeasure("nope"); err == nil {
		t.Error("bad measure accepted")
	}
}
